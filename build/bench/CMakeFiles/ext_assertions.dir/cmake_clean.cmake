file(REMOVE_RECURSE
  "CMakeFiles/ext_assertions.dir/ext_assertions.cpp.o"
  "CMakeFiles/ext_assertions.dir/ext_assertions.cpp.o.d"
  "ext_assertions"
  "ext_assertions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_assertions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
