# Empty dependencies file for ext_assertions.
# This may be replaced when dependencies are built.
