file(REMOVE_RECURSE
  "CMakeFiles/ablation_mrai.dir/ablation_mrai.cpp.o"
  "CMakeFiles/ablation_mrai.dir/ablation_mrai.cpp.o.d"
  "ablation_mrai"
  "ablation_mrai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mrai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
