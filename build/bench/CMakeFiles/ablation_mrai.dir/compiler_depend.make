# Empty compiler generated dependencies file for ablation_mrai.
# This may be replaced when dependencies are built.
