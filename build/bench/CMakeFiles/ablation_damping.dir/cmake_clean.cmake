file(REMOVE_RECURSE
  "CMakeFiles/ablation_damping.dir/ablation_damping.cpp.o"
  "CMakeFiles/ablation_damping.dir/ablation_damping.cpp.o.d"
  "ablation_damping"
  "ablation_damping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_damping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
