# Empty compiler generated dependencies file for ablation_damping.
# This may be replaced when dependencies are built.
