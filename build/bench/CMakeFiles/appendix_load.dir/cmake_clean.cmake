file(REMOVE_RECURSE
  "CMakeFiles/appendix_load.dir/appendix_load.cpp.o"
  "CMakeFiles/appendix_load.dir/appendix_load.cpp.o.d"
  "appendix_load"
  "appendix_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
