# Empty compiler generated dependencies file for appendix_load.
# This may be replaced when dependencies are built.
