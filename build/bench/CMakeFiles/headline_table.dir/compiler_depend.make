# Empty compiler generated dependencies file for headline_table.
# This may be replaced when dependencies are built.
