file(REMOVE_RECURSE
  "CMakeFiles/headline_table.dir/headline_table.cpp.o"
  "CMakeFiles/headline_table.dir/headline_table.cpp.o.d"
  "headline_table"
  "headline_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
