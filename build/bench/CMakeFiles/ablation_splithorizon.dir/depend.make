# Empty dependencies file for ablation_splithorizon.
# This may be replaced when dependencies are built.
