file(REMOVE_RECURSE
  "CMakeFiles/ablation_splithorizon.dir/ablation_splithorizon.cpp.o"
  "CMakeFiles/ablation_splithorizon.dir/ablation_splithorizon.cpp.o.d"
  "ablation_splithorizon"
  "ablation_splithorizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_splithorizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
