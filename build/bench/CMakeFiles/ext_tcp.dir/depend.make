# Empty dependencies file for ext_tcp.
# This may be replaced when dependencies are built.
