file(REMOVE_RECURSE
  "CMakeFiles/ext_tcp.dir/ext_tcp.cpp.o"
  "CMakeFiles/ext_tcp.dir/ext_tcp.cpp.o.d"
  "ext_tcp"
  "ext_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
