file(REMOVE_RECURSE
  "CMakeFiles/ablation_flap_damping.dir/ablation_flap_damping.cpp.o"
  "CMakeFiles/ablation_flap_damping.dir/ablation_flap_damping.cpp.o.d"
  "ablation_flap_damping"
  "ablation_flap_damping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flap_damping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
