# Empty compiler generated dependencies file for ablation_msgsize.
# This may be replaced when dependencies are built.
