file(REMOVE_RECURSE
  "CMakeFiles/appendix_overhead.dir/appendix_overhead.cpp.o"
  "CMakeFiles/appendix_overhead.dir/appendix_overhead.cpp.o.d"
  "appendix_overhead"
  "appendix_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
