# Empty dependencies file for appendix_overhead.
# This may be replaced when dependencies are built.
