# Empty compiler generated dependencies file for fig3_drops.
# This may be replaced when dependencies are built.
