file(REMOVE_RECURSE
  "CMakeFiles/fig3_drops.dir/fig3_drops.cpp.o"
  "CMakeFiles/fig3_drops.dir/fig3_drops.cpp.o.d"
  "fig3_drops"
  "fig3_drops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_drops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
