# Empty dependencies file for ext_random_topo.
# This may be replaced when dependencies are built.
