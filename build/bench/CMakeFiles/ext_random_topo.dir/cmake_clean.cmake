file(REMOVE_RECURSE
  "CMakeFiles/ext_random_topo.dir/ext_random_topo.cpp.o"
  "CMakeFiles/ext_random_topo.dir/ext_random_topo.cpp.o.d"
  "ext_random_topo"
  "ext_random_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_random_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
