# Empty dependencies file for fig4_ttl.
# This may be replaced when dependencies are built.
