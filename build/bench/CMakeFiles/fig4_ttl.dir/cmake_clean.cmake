file(REMOVE_RECURSE
  "CMakeFiles/fig4_ttl.dir/fig4_ttl.cpp.o"
  "CMakeFiles/fig4_ttl.dir/fig4_ttl.cpp.o.d"
  "fig4_ttl"
  "fig4_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
