# Empty dependencies file for ext_dual.
# This may be replaced when dependencies are built.
