file(REMOVE_RECURSE
  "CMakeFiles/ext_dual.dir/ext_dual.cpp.o"
  "CMakeFiles/ext_dual.dir/ext_dual.cpp.o.d"
  "ext_dual"
  "ext_dual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
