file(REMOVE_RECURSE
  "CMakeFiles/ext_multifailure.dir/ext_multifailure.cpp.o"
  "CMakeFiles/ext_multifailure.dir/ext_multifailure.cpp.o.d"
  "ext_multifailure"
  "ext_multifailure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multifailure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
