# Empty dependencies file for ext_multifailure.
# This may be replaced when dependencies are built.
