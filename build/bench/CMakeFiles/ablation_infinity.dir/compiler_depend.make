# Empty compiler generated dependencies file for ablation_infinity.
# This may be replaced when dependencies are built.
