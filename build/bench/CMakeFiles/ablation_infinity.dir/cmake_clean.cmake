file(REMOVE_RECURSE
  "CMakeFiles/ablation_infinity.dir/ablation_infinity.cpp.o"
  "CMakeFiles/ablation_infinity.dir/ablation_infinity.cpp.o.d"
  "ablation_infinity"
  "ablation_infinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_infinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
