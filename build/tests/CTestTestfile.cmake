# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rcsim_tests[1]_include.cmake")
add_test(perf_gate_smoke "/root/repo/build/bench/perf_gate" "--smoke" "--benchmark_min_time=0.01")
set_tests_properties(perf_gate_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;40;add_test;/root/repo/tests/CMakeLists.txt;0;")
