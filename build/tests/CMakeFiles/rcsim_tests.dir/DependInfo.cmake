
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_assertions.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_assertions.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_assertions.cpp.o.d"
  "/root/repo/tests/test_bgp.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_bgp.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_bgp.cpp.o.d"
  "/root/repo/tests/test_churn.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_churn.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_churn.cpp.o.d"
  "/root/repo/tests/test_conformance.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_conformance.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_conformance.cpp.o.d"
  "/root/repo/tests/test_dbf.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_dbf.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_dbf.cpp.o.d"
  "/root/repo/tests/test_dual.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_dual.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_dual.cpp.o.d"
  "/root/repo/tests/test_dv_common.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_dv_common.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_dv_common.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_golden.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_golden.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_golden.cpp.o.d"
  "/root/repo/tests/test_link.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_link.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_link.cpp.o.d"
  "/root/repo/tests/test_linkstate.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_linkstate.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_linkstate.cpp.o.d"
  "/root/repo/tests/test_messages.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_messages.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_messages.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_node_forwarding.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_node_forwarding.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_node_forwarding.cpp.o.d"
  "/root/repo/tests/test_observations.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_observations.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_observations.cpp.o.d"
  "/root/repo/tests/test_options.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_options.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_options.cpp.o.d"
  "/root/repo/tests/test_perf_gate.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_perf_gate.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_perf_gate.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_random.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_random.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_random.cpp.o.d"
  "/root/repo/tests/test_reliable.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_reliable.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_reliable.cpp.o.d"
  "/root/repo/tests/test_rip.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_rip.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_rip.cpp.o.d"
  "/root/repo/tests/test_scenario.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_scenario.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_tcp_flow.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_tcp_flow.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_tcp_flow.cpp.o.d"
  "/root/repo/tests/test_time.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_time.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_time.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/rcsim_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/rcsim_tests.dir/test_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rcsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcsim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcsim_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcsim_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
