# Empty compiler generated dependencies file for rcsim_tests.
# This may be replaced when dependencies are built.
