# Empty compiler generated dependencies file for linkstate_preview.
# This may be replaced when dependencies are built.
