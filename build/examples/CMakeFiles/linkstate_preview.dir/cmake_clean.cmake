file(REMOVE_RECURSE
  "CMakeFiles/linkstate_preview.dir/linkstate_preview.cpp.o"
  "CMakeFiles/linkstate_preview.dir/linkstate_preview.cpp.o.d"
  "linkstate_preview"
  "linkstate_preview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkstate_preview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
