file(REMOVE_RECURSE
  "CMakeFiles/failure_storyboard.dir/failure_storyboard.cpp.o"
  "CMakeFiles/failure_storyboard.dir/failure_storyboard.cpp.o.d"
  "failure_storyboard"
  "failure_storyboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_storyboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
