# Empty compiler generated dependencies file for failure_storyboard.
# This may be replaced when dependencies are built.
