# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failure_storyboard "/root/repo/build/examples/failure_storyboard" "DBF" "4" "7")
set_tests_properties(example_failure_storyboard PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_loop_forensics "/root/repo/build/examples/loop_forensics" "BGP" "3" "6")
set_tests_properties(example_loop_forensics PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_protocol_faceoff "/root/repo/build/examples/protocol_faceoff" "4" "7")
set_tests_properties(example_protocol_faceoff PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_linkstate_preview "/root/repo/build/examples/linkstate_preview" "2")
set_tests_properties(example_linkstate_preview PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
