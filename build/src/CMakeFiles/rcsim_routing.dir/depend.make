# Empty dependencies file for rcsim_routing.
# This may be replaced when dependencies are built.
