file(REMOVE_RECURSE
  "CMakeFiles/rcsim_routing.dir/routing/bgp.cpp.o"
  "CMakeFiles/rcsim_routing.dir/routing/bgp.cpp.o.d"
  "CMakeFiles/rcsim_routing.dir/routing/dbf.cpp.o"
  "CMakeFiles/rcsim_routing.dir/routing/dbf.cpp.o.d"
  "CMakeFiles/rcsim_routing.dir/routing/dual.cpp.o"
  "CMakeFiles/rcsim_routing.dir/routing/dual.cpp.o.d"
  "CMakeFiles/rcsim_routing.dir/routing/dv_common.cpp.o"
  "CMakeFiles/rcsim_routing.dir/routing/dv_common.cpp.o.d"
  "CMakeFiles/rcsim_routing.dir/routing/factory.cpp.o"
  "CMakeFiles/rcsim_routing.dir/routing/factory.cpp.o.d"
  "CMakeFiles/rcsim_routing.dir/routing/linkstate.cpp.o"
  "CMakeFiles/rcsim_routing.dir/routing/linkstate.cpp.o.d"
  "CMakeFiles/rcsim_routing.dir/routing/rip.cpp.o"
  "CMakeFiles/rcsim_routing.dir/routing/rip.cpp.o.d"
  "librcsim_routing.a"
  "librcsim_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcsim_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
