
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/bgp.cpp" "src/CMakeFiles/rcsim_routing.dir/routing/bgp.cpp.o" "gcc" "src/CMakeFiles/rcsim_routing.dir/routing/bgp.cpp.o.d"
  "/root/repo/src/routing/dbf.cpp" "src/CMakeFiles/rcsim_routing.dir/routing/dbf.cpp.o" "gcc" "src/CMakeFiles/rcsim_routing.dir/routing/dbf.cpp.o.d"
  "/root/repo/src/routing/dual.cpp" "src/CMakeFiles/rcsim_routing.dir/routing/dual.cpp.o" "gcc" "src/CMakeFiles/rcsim_routing.dir/routing/dual.cpp.o.d"
  "/root/repo/src/routing/dv_common.cpp" "src/CMakeFiles/rcsim_routing.dir/routing/dv_common.cpp.o" "gcc" "src/CMakeFiles/rcsim_routing.dir/routing/dv_common.cpp.o.d"
  "/root/repo/src/routing/factory.cpp" "src/CMakeFiles/rcsim_routing.dir/routing/factory.cpp.o" "gcc" "src/CMakeFiles/rcsim_routing.dir/routing/factory.cpp.o.d"
  "/root/repo/src/routing/linkstate.cpp" "src/CMakeFiles/rcsim_routing.dir/routing/linkstate.cpp.o" "gcc" "src/CMakeFiles/rcsim_routing.dir/routing/linkstate.cpp.o.d"
  "/root/repo/src/routing/rip.cpp" "src/CMakeFiles/rcsim_routing.dir/routing/rip.cpp.o" "gcc" "src/CMakeFiles/rcsim_routing.dir/routing/rip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rcsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
