file(REMOVE_RECURSE
  "librcsim_routing.a"
)
