file(REMOVE_RECURSE
  "CMakeFiles/rcsim_traffic.dir/traffic/cbr.cpp.o"
  "CMakeFiles/rcsim_traffic.dir/traffic/cbr.cpp.o.d"
  "CMakeFiles/rcsim_traffic.dir/traffic/tcp_flow.cpp.o"
  "CMakeFiles/rcsim_traffic.dir/traffic/tcp_flow.cpp.o.d"
  "librcsim_traffic.a"
  "librcsim_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcsim_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
