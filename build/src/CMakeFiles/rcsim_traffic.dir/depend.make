# Empty dependencies file for rcsim_traffic.
# This may be replaced when dependencies are built.
