file(REMOVE_RECURSE
  "librcsim_traffic.a"
)
