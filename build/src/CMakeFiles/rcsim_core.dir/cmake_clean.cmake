file(REMOVE_RECURSE
  "CMakeFiles/rcsim_core.dir/core/churn.cpp.o"
  "CMakeFiles/rcsim_core.dir/core/churn.cpp.o.d"
  "CMakeFiles/rcsim_core.dir/core/experiment.cpp.o"
  "CMakeFiles/rcsim_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/rcsim_core.dir/core/fingerprint.cpp.o"
  "CMakeFiles/rcsim_core.dir/core/fingerprint.cpp.o.d"
  "CMakeFiles/rcsim_core.dir/core/json_lite.cpp.o"
  "CMakeFiles/rcsim_core.dir/core/json_lite.cpp.o.d"
  "CMakeFiles/rcsim_core.dir/core/options.cpp.o"
  "CMakeFiles/rcsim_core.dir/core/options.cpp.o.d"
  "CMakeFiles/rcsim_core.dir/core/report.cpp.o"
  "CMakeFiles/rcsim_core.dir/core/report.cpp.o.d"
  "CMakeFiles/rcsim_core.dir/core/runner.cpp.o"
  "CMakeFiles/rcsim_core.dir/core/runner.cpp.o.d"
  "CMakeFiles/rcsim_core.dir/core/scenario.cpp.o"
  "CMakeFiles/rcsim_core.dir/core/scenario.cpp.o.d"
  "librcsim_core.a"
  "librcsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
