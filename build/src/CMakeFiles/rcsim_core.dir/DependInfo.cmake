
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/churn.cpp" "src/CMakeFiles/rcsim_core.dir/core/churn.cpp.o" "gcc" "src/CMakeFiles/rcsim_core.dir/core/churn.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/rcsim_core.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/rcsim_core.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/fingerprint.cpp" "src/CMakeFiles/rcsim_core.dir/core/fingerprint.cpp.o" "gcc" "src/CMakeFiles/rcsim_core.dir/core/fingerprint.cpp.o.d"
  "/root/repo/src/core/json_lite.cpp" "src/CMakeFiles/rcsim_core.dir/core/json_lite.cpp.o" "gcc" "src/CMakeFiles/rcsim_core.dir/core/json_lite.cpp.o.d"
  "/root/repo/src/core/options.cpp" "src/CMakeFiles/rcsim_core.dir/core/options.cpp.o" "gcc" "src/CMakeFiles/rcsim_core.dir/core/options.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/rcsim_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/rcsim_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/CMakeFiles/rcsim_core.dir/core/runner.cpp.o" "gcc" "src/CMakeFiles/rcsim_core.dir/core/runner.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/CMakeFiles/rcsim_core.dir/core/scenario.cpp.o" "gcc" "src/CMakeFiles/rcsim_core.dir/core/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rcsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcsim_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcsim_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcsim_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcsim_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
