# Empty compiler generated dependencies file for rcsim_net.
# This may be replaced when dependencies are built.
