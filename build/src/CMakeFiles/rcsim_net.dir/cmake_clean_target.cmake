file(REMOVE_RECURSE
  "librcsim_net.a"
)
