file(REMOVE_RECURSE
  "CMakeFiles/rcsim_net.dir/net/link.cpp.o"
  "CMakeFiles/rcsim_net.dir/net/link.cpp.o.d"
  "CMakeFiles/rcsim_net.dir/net/network.cpp.o"
  "CMakeFiles/rcsim_net.dir/net/network.cpp.o.d"
  "CMakeFiles/rcsim_net.dir/net/node.cpp.o"
  "CMakeFiles/rcsim_net.dir/net/node.cpp.o.d"
  "CMakeFiles/rcsim_net.dir/net/reliable.cpp.o"
  "CMakeFiles/rcsim_net.dir/net/reliable.cpp.o.d"
  "librcsim_net.a"
  "librcsim_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcsim_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
