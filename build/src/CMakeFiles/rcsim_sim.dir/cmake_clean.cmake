file(REMOVE_RECURSE
  "CMakeFiles/rcsim_sim.dir/sim/random.cpp.o"
  "CMakeFiles/rcsim_sim.dir/sim/random.cpp.o.d"
  "CMakeFiles/rcsim_sim.dir/sim/scheduler.cpp.o"
  "CMakeFiles/rcsim_sim.dir/sim/scheduler.cpp.o.d"
  "librcsim_sim.a"
  "librcsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
