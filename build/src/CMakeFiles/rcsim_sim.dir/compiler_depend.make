# Empty compiler generated dependencies file for rcsim_sim.
# This may be replaced when dependencies are built.
