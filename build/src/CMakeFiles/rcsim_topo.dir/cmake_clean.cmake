file(REMOVE_RECURSE
  "CMakeFiles/rcsim_topo.dir/topo/graph_algo.cpp.o"
  "CMakeFiles/rcsim_topo.dir/topo/graph_algo.cpp.o.d"
  "CMakeFiles/rcsim_topo.dir/topo/topology.cpp.o"
  "CMakeFiles/rcsim_topo.dir/topo/topology.cpp.o.d"
  "librcsim_topo.a"
  "librcsim_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcsim_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
