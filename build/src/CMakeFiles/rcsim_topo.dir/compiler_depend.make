# Empty compiler generated dependencies file for rcsim_topo.
# This may be replaced when dependencies are built.
