file(REMOVE_RECURSE
  "librcsim_topo.a"
)
