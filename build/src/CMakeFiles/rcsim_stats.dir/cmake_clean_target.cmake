file(REMOVE_RECURSE
  "librcsim_stats.a"
)
