
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/collector.cpp" "src/CMakeFiles/rcsim_stats.dir/stats/collector.cpp.o" "gcc" "src/CMakeFiles/rcsim_stats.dir/stats/collector.cpp.o.d"
  "/root/repo/src/stats/path_tracer.cpp" "src/CMakeFiles/rcsim_stats.dir/stats/path_tracer.cpp.o" "gcc" "src/CMakeFiles/rcsim_stats.dir/stats/path_tracer.cpp.o.d"
  "/root/repo/src/stats/route_log.cpp" "src/CMakeFiles/rcsim_stats.dir/stats/route_log.cpp.o" "gcc" "src/CMakeFiles/rcsim_stats.dir/stats/route_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rcsim_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rcsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
