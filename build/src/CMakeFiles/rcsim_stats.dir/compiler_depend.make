# Empty compiler generated dependencies file for rcsim_stats.
# This may be replaced when dependencies are built.
