file(REMOVE_RECURSE
  "CMakeFiles/rcsim_stats.dir/stats/collector.cpp.o"
  "CMakeFiles/rcsim_stats.dir/stats/collector.cpp.o.d"
  "CMakeFiles/rcsim_stats.dir/stats/path_tracer.cpp.o"
  "CMakeFiles/rcsim_stats.dir/stats/path_tracer.cpp.o.d"
  "CMakeFiles/rcsim_stats.dir/stats/route_log.cpp.o"
  "CMakeFiles/rcsim_stats.dir/stats/route_log.cpp.o.d"
  "librcsim_stats.a"
  "librcsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
