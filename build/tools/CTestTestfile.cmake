# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_table "/root/repo/build/tools/rcsim" "protocol=DBF" "degree=5" "--runs=2")
set_tests_properties(cli_table PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_csv "/root/repo/build/tools/rcsim" "protocol=BGP3" "degree=4" "failures=2" "--runs=2" "--format=csv")
set_tests_properties(cli_csv PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_series "/root/repo/build/tools/rcsim" "protocol=RIP" "degree=3" "--runs=2" "--format=series")
set_tests_properties(cli_series PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_input "/root/repo/build/tools/rcsim" "protocol=NOPE")
set_tests_properties(cli_rejects_bad_input PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(topo_tool "/root/repo/build/tools/rcsim-topo" "--sweep")
set_tests_properties(topo_tool PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(trace_tool "/root/repo/build/tools/rcsim-trace" "protocol=RIP" "degree=4" "seed=7" "--from=399" "--to=401" "--kinds=rt,fail")
set_tests_properties(trace_tool PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
