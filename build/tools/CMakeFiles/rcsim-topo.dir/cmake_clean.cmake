file(REMOVE_RECURSE
  "CMakeFiles/rcsim-topo.dir/rcsim_topo.cpp.o"
  "CMakeFiles/rcsim-topo.dir/rcsim_topo.cpp.o.d"
  "rcsim-topo"
  "rcsim-topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcsim-topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
