# Empty compiler generated dependencies file for rcsim-topo.
# This may be replaced when dependencies are built.
