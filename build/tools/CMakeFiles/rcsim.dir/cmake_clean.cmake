file(REMOVE_RECURSE
  "CMakeFiles/rcsim.dir/rcsim_cli.cpp.o"
  "CMakeFiles/rcsim.dir/rcsim_cli.cpp.o.d"
  "rcsim"
  "rcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
