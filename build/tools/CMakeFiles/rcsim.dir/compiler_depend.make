# Empty compiler generated dependencies file for rcsim.
# This may be replaced when dependencies are built.
