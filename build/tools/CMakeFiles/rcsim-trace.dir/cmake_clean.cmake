file(REMOVE_RECURSE
  "CMakeFiles/rcsim-trace.dir/rcsim_trace.cpp.o"
  "CMakeFiles/rcsim-trace.dir/rcsim_trace.cpp.o.d"
  "rcsim-trace"
  "rcsim-trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcsim-trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
