# Empty dependencies file for rcsim-trace.
# This may be replaced when dependencies are built.
