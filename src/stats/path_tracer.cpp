#include "stats/path_tracer.hpp"

#include "net/network.hpp"

namespace rcsim {

PathTracer::PathTracer(Network& net, NodeId src, NodeId dst) : net_{net}, src_{src}, dst_{dst} {}

void PathTracer::snapshot(Time t) {
  bool loop = false;
  bool blackhole = false;
  // fibWalk follows primary next hops only — the canonical forwarding path
  // stays well defined (and digest-stable) even when ECMP is spreading
  // individual flows across alternates.
  auto path = net_.fibWalk(src_, dst_, &loop, &blackhole);
  if (!events_.empty() && events_.back().path == path) return;
  events_.push_back(PathEvent{t, std::move(path), loop, blackhole});
}

const std::vector<NodeId>& PathTracer::currentPath() const {
  static const std::vector<NodeId> kEmpty{};
  return events_.empty() ? kEmpty : events_.back().path;
}

int PathTracer::transientPathsAfter(Time watermark) const {
  int count = 0;
  for (const auto& e : events_) {
    if (e.t >= watermark) ++count;
  }
  return count;
}

double PathTracer::convergenceSecondsAfter(Time watermark) const {
  Time last = watermark;
  for (const auto& e : events_) {
    if (e.t >= watermark && e.t > last) last = e.t;
  }
  return (last - watermark).toSeconds();
}

bool PathTracer::sawLoopAfter(Time watermark) const {
  for (const auto& e : events_) {
    if (e.t >= watermark && e.loop) return true;
  }
  return false;
}

bool PathTracer::sawBlackholeAfter(Time watermark) const {
  for (const auto& e : events_) {
    if (e.t >= watermark && e.blackhole) return true;
  }
  return false;
}

}  // namespace rcsim
