#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace rcsim {

/// Per-second buckets of delivery statistics, the raw material of the
/// paper's Figure 5 (instantaneous throughput) and Figure 7 (instantaneous
/// packet delay).
class TimeSeries {
 public:
  struct Bucket {
    std::uint32_t delivered = 0;
    double delaySum = 0.0;            ///< seconds, over delivered packets
    std::uint32_t loopedDelivered = 0;  ///< delivered after escaping a loop
    std::uint64_t hopSum = 0;
  };

  void recordDelivery(Time t, double delaySec, bool looped, std::size_t hops) {
    auto& b = bucketAt(t);
    ++b.delivered;
    b.delaySum += delaySec;
    if (looped) ++b.loopedDelivered;
    b.hopSum += hops;
  }

  [[nodiscard]] const Bucket& bucket(int second) const {
    static const Bucket kEmpty{};
    const auto i = static_cast<std::size_t>(second);
    return second >= 0 && i < buckets_.size() ? buckets_[i] : kEmpty;
  }

  [[nodiscard]] int size() const { return static_cast<int>(buckets_.size()); }

  [[nodiscard]] double throughputAt(int second) const {
    return static_cast<double>(bucket(second).delivered);
  }

  /// Mean end-to-end delay of packets delivered in this second (0 if none).
  [[nodiscard]] double meanDelayAt(int second) const {
    const auto& b = bucket(second);
    return b.delivered == 0 ? 0.0 : b.delaySum / b.delivered;
  }

 private:
  Bucket& bucketAt(Time t) {
    auto sec = static_cast<std::size_t>(t.ns() / 1'000'000'000);
    if (sec >= buckets_.size()) buckets_.resize(sec + 1);
    return buckets_[sec];
  }

  std::vector<Bucket> buckets_;
};

}  // namespace rcsim
