#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>

#include "net/types.hpp"
#include "stats/path_tracer.hpp"
#include "stats/route_log.hpp"
#include "stats/timeseries.hpp"

namespace rcsim {

class Network;
struct Packet;

/// Packet-event tallies, split by cause. Data and control planes are
/// counted separately so routing messages don't pollute Figure 3/4 numbers.
struct PacketCounters {
  std::uint64_t delivered = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropNoRoute = 0;
  std::uint64_t dropTtl = 0;
  std::uint64_t dropQueue = 0;
  std::uint64_t dropLinkDown = 0;
  std::uint64_t dropInFlightCut = 0;
  std::uint64_t dropLoss = 0;     ///< DropReason::RandomLoss (fault injection)
  std::uint64_t dropCorrupt = 0;  ///< DropReason::Corrupted (fault injection)

  [[nodiscard]] std::uint64_t totalDropped() const {
    return dropNoRoute + dropTtl + dropQueue + dropLinkDown + dropInFlightCut + dropLoss +
           dropCorrupt;
  }
};

/// One-stop instrumentation: installs itself into the network's hooks and
/// feeds the counters, time series, route-change log and path tracer.
class StatsCollector {
 public:
  struct Config {
    NodeId sender = kInvalidNode;    ///< Data source (for path tracing).
    NodeId receiver = kInvalidNode;  ///< Data sink.
    bool trackPath = true;
  };

  StatsCollector(Network& net, Config cfg);

  /// Install network hooks. Must be the only hooks user for this network.
  void install();

  /// Set the failure watermark on all sub-collectors.
  void setFailureWatermark(Time t);

  [[nodiscard]] const PacketCounters& data() const { return data_; }
  [[nodiscard]] const PacketCounters& control() const { return control_; }
  [[nodiscard]] const TimeSeries& series() const { return series_; }
  [[nodiscard]] const RouteChangeLog& routeLog() const { return routeLog_; }
  [[nodiscard]] RouteChangeLog& routeLog() { return routeLog_; }
  [[nodiscard]] const PathTracer* tracer() const { return tracer_.get(); }

  /// Data packets dropped at/after the watermark, by reason (the paper's
  /// Figures 3 and 4 count only convergence-period drops).
  [[nodiscard]] const PacketCounters& dataAfterWatermark() const { return dataAfter_; }

  /// Delivered packets that had visited some node twice (escaped a loop).
  [[nodiscard]] std::uint64_t loopEscapedDeliveries() const { return loopEscaped_; }

  /// Routing-load accounting (every control payload handed to a link).
  [[nodiscard]] std::uint64_t controlMessages() const { return controlMessages_; }
  [[nodiscard]] std::uint64_t controlBytes() const { return controlBytes_; }
  [[nodiscard]] std::uint64_t controlMessagesAfterWatermark() const {
    return controlMessagesAfter_;
  }

 private:
  void onDrop(Time t, NodeId where, const Packet& p, DropReason reason);
  void onDeliver(Time t, NodeId node, const Packet& p);

  Network& net_;
  Config cfg_;
  PacketCounters data_;
  PacketCounters dataAfter_;
  PacketCounters control_;
  TimeSeries series_;
  RouteChangeLog routeLog_;
  std::unique_ptr<PathTracer> tracer_;
  Time watermark_ = Time::infinity();
  std::uint64_t loopEscaped_ = 0;
  std::uint64_t controlMessages_ = 0;
  std::uint64_t controlBytes_ = 0;
  std::uint64_t controlMessagesAfter_ = 0;
};

}  // namespace rcsim
