#include "stats/route_log.hpp"

namespace rcsim {

void RouteChangeLog::record(Time t, NodeId /*node*/, NodeId dst, NodeId /*oldNh*/, NodeId newNh) {
  ++total_;
  lastAny_ = t;
  if (static_cast<std::size_t>(dst) < lastPerDst_.size()) {
    lastPerDst_[static_cast<std::size_t>(dst)] = t;
  }
  if (t >= watermark_) {
    ++afterWatermark_;
    if (newNh == kInvalidNode) ++lossesAfterWatermark_;
  }
}

}  // namespace rcsim
