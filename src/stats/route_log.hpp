#pragma once

#include <cstdint>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace rcsim {

/// Aggregated view of every FIB change in the network. Provides the
/// paper's "network routing convergence time" (Figure 6b): the time of the
/// last route change after the failure watermark.
class RouteChangeLog {
 public:
  void resize(std::size_t nodeCount) { lastPerDst_.assign(nodeCount, Time::zero()); }

  /// The failure-injection time; changes at or after it count as
  /// convergence activity.
  void setWatermark(Time t) { watermark_ = t; }
  [[nodiscard]] Time watermark() const { return watermark_; }

  void record(Time t, NodeId node, NodeId dst, NodeId oldNh, NodeId newNh);

  [[nodiscard]] Time lastChangeAny() const { return lastAny_; }
  [[nodiscard]] Time lastChangeFor(NodeId dst) const {
    return lastPerDst_[static_cast<std::size_t>(dst)];
  }
  [[nodiscard]] std::uint64_t totalChanges() const { return total_; }
  [[nodiscard]] std::uint64_t changesAfterWatermark() const { return afterWatermark_; }
  /// Routes lost (new next hop invalid) after the watermark — the
  /// switch-over black-hole events.
  [[nodiscard]] std::uint64_t routeLossesAfterWatermark() const { return lossesAfterWatermark_; }

  /// Seconds from watermark to the last observed change (0 when no change
  /// happened after the watermark).
  [[nodiscard]] double convergenceSeconds() const {
    if (lastAny_ < watermark_) return 0.0;
    return (lastAny_ - watermark_).toSeconds();
  }

 private:
  Time watermark_ = Time::infinity();
  Time lastAny_ = Time::zero();
  std::vector<Time> lastPerDst_;
  std::uint64_t total_ = 0;
  std::uint64_t afterWatermark_ = 0;
  std::uint64_t lossesAfterWatermark_ = 0;
};

}  // namespace rcsim
