#pragma once

#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace rcsim {

class Network;

/// Watches the sender→receiver forwarding path (the FIB walk) across route
/// changes. Produces the paper's per-failure path forensics: the sequence
/// of transient forwarding paths, whether each loops or black-holes, and
/// the forwarding-path convergence delay (Figure 6a).
class PathTracer {
 public:
  struct PathEvent {
    Time t;
    std::vector<NodeId> path;
    bool loop = false;
    bool blackhole = false;
  };

  PathTracer(Network& net, NodeId src, NodeId dst);

  /// Snapshot the current path; records an event if it differs from the
  /// last snapshot. Call after any route change (and once at start).
  void snapshot(Time t);

  [[nodiscard]] const std::vector<PathEvent>& events() const { return events_; }
  [[nodiscard]] const std::vector<NodeId>& currentPath() const;

  /// Number of distinct transient paths observed at or after `watermark`.
  [[nodiscard]] int transientPathsAfter(Time watermark) const;
  /// Seconds from watermark to the last path change (0 if none).
  [[nodiscard]] double convergenceSecondsAfter(Time watermark) const;
  /// Did any observed path at/after watermark contain a loop?
  [[nodiscard]] bool sawLoopAfter(Time watermark) const;
  [[nodiscard]] bool sawBlackholeAfter(Time watermark) const;

 private:
  Network& net_;
  NodeId src_;
  NodeId dst_;
  std::vector<PathEvent> events_;
};

}  // namespace rcsim
