#include "stats/collector.hpp"

#include <unordered_set>

#include "net/network.hpp"
#include "net/packet.hpp"

namespace rcsim {
namespace {

bool hasRepeatedNode(const std::vector<NodeId>& trace) {
  std::unordered_set<NodeId> seen;
  for (const NodeId n : trace) {
    if (!seen.insert(n).second) return true;
  }
  return false;
}

void bump(PacketCounters& c, DropReason reason) {
  switch (reason) {
    case DropReason::NoRoute: ++c.dropNoRoute; break;
    case DropReason::TtlExpired: ++c.dropTtl; break;
    case DropReason::QueueOverflow: ++c.dropQueue; break;
    case DropReason::LinkDown: ++c.dropLinkDown; break;
    case DropReason::InFlightCut: ++c.dropInFlightCut; break;
    case DropReason::RandomLoss: ++c.dropLoss; break;
    case DropReason::Corrupted: ++c.dropCorrupt; break;
  }
}

}  // namespace

StatsCollector::StatsCollector(Network& net, Config cfg) : net_{net}, cfg_{cfg} {
  routeLog_.resize(net.nodeCount());
  if (cfg_.trackPath && cfg_.sender != kInvalidNode && cfg_.receiver != kInvalidNode) {
    tracer_ = std::make_unique<PathTracer>(net, cfg_.sender, cfg_.receiver);
  }
}

void StatsCollector::setFailureWatermark(Time t) {
  watermark_ = t;
  routeLog_.setWatermark(t);
}

void StatsCollector::install() {
  auto& hooks = net_.hooks();
  hooks.onDrop = [this](Time t, NodeId where, const Packet& p, DropReason r) {
    onDrop(t, where, p, r);
  };
  hooks.onDeliver = [this](Time t, NodeId node, const Packet& p) { onDeliver(t, node, p); };
  hooks.onForward = [this](Time, NodeId, const Packet& p, NodeId) {
    if (p.kind == PacketKind::Data) ++data_.forwarded;
  };
  hooks.onRouteChange = [this](Time t, NodeId node, NodeId dst, NodeId oldNh, NodeId newNh) {
    routeLog_.record(t, node, dst, oldNh, newNh);
    if (tracer_) tracer_->snapshot(t);
  };
  hooks.onControlSend = [this](Time t, NodeId, NodeId, const ControlPayload& payload) {
    ++controlMessages_;
    controlBytes_ += payload.sizeBytes();
    if (t >= watermark_) ++controlMessagesAfter_;
  };
}

void StatsCollector::onDrop(Time t, NodeId where, const Packet& p, DropReason reason) {
  if (p.kind != PacketKind::Data) {
    bump(control_, reason);
    return;
  }
  (void)where;
  bump(data_, reason);
  if (t >= watermark_) bump(dataAfter_, reason);
}

void StatsCollector::onDeliver(Time t, NodeId /*node*/, const Packet& p) {
  if (p.kind != PacketKind::Data) return;
  ++data_.delivered;
  const double delay = (t - p.sendTime).toSeconds();
  const bool looped = p.trace != nullptr && hasRepeatedNode(*p.trace);
  if (looped) ++loopEscaped_;
  series_.recordDelivery(t, delay, looped, p.trace ? p.trace->size() - 1 : 0);
}

}  // namespace rcsim
