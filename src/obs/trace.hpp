#pragma once

// Typed structured event tracing — the replacement for the old string-sink
// TraceLog. A TraceEvent is a fixed-size record (time, kind, category, two
// node ids, three integer payload words); call sites emit it through the
// Tracer owned by Network, which forwards to an installed TraceSink. With
// no sink installed the whole path is one pointer null-check — no strings,
// no allocation, nothing formatted.
//
// The categories match the paper's "routing and forwarding trace files"
// (Section 5) plus the fault-injection and simulator-summary channels that
// grew since; the kinds enumerate every event the forensic replayer
// (obs/replay.hpp) and the rcsim-trace CLI understand.

#include <cstdint>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace rcsim::obs {

/// Independent trace channels. Callers can enable any subset via the
/// Tracer's category mask; a full-fidelity trace keeps all of them.
enum class TraceCategory : std::uint8_t {
  Forwarding,  ///< data-plane: forward / drop / deliver / originate
  Routing,     ///< FIB changes, protocol decisions, update & MRAI machinery
  Transport,   ///< reliable-session RTO / reset
  Failure,     ///< link up/down transitions
  Fault,       ///< fault-plan events as the injector applies them
  Sim,         ///< per-run scheduler summary
};
inline constexpr int kTraceCategoryCount = 6;

[[nodiscard]] constexpr const char* toString(TraceCategory cat) {
  switch (cat) {
    case TraceCategory::Forwarding: return "fwd";
    case TraceCategory::Routing: return "rt";
    case TraceCategory::Transport: return "tx";
    case TraceCategory::Failure: return "fail";
    case TraceCategory::Fault: return "fault";
    case TraceCategory::Sim: return "sim";
  }
  return "?";
}

/// Every event the simulator can emit. The numeric values are part of the
/// rcsim-trace-v1 on-disk format: append new kinds at the end, never
/// renumber.
enum class TraceKind : std::uint8_t {
  LinkDown = 0,
  LinkUp = 1,
  RouteChange = 2,   ///< a=node, x=dst, y=old next hop, z=new next hop
  Forward = 3,       ///< a=node, b=next hop, x=packet id, y=ttl, z=dst
  Drop = 4,          ///< a=where, x=packet id, y=DropReason, z=1 if data
  Deliver = 5,       ///< a=node, x=packet id, y=send time ns, z=hops
  Originate = 6,     ///< a=src, b=dst, x=packet id
  ControlSend = 7,   ///< a=from, b=to, x=payload bytes
  TransportRto = 8,  ///< a=node, b=peer, x=in-flight segments, y=rto ns
  TransportReset = 9,  ///< a=node, b=peer, x=max retries exhausted
  BgpBest = 10,      ///< a=node, x=dst, y=best via, z=path length (0=unreachable)
  BgpAdvert = 11,    ///< a=node, b=peer, x=dst, y=advertised path length
  BgpWithdraw = 12,  ///< a=node, b=peer, x=dst
  MraiArm = 13,      ///< a=node, b=peer, x=delay ns, z=dst for per-dest mode else -1
  MraiFire = 14,     ///< a=node, b=peer, x=pending dsts at expiry, z=dst / -1
  DvPeriodic = 15,   ///< a=node, x=destinations announced
  DvTriggered = 16,  ///< a=node, x=changed destinations flushed
  FaultApply = 17,   ///< a,b=target ids, x=FaultKind
  SimSummary = 18,   ///< x=events executed, y=events scheduled, z=pool slots
  HelloSend = 19,    ///< a=from, b=to, x=hello bytes on the wire
  AdjDown = 20,      ///< a=node, b=neighbor, x=1 if the link is actually up (false positive)
  AdjUp = 21,        ///< a=node, b=neighbor
};
inline constexpr int kTraceKindCount = 22;

[[nodiscard]] constexpr const char* toString(TraceKind kind) {
  switch (kind) {
    case TraceKind::LinkDown: return "link-down";
    case TraceKind::LinkUp: return "link-up";
    case TraceKind::RouteChange: return "route";
    case TraceKind::Forward: return "forward";
    case TraceKind::Drop: return "drop";
    case TraceKind::Deliver: return "deliver";
    case TraceKind::Originate: return "originate";
    case TraceKind::ControlSend: return "control";
    case TraceKind::TransportRto: return "rto";
    case TraceKind::TransportReset: return "reset";
    case TraceKind::BgpBest: return "bgp-best";
    case TraceKind::BgpAdvert: return "bgp-advert";
    case TraceKind::BgpWithdraw: return "bgp-withdraw";
    case TraceKind::MraiArm: return "mrai-arm";
    case TraceKind::MraiFire: return "mrai-fire";
    case TraceKind::DvPeriodic: return "dv-periodic";
    case TraceKind::DvTriggered: return "dv-triggered";
    case TraceKind::FaultApply: return "fault";
    case TraceKind::SimSummary: return "summary";
    case TraceKind::HelloSend: return "hello";
    case TraceKind::AdjDown: return "adj-down";
    case TraceKind::AdjUp: return "adj-up";
  }
  return "?";
}

/// Each kind belongs to exactly one category, fixed here so emitters and
/// readers can never disagree about which mask bit guards an event.
[[nodiscard]] constexpr TraceCategory categoryOf(TraceKind kind) {
  switch (kind) {
    case TraceKind::LinkDown:
    case TraceKind::LinkUp:
    case TraceKind::AdjDown:
    case TraceKind::AdjUp: return TraceCategory::Failure;
    case TraceKind::RouteChange:
    case TraceKind::ControlSend:
    case TraceKind::HelloSend:
    case TraceKind::BgpBest:
    case TraceKind::BgpAdvert:
    case TraceKind::BgpWithdraw:
    case TraceKind::MraiArm:
    case TraceKind::MraiFire:
    case TraceKind::DvPeriodic:
    case TraceKind::DvTriggered: return TraceCategory::Routing;
    case TraceKind::Forward:
    case TraceKind::Drop:
    case TraceKind::Deliver:
    case TraceKind::Originate: return TraceCategory::Forwarding;
    case TraceKind::TransportRto:
    case TraceKind::TransportReset: return TraceCategory::Transport;
    case TraceKind::FaultApply: return TraceCategory::Fault;
    case TraceKind::SimSummary: return TraceCategory::Sim;
  }
  return TraceCategory::Sim;
}

/// One trace record. 48 bytes, trivially copyable; the x/y/z payload words
/// are interpreted per kind (see the TraceKind comments).
struct TraceEvent {
  Time t{};
  TraceKind kind{};
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  std::int64_t x = 0;
  std::int64_t y = 0;
  std::int64_t z = 0;

  [[nodiscard]] TraceCategory category() const { return categoryOf(kind); }

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Abstract consumer. Implementations: MemoryTraceSink and FileTraceSink
/// in obs/trace_io.hpp, plus ad-hoc sinks in tools/tests.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void onTraceEvent(const TraceEvent& ev) = 0;
};

/// The per-network dispatch point. Near-zero cost when disabled: wants()
/// is a pointer null-check plus a mask test, and every emitter guards its
/// payload construction behind it, so a run with no sink builds nothing.
class Tracer {
 public:
  static constexpr std::uint32_t kAllCategories = (1u << kTraceCategoryCount) - 1;
  static constexpr std::uint32_t kAllKinds = (1u << kTraceKindCount) - 1;

  /// Install/remove the sink (borrowed, not owned). Null disables tracing.
  void setSink(TraceSink* sink) { sink_ = sink; }
  [[nodiscard]] TraceSink* sink() const { return sink_; }

  /// Restrict emission to a subset of categories (default: all).
  void setCategoryMask(std::uint32_t mask) { mask_ = mask; }
  [[nodiscard]] std::uint32_t categoryMask() const { return mask_; }

  /// Restrict emission to a subset of kinds (default: all), ANDed with the
  /// category mask. The per-hop data-plane kinds (forward, originate)
  /// dominate a trace by volume, so a sink that does not consume them —
  /// the convergence analyzer with nothing recording downstream — narrows
  /// this and the hot path pays only the masked-branch cost for them.
  void setKindMask(std::uint32_t mask) { kindMask_ = mask; }
  [[nodiscard]] std::uint32_t kindMask() const { return kindMask_; }

  [[nodiscard]] bool enabled() const { return sink_ != nullptr; }
  [[nodiscard]] bool wants(TraceCategory cat) const {
    return sink_ != nullptr && ((mask_ >> static_cast<unsigned>(cat)) & 1u) != 0;
  }
  [[nodiscard]] bool wants(TraceKind kind) const {
    return wants(categoryOf(kind)) && ((kindMask_ >> static_cast<unsigned>(kind)) & 1u) != 0;
  }

  void emit(const TraceEvent& ev) const {
    if (wants(ev.kind)) sink_->onTraceEvent(ev);
  }
  void emit(Time t, TraceKind kind, NodeId a, NodeId b, std::int64_t x = 0, std::int64_t y = 0,
            std::int64_t z = 0) const {
    if (wants(kind)) sink_->onTraceEvent(TraceEvent{t, kind, a, b, x, y, z});
  }

 private:
  TraceSink* sink_ = nullptr;
  std::uint32_t mask_ = kAllCategories;
  std::uint32_t kindMask_ = kAllKinds;
};

}  // namespace rcsim::obs
