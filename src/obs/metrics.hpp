#pragma once

// Process-side metrics (distinct from simulation statistics): counters,
// gauges and latency histograms describing how the *simulator* behaves —
// scheduler hot-path totals, per-replica wall time, journal fsync cost.
// A MetricsRegistry is owned by whoever runs work (the SweepExecutor keeps
// one per job) and serializes into the `metrics` block of the
// rcsim-experiment-v1 artifact. All instruments are thread-safe; handles
// returned by the registry stay valid for the registry's lifetime.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/json_lite.hpp"

namespace rcsim::obs {

/// Monotonic event count. Lock-free.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value plus a running maximum (e.g. pool occupancy).
class Gauge {
 public:
  void set(double v) {
    std::lock_guard lk{mu_};
    value_ = v;
    if (v > max_) max_ = v;
  }
  [[nodiscard]] double value() const {
    std::lock_guard lk{mu_};
    return value_;
  }
  [[nodiscard]] double maxValue() const {
    std::lock_guard lk{mu_};
    return max_;
  }

 private:
  mutable std::mutex mu_;
  double value_ = 0.0;
  double max_ = 0.0;
};

/// Latency/size distribution: exact count/sum/min/max plus power-of-two
/// buckets (anchored at 1 microsecond when observing seconds) for
/// approximate quantiles. Good enough to tell "fsync is the bottleneck"
/// from "replicas are slow", which is all the sweep profiler needs.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;
  /// Upper bound of bucket i: kSmallest * 2^i (last bucket is open-ended).
  static constexpr double kSmallest = 1e-6;

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double minValue() const;  ///< 0 when empty
  [[nodiscard]] double maxValue() const;  ///< 0 when empty
  [[nodiscard]] double mean() const;      ///< 0 when empty

  /// Approximate quantile (upper bound of the bucket holding rank q).
  /// q in [0,1]; returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// {"count":N,"sum":s,"min":m,"max":M,"mean":a,"p50":...,"p90":...,"p99":...}
  [[nodiscard]] JsonValue toJson() const;

 private:
  mutable std::mutex mu_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

/// Named instruments, created on first use. Serialization is sorted by
/// name (std::map), so two runs that touch the same instruments produce
/// identical key order in the artifact.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// {"counters":{name:value},"gauges":{name:{value,max}},
  ///  "histograms":{name:{count,sum,...}}} — empty sections are omitted.
  [[nodiscard]] JsonValue toJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The thread's active registry, or null. Lets deep call sites (e.g.
/// runScenario recording scheduler totals) publish into whatever registry
/// the surrounding executor job installed — without threading a pointer
/// through every signature or touching the frozen RunResult layout.
[[nodiscard]] MetricsRegistry* currentMetrics();

/// RAII: install `r` as the calling thread's current registry, restoring
/// the previous one (usually null) on destruction.
class MetricsScope {
 public:
  explicit MetricsScope(MetricsRegistry& r);
  ~MetricsScope();
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  MetricsRegistry* prev_;
};

}  // namespace rcsim::obs
