#pragma once

// Online convergence-anatomy profiling — the paper's loss decomposition
// (detection latency, protocol convergence, transient loops, black-holes,
// per-cause drops) computed *during* the run from the live TraceEvent
// stream, instead of offline from a recorded trace file.
//
// The ConvergenceAnalyzer is a TraceSink that chains: install it as the
// Tracer's sink and it forwards every event verbatim to an optional
// downstream sink (a FileTraceSink, the fuzzer's MemoryTraceSink), so
// recording and analyzing compose without either seeing a different
// stream. It is an independent implementation of the reconstruction in
// obs/replay.hpp — the two cross-check each other element-wise on every
// golden scenario and on every fuzzer execution (RunStatus::
// AnatomyDivergence), which is what lets either be trusted.
//
// Where replay.cpp keeps a dense N x N shadow FIB and re-walks on every
// RouteChange, the analyzer keeps only the receiver's FIB *column* (the
// walk never reads any other destination) and re-walks only when that
// column changed — O(N) memory and far fewer walks, with provably
// identical output: a walk after an unrelated RouteChange reproduces the
// previous path, which the PathTracer dedup discards anyway. The single
// exception is the first RouteChange of the stream, which the dedup
// always records; the analyzer walks on that one unconditionally.

#include <array>
#include <cstdint>
#include <vector>

#include "obs/replay.hpp"
#include "obs/trace.hpp"

namespace rcsim::obs {

/// One fault-triggered convergence event, decomposed into the paper's
/// phases. An episode opens at a disruption trigger (FaultApply, LinkDown
/// or LinkUp) and closes at the next trigger with a later timestamp (or at
/// end of stream). Triggers sharing one timestamp merge into one episode:
/// a FaultApply that synchronously fails a link, or a partition cutting k
/// links at one instant, is one disruption, not k.
struct ConvergenceEpisode {
  Time start{};                ///< trigger timestamp
  TraceKind trigger{};         ///< first trigger's kind
  int triggerCount = 0;        ///< same-timestamp trigger events merged in

  /// Detection latency endpoint: the first AdjDown *or* RouteChange in the
  /// episode — hello-based detection surfaces as AdjDown, oracle detection
  /// surfaces directly as the adjacent node's route change. infinity() =
  /// the episode produced no detectable reaction.
  Time detectAt = Time::infinity();
  Time firstRouteChangeAt = Time::infinity();
  Time lastRouteChangeAt = Time::infinity();
  std::uint64_t routeChanges = 0;  ///< FIB churn inside the episode

  std::uint64_t controlMessages = 0;  ///< ControlSend events in the episode
  std::uint64_t controlBytes = 0;
  std::uint64_t mraiDeferred = 0;     ///< MraiArm events (BGP update pacing)
  std::uint64_t dvTriggered = 0;      ///< triggered-update flushes

  /// Transient-loop / black-hole windows that *opened* inside this episode
  /// (a window closing in a later episode still belongs to its opener).
  /// Seconds sum closed windows only; an open-at-end window sets the flag.
  int loopWindows = 0;
  double loopSeconds = 0.0;
  bool loopOpenAtEnd = false;
  int blackholeWindows = 0;
  double blackholeSeconds = 0.0;
  bool blackholeOpenAtEnd = false;

  /// Data-plane drops inside the episode, attributed by cause: a TTL
  /// expiry while the traced path loops is a loop drop, any other TTL
  /// expiry is plain TTL; NoRoute is the black-hole signature.
  std::uint64_t dropsLoop = 0;
  std::uint64_t dropsBlackhole = 0;
  std::uint64_t dropsTtl = 0;
  std::uint64_t dropsQueue = 0;
  std::uint64_t dropsOther = 0;
  std::uint64_t delivered = 0;

  /// fault -> first detectable reaction; -1 when nothing reacted.
  [[nodiscard]] double detectionSec() const {
    return detectAt == Time::infinity() ? -1.0 : (detectAt - start).toSeconds();
  }
  /// first route change -> last route change; -1 when no route changed.
  [[nodiscard]] double convergenceSec() const {
    return firstRouteChangeAt == Time::infinity()
               ? -1.0
               : (lastRouteChangeAt - firstRouteChangeAt).toSeconds();
  }

  friend bool operator==(const ConvergenceEpisode&, const ConvergenceEpisode&) = default;
};

/// Per-run rollup of the episode list plus whole-run control-plane
/// accounting — the plain-data form that rides in RunResult, folds across
/// seeds in the executor (sums in seed order, so serial == pooled holds
/// bit-for-bit) and lands in the artifact's `convergence` block.
/// Deliberately NOT part of runResultFingerprint: the pinned golden
/// digests enumerate fields explicitly and predate these.
struct AnatomySummary {
  std::uint64_t episodes = 0;
  std::uint64_t triggers = 0;
  std::uint64_t detectedEpisodes = 0;   ///< episodes with a finite detectAt
  double detectionSecTotal = 0.0;       ///< sum over detected episodes
  std::uint64_t convergedEpisodes = 0;  ///< episodes with >= 1 RouteChange
  double convergenceSecTotal = 0.0;     ///< sum over converged episodes
  std::uint64_t fibChurn = 0;           ///< RouteChanges inside episodes

  std::uint64_t loopWindows = 0;  ///< whole run, episode-bound or not
  double loopSeconds = 0.0;       ///< closed windows only
  std::uint64_t blackholeWindows = 0;
  double blackholeSeconds = 0.0;

  std::uint64_t dropsLoop = 0;  ///< whole-run data-plane attribution
  std::uint64_t dropsBlackhole = 0;
  std::uint64_t dropsTtl = 0;
  std::uint64_t dropsQueue = 0;
  std::uint64_t dropsOther = 0;
  std::uint64_t delivered = 0;

  std::uint64_t controlMessages = 0;  ///< whole-run control accounting
  std::uint64_t controlBytes = 0;
  std::uint64_t helloMessages = 0;
  std::uint64_t helloBytes = 0;
  std::uint64_t dvTriggered = 0;
  std::uint64_t dvPeriodic = 0;
  std::uint64_t mraiArmed = 0;
  std::uint64_t mraiFired = 0;

  AnatomySummary& operator+=(const AnatomySummary& rhs);

  friend bool operator==(const AnatomySummary&, const AnatomySummary&) = default;
};

/// Everything the analyzer reconstructs. pathEvents / windows / kindCounts
/// / delivered / dropped carry the exact types and semantics of
/// ReplayResult, so the cross-check against replayTrace is a field-wise
/// compare — no translation layer to hide a divergence in.
struct AnatomyReport {
  std::vector<ConvergenceEpisode> episodes;

  std::vector<ReplayPathEvent> pathEvents;
  std::vector<ReplayWindow> loopWindows;
  std::vector<ReplayWindow> blackholeWindows;
  std::array<std::uint64_t, kTraceKindCount> kindCounts{};
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;  ///< data packets only (Drop with z==1)

  /// Whole-run data-plane drop attribution (see ConvergenceEpisode).
  std::uint64_t dropsLoop = 0;
  std::uint64_t dropsBlackhole = 0;
  std::uint64_t dropsTtl = 0;
  std::uint64_t dropsQueue = 0;
  std::uint64_t dropsOther = 0;

  /// Whole-run control-plane accounting, also kept per node so rcsim-
  /// inspect can rank talkers. Per-node vectors are empty when the node
  /// count is unknown (walk-less traces).
  std::uint64_t controlMessages = 0;
  std::uint64_t controlBytes = 0;
  std::uint64_t helloMessages = 0;
  std::uint64_t helloBytes = 0;
  std::uint64_t dvTriggered = 0;
  std::uint64_t dvPeriodic = 0;
  std::uint64_t mraiArmed = 0;
  std::uint64_t mraiFired = 0;
  std::vector<std::uint64_t> perNodeControlMessages;
  std::vector<std::uint64_t> perNodeControlBytes;

  [[nodiscard]] AnatomySummary summary() const;
};

/// Streaming convergence-anatomy profiler. Feed it the trace stream (as
/// the installed Tracer sink, or via analyzeTrace below), call finish()
/// once at end of stream, read report().
class ConvergenceAnalyzer : public TraceSink {
 public:
  /// `opt` carries the traced flow (src, dst) and the node count — the
  /// same triple replayTrace needs, from the same place (trace meta /
  /// Scenario). With an unusable triple the path walk is disabled and
  /// only counting/accounting runs, exactly like replayTrace.
  explicit ConvergenceAnalyzer(const ReplayOptions& opt, TraceSink* downstream = nullptr);

  /// The kinds analyze() actually consumes: episode triggers, detection
  /// and route events, data-plane fates (deliver/drop), and control-plane
  /// accounting. Everything outside this set — per-hop forwards above
  /// all — only feeds report().kindCounts. With nothing recording
  /// downstream, the Scenario narrows the Tracer's kind mask to this set
  /// so the dominant data-plane emissions cost one masked branch; a
  /// downstream sink restores the full stream (and full kindCounts).
  static constexpr std::uint32_t kConsumedKinds =
      (1u << static_cast<unsigned>(TraceKind::FaultApply)) |
      (1u << static_cast<unsigned>(TraceKind::LinkDown)) |
      (1u << static_cast<unsigned>(TraceKind::LinkUp)) |
      (1u << static_cast<unsigned>(TraceKind::AdjDown)) |
      (1u << static_cast<unsigned>(TraceKind::RouteChange)) |
      (1u << static_cast<unsigned>(TraceKind::Deliver)) |
      (1u << static_cast<unsigned>(TraceKind::Drop)) |
      (1u << static_cast<unsigned>(TraceKind::ControlSend)) |
      (1u << static_cast<unsigned>(TraceKind::HelloSend)) |
      (1u << static_cast<unsigned>(TraceKind::DvTriggered)) |
      (1u << static_cast<unsigned>(TraceKind::DvPeriodic)) |
      (1u << static_cast<unsigned>(TraceKind::MraiArm)) |
      (1u << static_cast<unsigned>(TraceKind::MraiFire));

  /// Forward target for the verbatim event stream (borrowed; null = none).
  void setDownstream(TraceSink* sink) { downstream_ = sink; }
  [[nodiscard]] TraceSink* downstream() const { return downstream_; }

  void onTraceEvent(const TraceEvent& ev) override;

  /// Close the open episode/windows. Idempotent; call after the last event.
  void finish();
  [[nodiscard]] bool finished() const { return finished_; }

  [[nodiscard]] const AnatomyReport& report() const { return report_; }

 private:
  void analyze(const TraceEvent& ev);
  void openEpisode(const TraceEvent& ev);
  void walk(Time t);

  ReplayOptions opt_;
  bool walkable_ = false;
  TraceSink* downstream_ = nullptr;
  bool finished_ = false;

  /// Receiver-column shadow FIB: nextHopToDst_[n] is n's primary next hop
  /// toward opt_.dst (the only column the path walk ever reads).
  std::vector<NodeId> nextHopToDst_;
  /// Epoch-stamped visited marks + reused path buffer, so a walk allocates
  /// nothing after the first.
  std::vector<std::uint64_t> visitedEpoch_;
  std::uint64_t epoch_ = 0;
  std::vector<NodeId> walkBuf_;

  bool episodeOpen_ = false;

  /// Incremental window fold (mirrors replay.cpp's post-hoc windows()):
  /// open state plus the index of the episode the open window belongs to.
  bool loopOpen_ = false;
  std::size_t loopOwner_ = kNoOwner;
  bool blackholeOpen_ = false;
  std::size_t blackholeOwner_ = kNoOwner;
  static constexpr std::size_t kNoOwner = static_cast<std::size_t>(-1);

  AnatomyReport report_;
};

/// Offline entry point: run the streaming analyzer over a recorded event
/// list. rcsim-inspect and the fuzzer's cross-check both go through this,
/// so "inspect on a recorded trace" and "the live run's analyzer" are the
/// same code over the same events — equal by construction.
[[nodiscard]] AnatomyReport analyzeTrace(const std::vector<TraceEvent>& events,
                                         const ReplayOptions& opt);

}  // namespace rcsim::obs
