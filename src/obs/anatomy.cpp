#include "obs/anatomy.hpp"

#include <stdexcept>

#include "net/types.hpp"

namespace rcsim::obs {

namespace {

/// Disruption events that open (or merge into) an episode. AdjDown is
/// deliberately absent: adjacency loss is *detection*, and a false
/// positive without a real disruption must not fabricate an episode.
bool isTrigger(TraceKind kind) {
  return kind == TraceKind::FaultApply || kind == TraceKind::LinkDown ||
         kind == TraceKind::LinkUp;
}

}  // namespace

AnatomySummary& AnatomySummary::operator+=(const AnatomySummary& rhs) {
  episodes += rhs.episodes;
  triggers += rhs.triggers;
  detectedEpisodes += rhs.detectedEpisodes;
  detectionSecTotal += rhs.detectionSecTotal;
  convergedEpisodes += rhs.convergedEpisodes;
  convergenceSecTotal += rhs.convergenceSecTotal;
  fibChurn += rhs.fibChurn;
  loopWindows += rhs.loopWindows;
  loopSeconds += rhs.loopSeconds;
  blackholeWindows += rhs.blackholeWindows;
  blackholeSeconds += rhs.blackholeSeconds;
  dropsLoop += rhs.dropsLoop;
  dropsBlackhole += rhs.dropsBlackhole;
  dropsTtl += rhs.dropsTtl;
  dropsQueue += rhs.dropsQueue;
  dropsOther += rhs.dropsOther;
  delivered += rhs.delivered;
  controlMessages += rhs.controlMessages;
  controlBytes += rhs.controlBytes;
  helloMessages += rhs.helloMessages;
  helloBytes += rhs.helloBytes;
  dvTriggered += rhs.dvTriggered;
  dvPeriodic += rhs.dvPeriodic;
  mraiArmed += rhs.mraiArmed;
  mraiFired += rhs.mraiFired;
  return *this;
}

AnatomySummary AnatomyReport::summary() const {
  AnatomySummary s;
  s.episodes = episodes.size();
  for (const auto& e : episodes) {
    s.triggers += static_cast<std::uint64_t>(e.triggerCount);
    if (e.detectAt != Time::infinity()) {
      ++s.detectedEpisodes;
      s.detectionSecTotal += e.detectionSec();
    }
    if (e.firstRouteChangeAt != Time::infinity()) {
      ++s.convergedEpisodes;
      s.convergenceSecTotal += e.convergenceSec();
    }
    s.fibChurn += e.routeChanges;
  }
  s.loopWindows = loopWindows.size();
  for (const auto& w : loopWindows) {
    if (!w.openAtEnd) s.loopSeconds += w.seconds();
  }
  s.blackholeWindows = blackholeWindows.size();
  for (const auto& w : blackholeWindows) {
    if (!w.openAtEnd) s.blackholeSeconds += w.seconds();
  }
  s.dropsLoop = dropsLoop;
  s.dropsBlackhole = dropsBlackhole;
  s.dropsTtl = dropsTtl;
  s.dropsQueue = dropsQueue;
  s.dropsOther = dropsOther;
  s.delivered = delivered;
  s.controlMessages = controlMessages;
  s.controlBytes = controlBytes;
  s.helloMessages = helloMessages;
  s.helloBytes = helloBytes;
  s.dvTriggered = dvTriggered;
  s.dvPeriodic = dvPeriodic;
  s.mraiArmed = mraiArmed;
  s.mraiFired = mraiFired;
  return s;
}

ConvergenceAnalyzer::ConvergenceAnalyzer(const ReplayOptions& opt, TraceSink* downstream)
    : opt_{opt}, downstream_{downstream} {
  walkable_ = opt_.nodeCount > 0 && opt_.src != kInvalidNode && opt_.dst != kInvalidNode &&
              static_cast<std::size_t>(opt_.src) < opt_.nodeCount &&
              static_cast<std::size_t>(opt_.dst) < opt_.nodeCount;
  if (walkable_) {
    nextHopToDst_.assign(opt_.nodeCount, kInvalidNode);
    visitedEpoch_.assign(opt_.nodeCount, 0);
  }
  if (opt_.nodeCount > 0) {
    report_.perNodeControlMessages.assign(opt_.nodeCount, 0);
    report_.perNodeControlBytes.assign(opt_.nodeCount, 0);
  }
}

void ConvergenceAnalyzer::onTraceEvent(const TraceEvent& ev) {
  if (!finished_) analyze(ev);
  if (downstream_ != nullptr) downstream_->onTraceEvent(ev);
}

void ConvergenceAnalyzer::openEpisode(const TraceEvent& ev) {
  if (episodeOpen_ && report_.episodes.back().start == ev.t) {
    // Same-timestamp triggers are one disruption: a FaultApply whose
    // synchronous link failure emits LinkDown at the same instant, or a
    // partition cutting several links at once.
    ++report_.episodes.back().triggerCount;
    return;
  }
  ConvergenceEpisode e;
  e.start = ev.t;
  e.trigger = ev.kind;
  e.triggerCount = 1;
  report_.episodes.push_back(e);
  episodeOpen_ = true;
}

void ConvergenceAnalyzer::walk(Time t) {
  // The receiver-column walk: identical to replay.cpp's shadowWalk over a
  // full shadow FIB, because the walk only ever reads fib[cur][dst].
  ++epoch_;
  walkBuf_.clear();
  bool loop = false;
  bool blackhole = false;
  NodeId cur = opt_.src;
  while (true) {
    walkBuf_.push_back(cur);
    if (cur == opt_.dst) break;
    if (visitedEpoch_[static_cast<std::size_t>(cur)] == epoch_) {
      loop = true;
      break;
    }
    visitedEpoch_[static_cast<std::size_t>(cur)] = epoch_;
    const NodeId nh = nextHopToDst_[static_cast<std::size_t>(cur)];
    if (nh == kInvalidNode) {
      blackhole = true;
      break;
    }
    cur = nh;
  }
  // PathTracer::snapshot's dedup: record only a *changed* path.
  if (!report_.pathEvents.empty() && report_.pathEvents.back().path == walkBuf_) return;
  report_.pathEvents.push_back(ReplayPathEvent{t, walkBuf_, loop, blackhole});

  // Incremental form of replay.cpp's windows() fold, attributing each
  // window to the episode that was open when it began.
  if (loop && !loopOpen_) {
    report_.loopWindows.push_back(ReplayWindow{t, t, true});
    loopOpen_ = true;
    loopOwner_ = episodeOpen_ ? report_.episodes.size() - 1 : kNoOwner;
    if (loopOwner_ != kNoOwner) ++report_.episodes[loopOwner_].loopWindows;
  } else if (!loop && loopOpen_) {
    ReplayWindow& w = report_.loopWindows.back();
    w.end = t;
    w.openAtEnd = false;
    if (loopOwner_ != kNoOwner) {
      report_.episodes[loopOwner_].loopSeconds += (w.end - w.begin).toSeconds();
    }
    loopOpen_ = false;
    loopOwner_ = kNoOwner;
  }
  if (blackhole && !blackholeOpen_) {
    report_.blackholeWindows.push_back(ReplayWindow{t, t, true});
    blackholeOpen_ = true;
    blackholeOwner_ = episodeOpen_ ? report_.episodes.size() - 1 : kNoOwner;
    if (blackholeOwner_ != kNoOwner) ++report_.episodes[blackholeOwner_].blackholeWindows;
  } else if (!blackhole && blackholeOpen_) {
    ReplayWindow& w = report_.blackholeWindows.back();
    w.end = t;
    w.openAtEnd = false;
    if (blackholeOwner_ != kNoOwner) {
      report_.episodes[blackholeOwner_].blackholeSeconds += (w.end - w.begin).toSeconds();
    }
    blackholeOpen_ = false;
    blackholeOwner_ = kNoOwner;
  }
}

void ConvergenceAnalyzer::analyze(const TraceEvent& ev) {
  ++report_.kindCounts[static_cast<std::size_t>(ev.kind)];

  if (isTrigger(ev.kind)) openEpisode(ev);
  ConvergenceEpisode* ep = episodeOpen_ ? &report_.episodes.back() : nullptr;

  switch (ev.kind) {
    case TraceKind::RouteChange: {
      if (ep != nullptr) {
        if (ep->detectAt == Time::infinity()) ep->detectAt = ev.t;
        if (ep->firstRouteChangeAt == Time::infinity()) ep->firstRouteChangeAt = ev.t;
        ep->lastRouteChangeAt = ev.t;
        ++ep->routeChanges;
      }
      if (!walkable_) break;
      const auto node = static_cast<std::size_t>(ev.a);
      const auto dst = static_cast<std::size_t>(ev.x);
      if (node >= opt_.nodeCount || dst >= opt_.nodeCount) {
        // Same contract (and text) as replayTrace: a trace whose route
        // events do not fit the declared node count is corrupt.
        throw std::runtime_error("trace replay: RouteChange references a node outside 0..N-1");
      }
      if (static_cast<NodeId>(ev.x) == opt_.dst) {
        nextHopToDst_[node] = static_cast<NodeId>(ev.z);
        walk(ev.t);
      } else if (report_.pathEvents.empty()) {
        // The very first RouteChange always records a path event in the
        // offline replay (its dedup list is empty); later off-column
        // changes cannot alter the walked path and are skipped.
        walk(ev.t);
      }
      break;
    }
    case TraceKind::AdjDown:
      if (ep != nullptr && ep->detectAt == Time::infinity()) ep->detectAt = ev.t;
      break;
    case TraceKind::Deliver:
      ++report_.delivered;
      if (ep != nullptr) ++ep->delivered;
      break;
    case TraceKind::Drop: {
      if (ev.z != 1) break;  // data packets only; z flags the plane
      ++report_.dropped;
      std::uint64_t ConvergenceEpisode::* field = &ConvergenceEpisode::dropsOther;
      std::uint64_t AnatomyReport::* total = &AnatomyReport::dropsOther;
      switch (static_cast<DropReason>(ev.y)) {
        case DropReason::TtlExpired:
          // A TTL death while the traced path loops is the loop's kill;
          // outside a loop window it is a plain TTL drop.
          field = loopOpen_ ? &ConvergenceEpisode::dropsLoop : &ConvergenceEpisode::dropsTtl;
          total = loopOpen_ ? &AnatomyReport::dropsLoop : &AnatomyReport::dropsTtl;
          break;
        case DropReason::NoRoute:
          field = &ConvergenceEpisode::dropsBlackhole;
          total = &AnatomyReport::dropsBlackhole;
          break;
        case DropReason::QueueOverflow:
          field = &ConvergenceEpisode::dropsQueue;
          total = &AnatomyReport::dropsQueue;
          break;
        default: break;
      }
      ++(report_.*total);
      if (ep != nullptr) ++(ep->*field);
      break;
    }
    case TraceKind::ControlSend:
      ++report_.controlMessages;
      report_.controlBytes += static_cast<std::uint64_t>(ev.x);
      if (static_cast<std::size_t>(ev.a) < report_.perNodeControlMessages.size()) {
        ++report_.perNodeControlMessages[static_cast<std::size_t>(ev.a)];
        report_.perNodeControlBytes[static_cast<std::size_t>(ev.a)] +=
            static_cast<std::uint64_t>(ev.x);
      }
      if (ep != nullptr) {
        ++ep->controlMessages;
        ep->controlBytes += static_cast<std::uint64_t>(ev.x);
      }
      break;
    case TraceKind::HelloSend:
      ++report_.helloMessages;
      report_.helloBytes += static_cast<std::uint64_t>(ev.x);
      if (static_cast<std::size_t>(ev.a) < report_.perNodeControlMessages.size()) {
        ++report_.perNodeControlMessages[static_cast<std::size_t>(ev.a)];
        report_.perNodeControlBytes[static_cast<std::size_t>(ev.a)] +=
            static_cast<std::uint64_t>(ev.x);
      }
      break;
    case TraceKind::DvTriggered:
      ++report_.dvTriggered;
      if (ep != nullptr) ++ep->dvTriggered;
      break;
    case TraceKind::DvPeriodic: ++report_.dvPeriodic; break;
    case TraceKind::MraiArm:
      ++report_.mraiArmed;
      if (ep != nullptr) ++ep->mraiDeferred;
      break;
    case TraceKind::MraiFire: ++report_.mraiFired; break;
    default: break;
  }
}

void ConvergenceAnalyzer::finish() {
  if (finished_) return;
  finished_ = true;
  if (loopOpen_ && loopOwner_ != kNoOwner) {
    report_.episodes[loopOwner_].loopOpenAtEnd = true;
  }
  if (blackholeOpen_ && blackholeOwner_ != kNoOwner) {
    report_.episodes[blackholeOwner_].blackholeOpenAtEnd = true;
  }
  episodeOpen_ = false;
}

AnatomyReport analyzeTrace(const std::vector<TraceEvent>& events, const ReplayOptions& opt) {
  ConvergenceAnalyzer analyzer{opt};
  for (const auto& ev : events) analyzer.onTraceEvent(ev);
  analyzer.finish();
  return analyzer.report();
}

}  // namespace rcsim::obs
