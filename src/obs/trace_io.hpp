#pragma once

// Serialization of the typed trace stream: the rcsim-trace-v1 JSONL
// format, the in-memory and file-backed sinks, the reader, and a
// deterministic digest over an event sequence.
//
// File layout (one record per line, no record spans lines):
//
//   {"crc":"<8 hex>","hdr":{"meta":{...},"schema":"rcsim-trace-v1"}}
//   {"crc":"<8 hex>","ev":[t_ns,kind,a,b,x,y,z]}
//   ...
//
// where "crc" is CRC-32 (the zlib polynomial, shared with the run journal)
// over the canonical compact serialization (dumpJsonLine) of the "hdr" /
// "ev" value. A torn tail from a mid-write kill fails its CRC and is
// counted + skipped on read, exactly like the journal's framing.

#include <cstdint>
#include <string>
#include <vector>

#include "core/json_lite.hpp"
#include "obs/trace.hpp"

namespace rcsim::obs {

inline constexpr const char* kTraceSchema = "rcsim-trace-v1";

/// Collects events in order; the replayer and tests consume the vector.
class MemoryTraceSink : public TraceSink {
 public:
  void onTraceEvent(const TraceEvent& ev) override { events_.push_back(ev); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Canonical single-line forms (no trailing newline).
[[nodiscard]] std::string encodeTraceLine(const TraceEvent& ev);
[[nodiscard]] std::string encodeTraceHeader(const JsonValue& meta);

/// Parse + CRC-check one event line. Returns false (leaving `out`
/// unspecified) on any corruption; header lines also return false.
[[nodiscard]] bool decodeTraceLine(const std::string& line, TraceEvent& out);

/// FNV-1a digest over the canonical event lines — a compact identity for a
/// whole trace. Two runs with identical seeds/configs produce identical
/// digests (test_obs.cpp pins this determinism).
[[nodiscard]] std::string traceDigest(const std::vector<TraceEvent>& events);

/// Streams events to a file. Buffered (flushed at ~256 KiB); close()
/// flushes, fsyncs and closes, and throws on I/O failure. The destructor
/// closes best-effort for the exception-unwind path.
class FileTraceSink : public TraceSink {
 public:
  /// Creates parent directories, truncates `path`, writes the header line.
  /// `meta` must be a JSON object (run parameters for the replayer).
  FileTraceSink(std::string path, const JsonValue& meta);
  ~FileTraceSink() override;

  FileTraceSink(const FileTraceSink&) = delete;
  FileTraceSink& operator=(const FileTraceSink&) = delete;

  void onTraceEvent(const TraceEvent& ev) override;
  void close();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t eventsWritten() const { return written_; }

 private:
  void writeAll(const char* data, std::size_t size);
  void flushBuffer();

  std::string path_;
  std::string buf_;
  int fd_ = -1;
  std::uint64_t written_ = 0;
};

/// A parsed trace file.
struct TraceFile {
  JsonValue meta;                  ///< the header's "meta" object
  std::vector<TraceEvent> events;  ///< valid events, file order
  std::size_t corrupt = 0;         ///< CRC-failed / malformed lines skipped
};

/// Read a trace. Throws std::runtime_error when the file is missing or its
/// header is absent/corrupt/of the wrong schema; corrupt event lines are
/// skipped and counted instead.
[[nodiscard]] TraceFile readTraceFile(const std::string& path);

}  // namespace rcsim::obs
