#include "obs/trace_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "core/digest.hpp"
#include "core/durable_io.hpp"

namespace rcsim::obs {

namespace {

constexpr std::size_t kFlushThreshold = 256 * 1024;

JsonValue eventToJson(const TraceEvent& ev) {
  JsonValue arr = JsonValue::makeArray();
  arr.array.reserve(7);
  // t.ns() stays well inside double's 2^53 exact-integer range for any
  // simulated horizon this project runs (hours of sim time ~ 1e13 ns).
  arr.array.push_back(JsonValue::makeNumber(static_cast<double>(ev.t.ns())));
  arr.array.push_back(JsonValue::makeNumber(static_cast<int>(ev.kind)));
  arr.array.push_back(JsonValue::makeNumber(ev.a));
  arr.array.push_back(JsonValue::makeNumber(ev.b));
  arr.array.push_back(JsonValue::makeNumber(static_cast<double>(ev.x)));
  arr.array.push_back(JsonValue::makeNumber(static_cast<double>(ev.y)));
  arr.array.push_back(JsonValue::makeNumber(static_cast<double>(ev.z)));
  return arr;
}

bool eventFromJson(const JsonValue& v, TraceEvent& out) {
  if (v.kind != JsonValue::Kind::Array || v.array.size() != 7) return false;
  for (const auto& e : v.array) {
    if (e.kind != JsonValue::Kind::Number) return false;
  }
  const int kind = static_cast<int>(v.array[1].number);
  if (kind < 0 || kind >= kTraceKindCount) return false;
  out.t = Time::nanoseconds(static_cast<std::int64_t>(v.array[0].number));
  out.kind = static_cast<TraceKind>(kind);
  out.a = static_cast<NodeId>(v.array[2].number);
  out.b = static_cast<NodeId>(v.array[3].number);
  out.x = static_cast<std::int64_t>(v.array[4].number);
  out.y = static_cast<std::int64_t>(v.array[5].number);
  out.z = static_cast<std::int64_t>(v.array[6].number);
  return true;
}

std::string frame(const char* key, const JsonValue& body) {
  const std::string canonical = dumpJsonLine(body);
  JsonValue line = JsonValue::makeObject();
  line.object["crc"] = JsonValue::makeString(crc32Hex(canonical));
  line.object[key] = body;
  return dumpJsonLine(line);
}

}  // namespace

std::string encodeTraceLine(const TraceEvent& ev) { return frame("ev", eventToJson(ev)); }

std::string encodeTraceHeader(const JsonValue& meta) {
  if (meta.kind != JsonValue::Kind::Object) {
    throw std::runtime_error("trace header meta must be a JSON object");
  }
  JsonValue hdr = JsonValue::makeObject();
  hdr.object["schema"] = JsonValue::makeString(kTraceSchema);
  hdr.object["meta"] = meta;
  return frame("hdr", hdr);
}

bool decodeTraceLine(const std::string& line, TraceEvent& out) {
  try {
    const JsonValue doc = parseJson(line);
    const auto it = doc.object.find("ev");
    if (doc.kind != JsonValue::Kind::Object || it == doc.object.end()) return false;
    if (crc32Hex(dumpJsonLine(it->second)) != doc.stringAt("crc")) return false;
    return eventFromJson(it->second, out);
  } catch (const std::exception&) {
    return false;
  }
}

std::string traceDigest(const std::vector<TraceEvent>& events) {
  std::string all;
  for (const auto& ev : events) {
    all += dumpJsonLine(eventToJson(ev));
    all += '\n';
  }
  return fnv1aHexDigest(all);
}

FileTraceSink::FileTraceSink(std::string path, const JsonValue& meta) : path_{std::move(path)} {
  const std::filesystem::path p{path_};
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("trace: cannot open " + path_ + ": " + std::strerror(errno));
  }
  buf_ = encodeTraceHeader(meta);
  buf_ += '\n';
}

FileTraceSink::~FileTraceSink() {
  if (fd_ < 0) return;
  try {
    close();
  } catch (...) {
    // Unwind path: the explicit close() is the one that reports errors.
  }
}

void FileTraceSink::onTraceEvent(const TraceEvent& ev) {
  buf_ += encodeTraceLine(ev);
  buf_ += '\n';
  ++written_;
  if (buf_.size() >= kFlushThreshold) flushBuffer();
}

void FileTraceSink::writeAll(const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd_, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("trace: write failed: " + path_ + ": " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

void FileTraceSink::flushBuffer() {
  if (buf_.empty()) return;
  writeAll(buf_.data(), buf_.size());
  buf_.clear();
}

void FileTraceSink::close() {
  if (fd_ < 0) return;
  flushBuffer();
  const int fd = fd_;
  fd_ = -1;
  try {
    fsyncFdOrThrow(fd, path_);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

TraceFile readTraceFile(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error("trace: cannot read " + path);

  TraceFile out;
  std::string line;
  bool sawHeader = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (!sawHeader) {
      // The first line must be a valid, CRC-clean header of our schema: a
      // torn or foreign file should fail loudly, not replay as empty.
      try {
        const JsonValue doc = parseJson(line);
        const JsonValue& hdr = doc.at("hdr");
        if (crc32Hex(dumpJsonLine(hdr)) != doc.stringAt("crc")) {
          throw std::runtime_error("header CRC mismatch");
        }
        if (hdr.stringAt("schema") != kTraceSchema) {
          throw std::runtime_error("schema is '" + hdr.stringAt("schema") + "'");
        }
        out.meta = hdr.at("meta");
      } catch (const std::exception& e) {
        throw std::runtime_error("trace: " + path + " is not an " + kTraceSchema + " file: " +
                                 e.what());
      }
      sawHeader = true;
      continue;
    }
    TraceEvent ev;
    if (decodeTraceLine(line, ev)) {
      out.events.push_back(ev);
    } else {
      ++out.corrupt;
    }
  }
  if (!sawHeader) {
    throw std::runtime_error("trace: " + path + " is empty (no " + kTraceSchema + " header)");
  }
  return out;
}

}  // namespace rcsim::obs
