#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace rcsim::obs {

namespace {

std::size_t bucketFor(double v) {
  if (v <= Histogram::kSmallest) return 0;
  const double exact = std::log2(v / Histogram::kSmallest);
  const auto idx = static_cast<std::size_t>(std::max(0.0, std::ceil(exact)));
  return std::min(idx, Histogram::kBuckets - 1);
}

double bucketUpperBound(std::size_t idx) {
  return Histogram::kSmallest * std::ldexp(1.0, static_cast<int>(idx));
}

}  // namespace

void Histogram::observe(double v) {
  if (!std::isfinite(v)) return;
  if (v < 0.0) v = 0.0;
  std::lock_guard lk{mu_};
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  ++buckets_[bucketFor(v)];
}

std::uint64_t Histogram::count() const {
  std::lock_guard lk{mu_};
  return count_;
}

double Histogram::sum() const {
  std::lock_guard lk{mu_};
  return sum_;
}

double Histogram::minValue() const {
  std::lock_guard lk{mu_};
  return min_;
}

double Histogram::maxValue() const {
  std::lock_guard lk{mu_};
  return max_;
}

double Histogram::mean() const {
  std::lock_guard lk{mu_};
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
  std::lock_guard lk{mu_};
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // The last bucket is open-ended — its nominal bound lies *below*
      // every value in it, so the observed max is the only honest answer.
      if (i + 1 == kBuckets) return max_;
      // Clamp the bucket bound to the observed extremes so a single-sample
      // histogram reports the sample, not a power of two near it.
      return std::clamp(bucketUpperBound(i), min_, max_);
    }
  }
  return max_;
}

JsonValue Histogram::toJson() const {
  JsonValue o = JsonValue::makeObject();
  // Snapshot under one lock so count/sum/min/max are mutually consistent.
  std::uint64_t count;
  double sum;
  double mn;
  double mx;
  std::array<std::uint64_t, kBuckets> buckets{};
  {
    std::lock_guard lk{mu_};
    count = count_;
    sum = sum_;
    mn = min_;
    mx = max_;
    buckets = buckets_;
  }
  auto quantileOf = [&](double q) -> double {
    if (count == 0) return 0.0;
    const auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets[i];
      if (seen >= rank) {
        if (i + 1 == kBuckets) return mx;  // open-ended top bucket
        return std::clamp(bucketUpperBound(i), mn, mx);
      }
    }
    return mx;
  };
  o.object["count"] = JsonValue::makeNumber(static_cast<double>(count));
  o.object["sum"] = JsonValue::makeNumber(sum);
  o.object["min"] = JsonValue::makeNumber(mn);
  o.object["max"] = JsonValue::makeNumber(mx);
  o.object["mean"] = JsonValue::makeNumber(count == 0 ? 0.0 : sum / static_cast<double>(count));
  o.object["p50"] = JsonValue::makeNumber(quantileOf(0.5));
  o.object["p90"] = JsonValue::makeNumber(quantileOf(0.9));
  o.object["p99"] = JsonValue::makeNumber(quantileOf(0.99));
  return o;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lk{mu_};
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lk{mu_};
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lk{mu_};
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

JsonValue MetricsRegistry::toJson() const {
  JsonValue o = JsonValue::makeObject();
  std::lock_guard lk{mu_};
  if (!counters_.empty()) {
    JsonValue c = JsonValue::makeObject();
    for (const auto& [name, counter] : counters_) {
      c.object[name] = JsonValue::makeNumber(static_cast<double>(counter->value()));
    }
    o.object["counters"] = std::move(c);
  }
  if (!gauges_.empty()) {
    JsonValue g = JsonValue::makeObject();
    for (const auto& [name, gauge] : gauges_) {
      JsonValue one = JsonValue::makeObject();
      one.object["value"] = JsonValue::makeNumber(gauge->value());
      one.object["max"] = JsonValue::makeNumber(gauge->maxValue());
      g.object[name] = std::move(one);
    }
    o.object["gauges"] = std::move(g);
  }
  if (!histograms_.empty()) {
    JsonValue h = JsonValue::makeObject();
    for (const auto& [name, hist] : histograms_) h.object[name] = hist->toJson();
    o.object["histograms"] = std::move(h);
  }
  return o;
}

namespace {
thread_local MetricsRegistry* g_currentMetrics = nullptr;
}  // namespace

MetricsRegistry* currentMetrics() { return g_currentMetrics; }

MetricsScope::MetricsScope(MetricsRegistry& r) : prev_{g_currentMetrics} {
  g_currentMetrics = &r;
}

MetricsScope::~MetricsScope() { g_currentMetrics = prev_; }

}  // namespace rcsim::obs
