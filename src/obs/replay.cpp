#include "obs/replay.hpp"

#include <stdexcept>

namespace rcsim::obs {

namespace {

/// The fibWalk algorithm from Network::fibWalk, verbatim, against the
/// shadow FIB. Any divergence here breaks the replay == live guarantee.
/// Like fibWalk, this follows *primary* next hops only: RouteChange trace
/// events carry the primary, and the canonical path is defined over
/// primaries even when ECMP spreads data packets across alternates.
std::vector<NodeId> shadowWalk(const std::vector<std::vector<NodeId>>& fib, NodeId src, NodeId dst,
                               bool* loop, bool* blackhole) {
  *loop = false;
  *blackhole = false;
  std::vector<NodeId> path;
  std::vector<char> visited(fib.size(), 0);
  NodeId cur = src;
  while (true) {
    path.push_back(cur);
    if (cur == dst) return path;
    if (visited[static_cast<std::size_t>(cur)]) {
      *loop = true;
      return path;
    }
    visited[static_cast<std::size_t>(cur)] = 1;
    const NodeId nh = fib[static_cast<std::size_t>(cur)][static_cast<std::size_t>(dst)];
    if (nh == kInvalidNode) {
      *blackhole = true;
      return path;
    }
    cur = nh;
  }
}

/// Fold the path sequence into contiguous true-spans of `flag`.
std::vector<ReplayWindow> windows(const std::vector<ReplayPathEvent>& events,
                                  bool ReplayPathEvent::*flag) {
  std::vector<ReplayWindow> out;
  bool open = false;
  for (const auto& e : events) {
    if (e.*flag && !open) {
      out.push_back(ReplayWindow{e.t, e.t, true});
      open = true;
    } else if (!(e.*flag) && open) {
      out.back().end = e.t;
      out.back().openAtEnd = false;
      open = false;
    }
  }
  return out;
}

bool isMraiKind(TraceKind k) {
  return k == TraceKind::MraiArm || k == TraceKind::MraiFire || k == TraceKind::BgpAdvert ||
         k == TraceKind::BgpWithdraw;
}

}  // namespace

ReplayOptions replayOptionsFromMeta(const JsonValue& meta) {
  ReplayOptions opt;
  if (meta.has("src")) opt.src = static_cast<NodeId>(meta.numberAt("src"));
  if (meta.has("dst")) opt.dst = static_cast<NodeId>(meta.numberAt("dst"));
  if (meta.has("nodes")) opt.nodeCount = static_cast<std::size_t>(meta.numberAt("nodes"));
  return opt;
}

ReplayResult replayTrace(const std::vector<TraceEvent>& events, const ReplayOptions& opt) {
  const bool walkable = opt.nodeCount > 0 && opt.src != kInvalidNode && opt.dst != kInvalidNode &&
                        static_cast<std::size_t>(opt.src) < opt.nodeCount &&
                        static_cast<std::size_t>(opt.dst) < opt.nodeCount;

  ReplayResult out;
  std::vector<std::vector<NodeId>> fib;
  if (walkable) {
    fib.assign(opt.nodeCount, std::vector<NodeId>(opt.nodeCount, kInvalidNode));
  }

  for (const auto& ev : events) {
    ++out.kindCounts[static_cast<std::size_t>(ev.kind)];
    if (isMraiKind(ev.kind)) out.mraiTimeline.push_back(ev);

    switch (ev.kind) {
      case TraceKind::RouteChange: {
        if (!walkable) break;
        const auto node = static_cast<std::size_t>(ev.a);
        const auto dst = static_cast<std::size_t>(ev.x);
        if (node >= opt.nodeCount || dst >= opt.nodeCount) {
          throw std::runtime_error("trace replay: RouteChange references a node outside 0..N-1");
        }
        fib[node][dst] = static_cast<NodeId>(ev.z);
        bool loop = false;
        bool blackhole = false;
        auto path = shadowWalk(fib, opt.src, opt.dst, &loop, &blackhole);
        // PathTracer::snapshot's dedup: record only a *changed* path.
        if (out.pathEvents.empty() || out.pathEvents.back().path != path) {
          out.pathEvents.push_back(ReplayPathEvent{ev.t, std::move(path), loop, blackhole});
        }
        break;
      }
      case TraceKind::Deliver: ++out.delivered; break;
      case TraceKind::Drop:
        if (ev.z == 1) ++out.dropped;  // data packets only; z flags the plane
        break;
      default: break;
    }
  }

  out.loopWindows = windows(out.pathEvents, &ReplayPathEvent::loop);
  out.blackholeWindows = windows(out.pathEvents, &ReplayPathEvent::blackhole);
  return out;
}

}  // namespace rcsim::obs
