#pragma once

// Offline reconstruction of a run's forwarding-plane story from its
// rcsim-trace-v1 event stream — no simulator, no Network, just the events.
//
// The replayer mirrors the live pipeline exactly: it applies each
// RouteChange to a shadow FIB, then re-runs Network::fibWalk's algorithm
// from the traced sender toward the traced receiver and appends a path
// record iff the path differs from the previous one — the same dedup
// PathTracer::snapshot applies. Because snapshot() is driven solely by
// the onRouteChange hook and fibWalk reads nothing but FIB state, the
// reconstructed sequence is bit-identical to PathTracer::events() from
// the live run (test_obs.cpp and `rcsim-trace --selftest` pin this).

#include <array>
#include <cstdint>
#include <vector>

#include "obs/trace_io.hpp"

namespace rcsim::obs {

struct ReplayOptions {
  NodeId src = kInvalidNode;  ///< traced sender (header meta "src")
  NodeId dst = kInvalidNode;  ///< traced receiver (header meta "dst")
  std::size_t nodeCount = 0;  ///< number of nodes (header meta "nodes")
};

/// One distinct forwarding path; mirrors PathTracer::PathEvent.
struct ReplayPathEvent {
  Time t{};
  std::vector<NodeId> path;
  bool loop = false;
  bool blackhole = false;

  friend bool operator==(const ReplayPathEvent&, const ReplayPathEvent&) = default;
};

/// A contiguous span during which the src→dst path looped / black-holed.
struct ReplayWindow {
  Time begin{};
  Time end{};             ///< meaningful only when !openAtEnd
  bool openAtEnd = false; ///< condition still held at the last path change

  [[nodiscard]] double seconds() const { return openAtEnd ? -1.0 : (end - begin).toSeconds(); }

  friend bool operator==(const ReplayWindow&, const ReplayWindow&) = default;
};

struct ReplayResult {
  std::vector<ReplayPathEvent> pathEvents;
  std::vector<ReplayWindow> loopWindows;
  std::vector<ReplayWindow> blackholeWindows;
  /// Chronological BGP update-pacing story: MraiArm / MraiFire /
  /// BgpAdvert / BgpWithdraw events, in stream order.
  std::vector<TraceEvent> mraiTimeline;
  /// Events seen per TraceKind (index = numeric kind value).
  std::array<std::uint64_t, kTraceKindCount> kindCounts{};

  std::uint64_t delivered = 0;  ///< Deliver events (data plane)
  std::uint64_t dropped = 0;    ///< Drop events (data packets only, z==1)
};

/// Populate ReplayOptions from a trace header's meta object (keys "src",
/// "dst", "nodes"). Missing keys leave the defaults; callers can override.
[[nodiscard]] ReplayOptions replayOptionsFromMeta(const JsonValue& meta);

[[nodiscard]] ReplayResult replayTrace(const std::vector<TraceEvent>& events,
                                       const ReplayOptions& opt);

inline ReplayResult replayTrace(const TraceFile& file) {
  return replayTrace(file.events, replayOptionsFromMeta(file.meta));
}

}  // namespace rcsim::obs
