#include "core/fingerprint.hpp"

#include <cstdio>
#include <sstream>

namespace rcsim {

namespace {

void put(std::ostringstream& os, const char* key, std::uint64_t v) {
  os << key << '=' << v << '\n';
}

void put(std::ostringstream& os, const char* key, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << key << '=' << buf << '\n';
}

void put(std::ostringstream& os, const char* key, const PacketCounters& c) {
  os << key << '=' << c.delivered << ',' << c.forwarded << ',' << c.dropNoRoute << ','
     << c.dropTtl << ',' << c.dropQueue << ',' << c.dropLinkDown << ',' << c.dropInFlightCut
     << '\n';
}

}  // namespace

std::string runResultFingerprint(const RunResult& r) {
  std::ostringstream os;
  put(os, "protocol", static_cast<std::uint64_t>(r.protocol));
  put(os, "degree", static_cast<std::uint64_t>(r.degree));
  put(os, "seed", r.seed);
  put(os, "sent", r.sent);
  put(os, "data", r.data);
  put(os, "dataAfterFailure", r.dataAfterFailure);
  put(os, "control", r.control);
  put(os, "loopEscapedDeliveries", r.loopEscapedDeliveries);
  put(os, "controlMessages", r.controlMessages);
  put(os, "controlBytes", r.controlBytes);
  put(os, "controlMessagesAfterFailure", r.controlMessagesAfterFailure);
  put(os, "tcpGoodputPackets", r.tcpGoodputPackets);
  put(os, "tcpRetransmissions", r.tcpRetransmissions);
  put(os, "routingConvergenceSec", r.routingConvergenceSec);
  put(os, "forwardingConvergenceSec", r.forwardingConvergenceSec);
  put(os, "transientPaths", static_cast<std::uint64_t>(r.transientPaths));
  put(os, "sawLoop", static_cast<std::uint64_t>(r.sawLoop));
  put(os, "sawBlackhole", static_cast<std::uint64_t>(r.sawBlackhole));
  put(os, "preFailurePathShortest", static_cast<std::uint64_t>(r.preFailurePathShortest));
  put(os, "preFailurePathHops", static_cast<std::uint64_t>(r.preFailurePathHops));
  put(os, "finalPathShortest", static_cast<std::uint64_t>(r.finalPathShortest));
  put(os, "routeChangesAfterFailure", r.routeChangesAfterFailure);
  put(os, "failSec", static_cast<std::uint64_t>(r.failSec));
  put(os, "eventsExecuted", r.eventsExecuted);
  os << "throughput=";
  for (const double v : r.throughput) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g;", v);
    os << buf;
  }
  os << '\n' << "meanDelay=";
  for (const double v : r.meanDelay) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g;", v);
    os << buf;
  }
  os << '\n';
  return os.str();
}

namespace {

std::string fnv1aHex(const std::string& fp) { return fnv1aHexDigest(fp); }

void putSeries(std::ostringstream& os, const char* key, const std::vector<double>& series) {
  os << key << '=';
  for (const double v : series) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g;", v);
    os << buf;
  }
  os << '\n';
}

}  // namespace

std::string runResultDigest(const RunResult& r) { return fnv1aHex(runResultFingerprint(r)); }

std::string aggregateFingerprint(const Aggregate& a) {
  std::ostringstream os;
  put(os, "runs", static_cast<std::uint64_t>(a.runs));
  put(os, "dropsNoRoute", a.dropsNoRoute);
  put(os, "dropsTtl", a.dropsTtl);
  put(os, "dropsOther", a.dropsOther);
  put(os, "delivered", a.delivered);
  put(os, "sent", a.sent);
  put(os, "routingConvergenceSec", a.routingConvergenceSec);
  put(os, "forwardingConvergenceSec", a.forwardingConvergenceSec);
  put(os, "transientPaths", a.transientPaths);
  put(os, "loopFraction", a.loopFraction);
  put(os, "loopEscapedDeliveries", a.loopEscapedDeliveries);
  put(os, "failSec", static_cast<std::uint64_t>(a.failSec));
  putSeries(os, "throughput", a.throughput);
  putSeries(os, "meanDelay", a.meanDelay);
  return os.str();
}

std::string aggregateDigest(const Aggregate& a) { return fnv1aHex(aggregateFingerprint(a)); }

std::string anatomyFingerprint(const obs::AnatomySummary& s) {
  std::ostringstream os;
  put(os, "episodes", s.episodes);
  put(os, "triggers", s.triggers);
  put(os, "detectedEpisodes", s.detectedEpisodes);
  put(os, "detectionSecTotal", s.detectionSecTotal);
  put(os, "convergedEpisodes", s.convergedEpisodes);
  put(os, "convergenceSecTotal", s.convergenceSecTotal);
  put(os, "fibChurn", s.fibChurn);
  put(os, "loopWindows", s.loopWindows);
  put(os, "loopSeconds", s.loopSeconds);
  put(os, "blackholeWindows", s.blackholeWindows);
  put(os, "blackholeSeconds", s.blackholeSeconds);
  put(os, "dropsLoop", s.dropsLoop);
  put(os, "dropsBlackhole", s.dropsBlackhole);
  put(os, "dropsTtl", s.dropsTtl);
  put(os, "dropsQueue", s.dropsQueue);
  put(os, "dropsOther", s.dropsOther);
  put(os, "delivered", s.delivered);
  put(os, "controlMessages", s.controlMessages);
  put(os, "controlBytes", s.controlBytes);
  put(os, "helloMessages", s.helloMessages);
  put(os, "helloBytes", s.helloBytes);
  put(os, "dvTriggered", s.dvTriggered);
  put(os, "dvPeriodic", s.dvPeriodic);
  put(os, "mraiArmed", s.mraiArmed);
  put(os, "mraiFired", s.mraiFired);
  return os.str();
}

std::string anatomyDigest(const obs::AnatomySummary& s) { return fnv1aHex(anatomyFingerprint(s)); }

}  // namespace rcsim
