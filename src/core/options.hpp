#pragma once

#include <string>
#include <vector>

#include "core/scenario.hpp"

namespace rcsim {

/// Key=value configuration layer over ScenarioConfig, shared by the CLI
/// tool and scriptable sweeps. Keys mirror the struct fields:
///
///   protocol=RIP|DBF|BGP|BGP3|LS     topology=mesh|random|file|named|inline
///   degree=4 rows=7 cols=7           random.nodes=49 random.avg-degree=4
///   random.tree=1 random.ensure-connected=0
///   file.path=abilene.topo           named.graph=abilene
///   inline.nodes=4 inline.edges=0-1,1-2,2-3
///   pin.src=-1 pin.dst=-1
///   seed=1 flows=1 traffic=cbr|tcp   rate=20 bytes=1000 ttl=127 window=8
///   traffic-start=390 traffic-stop=550
///   failures=1 fail-at=400 fail-spacing=5 repair-after=60 no-failure=1
///   end-at=800
///   bandwidth=10e6 prop-delay-ms=1 queue=20 detect-ms=50
///   hello.enabled=0 hello.interval=1 hello.dead=3.5 hello.jitter=0.2
///   dv.periodic=30 dv.timeout=180 dv.damp-min=1 dv.damp-max=5
///   dv.holddown=0 dv.trigger-min-gap=0
///   dv.infinity=16 dv.max-entries=25 dv.poison=1
///   bgp.mrai-min=22.5 bgp.mrai-max=30 bgp.per-dest-mrai=0
///   bgp.wd-exempt=1 bgp.assertions=0 bgp.rfd=0 bgp.rfd-penalty=1000
///   bgp.rfd-half-life=15 bgp.rfd-suppress=2000 bgp.rfd-reuse=750
///   ls.spf-delay-ms=10 ls.refresh=300
///   dual.sia-timeout=10 dual.max-distance=512
///
/// Throws std::invalid_argument on unknown keys or malformed values.
void applyOption(ScenarioConfig& cfg, const std::string& key, const std::string& value);

/// Split "key=value" and apply. Accepts an optional leading "--".
void applyOptionString(ScenarioConfig& cfg, const std::string& arg);

/// Render the config back to the canonical key=value list (round-trips
/// through applyOption); handy for logging exactly what a run used.
[[nodiscard]] std::vector<std::string> describeOptions(const ScenarioConfig& cfg);

}  // namespace rcsim
