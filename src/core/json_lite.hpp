#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rcsim {

/// Minimal JSON document model for the benchmark gate: objects, arrays,
/// numbers, strings, booleans and null. Enough to round-trip
/// BENCH_simcore.json without an external dependency.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool has(const std::string& key) const {
    return kind == Kind::Object && object.count(key) > 0;
  }
  /// Object member access; throws std::runtime_error on missing key or
  /// non-object value, so gate failures are loud rather than silent zeros.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] double numberAt(const std::string& key) const { return at(key).number; }
  [[nodiscard]] const std::string& stringAt(const std::string& key) const { return at(key).str; }

  // Builders, so writers read as declaratively as the documents they emit.
  [[nodiscard]] static JsonValue makeNumber(double v);
  [[nodiscard]] static JsonValue makeString(std::string s);
  [[nodiscard]] static JsonValue makeBool(bool b);
  [[nodiscard]] static JsonValue makeArray();
  [[nodiscard]] static JsonValue makeObject();
};

/// Parse a complete JSON document. Throws std::runtime_error with a byte
/// offset on malformed input; trailing garbage is an error.
[[nodiscard]] JsonValue parseJson(std::string_view text);

/// Serialize a document back to JSON text that parseJson accepts. Objects
/// and mixed arrays are pretty-printed with `indent` spaces per level;
/// arrays of scalars stay on one line (keeps per-second series compact).
/// Numbers use the shortest decimal form that round-trips through strtod,
/// so parse(dump(v)) reproduces v exactly; non-finite numbers become null
/// (JSON has no inf/nan).
[[nodiscard]] std::string dumpJson(const JsonValue& v, int indent = 2);

/// Compact single-line serialization (no newlines, no padding) with the
/// same number/string encoding as dumpJson. Deterministic for a given
/// document (object keys are sorted by std::map), so it doubles as the
/// canonical byte form that journal CRCs are computed over.
[[nodiscard]] std::string dumpJsonLine(const JsonValue& v);

}  // namespace rcsim
