#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rcsim {

/// Minimal JSON document model for the benchmark gate: objects, arrays,
/// numbers, strings, booleans and null. Enough to round-trip
/// BENCH_simcore.json without an external dependency.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool has(const std::string& key) const {
    return kind == Kind::Object && object.count(key) > 0;
  }
  /// Object member access; throws std::runtime_error on missing key or
  /// non-object value, so gate failures are loud rather than silent zeros.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] double numberAt(const std::string& key) const { return at(key).number; }
};

/// Parse a complete JSON document. Throws std::runtime_error with a byte
/// offset on malformed input; trailing garbage is an error.
[[nodiscard]] JsonValue parseJson(std::string_view text);

}  // namespace rcsim
