#include "core/report.hpp"

#include <cstdio>

namespace rcsim::report {

std::string fmt(double v, int width, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%*.*f", width, precision, v);
  return buf;
}

void header(const std::string& title, const std::string& subtitle) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
}

void degreeSweep(const std::string& metric, const std::vector<int>& degrees,
                 const std::vector<std::string>& protocols,
                 const std::vector<std::vector<double>>& values) {
  std::printf("%-8s", "degree");
  for (const auto& p : protocols) std::printf("%12s", p.c_str());
  std::printf("    (%s)\n", metric.c_str());
  for (std::size_t d = 0; d < degrees.size(); ++d) {
    std::printf("%-8d", degrees[d]);
    for (std::size_t p = 0; p < protocols.size(); ++p) {
      std::printf("%12s", fmt(values[p][d], 10, 2).c_str());
    }
    std::printf("\n");
  }
}

void timeSeries(const std::string& metric, const std::vector<std::string>& protocols,
                const std::vector<Aggregate>& aggs, int fromRel, int toRel, bool delaySeries) {
  // The paper normalizes time so that the failure lands at t = 50 s.
  std::printf("%-8s", "t(s)");
  for (const auto& p : protocols) std::printf("%12s", p.c_str());
  std::printf("    (%s, failure at t=50)\n", metric.c_str());
  for (int rel = fromRel; rel <= toRel; ++rel) {
    std::printf("%-8d", rel + 50);
    for (const auto& a : aggs) {
      const int sec = a.failSec + rel;
      const auto& series = delaySeries ? a.meanDelay : a.throughput;
      const double v =
          sec >= 0 && static_cast<std::size_t>(sec) < series.size()
              ? series[static_cast<std::size_t>(sec)]
              : 0.0;
      std::printf("%12s", fmt(v, 10, delaySeries ? 4 : 2).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace rcsim::report
