#include "core/scenario.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "topo/loader.hpp"

namespace rcsim {
namespace {

bool envInvariantsEnabled() {
  const char* v = std::getenv("RCSIM_CHECK_INVARIANTS");
  return v != nullptr && *v != '\0' && *v != '0';
}

}  // namespace

Scenario::Scenario(const ScenarioConfig& cfg) : cfg_{cfg}, rng_{cfg.seed} {
  if (cfg_.flows < 1) throw std::invalid_argument("scenario needs at least one flow");
  if (cfg_.injectFailure && cfg_.failureCount < 1) {
    throw std::invalid_argument("injectFailure requires failureCount >= 1");
  }

  Topology topo;
  switch (cfg_.topology) {
    case TopologyKind::RegularMesh:
      topo = makeRegularMesh(cfg_.mesh);
      break;
    case TopologyKind::File:
      topo = loadTopologyFile(cfg_.file.path).topo;
      break;
    case TopologyKind::Named:
      topo = namedTopology(cfg_.named.graph).topo;
      break;
    case TopologyKind::Random: {
      RandomGraphSpec rnd = cfg_.random;
      rnd.seed = cfg_.seed;  // one seed drives the whole run
      topo = makeRandomTopology(rnd);
      break;
    }
    case TopologyKind::Inline:
      topo.nodeCount = cfg_.inlineTopo.nodes;
      topo.edges = cfg_.inlineTopo.edges;
      topo.normalize();  // validates ids, self-loops, duplicates
      break;
  }
  // A flow needs two distinct endpoints; with fewer nodes the endpoint
  // draw below would call uniformInt with an empty range (UB). Inline
  // topologies (hand-written or minimizer-shrunk) can legitimately get
  // this small, so reject them with a diagnosis instead.
  if (topo.nodeCount < 2) {
    throw std::invalid_argument("scenario topology needs at least two nodes");
  }
  net_ = std::make_unique<Network>(sched_, rng_.fork());

  for (int i = 0; i < topo.nodeCount; ++i) net_->addNode();
  for (const auto& [a, b] : topo.edges) net_->addLink(a, b, cfg_.link);

  // The paper attaches the sender/receiver hosts to a randomly chosen
  // router on the first/last row; the attached router advertises the host
  // as directly connected, so routing-wise the host is an alias of its
  // router. We therefore source/sink traffic at the routers themselves
  // (DESIGN.md §4), keeping metric distances equal to router distances.
  const bool pinned = cfg_.pinSrc != kInvalidNode && cfg_.pinDst != kInvalidNode;
  if (pinned && (cfg_.pinSrc >= topo.nodeCount || cfg_.pinDst >= topo.nodeCount ||
                 cfg_.pinSrc == cfg_.pinDst)) {
    throw std::invalid_argument("pinned flow endpoints must be distinct nodes in range");
  }
  flows_.resize(static_cast<std::size_t>(cfg_.flows));
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    auto& flow = flows_[f];
    if (pinned && f == 0) {
      // Pinned endpoints bypass the RNG draw entirely, so a reproducer's
      // flow 0 survives topology edits that would reshuffle random picks.
      flow.sender = cfg_.pinSrc;
      flow.receiver = cfg_.pinDst;
    } else if (cfg_.topology == TopologyKind::RegularMesh) {
      flow.sender = gridId(0, static_cast<int>(rng_.uniformInt(0, cfg_.mesh.cols - 1)),
                           cfg_.mesh.cols);
      flow.receiver = gridId(cfg_.mesh.rows - 1,
                             static_cast<int>(rng_.uniformInt(0, cfg_.mesh.cols - 1)),
                             cfg_.mesh.cols);
    } else {
      // Random graph or loaded real-world topology: any two distinct nodes.
      flow.sender = static_cast<NodeId>(rng_.uniformInt(0, topo.nodeCount - 1));
      do {
        flow.receiver = static_cast<NodeId>(rng_.uniformInt(0, topo.nodeCount - 1));
      } while (flow.receiver == flow.sender);
    }
  }

  net_->finalize(cfg_.ecmp);

  for (NodeId id = 0; id < static_cast<NodeId>(net_->nodeCount()); ++id) {
    Node& node = net_->node(id);
    node.setProtocol(makeProtocol(cfg_.protocol, node, cfg_.protoCfg));
  }

  // Hello-based failure detection: once registered, the oracle detection
  // path inside Link::fail/recover stands down and adjacency loss is
  // discovered by missed hellos (net/detector.hpp).
  if (cfg_.hello.enabled) {
    detector_ = std::make_unique<HelloDetector>(*net_, cfg_.hello);
    net_->setDetector(detector_.get());
  }

  // Instrumentation watches flow 0 (the paper's single pair).
  stats_ = std::make_unique<StatsCollector>(
      *net_, StatsCollector::Config{flows_[0].sender, flows_[0].receiver, /*trackPath=*/true});
  stats_->install();
  stats_->setFailureWatermark(cfg_.failureWatermark());

  // Runtime invariant checking (opt-in: config flag or env var). Attached
  // as the network's secondary observer, so the stats hooks stay untouched.
  if (cfg_.checkInvariants || envInvariantsEnabled()) {
    checker_ = std::make_unique<fault::InvariantChecker>(*net_);
  }

  // Declarative fault schedule. The factory lets the injector rebuild a
  // crashed node's protocol without knowing which protocol the run uses.
  if (!cfg_.faultPlan.empty()) {
    injector_ = std::make_unique<fault::FaultInjector>(
        *net_, cfg_.faultPlan, [this](Node& node) {
          return makeProtocol(cfg_.protocol, node, cfg_.protoCfg);
        });
    // Route-table snapshot just before the first plan event fires. The
    // callback is synchronous (no scheduler event), so event counts — and
    // with them every pinned digest — stay untouched.
    injector_->setOnFirstFault([this] {
      if (fibDigestBefore_.empty()) fibDigestBefore_ = captureFibSnapshot();
    });
  }

  std::int32_t flowId = 0;
  for (auto& flow : flows_) {
    if (cfg_.traffic == TrafficKind::Cbr) {
      CbrSource::Config src;
      src.src = flow.sender;
      src.dst = flow.receiver;
      src.packetsPerSecond = cfg_.packetsPerSecond;
      src.packetBytes = cfg_.packetBytes;
      src.ttl = cfg_.ttl;
      src.start = cfg_.trafficStart;
      src.stop = cfg_.trafficStop;
      src.tracePackets = cfg_.tracePackets;
      flow.cbr = std::make_unique<CbrSource>(*net_, src);
    } else {
      TcpFlow::Config src;
      src.flowId = flowId;
      src.src = flow.sender;
      src.dst = flow.receiver;
      src.window = cfg_.tcpWindow;
      src.packetBytes = cfg_.packetBytes;
      src.ttl = cfg_.ttl;
      src.start = cfg_.trafficStart;
      src.stop = cfg_.trafficStop;
      src.tracePackets = cfg_.tracePackets;
      flow.tcp = std::make_unique<TcpFlow>(*net_, src);
    }
    ++flowId;
  }

  // Streaming convergence anatomy: installed as the Tracer's sink so it sees
  // the live event stream zero-copy. External sinks chain behind it through
  // attachTraceSink(), keeping recorded traces bit-identical.
  if (cfg_.anatomy) {
    anatomy_ = std::make_unique<obs::ConvergenceAnalyzer>(
        obs::ReplayOptions{flows_[0].sender, flows_[0].receiver, net_->nodeCount()});
    net_->trace().setSink(anatomy_.get());
    // Until something records downstream, only emit the kinds the analyzer
    // consumes: the per-hop forward/originate flood (~70% of a trace by
    // volume) never leaves the emitters, which is what keeps the
    // on-by-default profiler inside the perf gate's 3% overhead budget.
    net_->trace().setKindMask(obs::ConvergenceAnalyzer::kConsumedKinds);
  }
}

std::uint64_t Scenario::packetsSent() const {
  std::uint64_t sent = 0;
  for (const auto& flow : flows_) {
    if (flow.cbr) sent += flow.cbr->packetsSent();
    if (flow.tcp) sent += flow.tcp->uniquePacketsSent();
  }
  return sent;
}

void Scenario::run() {
  net_->startProtocols();
  if (detector_) detector_->start();
  for (auto& flow : flows_) {
    if (flow.cbr) flow.cbr->install();
    if (flow.tcp) flow.tcp->install();
  }
  if (cfg_.injectFailure) {
    for (int k = 0; k < cfg_.failureCount; ++k) {
      sched_.scheduleAt(cfg_.failAt + cfg_.failureSpacing * k, EventKind::Fault,
                        [this, k] { injectFailure(k); });
    }
  }
  if (injector_) injector_->install();
  sched_.run(cfg_.endAt);
  fibDigestAfter_ = captureFibSnapshot();
  net_->trace().emit(sched_.now(), obs::TraceKind::SimSummary, kInvalidNode, kInvalidNode,
                     static_cast<std::int64_t>(sched_.executedEvents()),
                     static_cast<std::int64_t>(sched_.scheduledEvents()),
                     static_cast<std::int64_t>(sched_.poolCapacity()));
  if (anatomy_) anatomy_->finish();
  if (checker_) {
    checker_->finalCheck(sched_.now());
    if (!checker_->clean()) {
      // Violations are simulator bugs, not scenario outcomes: fail loudly
      // so a sweep records the cell as failed instead of a silent bad row.
      throw std::runtime_error("invariant check failed:\n" + checker_->summary());
    }
  }
}

Link* Scenario::pickLinkOnPath(NodeId src, NodeId dst) {
  bool loop = false;
  bool blackhole = false;
  std::vector<NodeId> path = net_->fibWalk(src, dst, &loop, &blackhole);
  if (loop || blackhole || path.size() < 2) {
    // Degenerate (mid-convergence) state; fall back to the true shortest
    // live path, if any.
    path = net_->shortestPathLive(src, dst);
  }
  if (path.size() < 2) return nullptr;
  // Avoid re-failing a dead hop: collect live links along the path.
  std::vector<Link*> candidates;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    Link* l = net_->findLink(path[i], path[i + 1]);
    if (l != nullptr && l->isUp()) candidates.push_back(l);
  }
  if (candidates.empty()) return nullptr;
  const auto pick = rng_.uniformInt(0, static_cast<std::int64_t>(candidates.size()) - 1);
  return candidates[static_cast<std::size_t>(pick)];
}

void Scenario::injectFailure(int index) {
  // Failure k targets flow (k mod flows)'s then-current forwarding path —
  // the first one reproduces the paper's single failure, later ones give
  // the overlapping-failures extension.
  const auto& flow = flows_[static_cast<std::size_t>(index) % flows_.size()];

  if (index == 0) {
    bool loop = false;
    bool blackhole = false;
    const auto path = net_->fibWalk(flow.sender, flow.receiver, &loop, &blackhole);
    if (!loop && !blackhole && path.size() >= 2) {
      preFailHops_ = static_cast<int>(path.size()) - 1;
      preFailShortest_ = preFailHops_ == net_->shortestDistLive(flow.sender, flow.receiver);
    }
  }

  Link* link = pickLinkOnPath(flow.sender, flow.receiver);
  if (link == nullptr && index == 0) {
    throw std::runtime_error("no usable sender->receiver path at failure time");
  }
  if (link == nullptr) return;  // overlapping failure found nothing to cut
  // First-disruption snapshot (a fault-plan event may already have taken it).
  if (fibDigestBefore_.empty()) fibDigestBefore_ = captureFibSnapshot();
  failedLinks_.push_back(link);
  link->fail();
  if (cfg_.repairAfter < Time::infinity()) {
    sched_.scheduleAfter(cfg_.repairAfter, EventKind::Fault, [link] { link->recover(); });
  }
}

std::string Scenario::captureFibSnapshot() const {
  // FNV-1a over (node, dst, nextHop) triples in dense scan order. Only
  // installed routes contribute, so the digest is insensitive to node count
  // padding but pins every primary next hop in the network.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  const auto n = static_cast<NodeId>(net_->nodeCount());
  for (NodeId id = 0; id < n; ++id) {
    const auto& fib = net_->node(id).fib();
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst == id) continue;
      const NodeId nh = fib.nextHop(dst);
      if (nh == kInvalidNode) continue;
      mix((static_cast<std::uint64_t>(static_cast<std::uint32_t>(id)) << 40) ^
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 20) ^
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(nh)));
    }
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return std::string{buf};
}

}  // namespace rcsim
