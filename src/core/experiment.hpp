#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.hpp"

namespace rcsim {

/// Everything a single run produces, in plain data form (safe to move
/// across threads, aggregate, and print).
struct RunResult {
  ProtocolKind protocol{};
  int degree = 0;
  std::uint64_t seed = 0;

  std::uint64_t sent = 0;
  PacketCounters data;             ///< whole-run data-plane counters
  PacketCounters dataAfterFailure; ///< convergence-period drops (Figures 3/4)
  PacketCounters control;
  std::uint64_t loopEscapedDeliveries = 0;
  std::uint64_t controlMessages = 0;       ///< routing-load accounting
  std::uint64_t controlBytes = 0;
  std::uint64_t controlMessagesAfterFailure = 0;
  std::uint64_t tcpGoodputPackets = 0;     ///< TrafficKind::Tcp only
  std::uint64_t tcpRetransmissions = 0;
  /// Reliable-transport health across all protocol sessions (BGP), summed
  /// over live protocols plus any destroyed by injected node crashes.
  std::uint64_t transportRetransmissions = 0;
  std::uint64_t transportSessionResets = 0;

  double routingConvergenceSec = 0.0;    ///< Figure 6b
  double forwardingConvergenceSec = 0.0; ///< Figure 6a
  int transientPaths = 0;
  bool sawLoop = false;
  bool sawBlackhole = false;

  bool preFailurePathShortest = false;
  int preFailurePathHops = 0;
  bool finalPathShortest = false;
  std::uint64_t routeChangesAfterFailure = 0;

  /// Per-second series in absolute simulation seconds (index = second).
  std::vector<double> throughput;
  std::vector<double> meanDelay;
  int failSec = 0;  ///< failure injection second, for time normalization

  std::uint64_t eventsExecuted = 0;

  /// Per-node route-table snapshot digests around the first fault (hex
  /// FNV-1a; see Scenario::captureFibSnapshot). `before` is empty on
  /// fault-free runs. Deliberately NOT part of runResultFingerprint — the
  /// pinned golden digests enumerate fields explicitly and predate these.
  std::string fibDigestBefore;
  std::string fibDigestAfter;

  /// Convergence-anatomy rollup from the streaming analyzer (episodes,
  /// detection/convergence latency, window seconds, per-cause drops,
  /// control-plane accounting). All-zero when cfg.anatomy is off. Like the
  /// FIB digests, deliberately NOT part of runResultFingerprint — it has
  /// its own anatomyFingerprint for the serial == pooled check.
  obs::AnatomySummary anatomy;

  [[nodiscard]] std::uint64_t deliveredTotal() const { return data.delivered; }
  /// Conservation residual: packets unaccounted for at simulation end.
  [[nodiscard]] std::int64_t residual() const {
    return static_cast<std::int64_t>(sent) - static_cast<std::int64_t>(data.delivered) -
           static_cast<std::int64_t>(data.totalDropped());
  }
};

/// Build, run and squeeze one scenario into a RunResult.
[[nodiscard]] RunResult runScenario(const ScenarioConfig& cfg);

/// Squeeze an already-run Scenario into a RunResult. Split out of
/// runScenario for harnesses (the fuzzer) that own the Scenario instance
/// — to attach trace sinks or watchdogs around run() — but still want the
/// canonical summary that digests and sweeps are built on.
[[nodiscard]] RunResult summarizeRun(Scenario& scenario);

/// The canonical Internet-scale scenario: a 100x100 degree-4 mesh (10,000
/// nodes) brought to full convergence through one on-path link failure.
/// Shared by the perf gate's mesh100x100_converge row and the pinned
/// determinism digest in test_perf_gate.cpp, so the number being gated is
/// exactly the run whose digest is pinned. The DV knobs depart from the
/// paper's 7x7 defaults out of necessity: infinity must exceed the 198-hop
/// diameter, near-whole-table messages keep the event count at batch scale,
/// and the compressed timeline ends the run right after reconvergence.
[[nodiscard]] ScenarioConfig largeMeshConfig();

}  // namespace rcsim
