#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "fault/plan.hpp"
#include "net/detector.hpp"
#include "net/link.hpp"
#include "net/network.hpp"
#include "obs/anatomy.hpp"
#include "routing/factory.hpp"
#include "sim/scheduler.hpp"
#include "stats/collector.hpp"
#include "topo/topology.hpp"
#include "traffic/cbr.hpp"
#include "traffic/tcp_flow.hpp"

namespace rcsim {

/// Traffic model per flow: the paper's CBR workload, or the future-work
/// extension — a window-based reliable transfer riding the data plane.
enum class TrafficKind { Cbr, Tcp };

/// Which topology family the scenario builds: the paper's regular mesh,
/// a matched-degree random graph, an rcsim-topo-v1 edge-list file, one of
/// the embedded named real-world graphs (topo/loader.hpp), or an explicit
/// inline edge list carried in the config itself.
enum class TopologyKind { RegularMesh, Random, File, Named, Inline };

/// Topology file selection, used when topology == File.
struct FileTopoSpec {
  std::string path;  ///< rcsim-topo-v1 edge-list file
};

/// Embedded named-graph selection, used when topology == Named.
struct NamedTopoSpec {
  std::string graph = "abilene";  ///< see namedTopologyNames()
};

/// Explicit edge list carried inside the config (topology == Inline), so a
/// scenario is fully self-contained — no file on disk, no generator seed.
/// This is what the fuzzer's minimizer emits: it freezes whatever family a
/// finding used into concrete edges and then deletes nodes/edges one at a
/// time (src/fuzz/minimize.hpp). Round-trips through the `inline.nodes` /
/// `inline.edges` options.
struct InlineTopoSpec {
  int nodes = 0;
  std::vector<std::pair<NodeId, NodeId>> edges;  ///< canonical a < b order

  bool operator==(const InlineTopoSpec&) const = default;
};

/// Full description of one simulation run of the paper's experiment:
/// a regular mesh, one routing protocol everywhere, one or more flows
/// attached between the first/last row, and one or more link failures on
/// forwarding paths. Defaults follow the paper's timeline (§5): warm-up,
/// traffic from t=390 s, failure at t=400 s, simulation until t=800 s.
struct ScenarioConfig {
  ProtocolKind protocol = ProtocolKind::Dbf;
  TopologyKind topology = TopologyKind::RegularMesh;
  MeshSpec mesh{7, 7, 4};          ///< used when topology == RegularMesh
  RandomGraphSpec random{};        ///< used when topology == Random (seed is overridden by `seed`)
  FileTopoSpec file{};             ///< used when topology == File
  NamedTopoSpec named{};           ///< used when topology == Named
  InlineTopoSpec inlineTopo{};     ///< used when topology == Inline
  LinkConfig link{};
  /// Hello-based failure detection (net/detector.hpp). Off by default: the
  /// paper's model — and every pinned golden digest — uses the oracle
  /// detection path (link detectDelay). When enabled, adjacency loss is
  /// discovered by missed hellos instead.
  HelloConfig hello{};
  std::uint64_t seed = 1;

  // Traffic. The paper uses a single CBR pair; `flows` > 1 and
  // TrafficKind::Tcp exercise the paper's §6 future-work extensions.
  TrafficKind traffic = TrafficKind::Cbr;
  int flows = 1;
  /// Pin flow 0's endpoints instead of drawing them from the run RNG
  /// (minimized reproducers must not have their endpoints reshuffled by a
  /// topology edit). -1 = draw as usual; both must be set to take effect.
  NodeId pinSrc = kInvalidNode;
  NodeId pinDst = kInvalidNode;
  double packetsPerSecond = 20.0;  ///< per flow (CBR)
  std::uint32_t packetBytes = 1000;
  int ttl = 127;
  int tcpWindow = 8;  ///< window (packets) for TrafficKind::Tcp
  Time trafficStart = Time::seconds(390.0);
  Time trafficStop = Time::seconds(550.0);

  // Failures. The first failure hits flow 0's forwarding path at failAt;
  // each further failure hits the *then-current* path of the next flow
  // (round-robin) `failureSpacing` later — overlapping convergence events,
  // the paper's "multiple failures" extension.
  bool injectFailure = true;
  int failureCount = 1;
  Time failAt = Time::seconds(400.0);
  Time failureSpacing = Time::seconds(5.0);
  /// When finite, each failed link is repaired this long after it failed
  /// (link-flap / repair studies).
  Time repairAfter = Time::infinity();

  Time endAt = Time::seconds(800.0);
  bool tracePackets = true;  ///< Per-packet hop recording (loop forensics).

  /// Equal-cost multipath: let protocols install up to Fib::kMaxNextHops
  /// tied next hops per destination and spread data packets across them
  /// with a deterministic flow hash (docs/routing-state.md). Off by
  /// default — the paper's model forwards on a single best hop, and every
  /// golden digest is pinned with ecmp off.
  bool ecmp = false;

  /// Declarative fault schedule layered on top of (or instead of) the
  /// path-targeted failure above — crashes, partitions, impairments
  /// (fault/plan.hpp). Empty = no injected faults.
  fault::FaultPlan faultPlan{};

  /// Attach the runtime invariant checker; violations make run() throw.
  /// Also enabled by the RCSIM_CHECK_INVARIANTS environment variable.
  bool checkInvariants = false;

  /// Streaming convergence-anatomy profiler (obs/anatomy.hpp): one episode
  /// per fault event with detection/convergence latency, FIB churn, loop and
  /// black-hole windows, and per-cause drop attribution, plus control-plane
  /// accounting. Purely observational — it never schedules events or draws
  /// from the RNG, so every pinned digest is identical with it on or off.
  bool anatomy = true;

  ProtocolConfig protoCfg{};

  /// When the first disruption hits — the path-targeted failure or the
  /// earliest fault-plan event, whichever comes first. This is the
  /// watermark the convergence/after-failure statistics measure from
  /// (infinity when the run is fault-free).
  [[nodiscard]] Time failureWatermark() const {
    Time w = injectFailure ? failAt : Time::infinity();
    for (const auto& ev : faultPlan.events) w = std::min(w, ev.at);
    return w;
  }
};

/// The wired-up world for one run. Owns the scheduler, network and
/// instrumentation; build with the constructor, then run().
class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& cfg);

  /// Execute the whole timeline (including the failure injections).
  void run();

  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }
  [[nodiscard]] Scheduler& scheduler() { return sched_; }
  [[nodiscard]] Network& network() { return *net_; }
  [[nodiscard]] StatsCollector& stats() { return *stats_; }
  /// Null unless the config carries a fault plan.
  [[nodiscard]] fault::FaultInjector* faultInjector() { return injector_.get(); }
  /// Null unless invariant checking is enabled.
  [[nodiscard]] fault::InvariantChecker* invariantChecker() { return checker_.get(); }
  /// Null unless hello-based failure detection is enabled.
  [[nodiscard]] HelloDetector* helloDetector() { return detector_.get(); }

  /// Null unless cfg.anatomy is on (the default).
  [[nodiscard]] obs::ConvergenceAnalyzer* convergenceAnalyzer() { return anatomy_.get(); }
  [[nodiscard]] const obs::ConvergenceAnalyzer* convergenceAnalyzer() const {
    return anatomy_.get();
  }

  /// Install an external trace sink without disturbing the anatomy profiler:
  /// when the analyzer is active it stays first in line and forwards every
  /// event verbatim to `sink`, so recorded traces (and their digests) are
  /// byte-identical to a direct Tracer::setSink. With anatomy off this *is*
  /// a direct setSink. Pass nullptr to detach.
  void attachTraceSink(obs::TraceSink* sink) {
    if (anatomy_) {
      anatomy_->setDownstream(sink);
      // A recorder needs the full stream; analyzer-only runs keep the
      // narrowed mask set at construction (see scenario.cpp).
      net_->trace().setKindMask(sink != nullptr ? obs::Tracer::kAllKinds
                                                : obs::ConvergenceAnalyzer::kConsumedKinds);
    } else {
      net_->trace().setSink(sink);
    }
  }

  /// Per-node route-table digests around the first fault (docs/
  /// failure-detection.md). `before` is captured synchronously at the
  /// instant the first disruption fires (path-targeted failure or first
  /// fault-plan event); `after` at end of run. Empty until captured —
  /// fault-free runs only ever fill `after`.
  [[nodiscard]] const std::string& fibDigestBefore() const { return fibDigestBefore_; }
  [[nodiscard]] const std::string& fibDigestAfter() const { return fibDigestAfter_; }

  /// FNV-1a digest over every node's full FIB (primary next hops), hex
  /// encoded — a cheap stand-in for dumping all route tables.
  [[nodiscard]] std::string captureFibSnapshot() const;

  struct Flow {
    NodeId sender = kInvalidNode;
    NodeId receiver = kInvalidNode;
    std::unique_ptr<CbrSource> cbr;   ///< set when traffic == Cbr
    std::unique_ptr<TcpFlow> tcp;     ///< set when traffic == Tcp
  };
  [[nodiscard]] const std::vector<Flow>& flows() const { return flows_; }

  /// Primary (flow 0) endpoints — what the figures measure.
  [[nodiscard]] NodeId sender() const { return flows_[0].sender; }
  [[nodiscard]] NodeId receiver() const { return flows_[0].receiver; }

  /// Total data packets originated across all flows.
  [[nodiscard]] std::uint64_t packetsSent() const;

  /// Links failed so far, in injection order (empty until failures fire).
  [[nodiscard]] const std::vector<Link*>& failedLinks() const { return failedLinks_; }
  [[nodiscard]] Link* failedLink() const {
    return failedLinks_.empty() ? nullptr : failedLinks_.front();
  }

  /// Was flow 0's forwarding path the true shortest path just before the
  /// first failure?
  [[nodiscard]] bool preFailurePathShortest() const { return preFailShortest_; }
  [[nodiscard]] int preFailurePathHops() const { return preFailHops_; }

 private:
  void injectFailure(int index);
  [[nodiscard]] Link* pickLinkOnPath(NodeId src, NodeId dst);

  ScenarioConfig cfg_;
  Rng rng_;
  Scheduler sched_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<StatsCollector> stats_;
  std::unique_ptr<fault::InvariantChecker> checker_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<HelloDetector> detector_;
  std::unique_ptr<obs::ConvergenceAnalyzer> anatomy_;
  std::vector<Flow> flows_;
  std::vector<Link*> failedLinks_;
  bool preFailShortest_ = false;
  int preFailHops_ = 0;
  std::string fibDigestBefore_;
  std::string fibDigestAfter_;
};

}  // namespace rcsim
