#include "core/options.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rcsim {
namespace {

double parseDouble(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(value, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("option " + key + ": not a number: '" + value + "'");
  }
  if (pos != value.size()) {
    throw std::invalid_argument("option " + key + ": trailing junk in '" + value + "'");
  }
  return v;
}

long parseInt(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  long v = 0;
  try {
    v = std::stol(value, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("option " + key + ": not an integer: '" + value + "'");
  }
  if (pos != value.size()) {
    throw std::invalid_argument("option " + key + ": trailing junk in '" + value + "'");
  }
  return v;
}

bool parseBool(const std::string& key, const std::string& value) {
  if (value == "1" || value == "true" || value == "on" || value == "yes") return true;
  if (value == "0" || value == "false" || value == "off" || value == "no") return false;
  throw std::invalid_argument("option " + key + ": not a boolean: '" + value + "'");
}

/// "0-1,1-2,2-5" into an edge vector ("" = no edges). Endpoints keep their
/// given order; Topology::normalize() canonicalizes at build time.
std::vector<std::pair<NodeId, NodeId>> parseEdgeList(const std::string& key,
                                                     const std::string& value) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  if (value.empty()) return edges;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    const auto comma = value.find(',', pos);
    const std::string part =
        value.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const auto dash = part.find('-');
    if (dash == std::string::npos || dash == 0 || dash + 1 >= part.size()) {
      throw std::invalid_argument("option " + key + ": expected 'A-B' edge, got '" + part + "'");
    }
    const long a = parseInt(key, part.substr(0, dash));
    const long b = parseInt(key, part.substr(dash + 1));
    if (a < 0 || b < 0) {
      throw std::invalid_argument("option " + key + ": negative node id in '" + part + "'");
    }
    edges.emplace_back(static_cast<NodeId>(a), static_cast<NodeId>(b));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return edges;
}

std::string formatEdgeList(const std::vector<std::pair<NodeId, NodeId>>& edges) {
  std::string out;
  for (const auto& [a, b] : edges) {
    if (!out.empty()) out += ',';
    out += std::to_string(a) + "-" + std::to_string(b);
  }
  return out;
}

}  // namespace

void applyOption(ScenarioConfig& cfg, const std::string& key, const std::string& value) {
  // Scenario-level.
  if (key == "protocol") {
    cfg.protocol = protocolKindFromString(value);
  } else if (key == "topology") {
    if (value == "mesh") {
      cfg.topology = TopologyKind::RegularMesh;
    } else if (value == "random") {
      cfg.topology = TopologyKind::Random;
    } else if (value == "file") {
      cfg.topology = TopologyKind::File;
    } else if (value == "named") {
      cfg.topology = TopologyKind::Named;
    } else if (value == "inline") {
      cfg.topology = TopologyKind::Inline;
    } else {
      throw std::invalid_argument("topology must be mesh|random|file|named|inline, got '" +
                                  value + "'");
    }
  } else if (key == "file.path") {
    if (value.empty()) throw std::invalid_argument("option file.path: needs a file path");
    cfg.file.path = value;
  } else if (key == "named.graph") {
    if (value.empty()) throw std::invalid_argument("option named.graph: needs a graph name");
    cfg.named.graph = value;
  } else if (key == "degree") {
    cfg.mesh.degree = static_cast<int>(parseInt(key, value));
  } else if (key == "rows") {
    cfg.mesh.rows = static_cast<int>(parseInt(key, value));
  } else if (key == "cols") {
    cfg.mesh.cols = static_cast<int>(parseInt(key, value));
  } else if (key == "random.nodes") {
    cfg.random.nodes = static_cast<int>(parseInt(key, value));
  } else if (key == "random.avg-degree") {
    cfg.random.avgDegree = parseDouble(key, value);
  } else if (key == "random.tree") {
    cfg.random.spanningTree = parseBool(key, value);
  } else if (key == "random.ensure-connected") {
    cfg.random.ensureConnected = parseBool(key, value);
  } else if (key == "inline.nodes") {
    cfg.inlineTopo.nodes = static_cast<int>(parseInt(key, value));
  } else if (key == "inline.edges") {
    cfg.inlineTopo.edges = parseEdgeList(key, value);
  } else if (key == "pin.src" || key == "pin.dst") {
    const auto node = static_cast<NodeId>(parseInt(key, value));
    if (node < kInvalidNode) {
      throw std::invalid_argument(key + " must be a node id or -1 (unset)");
    }
    (key == "pin.src" ? cfg.pinSrc : cfg.pinDst) = node;
  } else if (key == "seed") {
    cfg.seed = static_cast<std::uint64_t>(parseInt(key, value));
  } else if (key == "flows") {
    cfg.flows = static_cast<int>(parseInt(key, value));
  } else if (key == "traffic") {
    if (value == "cbr") {
      cfg.traffic = TrafficKind::Cbr;
    } else if (value == "tcp") {
      cfg.traffic = TrafficKind::Tcp;
    } else {
      throw std::invalid_argument("traffic must be cbr|tcp, got '" + value + "'");
    }
  } else if (key == "rate") {
    cfg.packetsPerSecond = parseDouble(key, value);
  } else if (key == "bytes") {
    cfg.packetBytes = static_cast<std::uint32_t>(parseInt(key, value));
  } else if (key == "ttl") {
    cfg.ttl = static_cast<int>(parseInt(key, value));
  } else if (key == "window") {
    cfg.tcpWindow = static_cast<int>(parseInt(key, value));
  } else if (key == "traffic-start") {
    cfg.trafficStart = Time::seconds(parseDouble(key, value));
  } else if (key == "traffic-stop") {
    cfg.trafficStop = Time::seconds(parseDouble(key, value));
  } else if (key == "failures") {
    cfg.failureCount = static_cast<int>(parseInt(key, value));
  } else if (key == "fail-at") {
    cfg.failAt = Time::seconds(parseDouble(key, value));
  } else if (key == "fail-spacing") {
    cfg.failureSpacing = Time::seconds(parseDouble(key, value));
  } else if (key == "repair-after") {
    // "inf" (what describeOptions emits for never-repaired links) must not
    // reach Time::seconds — casting an infinite double to int64 is UB.
    const double sec = parseDouble(key, value);
    cfg.repairAfter = std::isfinite(sec) ? Time::seconds(sec) : Time::infinity();
  } else if (key == "no-failure") {
    cfg.injectFailure = !parseBool(key, value);
  } else if (key == "end-at") {
    cfg.endAt = Time::seconds(parseDouble(key, value));
  } else if (key == "trace-packets") {
    cfg.tracePackets = parseBool(key, value);
  } else if (key == "ecmp") {
    cfg.ecmp = parseBool(key, value);
    // Fault injection.
  } else if (key == "fault-plan") {
    cfg.faultPlan = fault::FaultPlan::parse(value);
  } else if (key == "check-invariants") {
    cfg.checkInvariants = parseBool(key, value);
  } else if (key == "anatomy") {
    cfg.anatomy = parseBool(key, value);
    // Link layer.
  } else if (key == "bandwidth") {
    cfg.link.bandwidthBps = parseDouble(key, value);
  } else if (key == "prop-delay-ms") {
    cfg.link.propDelay = Time::seconds(parseDouble(key, value) / 1e3);
  } else if (key == "queue") {
    cfg.link.queueCapacity = static_cast<std::size_t>(parseInt(key, value));
  } else if (key == "detect-ms") {
    cfg.link.detectDelay = Time::seconds(parseDouble(key, value) / 1e3);
    // Hello-based failure detection (docs/failure-detection.md).
  } else if (key == "hello.enabled") {
    cfg.hello.enabled = parseBool(key, value);
  } else if (key == "hello.interval") {
    cfg.hello.interval = Time::seconds(parseDouble(key, value));
  } else if (key == "hello.dead") {
    cfg.hello.dead = Time::seconds(parseDouble(key, value));
  } else if (key == "hello.jitter") {
    cfg.hello.jitter = parseDouble(key, value);
    // Distance-vector knobs.
  } else if (key == "dv.periodic") {
    cfg.protoCfg.dv.periodicInterval = Time::seconds(parseDouble(key, value));
  } else if (key == "dv.timeout") {
    cfg.protoCfg.dv.timeout = Time::seconds(parseDouble(key, value));
  } else if (key == "dv.damp-min") {
    cfg.protoCfg.dv.triggerDampMinSec = parseDouble(key, value);
  } else if (key == "dv.damp-max") {
    cfg.protoCfg.dv.triggerDampMaxSec = parseDouble(key, value);
  } else if (key == "dv.holddown") {
    cfg.protoCfg.dv.holdDownSec = parseDouble(key, value);
  } else if (key == "dv.trigger-min-gap") {
    cfg.protoCfg.dv.triggerMinGapSec = parseDouble(key, value);
  } else if (key == "dv.infinity") {
    cfg.protoCfg.dv.infinityMetric = static_cast<int>(parseInt(key, value));
  } else if (key == "dv.max-entries") {
    cfg.protoCfg.dv.maxEntriesPerMessage = static_cast<int>(parseInt(key, value));
  } else if (key == "dv.poison") {
    cfg.protoCfg.dv.splitHorizon =
        parseBool(key, value) ? SplitHorizonMode::PoisonReverse : SplitHorizonMode::None;
  } else if (key == "dv.split-horizon") {
    if (value == "none") {
      cfg.protoCfg.dv.splitHorizon = SplitHorizonMode::None;
    } else if (value == "simple") {
      cfg.protoCfg.dv.splitHorizon = SplitHorizonMode::SplitHorizon;
    } else if (value == "poison") {
      cfg.protoCfg.dv.splitHorizon = SplitHorizonMode::PoisonReverse;
    } else {
      throw std::invalid_argument("dv.split-horizon must be none|simple|poison");
    }
    // BGP knobs.
  } else if (key == "bgp.mrai-min") {
    cfg.protoCfg.bgp.mraiMinSec = parseDouble(key, value);
  } else if (key == "bgp.mrai-max") {
    cfg.protoCfg.bgp.mraiMaxSec = parseDouble(key, value);
  } else if (key == "bgp.per-dest-mrai") {
    cfg.protoCfg.bgp.perDestMrai = parseBool(key, value);
  } else if (key == "bgp.wd-exempt") {
    cfg.protoCfg.bgp.withdrawalsExemptFromMrai = parseBool(key, value);
  } else if (key == "bgp.assertions") {
    cfg.protoCfg.bgp.consistencyAssertions = parseBool(key, value);
  } else if (key == "bgp.rfd") {
    cfg.protoCfg.bgp.flapDampingEnabled = parseBool(key, value);
  } else if (key == "bgp.rfd-penalty") {
    cfg.protoCfg.bgp.rfdPenaltyPerFlap = parseDouble(key, value);
  } else if (key == "bgp.rfd-half-life") {
    cfg.protoCfg.bgp.rfdHalfLifeSec = parseDouble(key, value);
  } else if (key == "bgp.rfd-suppress") {
    cfg.protoCfg.bgp.rfdSuppressThreshold = parseDouble(key, value);
  } else if (key == "bgp.rfd-reuse") {
    cfg.protoCfg.bgp.rfdReuseThreshold = parseDouble(key, value);
    // Link-state knobs.
  } else if (key == "ls.spf-delay-ms") {
    cfg.protoCfg.ls.spfDelay = Time::seconds(parseDouble(key, value) / 1e3);
  } else if (key == "ls.refresh") {
    cfg.protoCfg.ls.refreshInterval = Time::seconds(parseDouble(key, value));
  } else if (key == "ls.spf-oracle") {
    cfg.protoCfg.ls.spfOracle = parseBool(key, value);
    // DUAL knobs.
  } else if (key == "dual.sia-timeout") {
    cfg.protoCfg.dual.siaTimeout = Time::seconds(parseDouble(key, value));
  } else if (key == "dual.max-distance") {
    cfg.protoCfg.dual.maxDistance = static_cast<int>(parseInt(key, value));
  } else {
    throw std::invalid_argument("unknown option: " + key);
  }
}

void applyOptionString(ScenarioConfig& cfg, const std::string& arg) {
  std::string s = arg;
  if (s.rfind("--", 0) == 0) s = s.substr(2);
  const auto eq = s.find('=');
  if (eq == std::string::npos) {
    throw std::invalid_argument("expected key=value, got '" + arg + "'");
  }
  applyOption(cfg, s.substr(0, eq), s.substr(eq + 1));
}

std::vector<std::string> describeOptions(const ScenarioConfig& cfg) {
  std::vector<std::string> out;
  auto add = [&out](const std::string& k, const std::string& v) { out.push_back(k + "=" + v); };
  auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    return std::string{buf};
  };
  add("protocol", toString(cfg.protocol));
  switch (cfg.topology) {
    case TopologyKind::RegularMesh:
      add("topology", "mesh");
      add("rows", std::to_string(cfg.mesh.rows));
      add("cols", std::to_string(cfg.mesh.cols));
      add("degree", std::to_string(cfg.mesh.degree));
      break;
    case TopologyKind::Random:
      add("topology", "random");
      add("random.nodes", std::to_string(cfg.random.nodes));
      add("random.avg-degree", num(cfg.random.avgDegree));
      add("random.tree", cfg.random.spanningTree ? "1" : "0");
      add("random.ensure-connected", cfg.random.ensureConnected ? "1" : "0");
      break;
    case TopologyKind::File:
      add("topology", "file");
      add("file.path", cfg.file.path);
      break;
    case TopologyKind::Named:
      add("topology", "named");
      add("named.graph", cfg.named.graph);
      break;
    case TopologyKind::Inline:
      add("topology", "inline");
      add("inline.nodes", std::to_string(cfg.inlineTopo.nodes));
      add("inline.edges", formatEdgeList(cfg.inlineTopo.edges));
      break;
  }
  add("seed", std::to_string(cfg.seed));
  add("flows", std::to_string(cfg.flows));
  if (cfg.pinSrc != kInvalidNode || cfg.pinDst != kInvalidNode) {
    add("pin.src", std::to_string(cfg.pinSrc));
    add("pin.dst", std::to_string(cfg.pinDst));
  }
  add("traffic", cfg.traffic == TrafficKind::Cbr ? "cbr" : "tcp");
  add("rate", num(cfg.packetsPerSecond));
  add("bytes", std::to_string(cfg.packetBytes));
  add("ttl", std::to_string(cfg.ttl));
  add("window", std::to_string(cfg.tcpWindow));
  add("traffic-start", num(cfg.trafficStart.toSeconds()));
  add("traffic-stop", num(cfg.trafficStop.toSeconds()));
  add("no-failure", cfg.injectFailure ? "0" : "1");
  add("failures", std::to_string(cfg.failureCount));
  add("fail-at", num(cfg.failAt.toSeconds()));
  add("fail-spacing", num(cfg.failureSpacing.toSeconds()));
  add("repair-after", cfg.repairAfter == Time::infinity() ? "inf"
                                                          : num(cfg.repairAfter.toSeconds()));
  add("end-at", num(cfg.endAt.toSeconds()));
  add("trace-packets", cfg.tracePackets ? "1" : "0");
  add("ecmp", cfg.ecmp ? "1" : "0");
  add("fault-plan", cfg.faultPlan.format());
  add("check-invariants", cfg.checkInvariants ? "1" : "0");
  add("anatomy", cfg.anatomy ? "1" : "0");
  add("bandwidth", num(cfg.link.bandwidthBps));
  add("prop-delay-ms", num(cfg.link.propDelay.toSeconds() * 1e3));
  add("queue", std::to_string(cfg.link.queueCapacity));
  add("detect-ms", num(cfg.link.detectDelay.toSeconds() * 1e3));
  add("hello.enabled", cfg.hello.enabled ? "1" : "0");
  add("hello.interval", num(cfg.hello.interval.toSeconds()));
  add("hello.dead", num(cfg.hello.dead.toSeconds()));
  add("hello.jitter", num(cfg.hello.jitter));
  add("dv.periodic", num(cfg.protoCfg.dv.periodicInterval.toSeconds()));
  add("dv.timeout", num(cfg.protoCfg.dv.timeout.toSeconds()));
  add("dv.damp-min", num(cfg.protoCfg.dv.triggerDampMinSec));
  add("dv.damp-max", num(cfg.protoCfg.dv.triggerDampMaxSec));
  add("dv.holddown", num(cfg.protoCfg.dv.holdDownSec));
  add("dv.trigger-min-gap", num(cfg.protoCfg.dv.triggerMinGapSec));
  add("dv.infinity", std::to_string(cfg.protoCfg.dv.infinityMetric));
  add("dv.max-entries", std::to_string(cfg.protoCfg.dv.maxEntriesPerMessage));
  switch (cfg.protoCfg.dv.splitHorizon) {
    case SplitHorizonMode::None: add("dv.split-horizon", "none"); break;
    case SplitHorizonMode::SplitHorizon: add("dv.split-horizon", "simple"); break;
    case SplitHorizonMode::PoisonReverse: add("dv.split-horizon", "poison"); break;
  }
  add("bgp.mrai-min", num(cfg.protoCfg.bgp.mraiMinSec));
  add("bgp.mrai-max", num(cfg.protoCfg.bgp.mraiMaxSec));
  add("bgp.per-dest-mrai", cfg.protoCfg.bgp.perDestMrai ? "1" : "0");
  add("bgp.wd-exempt", cfg.protoCfg.bgp.withdrawalsExemptFromMrai ? "1" : "0");
  add("bgp.assertions", cfg.protoCfg.bgp.consistencyAssertions ? "1" : "0");
  add("bgp.rfd", cfg.protoCfg.bgp.flapDampingEnabled ? "1" : "0");
  add("bgp.rfd-penalty", num(cfg.protoCfg.bgp.rfdPenaltyPerFlap));
  add("bgp.rfd-half-life", num(cfg.protoCfg.bgp.rfdHalfLifeSec));
  add("bgp.rfd-suppress", num(cfg.protoCfg.bgp.rfdSuppressThreshold));
  add("bgp.rfd-reuse", num(cfg.protoCfg.bgp.rfdReuseThreshold));
  add("ls.spf-delay-ms", num(cfg.protoCfg.ls.spfDelay.toSeconds() * 1e3));
  add("ls.refresh", num(cfg.protoCfg.ls.refreshInterval.toSeconds()));
  add("ls.spf-oracle", cfg.protoCfg.ls.spfOracle ? "1" : "0");
  add("dual.sia-timeout", num(cfg.protoCfg.dual.siaTimeout.toSeconds()));
  add("dual.max-distance", std::to_string(cfg.protoCfg.dual.maxDistance));
  return out;
}

}  // namespace rcsim
