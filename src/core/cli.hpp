#pragma once

#include <cstdint>
#include <string>

namespace rcsim::cli {

// Strict command-line value parsing shared by every rcsim binary (rcsim,
// rcsim_bench, rcsim-trace, rcsim_fuzz). All helpers throw
// std::invalid_argument with a "<flag> got '<value>', expected ..."
// message on malformed input — "--runs=banana" and "--runs=0" are errors,
// never atoi's silent 0. Each CLI catches, prints the message and exits 2.

/// Positive integer in [1, 1e9].
[[nodiscard]] int parsePositiveInt(const std::string& value, const char* flag);

/// Non-negative integer in [0, 1e9] (--retries=0 disables retry).
[[nodiscard]] int parseNonNegativeInt(const std::string& value, const char* flag);

/// Finite double (any sign) — time-window flags like --from/--to.
[[nodiscard]] double parseFiniteDouble(const std::string& value, const char* flag);

/// Positive finite seconds — watchdog/budget flags. Rejects "nan"/"inf",
/// which strtod parses and a plain `<= 0` guard lets through.
[[nodiscard]] double parsePositiveSeconds(const std::string& value, const char* flag);

/// Unsigned 64-bit value — seed flags.
[[nodiscard]] std::uint64_t parseSeed(const std::string& value, const char* flag);

/// Lenient environment-variable variant of parsePositiveSeconds: returns
/// 0.0 ("no limit") for null/empty/malformed/non-positive text instead of
/// throwing, so a stray RCSIM_REPLICA_WATCHDOG_SEC never aborts a run.
[[nodiscard]] double parseWallLimitSeconds(const char* text);

}  // namespace rcsim::cli
