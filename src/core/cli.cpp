#include "core/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>

namespace rcsim::cli {

namespace {

[[noreturn]] void bad(const char* flag, const std::string& value, const char* expected) {
  throw std::invalid_argument(std::string{flag} + " got '" + value + "', expected " + expected);
}

long parseLong(const std::string& value, const char* flag, long lo, long hi,
               const char* expected) {
  if (value.empty()) bad(flag, value, expected);
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0' || v < lo || v > hi) {
    bad(flag, value, expected);
  }
  return v;
}

}  // namespace

int parsePositiveInt(const std::string& value, const char* flag) {
  return static_cast<int>(parseLong(value, flag, 1, 1'000'000'000L, "a positive integer"));
}

int parseNonNegativeInt(const std::string& value, const char* flag) {
  return static_cast<int>(parseLong(value, flag, 0, 1'000'000'000L, "a non-negative integer"));
}

double parseFiniteDouble(const std::string& value, const char* flag) {
  if (value.empty()) bad(flag, value, "a finite number");
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(value.c_str(), &end);
  if (errno != 0 || end == value.c_str() || *end != '\0' || !std::isfinite(v)) {
    bad(flag, value, "a finite number");
  }
  return v;
}

double parsePositiveSeconds(const std::string& value, const char* flag) {
  const double v = parseFiniteDouble(value, flag);
  if (v <= 0.0) bad(flag, value, "a positive number of seconds");
  return v;
}

std::uint64_t parseSeed(const std::string& value, const char* flag) {
  if (value.empty()) bad(flag, value, "an unsigned 64-bit seed");
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0' || value[0] == '-') {
    bad(flag, value, "an unsigned 64-bit seed");
  }
  return static_cast<std::uint64_t>(v);
}

double parseWallLimitSeconds(const char* text) {
  if (text == nullptr || *text == '\0') return 0.0;
  char* end = nullptr;
  errno = 0;
  const double sec = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0') return 0.0;
  // strtod happily parses "nan" and "inf"; NaN additionally slips past a
  // plain `<= 0` guard, so require a finite positive budget explicitly.
  if (!std::isfinite(sec) || sec <= 0.0) return 0.0;
  return sec;
}

}  // namespace rcsim::cli
