#include "core/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

namespace rcsim {

std::vector<RunResult> runMany(const ScenarioConfig& base, int runs, std::uint64_t startSeed,
                               int threads) {
  if (threads <= 0) threads = defaultThreadCount();
  threads = std::min(threads, runs);
  std::vector<RunResult> results(static_cast<std::size_t>(runs));
  std::atomic<int> next{0};
  auto worker = [&] {
    while (true) {
      const int i = next.fetch_add(1);
      if (i >= runs) return;
      ScenarioConfig cfg = base;
      cfg.seed = startSeed + static_cast<std::uint64_t>(i);
      results[static_cast<std::size_t>(i)] = runScenario(cfg);
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  return results;
}

Aggregate Aggregate::over(const std::vector<RunResult>& results) {
  Aggregate a;
  a.runs = static_cast<int>(results.size());
  if (results.empty()) return a;
  // All runs of an aggregate share one scenario config, so the failure
  // instant is a property of the batch — take it from the first run rather
  // than whichever happens to iterate last.
  a.failSec = results.front().failSec;
  for (const auto& r : results) {
    if (r.failSec != a.failSec) {
      throw std::invalid_argument(
          "Aggregate::over: aggregating runs with differing failure times (failSec " +
          std::to_string(a.failSec) + " vs " + std::to_string(r.failSec) +
          ") — these runs are not replicas of one scenario");
    }
  }
  std::size_t maxLen = 0;
  for (const auto& r : results) maxLen = std::max(maxLen, r.throughput.size());
  a.throughput.assign(maxLen, 0.0);
  a.meanDelay.assign(maxLen, 0.0);
  std::vector<int> delayCounts(maxLen, 0);
  for (const auto& r : results) {
    a.dropsNoRoute += static_cast<double>(r.dataAfterFailure.dropNoRoute);
    a.dropsTtl += static_cast<double>(r.dataAfterFailure.dropTtl);
    a.dropsOther += static_cast<double>(r.dataAfterFailure.dropQueue +
                                        r.dataAfterFailure.dropLinkDown +
                                        r.dataAfterFailure.dropInFlightCut);
    a.delivered += static_cast<double>(r.data.delivered);
    a.sent += static_cast<double>(r.sent);
    a.routingConvergenceSec += r.routingConvergenceSec;
    a.forwardingConvergenceSec += r.forwardingConvergenceSec;
    a.transientPaths += r.transientPaths;
    a.loopFraction += r.sawLoop ? 1.0 : 0.0;
    a.loopEscapedDeliveries += static_cast<double>(r.loopEscapedDeliveries);
    for (std::size_t s = 0; s < r.throughput.size(); ++s) a.throughput[s] += r.throughput[s];
    for (std::size_t s = 0; s < r.meanDelay.size(); ++s) {
      if (r.meanDelay[s] > 0.0) {
        a.meanDelay[s] += r.meanDelay[s];
        ++delayCounts[s];
      }
    }
  }
  const auto n = static_cast<double>(a.runs);
  a.dropsNoRoute /= n;
  a.dropsTtl /= n;
  a.dropsOther /= n;
  a.delivered /= n;
  a.sent /= n;
  a.routingConvergenceSec /= n;
  a.forwardingConvergenceSec /= n;
  a.transientPaths /= n;
  a.loopFraction /= n;
  a.loopEscapedDeliveries /= n;
  for (auto& v : a.throughput) v /= n;
  for (std::size_t s = 0; s < a.meanDelay.size(); ++s) {
    if (delayCounts[s] > 0) a.meanDelay[s] /= delayCounts[s];
  }
  return a;
}

int defaultRunCount(int fallback) {
  if (const char* env = std::getenv("RCSIM_RUNS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

int defaultThreadCount() {
  if (const char* env = std::getenv("RCSIM_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 4 : static_cast<int>(hc);
}

}  // namespace rcsim
