#pragma once

// Small content-identity hashes shared across layers: the result/aggregate
// fingerprints (core/fingerprint), the run journal's CRC framing
// (exp/journal), and the rcsim-trace-v1 stream (obs/trace_io). Kept in
// core so obs and exp can both use them without depending on each other.

#include <string>
#include <string_view>

namespace rcsim {

/// FNV-1a 64-bit digest of arbitrary text, as 16 lowercase hex chars —
/// compact enough to check golden values into a test.
[[nodiscard]] std::string fnv1aHexDigest(std::string_view text);

/// CRC-32/ISO-HDLC (the zlib/PNG polynomial) as 8 lowercase hex chars.
/// Guards each journal and trace line against torn writes and bit rot.
[[nodiscard]] std::string crc32Hex(std::string_view text);

}  // namespace rcsim
