#pragma once

#include <string>
#include <vector>

#include "core/runner.hpp"

namespace rcsim {

/// Console table/series printers shared by the bench binaries so every
/// figure reproduction reports in the same format.
namespace report {

void header(const std::string& title, const std::string& subtitle);

/// One row per degree, one column per protocol — the Figure 3/4/6 layout.
void degreeSweep(const std::string& metric, const std::vector<int>& degrees,
                 const std::vector<std::string>& protocols,
                 const std::vector<std::vector<double>>& values);

/// Time series around the failure: one column per protocol, time printed
/// relative to the failure instant shifted to t=50 s as in Figure 5.
void timeSeries(const std::string& metric, const std::vector<std::string>& protocols,
                const std::vector<Aggregate>& aggs, int fromRel, int toRel,
                bool delaySeries = false);

std::string fmt(double v, int width = 10, int precision = 2);

}  // namespace report
}  // namespace rcsim
