#include "core/digest.hpp"

#include <array>
#include <cinttypes>
#include <cstdint>
#include <cstdio>

namespace rcsim {

std::string fnv1aHexDigest(std::string_view text) {
  std::uint64_t h = 14695981039346656037ull;
  for (const unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
  return std::string{buf};
}

namespace {

const std::array<std::uint32_t, 256>& crcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::string crc32Hex(std::string_view text) {
  const auto& table = crcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const unsigned char c : text) crc = table[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  crc ^= 0xFFFFFFFFu;
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return std::string{buf};
}

}  // namespace rcsim
