#include "core/durable_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>

namespace rcsim {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

void fsyncFdOrThrow(int fd, const std::string& what) {
  if (::fsync(fd) != 0) throwErrno("fsync failed: " + what);
}

void fsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throwErrno("cannot open for fsync: " + path);
  try {
    fsyncFdOrThrow(fd, path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

void fsyncParentDir(const std::string& path) {
  const std::filesystem::path p{path};
  if (!p.has_parent_path()) return;
  fsyncPath(p.parent_path().string());
}

void atomicWriteFile(const std::string& path, const std::string& content) {
  const std::filesystem::path p{path};
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());

  std::filesystem::path tmp{p};
  tmp += ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throwErrno("cannot open temp file: " + tmp.string());

  auto fail = [&](const std::string& what) -> void {
    ::close(fd);
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throwErrno(what);
  };

  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("failed writing " + tmp.string());
    }
    off += static_cast<std::size_t>(n);
  }
  // fsync BEFORE the rename: rename orders the metadata, not the data —
  // without this a crash can leave the final name pointing at a
  // zero-length or partial file.
  if (::fsync(fd) != 0) fail("fsync failed: " + tmp.string());
  ::close(fd);

  std::error_code ec;
  std::filesystem::rename(tmp, p, ec);
  if (ec) {
    std::error_code rmEc;
    std::filesystem::remove(tmp, rmEc);
    throw std::runtime_error("failed renaming into place: " + path + ": " + ec.message());
  }
  fsyncParentDir(path);
}

}  // namespace rcsim
