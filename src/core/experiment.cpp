#include "core/experiment.hpp"

#include <cmath>

#include "obs/metrics.hpp"

namespace rcsim {

RunResult runScenario(const ScenarioConfig& cfg) {
  Scenario scenario{cfg};
  scenario.run();
  return summarizeRun(scenario);
}

RunResult summarizeRun(Scenario& scenario) {
  const ScenarioConfig& cfg = scenario.config();
  auto& net = scenario.network();
  auto& stats = scenario.stats();

  RunResult r;
  r.protocol = cfg.protocol;
  r.degree = cfg.mesh.degree;
  r.seed = cfg.seed;
  r.sent = scenario.packetsSent();
  r.data = stats.data();
  r.dataAfterFailure = stats.dataAfterWatermark();
  r.control = stats.control();
  r.loopEscapedDeliveries = stats.loopEscapedDeliveries();
  r.controlMessages = stats.controlMessages();
  r.controlBytes = stats.controlBytes();
  r.controlMessagesAfterFailure = stats.controlMessagesAfterWatermark();
  for (const auto& flow : scenario.flows()) {
    if (flow.tcp) {
      r.tcpGoodputPackets += flow.tcp->goodputPackets();
      r.tcpRetransmissions += flow.tcp->retransmissions();
    }
  }
  for (NodeId id = 0; id < static_cast<NodeId>(net.nodeCount()); ++id) {
    if (const auto* proto = net.node(id).protocol()) {
      const auto tc = proto->transportCounters();
      r.transportRetransmissions += tc.retransmissions;
      r.transportSessionResets += tc.sessionResets;
    }
  }
  if (const auto* inj = scenario.faultInjector()) {
    const auto tc = inj->lostTransportCounters();
    r.transportRetransmissions += tc.retransmissions;
    r.transportSessionResets += tc.sessionResets;
  }

  r.routingConvergenceSec = stats.routeLog().convergenceSeconds();
  r.routeChangesAfterFailure = stats.routeLog().changesAfterWatermark();
  if (const auto* tracer = stats.tracer()) {
    const Time watermark = cfg.failureWatermark();
    r.forwardingConvergenceSec = tracer->convergenceSecondsAfter(watermark);
    r.transientPaths = tracer->transientPathsAfter(watermark);
    r.sawLoop = tracer->sawLoopAfter(watermark);
    r.sawBlackhole = tracer->sawBlackholeAfter(watermark);
  }

  r.preFailurePathShortest = scenario.preFailurePathShortest();
  r.preFailurePathHops = scenario.preFailurePathHops();
  {
    bool loop = false;
    bool blackhole = false;
    const auto path = net.fibWalk(scenario.sender(), scenario.receiver(), &loop, &blackhole);
    const int finalHops = static_cast<int>(path.size()) - 1;
    r.finalPathShortest = !loop && !blackhole &&
                          finalHops == net.shortestDistLive(scenario.sender(),
                                                            scenario.receiver());
  }

  // Round up: a fractional final second still accumulates deliveries, and
  // truncating here would silently drop that bucket from the series.
  const int endSec = static_cast<int>(std::ceil(cfg.endAt.toSeconds()));
  r.throughput.resize(static_cast<std::size_t>(endSec), 0.0);
  r.meanDelay.resize(static_cast<std::size_t>(endSec), 0.0);
  for (int s = 0; s < endSec; ++s) {
    r.throughput[static_cast<std::size_t>(s)] = stats.series().throughputAt(s);
    r.meanDelay[static_cast<std::size_t>(s)] = stats.series().meanDelayAt(s);
  }
  r.failSec = static_cast<int>(cfg.failAt.toSeconds());
  r.eventsExecuted = scenario.scheduler().executedEvents();
  r.fibDigestBefore = scenario.fibDigestBefore();
  r.fibDigestAfter = scenario.fibDigestAfter();
  if (auto* anatomy = scenario.convergenceAnalyzer()) {
    if (!anatomy->finished()) anatomy->finish();  // summarizing a partial run
    r.anatomy = anatomy->report().summary();
  }

  // Scheduler hot-path totals go to whatever registry the surrounding
  // executor installed (RunResult's layout is frozen by golden digests, so
  // this rides the thread-local side channel instead).
  if (auto* metrics = obs::currentMetrics()) {
    const auto& sched = scenario.scheduler();
    metrics->counter("sim.events_executed").add(sched.executedEvents());
    metrics->counter("sim.events_scheduled").add(sched.scheduledEvents());
    metrics->counter("sim.events_cancelled").add(sched.cancelledEvents());
    metrics->histogram("sim.pool_slots").observe(static_cast<double>(sched.poolCapacity()));
    // Per-event-kind scheduler timing profile (docs/observability.md).
    for (int k = 0; k < kEventKindCount; ++k) {
      const auto kind = static_cast<EventKind>(k);
      const auto& ks = sched.kindStats(kind);
      if (ks.scheduled == 0) continue;
      const std::string prefix = std::string{"sim.kind."} + toString(kind);
      metrics->counter(prefix + ".scheduled").add(ks.scheduled);
      metrics->counter(prefix + ".executed").add(ks.executed);
    }
    // Convergence-anatomy rollup, so sweeps expose episode counts and drop
    // attribution without widening the frozen Aggregate layout.
    if (r.anatomy.episodes > 0 || r.anatomy.delivered > 0 || r.anatomy.controlMessages > 0) {
      metrics->counter("anatomy.episodes").add(r.anatomy.episodes);
      metrics->counter("anatomy.fib_churn").add(r.anatomy.fibChurn);
      metrics->counter("anatomy.drops.loop").add(r.anatomy.dropsLoop);
      metrics->counter("anatomy.drops.blackhole").add(r.anatomy.dropsBlackhole);
      metrics->counter("anatomy.drops.ttl").add(r.anatomy.dropsTtl);
      metrics->counter("anatomy.drops.queue").add(r.anatomy.dropsQueue);
      metrics->counter("anatomy.control.messages").add(r.anatomy.controlMessages);
      metrics->counter("anatomy.control.bytes").add(r.anatomy.controlBytes);
      if (r.anatomy.detectedEpisodes > 0) {
        metrics->histogram("anatomy.detection_sec")
            .observe(r.anatomy.detectionSecTotal /
                     static_cast<double>(r.anatomy.detectedEpisodes));
      }
      if (r.anatomy.convergedEpisodes > 0) {
        metrics->histogram("anatomy.convergence_sec")
            .observe(r.anatomy.convergenceSecTotal /
                     static_cast<double>(r.anatomy.convergedEpisodes));
      }
    }
  }
  return r;
}

ScenarioConfig largeMeshConfig() {
  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::Dbf;
  cfg.mesh = MeshSpec{100, 100, 4};
  cfg.seed = 1;
  cfg.ttl = 250;  // the post-failure path can exceed the 198-hop diameter
  cfg.protoCfg.dv.infinityMetric = 255;
  cfg.protoCfg.dv.maxEntriesPerMessage = 1000;
  // Tight damping keeps the convergence wave moving; the huge periodic and
  // timeout intervals silence background refresh so the run measures the
  // triggered-update protocol, not 10,000 nodes' idle chatter.
  cfg.protoCfg.dv.triggerDampMinSec = 0.02;
  cfg.protoCfg.dv.triggerDampMaxSec = 0.1;
  cfg.protoCfg.dv.periodicInterval = Time::seconds(10000.0);
  cfg.protoCfg.dv.timeout = Time::seconds(100000.0);
  cfg.trafficStart = Time::seconds(20.0);
  cfg.failAt = Time::seconds(23.0);
  cfg.trafficStop = Time::seconds(30.0);
  cfg.endAt = Time::seconds(40.0);
  return cfg;
}

}  // namespace rcsim
