#pragma once

// Crash-durable file primitives shared by the artifact writer, the run
// journal, and the structured trace writer. "Atomic" here means
// rename-based (readers see the old bytes or the complete new ones, never
// a mix); "durable" means the data AND the directory entry are fsynced, so
// a power cut right after a reported success cannot roll the file back or
// truncate it.

#include <string>

namespace rcsim {

/// fsync an open descriptor; throws std::runtime_error on failure.
void fsyncFdOrThrow(int fd, const std::string& what);

/// Open `path` (file or directory) read-only, fsync it, close it. Used to
/// persist a directory entry after create/rename. Throws on failure.
void fsyncPath(const std::string& path);

/// fsync the parent directory of `path`; no-op when it has none.
void fsyncParentDir(const std::string& path);

/// Write `content` to `path` atomically and durably: temp file in the
/// same directory, write, fsync the file, rename over `path`, fsync the
/// directory. Throws std::runtime_error on any failure (the temp file is
/// removed on the error paths).
void atomicWriteFile(const std::string& path, const std::string& content);

}  // namespace rcsim
