#pragma once

#include <string>

#include "core/digest.hpp"
#include "core/runner.hpp"

namespace rcsim {

// fnv1aHexDigest lives in core/digest.hpp (re-exported by the include
// above): the same hash the result digests use, shared with the journal's
// config digests and the structured trace digests.

/// Canonical text rendering of every RunResult field (doubles at full
/// precision), for byte-exact determinism comparisons across engine
/// refactors. Two runs are equivalent iff their fingerprints match.
[[nodiscard]] std::string runResultFingerprint(const RunResult& r);

/// FNV-1a 64-bit digest of the fingerprint, as 16 lowercase hex chars —
/// compact enough to check golden values into a test.
[[nodiscard]] std::string runResultDigest(const RunResult& r);

/// Same idea for an Aggregate: every scalar and both series at full
/// precision. Lets a test assert that two aggregation paths (e.g. the
/// per-cell runMany barrier and the flattened SweepExecutor queue) produce
/// bit-identical statistics.
[[nodiscard]] std::string aggregateFingerprint(const Aggregate& a);
[[nodiscard]] std::string aggregateDigest(const Aggregate& a);

/// Same idea for a convergence-anatomy rollup (obs/anatomy.hpp). Kept
/// separate from runResultFingerprint — whose golden digests predate the
/// analyzer — so the serial == pooled convergence check can be exact
/// without disturbing a single pinned value.
[[nodiscard]] std::string anatomyFingerprint(const obs::AnatomySummary& s);
[[nodiscard]] std::string anatomyDigest(const obs::AnatomySummary& s);

}  // namespace rcsim
