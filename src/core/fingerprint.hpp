#pragma once

#include <string>
#include <string_view>

#include "core/runner.hpp"

namespace rcsim {

/// FNV-1a 64-bit digest of arbitrary text, as 16 lowercase hex chars —
/// the same hash the result digests use, exposed for callers that need a
/// compact identity for other canonical strings (e.g. a cell's
/// describeOptions list in the run journal).
[[nodiscard]] std::string fnv1aHexDigest(std::string_view text);

/// Canonical text rendering of every RunResult field (doubles at full
/// precision), for byte-exact determinism comparisons across engine
/// refactors. Two runs are equivalent iff their fingerprints match.
[[nodiscard]] std::string runResultFingerprint(const RunResult& r);

/// FNV-1a 64-bit digest of the fingerprint, as 16 lowercase hex chars —
/// compact enough to check golden values into a test.
[[nodiscard]] std::string runResultDigest(const RunResult& r);

/// Same idea for an Aggregate: every scalar and both series at full
/// precision. Lets a test assert that two aggregation paths (e.g. the
/// per-cell runMany barrier and the flattened SweepExecutor queue) produce
/// bit-identical statistics.
[[nodiscard]] std::string aggregateFingerprint(const Aggregate& a);
[[nodiscard]] std::string aggregateDigest(const Aggregate& a);

}  // namespace rcsim
