#pragma once

#include <cstdint>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace rcsim {

class Network;

/// Continuous link churn: every link independently alternates between up
/// and down with exponentially distributed times — the steady-failure
/// regime the paper's introduction motivates ("faults of various scale and
/// severity occur frequently", Labovitz et al.). Used by the availability
/// bench to measure long-run delivery ratio per protocol.
class ChurnInjector {
 public:
  struct Config {
    double meanUpSec = 120.0;   ///< MTBF per link
    double meanDownSec = 10.0;  ///< MTTR per link
    Time start;                 ///< churn begins here (after warm-up)
    Time stop;                  ///< no new failures after this (repairs still run)
  };

  ChurnInjector(Network& net, Rng rng, Config cfg);

  /// Schedule the first failure of every link.
  void install();

  [[nodiscard]] std::uint64_t failuresInjected() const { return failures_; }
  [[nodiscard]] std::uint64_t repairsInjected() const { return repairs_; }

 private:
  void scheduleFailure(std::size_t linkIndex, Time notBefore);

  Network& net_;
  Rng rng_;
  Config cfg_;
  std::uint64_t failures_ = 0;
  std::uint64_t repairs_ = 0;
};

}  // namespace rcsim
