#include "core/churn.hpp"

#include "net/network.hpp"

namespace rcsim {

ChurnInjector::ChurnInjector(Network& net, Rng rng, Config cfg)
    : net_{net}, rng_{rng}, cfg_{cfg} {}

void ChurnInjector::install() {
  for (std::size_t i = 0; i < net_.links().size(); ++i) scheduleFailure(i, cfg_.start);
}

void ChurnInjector::scheduleFailure(std::size_t linkIndex, Time notBefore) {
  const Time at = notBefore + Time::seconds(rng_.exponential(cfg_.meanUpSec));
  if (at >= cfg_.stop) return;
  net_.scheduler().scheduleAt(at, EventKind::Fault, [this, linkIndex] {
    Link& link = *net_.links()[linkIndex];
    if (!link.isUp()) {
      // Down through some other mechanism (fault plan, scenario failure).
      // Re-arm instead of returning bare: the bare return silently ended
      // churn for this link forever whenever another fault source touched
      // it first. Unreachable in pure-churn runs, so their schedules (and
      // the availability bench numbers) are unchanged.
      scheduleFailure(linkIndex, net_.scheduler().now());
      return;
    }
    link.fail();
    ++failures_;
    const Time repairAt =
        net_.scheduler().now() + Time::seconds(rng_.exponential(cfg_.meanDownSec));
    net_.scheduler().scheduleAt(repairAt, EventKind::Fault, [this, linkIndex] {
      Link& l = *net_.links()[linkIndex];
      if (l.isUp()) {
        // Recovered externally before our repair fired: skip the double
        // recover but keep the link's up/down cycle alive.
        scheduleFailure(linkIndex, net_.scheduler().now());
        return;
      }
      l.recover();
      ++repairs_;
      scheduleFailure(linkIndex, net_.scheduler().now());
    });
  });
}

}  // namespace rcsim
