#pragma once

#include <vector>

#include "core/experiment.hpp"

namespace rcsim {

/// Run `runs` independent replicas of `base` (seeds startSeed, startSeed+1,
/// ...) across a thread pool. Each replica owns its whole world, so runs
/// are embarrassingly parallel and bit-reproducible per seed.
[[nodiscard]] std::vector<RunResult> runMany(const ScenarioConfig& base, int runs,
                                             std::uint64_t startSeed = 1, int threads = 0);

/// Mean over replicas of the headline scalars, plus element-wise mean
/// time series — what the paper plots ("average ... over 100 runs").
struct Aggregate {
  int runs = 0;
  double dropsNoRoute = 0.0;       ///< Figure 3 (convergence-period, mean)
  double dropsTtl = 0.0;           ///< Figure 4
  double dropsOther = 0.0;         ///< queue + link-down + in-flight, after failure
  double delivered = 0.0;
  double sent = 0.0;
  double routingConvergenceSec = 0.0;
  double forwardingConvergenceSec = 0.0;
  double transientPaths = 0.0;
  double loopFraction = 0.0;  ///< fraction of runs whose path ever looped
  double loopEscapedDeliveries = 0.0;
  std::vector<double> throughput;  ///< element-wise mean, absolute seconds
  std::vector<double> meanDelay;   ///< mean over runs with deliveries in that second
  int failSec = 0;

  [[nodiscard]] static Aggregate over(const std::vector<RunResult>& results);
};

/// Number of replicas benches run by default; honours env RCSIM_RUNS.
[[nodiscard]] int defaultRunCount(int fallback);

/// Worker threads; honours env RCSIM_THREADS, else hardware concurrency.
[[nodiscard]] int defaultThreadCount();

}  // namespace rcsim
