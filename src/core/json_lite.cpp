#include "core/json_lite.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rcsim {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  JsonValue parseDocument() {
    JsonValue v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json_lite: " + what + " at byte " + std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parseValue() {
    skipWs();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.str = parseString();
        return v;
      }
      default: break;
    }
    JsonValue v;
    if (consume("true")) {
      v.kind = JsonValue::Kind::Bool;
      v.boolean = true;
    } else if (consume("false")) {
      v.kind = JsonValue::Kind::Bool;
    } else if (consume("null")) {
      v.kind = JsonValue::Kind::Null;
    } else {
      v.kind = JsonValue::Kind::Number;
      v.number = parseNumber();
    }
    return v;
  }

  double parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string num{text_.substr(start, pos_ - start)};
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) fail("malformed number '" + num + "'");
    return d;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          default: fail("unsupported escape sequence");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parseObject() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      v.object.emplace(std::move(key), parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parseArray() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue& JsonValue::at(const std::string& key) const {
  if (kind != Kind::Object) throw std::runtime_error("json_lite: '" + key + "' on non-object");
  const auto it = object.find(key);
  if (it == object.end()) throw std::runtime_error("json_lite: missing key '" + key + "'");
  return it->second;
}

JsonValue parseJson(std::string_view text) { return Parser{text}.parseDocument(); }

JsonValue JsonValue::makeNumber(double v) {
  JsonValue j;
  j.kind = Kind::Number;
  j.number = v;
  return j;
}

JsonValue JsonValue::makeString(std::string s) {
  JsonValue j;
  j.kind = Kind::String;
  j.str = std::move(s);
  return j;
}

JsonValue JsonValue::makeBool(bool b) {
  JsonValue j;
  j.kind = Kind::Bool;
  j.boolean = b;
  return j;
}

JsonValue JsonValue::makeArray() {
  JsonValue j;
  j.kind = Kind::Array;
  return j;
}

JsonValue JsonValue::makeObject() {
  JsonValue j;
  j.kind = Kind::Object;
  return j;
}

namespace {

void writeNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
    return;
  }
  // Shortest decimal form that survives a strtod round trip.
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

void writeString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

bool isScalar(const JsonValue& v) {
  return v.kind != JsonValue::Kind::Array && v.kind != JsonValue::Kind::Object;
}

void writeValue(std::string& out, const JsonValue& v, int indent, int depth) {
  const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  const std::string close(static_cast<std::size_t>(indent) * depth, ' ');
  switch (v.kind) {
    case JsonValue::Kind::Null: out += "null"; break;
    case JsonValue::Kind::Bool: out += v.boolean ? "true" : "false"; break;
    case JsonValue::Kind::Number: writeNumber(out, v.number); break;
    case JsonValue::Kind::String: writeString(out, v.str); break;
    case JsonValue::Kind::Array: {
      if (v.array.empty()) {
        out += "[]";
        break;
      }
      const bool inline1 = std::all_of(v.array.begin(), v.array.end(), isScalar);
      out += '[';
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (inline1) {
          if (i > 0) out += ", ";
        } else {
          out += i > 0 ? ",\n" : "\n";
          out += pad;
        }
        writeValue(out, v.array[i], indent, depth + 1);
      }
      if (!inline1) {
        out += '\n';
        out += close;
      }
      out += ']';
      break;
    }
    case JsonValue::Kind::Object: {
      if (v.object.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, member] : v.object) {
        out += first ? "\n" : ",\n";
        first = false;
        out += pad;
        writeString(out, key);
        out += ": ";
        writeValue(out, member, indent, depth + 1);
      }
      out += '\n';
      out += close;
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string dumpJson(const JsonValue& v, int indent) {
  std::string out;
  writeValue(out, v, indent, 0);
  out += '\n';
  return out;
}

namespace {

void writeValueCompact(std::string& out, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::Null: out += "null"; break;
    case JsonValue::Kind::Bool: out += v.boolean ? "true" : "false"; break;
    case JsonValue::Kind::Number: writeNumber(out, v.number); break;
    case JsonValue::Kind::String: writeString(out, v.str); break;
    case JsonValue::Kind::Array: {
      out += '[';
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i > 0) out += ',';
        writeValueCompact(out, v.array[i]);
      }
      out += ']';
      break;
    }
    case JsonValue::Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : v.object) {
        if (!first) out += ',';
        first = false;
        writeString(out, key);
        out += ':';
        writeValueCompact(out, member);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string dumpJsonLine(const JsonValue& v) {
  std::string out;
  writeValueCompact(out, v);
  return out;
}

}  // namespace rcsim
