#include "core/json_lite.hpp"

#include <cctype>
#include <cstdlib>

namespace rcsim {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_{text} {}

  JsonValue parseDocument() {
    JsonValue v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json_lite: " + what + " at byte " + std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parseValue() {
    skipWs();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.str = parseString();
        return v;
      }
      default: break;
    }
    JsonValue v;
    if (consume("true")) {
      v.kind = JsonValue::Kind::Bool;
      v.boolean = true;
    } else if (consume("false")) {
      v.kind = JsonValue::Kind::Bool;
    } else if (consume("null")) {
      v.kind = JsonValue::Kind::Null;
    } else {
      v.kind = JsonValue::Kind::Number;
      v.number = parseNumber();
    }
    return v;
  }

  double parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string num{text_.substr(start, pos_ - start)};
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) fail("malformed number '" + num + "'");
    return d;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          default: fail("unsupported escape sequence");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parseObject() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      v.object.emplace(std::move(key), parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parseArray() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue& JsonValue::at(const std::string& key) const {
  if (kind != Kind::Object) throw std::runtime_error("json_lite: '" + key + "' on non-object");
  const auto it = object.find(key);
  if (it == object.end()) throw std::runtime_error("json_lite: missing key '" + key + "'");
  return it->second;
}

JsonValue parseJson(std::string_view text) { return Parser{text}.parseDocument(); }

}  // namespace rcsim
