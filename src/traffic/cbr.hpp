#pragma once

#include <cstdint>

#include "net/types.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace rcsim {

class Network;

/// Constant-bit-rate source: `rate` packets per second from src to dst
/// during [start, stop), as in the paper's workload (a single CBR sender).
class CbrSource {
 public:
  struct Config {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    double packetsPerSecond = 20.0;
    std::uint32_t packetBytes = 1000;
    int ttl = 127;
    Time start;
    Time stop;
    bool tracePackets = false;  ///< Record the hop sequence of every packet.
  };

  CbrSource(Network& net, Config cfg);

  /// Schedule all emissions. (Emissions are pre-scheduled rather than
  /// self-rescheduling so the source needs no per-run teardown.)
  void install();

  [[nodiscard]] std::uint64_t packetsSent() const { return sent_; }

 private:
  void emitPacket();

  Network& net_;
  Config cfg_;
  std::uint64_t sent_ = 0;
};

}  // namespace rcsim
