#include "traffic/cbr.hpp"

#include <memory>

#include "net/network.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"

namespace rcsim {

CbrSource::CbrSource(Network& net, Config cfg) : net_{net}, cfg_{cfg} {}

void CbrSource::install() {
  auto& sched = net_.scheduler();
  const double periodSec = 1.0 / cfg_.packetsPerSecond;
  for (Time t = cfg_.start; t < cfg_.stop; t += Time::seconds(periodSec)) {
    sched.scheduleAt(t, EventKind::Traffic, [this] { emitPacket(); });
  }
}

void CbrSource::emitPacket() {
  Packet p;
  p.id = net_.nextPacketId();
  p.src = cfg_.src;
  p.dst = cfg_.dst;
  p.ttl = cfg_.ttl;
  p.sizeBytes = cfg_.packetBytes;
  p.kind = PacketKind::Data;
  p.sendTime = net_.scheduler().now();
  if (cfg_.tracePackets) p.trace = std::make_shared<std::vector<NodeId>>();
  ++sent_;
  net_.node(cfg_.src).originate(std::move(p));
}

}  // namespace rcsim
