#include "traffic/tcp_flow.hpp"

#include <memory>

#include "net/network.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"

namespace rcsim {

TcpFlow::TcpFlow(Network& net, Config cfg) : net_{net}, cfg_{cfg} {}

TcpFlow::~TcpFlow() { net_.scheduler().cancel(rtoTimer_); }

void TcpFlow::install() {
  // Both endpoints see every locally delivered packet; filter by flow id.
  auto handler = [this](const Packet& p) {
    if (p.flowId == cfg_.flowId) onPacket(p);
  };
  net_.node(cfg_.dst).addDeliveryHandler(handler);
  net_.node(cfg_.src).addDeliveryHandler(handler);
  net_.scheduler().scheduleAt(cfg_.start, EventKind::Traffic, [this] { startSending(); });
}

void TcpFlow::startSending() { fillWindow(); }

void TcpFlow::fillWindow() {
  const Time now = net_.scheduler().now();
  while (nextSeq_ < sendBase_ + static_cast<std::uint64_t>(cfg_.window) && now < cfg_.stop) {
    sendData(nextSeq_);
    ++nextSeq_;
  }
  armRto();
}

void TcpFlow::sendData(std::uint64_t seq) {
  Packet p;
  p.id = net_.nextPacketId();
  p.src = cfg_.src;
  p.dst = cfg_.dst;
  p.ttl = cfg_.ttl;
  p.sizeBytes = cfg_.packetBytes;
  p.kind = PacketKind::Data;
  p.sendTime = net_.scheduler().now();
  p.flowId = cfg_.flowId;
  p.flowSeq = seq;
  p.flowAck = false;
  if (cfg_.tracePackets) p.trace = std::make_shared<std::vector<NodeId>>();
  net_.node(cfg_.src).originate(std::move(p));
}

void TcpFlow::sendAck() {
  Packet p;
  p.id = net_.nextPacketId();
  p.src = cfg_.dst;
  p.dst = cfg_.src;
  p.ttl = cfg_.ttl;
  p.sizeBytes = cfg_.ackBytes;
  p.kind = PacketKind::Data;
  p.sendTime = net_.scheduler().now();
  p.flowId = cfg_.flowId;
  p.flowSeq = recvNext_;  // cumulative: everything below this was received
  p.flowAck = true;
  net_.node(cfg_.dst).originate(std::move(p));
}

void TcpFlow::onPacket(const Packet& p) {
  if (p.flowAck) {
    // Sender side.
    if (p.flowSeq > sendBase_) {
      sendBase_ = p.flowSeq;
      dupAcks_ = 0;
      net_.scheduler().cancel(rtoTimer_);
      rtoTimer_ = EventId{};
      fillWindow();
    } else if (p.flowSeq == sendBase_ && sendBase_ < nextSeq_) {
      if (++dupAcks_ >= cfg_.dupAckThreshold) {
        dupAcks_ = 0;
        ++retransmissions_;
        sendData(sendBase_);  // fast retransmit of the missing packet
      }
    }
    return;
  }

  // Receiver side.
  if (p.flowSeq >= recvNext_) outOfOrder_.insert(p.flowSeq);
  while (!outOfOrder_.empty() && *outOfOrder_.begin() == recvNext_) {
    outOfOrder_.erase(outOfOrder_.begin());
    const auto sec =
        static_cast<std::size_t>(net_.scheduler().now().ns() / 1'000'000'000);
    if (sec >= goodput_.size()) goodput_.resize(sec + 1);
    ++goodput_[sec];
    ++recvNext_;
  }
  sendAck();
}

void TcpFlow::armRto() {
  if (sendBase_ == nextSeq_ || rtoTimer_.valid()) return;
  rtoTimer_ = net_.scheduler().scheduleAfter(cfg_.rto, EventKind::Transport, [this] { onRto(); });
}

void TcpFlow::onRto() {
  rtoTimer_ = EventId{};
  if (sendBase_ == nextSeq_) return;
  ++retransmissions_;
  sendData(sendBase_);  // go-back-1: resend the oldest unacked packet
  armRto();
}

}  // namespace rcsim
