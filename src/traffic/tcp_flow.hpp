#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "net/types.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace rcsim {

class Network;
struct Packet;

/// End-to-end reliable flow over the routed data plane — the paper's §6
/// future-work measurement ("end-to-end TCP performance during routing
/// convergence"), modelled after the FTP workload of Shankar et al. that
/// the paper cites: a fixed-window transfer with cumulative ACKs,
/// timeout retransmission and duplicate-ACK fast retransmit. Both data and
/// ACK packets are ordinary routed packets that can loop or be dropped.
class TcpFlow {
 public:
  struct Config {
    std::int32_t flowId = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    int window = 8;           ///< fixed window, packets
    std::uint32_t packetBytes = 1000;
    std::uint32_t ackBytes = 40;
    int ttl = 127;
    Time start;
    Time stop;                ///< stop *offering* new data at this time
    Time rto = Time::seconds(1.0);
    int dupAckThreshold = 3;
    bool tracePackets = false;
  };

  TcpFlow(Network& net, Config cfg);
  ~TcpFlow();

  TcpFlow(const TcpFlow&) = delete;
  TcpFlow& operator=(const TcpFlow&) = delete;

  /// Register delivery handlers on both endpoints and schedule the start.
  void install();

  // Sender-side counters.
  [[nodiscard]] std::uint64_t uniquePacketsSent() const { return nextSeq_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] std::uint64_t acked() const { return sendBase_; }

  // Receiver-side counters.
  [[nodiscard]] std::uint64_t goodputPackets() const { return recvNext_; }
  /// New in-order packets accepted at the receiver, bucketed per second of
  /// simulation time — the goodput series for the TCP figure.
  [[nodiscard]] const std::vector<std::uint32_t>& goodputSeries() const { return goodput_; }
  [[nodiscard]] double goodputAt(int second) const {
    const auto i = static_cast<std::size_t>(second);
    return second >= 0 && i < goodput_.size() ? goodput_[i] : 0.0;
  }

 private:
  void startSending();
  void fillWindow();
  void sendData(std::uint64_t seq);
  void sendAck();
  void onPacket(const Packet& p);  // both endpoints dispatch here
  void armRto();
  void onRto();

  Network& net_;
  Config cfg_;

  // Sender state.
  std::uint64_t nextSeq_ = 0;
  std::uint64_t sendBase_ = 0;
  int dupAcks_ = 0;
  EventId rtoTimer_{};
  std::uint64_t retransmissions_ = 0;

  // Receiver state.
  std::uint64_t recvNext_ = 0;
  std::set<std::uint64_t> outOfOrder_;
  std::vector<std::uint32_t> goodput_;
};

}  // namespace rcsim
