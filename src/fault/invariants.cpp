#include "fault/invariants.hpp"

#include <sstream>

#include "net/fib.hpp"
#include "net/packet.hpp"

namespace rcsim::fault {
namespace {

std::string describePacket(const Packet& p) {
  std::ostringstream os;
  os << (p.kind == PacketKind::Data ? "data" : "ctrl") << "#" << p.id << " " << p.src << "->"
     << p.dst << " ttl=" << static_cast<int>(p.ttl);
  return os.str();
}

}  // namespace

std::string Violation::format() const {
  std::ostringstream os;
  os << "invariant '" << invariant << "' violated at t=" << at.toSeconds() << "s node=" << node
     << ": " << detail;
  if (!trail.empty()) {
    os << "\n  event trail (oldest first):";
    for (const auto& line : trail) os << "\n    " << line;
  }
  return os.str();
}

InvariantChecker::InvariantChecker(Network& net) : net_{net} { net_.setObserver(this); }

InvariantChecker::~InvariantChecker() {
  if (net_.observer() == this) net_.setObserver(nullptr);
}

void InvariantChecker::note(Time t, std::string what) {
  if (trail_.size() >= kTrailLength) trail_.pop_front();
  std::ostringstream os;
  os << "t=" << t.toSeconds() << "s " << what;
  trail_.push_back(os.str());
}

void InvariantChecker::record(Time at, NodeId node, const char* invariant, std::string detail) {
  if (violations_.size() >= kMaxViolations) return;
  Violation v;
  v.at = at;
  v.node = node;
  v.invariant = invariant;
  v.detail = std::move(detail);
  v.trail.assign(trail_.begin(), trail_.end());
  violations_.push_back(std::move(v));
}

void InvariantChecker::checkConservation(Time at) {
  if (delivered_ + dropped_ <= originated_) return;
  std::ostringstream os;
  os << "delivered(" << delivered_ << ") + dropped(" << dropped_ << ") > originated("
     << originated_ << ")";
  record(at, kInvalidNode, "packet-conservation", os.str());
}

void InvariantChecker::onDrop(Time t, NodeId where, const Packet& p, DropReason r) {
  note(t, "drop[" + std::string{toString(r)} + "] at " + std::to_string(where) + " " +
              describePacket(p));
  if (p.kind != PacketKind::Data) return;
  ++dropped_;
  checkConservation(t);
  if (r == DropReason::TtlExpired) {
    const auto* proto = net_.node(where).protocol();
    ++loopsByProtocol_[proto != nullptr ? proto->name() : "(no protocol)"];
  }
}

void InvariantChecker::onDeliver(Time t, NodeId node, const Packet& p) {
  if (p.kind != PacketKind::Data) return;
  note(t, "deliver at " + std::to_string(node) + " " + describePacket(p));
  ++delivered_;
  checkConservation(t);
}

void InvariantChecker::onForward(Time t, NodeId node, const Packet& p, NodeId nextHop) {
  if (p.ttl <= 0) {
    record(t, node,
           "ttl-exhausted-forward", describePacket(p) + " forwarded toward " +
               std::to_string(nextHop) + " with ttl <= 0");
  }
}

void InvariantChecker::onOriginate(Time t, NodeId node, const Packet& p) {
  if (p.kind != PacketKind::Data) return;
  note(t, "originate at " + std::to_string(node) + " " + describePacket(p));
  ++originated_;
}

void InvariantChecker::onRouteChange(Time t, NodeId node, NodeId dst, NodeId oldNh,
                                     NodeId newNh) {
  note(t, "route at " + std::to_string(node) + " dst=" + std::to_string(dst) + " " +
              std::to_string(oldNh) + "->" + std::to_string(newNh));
  if (newNh == kInvalidNode) return;
  checkFibEntry(t, node, dst, newNh);
}

void InvariantChecker::checkFibEntry(Time at, NodeId node, NodeId dst, NodeId nh) {
  if (nh == node) {
    record(at, node, "fib-invalid-nexthop",
           "route for dst " + std::to_string(dst) + " points at the node itself");
    return;
  }
  if (net_.node(node).linkTo(nh) == nullptr) {
    record(at, node, "fib-invalid-nexthop",
           "route for dst " + std::to_string(dst) + " points at " + std::to_string(nh) +
               ", which is not an attached neighbor");
  }
}

void InvariantChecker::onLinkTransmit(Time t, NodeId from, NodeId to, bool linkUp) {
  if (!linkUp) {
    record(t, from, "transmit-on-down-link",
           "link " + std::to_string(from) + "-" + std::to_string(to) +
               " accepted a packet while down");
  }
}

void InvariantChecker::onLinkStateChange(Time t, NodeId a, NodeId b, bool up) {
  note(t, "link " + std::to_string(a) + "-" + std::to_string(b) + (up ? " up" : " down"));
}

void InvariantChecker::finalCheck(Time at) {
  checkConservation(at);
  // Sweep the full entry set, not just the primary: with ECMP on, a stale
  // alternate pointing at a detached neighbor is as much a forwarding bug
  // as a bad primary (the data plane may pick it via the flow hash).
  NodeId hops[Fib::kMaxNextHops];
  for (NodeId n = 0; n < static_cast<NodeId>(net_.nodeCount()); ++n) {
    const auto& fib = net_.node(n).fib();
    for (NodeId dst = 0; dst < static_cast<NodeId>(fib.size()); ++dst) {
      const int count = fib.nextHops(dst, hops);
      for (int k = 0; k < count; ++k) checkFibEntry(at, n, dst, hops[k]);
    }
  }
}

std::string InvariantChecker::summary() const {
  std::string out;
  for (const auto& v : violations_) {
    if (!out.empty()) out += '\n';
    out += v.format();
  }
  if (violations_.size() >= kMaxViolations) {
    out += "\n(further violations suppressed)";
  }
  return out;
}

}  // namespace rcsim::fault
