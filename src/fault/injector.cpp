#include "fault/injector.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace rcsim::fault {

FaultInjector::FaultInjector(Network& net, FaultPlan plan, ProtocolFactory factory)
    : net_{net}, plan_{std::move(plan)}, factory_{std::move(factory)} {}

void FaultInjector::install() {
  auto& sched = net_.scheduler();
  for (const auto& ev : plan_.events) {
    sched.scheduleAt(ev.at, EventKind::Fault, [this, ev] { apply(ev); });
  }
}

Link& FaultInjector::mustFindLink(NodeId a, NodeId b) const {
  Link* l = net_.findLink(a, b);
  if (l == nullptr) {
    throw std::runtime_error("fault-plan: no link " + std::to_string(a) + "-" +
                             std::to_string(b) + " in this topology");
  }
  return *l;
}

void FaultInjector::mustFindNode(NodeId n) const {
  if (n < 0 || static_cast<std::size_t>(n) >= net_.nodeCount()) {
    throw std::runtime_error("fault-plan: no node " + std::to_string(n) + " in this topology");
  }
}

void FaultInjector::eachTargetLink(const FaultEvent& ev, const std::function<void(Link&)>& fn) {
  if (ev.allLinks) {
    for (const auto& l : net_.links()) fn(*l);
    return;
  }
  fn(mustFindLink(ev.a, ev.b));
}

void FaultInjector::apply(const FaultEvent& ev) {
  // Fires exactly once, before the first plan event mutates anything — the
  // scenario layer snapshots pre-fault routing state here.
  if (onFirstFault_) {
    auto cb = std::move(onFirstFault_);
    onFirstFault_ = nullptr;
    cb();
  }
  net_.trace().emit(net_.scheduler().now(), obs::TraceKind::FaultApply, ev.a, ev.b,
                    static_cast<std::int64_t>(ev.kind));
  switch (ev.kind) {
    case FaultKind::LinkFail: {
      Link& l = mustFindLink(ev.a, ev.b);
      if (l.isUp()) ++linkFailures_;
      l.fail();
      break;
    }
    case FaultKind::LinkRecover: {
      Link& l = mustFindLink(ev.a, ev.b);
      if (!l.isUp()) ++linkRecoveries_;
      l.recover();
      break;
    }
    case FaultKind::NodeCrash:
      crash(ev.a);
      break;
    case FaultKind::NodeRestart:
      restart(ev.a);
      break;
    case FaultKind::LinkLoss:
      eachTargetLink(ev, [&](Link& l) { l.setLossRate(ev.rate); });
      break;
    case FaultKind::LinkCorrupt:
      eachTargetLink(ev, [&](Link& l) { l.setCorruptRate(ev.rate); });
      break;
    case FaultKind::LinkReorder:
      eachTargetLink(ev, [&](Link& l) { l.setReorder(ev.rate, ev.jitter); });
      break;
    case FaultKind::DetectDelay:
      mustFindLink(ev.a, ev.b).setDetectDelay(ev.detect);
      break;
    case FaultKind::Partition:
      partition(ev.group);
      break;
    case FaultKind::Heal:
      heal(ev.group);
      break;
    case FaultKind::CtrlLoss:
      eachTargetLink(ev, [&](Link& l) { l.setCtrlLossRate(ev.rate); });
      break;
    case FaultKind::CtrlDelay:
      eachTargetLink(ev, [&](Link& l) { l.setCtrlDelay(ev.jitter); });
      break;
    case FaultKind::CtrlDup:
      eachTargetLink(ev, [&](Link& l) { l.setCtrlDupRate(ev.rate); });
      break;
    case FaultKind::FlapBurst:
      flapBurst(ev);
      break;
  }
}

void FaultInjector::flapBurst(const FaultEvent& ev) {
  Link& l = mustFindLink(ev.a, ev.b);  // validate the reference up front
  auto& sched = net_.scheduler();
  const double period = ev.period.toSeconds();
  // Cycle k: fail at k*period, recover half a period later. Failing a link
  // someone else already took down (or recovering one independently failed)
  // is a no-op, mirroring the LinkFail/LinkRecover event semantics.
  for (int k = 0; k < ev.count; ++k) {
    sched.scheduleAfter(Time::seconds(period * k), EventKind::Fault, [this, &l] {
      if (l.isUp()) {
        ++linkFailures_;
        l.fail();
      }
    });
    sched.scheduleAfter(Time::seconds(period * k + period / 2.0), EventKind::Fault, [this, &l] {
      if (!l.isUp()) {
        ++linkRecoveries_;
        l.recover();
      }
    });
  }
}

void FaultInjector::crash(NodeId n) {
  mustFindNode(n);
  if (downNodes_.count(n) != 0) return;
  Node& node = net_.node(n);
  // Salvage the dying protocol's transport counters for end-of-run totals,
  // then destroy it — RIB, timers and sessions all go with it.
  if (auto* proto = node.protocol()) {
    const auto tc = proto->transportCounters();
    lostTransport_.retransmissions += tc.retransmissions;
    lostTransport_.sessionResets += tc.sessionResets;
  }
  node.setProtocol(nullptr);
  // A crashed router's interfaces go dark: fail every up link, remembering
  // which ones so restart only recovers what the crash took down.
  auto& took = crashTookDown_[n];
  took.clear();
  for (const NodeId nb : node.neighbors()) {
    Link* l = node.linkTo(nb);
    if (l != nullptr && l->isUp()) {
      took.push_back(l);
      l->fail();
      ++linkFailures_;
    }
  }
  node.clearRoutes();
  downNodes_.insert(n);
  ++nodeCrashes_;
}

void FaultInjector::restart(NodeId n) {
  mustFindNode(n);
  if (downNodes_.count(n) == 0) return;
  Node& node = net_.node(n);
  for (Link* l : crashTookDown_[n]) {
    if (!l->isUp()) {
      l->recover();
      ++linkRecoveries_;
    }
  }
  crashTookDown_.erase(n);
  downNodes_.erase(n);
  if (factory_) {
    node.setProtocol(factory_(node));
    node.protocol()->start();  // cold boot: empty RIB, fresh adjacencies
  }
  ++nodeRestarts_;
}

std::string FaultInjector::groupKey(std::vector<NodeId> group) {
  std::sort(group.begin(), group.end());
  std::string key;
  for (const NodeId n : group) key += std::to_string(n) + ",";
  return key;
}

void FaultInjector::partition(const std::vector<NodeId>& group) {
  std::set<NodeId> inside(group.begin(), group.end());
  auto& cut = partitionCut_[groupKey(group)];
  for (const auto& l : net_.links()) {
    const bool aIn = inside.count(l->endpointA()) != 0;
    const bool bIn = inside.count(l->endpointB()) != 0;
    if (aIn != bIn && l->isUp()) {
      cut.push_back(l.get());
      l->fail();
      ++linkFailures_;
    }
  }
}

void FaultInjector::heal(const std::vector<NodeId>& group) {
  const auto it = partitionCut_.find(groupKey(group));
  if (it == partitionCut_.end()) return;
  for (Link* l : it->second) {
    if (!l->isUp()) {
      l->recover();
      ++linkRecoveries_;
    }
  }
  partitionCut_.erase(it);
}

}  // namespace rcsim::fault
