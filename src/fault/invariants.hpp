#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace rcsim::fault {

/// One invariant violation, with enough context to debug it: simulation
/// time, the node involved, and the tail of the event trail leading up.
struct Violation {
  Time at = Time::zero();
  NodeId node = kInvalidNode;
  std::string invariant;  ///< Stable machine-readable name.
  std::string detail;     ///< Human-readable specifics.
  std::vector<std::string> trail;  ///< Last few network events before it.

  [[nodiscard]] std::string format() const;
};

/// Runtime invariant checker, attached as the Network's secondary observer.
///
/// Checked continuously:
///   packet-conservation   delivered + dropped never exceeds originated
///                         (data plane; in-flight is the difference)
///   transmit-on-down-link a link accepted a packet while down
///   ttl-exhausted-forward a node forwarded a packet with TTL <= 0
///   fib-invalid-nexthop   a route points at self or a non-attached node
///
/// Checked by finalCheck():
///   the FIB scan above over every (node, dst) pair, plus a final
///   conservation recheck.
///
/// TTL-expiry drops are additionally attributed to the protocol running at
/// the dropping node (loopsByProtocol) — loops are legal transients, so
/// they are diagnostics, not violations.
class InvariantChecker final : public NetworkObserver {
 public:
  /// Attaches itself via Network::setObserver.
  explicit InvariantChecker(Network& net);
  ~InvariantChecker() override;

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  void onDrop(Time t, NodeId where, const Packet& p, DropReason r) override;
  void onDeliver(Time t, NodeId node, const Packet& p) override;
  void onForward(Time t, NodeId node, const Packet& p, NodeId nextHop) override;
  void onOriginate(Time t, NodeId node, const Packet& p) override;
  void onRouteChange(Time t, NodeId node, NodeId dst, NodeId oldNh, NodeId newNh) override;
  void onLinkTransmit(Time t, NodeId from, NodeId to, bool linkUp) override;
  void onLinkStateChange(Time t, NodeId a, NodeId b, bool up) override;

  /// Full end-of-run sweep: every FIB entry plus conservation.
  void finalCheck(Time at);

  [[nodiscard]] bool clean() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  [[nodiscard]] const std::map<std::string, std::uint64_t>& loopsByProtocol() const {
    return loopsByProtocol_;
  }

  /// All violations formatted into one report ("" when clean).
  [[nodiscard]] std::string summary() const;

  [[nodiscard]] std::uint64_t originated() const { return originated_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  static constexpr std::size_t kTrailLength = 16;
  static constexpr std::size_t kMaxViolations = 64;  ///< One bug floods fast.

  void note(Time t, std::string what);
  void record(Time at, NodeId node, const char* invariant, std::string detail);
  void checkConservation(Time at);
  void checkFibEntry(Time at, NodeId node, NodeId dst, NodeId nh);

  Network& net_;
  std::deque<std::string> trail_;
  std::vector<Violation> violations_;
  std::map<std::string, std::uint64_t> loopsByProtocol_;
  std::uint64_t originated_ = 0;  ///< Data packets only.
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace rcsim::fault
