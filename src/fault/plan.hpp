#pragma once

#include <string>
#include <vector>

#include "net/types.hpp"
#include "sim/time.hpp"

namespace rcsim::fault {

/// What a single timed fault event does to the network.
enum class FaultKind {
  LinkFail,       ///< Take one link down (both directions).
  LinkRecover,    ///< Bring one link back up.
  NodeCrash,      ///< Destroy a node's protocol state and fail its links.
  NodeRestart,    ///< Recreate the protocol (cold RIB) and recover its links.
  LinkLoss,       ///< Set a random-loss rate on a link (or all links).
  LinkCorrupt,    ///< Set a corruption rate on a link (or all links).
  LinkReorder,    ///< Set a reordering rate + jitter on a link (or all links).
  DetectDelay,    ///< Override the failure-detection delay on a link.
  Partition,      ///< Fail every up link crossing a node-group boundary.
  Heal,           ///< Recover the links cut by the matching Partition.
  CtrlLoss,       ///< Set a control-packet-only loss rate on a link (or all).
  CtrlDelay,      ///< Add a fixed delay to control packets on a link (or all).
  CtrlDup,        ///< Set a control-packet duplication rate on a link (or all).
  FlapBurst,      ///< Flap one link n times with the given period.
};

[[nodiscard]] constexpr const char* toString(FaultKind k) {
  switch (k) {
    case FaultKind::LinkFail: return "fail";
    case FaultKind::LinkRecover: return "recover";
    case FaultKind::NodeCrash: return "crash";
    case FaultKind::NodeRestart: return "restart";
    case FaultKind::LinkLoss: return "loss";
    case FaultKind::LinkCorrupt: return "corrupt";
    case FaultKind::LinkReorder: return "reorder";
    case FaultKind::DetectDelay: return "detect";
    case FaultKind::Partition: return "partition";
    case FaultKind::Heal: return "heal";
    case FaultKind::CtrlLoss: return "ctrl-loss";
    case FaultKind::CtrlDelay: return "ctrl-delay";
    case FaultKind::CtrlDup: return "ctrl-dup";
    case FaultKind::FlapBurst: return "flapburst";
  }
  return "?";
}

/// One timed fault. Which fields matter depends on `kind`:
///   LinkFail/LinkRecover           a-b
///   NodeCrash/NodeRestart          a
///   LinkLoss/LinkCorrupt           a-b (or allLinks) + rate
///   LinkReorder                    a-b (or allLinks) + rate + jitter
///   DetectDelay                    a-b + detect
///   Partition/Heal                 group
///   CtrlLoss/CtrlDup               a-b (or allLinks) + rate
///   CtrlDelay                      a-b (or allLinks) + jitter (the delay)
///   FlapBurst                      a-b + count + period
struct FaultEvent {
  Time at = Time::zero();
  FaultKind kind = FaultKind::LinkFail;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  bool allLinks = false;       ///< LinkLoss/Corrupt/Reorder applied network-wide.
  double rate = 0.0;           ///< Loss / corruption / reorder probability.
  Time jitter = Time::zero();  ///< Extra delay bound for LinkReorder.
  Time detect = Time::zero();  ///< New detection delay for DetectDelay.
  std::vector<NodeId> group;   ///< Partition/Heal node set.
  int count = 0;               ///< FlapBurst: number of fail/recover cycles.
  Time period = Time::zero();  ///< FlapBurst: cycle period (down half, up half).

  bool operator==(const FaultEvent&) const = default;
};

/// A declarative, replayable schedule of fault events over a scenario.
///
/// Text form (the `fault-plan=` option): semicolon-separated events, each
/// `<seconds>:<kind>:<args>`:
///
///   400:fail:24-25          fail link 24-25 at t=400s
///   460:recover:24-25       recover it
///   400:crash:24            crash node 24 (protocol state lost)
///   460:restart:24          restart it with a cold RIB
///   395:loss:*:0.02         2% random loss on every link
///   395:loss:24-25:0.02     ... or on one link
///   395:corrupt:24-25:0.01  1% corruption (drops, counted separately)
///   395:reorder:24-25:0.1:50   10% of packets get up to +50ms delay
///   399:detect:24-25:2000   detection delay becomes 2000ms (silent failure)
///   400:partition:0,1,2     cut the group {0,1,2} off from the rest
///   460:heal:0,1,2          recover exactly the links that cut made
///   395:ctrl-loss:24-25:0.5    half of all control packets lost (data OK)
///   395:ctrl-delay:*:250       control packets gain 250ms everywhere
///   395:ctrl-dup:24-25:0.2     20% of control packets delivered twice
///   400:flapburst:24-25:6:10   flap 24-25 six times: 5s down, 5s up, ...
///
/// parse(format(p)) == p for every valid plan, so plans round-trip through
/// describeOptions and the rcsim-experiment-v1 JSON artifacts bit-for-bit.
struct FaultPlan {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
  bool operator==(const FaultPlan&) const = default;

  /// Render to the canonical text form ("" for an empty plan).
  [[nodiscard]] std::string format() const;

  /// Parse the text form; throws std::invalid_argument with a pointer to
  /// the offending event on malformed input. "" parses to the empty plan.
  [[nodiscard]] static FaultPlan parse(const std::string& text);
};

}  // namespace rcsim::fault
