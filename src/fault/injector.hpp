#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "net/network.hpp"
#include "net/routing_protocol.hpp"

namespace rcsim::fault {

/// Executes a FaultPlan against a live network: schedules every event and
/// applies it at its simulation time. Owned by the Scenario; stateless
/// between runs (one injector per run).
///
/// Node crashes destroy the protocol instance (RIB and session state are
/// genuinely lost), fail the node's up links, and clear its FIB; restarts
/// rebuild the protocol through the injected factory — the injector knows
/// nothing about which protocol a scenario runs.
class FaultInjector {
 public:
  using ProtocolFactory = std::function<std::unique_ptr<RoutingProtocol>(Node&)>;

  FaultInjector(Network& net, FaultPlan plan, ProtocolFactory factory);

  /// Schedule every plan event on the network's scheduler. Call once,
  /// before Scheduler::run. Malformed references (unknown link/node)
  /// surface as std::runtime_error at the event's simulation time.
  void install();

  /// Invoked once, immediately before the first plan event is applied (at
  /// its simulation time). Lets the scenario snapshot pre-fault state
  /// without scheduling any event of its own.
  void setOnFirstFault(std::function<void()> cb) { onFirstFault_ = std::move(cb); }

  [[nodiscard]] bool nodeDown(NodeId n) const { return downNodes_.count(n) != 0; }

  [[nodiscard]] std::uint64_t linkFailures() const { return linkFailures_; }
  [[nodiscard]] std::uint64_t linkRecoveries() const { return linkRecoveries_; }
  [[nodiscard]] std::uint64_t nodeCrashes() const { return nodeCrashes_; }
  [[nodiscard]] std::uint64_t nodeRestarts() const { return nodeRestarts_; }

  /// Transport counters salvaged from protocols destroyed by crashes, so
  /// end-of-run reporting still sees their retransmission/reset totals.
  [[nodiscard]] RoutingProtocol::TransportCounters lostTransportCounters() const {
    return lostTransport_;
  }

 private:
  void apply(const FaultEvent& ev);
  void crash(NodeId n);
  void restart(NodeId n);
  void partition(const std::vector<NodeId>& group);
  void heal(const std::vector<NodeId>& group);
  void flapBurst(const FaultEvent& ev);
  /// Apply `fn` to the event's target link(s); throws on a dangling ref.
  void eachTargetLink(const FaultEvent& ev, const std::function<void(Link&)>& fn);
  [[nodiscard]] Link& mustFindLink(NodeId a, NodeId b) const;
  void mustFindNode(NodeId n) const;
  [[nodiscard]] static std::string groupKey(std::vector<NodeId> group);

  Network& net_;
  FaultPlan plan_;
  ProtocolFactory factory_;
  std::function<void()> onFirstFault_;
  std::set<NodeId> downNodes_;
  /// Links this injector took down when crashing a node, to recover on
  /// restart (and only those — independently failed links stay down).
  std::map<NodeId, std::vector<Link*>> crashTookDown_;
  /// Links cut per partition group, to recover on the matching heal.
  std::map<std::string, std::vector<Link*>> partitionCut_;
  RoutingProtocol::TransportCounters lostTransport_;
  std::uint64_t linkFailures_ = 0;
  std::uint64_t linkRecoveries_ = 0;
  std::uint64_t nodeCrashes_ = 0;
  std::uint64_t nodeRestarts_ = 0;
};

}  // namespace rcsim::fault
