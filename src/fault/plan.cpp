#include "fault/plan.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace rcsim::fault {
namespace {

/// Seconds-to-Time with round-to-nearest nanosecond. Time::seconds
/// truncates, which loses 1 ns whenever toSeconds()*1e9 lands just below
/// the tick count it came from — and parse(format(p)) must restore
/// arbitrary tick counts exactly, not just whole-second ones.
Time secondsExact(double s) { return Time::nanoseconds(std::llround(s * 1e9)); }

/// Shortest decimal rendering that still round-trips the double exactly —
/// plans embedded in artifacts must replay bit-for-bit.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  if (std::strtod(buf, nullptr) != v) std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Same, but for Time fields: round-trip is judged after the nanosecond
/// quantization, so "460" stays "460" even though toSeconds() of the
/// stored tick count is not exactly 460.0.
std::string secs(Time t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", t.toSeconds());
  if (secondsExact(std::strtod(buf, nullptr)) != t) {
    std::snprintf(buf, sizeof buf, "%.17g", t.toSeconds());
  }
  return buf;
}

std::string millis(Time t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", t.toSeconds() * 1000.0);
  if (secondsExact(std::strtod(buf, nullptr) / 1000.0) != t) {
    std::snprintf(buf, sizeof buf, "%.17g", t.toSeconds() * 1000.0);
  }
  return buf;
}

[[noreturn]] void bad(const std::string& event, const char* why) {
  throw std::invalid_argument("fault-plan: bad event '" + event + "': " + why);
}

double parseNum(const std::string& s, const std::string& event) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || errno != 0 || end == s.c_str() || *end != '\0') {
    bad(event, "expected a number");
  }
  return v;
}

NodeId parseNode(const std::string& s, const std::string& event) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (s.empty() || errno != 0 || end == s.c_str() || *end != '\0' || v < 0 || v > 1'000'000L) {
    bad(event, "expected a node id");
  }
  return static_cast<NodeId>(v);
}

/// "A-B" into (a, b); "*" sets allLinks for the impairment kinds.
void parseEndpoints(const std::string& s, FaultEvent& ev, bool starOk,
                    const std::string& event) {
  if (starOk && s == "*") {
    ev.allLinks = true;
    return;
  }
  const auto dash = s.find('-');
  if (dash == std::string::npos) bad(event, "expected 'A-B' endpoints");
  ev.a = parseNode(s.substr(0, dash), event);
  ev.b = parseNode(s.substr(dash + 1), event);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string part;
  std::istringstream in{s};
  while (std::getline(in, part, sep)) out.push_back(part);
  return out;
}

FaultEvent parseEvent(const std::string& text) {
  const auto fields = split(text, ':');
  if (fields.size() < 3) bad(text, "expected '<sec>:<kind>:<args>'");
  FaultEvent ev;
  ev.at = secondsExact(parseNum(fields[0], text));
  const std::string& kind = fields[1];
  const auto want = [&](std::size_t n) {
    if (fields.size() != n) bad(text, "wrong number of ':' fields for this kind");
  };
  if (kind == "fail" || kind == "recover") {
    want(3);
    ev.kind = kind == "fail" ? FaultKind::LinkFail : FaultKind::LinkRecover;
    parseEndpoints(fields[2], ev, /*starOk=*/false, text);
  } else if (kind == "crash" || kind == "restart") {
    want(3);
    ev.kind = kind == "crash" ? FaultKind::NodeCrash : FaultKind::NodeRestart;
    ev.a = parseNode(fields[2], text);
  } else if (kind == "loss" || kind == "corrupt") {
    want(4);
    ev.kind = kind == "loss" ? FaultKind::LinkLoss : FaultKind::LinkCorrupt;
    parseEndpoints(fields[2], ev, /*starOk=*/true, text);
    ev.rate = parseNum(fields[3], text);
    if (ev.rate < 0.0 || ev.rate > 1.0) bad(text, "rate must be in [0, 1]");
  } else if (kind == "reorder") {
    want(5);
    ev.kind = FaultKind::LinkReorder;
    parseEndpoints(fields[2], ev, /*starOk=*/true, text);
    ev.rate = parseNum(fields[3], text);
    if (ev.rate < 0.0 || ev.rate > 1.0) bad(text, "rate must be in [0, 1]");
    ev.jitter = secondsExact(parseNum(fields[4], text) / 1000.0);
    if (ev.jitter < Time::zero()) bad(text, "jitter must be >= 0 ms");
  } else if (kind == "detect") {
    want(4);
    ev.kind = FaultKind::DetectDelay;
    parseEndpoints(fields[2], ev, /*starOk=*/false, text);
    ev.detect = secondsExact(parseNum(fields[3], text) / 1000.0);
    if (ev.detect < Time::zero()) bad(text, "detect delay must be >= 0 ms");
  } else if (kind == "ctrl-loss" || kind == "ctrl-dup") {
    want(4);
    ev.kind = kind == "ctrl-loss" ? FaultKind::CtrlLoss : FaultKind::CtrlDup;
    parseEndpoints(fields[2], ev, /*starOk=*/true, text);
    ev.rate = parseNum(fields[3], text);
    if (ev.rate < 0.0 || ev.rate > 1.0) bad(text, "rate must be in [0, 1]");
  } else if (kind == "ctrl-delay") {
    want(4);
    ev.kind = FaultKind::CtrlDelay;
    parseEndpoints(fields[2], ev, /*starOk=*/true, text);
    ev.jitter = secondsExact(parseNum(fields[3], text) / 1000.0);
    if (ev.jitter < Time::zero()) bad(text, "delay must be >= 0 ms");
  } else if (kind == "flapburst") {
    want(5);
    ev.kind = FaultKind::FlapBurst;
    parseEndpoints(fields[2], ev, /*starOk=*/false, text);
    const double n = parseNum(fields[3], text);
    if (n < 1.0 || n > 1000.0 || n != static_cast<double>(static_cast<int>(n))) {
      bad(text, "count must be an integer in [1, 1000]");
    }
    ev.count = static_cast<int>(n);
    ev.period = secondsExact(parseNum(fields[4], text));
    if (ev.period <= Time::zero()) bad(text, "period must be > 0 s");
  } else if (kind == "partition" || kind == "heal") {
    want(3);
    ev.kind = kind == "partition" ? FaultKind::Partition : FaultKind::Heal;
    for (const auto& n : split(fields[2], ',')) ev.group.push_back(parseNode(n, text));
    if (ev.group.empty()) bad(text, "expected a comma-separated node group");
  } else {
    bad(text, "unknown kind");
  }
  if (ev.at < Time::zero()) bad(text, "time must be >= 0 s");
  return ev;
}

}  // namespace

std::string FaultPlan::format() const {
  std::string out;
  for (const auto& ev : events) {
    if (!out.empty()) out += ';';
    out += secs(ev.at);
    out += ':';
    out += toString(ev.kind);
    out += ':';
    switch (ev.kind) {
      case FaultKind::LinkFail:
      case FaultKind::LinkRecover:
        out += std::to_string(ev.a) + "-" + std::to_string(ev.b);
        break;
      case FaultKind::NodeCrash:
      case FaultKind::NodeRestart:
        out += std::to_string(ev.a);
        break;
      case FaultKind::LinkLoss:
      case FaultKind::LinkCorrupt:
        out += ev.allLinks ? "*" : std::to_string(ev.a) + "-" + std::to_string(ev.b);
        out += ':' + num(ev.rate);
        break;
      case FaultKind::LinkReorder:
        out += ev.allLinks ? "*" : std::to_string(ev.a) + "-" + std::to_string(ev.b);
        out += ':' + num(ev.rate);
        out += ':' + millis(ev.jitter);
        break;
      case FaultKind::DetectDelay:
        out += std::to_string(ev.a) + "-" + std::to_string(ev.b);
        out += ':' + millis(ev.detect);
        break;
      case FaultKind::CtrlLoss:
      case FaultKind::CtrlDup:
        out += ev.allLinks ? "*" : std::to_string(ev.a) + "-" + std::to_string(ev.b);
        out += ':' + num(ev.rate);
        break;
      case FaultKind::CtrlDelay:
        out += ev.allLinks ? "*" : std::to_string(ev.a) + "-" + std::to_string(ev.b);
        out += ':' + millis(ev.jitter);
        break;
      case FaultKind::FlapBurst:
        out += std::to_string(ev.a) + "-" + std::to_string(ev.b);
        out += ':' + std::to_string(ev.count);
        out += ':' + secs(ev.period);
        break;
      case FaultKind::Partition:
      case FaultKind::Heal:
        for (std::size_t i = 0; i < ev.group.size(); ++i) {
          if (i > 0) out += ',';
          out += std::to_string(ev.group[i]);
        }
        break;
    }
  }
  return out;
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  if (text.empty()) return plan;
  for (const auto& part : split(text, ';')) {
    if (part.empty()) continue;  // tolerate trailing ';'
    plan.events.push_back(parseEvent(part));
  }
  return plan;
}

}  // namespace rcsim::fault
