#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace rcsim {

/// Opaque handle returned by Scheduler::schedule*, usable for cancellation.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
};

/// Single-threaded discrete-event scheduler.
///
/// Events scheduled for the same timestamp fire in FIFO order (stable by
/// insertion sequence), which keeps protocol runs deterministic.
/// Cancellation is lazy: cancelled ids are tombstoned and skipped on pop.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute time `at` (must not be before now()).
  EventId scheduleAt(Time at, Callback cb);

  /// Schedule `cb` after `delay` from now (negative delays clamp to now).
  EventId scheduleAfter(Time delay, Callback cb);

  /// Cancel a pending event. Cancelling an already-fired or invalid id is a
  /// no-op, so callers can keep stale handles safely.
  void cancel(EventId id);

  /// Run until the queue drains, stop() is called, or the horizon is reached.
  /// Events exactly at the horizon still fire.
  void run(Time horizon = Time::infinity());

  /// Request run() to return after the current event completes.
  void stop() { stopped_ = true; }

  /// Number of events currently pending (including tombstoned ones).
  [[nodiscard]] std::size_t pendingEvents() const { return queue_.size(); }

  /// Total events executed so far (for perf accounting).
  [[nodiscard]] std::uint64_t executedEvents() const { return executed_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq = 0;
    std::uint64_t id = 0;
    Callback cb;

    // Min-heap: earlier time first; FIFO among equal times.
    bool operator>(const Entry& rhs) const {
      if (at != rhs.at) return at > rhs.at;
      return seq > rhs.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  Time now_ = Time::zero();
  std::uint64_t nextSeq_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace rcsim
