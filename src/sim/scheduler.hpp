#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace rcsim {

/// Coarse classification of scheduled events, for per-kind scheduler
/// profiling (the PDES groundwork: lookahead and partitioning decisions
/// need to know what the event mix *is*). Call sites tag their schedule*
/// calls; untagged calls default to Generic. Purely observational — the
/// kind never affects ordering or execution.
enum class EventKind : std::uint8_t {
  Generic = 0,   ///< untagged
  LinkDelivery,  ///< packet serialization / propagation on a link
  Protocol,      ///< routing-protocol timers and deferred work
  Transport,     ///< reliable-session / TCP retransmission timers
  Traffic,       ///< workload sources (CBR ticks, flow start)
  Fault,         ///< fault injection, path-targeted failures, repair
  Detector,      ///< failure detection (hello timers, oracle detect delay)
};
inline constexpr int kEventKindCount = 7;

[[nodiscard]] constexpr const char* toString(EventKind kind) {
  switch (kind) {
    case EventKind::Generic: return "generic";
    case EventKind::LinkDelivery: return "link";
    case EventKind::Protocol: return "protocol";
    case EventKind::Transport: return "transport";
    case EventKind::Traffic: return "traffic";
    case EventKind::Fault: return "fault";
    case EventKind::Detector: return "detector";
  }
  return "?";
}

/// Type-erased callable with inline storage, sized for the simulator's event
/// lambdas. Callables up to kInlineBytes are constructed directly inside the
/// scheduler's pooled event slot — no per-event heap allocation on the hot
/// path; larger ones fall back to a single heap cell.
///
/// Slots never relocate (the pool is chunked, see Scheduler), so the
/// callable is pinned: constructed once via emplace(), invoked in place,
/// destroyed via reset(). No move machinery is needed or provided.
class EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  EventCallback() = default;
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  /// Construct a callable in place. Must be empty (fresh or reset).
  template <typename F>
    requires(std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  void emplace(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); };
      destroy_ = [](void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); };
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      invoke_ = [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); };
      destroy_ = [](void* s) noexcept { delete *std::launder(reinterpret_cast<Fn**>(s)); };
    }
  }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(storage_); }

  void reset() {
    if (destroy_ != nullptr) {
      destroy_(storage_);
      invoke_ = nullptr;
      destroy_ = nullptr;
    }
  }

 private:
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) noexcept = nullptr;
};

/// Opaque handle returned by Scheduler::schedule*, usable for cancellation.
/// Encodes (sequence number, pool slot); zero is the invalid handle.
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const { return value != 0; }
};

/// Single-threaded discrete-event scheduler.
///
/// Events scheduled for the same timestamp fire in FIFO order (stable by
/// insertion sequence), which keeps protocol runs deterministic.
///
/// Storage is a chunked slab of pooled slots (callback + liveness key)
/// indexed by a min-heap of plain 16-byte (time, key) records, where key
/// packs the globally increasing sequence number with the slot index.
/// Chunks give slots stable addresses, so callbacks are constructed,
/// invoked, and destroyed in place — never moved. Cancellation clears the
/// slot's key and recycles it immediately — O(1), no tombstone set, no
/// growth on stale cancels; the orphaned heap record is skipped when popped
/// because its key no longer matches the slot's.
class Scheduler {
 public:
  using Callback = EventCallback;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulation time.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `f` at absolute time `at` (times before now() clamp to now).
  template <typename F>
    requires(std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventId scheduleAt(Time at, F&& f) {
    return scheduleAt(at, EventKind::Generic, std::forward<F>(f));
  }

  /// Tagged variant: identical semantics, plus per-kind accounting (count
  /// and a power-of-two histogram of the scheduling delay in sim time).
  template <typename F>
    requires(std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventId scheduleAt(Time at, EventKind kind, F&& f) {
    if (at < now_) at = now_;
    const std::uint32_t slot = acquireSlot();
    Slot& s = slotRef(slot);
    s.cb.emplace(std::forward<F>(f));
    s.kind = static_cast<std::uint8_t>(kind);
    KindStats& ks = kindStats_[static_cast<std::size_t>(kind)];
    ++ks.scheduled;
    ++ks.delayHisto[delayBucket(at - now_)];
    // The key is unique for the scheduler's lifetime (sequence in the high
    // bits), so a recycled slot can never satisfy a stale handle or an
    // orphaned heap record.
    const std::uint64_t key = (nextSeq_++ << kSlotBits) | slot;
    s.key = key;
    queue_.push(HeapItem{static_cast<std::uint64_t>(at.ns()), key});
    ++live_;
    return EventId{key};
  }

  /// Schedule `f` after `delay` from now (negative delays clamp to now).
  template <typename F>
    requires(std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventId scheduleAfter(Time delay, F&& f) {
    return scheduleAfter(delay, EventKind::Generic, std::forward<F>(f));
  }

  template <typename F>
    requires(std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  EventId scheduleAfter(Time delay, EventKind kind, F&& f) {
    if (delay < Time::zero()) delay = Time::zero();
    return scheduleAt(now_ + delay, kind, std::forward<F>(f));
  }

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled
  /// or invalid id is an O(1) no-op with no bookkeeping growth, so callers
  /// can keep stale handles safely.
  void cancel(EventId id);

  /// Run until the queue drains, stop() is called, or the horizon is reached.
  /// Events exactly at the horizon still fire.
  void run(Time horizon = Time::infinity());

  /// Request run() to return after the current event completes.
  void stop() { stopped_ = true; }

  /// Number of live (scheduled, not yet fired or cancelled) events.
  [[nodiscard]] std::size_t pendingEvents() const { return live_; }

  /// Slots allocated in the event pool — bounded by the peak number of
  /// simultaneously pending events (rounded up to a chunk), never by total
  /// churn.
  [[nodiscard]] std::size_t poolCapacity() const { return chunks_.size() * kChunkSlots; }

  /// Total events executed so far (for perf accounting).
  [[nodiscard]] std::uint64_t executedEvents() const { return executed_; }

  /// Total events ever scheduled (sequence numbers start at 1).
  [[nodiscard]] std::uint64_t scheduledEvents() const { return nextSeq_ - 1; }

  /// Total events cancelled while still pending.
  [[nodiscard]] std::uint64_t cancelledEvents() const { return cancelled_; }

  /// Scheduling-delay buckets: bucket 0 is a zero delay, bucket i >= 1
  /// covers [2^(i-1), 2^i) nanoseconds of sim time between schedule and
  /// fire time. Deterministic — sim time only, no wall clock.
  static constexpr int kDelayBuckets = 64;

  /// Per-kind accounting. `scheduled` and the delay histogram are recorded
  /// at schedule time, `executed` when the event fires (cancelled events
  /// are scheduled-but-never-executed).
  struct KindStats {
    std::uint64_t scheduled = 0;
    std::uint64_t executed = 0;
    std::array<std::uint64_t, kDelayBuckets> delayHisto{};
  };
  [[nodiscard]] const KindStats& kindStats(EventKind kind) const {
    return kindStats_[static_cast<std::size_t>(kind)];
  }

  [[nodiscard]] static int delayBucket(Time delay) {
    const auto ns = static_cast<std::uint64_t>(delay.ns());
    if (ns == 0) return 0;
    const int b = std::bit_width(ns);
    return b < kDelayBuckets ? b : kDelayBuckets - 1;
  }

 private:
  /// Slot index occupies the low bits of a key; the rest is the sequence
  /// number. 16M concurrent events, ~1.1e12 total events per scheduler.
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;

  /// Slots are allocated in fixed-size chunks so they keep stable addresses
  /// as the pool grows — growth never move-constructs live callbacks.
  static constexpr std::uint32_t kChunkShift = 10;
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;

  struct Slot {
    EventCallback cb;
    std::uint64_t key = 0;  ///< Key of the live occupant; 0 when free.
    std::uint8_t kind = 0;  ///< EventKind of the occupant (profiling only).
  };

  struct HeapItem {
    std::uint64_t atNs = 0;  ///< Event time; never negative, stored unsigned.
    std::uint64_t key = 0;

    // Min-heap: earlier time first; FIFO among equal times (keys carry the
    // sequence number in their high bits and are strictly increasing).
    bool operator<(const HeapItem& rhs) const {
#if defined(__SIZEOF_INT128__)
      // One branchless 128-bit compare instead of compare-then-compare.
      return ((static_cast<unsigned __int128>(atNs) << 64) | key) <
             ((static_cast<unsigned __int128>(rhs.atNs) << 64) | rhs.key);
#else
      if (atNs != rhs.atNs) return atNs < rhs.atNs;
      return key < rhs.key;
#endif
    }
  };

  /// 4-ary min-heap of plain 16-byte records. Shallower than a binary heap
  /// and cache-friendlier (four children share a line), which is where the
  /// scheduler hot loop spends its time.
  class EventHeap {
   public:
    [[nodiscard]] bool empty() const { return v_.empty(); }
    [[nodiscard]] std::size_t size() const { return v_.size(); }
    [[nodiscard]] const HeapItem& top() const { return v_.front(); }

    void push(const HeapItem& item) {
      // Sift up by moving parents into the hole; the item lands once.
      std::size_t i = v_.size();
      v_.push_back(item);
      while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!(item < v_[parent])) break;
        v_[i] = v_[parent];
        i = parent;
      }
      v_[i] = item;
    }

    void pop() {
      const HeapItem displaced = v_.back();
      v_.pop_back();
      if (v_.empty()) return;
      const std::size_t n = v_.size();
      std::size_t i = 0;
      while (true) {
        const std::size_t first = 4 * i + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t last = first + 4 < n ? first + 4 : n;
        for (std::size_t c = first + 1; c < last; ++c) {
          if (v_[c] < v_[best]) best = c;
        }
        if (!(v_[best] < displaced)) break;
        v_[i] = v_[best];
        i = best;
      }
      v_[i] = displaced;
    }

   private:
    std::vector<HeapItem> v_;
  };

  Slot& slotRef(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSlots - 1)];
  }

  std::uint32_t acquireSlot();

  EventHeap queue_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> freeSlots_;
  std::uint32_t usedSlots_ = 0;  ///< High-water mark of freshly carved slots.
  std::size_t live_ = 0;
  Time now_ = Time::zero();
  std::uint64_t nextSeq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  bool stopped_ = false;
  std::array<KindStats, kEventKindCount> kindStats_{};
};

}  // namespace rcsim
