#include "sim/random.hpp"

#include <cassert>
#include <cmath>

namespace rcsim {
namespace {

std::uint64_t splitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed through SplitMix64 as recommended by the xoshiro authors;
  // this guarantees a non-zero state for every seed, including zero.
  for (auto& s : state_) s = splitMix64(seed);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range + 1) % range;
  std::uint64_t v = next();
  while (v > limit) v = next();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = uniform01();
  // uniform01 can return exactly 0; nudge to keep log() finite.
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::fork() { return Rng{next()}; }

}  // namespace rcsim
