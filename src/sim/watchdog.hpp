#pragma once

#include <stdexcept>
#include <string>

namespace rcsim::watchdog {

/// Thrown out of Scheduler::run when the armed wall-clock budget is spent.
/// Sweep executors catch it like any other replica failure and report the
/// cell instead of hanging the whole sweep on one pathological replica.
struct Timeout : std::runtime_error {
  explicit Timeout(const std::string& what) : std::runtime_error(what) {}
};

/// Arm a wall-clock deadline for the calling thread. `wallSeconds <= 0`
/// disarms. The deadline is thread-local, so replicas on a pool never see
/// each other's budgets.
void arm(double wallSeconds);
void disarm();

/// Throw Timeout if a deadline is armed and has passed. Cheap when
/// disarmed (one thread-local load); the scheduler polls it every few
/// thousand events.
void poll();

/// RAII arm/disarm for one scoped run.
class Scope {
 public:
  explicit Scope(double wallSeconds) { arm(wallSeconds); }
  ~Scope() { disarm(); }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;
};

}  // namespace rcsim::watchdog
