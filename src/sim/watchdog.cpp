#include "sim/watchdog.hpp"

#include <chrono>
#include <cstdio>

namespace rcsim::watchdog {
namespace {

using Clock = std::chrono::steady_clock;

thread_local bool armed = false;
thread_local Clock::time_point deadline;
thread_local double budgetSec = 0.0;

}  // namespace

void arm(double wallSeconds) {
  if (wallSeconds <= 0.0) {
    armed = false;
    return;
  }
  budgetSec = wallSeconds;
  deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(wallSeconds));
  armed = true;
}

void disarm() { armed = false; }

void poll() {
  if (!armed) return;
  if (Clock::now() < deadline) return;
  armed = false;  // one throw per arm; unwinding code may run more events
  char buf[96];
  std::snprintf(buf, sizeof buf, "watchdog: replica exceeded wall-clock budget of %.1fs",
                budgetSec);
  throw Timeout{buf};
}

}  // namespace rcsim::watchdog
