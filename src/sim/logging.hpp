#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "sim/time.hpp"

namespace rcsim {

/// Trace categories roughly matching the paper's "routing and forwarding
/// trace files" (Section 5): packet-level forwarding events and routing
/// protocol events can be captured independently.
enum class TraceCategory { Forwarding, Routing, Transport, Failure };

/// Lightweight trace sink. Disabled by default; experiments that need
/// forensic traces (e.g. the loop analysis example) install a sink.
class TraceLog {
 public:
  using Sink = std::function<void(Time, TraceCategory, const std::string&)>;

  void setSink(Sink sink) { sink_ = std::move(sink); }
  [[nodiscard]] bool enabled() const { return static_cast<bool>(sink_); }

  void emit(Time t, TraceCategory cat, const std::string& msg) const {
    if (sink_) sink_(t, cat, msg);
  }

 private:
  Sink sink_;
};

[[nodiscard]] inline const char* toString(TraceCategory cat) {
  switch (cat) {
    case TraceCategory::Forwarding: return "fwd";
    case TraceCategory::Routing: return "rt";
    case TraceCategory::Transport: return "tx";
    case TraceCategory::Failure: return "fail";
  }
  return "?";
}

}  // namespace rcsim
