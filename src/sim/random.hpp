#pragma once

#include <array>
#include <cstdint>

namespace rcsim {

/// Deterministic xoshiro256++ pseudo-random generator.
///
/// We implement the generator ourselves (instead of using std::mt19937) so
/// that simulation runs are reproducible across standard-library
/// implementations, and so that independent sub-streams can be forked for
/// each node/timer without correlation (via SplitMix64 seeding + jumps).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Returns an independent generator derived from this one's stream.
  /// Forked streams are themselves deterministic given the parent seed and
  /// the sequence of fork() calls.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rcsim
