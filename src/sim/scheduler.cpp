#include "sim/scheduler.hpp"

#include <cassert>

#include "sim/watchdog.hpp"

namespace rcsim {

std::uint32_t Scheduler::acquireSlot() {
  if (!freeSlots_.empty()) {
    const std::uint32_t s = freeSlots_.back();
    freeSlots_.pop_back();
    return s;
  }
  if (usedSlots_ == chunks_.size() * kChunkSlots) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
  }
  assert(usedSlots_ <= kSlotMask && "event pool exceeded 2^24 concurrent events");
  return usedSlots_++;
}

void Scheduler::cancel(EventId id) {
  if (!id.valid()) return;
  const auto slot = static_cast<std::uint32_t>(id.value & kSlotMask);
  if (slot >= usedSlots_) return;
  Slot& s = slotRef(slot);
  if (s.key != id.value) return;  // fired or stale
  s.cb.reset();
  s.key = 0;
  freeSlots_.push_back(slot);
  --live_;
  ++cancelled_;
}

void Scheduler::run(Time horizon) {
  stopped_ = false;
  const std::int64_t horizonNs = horizon.ns();
  while (!queue_.empty() && !stopped_) {
    const HeapItem top = queue_.top();
    if (static_cast<std::int64_t>(top.atNs) > horizonNs) break;
    // Pop order wanders across the slab, so the slot line is usually cold;
    // start fetching it while the sift-down below does its compares.
    Slot& s = slotRef(static_cast<std::uint32_t>(top.key & kSlotMask));
#if defined(__GNUC__)
    __builtin_prefetch(&s);
#endif
    queue_.pop();
    if (s.key != top.key) continue;  // cancelled: orphaned heap record
    // Clear the key before invoking so a self-cancel during the callback is
    // a stale no-op, but keep the slot off the free list until the callback
    // finishes: chunk addresses are stable, so it runs in place — no move.
    s.key = 0;
    --live_;
    now_ = Time::nanoseconds(static_cast<std::int64_t>(top.atNs));
    ++executed_;
    ++kindStats_[s.kind].executed;
    // Wall-clock watchdog: a cheap thread-local check every 4096 events, so
    // a replica stuck in an event storm still surfaces as a Timeout.
    if ((executed_ & 0xFFF) == 0) watchdog::poll();
    s.cb();
    s.cb.reset();
    freeSlots_.push_back(static_cast<std::uint32_t>(top.key & kSlotMask));
  }
  // Advance the clock to the horizon unless stopped early: remaining events
  // (if any) are strictly later, so subsequent relative scheduling should be
  // anchored at the horizon.
  if (!stopped_ && horizon != Time::infinity() && now_ < horizon) now_ = horizon;
}

}  // namespace rcsim
