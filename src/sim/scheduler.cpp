#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace rcsim {

EventId Scheduler::scheduleAt(Time at, Callback cb) {
  assert(cb);
  if (at < now_) at = now_;
  Entry e;
  e.at = at;
  e.seq = nextSeq_++;
  e.id = e.seq;
  e.cb = std::move(cb);
  const EventId id{e.id};
  queue_.push(std::move(e));
  return id;
}

EventId Scheduler::scheduleAfter(Time delay, Callback cb) {
  if (delay < Time::zero()) delay = Time::zero();
  return scheduleAt(now_ + delay, std::move(cb));
}

void Scheduler::cancel(EventId id) {
  if (id.valid()) cancelled_.insert(id.value);
}

void Scheduler::run(Time horizon) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    const Entry& top = queue_.top();
    if (top.at > horizon) break;
    if (cancelled_.erase(top.id) > 0) {
      queue_.pop();
      continue;
    }
    // Move the callback out before popping so it survives the pop, then run
    // it with now_ already advanced (callbacks observe their own timestamp).
    Entry e = std::move(const_cast<Entry&>(top));
    queue_.pop();
    now_ = e.at;
    ++executed_;
    e.cb();
  }
  // Advance the clock to the horizon unless stopped early: remaining events
  // (if any) are strictly later, so subsequent relative scheduling should be
  // anchored at the horizon.
  if (!stopped_ && horizon != Time::infinity() && now_ < horizon) now_ = horizon;
}

}  // namespace rcsim
