#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace rcsim {

/// Simulation time, stored as integer nanoseconds so that event ordering is
/// exact and runs are bit-for-bit reproducible across platforms.
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time nanoseconds(std::int64_t ns) { return Time{ns}; }
  [[nodiscard]] static constexpr Time microseconds(std::int64_t us) { return Time{us * 1'000}; }
  [[nodiscard]] static constexpr Time milliseconds(std::int64_t ms) { return Time{ms * 1'000'000}; }
  [[nodiscard]] static constexpr Time seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e9)};
  }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  /// A time later than any event a simulation will ever schedule.
  [[nodiscard]] static constexpr Time infinity() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double toSeconds() const { return static_cast<double>(ns_) * 1e-9; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }

  friend std::ostream& operator<<(std::ostream& os, Time t) { return os << t.toSeconds() << "s"; }

 private:
  explicit constexpr Time(std::int64_t ns) : ns_{ns} {}

  std::int64_t ns_ = 0;
};

namespace literals {
constexpr Time operator""_sec(long double s) { return Time::seconds(static_cast<double>(s)); }
constexpr Time operator""_sec(unsigned long long s) {
  return Time::nanoseconds(static_cast<std::int64_t>(s) * 1'000'000'000);
}
constexpr Time operator""_ms(unsigned long long ms) {
  return Time::milliseconds(static_cast<std::int64_t>(ms));
}
constexpr Time operator""_us(unsigned long long us) {
  return Time::microseconds(static_cast<std::int64_t>(us));
}
}  // namespace literals

}  // namespace rcsim
