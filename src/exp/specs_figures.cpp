// The paper's figures (3..7) and the §1/§5.2 headline comparison as
// registered experiment specs. Console output is byte-compatible with the
// historical one-binary-per-figure benches; see those benches' commentary
// in EXPERIMENTS.md for the expected shapes.

#include <cstdio>
#include <string>

#include "exp/registry.hpp"
#include "exp/specs.hpp"
#include "exp/specs_common.hpp"

namespace rcsim::exp {
namespace {

/// Figures 3/4/6 share one grid: the four paper protocols swept over the
/// full degree axis, protocol-major.
ExperimentSpec paperGridSpec(std::string name, std::string title, std::string description) {
  ExperimentSpec spec;
  spec.name = std::move(name);
  spec.title = std::move(title);
  spec.description = std::move(description);
  for (const auto kind : kPaperProtocols) {
    addDegreeRow(spec.cells, toString(kind), paperDegrees(),
                 [kind](ScenarioConfig& cfg) { cfg.protocol = kind; });
  }
  return spec;
}

void registerFig3() {
  ExperimentSpec spec = paperGridSpec("fig3_drops", "Figure 3: packet drops due to no route",
                                      "mean no-route drops vs node degree (the headline figure)");
  spec.render = [](const ExperimentSpec&, const ExperimentResult& res) {
    const auto degrees = paperDegrees();
    const auto labels = names(kPaperProtocols);
    report::header("Figure 3", "mean data packets dropped for lack of a route during convergence");
    report::degreeSweep("packets", degrees, labels,
                        matrix(res, 0, labels.size(), degrees.size(),
                               [](const CellResult& c) { return c.agg.dropsNoRoute; }));
  };
  registerExperiment(std::move(spec));
}

void registerFig4() {
  ExperimentSpec spec =
      paperGridSpec("fig4_ttl", "Figure 4: TTL expirations (loop-caused drops)",
                    "mean TTL-expiry drops and loop fraction vs node degree");
  spec.render = [](const ExperimentSpec&, const ExperimentResult& res) {
    const auto degrees = paperDegrees();
    const auto labels = names(kPaperProtocols);
    report::header("Figure 4", "mean data packets dropped on TTL expiry during convergence");
    report::degreeSweep("packets", degrees, labels,
                        matrix(res, 0, labels.size(), degrees.size(),
                               [](const CellResult& c) { return c.agg.dropsTtl; }));
    report::header("Figure 4 (companion)",
                   "fraction of runs whose forwarding path transited a loop");
    report::degreeSweep("fraction", degrees, labels,
                        matrix(res, 0, labels.size(), degrees.size(),
                               [](const CellResult& c) { return c.agg.loopFraction; }));
  };
  registerExperiment(std::move(spec));
}

void registerFig6() {
  ExperimentSpec spec =
      paperGridSpec("fig6_convergence", "Figure 6: convergence times",
                    "forwarding-path and routing convergence times vs node degree");
  spec.render = [](const ExperimentSpec&, const ExperimentResult& res) {
    const auto degrees = paperDegrees();
    const auto labels = names(kPaperProtocols);
    const auto rows = labels.size();
    const auto cols = degrees.size();
    report::header("Figure 6(a)", "mean forwarding-path convergence time after failure");
    report::degreeSweep("seconds", degrees, labels,
                        matrix(res, 0, rows, cols, [](const CellResult& c) {
                          return c.agg.forwardingConvergenceSec;
                        }));
    report::header("Figure 6(b)", "mean network routing convergence time after failure");
    report::degreeSweep("seconds", degrees, labels,
                        matrix(res, 0, rows, cols, [](const CellResult& c) {
                          return c.agg.routingConvergenceSec;
                        }));
    report::header("Figure 6 (companion)", "mean number of transient forwarding paths");
    report::degreeSweep("paths", degrees, labels,
                        matrix(res, 0, rows, cols,
                               [](const CellResult& c) { return c.agg.transientPaths; }));
  };
  registerExperiment(std::move(spec));
}

/// Figures 5 and 7 share one layout: degree groups, four protocols per
/// group, a time series per group.
ExperimentSpec seriesSpec(std::string name, std::string title, std::string description,
                          const std::vector<int>& degrees, std::string headerPrefix,
                          std::string metric, bool delaySeries) {
  ExperimentSpec spec;
  spec.name = std::move(name);
  spec.title = std::move(title);
  spec.description = std::move(description);
  spec.jsonSeries = true;
  for (const int degree : degrees) {
    for (const auto kind : kPaperProtocols) {
      CellSpec cell;
      cell.id = std::string{toString(kind)} + "/degree=" + std::to_string(degree);
      cell.label = toString(kind);
      cell.config = baseConfig();
      cell.config.protocol = kind;
      cell.config.mesh.degree = degree;
      spec.cells.push_back(std::move(cell));
    }
  }
  spec.render = [degrees, headerPrefix = std::move(headerPrefix), metric = std::move(metric),
                 delaySeries](const ExperimentSpec&, const ExperimentResult& res) {
    const auto labels = names(kPaperProtocols);
    for (std::size_t g = 0; g < degrees.size(); ++g) {
      report::header(headerPrefix + std::to_string(degrees[g]),
                     delaySeries ? "mean end-to-end delay (s) of packets delivered in each second"
                                 : "mean delivered packets/second at the receiver");
      report::timeSeries(metric, labels, aggregates(res, g * labels.size(), labels.size()), -20,
                         60, delaySeries);
    }
  };
  return spec;
}

void registerHeadline() {
  ExperimentSpec spec;
  spec.name = "headline_table";
  spec.title = "Headline table: protocol comparison at fixed degree";
  spec.description = "the §1/§5.2 headline ratios (BGP vs BGP3 drops and TTL expirations)";
  spec.defaultRuns = 20;
  const std::vector<int> degrees{3, 6};
  for (const int degree : degrees) {
    for (const auto kind : kPaperProtocols) {
      CellSpec cell;
      cell.id = std::string{toString(kind)} + "/degree=" + std::to_string(degree);
      cell.label = toString(kind);
      cell.config = baseConfig();
      cell.config.protocol = kind;
      cell.config.mesh.degree = degree;
      spec.cells.push_back(std::move(cell));
    }
  }
  spec.render = [degrees](const ExperimentSpec&, const ExperimentResult& res) {
    for (std::size_t g = 0; g < degrees.size(); ++g) {
      report::header("Protocol comparison, degree " + std::to_string(degrees[g]),
                     "means over " + std::to_string(res.runs) + " runs");
      std::printf("%-6s %10s %10s %10s %10s %12s %12s %12s\n", "proto", "sent", "delivered",
                  "no-route", "ttl-exp", "fwd-conv(s)", "rt-conv(s)", "loop-frac");
      for (std::size_t p = 0; p < kPaperProtocols.size(); ++p) {
        const Aggregate& a = res.cells[g * kPaperProtocols.size() + p].agg;
        std::printf("%-6s %10.1f %10.1f %10.2f %10.2f %12.2f %12.2f %12.2f\n",
                    toString(kPaperProtocols[p]), a.sent, a.delivered, a.dropsNoRoute, a.dropsTtl,
                    a.forwardingConvergenceSec, a.routingConvergenceSec, a.loopFraction);
      }
    }
  };
  registerExperiment(std::move(spec));
}

}  // namespace

void registerFigureExperiments() {
  registerFig3();
  registerFig4();
  registerExperiment(seriesSpec("fig5_throughput", "Figure 5: instantaneous throughput",
                                "delivered packets/second around the failure (degrees 3/4/6)",
                                {3, 4, 6}, "Figure 5, degree ", "packets/s",
                                /*delaySeries=*/false));
  registerFig6();
  registerExperiment(seriesSpec("fig7_delay", "Figure 7: instantaneous packet delay",
                                "mean end-to-end delay around the failure (degrees 4/5/6)",
                                {4, 5, 6}, "Figure 7, degree ", "delay-s",
                                /*delaySeries=*/true));
  registerHeadline();
}

}  // namespace rcsim::exp
