#include "exp/executor.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <utility>

#include "core/fingerprint.hpp"
#include "core/options.hpp"
#include "exp/journal.hpp"
#include "obs/metrics.hpp"
#include "sim/watchdog.hpp"

namespace rcsim::exp {

namespace {

double nowSec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

double envReplicaWallLimit() {
  return parseWallLimitSeconds(std::getenv("RCSIM_REPLICA_WATCHDOG_SEC"));
}

std::string configDigestOf(const ScenarioConfig& cfg) {
  std::string joined;
  for (const auto& opt : describeOptions(cfg)) {
    joined += opt;
    joined += '\n';
  }
  return fnv1aHexDigest(joined);
}

}  // namespace

/// In-flight experiment state. Replica claims and completion counts are
/// lock-free; the executor mutex only guards the job queue and the done
/// flag.
class SweepExecutor::Job {
 public:
  Job(const ExperimentSpec& spec, int runs, JobOptions opts)
      : spec_{&spec},
        runs_{runs},
        opts_{opts},
        total_{spec.cells.size() * static_cast<std::size_t>(runs)},
        startedAt_{nowSec()},
        cellsLeft_{spec.cells.size()} {
    raw_.resize(spec.cells.size());
    errors_.resize(spec.cells.size());
    trails_.resize(spec.cells.size());
    cellLeft_ = std::make_unique<std::atomic<int>[]>(spec.cells.size());
    for (std::size_t c = 0; c < spec.cells.size(); ++c) {
      raw_[c].resize(static_cast<std::size_t>(runs));
      errors_[c].resize(static_cast<std::size_t>(runs));
      trails_[c].resize(static_cast<std::size_t>(runs));
      cellLeft_[c].store(runs, std::memory_order_relaxed);
    }
    // The canonical-config digest keys journal records and the resume
    // lookup; only computed when this job is wired for durability.
    if (opts_.journal != nullptr || opts_.resume != nullptr) {
      cellDigest_.reserve(spec.cells.size());
      for (const auto& cs : spec.cells) cellDigest_.push_back(configDigestOf(cs.config));
    }
    if (opts_.resume != nullptr) {
      prefilled_.resize(spec.cells.size());
      for (std::size_t c = 0; c < spec.cells.size(); ++c) {
        prefilled_[c].assign(static_cast<std::size_t>(runs), 0);
        for (std::size_t r = 0; r < static_cast<std::size_t>(runs); ++r) {
          const RunResult* hit = opts_.resume->find(
              spec.name, spec.cells[c].id, cellDigest_[c], spec.cells[c].startSeed + r);
          if (hit != nullptr) {
            raw_[c][r] = *hit;
            prefilled_[c][r] = 1;
          }
        }
      }
    }
    result_.runs = runs;
    result_.cells.resize(spec.cells.size());
  }

 private:
  friend class SweepExecutor;

  const ExperimentSpec* spec_;
  int runs_;
  JobOptions opts_;
  std::size_t total_;                 ///< cells x runs flattened items
  double startedAt_;
  double wallLimitSec_ = 0.0;         ///< per-replica budget, fixed at submit
  std::atomic<std::size_t> next_{0};  ///< next unclaimed flattened item
  std::atomic<std::size_t> cellsLeft_;
  std::atomic<int> inFlight_{0};      ///< claimed replicas not yet completed
  std::atomic<bool> cancelled_{false};
  std::unique_ptr<std::atomic<int>[]> cellLeft_;
  std::vector<std::vector<RunResult>> raw_;  ///< [cell][replica]; freed per cell
  /// [cell][replica] exception text; non-empty slot = that replica was
  /// quarantined (every attempt threw). Like raw_, each slot is written
  /// only by the replica's claimant before the cellLeft_ fetch_sub, so
  /// the last-replica fold reads it safely.
  std::vector<std::vector<std::string>> errors_;
  /// [cell][replica] per-attempt error trail; non-empty with an empty
  /// errors_ slot = retried-then-successful replica.
  std::vector<std::vector<std::vector<std::string>>> trails_;
  std::vector<std::string> cellDigest_;            ///< per-cell canonical-config digest
  std::vector<std::vector<std::uint8_t>> prefilled_;  ///< journaled results folded at submit
  std::atomic<std::size_t> completed_{0};  ///< replicas processed (run or resumed)
  /// Live anatomy rollup for heartbeats, accumulated per successful
  /// replica. Relaxed atomics: heartbeat readers tolerate slight skew.
  std::atomic<std::uint64_t> episodes_{0};
  std::atomic<std::uint64_t> dropsLoop_{0};
  std::atomic<std::uint64_t> dropsBlackhole_{0};
  std::atomic<std::uint64_t> dropsTtl_{0};
  std::atomic<std::uint64_t> dropsQueue_{0};
  /// Sweep profile (replica wall time, journal fsync latency, scheduler
  /// totals via the thread-local scope); serialized into result_.metrics
  /// when the job finishes. All instruments are thread-safe.
  obs::MetricsRegistry metrics_;
  ExperimentResult result_;
  bool done_ = false;  ///< guarded by the executor mutex
};

SweepExecutor::SweepExecutor(int threads) : replicaWallLimitSec_{envReplicaWallLimit()} {
  if (threads <= 0) threads = defaultThreadCount();
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) workers_.emplace_back([this] { workerLoop(); });
}

SweepExecutor::~SweepExecutor() {
  {
    std::lock_guard lk{mu_};
    stop_ = true;
  }
  work_.notify_all();
  for (auto& w : workers_) w.join();
}

std::shared_ptr<SweepExecutor::Job> SweepExecutor::submit(const ExperimentSpec& spec, int runs,
                                                          JobOptions options) {
  auto job = std::make_shared<Job>(spec, runs, options);
  job->wallLimitSec_ = replicaWallLimitSec_;
  {
    std::lock_guard lk{mu_};
    if (job->total_ == 0 || cancelRequested()) {
      // Nothing to run (or the executor is already draining): finish the
      // job immediately so finish() never blocks on work that will not
      // be claimed.
      job->cancelled_.store(cancelRequested(), std::memory_order_release);
      job->result_.wallSeconds = 0.0;
      job->done_ = true;
    } else {
      queue_.push_back(job);
    }
  }
  work_.notify_all();
  return job;
}

ExperimentResult SweepExecutor::finish(const std::shared_ptr<Job>& job) {
  std::unique_lock lk{mu_};
  done_.wait(lk, [&] { return job->done_; });
  ExperimentResult out = std::move(job->result_);
  out.threads = threadCount();
  return out;
}

ExperimentResult SweepExecutor::execute(const ExperimentSpec& spec, int runs) {
  return finish(submit(spec, runs));
}

void SweepExecutor::requestCancel() {
  cancel_.store(true, std::memory_order_relaxed);
  // Wake idle workers so queued-but-unclaimed jobs get retired and
  // finalized; busy workers observe the flag when they loop back.
  work_.notify_all();
}

JobProgress SweepExecutor::progress(const std::shared_ptr<Job>& job) {
  JobProgress p;
  if (job == nullptr) return p;
  p.total = job->total_;
  p.completed = std::min(job->completed_.load(std::memory_order_relaxed), job->total_);
  p.episodes = job->episodes_.load(std::memory_order_relaxed);
  p.dropsLoop = job->dropsLoop_.load(std::memory_order_relaxed);
  p.dropsBlackhole = job->dropsBlackhole_.load(std::memory_order_relaxed);
  p.dropsTtl = job->dropsTtl_.load(std::memory_order_relaxed);
  p.dropsQueue = job->dropsQueue_.load(std::memory_order_relaxed);
  return p;
}

void SweepExecutor::markDoneLocked(Job& job) {
  if (job.done_) return;
  job.result_.wallSeconds = nowSec() - job.startedAt_;
  job.result_.metrics = job.metrics_.toJson();
  job.done_ = true;
  done_.notify_all();
}

void SweepExecutor::workerLoop() {
  std::unique_lock lk{mu_};
  for (;;) {
    work_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    auto job = queue_.front();
    if (cancelRequested()) {
      // Drain mode: claim nothing more. Retire the job; the last of its
      // in-flight replicas (or this pop, when none are in flight)
      // finalizes it with whatever cells completed.
      queue_.pop_front();
      job->cancelled_.store(true, std::memory_order_release);
      if (job->inFlight_.load(std::memory_order_acquire) == 0) markDoneLocked(*job);
      continue;
    }
    const std::size_t item = job->next_.fetch_add(1, std::memory_order_relaxed);
    if (item >= job->total_) {
      // Every replica claimed; retire the job from the queue (another
      // worker may have done so already) and let its claimants finish.
      if (!queue_.empty() && queue_.front() == job) queue_.pop_front();
      continue;
    }
    job->inFlight_.fetch_add(1, std::memory_order_relaxed);
    lk.unlock();
    runReplica(*job, item);
    lk.lock();
    if (job->inFlight_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
        job->cancelled_.load(std::memory_order_acquire)) {
      markDoneLocked(*job);
    }
  }
}

bool SweepExecutor::backoffBeforeRetry(const RetryPolicy& policy, int attempt) {
  double delay = policy.backoffBaseSec * std::ldexp(1.0, attempt - 1);
  delay = std::clamp(delay, 0.0, std::max(0.0, policy.backoffMaxSec));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(delay);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cancelRequested()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return !cancelRequested();
}

void SweepExecutor::journalReplica(Job& job, std::size_t cell, std::size_t rep, bool ok) {
  if (job.opts_.journal == nullptr) return;
  const CellSpec& cs = job.spec_->cells[cell];
  JournalRecord rec;
  rec.experiment = job.spec_->name;
  rec.cell = cs.id;
  rec.configDigest = job.cellDigest_[cell];
  rec.seed = cs.startSeed + rep;
  rec.ok = ok;
  const auto& trail = job.trails_[cell][rep];
  rec.attempt = static_cast<int>(trail.size()) + (ok ? 1 : 0);
  if (ok) {
    rec.result = job.raw_[cell][rep];
  } else {
    rec.errors = trail;
  }
  try {
    const double t0 = nowSec();
    job.opts_.journal->append(rec);
    job.metrics_.histogram("journal.fsync_sec").observe(nowSec() - t0);
  } catch (const std::exception& e) {
    // A journal write failure must not take down the sweep — the replica
    // itself completed. Durability is degraded, so say so loudly once per
    // failure site rather than silently.
    std::fprintf(stderr, "sweep journal: append failed (%s) — this replica will re-run on resume\n",
                 e.what());
  }
}

void SweepExecutor::runReplica(Job& job, std::size_t item) {
  // Cell-major flattening: early cells finish (and free their raw
  // replicas) first, keeping peak memory near one cell's worth per thread.
  const std::size_t cell = item / static_cast<std::size_t>(job.runs_);
  const std::size_t rep = item % static_cast<std::size_t>(job.runs_);
  const CellSpec& cs = job.spec_->cells[cell];

  const bool prefilled = !job.prefilled_.empty() && job.prefilled_[cell][rep] != 0;
  if (prefilled) {
    job.metrics_.counter("replica.resumed").add();
  } else {
    ScenarioConfig cfg = cs.config;
    cfg.seed = cs.startSeed + rep;
    const int maxAttempts = std::max(1, job.opts_.retry.maxAttempts);
    std::vector<std::string> trail;
    bool ok = false;
    // Publish scheduler totals from runScenario into this job's registry
    // via the thread-local scope, and time the replica end to end.
    const obs::MetricsScope metricsScope{job.metrics_};
    const double replicaStart = nowSec();
    for (int attempt = 1; attempt <= maxAttempts; ++attempt) {
      try {
        // A replica whose every attempt throws (scenario bug, invariant
        // violation, watchdog timeout) takes out only its own cell's
        // aggregate: the error trail is recorded and every other cell
        // completes exactly as if the failed replica had never been
        // enqueued. A replica that succeeds on a retry folds exactly like
        // a first-try success.
        watchdog::Scope wd{job.wallLimitSec_};
        job.raw_[cell][rep] = cs.run ? cs.run(cfg) : runScenario(cfg);
        ok = true;
        break;
      } catch (const std::exception& e) {
        trail.emplace_back(e.what()[0] != '\0' ? e.what() : "unknown std::exception");
      } catch (...) {
        trail.emplace_back("unknown non-standard exception");
      }
      if (attempt >= maxAttempts) break;
      if (!backoffBeforeRetry(job.opts_.retry, attempt)) {
        trail.emplace_back("retry abandoned: executor draining after cancel");
        break;
      }
    }
    job.metrics_.histogram("replica.wall_sec").observe(nowSec() - replicaStart);
    job.metrics_.counter(ok ? "replica.ok" : "replica.quarantined").add();
    if (!trail.empty()) job.metrics_.counter("replica.retry_attempts").add(trail.size());
    if (!ok) job.errors_[cell][rep] = trail.back();
    if (!trail.empty()) job.trails_[cell][rep] = std::move(trail);
    journalReplica(job, cell, rep, ok);
    if (ok) {
      const auto& an = job.raw_[cell][rep].anatomy;
      job.episodes_.fetch_add(an.episodes, std::memory_order_relaxed);
      job.dropsLoop_.fetch_add(an.dropsLoop, std::memory_order_relaxed);
      job.dropsBlackhole_.fetch_add(an.dropsBlackhole, std::memory_order_relaxed);
      job.dropsTtl_.fetch_add(an.dropsTtl, std::memory_order_relaxed);
      job.dropsQueue_.fetch_add(an.dropsQueue, std::memory_order_relaxed);
    }
  }
  job.completed_.fetch_add(1, std::memory_order_relaxed);

  if (job.cellLeft_[cell].fetch_sub(1, std::memory_order_acq_rel) != 1) return;

  // Last replica of this cell: fold in seed order (the vector is already
  // seed-ordered, so this matches serial runMany bit for bit) and drop
  // the raw replicas. If any replica was quarantined, the cell becomes a
  // failure report instead — a partial aggregate would silently skew the
  // means. Retried-then-successful replicas keep their error trail in
  // `retries` without failing the cell.
  CellResult& out = job.result_.cells[cell];
  bool anyFailed = false;
  for (std::size_t r = 0; r < job.errors_[cell].size(); ++r) {
    if (job.errors_[cell][r].empty()) {
      if (!job.trails_[cell][r].empty()) {
        out.retries.push_back(ReplicaRetry{cs.startSeed + r, std::move(job.trails_[cell][r])});
      }
      continue;
    }
    anyFailed = true;
    out.failures.push_back(ReplicaFailure{cs.startSeed + r, std::move(job.errors_[cell][r]),
                                          std::move(job.trails_[cell][r])});
  }
  if (!anyFailed) {
    out.agg = Aggregate::over(job.raw_[cell]);
    out.totals = CellStats::over(job.raw_[cell]);
    // Seed-order sum, so pooled execution folds bit-identically to a
    // serial loop over runScenario (anatomyDigest pins the equivalence).
    for (const RunResult& rr : job.raw_[cell]) out.convergence += rr.anatomy;
    out.snapshots.reserve(job.raw_[cell].size());
    for (std::size_t r = 0; r < job.raw_[cell].size(); ++r) {
      out.snapshots.push_back(SnapshotDigests{cs.startSeed + r,
                                              std::move(job.raw_[cell][r].fibDigestBefore),
                                              std::move(job.raw_[cell][r].fibDigestAfter)});
    }
  }
  job.metrics_.counter(anyFailed ? "cell.failed" : "cell.completed").add();
  std::vector<RunResult>{}.swap(job.raw_[cell]);
  std::vector<std::string>{}.swap(job.errors_[cell]);
  std::vector<std::vector<std::string>>{}.swap(job.trails_[cell]);

  if (job.cellsLeft_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;

  // Last cell of the experiment.
  {
    std::lock_guard lk{mu_};
    markDoneLocked(job);
  }
}

}  // namespace rcsim::exp
