#include "exp/executor.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>
#include <utility>

#include "sim/watchdog.hpp"

namespace rcsim::exp {

namespace {

double nowSec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

double envReplicaWallLimit() {
  const char* v = std::getenv("RCSIM_REPLICA_WATCHDOG_SEC");
  if (v == nullptr || *v == '\0') return 0.0;
  char* end = nullptr;
  const double sec = std::strtod(v, &end);
  if (end == nullptr || *end != '\0' || sec <= 0.0) return 0.0;
  return sec;
}

}  // namespace

/// In-flight experiment state. Replica claims and completion counts are
/// lock-free; the executor mutex only guards the job queue and the done
/// flag.
class SweepExecutor::Job {
 public:
  Job(const ExperimentSpec& spec, int runs)
      : spec_{&spec},
        runs_{runs},
        total_{spec.cells.size() * static_cast<std::size_t>(runs)},
        startedAt_{nowSec()},
        cellsLeft_{spec.cells.size()} {
    raw_.resize(spec.cells.size());
    errors_.resize(spec.cells.size());
    cellLeft_ = std::make_unique<std::atomic<int>[]>(spec.cells.size());
    for (std::size_t c = 0; c < spec.cells.size(); ++c) {
      raw_[c].resize(static_cast<std::size_t>(runs));
      errors_[c].resize(static_cast<std::size_t>(runs));
      cellLeft_[c].store(runs, std::memory_order_relaxed);
    }
    result_.runs = runs;
    result_.cells.resize(spec.cells.size());
  }

 private:
  friend class SweepExecutor;

  const ExperimentSpec* spec_;
  int runs_;
  std::size_t total_;                 ///< cells x runs flattened items
  double startedAt_;
  double wallLimitSec_ = 0.0;         ///< per-replica budget, fixed at submit
  std::atomic<std::size_t> next_{0};  ///< next unclaimed flattened item
  std::atomic<std::size_t> cellsLeft_;
  std::unique_ptr<std::atomic<int>[]> cellLeft_;
  std::vector<std::vector<RunResult>> raw_;  ///< [cell][replica]; freed per cell
  /// [cell][replica] exception text; non-empty slot = that replica threw.
  /// Like raw_, each slot is written only by the replica's claimant before
  /// the cellLeft_ fetch_sub, so the last-replica fold reads it safely.
  std::vector<std::vector<std::string>> errors_;
  ExperimentResult result_;
  bool done_ = false;  ///< guarded by the executor mutex
};

SweepExecutor::SweepExecutor(int threads) : replicaWallLimitSec_{envReplicaWallLimit()} {
  if (threads <= 0) threads = defaultThreadCount();
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) workers_.emplace_back([this] { workerLoop(); });
}

SweepExecutor::~SweepExecutor() {
  {
    std::lock_guard lk{mu_};
    stop_ = true;
  }
  work_.notify_all();
  for (auto& w : workers_) w.join();
}

std::shared_ptr<SweepExecutor::Job> SweepExecutor::submit(const ExperimentSpec& spec, int runs) {
  auto job = std::make_shared<Job>(spec, runs);
  job->wallLimitSec_ = replicaWallLimitSec_;
  {
    std::lock_guard lk{mu_};
    if (job->total_ == 0) {
      job->result_.wallSeconds = 0.0;
      job->done_ = true;
    } else {
      queue_.push_back(job);
    }
  }
  work_.notify_all();
  return job;
}

ExperimentResult SweepExecutor::finish(const std::shared_ptr<Job>& job) {
  std::unique_lock lk{mu_};
  done_.wait(lk, [&] { return job->done_; });
  ExperimentResult out = std::move(job->result_);
  out.threads = threadCount();
  return out;
}

ExperimentResult SweepExecutor::execute(const ExperimentSpec& spec, int runs) {
  return finish(submit(spec, runs));
}

void SweepExecutor::workerLoop() {
  std::unique_lock lk{mu_};
  for (;;) {
    work_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    auto job = queue_.front();
    const std::size_t item = job->next_.fetch_add(1, std::memory_order_relaxed);
    if (item >= job->total_) {
      // Every replica claimed; retire the job from the queue (another
      // worker may have done so already) and let its claimants finish.
      if (!queue_.empty() && queue_.front() == job) queue_.pop_front();
      continue;
    }
    lk.unlock();
    runReplica(*job, item);
    lk.lock();
  }
}

void SweepExecutor::runReplica(Job& job, std::size_t item) {
  // Cell-major flattening: early cells finish (and free their raw
  // replicas) first, keeping peak memory near one cell's worth per thread.
  const std::size_t cell = item / static_cast<std::size_t>(job.runs_);
  const std::size_t rep = item % static_cast<std::size_t>(job.runs_);
  const CellSpec& cs = job.spec_->cells[cell];

  ScenarioConfig cfg = cs.config;
  cfg.seed = cs.startSeed + rep;
  try {
    // A replica that throws (scenario bug, invariant violation, watchdog
    // timeout) takes out only its own cell's aggregate: the error text is
    // recorded and every other cell completes exactly as if the failed
    // replica had never been enqueued.
    watchdog::Scope wd{job.wallLimitSec_};
    job.raw_[cell][rep] = cs.run ? cs.run(cfg) : runScenario(cfg);
  } catch (const std::exception& e) {
    job.errors_[cell][rep] = e.what()[0] != '\0' ? e.what() : "unknown std::exception";
  } catch (...) {
    job.errors_[cell][rep] = "unknown non-standard exception";
  }

  if (job.cellLeft_[cell].fetch_sub(1, std::memory_order_acq_rel) != 1) return;

  // Last replica of this cell: fold in seed order (the vector is already
  // seed-ordered, so this matches serial runMany bit for bit) and drop
  // the raw replicas. If any replica threw, the cell becomes a failure
  // report instead — a partial aggregate would silently skew the means.
  CellResult& out = job.result_.cells[cell];
  bool anyFailed = false;
  for (std::size_t r = 0; r < job.errors_[cell].size(); ++r) {
    if (job.errors_[cell][r].empty()) continue;
    anyFailed = true;
    out.failures.push_back(ReplicaFailure{cs.startSeed + r, std::move(job.errors_[cell][r])});
  }
  if (!anyFailed) {
    out.agg = Aggregate::over(job.raw_[cell]);
    out.totals = CellStats::over(job.raw_[cell]);
  }
  std::vector<RunResult>{}.swap(job.raw_[cell]);
  std::vector<std::string>{}.swap(job.errors_[cell]);

  if (job.cellsLeft_.fetch_sub(1, std::memory_order_acq_rel) != 1) return;

  // Last cell of the experiment.
  job.result_.wallSeconds = nowSec() - job.startedAt_;
  {
    std::lock_guard lk{mu_};
    job.done_ = true;
  }
  done_.notify_all();
}

}  // namespace rcsim::exp
