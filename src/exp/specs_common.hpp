#pragma once

// Internal helpers shared by the spec definition files. The canonical
// protocol set / degree axis / base config used to live in
// bench/bench_common.hpp; grid() and matrix() replace each bench's
// hand-rolled sweep loops with declarative cell lists.

#include <functional>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "exp/spec.hpp"

namespace rcsim::exp {

inline const std::vector<ProtocolKind> kPaperProtocols{ProtocolKind::Rip, ProtocolKind::Dbf,
                                                       ProtocolKind::Bgp, ProtocolKind::Bgp3};

inline std::vector<std::string> names(const std::vector<ProtocolKind>& kinds) {
  std::vector<std::string> out;
  out.reserve(kinds.size());
  for (const auto k : kinds) out.emplace_back(toString(k));
  return out;
}

inline std::vector<int> paperDegrees() {
  std::vector<int> d;
  for (int i = 3; i <= 16; ++i) d.push_back(i);
  return d;
}

inline ScenarioConfig baseConfig() { return ScenarioConfig{}; }

/// Append one cell per degree for a fixed row label; `tweak` finishes the
/// config (protocol, knobs) before the degree is applied.
inline void addDegreeRow(std::vector<CellSpec>& cells, const std::string& label,
                         const std::vector<int>& degrees,
                         const std::function<void(ScenarioConfig&)>& tweak) {
  for (const int d : degrees) {
    CellSpec cell;
    cell.id = label + "/degree=" + std::to_string(d);
    cell.label = label;
    cell.config = baseConfig();
    tweak(cell.config);
    cell.config.mesh.degree = d;
    cells.push_back(std::move(cell));
  }
}

/// Row-major metric matrix over a contiguous block of cells: rows x cols
/// cells starting at `base`, in the same layout report::degreeSweep wants
/// (values[row][col]).
inline std::vector<std::vector<double>> matrix(
    const ExperimentResult& res, std::size_t base, std::size_t rows, std::size_t cols,
    const std::function<double(const CellResult&)>& metric) {
  std::vector<std::vector<double>> out(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    out[r].reserve(cols);
    for (std::size_t c = 0; c < cols; ++c) out[r].push_back(metric(res.cells[base + r * cols + c]));
  }
  return out;
}

/// Aggregates of `count` consecutive cells starting at `base` (the
/// report::timeSeries layout).
inline std::vector<Aggregate> aggregates(const ExperimentResult& res, std::size_t base,
                                         std::size_t count) {
  std::vector<Aggregate> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(res.cells[base + i].agg);
  return out;
}

}  // namespace rcsim::exp
