#pragma once

// Global experiment registry: specs register once by name, drivers look
// them up (`rcsim_bench --only=fig3_drops`) or iterate in registration
// order (`--all`, which reproduces the historical regenerate order).

#include <string>
#include <vector>

#include "exp/spec.hpp"

namespace rcsim::exp {

/// Add a spec. Throws std::invalid_argument on a duplicate name, an empty
/// name, or duplicate cell ids (cell ids key the JSON artifact).
void registerExperiment(ExperimentSpec spec);

/// All registered specs, in registration order.
[[nodiscard]] const std::vector<ExperimentSpec>& allExperiments();

/// Lookup by name; nullptr when absent.
[[nodiscard]] const ExperimentSpec* findExperiment(const std::string& name);

/// Register the full built-in suite (figures, ablations, extensions,
/// appendices) exactly once; safe to call repeatedly.
void registerBuiltinExperiments();

}  // namespace rcsim::exp
