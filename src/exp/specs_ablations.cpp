// Ablations A1..A6 as registered experiment specs (see the per-spec
// comments for the paper passages they probe).

#include <cstdio>
#include <string>

#include "exp/registry.hpp"
#include "exp/specs.hpp"
#include "exp/specs_common.hpp"

namespace rcsim::exp {
namespace {

// A1 — MRAI granularity: per-neighbor (what vendors implement and the
// paper simulates) versus per-(neighbor, destination) (what the paper
// conjectures would shorten the inconsistency window, §5.2).
void registerMrai() {
  ExperimentSpec spec;
  spec.name = "ablation_mrai";
  spec.title = "Ablation A1: per-neighbor vs per-destination MRAI";
  spec.description = "per-neighbor vs per-(neighbor,destination) MRAI for BGP/BGP3";
  spec.paperRuns = 30;
  const std::vector<int> degrees{3, 4, 5, 6};
  struct Variant {
    const char* name;
    ProtocolKind kind;
    bool perDest;
  };
  const std::vector<Variant> variants{
      {"BGP/nbr", ProtocolKind::Bgp, false},
      {"BGP/dst", ProtocolKind::Bgp, true},
      {"BGP3/nbr", ProtocolKind::Bgp3, false},
      {"BGP3/dst", ProtocolKind::Bgp3, true},
  };
  std::vector<std::string> labels;
  for (const auto& v : variants) {
    labels.emplace_back(v.name);
    addDegreeRow(spec.cells, v.name, degrees, [v](ScenarioConfig& cfg) {
      cfg.protocol = v.kind;
      cfg.protoCfg.bgp.perDestMrai = v.perDest;
    });
  }
  spec.render = [degrees, labels](const ExperimentSpec&, const ExperimentResult& res) {
    const auto rows = labels.size();
    const auto cols = degrees.size();
    report::header("Ablation A1", "packet drops due to no route");
    report::degreeSweep("packets", degrees, labels,
                        matrix(res, 0, rows, cols,
                               [](const CellResult& c) { return c.agg.dropsNoRoute; }));
    report::header("Ablation A1", "TTL expirations");
    report::degreeSweep("packets", degrees, labels,
                        matrix(res, 0, rows, cols,
                               [](const CellResult& c) { return c.agg.dropsTtl; }));
    report::header("Ablation A1", "network routing convergence time");
    report::degreeSweep("seconds", degrees, labels,
                        matrix(res, 0, rows, cols, [](const CellResult& c) {
                          return c.agg.routingConvergenceSec;
                        }));
  };
  registerExperiment(std::move(spec));
}

// A2 — DV update message capacity: shrink the RIP-format message from 25
// routes to 1 and watch batch consistency suffer.
void registerMsgSize() {
  ExperimentSpec spec;
  spec.name = "ablation_msgsize";
  spec.title = "Ablation A2: DV routes-per-message";
  spec.description = "RIP/DBF update capacity 25/5/1 routes per message";
  spec.paperRuns = 30;
  const std::vector<int> degrees{3, 4, 5, 6};
  const std::vector<int> capacities{25, 5, 1};
  std::vector<std::string> labels;
  for (const ProtocolKind kind : {ProtocolKind::Rip, ProtocolKind::Dbf}) {
    for (const int cap : capacities) {
      const std::string label = std::string{toString(kind)} + "/" + std::to_string(cap);
      labels.push_back(label);
      addDegreeRow(spec.cells, label, degrees, [kind, cap](ScenarioConfig& cfg) {
        cfg.protocol = kind;
        cfg.protoCfg.dv.maxEntriesPerMessage = cap;
      });
    }
  }
  spec.render = [degrees, labels](const ExperimentSpec&, const ExperimentResult& res) {
    const auto rows = labels.size();
    const auto cols = degrees.size();
    report::header("Ablation A2", "packet drops due to no route");
    report::degreeSweep("packets", degrees, labels,
                        matrix(res, 0, rows, cols,
                               [](const CellResult& c) { return c.agg.dropsNoRoute; }));
    report::header("Ablation A2", "TTL expirations");
    report::degreeSweep("packets", degrees, labels,
                        matrix(res, 0, rows, cols,
                               [](const CellResult& c) { return c.agg.dropsTtl; }));
    report::header("Ablation A2", "network routing convergence time");
    report::degreeSweep("seconds", degrees, labels,
                        matrix(res, 0, rows, cols, [](const CellResult& c) {
                          return c.agg.routingConvergenceSec;
                        }));
  };
  registerExperiment(std::move(spec));
}

// A3 — triggered-update damping windows for RIP/DBF, plus BGP3 with
// withdrawals subjected to the MRAI (normally exempt, §4.3).
void registerDamping() {
  ExperimentSpec spec;
  spec.name = "ablation_damping";
  spec.title = "Ablation A3: update damping";
  spec.description = "triggered-update damping windows; MRAI-subjected withdrawals";
  spec.paperRuns = 30;
  const std::vector<int> degrees{3, 4, 5, 6};
  struct DampRange {
    double lo;
    double hi;
  };
  const std::vector<DampRange> ranges{{0.0, 0.0}, {1.0, 5.0}, {5.0, 10.0}};
  std::vector<std::string> labels;
  for (const ProtocolKind kind : {ProtocolKind::Rip, ProtocolKind::Dbf}) {
    for (const auto& range : ranges) {
      char label[32];
      std::snprintf(label, sizeof label, "%s/%g-%g", toString(kind), range.lo, range.hi);
      labels.emplace_back(label);
      addDegreeRow(spec.cells, label, degrees, [kind, range](ScenarioConfig& cfg) {
        cfg.protocol = kind;
        cfg.protoCfg.dv.triggerDampMinSec = range.lo;
        cfg.protoCfg.dv.triggerDampMaxSec = range.hi;
      });
    }
  }
  for (const bool exempt : {true, false}) {
    const std::string label = exempt ? "BGP3/wd-fast" : "BGP3/wd-mrai";
    labels.push_back(label);
    addDegreeRow(spec.cells, label, degrees, [exempt](ScenarioConfig& cfg) {
      cfg.protocol = ProtocolKind::Bgp3;
      cfg.protoCfg.bgp.withdrawalsExemptFromMrai = exempt;
    });
  }
  spec.render = [degrees, labels](const ExperimentSpec&, const ExperimentResult& res) {
    const auto rows = labels.size();
    const auto cols = degrees.size();
    report::header("Ablation A3", "packet drops due to no route");
    report::degreeSweep("packets", degrees, labels,
                        matrix(res, 0, rows, cols,
                               [](const CellResult& c) { return c.agg.dropsNoRoute; }));
    report::header("Ablation A3", "network routing convergence time");
    report::degreeSweep("seconds", degrees, labels,
                        matrix(res, 0, rows, cols, [](const CellResult& c) {
                          return c.agg.routingConvergenceSec;
                        }));
  };
  registerExperiment(std::move(spec));
}

// A4 — route flap damping during convergence: RFD can misread post-failure
// path exploration as flapping, so convergence worsens as connectivity
// grows (Mao et al. / Bush et al.).
void registerFlapDamping() {
  ExperimentSpec spec;
  spec.name = "ablation_flap_damping";
  spec.title = "Ablation A4: route flap damping";
  spec.description = "BGP3 with RFD off/on/aggressive through one failure";
  spec.paperRuns = 30;
  const std::vector<int> degrees{3, 4, 5, 6, 8};
  struct Variant {
    const char* name;
    bool rfd;
    double penalty;
  };
  // "aggressive" halves the suppress threshold: one re-advertisement after
  // a withdrawal is already enough to suppress.
  const std::vector<Variant> variants{
      {"BGP3", false, 1000.0},
      {"BGP3+rfd", true, 1000.0},
      {"BGP3+rfd!", true, 1999.0},
  };
  std::vector<std::string> labels;
  for (const auto& v : variants) {
    labels.emplace_back(v.name);
    addDegreeRow(spec.cells, v.name, degrees, [v](ScenarioConfig& cfg) {
      cfg.protocol = ProtocolKind::Bgp3;
      cfg.protoCfg.bgp.flapDampingEnabled = v.rfd;
      cfg.protoCfg.bgp.rfdPenaltyPerFlap = v.penalty;
    });
  }
  spec.render = [degrees, labels](const ExperimentSpec&, const ExperimentResult& res) {
    const auto rows = labels.size();
    const auto cols = degrees.size();
    report::header("Ablation A4", "packet drops (no-route + TTL) during convergence");
    report::degreeSweep("packets", degrees, labels,
                        matrix(res, 0, rows, cols, [](const CellResult& c) {
                          return c.agg.dropsNoRoute + c.agg.dropsTtl;
                        }));
    report::header("Ablation A4", "network routing convergence time");
    report::degreeSweep("seconds", degrees, labels,
                        matrix(res, 0, rows, cols, [](const CellResult& c) {
                          return c.agg.routingConvergenceSec;
                        }));
  };
  registerExperiment(std::move(spec));
}

// A5 — the distance-vector infinity: small infinity costs reachability,
// large infinity costs counting time (paper's conclusion).
void registerInfinity() {
  ExperimentSpec spec;
  spec.name = "ablation_infinity";
  spec.title = "Ablation A5: DV infinity metric";
  spec.description = "RIP/DBF with infinity 8/16/32";
  spec.paperRuns = 30;
  const std::vector<int> degrees{3, 4, 6};
  const std::vector<int> infinities{8, 16, 32};
  const std::vector<ProtocolKind> kinds{ProtocolKind::Rip, ProtocolKind::Dbf};
  for (const ProtocolKind kind : kinds) {
    for (const int inf : infinities) {
      const std::string label =
          std::string{toString(kind)} + "/inf" + std::to_string(inf);
      addDegreeRow(spec.cells, label, degrees, [kind, inf](ScenarioConfig& cfg) {
        cfg.protocol = kind;
        cfg.protoCfg.dv.infinityMetric = inf;
      });
    }
  }
  spec.render = [degrees, infinities, kinds](const ExperimentSpec&, const ExperimentResult& res) {
    const auto cols = degrees.size();
    const auto rows = infinities.size();
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      std::vector<std::string> labels;
      for (const int inf : infinities) {
        labels.push_back(std::string{toString(kinds[k])} + "/inf" + std::to_string(inf));
      }
      const std::size_t base = k * rows * cols;
      report::header(std::string{"Ablation A5, "} + toString(kinds[k]),
                     "packet drops due to no route / routing convergence time");
      report::degreeSweep("packets", degrees, labels,
                          matrix(res, base, rows, cols,
                                 [](const CellResult& c) { return c.agg.dropsNoRoute; }));
      report::degreeSweep("seconds", degrees, labels,
                          matrix(res, base, rows, cols, [](const CellResult& c) {
                            return c.agg.routingConvergenceSec;
                          }));
    }
  };
  registerExperiment(std::move(spec));
}

// A6 — split-horizon flavors: none / simple / poison reverse for RIP and
// DBF, the classic textbook trade.
void registerSplitHorizon() {
  ExperimentSpec spec;
  spec.name = "ablation_splithorizon";
  spec.title = "Ablation A6: split-horizon flavor";
  spec.description = "RIP/DBF with no protection, simple split horizon, poison reverse";
  spec.paperRuns = 30;
  const std::vector<int> degrees{3, 4, 5, 6};
  struct Variant {
    const char* name;
    SplitHorizonMode mode;
  };
  const std::vector<Variant> modes{{"none", SplitHorizonMode::None},
                                   {"simple", SplitHorizonMode::SplitHorizon},
                                   {"poison", SplitHorizonMode::PoisonReverse}};
  const std::vector<ProtocolKind> kinds{ProtocolKind::Rip, ProtocolKind::Dbf};
  for (const ProtocolKind kind : kinds) {
    for (const auto& variant : modes) {
      const std::string label = std::string{toString(kind)} + "/" + variant.name;
      addDegreeRow(spec.cells, label, degrees, [kind, variant](ScenarioConfig& cfg) {
        cfg.protocol = kind;
        cfg.protoCfg.dv.splitHorizon = variant.mode;
      });
    }
  }
  spec.render = [degrees, modes, kinds](const ExperimentSpec&, const ExperimentResult& res) {
    const auto cols = degrees.size();
    const auto rows = modes.size();
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      std::vector<std::string> labels;
      for (const auto& variant : modes) {
        labels.push_back(std::string{toString(kinds[k])} + "/" + variant.name);
      }
      const std::size_t base = k * rows * cols;
      report::header(std::string{"Ablation A6, "} + toString(kinds[k]), "");
      report::degreeSweep("no-route drops", degrees, labels,
                          matrix(res, base, rows, cols,
                                 [](const CellResult& c) { return c.agg.dropsNoRoute; }));
      report::degreeSweep("TTL expirations", degrees, labels,
                          matrix(res, base, rows, cols,
                                 [](const CellResult& c) { return c.agg.dropsTtl; }));
      report::degreeSweep("routing convergence (s)", degrees, labels,
                          matrix(res, base, rows, cols, [](const CellResult& c) {
                            return c.agg.routingConvergenceSec;
                          }));
    }
  };
  registerExperiment(std::move(spec));
}

}  // namespace

void registerAblationExperiments() {
  registerMrai();
  registerMsgSize();
  registerDamping();
  registerFlapDamping();
  registerInfinity();
  registerSplitHorizon();
}

}  // namespace rcsim::exp
