#include "exp/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "core/durable_io.hpp"
#include "core/fingerprint.hpp"

namespace rcsim::exp {

namespace {

JsonValue countersToJson(const PacketCounters& c) {
  JsonValue arr = JsonValue::makeArray();
  arr.array.reserve(9);
  for (const std::uint64_t v : {c.delivered, c.forwarded, c.dropNoRoute, c.dropTtl, c.dropQueue,
                                c.dropLinkDown, c.dropInFlightCut, c.dropLoss, c.dropCorrupt}) {
    arr.array.push_back(JsonValue::makeNumber(static_cast<double>(v)));
  }
  return arr;
}

PacketCounters countersFromJson(const JsonValue& v) {
  if (v.kind != JsonValue::Kind::Array || v.array.size() != 9) {
    throw std::runtime_error("journal: counters array must have 9 elements");
  }
  auto u = [&](std::size_t i) { return static_cast<std::uint64_t>(v.array[i].number); };
  PacketCounters c;
  c.delivered = u(0);
  c.forwarded = u(1);
  c.dropNoRoute = u(2);
  c.dropTtl = u(3);
  c.dropQueue = u(4);
  c.dropLinkDown = u(5);
  c.dropInFlightCut = u(6);
  c.dropLoss = u(7);
  c.dropCorrupt = u(8);
  return c;
}

JsonValue seriesToJson(const std::vector<double>& values) {
  JsonValue arr = JsonValue::makeArray();
  arr.array.reserve(values.size());
  for (const double v : values) arr.array.push_back(JsonValue::makeNumber(v));
  return arr;
}

std::vector<double> seriesFromJson(const JsonValue& v) {
  std::vector<double> out;
  out.reserve(v.array.size());
  for (const auto& e : v.array) out.push_back(e.number);
  return out;
}

std::uint64_t u64At(const JsonValue& o, const char* key) {
  return static_cast<std::uint64_t>(o.numberAt(key));
}

}  // namespace

JsonValue anatomySummaryToJson(const obs::AnatomySummary& s) {
  JsonValue o = JsonValue::makeObject();
  auto putU = [&o](const char* key, std::uint64_t v) {
    o.object[key] = JsonValue::makeNumber(static_cast<double>(v));
  };
  putU("episodes", s.episodes);
  putU("triggers", s.triggers);
  putU("detected_episodes", s.detectedEpisodes);
  o.object["detection_sec_total"] = JsonValue::makeNumber(s.detectionSecTotal);
  putU("converged_episodes", s.convergedEpisodes);
  o.object["convergence_sec_total"] = JsonValue::makeNumber(s.convergenceSecTotal);
  putU("fib_churn", s.fibChurn);
  putU("loop_windows", s.loopWindows);
  o.object["loop_seconds"] = JsonValue::makeNumber(s.loopSeconds);
  putU("blackhole_windows", s.blackholeWindows);
  o.object["blackhole_seconds"] = JsonValue::makeNumber(s.blackholeSeconds);
  putU("drops_loop", s.dropsLoop);
  putU("drops_blackhole", s.dropsBlackhole);
  putU("drops_ttl", s.dropsTtl);
  putU("drops_queue", s.dropsQueue);
  putU("drops_other", s.dropsOther);
  putU("delivered", s.delivered);
  putU("control_messages", s.controlMessages);
  putU("control_bytes", s.controlBytes);
  putU("hello_messages", s.helloMessages);
  putU("hello_bytes", s.helloBytes);
  putU("dv_triggered", s.dvTriggered);
  putU("dv_periodic", s.dvPeriodic);
  putU("mrai_armed", s.mraiArmed);
  putU("mrai_fired", s.mraiFired);
  return o;
}

obs::AnatomySummary anatomySummaryFromJson(const JsonValue& v) {
  obs::AnatomySummary s;
  s.episodes = u64At(v, "episodes");
  s.triggers = u64At(v, "triggers");
  s.detectedEpisodes = u64At(v, "detected_episodes");
  s.detectionSecTotal = v.numberAt("detection_sec_total");
  s.convergedEpisodes = u64At(v, "converged_episodes");
  s.convergenceSecTotal = v.numberAt("convergence_sec_total");
  s.fibChurn = u64At(v, "fib_churn");
  s.loopWindows = u64At(v, "loop_windows");
  s.loopSeconds = v.numberAt("loop_seconds");
  s.blackholeWindows = u64At(v, "blackhole_windows");
  s.blackholeSeconds = v.numberAt("blackhole_seconds");
  s.dropsLoop = u64At(v, "drops_loop");
  s.dropsBlackhole = u64At(v, "drops_blackhole");
  s.dropsTtl = u64At(v, "drops_ttl");
  s.dropsQueue = u64At(v, "drops_queue");
  s.dropsOther = u64At(v, "drops_other");
  s.delivered = u64At(v, "delivered");
  s.controlMessages = u64At(v, "control_messages");
  s.controlBytes = u64At(v, "control_bytes");
  s.helloMessages = u64At(v, "hello_messages");
  s.helloBytes = u64At(v, "hello_bytes");
  s.dvTriggered = u64At(v, "dv_triggered");
  s.dvPeriodic = u64At(v, "dv_periodic");
  s.mraiArmed = u64At(v, "mrai_armed");
  s.mraiFired = u64At(v, "mrai_fired");
  return s;
}

JsonValue runResultToJson(const RunResult& r) {
  JsonValue o = JsonValue::makeObject();
  o.object["protocol"] = JsonValue::makeNumber(static_cast<int>(r.protocol));
  o.object["degree"] = JsonValue::makeNumber(r.degree);
  o.object["seed"] = JsonValue::makeNumber(static_cast<double>(r.seed));
  o.object["sent"] = JsonValue::makeNumber(static_cast<double>(r.sent));
  o.object["data"] = countersToJson(r.data);
  o.object["data_after_failure"] = countersToJson(r.dataAfterFailure);
  o.object["control"] = countersToJson(r.control);
  o.object["loop_escaped_deliveries"] =
      JsonValue::makeNumber(static_cast<double>(r.loopEscapedDeliveries));
  o.object["control_messages"] = JsonValue::makeNumber(static_cast<double>(r.controlMessages));
  o.object["control_bytes"] = JsonValue::makeNumber(static_cast<double>(r.controlBytes));
  o.object["control_messages_after_failure"] =
      JsonValue::makeNumber(static_cast<double>(r.controlMessagesAfterFailure));
  o.object["tcp_goodput_packets"] =
      JsonValue::makeNumber(static_cast<double>(r.tcpGoodputPackets));
  o.object["tcp_retransmissions"] =
      JsonValue::makeNumber(static_cast<double>(r.tcpRetransmissions));
  o.object["transport_retransmissions"] =
      JsonValue::makeNumber(static_cast<double>(r.transportRetransmissions));
  o.object["transport_session_resets"] =
      JsonValue::makeNumber(static_cast<double>(r.transportSessionResets));
  o.object["routing_convergence_sec"] = JsonValue::makeNumber(r.routingConvergenceSec);
  o.object["forwarding_convergence_sec"] = JsonValue::makeNumber(r.forwardingConvergenceSec);
  o.object["transient_paths"] = JsonValue::makeNumber(r.transientPaths);
  o.object["saw_loop"] = JsonValue::makeBool(r.sawLoop);
  o.object["saw_blackhole"] = JsonValue::makeBool(r.sawBlackhole);
  o.object["pre_failure_path_shortest"] = JsonValue::makeBool(r.preFailurePathShortest);
  o.object["pre_failure_path_hops"] = JsonValue::makeNumber(r.preFailurePathHops);
  o.object["final_path_shortest"] = JsonValue::makeBool(r.finalPathShortest);
  o.object["route_changes_after_failure"] =
      JsonValue::makeNumber(static_cast<double>(r.routeChangesAfterFailure));
  o.object["throughput"] = seriesToJson(r.throughput);
  o.object["mean_delay"] = seriesToJson(r.meanDelay);
  o.object["fail_sec"] = JsonValue::makeNumber(r.failSec);
  o.object["events_executed"] = JsonValue::makeNumber(static_cast<double>(r.eventsExecuted));
  o.object["fib_digest_before"] = JsonValue::makeString(r.fibDigestBefore);
  o.object["fib_digest_after"] = JsonValue::makeString(r.fibDigestAfter);
  o.object["anatomy"] = anatomySummaryToJson(r.anatomy);
  return o;
}

RunResult runResultFromJson(const JsonValue& v) {
  RunResult r;
  r.protocol = static_cast<ProtocolKind>(static_cast<int>(v.numberAt("protocol")));
  r.degree = static_cast<int>(v.numberAt("degree"));
  r.seed = u64At(v, "seed");
  r.sent = u64At(v, "sent");
  r.data = countersFromJson(v.at("data"));
  r.dataAfterFailure = countersFromJson(v.at("data_after_failure"));
  r.control = countersFromJson(v.at("control"));
  r.loopEscapedDeliveries = u64At(v, "loop_escaped_deliveries");
  r.controlMessages = u64At(v, "control_messages");
  r.controlBytes = u64At(v, "control_bytes");
  r.controlMessagesAfterFailure = u64At(v, "control_messages_after_failure");
  r.tcpGoodputPackets = u64At(v, "tcp_goodput_packets");
  r.tcpRetransmissions = u64At(v, "tcp_retransmissions");
  r.transportRetransmissions = u64At(v, "transport_retransmissions");
  r.transportSessionResets = u64At(v, "transport_session_resets");
  r.routingConvergenceSec = v.numberAt("routing_convergence_sec");
  r.forwardingConvergenceSec = v.numberAt("forwarding_convergence_sec");
  r.transientPaths = static_cast<int>(v.numberAt("transient_paths"));
  r.sawLoop = v.at("saw_loop").boolean;
  r.sawBlackhole = v.at("saw_blackhole").boolean;
  r.preFailurePathShortest = v.at("pre_failure_path_shortest").boolean;
  r.preFailurePathHops = static_cast<int>(v.numberAt("pre_failure_path_hops"));
  r.finalPathShortest = v.at("final_path_shortest").boolean;
  r.routeChangesAfterFailure = u64At(v, "route_changes_after_failure");
  r.throughput = seriesFromJson(v.at("throughput"));
  r.meanDelay = seriesFromJson(v.at("mean_delay"));
  r.failSec = static_cast<int>(v.numberAt("fail_sec"));
  r.eventsExecuted = u64At(v, "events_executed");
  // Snapshot digests postdate the first journal format; journals written
  // before them decode with the fields empty.
  if (v.has("fib_digest_before")) r.fibDigestBefore = v.stringAt("fib_digest_before");
  if (v.has("fib_digest_after")) r.fibDigestAfter = v.stringAt("fib_digest_after");
  // The anatomy block postdates the first journal format; older journals
  // decode with an all-zero summary.
  if (v.has("anatomy")) r.anatomy = anatomySummaryFromJson(v.at("anatomy"));
  return r;
}

std::string encodeJournalLine(const JournalRecord& rec) {
  JsonValue body = JsonValue::makeObject();
  body.object["experiment"] = JsonValue::makeString(rec.experiment);
  body.object["cell"] = JsonValue::makeString(rec.cell);
  body.object["config"] = JsonValue::makeString(rec.configDigest);
  body.object["seed"] = JsonValue::makeNumber(static_cast<double>(rec.seed));
  body.object["attempt"] = JsonValue::makeNumber(rec.attempt);
  body.object["ok"] = JsonValue::makeBool(rec.ok);
  if (rec.ok) {
    // The digest is belt-and-braces on top of the CRC: it catches a
    // serializer that drifts from RunResult (schema skew), not just bit
    // rot, before a stale snapshot is folded into an aggregate.
    body.object["digest"] = JsonValue::makeString(runResultDigest(rec.result));
    body.object["result"] = runResultToJson(rec.result);
  } else {
    JsonValue errs = JsonValue::makeArray();
    for (const auto& e : rec.errors) errs.array.push_back(JsonValue::makeString(e));
    body.object["errors"] = std::move(errs);
  }
  const std::string canonical = dumpJsonLine(body);

  JsonValue line = JsonValue::makeObject();
  line.object["crc"] = JsonValue::makeString(crc32Hex(canonical));
  line.object["rec"] = std::move(body);
  return dumpJsonLine(line);
}

bool decodeJournalLine(const std::string& line, JournalRecord& out) {
  try {
    const JsonValue doc = parseJson(line);
    const JsonValue& rec = doc.at("rec");
    // Re-serializing the parsed record reproduces the writer's canonical
    // bytes exactly (numbers are shortest-round-trip, keys are sorted),
    // so the CRC check needs no raw-substring surgery on the line.
    if (crc32Hex(dumpJsonLine(rec)) != doc.stringAt("crc")) return false;
    out = JournalRecord{};
    out.experiment = rec.stringAt("experiment");
    out.cell = rec.stringAt("cell");
    out.configDigest = rec.stringAt("config");
    out.seed = u64At(rec, "seed");
    out.attempt = static_cast<int>(rec.numberAt("attempt"));
    out.ok = rec.at("ok").boolean;
    if (out.ok) {
      out.result = runResultFromJson(rec.at("result"));
      if (runResultDigest(out.result) != rec.stringAt("digest")) return false;
    } else {
      for (const auto& e : rec.at("errors").array) out.errors.push_back(e.str);
    }
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

JournalWriter::JournalWriter(const std::string& dir) {
  std::filesystem::create_directories(dir);
  fsyncPath(dir);
  path_ = (std::filesystem::path{dir} / kJournalFileName).string();
  // O_RDWR (not O_WRONLY): the torn-tail check below preads the last byte,
  // which a write-only descriptor refuses with EBADF.
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("journal: cannot open " + path_ + ": " + std::strerror(errno));
  }
  // A SIGKILL mid-append can leave a torn, unterminated tail. Terminate it
  // now so the next record starts on a fresh line; the torn record itself
  // fails its CRC on read and only that replica re-runs.
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size > 0) {
    char last = '\n';
    if (::pread(fd_, &last, 1, size - 1) == 1 && last != '\n') {
      if (::write(fd_, "\n", 1) != 1) {
        const int err = errno;
        ::close(fd_);
        throw std::runtime_error("journal: cannot repair " + path_ + ": " +
                                 std::strerror(err));
      }
    }
  }
  fsyncParentDir(path_);
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::append(const JournalRecord& rec) {
  const std::string line = encodeJournalLine(rec) + "\n";
  std::lock_guard lk{mu_};
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("journal: append failed: " + path_ + ": " +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  fsyncFdOrThrow(fd_, path_);
}

std::vector<JournalRecord> readJournal(const std::string& dir, JournalReadStats* stats) {
  std::vector<JournalRecord> out;
  JournalReadStats local;
  const std::filesystem::path path = std::filesystem::path{dir} / kJournalFileName;
  std::ifstream in{path, std::ios::binary};
  if (in) {
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      JournalRecord rec;
      if (decodeJournalLine(line, rec)) {
        ++local.records;
        out.push_back(std::move(rec));
      } else {
        ++local.corrupt;
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

void JournalIndex::add(const JournalRecord& rec) {
  if (!rec.ok) return;
  std::string key = rec.experiment;
  key += '\x1f';
  key += rec.cell;
  key += '\x1f';
  key += rec.configDigest;
  key += '\x1f';
  key += std::to_string(rec.seed);
  map_[std::move(key)] = rec.result;
}

JournalIndex JournalIndex::load(const std::string& dir, JournalReadStats* stats) {
  JournalIndex idx;
  for (const auto& rec : readJournal(dir, stats)) idx.add(rec);
  return idx;
}

const RunResult* JournalIndex::find(const std::string& experiment, const std::string& cell,
                                    const std::string& configDigest, std::uint64_t seed) const {
  std::string key = experiment;
  key += '\x1f';
  key += cell;
  key += '\x1f';
  key += configDigest;
  key += '\x1f';
  key += std::to_string(seed);
  const auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

}  // namespace rcsim::exp
