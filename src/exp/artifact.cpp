#include "exp/artifact.hpp"

#include <string>
#include <utility>

#include "core/durable_io.hpp"
#include "core/fingerprint.hpp"
#include "core/options.hpp"
#include "exp/journal.hpp"

namespace rcsim::exp {

namespace {

JsonValue numbers(const std::vector<double>& values) {
  JsonValue arr = JsonValue::makeArray();
  arr.array.reserve(values.size());
  for (const double v : values) arr.array.push_back(JsonValue::makeNumber(v));
  return arr;
}

JsonValue aggregateJson(const Aggregate& a, bool withSeries) {
  JsonValue o = JsonValue::makeObject();
  o.object["runs"] = JsonValue::makeNumber(a.runs);
  o.object["drops_no_route"] = JsonValue::makeNumber(a.dropsNoRoute);
  o.object["drops_ttl"] = JsonValue::makeNumber(a.dropsTtl);
  o.object["drops_other"] = JsonValue::makeNumber(a.dropsOther);
  o.object["delivered"] = JsonValue::makeNumber(a.delivered);
  o.object["sent"] = JsonValue::makeNumber(a.sent);
  o.object["routing_convergence_sec"] = JsonValue::makeNumber(a.routingConvergenceSec);
  o.object["forwarding_convergence_sec"] = JsonValue::makeNumber(a.forwardingConvergenceSec);
  o.object["transient_paths"] = JsonValue::makeNumber(a.transientPaths);
  o.object["loop_fraction"] = JsonValue::makeNumber(a.loopFraction);
  o.object["loop_escaped_deliveries"] = JsonValue::makeNumber(a.loopEscapedDeliveries);
  o.object["fail_sec"] = JsonValue::makeNumber(a.failSec);
  if (withSeries) {
    o.object["throughput"] = numbers(a.throughput);
    o.object["mean_delay"] = numbers(a.meanDelay);
  }
  return o;
}

JsonValue totalsJson(const CellStats& t) {
  JsonValue o = JsonValue::makeObject();
  o.object["sent"] = JsonValue::makeNumber(t.sent);
  o.object["delivered"] = JsonValue::makeNumber(t.delivered);
  o.object["drop_no_route"] = JsonValue::makeNumber(t.dropNoRoute);
  o.object["drop_queue"] = JsonValue::makeNumber(t.dropQueue);
  o.object["control_messages"] = JsonValue::makeNumber(t.controlMessages);
  o.object["control_bytes"] = JsonValue::makeNumber(t.controlBytes);
  o.object["control_messages_after_failure"] = JsonValue::makeNumber(t.controlMessagesAfterFailure);
  o.object["tcp_goodput_packets"] = JsonValue::makeNumber(t.tcpGoodputPackets);
  o.object["tcp_retransmissions"] = JsonValue::makeNumber(t.tcpRetransmissions);
  o.object["transport_retransmissions"] = JsonValue::makeNumber(t.transportRetransmissions);
  o.object["transport_session_resets"] = JsonValue::makeNumber(t.transportSessionResets);
  return o;
}

JsonValue attemptsJson(const std::vector<std::string>& attempts) {
  JsonValue arr = JsonValue::makeArray();
  arr.array.reserve(attempts.size());
  for (const auto& a : attempts) arr.array.push_back(JsonValue::makeString(a));
  return arr;
}

JsonValue failuresJson(const std::vector<ReplicaFailure>& failures) {
  JsonValue arr = JsonValue::makeArray();
  arr.array.reserve(failures.size());
  for (const auto& f : failures) {
    JsonValue o = JsonValue::makeObject();
    o.object["seed"] = JsonValue::makeNumber(static_cast<double>(f.seed));
    o.object["error"] = JsonValue::makeString(f.error);
    o.object["attempts"] = attemptsJson(f.attempts);
    arr.array.push_back(std::move(o));
  }
  return arr;
}

JsonValue snapshotsJson(const std::vector<SnapshotDigests>& snapshots) {
  JsonValue arr = JsonValue::makeArray();
  arr.array.reserve(snapshots.size());
  for (const auto& s : snapshots) {
    JsonValue o = JsonValue::makeObject();
    o.object["seed"] = JsonValue::makeNumber(static_cast<double>(s.seed));
    o.object["fib_before"] = JsonValue::makeString(s.before);
    o.object["fib_after"] = JsonValue::makeString(s.after);
    arr.array.push_back(std::move(o));
  }
  return arr;
}

JsonValue retriesJson(const std::vector<ReplicaRetry>& retries) {
  JsonValue arr = JsonValue::makeArray();
  arr.array.reserve(retries.size());
  for (const auto& r : retries) {
    JsonValue o = JsonValue::makeObject();
    o.object["seed"] = JsonValue::makeNumber(static_cast<double>(r.seed));
    o.object["attempts"] = attemptsJson(r.attempts);
    arr.array.push_back(std::move(o));
  }
  return arr;
}

}  // namespace

JsonValue buildArtifact(const ExperimentSpec& spec, const ExperimentResult& result) {
  JsonValue doc = JsonValue::makeObject();
  doc.object["schema"] = JsonValue::makeString(kArtifactSchema);
  doc.object["experiment"] = JsonValue::makeString(spec.name);
  doc.object["title"] = JsonValue::makeString(spec.title);
  doc.object["description"] = JsonValue::makeString(spec.description);
  doc.object["runs_per_cell"] = JsonValue::makeNumber(result.runs);
  doc.object["threads"] = JsonValue::makeNumber(result.threads);
  doc.object["wall_seconds"] = JsonValue::makeNumber(result.wallSeconds);
  // Sweep profile from the executor (replica wall time, journal fsync
  // latency, scheduler totals). Absent when the result did not come from
  // a SweepExecutor job, so legacy artifact consumers are unaffected.
  if (result.metrics.kind == JsonValue::Kind::Object && !result.metrics.object.empty()) {
    doc.object["metrics"] = result.metrics;
  }

  JsonValue cells = JsonValue::makeArray();
  cells.array.reserve(spec.cells.size());
  int failedCells = 0;
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    const CellSpec& cs = spec.cells[i];
    JsonValue cell = JsonValue::makeObject();
    cell.object["id"] = JsonValue::makeString(cs.id);
    cell.object["label"] = JsonValue::makeString(cs.label);
    cell.object["start_seed"] = JsonValue::makeNumber(static_cast<double>(cs.startSeed));
    cell.object["custom_runner"] = JsonValue::makeBool(static_cast<bool>(cs.run));
    JsonValue config = JsonValue::makeArray();
    for (auto& opt : describeOptions(cs.config)) {
      config.array.push_back(JsonValue::makeString(std::move(opt)));
    }
    cell.object["config"] = std::move(config);
    if (i < result.cells.size()) {
      // A failed cell carries its per-replica failure report in place of
      // aggregate/totals — a partial aggregate would read like a clean
      // (but skewed) result to downstream plotting.
      if (result.cells[i].failed()) {
        cell.object["failures"] = failuresJson(result.cells[i].failures);
        ++failedCells;
      } else {
        cell.object["aggregate"] = aggregateJson(result.cells[i].agg, spec.jsonSeries);
        // Full-precision identity of the fold, so a resumed run can be
        // proven bit-identical to an uninterrupted one by comparing one
        // string per cell (scripts/chaos_resume_test.sh does exactly that).
        cell.object["aggregate_digest"] =
            JsonValue::makeString(aggregateDigest(result.cells[i].agg));
        cell.object["totals"] = totalsJson(result.cells[i].totals);
        // Per-replica route-table digests around the first fault; proves
        // whether reconvergence restored the pre-fault tables.
        if (!result.cells[i].snapshots.empty()) {
          cell.object["snapshots"] = snapshotsJson(result.cells[i].snapshots);
        }
        // Convergence-anatomy rollup (episodes, detection/convergence
        // latency, window seconds, per-cause drops, control accounting),
        // summed over replicas in seed order. The digest pins the exact
        // fold the same way aggregate_digest pins the aggregate.
        cell.object["convergence"] = anatomySummaryToJson(result.cells[i].convergence);
        cell.object["convergence_digest"] =
            JsonValue::makeString(anatomyDigest(result.cells[i].convergence));
      }
      if (!result.cells[i].retries.empty()) {
        cell.object["retries"] = retriesJson(result.cells[i].retries);
      }
    }
    cells.array.push_back(std::move(cell));
  }
  doc.object["failed_cells"] = JsonValue::makeNumber(failedCells);
  doc.object["cells"] = std::move(cells);
  return doc;
}

void writeArtifact(const ExperimentSpec& spec, const ExperimentResult& result,
                   const std::string& path) {
  // Temp + fsync + rename + directory fsync: readers see either the old
  // document or the complete new one, and a crash right after "success"
  // cannot roll the artifact back to a truncated or zero-length file
  // (rename alone orders metadata, not data).
  atomicWriteFile(path, dumpJson(buildArtifact(spec, result)));
}

}  // namespace rcsim::exp
