#include "exp/artifact.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <system_error>
#include <utility>

#include "core/options.hpp"

namespace rcsim::exp {

namespace {

JsonValue numbers(const std::vector<double>& values) {
  JsonValue arr = JsonValue::makeArray();
  arr.array.reserve(values.size());
  for (const double v : values) arr.array.push_back(JsonValue::makeNumber(v));
  return arr;
}

JsonValue aggregateJson(const Aggregate& a, bool withSeries) {
  JsonValue o = JsonValue::makeObject();
  o.object["runs"] = JsonValue::makeNumber(a.runs);
  o.object["drops_no_route"] = JsonValue::makeNumber(a.dropsNoRoute);
  o.object["drops_ttl"] = JsonValue::makeNumber(a.dropsTtl);
  o.object["drops_other"] = JsonValue::makeNumber(a.dropsOther);
  o.object["delivered"] = JsonValue::makeNumber(a.delivered);
  o.object["sent"] = JsonValue::makeNumber(a.sent);
  o.object["routing_convergence_sec"] = JsonValue::makeNumber(a.routingConvergenceSec);
  o.object["forwarding_convergence_sec"] = JsonValue::makeNumber(a.forwardingConvergenceSec);
  o.object["transient_paths"] = JsonValue::makeNumber(a.transientPaths);
  o.object["loop_fraction"] = JsonValue::makeNumber(a.loopFraction);
  o.object["loop_escaped_deliveries"] = JsonValue::makeNumber(a.loopEscapedDeliveries);
  o.object["fail_sec"] = JsonValue::makeNumber(a.failSec);
  if (withSeries) {
    o.object["throughput"] = numbers(a.throughput);
    o.object["mean_delay"] = numbers(a.meanDelay);
  }
  return o;
}

JsonValue totalsJson(const CellStats& t) {
  JsonValue o = JsonValue::makeObject();
  o.object["sent"] = JsonValue::makeNumber(t.sent);
  o.object["delivered"] = JsonValue::makeNumber(t.delivered);
  o.object["drop_no_route"] = JsonValue::makeNumber(t.dropNoRoute);
  o.object["drop_queue"] = JsonValue::makeNumber(t.dropQueue);
  o.object["control_messages"] = JsonValue::makeNumber(t.controlMessages);
  o.object["control_bytes"] = JsonValue::makeNumber(t.controlBytes);
  o.object["control_messages_after_failure"] = JsonValue::makeNumber(t.controlMessagesAfterFailure);
  o.object["tcp_goodput_packets"] = JsonValue::makeNumber(t.tcpGoodputPackets);
  o.object["tcp_retransmissions"] = JsonValue::makeNumber(t.tcpRetransmissions);
  o.object["transport_retransmissions"] = JsonValue::makeNumber(t.transportRetransmissions);
  o.object["transport_session_resets"] = JsonValue::makeNumber(t.transportSessionResets);
  return o;
}

JsonValue failuresJson(const std::vector<ReplicaFailure>& failures) {
  JsonValue arr = JsonValue::makeArray();
  arr.array.reserve(failures.size());
  for (const auto& f : failures) {
    JsonValue o = JsonValue::makeObject();
    o.object["seed"] = JsonValue::makeNumber(static_cast<double>(f.seed));
    o.object["error"] = JsonValue::makeString(f.error);
    arr.array.push_back(std::move(o));
  }
  return arr;
}

}  // namespace

JsonValue buildArtifact(const ExperimentSpec& spec, const ExperimentResult& result) {
  JsonValue doc = JsonValue::makeObject();
  doc.object["schema"] = JsonValue::makeString(kArtifactSchema);
  doc.object["experiment"] = JsonValue::makeString(spec.name);
  doc.object["title"] = JsonValue::makeString(spec.title);
  doc.object["description"] = JsonValue::makeString(spec.description);
  doc.object["runs_per_cell"] = JsonValue::makeNumber(result.runs);
  doc.object["threads"] = JsonValue::makeNumber(result.threads);
  doc.object["wall_seconds"] = JsonValue::makeNumber(result.wallSeconds);

  JsonValue cells = JsonValue::makeArray();
  cells.array.reserve(spec.cells.size());
  int failedCells = 0;
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    const CellSpec& cs = spec.cells[i];
    JsonValue cell = JsonValue::makeObject();
    cell.object["id"] = JsonValue::makeString(cs.id);
    cell.object["label"] = JsonValue::makeString(cs.label);
    cell.object["start_seed"] = JsonValue::makeNumber(static_cast<double>(cs.startSeed));
    cell.object["custom_runner"] = JsonValue::makeBool(static_cast<bool>(cs.run));
    JsonValue config = JsonValue::makeArray();
    for (auto& opt : describeOptions(cs.config)) {
      config.array.push_back(JsonValue::makeString(std::move(opt)));
    }
    cell.object["config"] = std::move(config);
    if (i < result.cells.size()) {
      // A failed cell carries its per-replica failure report in place of
      // aggregate/totals — a partial aggregate would read like a clean
      // (but skewed) result to downstream plotting.
      if (result.cells[i].failed()) {
        cell.object["failures"] = failuresJson(result.cells[i].failures);
        ++failedCells;
      } else {
        cell.object["aggregate"] = aggregateJson(result.cells[i].agg, spec.jsonSeries);
        cell.object["totals"] = totalsJson(result.cells[i].totals);
      }
    }
    cells.array.push_back(std::move(cell));
  }
  doc.object["failed_cells"] = JsonValue::makeNumber(failedCells);
  doc.object["cells"] = std::move(cells);
  return doc;
}

void writeArtifact(const ExperimentSpec& spec, const ExperimentResult& result,
                   const std::string& path) {
  const std::filesystem::path p{path};
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  // Write-to-temp + rename so a crash (or a second writer) mid-write can
  // never leave a truncated document where a previous good artifact was:
  // readers see either the old file or the complete new one.
  std::filesystem::path tmp{p};
  tmp += ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) throw std::runtime_error("cannot open artifact file: " + tmp.string());
    out << dumpJson(buildArtifact(spec, result));
    if (!out.flush()) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error("failed writing artifact file: " + tmp.string());
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, p, ec);
  if (ec) {
    std::error_code rmEc;
    std::filesystem::remove(tmp, rmEc);
    throw std::runtime_error("failed renaming artifact into place: " + path + ": " + ec.message());
  }
}

}  // namespace rcsim::exp
