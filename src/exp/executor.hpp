#pragma once

// Barrier-free sweep execution. Historically every (protocol, degree) cell
// was its own runMany() fork/join: threads were capped at the cell's
// replica count and every cell ended in a join barrier, so a 56-cell
// figure sweep spent most of its wall time waiting on each cell's slowest
// replica. The SweepExecutor instead flattens ALL (cell, seed) replicas of
// an experiment into one work queue drained by a persistent thread pool —
// the only synchronization point is experiment completion.
//
// Determinism: replica (cell c, index i) always simulates seed
// cell.startSeed + i and lands in results[c][i], so per-cell aggregates
// are bit-identical to serial per-cell runMany() no matter how the pool
// interleaves cells (verified by test_exp.cpp against core/fingerprint).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/cli.hpp"
#include "exp/spec.hpp"

namespace rcsim::exp {

class JournalWriter;
class JournalIndex;

/// Wall-clock limit parsing moved to core/cli.hpp (shared by every CLI);
/// re-exported here so existing exp:: callers keep compiling.
using rcsim::cli::parseWallLimitSeconds;

/// Retry policy for failed replicas: a replica gets `maxAttempts` total
/// tries with exponential backoff between them (backoffBaseSec doubling
/// per retry, capped at backoffMaxSec); a replica that fails its last
/// attempt is quarantined into its cell's failure report with the full
/// per-attempt error trail. maxAttempts <= 1 disables retry.
struct RetryPolicy {
  int maxAttempts = 2;
  double backoffBaseSec = 0.05;
  double backoffMaxSec = 2.0;
};

/// Live progress snapshot of a job, for heartbeat/progress reporting.
/// The anatomy counters accumulate as replicas complete (successful runs
/// only), so a long sweep's heartbeat shows convergence episodes and drop
/// attribution while it runs.
struct JobProgress {
  std::size_t total = 0;      ///< cells x runs replicas
  std::size_t completed = 0;  ///< replicas finished (run, resumed or failed)
  std::uint64_t episodes = 0;        ///< convergence episodes so far
  std::uint64_t dropsLoop = 0;       ///< loop-attributed data drops so far
  std::uint64_t dropsBlackhole = 0;  ///< black-hole-attributed drops so far
  std::uint64_t dropsTtl = 0;        ///< plain TTL drops so far
  std::uint64_t dropsQueue = 0;      ///< queue-overflow drops so far
};

/// Per-job wiring for durability and resume. Both pointers are borrowed
/// and must outlive the job.
struct JobOptions {
  RetryPolicy retry{};
  /// Append one CRC-guarded record per completed replica (success or
  /// quarantine) and fsync before the replica counts as done.
  JournalWriter* journal = nullptr;
  /// Fold journaled successes instead of re-running them; only missing
  /// and previously-quarantined replicas execute.
  const JournalIndex* resume = nullptr;
};

class SweepExecutor {
 public:
  /// threads <= 0 picks defaultThreadCount() (env RCSIM_THREADS, else
  /// hardware concurrency). Threads are spawned once and reused across
  /// every experiment submitted to this executor.
  explicit SweepExecutor(int threads = 0);
  ~SweepExecutor();

  SweepExecutor(const SweepExecutor&) = delete;
  SweepExecutor& operator=(const SweepExecutor&) = delete;

  class Job;

  /// Enqueue every (cell, seed) replica of `spec`. Returns immediately;
  /// several experiments may be in flight at once (FIFO between them), so
  /// a multi-experiment sweep never drains the pool between experiments.
  /// The spec must outlive the job (registry specs are static).
  /// `options` wires the retry policy, the durable journal, and the
  /// resume index for this job.
  [[nodiscard]] std::shared_ptr<Job> submit(const ExperimentSpec& spec, int runs,
                                            JobOptions options = {});

  /// Block until `job` finishes and return its aggregated result.
  [[nodiscard]] ExperimentResult finish(const std::shared_ptr<Job>& job);

  /// Convenience: submit + finish.
  [[nodiscard]] ExperimentResult execute(const ExperimentSpec& spec, int runs);

  [[nodiscard]] int threadCount() const { return static_cast<int>(workers_.size()); }

  /// Lock-free progress snapshot of an in-flight (or finished) job; safe
  /// to poll from any thread (the heartbeat in rcsim_bench does).
  [[nodiscard]] static JobProgress progress(const std::shared_ptr<Job>& job);

  /// Wall-clock budget per replica, in seconds (<= 0 disables, the
  /// default). A replica that overruns is aborted via watchdog::Timeout
  /// and recorded in its cell's failure report; the rest of the sweep is
  /// untouched. Also settable via env RCSIM_REPLICA_WATCHDOG_SEC (the
  /// constructor reads it; this setter overrides). Applies to jobs
  /// submitted after the call.
  void setReplicaWallLimit(double seconds) { replicaWallLimitSec_ = seconds; }
  [[nodiscard]] double replicaWallLimit() const { return replicaWallLimitSec_; }

  /// Graceful drain (the SIGINT/SIGTERM path): stop claiming new
  /// replicas, let in-flight ones finish and journal, then mark every
  /// unfinished job done so finish() returns its partial result. Safe to
  /// call from any thread (but NOT from a signal handler — set a flag
  /// there and call this from a normal thread). Irreversible.
  void requestCancel();
  [[nodiscard]] bool cancelRequested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

 private:
  void workerLoop();
  void runReplica(Job& job, std::size_t item);
  void journalReplica(Job& job, std::size_t cell, std::size_t rep, bool ok);
  /// Sleep the exponential-backoff delay before retry `attempt` + 1,
  /// polling for cancellation; returns false when the retry should be
  /// abandoned because the executor is draining.
  [[nodiscard]] bool backoffBeforeRetry(const RetryPolicy& policy, int attempt);
  void markDoneLocked(Job& job);

  double replicaWallLimitSec_ = 0.0;
  std::atomic<bool> cancel_{false};
  std::mutex mu_;
  std::condition_variable work_;
  std::condition_variable done_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace rcsim::exp
