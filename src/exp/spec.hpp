#pragma once

// Declarative experiment descriptions. An ExperimentSpec is data: a name,
// a grid of cells (each one ScenarioConfig to be replicated over seeds)
// and a render function that prints the paper-style console tables. The
// SweepExecutor (exp/executor.hpp) runs specs; the registry
// (exp/registry.hpp) makes them discoverable by name; exp/artifact.hpp
// turns results into machine-readable JSON.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/json_lite.hpp"
#include "core/runner.hpp"

namespace rcsim::exp {

/// One grid cell: a fully-specified scenario replicated over seeds
/// startSeed .. startSeed+runs-1. `run` defaults to runScenario; cells
/// that need extra wiring (churn injectors, custom failure schedules)
/// install their own runner and still return a plain RunResult.
struct CellSpec {
  std::string id;     ///< unique within the experiment, e.g. "RIP/degree=3"
  std::string label;  ///< short column/row label for console tables
  ScenarioConfig config;
  std::uint64_t startSeed = 1;
  std::function<RunResult(const ScenarioConfig&)> run;  ///< empty = runScenario
};

/// Exact sums over a cell's replicas for the counters Aggregate does not
/// carry. Sums (not means) so renderers can reproduce the historical
/// bench output bit-for-bit regardless of how they normalize.
struct CellStats {
  double sent = 0.0;                         ///< whole-run packets originated
  double delivered = 0.0;                    ///< whole-run data.delivered
  double dropNoRoute = 0.0;                  ///< whole-run data.dropNoRoute
  double dropQueue = 0.0;                    ///< whole-run data.dropQueue
  double controlMessages = 0.0;
  double controlBytes = 0.0;
  double controlMessagesAfterFailure = 0.0;
  double tcpGoodputPackets = 0.0;
  double tcpRetransmissions = 0.0;
  double transportRetransmissions = 0.0;
  double transportSessionResets = 0.0;

  [[nodiscard]] static CellStats over(const std::vector<RunResult>& results);
};

/// One replica that exhausted every retry attempt without producing a
/// RunResult: the seed it simulated, the final exception text, and the
/// full per-attempt error trail. Carried in the cell's failure report so
/// the artifact records exactly which replicas died, how often they were
/// retried, and why each attempt failed.
struct ReplicaFailure {
  std::uint64_t seed = 0;
  std::string error;                  ///< last attempt's error
  std::vector<std::string> attempts;  ///< error per attempt, oldest first
};

/// Route-table snapshot digests of one replica (RunResult::fibDigestBefore/
/// After), kept per seed so the artifact can show whether the network
/// reconverged to the pre-fault tables or settled on different routes.
struct SnapshotDigests {
  std::uint64_t seed = 0;
  std::string before;  ///< empty on fault-free runs
  std::string after;
};

/// A replica that failed at least once but succeeded on a retry. Its
/// RunResult folds into the aggregate exactly like a first-try success;
/// only the error trail of the failed attempts is kept for the artifact.
struct ReplicaRetry {
  std::uint64_t seed = 0;
  std::vector<std::string> attempts;  ///< errors of the failed attempts
};

/// Everything one executed cell produced, aggregated. Raw RunResults are
/// folded in seed order (bit-identical to serial runMany) and released as
/// soon as the cell completes, so a 100-replica sweep never holds more
/// than the in-flight cells' worth of per-second series.
///
/// If any replica threw, `failures` is non-empty and agg/totals are left
/// default-constructed: a partial aggregate over surviving seeds would
/// silently skew every mean, so a failed cell carries diagnostics only.
struct CellResult {
  Aggregate agg;
  CellStats totals;
  std::vector<ReplicaFailure> failures;  ///< seed order; empty = healthy cell
  std::vector<ReplicaRetry> retries;     ///< seed order; retried-then-successful replicas
  std::vector<SnapshotDigests> snapshots;  ///< seed order; per-replica FIB digests
  /// Convergence-anatomy rollup summed over replicas in seed order (so
  /// serial == pooled execution is bit-identical; anatomyDigest pins it).
  /// All-zero when the cell's runs carried no analyzer.
  obs::AnatomySummary convergence;

  [[nodiscard]] bool failed() const { return !failures.empty(); }
};

/// A finished experiment: one CellResult per CellSpec, in spec order.
struct ExperimentResult {
  int runs = 0;
  int threads = 0;
  double wallSeconds = 0.0;
  std::vector<CellResult> cells;
  /// Sweep profile published by the executor (obs::MetricsRegistry JSON:
  /// replica wall time, journal fsync latency, scheduler totals). Null
  /// when the result did not come from a SweepExecutor job.
  JsonValue metrics;
};

struct ExperimentSpec {
  std::string name;         ///< registry key and artifact basename, e.g. "fig3_drops"
  std::string title;        ///< banner headline, e.g. "Figure 3: packet drops due to no route"
  std::string description;  ///< one line for `rcsim_bench --list`
  int defaultRuns = 10;     ///< replicas when RCSIM_RUNS/--runs are absent
  int paperRuns = 100;      ///< replicas the checked-in results/ tables use
  bool jsonSeries = false;  ///< include per-second series in the JSON artifact
  std::vector<CellSpec> cells;
  /// Print the experiment's console tables from the aggregates — stdout
  /// only, byte-compatible with the pre-registry bench binaries.
  std::function<void(const ExperimentSpec&, const ExperimentResult&)> render;
};

}  // namespace rcsim::exp
