#include "exp/spec.hpp"

namespace rcsim::exp {

CellStats CellStats::over(const std::vector<RunResult>& results) {
  CellStats s;
  for (const auto& r : results) {
    s.sent += static_cast<double>(r.sent);
    s.delivered += static_cast<double>(r.data.delivered);
    s.dropNoRoute += static_cast<double>(r.data.dropNoRoute);
    s.dropQueue += static_cast<double>(r.data.dropQueue);
    s.controlMessages += static_cast<double>(r.controlMessages);
    s.controlBytes += static_cast<double>(r.controlBytes);
    s.controlMessagesAfterFailure += static_cast<double>(r.controlMessagesAfterFailure);
    s.tcpGoodputPackets += static_cast<double>(r.tcpGoodputPackets);
    s.tcpRetransmissions += static_cast<double>(r.tcpRetransmissions);
    s.transportRetransmissions += static_cast<double>(r.transportRetransmissions);
    s.transportSessionResets += static_cast<double>(r.transportSessionResets);
  }
  return s;
}

}  // namespace rcsim::exp
