#pragma once

// Machine-readable result artifacts: one JSON document per executed
// experiment, carrying the canonical key=value config of every cell plus
// its aggregates — enough to re-plot or re-check a sweep without
// re-running it.

#include <string>

#include "core/json_lite.hpp"
#include "exp/spec.hpp"

namespace rcsim::exp {

/// Schema identifier stamped into every artifact ("schema" field).
inline constexpr const char* kArtifactSchema = "rcsim-experiment-v1";

/// Build the artifact document for one finished experiment. Per-second
/// series (throughput/mean delay) are included only when the spec opts in
/// via jsonSeries — they dominate the file size and only the time-series
/// figures need them.
[[nodiscard]] JsonValue buildArtifact(const ExperimentSpec& spec, const ExperimentResult& result);

/// dumpJson(buildArtifact(...)) written to `path`; creates parent
/// directories. The write is atomic AND durable (temp file + fsync +
/// rename + directory fsync), so an existing artifact is never left
/// truncated by a crash mid-write and a crash right after a reported
/// success cannot roll it back. Throws std::runtime_error if the file
/// cannot be written.
void writeArtifact(const ExperimentSpec& spec, const ExperimentResult& result,
                   const std::string& path);

}  // namespace rcsim::exp
