#include "exp/registry.hpp"

#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "exp/specs.hpp"

namespace rcsim::exp {

namespace {

std::vector<ExperimentSpec>& specs() {
  static std::vector<ExperimentSpec> registry;
  return registry;
}

}  // namespace

void registerExperiment(ExperimentSpec spec) {
  if (spec.name.empty()) throw std::invalid_argument("experiment spec needs a name");
  if (findExperiment(spec.name) != nullptr) {
    throw std::invalid_argument("duplicate experiment name: " + spec.name);
  }
  std::unordered_set<std::string> ids;
  for (const auto& cell : spec.cells) {
    if (!ids.insert(cell.id).second) {
      throw std::invalid_argument("experiment " + spec.name + ": duplicate cell id " + cell.id);
    }
  }
  specs().push_back(std::move(spec));
}

const std::vector<ExperimentSpec>& allExperiments() { return specs(); }

const ExperimentSpec* findExperiment(const std::string& name) {
  for (const auto& spec : specs()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

void registerBuiltinExperiments() {
  static const bool once = [] {
    registerFigureExperiments();
    registerAblationExperiments();
    registerExtensionExperiments();
    registerAppendixExperiments();
    return true;
  }();
  (void)once;
}

}  // namespace rcsim::exp
