// Appendix benches as registered experiment specs: routing overhead and
// the load sweep that validates the paper's "unloaded network" claim.

#include <cstdio>
#include <string>

#include "exp/registry.hpp"
#include "exp/specs.hpp"
#include "exp/specs_common.hpp"

namespace rcsim::exp {
namespace {

// Routing load: control messages and bytes per protocol, total and
// during the convergence episode (Shankar et al.'s axis).
void registerOverhead() {
  ExperimentSpec spec;
  spec.name = "appendix_overhead";
  spec.title = "Appendix: routing protocol overhead";
  spec.description = "control messages/bytes per protocol, total and post-failure";
  spec.paperRuns = 30;
  const std::vector<int> degrees{4, 8};
  const std::vector<ProtocolKind> protocols{ProtocolKind::Rip, ProtocolKind::Dbf,
                                            ProtocolKind::Bgp, ProtocolKind::Bgp3,
                                            ProtocolKind::LinkState};
  for (const int degree : degrees) {
    for (const auto kind : protocols) {
      CellSpec cell;
      cell.id = std::string{toString(kind)} + "/degree=" + std::to_string(degree);
      cell.label = toString(kind);
      cell.config = baseConfig();
      cell.config.protocol = kind;
      cell.config.mesh.degree = degree;
      spec.cells.push_back(std::move(cell));
    }
  }
  spec.render = [degrees, protocols](const ExperimentSpec&, const ExperimentResult& res) {
    const double runs = res.runs;
    for (std::size_t g = 0; g < degrees.size(); ++g) {
      report::header("Routing overhead, degree " + std::to_string(degrees[g]),
                     "whole 800 s run incl. warm-up; convergence = after the failure");
      std::printf("%-6s %14s %14s %20s\n", "proto", "ctl-msgs", "ctl-KB", "ctl-msgs-converg.");
      for (std::size_t p = 0; p < protocols.size(); ++p) {
        const CellStats& t = res.cells[g * protocols.size() + p].totals;
        std::printf("%-6s %14.0f %14.1f %20.0f\n", toString(protocols[p]),
                    t.controlMessages / runs, t.controlBytes / runs / 1024.0,
                    t.controlMessagesAfterFailure / runs);
      }
    }
    std::printf("\nReading: RIP/DBF pay a constant periodic tax; BGP pays per change plus\n"
                "transport ACKs; LS pays per LSA refresh and per failure. The convergence\n"
                "column shows the burst each failure triggers — the paper's \"good balance\n"
                "between convergence overhead and convergence time\" trade-off.\n");
  };
  registerExperiment(std::move(spec));
}

// Load sensitivity: sweep the CBR rate until queueing losses appear,
// separating convergence-caused drops from congestion-caused drops.
void registerLoad() {
  ExperimentSpec spec;
  spec.name = "appendix_load";
  spec.title = "Appendix: load sweep";
  spec.description = "CBR rate sweep: where do queue drops start to matter?";
  spec.defaultRuns = 5;
  spec.paperRuns = 10;
  const std::vector<double> rates{20, 200, 800, 1200, 1500};
  for (const double rate : rates) {
    CellSpec cell;
    cell.id = "rate=" + std::to_string(static_cast<int>(rate));
    cell.label = cell.id;
    cell.config = baseConfig();
    cell.config.protocol = ProtocolKind::Dbf;
    cell.config.mesh.degree = 4;
    cell.config.packetsPerSecond = rate;
    cell.config.tracePackets = false;  // keep the hot path lean at high rates
    spec.cells.push_back(std::move(cell));
  }
  spec.render = [rates](const ExperimentSpec&, const ExperimentResult& res) {
    const double runs = res.runs;
    report::header("Load sweep", "DBF, degree 4; 10 Mb/s links, 1000 B packets, queue 20");
    std::printf("%12s %14s %14s %14s %14s\n", "rate(pkt/s)", "delivered", "no-route",
                "queue-drop", "link-util");
    for (std::size_t i = 0; i < rates.size(); ++i) {
      const CellStats& t = res.cells[i].totals;
      // One 1000 B packet at 10 Mb/s occupies the bottleneck 0.8 ms.
      const double util = rates[i] * 1000.0 * 8.0 / 10e6;
      std::printf("%12.0f %14.1f %14.2f %14.2f %13.0f%%\n", rates[i], t.delivered / runs,
                  t.dropNoRoute / runs, t.dropQueue / runs, 100.0 * util);
    }
    std::printf("\nReading: at the paper's 20 pkt/s (1.6%% utilization) every loss is\n"
                "convergence-caused; queue drops only appear as the bottleneck link\n"
                "saturates (>100%% utilization), validating the paper's claim that the\n"
                "exact link parameters have little impact on the comparative results.\n");
  };
  registerExperiment(std::move(spec));
}

}  // namespace

void registerAppendixExperiments() {
  registerOverhead();
  registerLoad();
}

}  // namespace rcsim::exp
