#pragma once

// The built-in experiment suite — every figure, ablation, extension and
// appendix of the reproduction as registered ExperimentSpecs. Split by
// family; call registerBuiltinExperiments() (exp/registry.hpp) to get all
// of them. Registration order mirrors scripts/regenerate_results.sh.

namespace rcsim::exp {

void registerFigureExperiments();     // fig3..fig7, headline_table
void registerAblationExperiments();   // ablation_mrai .. ablation_splithorizon
void registerExtensionExperiments();  // ext_tcp .. ext_churn
void registerAppendixExperiments();   // appendix_overhead, appendix_load

}  // namespace rcsim::exp
