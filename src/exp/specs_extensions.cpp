// Extensions E1..E6 as registered experiment specs. E4's Tdown part and
// E6 need more than runScenario (a custom failure schedule, a churn
// injector), so their cells install custom run functions; everything else
// is plain declarative grid.

#include <cstdio>
#include <functional>
#include <string>

#include "core/churn.hpp"
#include "exp/registry.hpp"
#include "exp/specs.hpp"
#include "exp/specs_common.hpp"

namespace rcsim::exp {
namespace {

// E1 — end-to-end TCP performance during convergence: a fixed-window
// reliable transfer whose data AND acks ride the routed data plane.
void registerTcp() {
  ExperimentSpec spec;
  spec.name = "ext_tcp";
  spec.title = "Extension E1: TCP goodput through convergence";
  spec.description = "fixed-window reliable flow (data + acks routed) through one failure";
  spec.paperRuns = 20;
  const std::vector<int> degrees{3, 6};
  for (const int degree : degrees) {
    for (const auto kind : kPaperProtocols) {
      CellSpec cell;
      cell.id = std::string{toString(kind)} + "/degree=" + std::to_string(degree);
      cell.label = toString(kind);
      cell.config = baseConfig();
      cell.config.protocol = kind;
      cell.config.mesh.degree = degree;
      cell.config.traffic = TrafficKind::Tcp;
      cell.config.tcpWindow = 8;
      spec.cells.push_back(std::move(cell));
    }
  }
  spec.render = [degrees](const ExperimentSpec&, const ExperimentResult& res) {
    const double runs = res.runs;
    for (std::size_t g = 0; g < degrees.size(); ++g) {
      report::header("Extension E1, degree " + std::to_string(degrees[g]),
                     "TCP-like flow through one link failure");
      std::printf("%-6s %16s %16s %16s %16s\n", "proto", "goodput-pkts", "retransmissions",
                  "rt-conv(s)", "fwd-conv(s)");
      for (std::size_t p = 0; p < kPaperProtocols.size(); ++p) {
        const CellResult& c = res.cells[g * kPaperProtocols.size() + p];
        std::printf("%-6s %16.1f %16.1f %16.2f %16.2f\n", toString(kPaperProtocols[p]),
                    c.totals.tcpGoodputPackets / runs, c.totals.tcpRetransmissions / runs,
                    c.agg.routingConvergenceSec, c.agg.forwardingConvergenceSec);
      }
    }
    std::printf("\nReading: protocols that black-hole (RIP) stall the window for the whole\n"
                "switch-over; protocols with alternate paths keep the ACK clock ticking, so\n"
                "goodput barely dips and retransmissions stay near zero in dense meshes.\n");
  };
  registerExperiment(std::move(spec));
}

// E2 — multiple flows and multiple overlapping failures: failure k hits
// flow (k mod flows)'s then-current path 5 s after failure k-1.
void registerMultifailure() {
  ExperimentSpec spec;
  spec.name = "ext_multifailure";
  spec.title = "Extension E2: multiple flows, overlapping failures";
  spec.description = "4 flows, 1/2/4 staggered failures, drops summed over flows";
  spec.paperRuns = 15;
  const std::vector<int> degrees{4, 6};
  const std::vector<int> failureCounts{1, 2, 4};
  for (const int degree : degrees) {
    for (const auto kind : kPaperProtocols) {
      for (const int fc : failureCounts) {
        CellSpec cell;
        cell.id = std::string{toString(kind)} + "/degree=" + std::to_string(degree) +
                  "/failures=" + std::to_string(fc);
        cell.label = toString(kind);
        cell.config = baseConfig();
        cell.config.protocol = kind;
        cell.config.mesh.degree = degree;
        cell.config.flows = 4;
        cell.config.failureCount = fc;
        cell.config.failureSpacing = Time::seconds(5.0);
        spec.cells.push_back(std::move(cell));
      }
    }
  }
  spec.render = [degrees, failureCounts](const ExperimentSpec&, const ExperimentResult& res) {
    const std::size_t perDegree = kPaperProtocols.size() * failureCounts.size();
    for (std::size_t g = 0; g < degrees.size(); ++g) {
      report::header("Extension E2, degree " + std::to_string(degrees[g]),
                     "4 flows; drops summed over all flows during convergence");
      std::printf("%-6s", "proto");
      for (const int fc : failureCounts) std::printf("   %2d-failure(s)", fc);
      std::printf("   %12s\n", "rt-conv@4");
      for (std::size_t p = 0; p < kPaperProtocols.size(); ++p) {
        std::printf("%-6s", toString(kPaperProtocols[p]));
        double lastConv = 0;
        for (std::size_t f = 0; f < failureCounts.size(); ++f) {
          const Aggregate& a =
              res.cells[g * perDegree + p * failureCounts.size() + f].agg;
          std::printf("   %12.2f", a.dropsNoRoute + a.dropsTtl);
          lastConv = a.routingConvergenceSec;
        }
        std::printf("   %12.2f\n", lastConv);
      }
    }
    std::printf("\nReading: losses grow roughly with the number of failures; the alternate-\n"
                "path protocols degrade gracefully while RIP multiplies its black-hole\n"
                "windows. Convergence time stretches as episodes overlap.\n");
  };
  registerExperiment(std::move(spec));
}

// E3 — regular meshes vs connected random graphs with matched node count
// and average degree.
void registerRandomTopo() {
  ExperimentSpec spec;
  spec.name = "ext_random_topo";
  spec.title = "Extension E3: regular mesh vs random graph";
  spec.description = "do the findings survive on random graphs with matched degree?";
  spec.defaultRuns = 20;
  spec.paperRuns = 30;
  const std::vector<int> degrees{4, 6, 8};
  for (const bool randomTopo : {false, true}) {
    for (const auto kind : kPaperProtocols) {
      for (const int d : degrees) {
        CellSpec cell;
        cell.id = std::string{randomTopo ? "random" : "mesh"} + "/" + toString(kind) +
                  "/degree=" + std::to_string(d);
        cell.label = toString(kind);
        cell.config = baseConfig();
        cell.config.protocol = kind;
        if (randomTopo) {
          cell.config.topology = TopologyKind::Random;
          cell.config.random.nodes = 49;
          cell.config.random.avgDegree = d;
        } else {
          cell.config.mesh.degree = d;
        }
        spec.cells.push_back(std::move(cell));
      }
    }
  }
  spec.render = [degrees](const ExperimentSpec&, const ExperimentResult& res) {
    const std::size_t rows = kPaperProtocols.size();
    const std::size_t cols = degrees.size();
    for (int group = 0; group < 2; ++group) {
      report::header(std::string{"Extension E3, "} + (group ? "random graphs" : "regular meshes"),
                     "49 nodes; drops due to no route during convergence");
      const std::size_t base = static_cast<std::size_t>(group) * rows * cols;
      report::degreeSweep("no-route drops", degrees, names(kPaperProtocols),
                          matrix(res, base, rows, cols,
                                 [](const CellResult& c) { return c.agg.dropsNoRoute; }));
      report::degreeSweep("TTL expirations", degrees, names(kPaperProtocols),
                          matrix(res, base, rows, cols,
                                 [](const CellResult& c) { return c.agg.dropsTtl; }));
    }
    std::printf("\nReading: the ordering (RIP >> DBF/BGP3, BGP worst for loops) holds on\n"
                "random graphs; random graphs are noisier because a single failure can hit\n"
                "a bridge-like edge that a regular mesh never has.\n");
  };
  registerExperiment(std::move(spec));
}

/// E4's Tdown part: disconnect the destination entirely (fail every link
/// of the receiver's router at t=failAt) and time until all routes are
/// withdrawn network-wide. Traffic stops at the failure — this measures
/// routing, not delivery.
RunResult runTdown(const ScenarioConfig& cfg) {
  Scenario sc{cfg};
  sc.stats().routeLog().setWatermark(cfg.failAt);
  Network& net = sc.network();
  const NodeId victim = sc.receiver();
  sc.scheduler().scheduleAt(cfg.failAt, EventKind::Fault, [&net, victim] {
    for (const NodeId nb : net.node(victim).neighbors()) {
      net.findLink(victim, nb)->fail();
    }
  });
  sc.run();
  RunResult r;
  r.protocol = cfg.protocol;
  r.degree = cfg.mesh.degree;
  r.seed = cfg.seed;
  r.routingConvergenceSec = sc.stats().routeLog().convergenceSeconds();
  return r;
}

// E4 — consistency assertions (the paper's ref [21], Pei et al.): Tshort
// grid first, then the Tdown slow-convergence case where [21] reports the
// big win.
void registerAssertions() {
  ExperimentSpec spec;
  spec.name = "ext_assertions";
  spec.title = "Extension E4: BGP consistency assertions";
  spec.description = "BGP/BGP3 with and without consistency assertions; Tshort and Tdown";
  spec.paperRuns = 15;
  const std::vector<int> degrees{3, 4, 5, 6};
  struct Variant {
    const char* name;
    ProtocolKind kind;
    bool assertions;
  };
  const std::vector<Variant> variants{
      {"BGP", ProtocolKind::Bgp, false},
      {"BGP+asrt", ProtocolKind::Bgp, true},
      {"BGP3", ProtocolKind::Bgp3, false},
      {"BGP3+asrt", ProtocolKind::Bgp3, true},
  };
  std::vector<std::string> labels;
  for (const auto& v : variants) {
    labels.emplace_back(v.name);
    addDegreeRow(spec.cells, v.name, degrees, [v](ScenarioConfig& cfg) {
      cfg.protocol = v.kind;
      cfg.protoCfg.bgp.consistencyAssertions = v.assertions;
    });
  }
  for (const auto& v : variants) {
    for (const int d : degrees) {
      CellSpec cell;
      cell.id = std::string{"Tdown/"} + v.name + "/degree=" + std::to_string(d);
      cell.label = v.name;
      cell.config = baseConfig();
      cell.config.protocol = v.kind;
      cell.config.mesh.degree = d;
      cell.config.protoCfg.bgp.consistencyAssertions = v.assertions;
      cell.config.injectFailure = false;  // runTdown injects the node-isolating cut
      cell.config.trafficStop = cell.config.failAt;
      cell.config.endAt = Time::seconds(1600.0);  // plain BGP explores for many MRAIs
      cell.run = runTdown;
      spec.cells.push_back(std::move(cell));
    }
  }
  spec.render = [degrees, labels, variants](const ExperimentSpec&, const ExperimentResult& res) {
    const auto rows = labels.size();
    const auto cols = degrees.size();
    report::header("Extension E4", "packet drops due to no route");
    report::degreeSweep("packets", degrees, labels,
                        matrix(res, 0, rows, cols,
                               [](const CellResult& c) { return c.agg.dropsNoRoute; }));
    report::header("Extension E4", "TTL expirations (transient loops)");
    report::degreeSweep("packets", degrees, labels,
                        matrix(res, 0, rows, cols,
                               [](const CellResult& c) { return c.agg.dropsTtl; }));
    report::header("Extension E4", "network routing convergence time");
    report::degreeSweep("seconds", degrees, labels,
                        matrix(res, 0, rows, cols, [](const CellResult& c) {
                          return c.agg.routingConvergenceSec;
                        }));
    report::header("Extension E4, Tdown", "receiver disconnected; time until all routes gone");
    std::printf("%-10s", "variant");
    for (const int d : degrees) std::printf("   degree-%-5d", d);
    std::printf("(seconds)\n");
    const std::size_t tdownBase = rows * cols;
    for (std::size_t v = 0; v < variants.size(); ++v) {
      std::printf("%-10s", variants[v].name);
      for (std::size_t c = 0; c < cols; ++c) {
        std::printf("   %12.2f", res.cells[tdownBase + v * cols + c].agg.routingConvergenceSec);
      }
      std::printf("\n");
    }
  };
  registerExperiment(std::move(spec));
}

// E5 — DUAL (diffusing computations) vs the DV/PV family: hard
// loop-freedom traded against route freezes.
void registerDual() {
  ExperimentSpec spec;
  spec.name = "ext_dual";
  spec.title = "Extension E5: DUAL vs DV/PV family";
  spec.description = "loop-free DUAL vs DBF/BGP3: black-holes, loops, convergence";
  spec.defaultRuns = 20;
  spec.paperRuns = 30;
  const std::vector<int> degrees{3, 4, 5, 6, 8};
  const std::vector<ProtocolKind> kinds{ProtocolKind::Dbf, ProtocolKind::Bgp3,
                                        ProtocolKind::Dual};
  for (const auto kind : kinds) {
    addDegreeRow(spec.cells, toString(kind), degrees,
                 [kind](ScenarioConfig& cfg) { cfg.protocol = kind; });
  }
  spec.render = [degrees, kinds](const ExperimentSpec&, const ExperimentResult& res) {
    const auto labels = names(kinds);
    const auto rows = labels.size();
    const auto cols = degrees.size();
    report::header("Extension E5", "packet drops due to no route (black-holes)");
    report::degreeSweep("packets", degrees, labels,
                        matrix(res, 0, rows, cols,
                               [](const CellResult& c) { return c.agg.dropsNoRoute; }));
    report::header("Extension E5", "TTL expirations (loops — must be 0 for DUAL)");
    report::degreeSweep("packets", degrees, labels,
                        matrix(res, 0, rows, cols,
                               [](const CellResult& c) { return c.agg.dropsTtl; }));
    report::header("Extension E5", "network routing convergence time");
    report::degreeSweep("seconds", degrees, labels,
                        matrix(res, 0, rows, cols, [](const CellResult& c) {
                          return c.agg.routingConvergenceSec;
                        }));
    std::printf("\nReading: DUAL's freeze window is only as long as its diffusion, and a\n"
                "diffusion over millisecond links completes in milliseconds — so the\n"
                "delivery cost the paper attributes to loop-free algorithms (§2) barely\n"
                "materializes here; DUAL pairs DBF-grade switch-over with hard\n"
                "loop-freedom. The paper's critique presumes slow diffusions (realistic\n"
                "for WAN latencies and large diameters); scale the topology or delays up\n"
                "and the freeze tax returns.\n");
  };
  registerExperiment(std::move(spec));
}

/// E6's cell runner: every link flaps with exponential up/down times for
/// the whole traffic window; the single surgical failure is replaced by
/// the injector.
RunResult runChurn(const ScenarioConfig& cfg) {
  Scenario sc{cfg};
  ChurnInjector::Config churnCfg;
  churnCfg.start = cfg.trafficStart;
  churnCfg.stop = cfg.trafficStop;
  ChurnInjector churn{sc.network(), Rng{cfg.seed * 7919 + 13}, churnCfg};
  churn.install();
  sc.run();
  RunResult r;
  r.protocol = cfg.protocol;
  r.degree = cfg.mesh.degree;
  r.seed = cfg.seed;
  r.sent = sc.packetsSent();
  r.data = sc.stats().data();
  return r;
}

// E6 — availability under continuous churn: long-run delivery ratio with
// every link flapping (MTBF 120 s, MTTR 10 s).
void registerChurn() {
  ExperimentSpec spec;
  spec.name = "ext_churn";
  spec.title = "Extension E6: delivery ratio under link churn";
  spec.description = "long-run delivery ratio with every link flapping";
  spec.defaultRuns = 10;
  spec.paperRuns = 10;
  const std::vector<int> degrees{3, 4, 6, 8};
  const std::vector<ProtocolKind> kinds{ProtocolKind::Rip, ProtocolKind::Dbf,
                                        ProtocolKind::Bgp3, ProtocolKind::LinkState,
                                        ProtocolKind::Dual};
  for (const auto kind : kinds) {
    for (const int d : degrees) {
      CellSpec cell;
      cell.id = std::string{toString(kind)} + "/degree=" + std::to_string(d);
      cell.label = toString(kind);
      cell.config = baseConfig();
      cell.config.protocol = kind;
      cell.config.mesh.degree = d;
      cell.config.injectFailure = false;  // churn replaces the single failure
      cell.config.trafficStop = Time::seconds(790.0);
      cell.run = runChurn;
      spec.cells.push_back(std::move(cell));
    }
  }
  spec.render = [degrees, kinds](const ExperimentSpec&, const ExperimentResult& res) {
    const auto labels = names(kinds);
    report::header("Extension E6", "delivery ratio (%) with every link flapping "
                                   "(MTBF 120 s, MTTR 10 s)");
    report::degreeSweep("percent", degrees, labels,
                        matrix(res, 0, labels.size(), degrees.size(), [](const CellResult& c) {
                          return 100.0 * c.totals.delivered / c.totals.sent;
                        }));
    std::printf("\nReading: Baran's redundancy thesis in one table — every protocol climbs\n"
                "toward ~100%% as degree grows, but the event-driven protocols (LS's\n"
                "flood+SPF and DUAL's feasible-successor switch) get there at much lower\n"
                "connectivity than RIP, which re-pays its 30 s black-hole tax on every\n"
                "flap. The timer-paced protocols (DBF's 1-5 s damping, BGP3's 3 s MRAI)\n"
                "sit in between: each flap costs them a damping interval.\n");
  };
  registerExperiment(std::move(spec));
}

// E7 — declarative fault-plan severity ladder: the same (protocol, mesh)
// grid pushed through increasingly hostile FaultPlans, from a clean
// baseline to a crash under ambient loss. Everything is plain declarative
// config (fault-plan= round-trips through the artifact), no custom
// runners.
void registerFaultplan() {
  ExperimentSpec spec;
  spec.name = "ext_faultplan";
  spec.title = "Extension E7: delivery across a fault severity ladder";
  spec.description = "FaultPlan ladder: clean, link-fail, silent-fail, crash, partition, loss+crash";
  spec.defaultRuns = 5;
  spec.paperRuns = 15;

  // Nodes 0..20 = rows 0-2 of the 7x7 mesh: cutting them off separates
  // the sender (row 0) from the receiver (row 6). Node 24 is the center.
  std::string topHalf;
  for (int n = 0; n <= 20; ++n) {
    if (n != 0) topHalf += ',';
    topHalf += std::to_string(n);
  }
  struct Severity {
    std::string name;
    std::string plan;
  };
  const std::vector<Severity> severities{
      {"baseline", ""},
      {"link-fail", "400:fail:24-25;460:recover:24-25"},
      {"silent-fail", "399:detect:24-25:2000;400:fail:24-25;460:recover:24-25"},
      {"crash", "400:crash:24;460:restart:24"},
      {"partition", "400:partition:" + topHalf + ";460:heal:" + topHalf},
      {"loss+crash", "395:loss:*:0.02;400:crash:24;460:restart:24;500:loss:*:0"},
  };

  for (const auto kind : kPaperProtocols) {
    for (const auto& sev : severities) {
      CellSpec cell;
      cell.id = std::string{toString(kind)} + "/" + sev.name;
      cell.label = toString(kind);
      cell.config = baseConfig();
      cell.config.protocol = kind;
      cell.config.injectFailure = false;  // the plan is the whole fault schedule
      cell.config.faultPlan = fault::FaultPlan::parse(sev.plan);
      spec.cells.push_back(std::move(cell));
    }
  }

  spec.render = [severities](const ExperimentSpec&, const ExperimentResult& res) {
    const std::size_t cols = severities.size();
    report::header("Extension E7", "delivery ratio (%) across the fault severity ladder");
    std::printf("%-6s", "proto");
    for (const auto& sev : severities) std::printf("   %11s", sev.name.c_str());
    std::printf("\n");
    for (std::size_t p = 0; p < kPaperProtocols.size(); ++p) {
      std::printf("%-6s", toString(kPaperProtocols[p]));
      for (std::size_t s = 0; s < cols; ++s) {
        const CellStats& t = res.cells[p * cols + s].totals;
        std::printf("   %11.2f", t.sent > 0 ? 100.0 * t.delivered / t.sent : 0.0);
      }
      std::printf("\n");
    }
    report::header("Extension E7", "network routing convergence time (s)");
    std::printf("%-6s", "proto");
    for (const auto& sev : severities) std::printf("   %11s", sev.name.c_str());
    std::printf("\n");
    for (std::size_t p = 0; p < kPaperProtocols.size(); ++p) {
      std::printf("%-6s", toString(kPaperProtocols[p]));
      for (std::size_t s = 0; s < cols; ++s) {
        std::printf("   %11.2f", res.cells[p * cols + s].agg.routingConvergenceSec);
      }
      std::printf("\n");
    }
    std::printf("\nReading: the surgical link failure is the paper's experiment; the rest of\n"
                "the ladder stresses what it abstracts away. Silent failures stretch every\n"
                "protocol's outage by the detection gap; a crash is simultaneous failure of\n"
                "all the node's links plus total RIB loss at restart; the partition shows\n"
                "the no-route floor when no alternate path exists at any degree; ambient\n"
                "loss on top of a crash lengthens convergence for protocols that rely on\n"
                "per-message reliability (BGP's transport retransmits, DV's periodic\n"
                "refresh).\n");
  };
  registerExperiment(std::move(spec));
}

// E8 — real-world topologies: the paper's fail/reconverge scenario run by
// every protocol on loaded backbone graphs (the embedded named library,
// topo/loader.hpp) instead of the synthetic mesh family. Sender/receiver
// are seed-chosen router pairs, so replicas sample many backbone paths.
void registerRealTopo() {
  ExperimentSpec spec;
  spec.name = "ext_realtopo";
  spec.title = "Extension E8: real-world topologies (Abilene, NSFNET)";
  spec.description = "every protocol through one failure on loaded backbone graphs";
  spec.defaultRuns = 10;
  spec.paperRuns = 30;
  const std::vector<std::string> graphs{"abilene", "nsfnet"};
  const std::vector<ProtocolKind> kinds{ProtocolKind::Rip,  ProtocolKind::Dbf,
                                        ProtocolKind::Bgp,  ProtocolKind::Bgp3,
                                        ProtocolKind::LinkState, ProtocolKind::Dual};
  for (const auto& graph : graphs) {
    for (const auto kind : kinds) {
      CellSpec cell;
      cell.id = graph + "/" + toString(kind);
      cell.label = toString(kind);
      cell.config = baseConfig();
      cell.config.protocol = kind;
      cell.config.topology = TopologyKind::Named;
      cell.config.named.graph = graph;
      spec.cells.push_back(std::move(cell));
    }
  }
  spec.render = [graphs, kinds](const ExperimentSpec&, const ExperimentResult& res) {
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      report::header("Extension E8: " + graphs[g],
                     "one link failure on the loaded backbone graph");
      std::printf("%-6s %12s %12s %12s %12s %12s\n", "proto", "delivered%", "no-route",
                  "ttl-drops", "rt-conv(s)", "fwd-conv(s)");
      for (std::size_t p = 0; p < kinds.size(); ++p) {
        const CellResult& c = res.cells[g * kinds.size() + p];
        std::printf("%-6s %12.2f %12.2f %12.2f %12.2f %12.2f\n", toString(kinds[p]),
                    c.totals.sent > 0 ? 100.0 * c.totals.delivered / c.totals.sent : 0.0,
                    c.agg.dropsNoRoute, c.agg.dropsTtl, c.agg.routingConvergenceSec,
                    c.agg.forwardingConvergenceSec);
      }
    }
    std::printf("\nReading: real backbones are sparser than any paper mesh (average degree\n"
                "~2.5), so a single trunk failure more often removes the only short path —\n"
                "the black-hole protocols (RIP) pay their full timeout tax, while the\n"
                "alternate-path and loop-free families (LS, DUAL) ride it out. The mesh\n"
                "findings transfer: ordering is preserved, magnitudes are set by degree.\n");
  };
  registerExperiment(std::move(spec));
}

// E9 — hello-based failure detection and route-flap damping
// (docs/failure-detection.md). Part A sweeps the hello interval against
// the oracle detector: delivery degrades and reconvergence stretches as
// hellos slow down, because the dead interval *is* the black-hole window
// every protocol shares before its own convergence even starts. Part B
// drives a dense link-flap burst through damped and undamped
// configurations on topologies where each mechanism's real effect is
// visible: RFD suppressing a flapping ring link (the win), hold-down
// blocking a legitimate alternate (the cost), and hold-down smothering
// counting episodes on an alternate-free bridge (the loop-suppression
// payoff).
void registerDetection() {
  ExperimentSpec spec;
  spec.name = "ext_detection";
  spec.title = "Extension E9: failure detection latency and route-flap damping";
  spec.description = "delivery vs hello interval (vs oracle); flap burst with damping on/off";
  spec.defaultRuns = 5;
  spec.paperRuns = 15;

  const std::vector<ProtocolKind> kinds{ProtocolKind::Rip, ProtocolKind::Dbf,
                                        ProtocolKind::Bgp, ProtocolKind::LinkState,
                                        ProtocolKind::Dual};
  // 0 = oracle (hello off, 50 ms detect); otherwise the hello interval in
  // seconds with the dead interval at the conventional 3.5x.
  const std::vector<double> intervals{0.0, 0.5, 1.0, 2.0, 4.0};
  for (const auto kind : kinds) {
    for (const double iv : intervals) {
      CellSpec cell;
      const std::string ivName = iv == 0.0 ? "oracle" : "hello=" + std::to_string(iv).substr(0, 3);
      cell.id = std::string{toString(kind)} + "/" + ivName;
      cell.label = toString(kind);
      cell.config = baseConfig();
      cell.config.protocol = kind;
      if (iv > 0.0) {
        cell.config.hello.enabled = true;
        cell.config.hello.interval = Time::seconds(iv);
        cell.config.hello.dead = Time::seconds(3.5 * iv);
      }
      spec.cells.push_back(std::move(cell));
    }
  }

  // Part B: a dense link-flap burst (12 flaps, 6 s period: 3 s down,
  // 3 s up) through damped and undamped configurations, on topologies
  // chosen so each damping mechanism's actual effect shows:
  //   - BGP3 on an 8-ring whose pinned flow crosses the flapping link.
  //     RFD suppresses the flapping path after two flaps, parking the
  //     flow on the stable long way around — the clean damping win.
  //   - RIP on the same ring: hold-down refuses the legitimate alternate
  //     too, so the stability/availability trade's cost side shows.
  //   - RIP on a bridge (no alternate path) with split horizon off: every
  //     flap ignites a counting episode; hold-down suppresses the loops
  //     entirely (TTL losses go to zero).
  struct FlapPair {
    const char* name;
    ProtocolKind kind;
    std::function<void(ScenarioConfig&)> tweakBase;    ///< topology + protocol knobs
    std::function<void(ScenarioConfig&)> tweakDamped;  ///< damping on top
  };
  auto ring = [](ScenarioConfig& cfg) {
    cfg.topology = TopologyKind::Inline;
    cfg.inlineTopo.nodes = 8;
    cfg.inlineTopo.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {0, 7}};
    cfg.pinSrc = 0;
    cfg.pinDst = 3;
    cfg.faultPlan = fault::FaultPlan::parse("400:flapburst:1-2:12:6");
  };
  auto bridge = [](ScenarioConfig& cfg) {
    cfg.topology = TopologyKind::Inline;
    cfg.inlineTopo.nodes = 4;
    cfg.inlineTopo.edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}};
    cfg.pinSrc = 0;
    cfg.pinDst = 3;
    cfg.protoCfg.dv.splitHorizon = SplitHorizonMode::None;
    cfg.faultPlan = fault::FaultPlan::parse("400:flapburst:2-3:12:6");
  };
  const std::vector<FlapPair> flapPairs{
      {"BGP3/ring", ProtocolKind::Bgp3, ring,
       [](ScenarioConfig& cfg) { cfg.protoCfg.bgp.flapDampingEnabled = true; }},
      {"RIP/ring", ProtocolKind::Rip, ring,
       [](ScenarioConfig& cfg) { cfg.protoCfg.dv.holdDownSec = 2.0; }},
      {"RIP/bridge", ProtocolKind::Rip, bridge,
       [](ScenarioConfig& cfg) { cfg.protoCfg.dv.holdDownSec = 2.0; }},
  };
  for (const auto& pair : flapPairs) {
    for (const bool damped : {false, true}) {
      CellSpec cell;
      cell.id = std::string{"flap/"} + pair.name + (damped ? "/damped" : "/raw");
      cell.label = pair.name;
      cell.config = baseConfig();
      cell.config.protocol = pair.kind;
      cell.config.injectFailure = false;  // the flap burst is the whole schedule
      pair.tweakBase(cell.config);
      if (damped) pair.tweakDamped(cell.config);
      spec.cells.push_back(std::move(cell));
    }
  }

  std::vector<std::string> flapNames;
  flapNames.reserve(flapPairs.size());
  for (const auto& pair : flapPairs) flapNames.emplace_back(pair.name);

  spec.render = [kinds, intervals, flapNames](const ExperimentSpec&,
                                              const ExperimentResult& res) {
    const std::size_t cols = intervals.size();
    report::header("Extension E9, part A", "delivery ratio (%) vs hello interval");
    std::printf("%-6s", "proto");
    for (const double iv : intervals) {
      if (iv == 0.0) {
        std::printf("   %11s", "oracle");
      } else {
        std::printf("   hello=%4.1fs", iv);
      }
    }
    std::printf("\n");
    for (std::size_t p = 0; p < kinds.size(); ++p) {
      std::printf("%-6s", toString(kinds[p]));
      for (std::size_t c = 0; c < cols; ++c) {
        const CellStats& t = res.cells[p * cols + c].totals;
        std::printf("   %11.2f", t.sent > 0 ? 100.0 * t.delivered / t.sent : 0.0);
      }
      std::printf("\n");
    }
    report::header("Extension E9, part A", "forwarding reconvergence after failure (s)");
    std::printf("%-6s", "proto");
    for (const double iv : intervals) {
      if (iv == 0.0) {
        std::printf("   %11s", "oracle");
      } else {
        std::printf("   hello=%4.1fs", iv);
      }
    }
    std::printf("\n");
    for (std::size_t p = 0; p < kinds.size(); ++p) {
      std::printf("%-6s", toString(kinds[p]));
      for (std::size_t c = 0; c < cols; ++c) {
        std::printf("   %11.2f", res.cells[p * cols + c].agg.forwardingConvergenceSec);
      }
      std::printf("\n");
    }
    const std::size_t flapBase = kinds.size() * cols;
    report::header("Extension E9, part B",
                   "12-flap burst (3s down/3s up) of one pinned-path link; damping off vs on");
    std::printf("%-12s %11s %11s %11s %11s %9s %9s\n", "cell", "raw-deliv%", "dmp-deliv%",
                "raw-norte", "dmp-norte", "raw-ttl", "dmp-ttl");
    for (std::size_t p = 0; p < flapNames.size(); ++p) {
      const CellResult& raw = res.cells[flapBase + p * 2];
      const CellResult& damped = res.cells[flapBase + p * 2 + 1];
      std::printf("%-12s %11.2f %11.2f %11.2f %11.2f %9.2f %9.2f\n", flapNames[p].c_str(),
                  raw.totals.sent > 0 ? 100.0 * raw.totals.delivered / raw.totals.sent : 0.0,
                  damped.totals.sent > 0 ? 100.0 * damped.totals.delivered / damped.totals.sent
                                         : 0.0,
                  raw.agg.dropsNoRoute, damped.agg.dropsNoRoute, raw.agg.dropsTtl,
                  damped.agg.dropsTtl);
    }
    std::printf("\nReading: part A's delivery columns are monotone in the hello interval —\n"
                "before any protocol can converge it must first *notice*, and with a dead\n"
                "interval of 3.5x the hello period the notice time dwarfs the millisecond\n"
                "oracle. Part B shows both sides of the damping trade. BGP3/ring: RFD\n"
                "suppresses the flapping route after two flaps and parks the flow on the\n"
                "stable long path, delivering more with fewer no-route and loop drops —\n"
                "damping measurably suppresses flap-driven loss. RIP/ring: hold-down also\n"
                "refuses the *legitimate* alternate during the window, so where an\n"
                "alternate exists damping costs availability. RIP/bridge (no alternate,\n"
                "split horizon off): every flap re-ignites counting; hold-down converts\n"
                "all TTL (loop) losses into clean no-route drops — loop suppression is\n"
                "exactly what the mechanism buys.\n");
  };
  registerExperiment(std::move(spec));
}

}  // namespace

void registerExtensionExperiments() {
  registerTcp();
  registerMultifailure();
  registerRandomTopo();
  registerAssertions();
  registerDual();
  registerChurn();
  registerFaultplan();
  registerRealTopo();
  registerDetection();
}

}  // namespace rcsim::exp
