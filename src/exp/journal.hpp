#pragma once

// Durable run journal for sweep execution. Every completed (cell, seed)
// replica — a full RunResult snapshot on success, the per-attempt error
// trail on quarantine — is appended as one CRC-guarded JSONL record and
// fsynced before the executor moves on, so a crash, OOM kill or SIGKILL
// loses at most the replicas that were literally in flight. A resumed
// sweep (`rcsim_bench --resume=DIR`) folds journaled successes without
// re-running them; because the RunResult JSON round-trips every field
// bit-exactly, the resumed artifact's per-cell aggregateDigest matches an
// uninterrupted run's.
//
// Line format (one record per line, no record spans lines):
//
//   {"crc":"<8 hex>","rec":{...}}
//
// where "crc" is CRC-32 (the zlib polynomial) over the canonical compact
// serialization (dumpJsonLine) of the "rec" value. A torn tail line from
// a mid-write kill fails the CRC and is skipped on read; the writer also
// repairs a missing trailing newline on reopen so the next append cannot
// merge with torn bytes.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/digest.hpp"
#include "core/experiment.hpp"
#include "core/json_lite.hpp"

namespace rcsim::exp {

/// File appended inside the --journal directory.
inline constexpr const char* kJournalFileName = "journal.jsonl";

/// CRC framing hash, shared with the trace stream (core/digest.hpp);
/// re-exported here because the journal tests and format docs name it as
/// part of this module's contract.
using rcsim::crc32Hex;

/// Exact JSON image of a RunResult: every field, counters included, with
/// shortest-round-trip number formatting so fromJson(toJson(r)) has the
/// same runResultFingerprint as r (proven in test_journal.cpp).
[[nodiscard]] JsonValue runResultToJson(const RunResult& r);
[[nodiscard]] RunResult runResultFromJson(const JsonValue& v);

/// JSON image of a convergence-anatomy rollup (obs/anatomy.hpp), shared by
/// the journal (resume keeps the convergence block exact) and the artifact
/// writer's `convergence` block.
[[nodiscard]] JsonValue anatomySummaryToJson(const obs::AnatomySummary& s);
[[nodiscard]] obs::AnatomySummary anatomySummaryFromJson(const JsonValue& v);

/// One journaled replica.
struct JournalRecord {
  std::string experiment;    ///< spec name
  std::string cell;          ///< cell id within the experiment
  std::string configDigest;  ///< fnv1aHexDigest over the cell's canonical options
  std::uint64_t seed = 0;
  int attempt = 1;  ///< attempts consumed when the record was written
  bool ok = false;
  RunResult result;                 ///< valid when ok
  std::vector<std::string> errors;  ///< per-attempt trail when quarantined
};

/// Serialize to the single-line on-disk form (no trailing newline).
[[nodiscard]] std::string encodeJournalLine(const JournalRecord& rec);

/// Parse + CRC-check one line; additionally verifies the embedded
/// runResultDigest of ok records. Returns false (and leaves `out`
/// unspecified) on any corruption.
[[nodiscard]] bool decodeJournalLine(const std::string& line, JournalRecord& out);

/// Append-only writer: open once, one write+fsync per record. Thread-safe.
class JournalWriter {
 public:
  /// Creates `dir` (and fsyncs its entry) if needed; opens DIR/journal.jsonl
  /// in append mode, repairing a torn unterminated tail from a previous
  /// kill. Throws std::runtime_error on I/O failure.
  explicit JournalWriter(const std::string& dir);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Append one record and fsync. Throws std::runtime_error on failure.
  void append(const JournalRecord& rec);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::mutex mu_;
  std::string path_;
  int fd_ = -1;
};

struct JournalReadStats {
  std::size_t records = 0;  ///< valid records decoded
  std::size_t corrupt = 0;  ///< CRC-failed / torn / malformed lines skipped
};

/// Read every valid record from DIR/journal.jsonl; a missing file is an
/// empty journal, corrupt lines are counted and skipped.
[[nodiscard]] std::vector<JournalRecord> readJournal(const std::string& dir,
                                                     JournalReadStats* stats = nullptr);

/// Successful replicas keyed by (experiment, cell, configDigest, seed);
/// when a journal holds duplicates (e.g. a replica re-run across resumes)
/// the later record wins. Quarantined failures are deliberately NOT
/// indexed — resume re-runs them.
class JournalIndex {
 public:
  void add(const JournalRecord& rec);

  [[nodiscard]] static JournalIndex load(const std::string& dir,
                                         JournalReadStats* stats = nullptr);

  [[nodiscard]] const RunResult* find(const std::string& experiment, const std::string& cell,
                                      const std::string& configDigest, std::uint64_t seed) const;

  [[nodiscard]] std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<std::string, RunResult> map_;
};

}  // namespace rcsim::exp
