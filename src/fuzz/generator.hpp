#pragma once

// Seeded scenario generator: draws random-but-valid ScenarioConfigs from
// the full cross-product the simulator supports — topology family x
// protocol x traffic model x a multi-event fault plan. Every draw comes
// from one Rng, so a campaign seed reproduces the exact scenario stream.
//
// Validity matters: the fault injector throws for links that don't exist,
// and the harness would bank that as a finding. The generator therefore
// materializes the topology first (scenarioTopology) and only references
// real edges and in-range nodes.

#include "core/scenario.hpp"
#include "fault/plan.hpp"
#include "sim/random.hpp"
#include "topo/topology.hpp"

namespace rcsim::fuzz {

/// The topology a ScenarioConfig will build, materialized exactly the way
/// Scenario's constructor does (including the seed override for the
/// Random family). Throws like the constructor would on invalid configs.
[[nodiscard]] Topology scenarioTopology(const ScenarioConfig& cfg);

/// Draw a random fault plan of 1..5 events inside [windowStart,
/// windowEnd] seconds, referencing only `topo`'s real edges and nodes.
[[nodiscard]] fault::FaultPlan generateFaultPlan(Rng& rng, const Topology& topo,
                                                 double windowStart, double windowEnd);

/// Draw one complete scenario. The result always constructs and never
/// references a nonexistent link; anything the run does beyond that is
/// the simulator's problem — which is the point.
[[nodiscard]] ScenarioConfig generateScenario(Rng& rng);

/// Rewrite a fault plan so every reference is valid for `topo`: dangling
/// link endpoints are redrawn from the real edge list, node ids are
/// clamped into range, out-of-range partition members are dropped.
/// Mutations that change the topology call this to stay valid.
[[nodiscard]] fault::FaultPlan remapPlanToTopology(const fault::FaultPlan& plan,
                                                   const Topology& topo, Rng& rng);

}  // namespace rcsim::fuzz
