#include "fuzz/corpus.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/digest.hpp"
#include "core/options.hpp"

namespace rcsim::fuzz {
namespace {

/// Strip ASCII whitespace from both ends.
std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

}  // namespace

std::string scenarioDigest(const ScenarioConfig& cfg) {
  std::string joined;
  for (const auto& opt : describeOptions(cfg)) {
    joined += opt;
    joined += '\n';
  }
  return fnv1aHexDigest(joined);
}

std::string formatScenarioFile(const ScenarioDoc& doc) {
  std::ostringstream os;
  os << kScenarioMagic << '\n';
  os << "# expect: " << toString(doc.expect);
  if (!doc.expectDetail.empty()) os << ' ' << doc.expectDetail;
  os << '\n';
  if (!doc.note.empty()) os << "# note: " << doc.note << '\n';
  for (const auto& opt : describeOptions(doc.config)) os << opt << '\n';
  return os.str();
}

ScenarioDoc parseScenarioFile(const std::string& text) {
  std::istringstream is{text};
  std::string line;
  if (!std::getline(is, line) || trim(line) != kScenarioMagic) {
    throw std::invalid_argument(std::string{"scenario file must start with '"} +
                                kScenarioMagic + "'");
  }
  ScenarioDoc doc;
  while (std::getline(is, line)) {
    const std::string t = trim(line);
    if (t.empty()) continue;
    if (t.front() == '#') {
      const std::string body = trim(t.substr(1));
      if (body.rfind("expect:", 0) == 0) {
        const std::string value = trim(body.substr(7));
        const auto space = value.find(' ');
        doc.expect = runStatusFromString(value.substr(0, space));
        if (space != std::string::npos) doc.expectDetail = trim(value.substr(space + 1));
      } else if (body.rfind("note:", 0) == 0) {
        doc.note = trim(body.substr(5));
      }
      // Unknown comments are allowed: future metadata stays replayable.
      continue;
    }
    applyOptionString(doc.config, t);
  }
  return doc;
}

ScenarioDoc loadScenarioFile(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open scenario file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseScenarioFile(buf.str());
}

void saveScenarioFile(const std::string& path, const ScenarioDoc& doc) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("cannot write scenario file: " + path);
  out << formatScenarioFile(doc);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace rcsim::fuzz
