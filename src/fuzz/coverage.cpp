#include "fuzz/coverage.hpp"

#include <algorithm>
#include <map>

namespace rcsim::fuzz {
namespace {

/// AFL's count squash: eight buckets over a 64-bit count.
std::uint32_t countBucket(std::uint64_t n) {
  if (n <= 3) return static_cast<std::uint32_t>(n - 1);  // 1, 2, 3
  if (n <= 7) return 3;
  if (n <= 15) return 4;
  if (n <= 31) return 5;
  if (n <= 127) return 6;
  return 7;
}

/// FNV-1a over a string, folded into the outcome-feature tail.
std::uint32_t outcomeHash(const std::string& text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return static_cast<std::uint32_t>(h % (CoverageMap::kOutcomeSpace - 8));
}

}  // namespace

std::vector<std::uint32_t> runFeatures(const RunOutcome& outcome) {
  std::map<std::uint32_t, std::uint64_t> bigramCounts;
  for (std::size_t i = 1; i < outcome.trace.size(); ++i) {
    const auto prev = static_cast<std::uint32_t>(outcome.trace[i - 1].kind);
    const auto cur = static_cast<std::uint32_t>(outcome.trace[i].kind);
    ++bigramCounts[prev * static_cast<std::uint32_t>(obs::kTraceKindCount) + cur];
  }
  std::vector<std::uint32_t> features;
  features.reserve(bigramCounts.size() + 2);
  for (const auto& [bigram, count] : bigramCounts) {
    features.push_back(bigram * 8 + countBucket(count));
  }
  // Outcome features live in the tail: the status itself, then a hashed
  // slot for the specific invariant/exception reached.
  const std::uint32_t base = CoverageMap::kBigramSpace;
  features.push_back(base + static_cast<std::uint32_t>(outcome.status));
  if (outcome.status != RunStatus::Clean) {
    const std::string firstLine = outcome.detail.substr(0, outcome.detail.find('\n'));
    features.push_back(base + 8 + outcomeHash(firstLine));
  }
  std::sort(features.begin(), features.end());
  features.erase(std::unique(features.begin(), features.end()), features.end());
  return features;
}

}  // namespace rcsim::fuzz
