#pragma once

// Reproducer banking: the rcsim-scenario-v1 file format.
//
// A scenario file is a self-contained, replayable description of one run:
// a header magic, optional `# key: value` metadata comments, then the
// canonical key=value option lines (core/options.hpp). The fuzzer banks
// minimized findings in this form (tests/fuzz_corpus/*.scenario) and the
// table-driven corpus test replays every banked file, asserting the
// recorded expectation still holds — fixed bugs stay fixed, known-bad
// scenarios stay flagged.

#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "fuzz/harness.hpp"

namespace rcsim::fuzz {

inline constexpr const char* kScenarioMagic = "# rcsim-scenario-v1";

/// Parsed scenario file: the config plus the banked expectation.
struct ScenarioDoc {
  ScenarioConfig config{};
  /// What replaying the scenario must produce (the `# expect:` comment).
  RunStatus expect = RunStatus::Clean;
  /// Substring the outcome detail must contain ("" = don't care) — e.g.
  /// the violated invariant's name, so a reproducer can't silently start
  /// tripping a *different* invariant and still pass.
  std::string expectDetail;
  /// Free-form `# note:` line carried through for triage context.
  std::string note;
};

/// Canonical digest of a scenario config: FNV-1a over the newline-joined
/// describeOptions rendering. Stable across sessions; used for corpus
/// dedup and the campaign's corpus digest.
[[nodiscard]] std::string scenarioDigest(const ScenarioConfig& cfg);

/// Render a scenario file: magic, `# expect:` / `# note:` metadata, then
/// the canonical option lines. parseScenarioFile(formatScenarioFile(d))
/// reproduces the document exactly.
[[nodiscard]] std::string formatScenarioFile(const ScenarioDoc& doc);

/// Parse scenario-file text. Throws std::invalid_argument on a missing
/// magic, an unknown `# expect:` status, or any malformed option line.
[[nodiscard]] ScenarioDoc parseScenarioFile(const std::string& text);

/// Load + parse one file; throws std::runtime_error if unreadable.
[[nodiscard]] ScenarioDoc loadScenarioFile(const std::string& path);

/// Write a scenario doc to `path` (throws std::runtime_error on failure).
void saveScenarioFile(const std::string& path, const ScenarioDoc& doc);

}  // namespace rcsim::fuzz
