#pragma once

// Delta-debugging minimizer. Given a config that produced a finding, it
// greedily applies simplifying transforms — drop fault events, round
// their timestamps, shorten the run, collapse to one flow, freeze the
// topology to an explicit inline edge list with pinned endpoints, then
// delete edges and nodes — keeping each candidate only if it still
// reproduces the same finding key (status + invariant/exception). Every
// step is a full harness execution, so the whole process is deterministic
// and bounded by an explicit run budget.

#include "core/scenario.hpp"
#include "fuzz/harness.hpp"

namespace rcsim::fuzz {

struct MinimizeOptions {
  double wallLimitSec = 5.0;  ///< per candidate execution
  int maxRuns = 250;          ///< total verification executions
};

struct MinimizeResult {
  ScenarioConfig config{};  ///< smallest reproducer found
  int runsUsed = 0;
  bool changed = false;  ///< false = nothing could be simplified
};

/// Shrink `cfg`, preserving findingKey(original). `original` must be the
/// outcome runScenarioOnce/checkDeterminism produced for `cfg`.
[[nodiscard]] MinimizeResult minimizeFinding(const ScenarioConfig& cfg,
                                             const RunOutcome& original,
                                             const MinimizeOptions& opts);

}  // namespace rcsim::fuzz
