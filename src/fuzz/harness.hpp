#pragma once

// In-process execution harness for one fuzzed scenario: build + run under
// the invariant checker, a wall-clock watchdog and a memory trace sink,
// with every failure mode caught and classified instead of propagating.

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "obs/trace.hpp"

namespace rcsim::fuzz {

/// How one execution ended, in decreasing order of severity. Everything
/// except Clean is a finding when it escapes the campaign.
enum class RunStatus {
  Clean,              ///< ran to completion, invariants hold
  InvariantViolation, ///< the runtime checker flagged a simulator bug
  Exception,          ///< an uncaught exception other than the two below
  Timeout,            ///< the watchdog killed a wedged/pathological run
  Nondeterministic,   ///< same config, two runs, different digests
  AnatomyDivergence,  ///< online anatomy analyzer and offline replay disagree
};

[[nodiscard]] const char* toString(RunStatus status);
/// Inverse of toString; throws std::invalid_argument on unknown names.
[[nodiscard]] RunStatus runStatusFromString(const std::string& name);

/// Everything one execution produced that the fuzzer cares about.
struct RunOutcome {
  RunStatus status = RunStatus::Clean;
  /// Violation summary / exception what() / "" when clean. The first line
  /// is the stable dedup key (invariant name, exception text).
  std::string detail;
  std::string resultDigest;  ///< runResultDigest, "" unless Clean
  std::string traceDigest;   ///< digest over the structured trace
  std::vector<obs::TraceEvent> trace;  ///< for the coverage map
  std::uint64_t eventsExecuted = 0;
};

/// Execute `cfg` once, invariants forced on, under `wallLimitSec` of wall
/// clock (<= 0 disarms). Never throws for scenario-level failures — they
/// come back classified in the outcome. Nondeterminism is NOT detected
/// here (one run sees one digest); use checkDeterminism.
[[nodiscard]] RunOutcome runScenarioOnce(const ScenarioConfig& cfg, double wallLimitSec);

/// Run `cfg` twice and compare digests. Returns the first run's outcome,
/// with status upgraded to Nondeterministic (and detail explaining the
/// digest mismatch) when the two executions disagree.
[[nodiscard]] RunOutcome checkDeterminism(const ScenarioConfig& cfg, double wallLimitSec);

/// Stable dedup key for a finding: the status name plus the first line of
/// the detail (e.g. "invariant-violation/packet-conservation").
[[nodiscard]] std::string findingKey(const RunOutcome& outcome);

}  // namespace rcsim::fuzz
