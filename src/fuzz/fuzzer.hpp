#pragma once

// The coverage-guided campaign loop. Deterministic end to end: one seed
// drives generation, mutation and corpus scheduling, and every scenario
// runs in-process under the invariant checker and watchdog, so two
// campaigns with the same seed and budget produce identical corpora,
// identical findings and identical digests.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "fuzz/harness.hpp"

namespace rcsim::fuzz {

struct FuzzOptions {
  std::uint64_t seed = 1;
  int budget = 100;           ///< total scenario executions
  double wallLimitSec = 5.0;  ///< per-execution watchdog (<= 0 disarms)
  std::string bankDir;        ///< write minimized reproducers here ("" = off)
  bool minimize = true;
  /// Force hello-based failure detection on for every generated and
  /// mutated scenario (configs that already drew hello keep their drawn
  /// timers). Lets a campaign concentrate on the detector code paths.
  bool forceHello = false;
  int maxFindings = 16;       ///< stop banking new finding keys after this
  int minimizeRunBudget = 250;
  /// Polled between executions; returning true stops the campaign after
  /// the in-flight scenario (SIGINT drain). Null = never stop early.
  std::function<bool()> shouldStop;
};

/// One deduplicated finding (first scenario to hit its key).
struct FuzzFinding {
  RunStatus status = RunStatus::Clean;
  std::string key;     ///< findingKey dedup identity
  std::string detail;  ///< full violation/exception report
  ScenarioConfig config{};  ///< minimized when options.minimize
  std::string digest;       ///< scenarioDigest(config)
  int foundAtExecution = 0;
  bool minimized = false;
  std::string bankedPath;  ///< "" unless written to bankDir
};

struct FuzzReport {
  bool interrupted = false;  ///< shouldStop fired before the budget ran out
  int executions = 0;
  int corpusEntries = 0;
  std::size_t coverageFeatures = 0;
  std::vector<FuzzFinding> findings;
  /// Digest over the ordered corpus entry digests — the campaign's
  /// determinism fingerprint (two same-seed runs must match).
  std::string corpusDigest;
};

/// Run a campaign. Progress lines go to `log` when non-null. Throws only
/// for environment problems (unwritable bank dir) — scenario failures are
/// findings, not errors.
[[nodiscard]] FuzzReport runFuzzCampaign(const FuzzOptions& options, std::ostream* log);

}  // namespace rcsim::fuzz
