#pragma once

// Corpus mutation: perturb exactly one aspect of a parent scenario —
// fault plan, timing, topology shape, protocol, or a traffic/link scalar
// — keeping the result valid (fault references are remapped whenever the
// topology may have changed). One Rng in, deterministic child out.

#include "core/scenario.hpp"
#include "sim/random.hpp"

namespace rcsim::fuzz {

[[nodiscard]] ScenarioConfig mutateScenario(const ScenarioConfig& base, Rng& rng);

}  // namespace rcsim::fuzz
