#include "fuzz/mutate.hpp"

#include <algorithm>
#include <cmath>

#include "fuzz/generator.hpp"

namespace rcsim::fuzz {
namespace {

int clampInt(std::int64_t v, int lo, int hi) {
  return static_cast<int>(std::clamp<std::int64_t>(v, lo, hi));
}

}  // namespace

ScenarioConfig mutateScenario(const ScenarioConfig& base, Rng& rng) {
  ScenarioConfig cfg = base;
  bool topologyMayHaveChanged = false;

  switch (rng.uniformInt(0, 7)) {
    case 0:  // reseed (for the Random family this redraws the graph too)
      cfg.seed = static_cast<std::uint64_t>(rng.uniformInt(1, 1'000'000'000));
      topologyMayHaveChanged = cfg.topology == TopologyKind::Random;
      break;
    case 1: {  // retime one fault event by up to +-20%
      if (cfg.faultPlan.empty()) break;
      auto& ev = cfg.faultPlan.events[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(cfg.faultPlan.events.size()) - 1))];
      const double scaled = ev.at.toSeconds() * rng.uniform(0.8, 1.2);
      ev.at = Time::seconds(std::max(0.001, std::round(scaled * 1000.0) / 1000.0));
      break;
    }
    case 2:  // drop one fault event
      if (cfg.faultPlan.events.size() > 1) {
        cfg.faultPlan.events.erase(cfg.faultPlan.events.begin() +
                                   rng.uniformInt(0, static_cast<std::int64_t>(
                                                         cfg.faultPlan.events.size()) -
                                                         1));
      }
      break;
    case 3: {  // append one fresh fault event
      const Topology topo = scenarioTopology(cfg);
      auto extra = generateFaultPlan(rng, topo, cfg.trafficStart.toSeconds(),
                                     cfg.trafficStop.toSeconds());
      cfg.faultPlan.events.push_back(extra.events.front());
      break;
    }
    case 4:  // scalar traffic/link knob
      switch (rng.uniformInt(0, 3)) {
        case 0:
          cfg.ttl = clampInt(cfg.ttl + rng.uniformInt(-8, 8), 4, 128);
          break;
        case 1:
          cfg.link.queueCapacity =
              clampInt(cfg.link.queueCapacity + rng.uniformInt(-6, 6), 2, 64);
          break;
        case 2:
          if (cfg.traffic == TrafficKind::Cbr) {
            cfg.packetsPerSecond =
                static_cast<double>(clampInt(static_cast<std::int64_t>(cfg.packetsPerSecond) +
                                                 rng.uniformInt(-10, 10),
                                             1, 80));
          } else {
            cfg.tcpWindow = clampInt(cfg.tcpWindow + rng.uniformInt(-3, 3), 1, 32);
          }
          break;
        default:
          cfg.link.detectDelay = Time::milliseconds(
              std::clamp<std::int64_t>(cfg.link.detectDelay.toSeconds() * 1000.0 +
                                           static_cast<double>(rng.uniformInt(-50, 50)),
                                       5, 4000));
          break;
      }
      break;
    case 5: {  // stretch or shrink the tail of the timeline
      const double lastStop = cfg.trafficStop.toSeconds();
      const double tail = cfg.endAt.toSeconds() - lastStop;
      const double newTail =
          std::clamp(tail + static_cast<double>(rng.uniformInt(-15, 15)), 5.0, 120.0);
      cfg.endAt = Time::seconds(lastStop + std::floor(newTail));
      break;
    }
    case 6:  // topology shape
      topologyMayHaveChanged = true;
      switch (cfg.topology) {
        case TopologyKind::RegularMesh:
          if (rng.uniform01() < 0.5) {
            cfg.mesh.rows = clampInt(cfg.mesh.rows + rng.uniformInt(-1, 1), 3, 7);
            cfg.mesh.cols = clampInt(cfg.mesh.cols + rng.uniformInt(-1, 1), 3, 7);
          } else {
            cfg.mesh.degree = clampInt(cfg.mesh.degree + rng.uniformInt(-1, 1), 3, 8);
          }
          break;
        case TopologyKind::Random:
          cfg.random.nodes = clampInt(cfg.random.nodes + rng.uniformInt(-4, 4), 8, 40);
          break;
        case TopologyKind::Named:
          cfg.named.graph = cfg.named.graph == "abilene" ? "nsfnet" : "abilene";
          break;
        case TopologyKind::Inline:
        case TopologyKind::File:
          // Frozen shapes (minimizer output, external files): leave alone.
          topologyMayHaveChanged = false;
          break;
      }
      break;
    default:  // protocol swap
      switch (rng.uniformInt(0, 5)) {
        case 0: cfg.protocol = ProtocolKind::Rip; break;
        case 1: cfg.protocol = ProtocolKind::Dbf; break;
        case 2: cfg.protocol = ProtocolKind::Bgp; break;
        case 3: cfg.protocol = ProtocolKind::Bgp3; break;
        case 4: cfg.protocol = ProtocolKind::LinkState; break;
        default: cfg.protocol = ProtocolKind::Dual; break;
      }
      break;
  }

  if (topologyMayHaveChanged) {
    cfg.faultPlan = remapPlanToTopology(cfg.faultPlan, scenarioTopology(cfg), rng);
  }
  return cfg;
}

}  // namespace rcsim::fuzz
