#include "fuzz/minimize.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "fuzz/generator.hpp"

namespace rcsim::fuzz {
namespace {

/// Does any plan event name this link explicitly (so deleting the edge
/// would turn the plan invalid rather than the scenario smaller)?
bool planReferencesLink(const fault::FaultPlan& plan, NodeId a, NodeId b) {
  for (const auto& ev : plan.events) {
    if ((ev.a == a && ev.b == b) || (ev.a == b && ev.b == a)) return true;
  }
  return false;
}

bool planReferencesNode(const fault::FaultPlan& plan, NodeId n) {
  for (const auto& ev : plan.events) {
    if (ev.a == n || ev.b == n) return true;
    if (std::find(ev.group.begin(), ev.group.end(), n) != ev.group.end()) return true;
  }
  return false;
}

/// Remove node `n` from an inline topology, shifting every id above it
/// down by one (edges, pins, plan references). Caller guarantees the plan
/// does not reference `n` itself.
ScenarioConfig removeInlineNode(const ScenarioConfig& cfg, NodeId n) {
  ScenarioConfig out = cfg;
  auto shift = [n](NodeId id) { return id > n ? id - 1 : id; };
  out.inlineTopo.nodes -= 1;
  out.inlineTopo.edges.clear();
  for (const auto& [a, b] : cfg.inlineTopo.edges) {
    if (a == n || b == n) continue;
    out.inlineTopo.edges.emplace_back(shift(a), shift(b));
  }
  out.pinSrc = shift(out.pinSrc);
  out.pinDst = shift(out.pinDst);
  for (auto& ev : out.faultPlan.events) {
    if (ev.a != kInvalidNode) ev.a = shift(ev.a);
    if (ev.b != kInvalidNode) ev.b = shift(ev.b);
    for (auto& g : ev.group) g = shift(g);
  }
  return out;
}

}  // namespace

MinimizeResult minimizeFinding(const ScenarioConfig& cfg, const RunOutcome& original,
                               const MinimizeOptions& opts) {
  const std::string key = findingKey(original);
  const bool nondet = original.status == RunStatus::Nondeterministic;

  MinimizeResult result;
  result.config = cfg;
  ScenarioConfig& best = result.config;

  auto reproduces = [&](const ScenarioConfig& cand) {
    if (result.runsUsed >= opts.maxRuns) return false;
    ++result.runsUsed;
    try {
      const RunOutcome out =
          nondet ? checkDeterminism(cand, opts.wallLimitSec)
                 : runScenarioOnce(cand, opts.wallLimitSec);
      return findingKey(out) == key;
    } catch (...) {
      return false;
    }
  };
  auto accept = [&](const ScenarioConfig& cand) {
    if (!reproduces(cand)) return false;
    best = cand;
    result.changed = true;
    return true;
  };

  // Phase 1: drop fault events one at a time, to fixpoint. Greedy single
  // deletions are the ddmin tail case; plans are short (<= ~10 events) so
  // the quadratic worst case stays well inside the run budget.
  for (bool progress = true; progress;) {
    progress = false;
    for (std::size_t i = 0; i < best.faultPlan.events.size(); ++i) {
      ScenarioConfig cand = best;
      cand.faultPlan.events.erase(cand.faultPlan.events.begin() +
                                  static_cast<std::ptrdiff_t>(i));
      if (accept(cand)) {
        progress = true;
        break;
      }
    }
  }

  // Phase 2: round surviving event times to whole seconds.
  for (std::size_t i = 0; i < best.faultPlan.events.size(); ++i) {
    const double sec = best.faultPlan.events[i].at.toSeconds();
    const double rounded = std::max(1.0, std::round(sec));
    if (rounded == sec) continue;
    ScenarioConfig cand = best;
    cand.faultPlan.events[i].at = Time::seconds(rounded);
    accept(cand);
  }

  // Phase 3: collapse to a single flow.
  if (best.flows > 1) {
    ScenarioConfig cand = best;
    cand.flows = 1;
    accept(cand);
  }

  // Phase 4: cut the post-traffic tail of the run.
  {
    double lastEvent = best.trafficStop.toSeconds();
    for (const auto& ev : best.faultPlan.events) {
      lastEvent = std::max(lastEvent, ev.at.toSeconds());
    }
    const double shortEnd = std::ceil(lastEvent) + 10.0;
    if (shortEnd < best.endAt.toSeconds()) {
      ScenarioConfig cand = best;
      cand.endAt = Time::seconds(shortEnd);
      accept(cand);
    }
  }

  // Phase 5: freeze the topology family into an explicit inline edge list
  // with pinned flow-0 endpoints — after this, structural shrinks can't
  // reshuffle the rest of the scenario.
  if (best.topology != TopologyKind::Inline) {
    try {
      Scenario probe{best};  // build (don't run) to see the drawn endpoints
      ScenarioConfig cand = best;
      const Topology topo = scenarioTopology(best);
      cand.topology = TopologyKind::Inline;
      cand.inlineTopo.nodes = topo.nodeCount;
      cand.inlineTopo.edges = topo.edges;
      cand.pinSrc = probe.sender();
      cand.pinDst = probe.receiver();
      accept(cand);
    } catch (const std::exception&) {
      // Construction-stage findings can't be frozen; leave the family.
    }
  }

  // Phase 6: delete edges, then nodes (ids remapped), to fixpoint.
  if (best.topology == TopologyKind::Inline) {
    for (bool progress = true; progress;) {
      progress = false;
      for (std::size_t i = 0; i < best.inlineTopo.edges.size(); ++i) {
        const auto [a, b] = best.inlineTopo.edges[i];
        if (planReferencesLink(best.faultPlan, a, b)) continue;
        ScenarioConfig cand = best;
        cand.inlineTopo.edges.erase(cand.inlineTopo.edges.begin() +
                                    static_cast<std::ptrdiff_t>(i));
        if (accept(cand)) {
          progress = true;
          break;
        }
      }
      for (NodeId n = static_cast<NodeId>(best.inlineTopo.nodes) - 1; n >= 0 && !progress;
           --n) {
        if (n == best.pinSrc || n == best.pinDst) continue;
        if (planReferencesNode(best.faultPlan, n)) continue;
        if (accept(removeInlineNode(best, n))) progress = true;
      }
    }
  }

  return result;
}

}  // namespace rcsim::fuzz
