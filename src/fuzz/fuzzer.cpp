#include "fuzz/fuzzer.hpp"

#include <filesystem>
#include <map>
#include <ostream>
#include <set>

#include "core/digest.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/coverage.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/mutate.hpp"
#include "sim/random.hpp"

namespace rcsim::fuzz {
namespace {

/// Filesystem-safe slug of a finding key.
std::string slugify(const std::string& key) {
  std::string slug;
  for (const char c : key) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9');
    slug += keep ? c : '-';
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug;
}

}  // namespace

FuzzReport runFuzzCampaign(const FuzzOptions& options, std::ostream* log) {
  Rng rng{options.seed};
  CoverageMap coverage;

  struct Entry {
    ScenarioConfig cfg;
    std::string digest;
  };
  std::vector<Entry> corpus;
  std::set<std::string> corpusSeen;
  std::map<std::string, std::size_t> knownKeys;  ///< finding key -> index

  FuzzReport report;
  std::string corpusDigestInput;

  if (!options.bankDir.empty()) {
    std::filesystem::create_directories(options.bankDir);
  }

  for (int exec = 0; exec < options.budget; ++exec) {
    if (options.shouldStop && options.shouldStop()) {
      report.interrupted = true;
      if (log != nullptr) *log << "[fuzz] interrupted after " << exec << " executions\n";
      break;
    }
    ScenarioConfig cfg;
    if (corpus.empty() || rng.uniform01() < 0.3) {
      cfg = generateScenario(rng);
    } else {
      const auto pick =
          rng.uniformInt(0, static_cast<std::int64_t>(corpus.size()) - 1);
      cfg = mutateScenario(corpus[static_cast<std::size_t>(pick)].cfg, rng);
    }
    // Hello-focused campaigns: the drawn timers (when the generator rolled
    // them) survive; only the enable bit is forced.
    if (options.forceHello) cfg.hello.enabled = true;

    RunOutcome out = runScenarioOnce(cfg, options.wallLimitSec);
    ++report.executions;
    const std::size_t fresh = coverage.add(runFeatures(out));

    if (out.status == RunStatus::Clean) {
      if (fresh == 0) continue;
      // New coverage earns a corpus slot — but only a replay-stable run is
      // worth mutating, and an unstable one is itself a top-tier finding.
      const RunOutcome again = runScenarioOnce(cfg, options.wallLimitSec);
      if (again.traceDigest != out.traceDigest || again.resultDigest != out.resultDigest) {
        out.status = RunStatus::Nondeterministic;
        out.detail = "two runs of one config diverged: " + out.traceDigest + "/" +
                     out.resultDigest + " vs " + again.traceDigest + "/" + again.resultDigest;
      } else {
        const std::string digest = scenarioDigest(cfg);
        if (corpusSeen.insert(digest).second) {
          corpus.push_back(Entry{cfg, digest});
          corpusDigestInput += digest;
          corpusDigestInput += '\n';
          if (log != nullptr) {
            *log << "[fuzz] exec " << exec << ": corpus += " << digest << " (+" << fresh
                 << " features, " << coverage.size() << " total)\n";
          }
        }
        continue;
      }
    } else if (out.status != RunStatus::Timeout) {
      // Confirm the failure replays before crying wolf; a shifting failure
      // is a nondeterminism finding, strictly more alarming.
      const RunOutcome again = runScenarioOnce(cfg, options.wallLimitSec);
      if (again.status != out.status || again.traceDigest != out.traceDigest) {
        out.detail = std::string{"failure did not replay: "} + toString(out.status) + "/" +
                     out.traceDigest + " vs " + toString(again.status) + "/" +
                     again.traceDigest;
        out.status = RunStatus::Nondeterministic;
      }
    }

    const std::string key = findingKey(out);
    if (knownKeys.contains(key)) continue;
    if (static_cast<int>(report.findings.size()) >= options.maxFindings) continue;

    FuzzFinding finding;
    finding.status = out.status;
    finding.key = key;
    finding.detail = out.detail;
    finding.config = cfg;
    finding.foundAtExecution = exec;
    if (log != nullptr) {
      *log << "[fuzz] exec " << exec << ": FINDING " << key << "\n";
    }
    if (options.minimize) {
      MinimizeOptions mopts;
      mopts.wallLimitSec = options.wallLimitSec;
      mopts.maxRuns = options.minimizeRunBudget;
      const MinimizeResult mres = minimizeFinding(cfg, out, mopts);
      finding.config = mres.config;
      finding.minimized = true;
      if (log != nullptr) {
        *log << "[fuzz]   minimized in " << mres.runsUsed << " runs ("
             << (mres.changed ? "shrunk" : "already minimal") << ")\n";
      }
    }
    finding.digest = scenarioDigest(finding.config);

    if (!options.bankDir.empty()) {
      ScenarioDoc doc;
      doc.config = finding.config;
      doc.expect = finding.status;
      // The key minus its "status/" prefix is the stable detail the replay
      // must still contain (invariant name / exception prefix).
      const auto slash = key.find('/');
      if (slash != std::string::npos) doc.expectDetail = key.substr(slash + 1);
      doc.note = "campaign seed=" + std::to_string(options.seed) + " execution=" +
                 std::to_string(exec);
      const std::string path = options.bankDir + "/" + slugify(key) + "-" +
                               finding.digest.substr(0, 8) + ".scenario";
      saveScenarioFile(path, doc);
      finding.bankedPath = path;
      if (log != nullptr) *log << "[fuzz]   banked " << path << "\n";
    }

    knownKeys.emplace(key, report.findings.size());
    report.findings.push_back(std::move(finding));
  }

  report.corpusEntries = static_cast<int>(corpus.size());
  report.coverageFeatures = coverage.size();
  report.corpusDigest = fnv1aHexDigest(corpusDigestInput);
  if (log != nullptr) {
    *log << "[fuzz] done: " << report.executions << " executions, " << report.corpusEntries
         << " corpus entries, " << report.coverageFeatures << " features, "
         << report.findings.size() << " finding(s), corpus digest "
         << report.corpusDigest << "\n";
  }
  return report;
}

}  // namespace rcsim::fuzz
