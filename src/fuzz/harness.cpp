#include "fuzz/harness.hpp"

#include <memory>
#include <stdexcept>

#include "core/experiment.hpp"
#include "core/fingerprint.hpp"
#include "obs/trace_io.hpp"
#include "sim/watchdog.hpp"

namespace rcsim::fuzz {

const char* toString(RunStatus status) {
  switch (status) {
    case RunStatus::Clean: return "clean";
    case RunStatus::InvariantViolation: return "invariant-violation";
    case RunStatus::Exception: return "exception";
    case RunStatus::Timeout: return "timeout";
    case RunStatus::Nondeterministic: return "nondeterministic";
    case RunStatus::AnatomyDivergence: return "anatomy-divergence";
  }
  return "?";
}

RunStatus runStatusFromString(const std::string& name) {
  for (const RunStatus s : {RunStatus::Clean, RunStatus::InvariantViolation,
                            RunStatus::Exception, RunStatus::Timeout,
                            RunStatus::Nondeterministic, RunStatus::AnatomyDivergence}) {
    if (name == toString(s)) return s;
  }
  throw std::invalid_argument("unknown run status '" + name + "'");
}

RunOutcome runScenarioOnce(const ScenarioConfig& cfg, double wallLimitSec) {
  RunOutcome out;
  ScenarioConfig checked = cfg;
  checked.checkInvariants = true;
  // The online anatomy analyzer is forced on, like the invariant checker:
  // every execution cross-checks it against the offline replay below.
  checked.anatomy = true;

  // Construction failures (a mutation produced a config the scenario
  // builder rejects) classify like any other escape — the campaign treats
  // them as generator bugs worth banking, not reasons to abort.
  std::unique_ptr<Scenario> scenario;
  try {
    scenario = std::make_unique<Scenario>(checked);
  } catch (const std::exception& e) {
    out.status = RunStatus::Exception;
    out.detail = std::string{"construct: "} + e.what();
    return out;
  }

  obs::MemoryTraceSink sink;
  // Chain behind the anatomy analyzer: it forwards every event verbatim,
  // so the recorded trace (and its digest) is what a direct sink would see.
  scenario->attachTraceSink(&sink);

  bool threw = false;
  try {
    const watchdog::Scope guard{wallLimitSec};
    scenario->run();
  } catch (const watchdog::Timeout& e) {
    out.status = RunStatus::Timeout;
    out.detail = e.what();
    threw = true;
  } catch (const std::exception& e) {
    // Scenario::run throws a plain runtime_error for invariant failures;
    // the checker below reclassifies those with the invariant's name.
    out.status = RunStatus::Exception;
    out.detail = e.what();
    threw = true;
  }

  const auto* checker = scenario->invariantChecker();
  if (checker != nullptr && !checker->clean()) {
    out.status = RunStatus::InvariantViolation;
    // First line = the violated invariant's name, the stable dedup key.
    out.detail = checker->violations().front().invariant + "\n" + checker->summary();
  }

  out.trace = sink.events();
  out.traceDigest = obs::traceDigest(out.trace);
  out.eventsExecuted = scenario->scheduler().executedEvents();
  if (!threw && out.status == RunStatus::Clean) {
    out.resultDigest = runResultDigest(summarizeRun(*scenario));
    // Cross-check the streaming analyzer against the offline replayer over
    // the exact events the run just produced. They are independent
    // implementations of the same reconstruction; any disagreement is a
    // simulator-observability bug worth banking.
    if (const auto* anatomy = scenario->convergenceAnalyzer()) {
      const auto& live = anatomy->report();
      const obs::ReplayOptions opts{scenario->sender(), scenario->receiver(),
                                    scenario->network().nodeCount()};
      std::string field;
      try {
        const obs::ReplayResult replay = obs::replayTrace(out.trace, opts);
        if (live.pathEvents != replay.pathEvents) {
          field = "pathEvents";
        } else if (live.loopWindows != replay.loopWindows) {
          field = "loopWindows";
        } else if (live.blackholeWindows != replay.blackholeWindows) {
          field = "blackholeWindows";
        } else if (live.kindCounts != replay.kindCounts) {
          field = "kindCounts";
        } else if (live.delivered != replay.delivered || live.dropped != replay.dropped) {
          field = "planeCounters";
        } else if (live.episodes != obs::analyzeTrace(out.trace, opts).episodes) {
          // Same analyzer over the recorded stream: catches a live-vs-
          // recorded event mismatch (a sink-chain bug) at episode level.
          field = "episodes";
        }
      } catch (const std::exception&) {
        field = "replayThrew";
      }
      if (!field.empty()) {
        out.status = RunStatus::AnatomyDivergence;
        out.detail = field + "\nonline analyzer vs offline replay disagree on " + field;
      }
    }
  }
  scenario->attachTraceSink(nullptr);
  return out;
}

RunOutcome checkDeterminism(const ScenarioConfig& cfg, double wallLimitSec) {
  RunOutcome first = runScenarioOnce(cfg, wallLimitSec);
  // A timeout races the wall clock, so a second execution legitimately
  // stops at a different event — replaying it can only produce noise.
  if (first.status == RunStatus::Timeout) return first;
  const RunOutcome second = runScenarioOnce(cfg, wallLimitSec);
  if (second.status == RunStatus::Timeout) return first;
  if (first.status != second.status || first.traceDigest != second.traceDigest ||
      first.resultDigest != second.resultDigest) {
    first.detail = std::string{"two runs of one config diverged: "} + toString(first.status) +
                   "/" + first.traceDigest + "/" + first.resultDigest + " vs " +
                   toString(second.status) + "/" + second.traceDigest + "/" +
                   second.resultDigest;
    first.status = RunStatus::Nondeterministic;
  }
  return first;
}

std::string findingKey(const RunOutcome& outcome) {
  std::string key = toString(outcome.status);
  if (outcome.status == RunStatus::InvariantViolation ||
      outcome.status == RunStatus::AnatomyDivergence) {
    key += '/';
    key += outcome.detail.substr(0, outcome.detail.find('\n'));
  } else if (outcome.status == RunStatus::Exception) {
    // Exception texts carry scenario-specific numbers; key on the prefix.
    key += '/';
    key += outcome.detail.substr(0, outcome.detail.find_first_of("0123456789\n"));
  }
  return key;
}

}  // namespace rcsim::fuzz
