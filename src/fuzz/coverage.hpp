#pragma once

// Coverage signal for the scenario fuzzer. A run's behavior is abstracted
// into small integer features:
//
//   - TraceEvent-kind bigrams: each adjacent (prev kind, kind) pair in the
//     structured trace, with its occurrence count squashed into AFL-style
//     log2 buckets (1, 2, 3, 4-7, 8-15, 16-31, 32-127, 128+). A scenario
//     that merely repeats known transitions more often only earns credit
//     when it crosses a bucket boundary.
//   - Outcome features: the RunStatus plus (for violations) a hash of the
//     violated invariant's name — reaching a new checker state is coverage
//     even when the trace shape is familiar.
//
// The map is a plain bitset over a fixed feature space, so campaign
// behavior is bit-deterministic: same seed, same runs, same corpus.

#include <cstdint>
#include <vector>

#include "fuzz/harness.hpp"
#include "obs/trace.hpp"

namespace rcsim::fuzz {

/// Extract the feature ids of one run (bigrams + outcome). Sorted and
/// deduplicated; every id is < CoverageMap::kFeatureSpace.
[[nodiscard]] std::vector<std::uint32_t> runFeatures(const RunOutcome& outcome);

class CoverageMap {
 public:
  /// 19 kinds squared bigrams x 8 count buckets, plus a reserved tail for
  /// outcome features.
  static constexpr std::uint32_t kBigramSpace =
      static_cast<std::uint32_t>(obs::kTraceKindCount * obs::kTraceKindCount * 8);
  static constexpr std::uint32_t kOutcomeSpace = 256;
  static constexpr std::uint32_t kFeatureSpace = kBigramSpace + kOutcomeSpace;

  CoverageMap() : seen_(kFeatureSpace, false) {}

  /// Merge a run's features; returns how many were previously unseen
  /// (0 = the run exercised nothing new).
  std::size_t add(const std::vector<std::uint32_t>& features) {
    std::size_t fresh = 0;
    for (const auto f : features) {
      if (!seen_[f]) {
        seen_[f] = true;
        ++fresh;
      }
    }
    count_ += fresh;
    return fresh;
  }

  [[nodiscard]] std::size_t size() const { return count_; }

 private:
  std::vector<bool> seen_;
  std::size_t count_ = 0;
};

}  // namespace rcsim::fuzz
