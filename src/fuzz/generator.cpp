#include "fuzz/generator.hpp"

#include <algorithm>
#include <cmath>

#include "topo/loader.hpp"

namespace rcsim::fuzz {
namespace {

/// Round a drawn time to milliseconds so plans stay short and readable.
double roundMs(double sec) { return std::round(sec * 1000.0) / 1000.0; }

std::pair<NodeId, NodeId> drawEdge(Rng& rng, const Topology& topo) {
  const auto idx = rng.uniformInt(0, static_cast<std::int64_t>(topo.edges.size()) - 1);
  return topo.edges[static_cast<std::size_t>(idx)];
}

NodeId drawNode(Rng& rng, const Topology& topo) {
  return static_cast<NodeId>(rng.uniformInt(0, topo.nodeCount - 1));
}

std::vector<NodeId> drawGroup(Rng& rng, const Topology& topo) {
  const int maxSize = std::max(1, topo.nodeCount / 2);
  const auto size = rng.uniformInt(1, maxSize);
  std::vector<NodeId> group;
  for (std::int64_t i = 0; i < size; ++i) group.push_back(drawNode(rng, topo));
  std::sort(group.begin(), group.end());
  group.erase(std::unique(group.begin(), group.end()), group.end());
  return group;
}

}  // namespace

Topology scenarioTopology(const ScenarioConfig& cfg) {
  Topology topo;
  switch (cfg.topology) {
    case TopologyKind::RegularMesh:
      topo = makeRegularMesh(cfg.mesh);
      break;
    case TopologyKind::File:
      topo = loadTopologyFile(cfg.file.path).topo;
      break;
    case TopologyKind::Named:
      topo = namedTopology(cfg.named.graph).topo;
      break;
    case TopologyKind::Random: {
      RandomGraphSpec rnd = cfg.random;
      rnd.seed = cfg.seed;  // mirror Scenario: one seed drives the run
      topo = makeRandomTopology(rnd);
      break;
    }
    case TopologyKind::Inline:
      topo.nodeCount = cfg.inlineTopo.nodes;
      topo.edges = cfg.inlineTopo.edges;
      topo.normalize();
      break;
  }
  return topo;
}

fault::FaultPlan generateFaultPlan(Rng& rng, const Topology& topo, double windowStart,
                                   double windowEnd) {
  fault::FaultPlan plan;
  const auto eventCount = rng.uniformInt(1, 5);
  for (std::int64_t i = 0; i < eventCount; ++i) {
    fault::FaultEvent ev;
    ev.at = Time::seconds(roundMs(rng.uniform(windowStart, windowEnd)));
    const auto pick = rng.uniformInt(0, 99);
    if (pick < 25) {
      ev.kind = fault::FaultKind::LinkFail;
      std::tie(ev.a, ev.b) = drawEdge(rng, topo);
      if (rng.uniform01() < 0.6) {
        fault::FaultEvent rec;
        rec.kind = fault::FaultKind::LinkRecover;
        rec.a = ev.a;
        rec.b = ev.b;
        rec.at = Time::seconds(roundMs(ev.at.toSeconds() + rng.uniform(1.0, 60.0)));
        plan.events.push_back(rec);
      }
    } else if (pick < 40) {
      ev.kind = fault::FaultKind::NodeCrash;
      ev.a = drawNode(rng, topo);
      if (rng.uniform01() < 0.6) {
        fault::FaultEvent res;
        res.kind = fault::FaultKind::NodeRestart;
        res.a = ev.a;
        res.at = Time::seconds(roundMs(ev.at.toSeconds() + rng.uniform(1.0, 60.0)));
        plan.events.push_back(res);
      }
    } else if (pick < 60) {
      const auto impairment = rng.uniformInt(0, 2);
      ev.kind = impairment == 0   ? fault::FaultKind::LinkLoss
                : impairment == 1 ? fault::FaultKind::LinkCorrupt
                                  : fault::FaultKind::LinkReorder;
      ev.allLinks = rng.uniform01() < 0.3;
      if (!ev.allLinks) std::tie(ev.a, ev.b) = drawEdge(rng, topo);
      ev.rate = std::round(rng.uniform(0.01, 0.3) * 100.0) / 100.0;
      if (ev.kind == fault::FaultKind::LinkReorder) {
        ev.jitter = Time::milliseconds(rng.uniformInt(1, 100));
      }
    } else if (pick < 66) {
      ev.kind = fault::FaultKind::DetectDelay;
      std::tie(ev.a, ev.b) = drawEdge(rng, topo);
      ev.detect = Time::milliseconds(rng.uniformInt(10, 2000));
    } else if (pick < 76) {
      // Adversarial control-plane impairments: the data plane keeps
      // flowing while routing messages are lost, delayed or duplicated.
      const auto ctrl = rng.uniformInt(0, 2);
      ev.kind = ctrl == 0   ? fault::FaultKind::CtrlLoss
                : ctrl == 1 ? fault::FaultKind::CtrlDelay
                            : fault::FaultKind::CtrlDup;
      ev.allLinks = rng.uniform01() < 0.3;
      if (!ev.allLinks) std::tie(ev.a, ev.b) = drawEdge(rng, topo);
      if (ev.kind == fault::FaultKind::CtrlDelay) {
        ev.jitter = Time::milliseconds(rng.uniformInt(1, 500));
      } else {
        ev.rate = std::round(rng.uniform(0.01, 0.5) * 100.0) / 100.0;
      }
    } else if (pick < 82) {
      ev.kind = fault::FaultKind::FlapBurst;
      std::tie(ev.a, ev.b) = drawEdge(rng, topo);
      ev.count = static_cast<int>(rng.uniformInt(1, 5));
      ev.period = Time::seconds(static_cast<double>(rng.uniformInt(2, 20)));
    } else if (pick < 90) {
      ev.kind = fault::FaultKind::Partition;
      ev.group = drawGroup(rng, topo);
      if (rng.uniform01() < 0.6) {
        fault::FaultEvent heal;
        heal.kind = fault::FaultKind::Heal;
        heal.group = ev.group;
        heal.at = Time::seconds(roundMs(ev.at.toSeconds() + rng.uniform(1.0, 60.0)));
        plan.events.push_back(heal);
      }
    } else {
      // Deliberate mismatches: recover a link that never failed, restart a
      // node that never crashed. The injector specifies these as no-ops;
      // the fuzzer keeps it honest.
      if (rng.uniform01() < 0.5) {
        ev.kind = fault::FaultKind::LinkRecover;
        std::tie(ev.a, ev.b) = drawEdge(rng, topo);
      } else {
        ev.kind = fault::FaultKind::NodeRestart;
        ev.a = drawNode(rng, topo);
      }
    }
    plan.events.push_back(ev);
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const auto& x, const auto& y) { return x.at < y.at; });
  return plan;
}

ScenarioConfig generateScenario(Rng& rng) {
  ScenarioConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(rng.uniformInt(1, 1'000'000'000));
  cfg.injectFailure = false;  // the fault plan is the only disruption

  const auto family = rng.uniformInt(0, 9);
  if (family < 4) {
    cfg.topology = TopologyKind::RegularMesh;
    cfg.mesh.rows = static_cast<int>(rng.uniformInt(3, 6));
    cfg.mesh.cols = static_cast<int>(rng.uniformInt(3, 6));
    cfg.mesh.degree = static_cast<int>(rng.uniformInt(3, 6));
  } else if (family < 8) {
    cfg.topology = TopologyKind::Random;
    cfg.random.nodes = static_cast<int>(rng.uniformInt(8, 32));
    cfg.random.avgDegree = rng.uniform(2.0, 5.0);
    if (rng.uniform01() < 0.3) {
      // The uniform G(n, m) mode with deterministic connectivity repair —
      // degenerate shapes (chains, bridged clusters) the tree skeleton
      // never produces.
      cfg.random.spanningTree = false;
      cfg.random.ensureConnected = true;
    }
  } else {
    cfg.topology = TopologyKind::Named;
    cfg.named.graph = rng.uniform01() < 0.5 ? "abilene" : "nsfnet";
  }

  switch (rng.uniformInt(0, 5)) {
    case 0: cfg.protocol = ProtocolKind::Rip; break;
    case 1: cfg.protocol = ProtocolKind::Dbf; break;
    case 2: cfg.protocol = ProtocolKind::Bgp; break;
    case 3: cfg.protocol = ProtocolKind::Bgp3; break;
    case 4: cfg.protocol = ProtocolKind::LinkState; break;
    default: cfg.protocol = ProtocolKind::Dual; break;
  }

  cfg.flows = static_cast<int>(rng.uniformInt(1, 2));
  if (rng.uniform01() < 0.7) {
    cfg.traffic = TrafficKind::Cbr;
    cfg.packetsPerSecond = static_cast<double>(rng.uniformInt(5, 40));
  } else {
    cfg.traffic = TrafficKind::Tcp;
    cfg.tcpWindow = static_cast<int>(rng.uniformInt(2, 12));
  }
  cfg.packetBytes = static_cast<std::uint32_t>(rng.uniformInt(200, 1500));
  cfg.ttl = static_cast<int>(rng.uniformInt(8, 64));

  // Compressed timeline: convergence protocols get tens of seconds, not
  // the paper's 800 s, so a budget of hundreds of runs stays interactive.
  const double start = std::floor(rng.uniform(5.0, 15.0));
  const double stop = start + std::floor(rng.uniform(20.0, 60.0));
  cfg.trafficStart = Time::seconds(start);
  cfg.trafficStop = Time::seconds(stop);
  cfg.endAt = Time::seconds(stop + std::floor(rng.uniform(20.0, 60.0)));

  cfg.link.queueCapacity = static_cast<int>(rng.uniformInt(4, 30));
  cfg.link.detectDelay = Time::milliseconds(rng.uniformInt(10, 200));
  cfg.link.bandwidthBps = static_cast<double>(rng.uniformInt(1, 10)) * 1e6;
  cfg.ecmp = rng.uniform01() < 0.25;

  // Hello-based detection in a quarter of the scenarios: the detector
  // replaces the oracle path wholesale, so its interaction with every
  // fault kind (especially control-plane impairments eating the hellos)
  // is prime fuzzing surface.
  if (rng.uniform01() < 0.25) {
    cfg.hello.enabled = true;
    cfg.hello.interval = Time::milliseconds(rng.uniformInt(250, 2000));
    cfg.hello.dead = Time::milliseconds(
        static_cast<std::int64_t>(cfg.hello.interval.toSeconds() * 1000.0 *
                                  rng.uniform(2.5, 4.0)));
    cfg.hello.jitter = std::round(rng.uniform(0.0, 0.3) * 100.0) / 100.0;
  }
  // Protocol hardening knobs, drawn independently so damped and undamped
  // variants of otherwise-identical scenarios both appear.
  if (rng.uniform01() < 0.25) {
    cfg.protoCfg.dv.holdDownSec = static_cast<double>(rng.uniformInt(5, 30));
  }
  if (rng.uniform01() < 0.2) {
    cfg.protoCfg.dv.triggerMinGapSec = std::round(rng.uniform(0.2, 2.0) * 10.0) / 10.0;
  }
  if (rng.uniform01() < 0.2) {
    cfg.protoCfg.bgp.flapDampingEnabled = true;
  }

  const Topology topo = scenarioTopology(cfg);
  cfg.faultPlan = generateFaultPlan(rng, topo, start, stop);
  return cfg;
}

fault::FaultPlan remapPlanToTopology(const fault::FaultPlan& plan, const Topology& topo,
                                     Rng& rng) {
  fault::FaultPlan out = plan;
  for (auto& ev : out.events) {
    const bool isLinkEvent =
        ev.kind == fault::FaultKind::LinkFail || ev.kind == fault::FaultKind::LinkRecover ||
        ev.kind == fault::FaultKind::DetectDelay || ev.kind == fault::FaultKind::FlapBurst ||
        ((ev.kind == fault::FaultKind::LinkLoss || ev.kind == fault::FaultKind::LinkCorrupt ||
          ev.kind == fault::FaultKind::LinkReorder || ev.kind == fault::FaultKind::CtrlLoss ||
          ev.kind == fault::FaultKind::CtrlDelay || ev.kind == fault::FaultKind::CtrlDup) &&
         !ev.allLinks);
    if (isLinkEvent && !topo.hasEdge(ev.a, ev.b)) {
      std::tie(ev.a, ev.b) = drawEdge(rng, topo);
    }
    if (ev.kind == fault::FaultKind::NodeCrash || ev.kind == fault::FaultKind::NodeRestart) {
      if (ev.a >= topo.nodeCount) ev.a = drawNode(rng, topo);
    }
    if (ev.kind == fault::FaultKind::Partition || ev.kind == fault::FaultKind::Heal) {
      std::erase_if(ev.group, [&](NodeId n) { return n >= topo.nodeCount; });
      if (ev.group.empty()) ev.group.push_back(drawNode(rng, topo));
    }
  }
  return out;
}

}  // namespace rcsim::fuzz
