#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "net/types.hpp"

namespace rcsim {

/// Pure graph description of a network (no simulation state). Produced by
/// generators in this library and consumed by the scenario builder.
///
/// Invariant: `edges` holds undirected edges in canonical form — a < b,
/// sorted lexicographically, no duplicates, all endpoints in
/// [0, nodeCount). Generators and the loader establish it via normalize();
/// hand-built topologies are verified the first time an indexed accessor
/// (degreeOf/hasEdge/neighbors/adjacency) runs, so a malformed edge list
/// throws std::invalid_argument instead of silently answering wrong.
///
/// The accessors are backed by a CSR adjacency index built once per edge
/// list: degreeOf and neighbors are O(1), hasEdge is O(log degree). Do not
/// mutate `edges` after querying without calling normalize() again.
struct Topology {
  int nodeCount = 0;
  /// Undirected edges, canonical form (a < b), sorted lexicographically.
  std::vector<std::pair<NodeId, NodeId>> edges;

  /// Enforce the canonical-edge invariant: swap endpoints into a < b
  /// order, sort, drop duplicates, then validate (throws
  /// std::invalid_argument on self-loops or out-of-range endpoints) and
  /// build the CSR index. Generators and the loader call this; call it
  /// yourself after editing `edges` in place.
  void normalize();

  [[nodiscard]] std::vector<std::vector<NodeId>> adjacency() const;
  [[nodiscard]] int degreeOf(NodeId n) const;
  [[nodiscard]] bool isConnected() const;
  [[nodiscard]] bool hasEdge(NodeId a, NodeId b) const;
  /// Sorted neighbor ids of `n` (a view into the CSR index).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId n) const;

 private:
  /// Build the CSR index from `edges`, validating the canonical-form
  /// invariant (already-canonical input only; normalize() canonicalizes).
  void buildIndex() const;
  [[nodiscard]] bool indexFresh() const {
    return offsets_.size() == static_cast<std::size_t>(nodeCount) + 1 &&
           nbrs_.size() == 2 * edges.size();
  }
  void ensureIndex() const {
    if (!indexFresh()) buildIndex();
  }

  // CSR adjacency: neighbors of n are nbrs_[offsets_[n] .. offsets_[n+1]),
  // sorted. Built lazily on first query (mutable) or eagerly by
  // normalize(); staleness is detected by size, so edge-list edits that
  // keep the count need an explicit normalize().
  mutable std::vector<std::int32_t> offsets_;
  mutable std::vector<NodeId> nbrs_;
};

/// Parameters of the regular-mesh family used throughout the paper:
/// an RxC grid whose interior nodes all have the same degree (3..16),
/// built with a deterministic Baran-style construction (DESIGN.md §4).
/// The family scales to internet-sized grids (100x100 and beyond); the
/// builder rejects node counts that overflow NodeId arithmetic.
struct MeshSpec {
  int rows = 7;
  int cols = 7;
  int degree = 4;  ///< Target interior node degree, 3..16.
};

/// Deterministically construct the regular mesh for `spec`.
/// Node ids are row-major: id = r * cols + c.
/// Throws std::invalid_argument when rows/cols are out of range or
/// rows * cols would overflow the NodeId space.
[[nodiscard]] Topology makeRegularMesh(const MeshSpec& spec);

/// Node id helpers for the row-major grid numbering. Arithmetic is done in
/// 64 bits; the mesh builder guarantees rows * cols fits a NodeId, so ids
/// produced for a validated mesh never truncate.
[[nodiscard]] constexpr NodeId gridId(int r, int c, int cols) {
  return static_cast<NodeId>(static_cast<std::int64_t>(r) * cols + c);
}

/// Parameters of a connected random graph with a target average degree —
/// the "random topology" the paper contrasts its regular family against
/// (§5: regular topologies remove the per-run random factor; this
/// generator lets the repository check the findings survive randomness).
struct RandomGraphSpec {
  int nodes = 49;
  double avgDegree = 4.0;
  std::uint64_t seed = 1;
  /// Start from a uniform random spanning tree (the historical generator,
  /// connected by construction). When false the draw is a pure G(n, m)
  /// edge sample — sparse draws can come out disconnected, which is what
  /// the scenario fuzzer wants to explore (and repair, below).
  bool spanningTree = true;
  /// Deterministically guarantee a connected result even without the tree
  /// skeleton: redraw a few times from derived sub-seeds, then repair any
  /// remaining split by bridging components (smallest node ids first).
  /// Without this, a fuzzed sparse draw trivially black-holes all traffic
  /// and every scenario "finding" is just a disconnected graph.
  bool ensureConnected = false;
};

/// Deterministically (per seed) construct a random graph with a target
/// average degree: a uniform random spanning tree skeleton (unless
/// spec.spanningTree is off) plus uniform random extra edges up to
/// round(nodes * avgDegree / 2) total.
///
/// Sampling is density-aware: below half of the complete graph the extra
/// edges are rejection-sampled (bit-identical, per seed, to the
/// historical generator); at or above half density the generator switches
/// to a partial shuffle of the complement, so near-complete graphs
/// (avgDegree close to nodes-1) build in O(nodes^2) instead of
/// degenerating toward a coupon-collector near-hang.
[[nodiscard]] Topology makeRandomTopology(const RandomGraphSpec& spec);

}  // namespace rcsim
