#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/types.hpp"

namespace rcsim {

/// Pure graph description of a network (no simulation state). Produced by
/// generators in this library and consumed by the scenario builder.
struct Topology {
  int nodeCount = 0;
  /// Undirected edges, canonical form (a < b), sorted lexicographically.
  std::vector<std::pair<NodeId, NodeId>> edges;

  [[nodiscard]] std::vector<std::vector<NodeId>> adjacency() const;
  [[nodiscard]] int degreeOf(NodeId n) const;
  [[nodiscard]] bool isConnected() const;
  [[nodiscard]] bool hasEdge(NodeId a, NodeId b) const;
};

/// Parameters of the regular-mesh family used throughout the paper:
/// an RxC grid whose interior nodes all have the same degree (3..16),
/// built with a deterministic Baran-style construction (DESIGN.md §4).
struct MeshSpec {
  int rows = 7;
  int cols = 7;
  int degree = 4;  ///< Target interior node degree, 3..16.
};

/// Deterministically construct the regular mesh for `spec`.
/// Node ids are row-major: id = r * cols + c.
[[nodiscard]] Topology makeRegularMesh(const MeshSpec& spec);

/// Node id helpers for the row-major grid numbering.
[[nodiscard]] constexpr NodeId gridId(int r, int c, int cols) {
  return static_cast<NodeId>(r * cols + c);
}

/// Parameters of a connected random graph with a target average degree —
/// the "random topology" the paper contrasts its regular family against
/// (§5: regular topologies remove the per-run random factor; this
/// generator lets the repository check the findings survive randomness).
struct RandomGraphSpec {
  int nodes = 49;
  double avgDegree = 4.0;
  std::uint64_t seed = 1;
};

/// Deterministically (per seed) construct a connected random graph:
/// a uniform random spanning tree skeleton plus uniform random extra
/// edges up to round(nodes * avgDegree / 2) total.
[[nodiscard]] Topology makeRandomTopology(const RandomGraphSpec& spec);

}  // namespace rcsim
