#include "topo/loader.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace rcsim {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::invalid_argument("topology line " + std::to_string(line) + ": " + what);
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

/// Whole-token integer parse; "4x", "", and values outside [lo, hi] are
/// format errors, not silent truncations.
long long parseId(const std::string& token, int line, const char* what, long long lo,
                  long long hi) {
  if (token.empty()) fail(line, std::string{what} + " is missing");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || end == token.c_str() || *end != '\0') {
    fail(line, std::string{what} + " is not an integer: '" + token + "'");
  }
  if (v < lo || v > hi) {
    fail(line, std::string{what} + " " + token + " out of range [" + std::to_string(lo) + ", " +
                   std::to_string(hi) + "]");
  }
  return v;
}

constexpr std::uint64_t edgeKey(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

// ---------------------------------------------------------------------------
// Embedded named-graph library. Each graph is rcsim-topo-v1 text — the
// library goes through the same parser (and the same validation) as user
// files, so the formats can never drift apart.

/// Abilene — the Internet2 backbone (11 PoPs, 14 OC-192 trunks), the
/// real-topology suite romam's exp1_protocol_functionality runs. Node ids
/// follow the usual west-to-east listing.
constexpr const char* kAbilene = R"(# Abilene (Internet2) backbone, 2004: 11 nodes, 14 links.
topology abilene
nodes 11
node 0 New York
node 1 Chicago
node 2 Washington DC
node 3 Seattle
node 4 Sunnyvale
node 5 Los Angeles
node 6 Denver
node 7 Kansas City
node 8 Houston
node 9 Atlanta
node 10 Indianapolis
0 1
0 2
1 10
2 9
3 4
3 6
4 5
4 6
5 8
6 7
7 8
7 10
8 9
9 10
)";

/// NSFNET T1 backbone (14 nodes, 21 links) — the other canonical small
/// real-world benchmark graph.
constexpr const char* kNsfnet = R"(# NSFNET T1 backbone, 1991: 14 nodes, 21 links.
topology nsfnet
nodes 14
node 0 Seattle
node 1 Palo Alto
node 2 San Diego
node 3 Salt Lake City
node 4 Boulder
node 5 Houston
node 6 Lincoln
node 7 Champaign
node 8 Pittsburgh
node 9 Atlanta
node 10 Ann Arbor
node 11 Ithaca
node 12 Princeton
node 13 College Park
0 1
0 2
0 7
1 2
1 3
2 5
3 4
3 10
4 5
4 6
5 9
5 12
6 7
7 8
8 9
8 11
8 13
10 11
10 12
11 13
12 13
)";

struct NamedGraph {
  const char* name;
  const char* text;
};

constexpr NamedGraph kNamedGraphs[] = {
    {"abilene", kAbilene},
    {"nsfnet", kNsfnet},
};

}  // namespace

TopologyDoc parseTopology(const std::string& text) {
  TopologyDoc doc;
  std::unordered_set<std::uint64_t> seen;
  bool haveNodes = false;
  std::istringstream in{text};
  std::string raw;
  int lineNo = 0;
  while (std::getline(in, raw)) {
    ++lineNo;
    const auto hash = raw.find('#');
    std::string line = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;

    std::istringstream tokens{line};
    std::string first;
    tokens >> first;

    if (first == "topology") {
      if (!doc.name.empty()) fail(lineNo, "duplicate 'topology' header");
      if (haveNodes) fail(lineNo, "'topology' header must precede 'nodes'");
      std::string rest;
      std::getline(tokens, rest);
      doc.name = trim(rest);
      if (doc.name.empty()) fail(lineNo, "'topology' header needs a name");
      continue;
    }
    if (first == "nodes") {
      if (haveNodes) fail(lineNo, "duplicate 'nodes' header");
      std::string count, extra;
      tokens >> count;
      if (tokens >> extra) fail(lineNo, "trailing junk after node count: '" + extra + "'");
      const long long n =
          parseId(count, lineNo, "node count", 2, std::numeric_limits<NodeId>::max());
      doc.topo.nodeCount = static_cast<int>(n);
      doc.nodeLabels.assign(static_cast<std::size_t>(n), {});
      haveNodes = true;
      continue;
    }
    if (first == "node") {
      if (!haveNodes) fail(lineNo, "'node' label before the 'nodes' header");
      std::string idTok;
      tokens >> idTok;
      const auto id = static_cast<std::size_t>(
          parseId(idTok, lineNo, "node id", 0, doc.topo.nodeCount - 1));
      std::string rest;
      std::getline(tokens, rest);
      const std::string label = trim(rest);
      if (label.empty()) fail(lineNo, "'node' line needs a label");
      if (!doc.nodeLabels[id].empty()) {
        fail(lineNo, "duplicate label for node " + idTok);
      }
      doc.nodeLabels[id] = label;
      continue;
    }

    // Anything else must be an edge line: "<a> <b>".
    if (!haveNodes) fail(lineNo, "edge before the 'nodes' header");
    std::string second, extra;
    tokens >> second;
    if (tokens >> extra) fail(lineNo, "trailing junk after edge: '" + extra + "'");
    NodeId a = static_cast<NodeId>(
        parseId(first, lineNo, "edge endpoint", 0, doc.topo.nodeCount - 1));
    NodeId b = static_cast<NodeId>(
        parseId(second, lineNo, "edge endpoint", 0, doc.topo.nodeCount - 1));
    if (a == b) fail(lineNo, "self-loop at node " + first);
    if (a > b) std::swap(a, b);
    if (!seen.insert(edgeKey(a, b)).second) {
      fail(lineNo, "duplicate edge " + std::to_string(a) + " " + std::to_string(b));
    }
    doc.topo.edges.emplace_back(a, b);
  }
  if (!haveNodes) {
    throw std::invalid_argument("topology: missing 'nodes <N>' header");
  }
  doc.topo.normalize();
  return doc;
}

TopologyDoc loadTopologyFile(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::invalid_argument("cannot read topology file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parseTopology(buffer.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

std::string dumpTopology(const TopologyDoc& doc) {
  std::ostringstream out;
  out << "# rcsim-topo-v1\n";
  if (!doc.name.empty()) out << "topology " << doc.name << "\n";
  out << "nodes " << doc.topo.nodeCount << "\n";
  for (std::size_t i = 0; i < doc.nodeLabels.size(); ++i) {
    if (!doc.nodeLabels[i].empty()) out << "node " << i << " " << doc.nodeLabels[i] << "\n";
  }
  for (const auto& [a, b] : doc.topo.edges) out << a << " " << b << "\n";
  return out.str();
}

TopologyDoc namedTopology(const std::string& name) {
  for (const auto& g : kNamedGraphs) {
    if (name == g.name) return parseTopology(g.text);
  }
  std::string known;
  for (const auto& g : kNamedGraphs) {
    if (!known.empty()) known += ", ";
    known += g.name;
  }
  throw std::invalid_argument("unknown named topology '" + name + "' (known: " + known + ")");
}

std::vector<std::string> namedTopologyNames() {
  std::vector<std::string> names;
  for (const auto& g : kNamedGraphs) names.emplace_back(g.name);
  return names;
}

}  // namespace rcsim
