#include "topo/graph_algo.hpp"

#include <algorithm>
#include <queue>

namespace rcsim {

std::vector<int> bfsDistances(const Topology& topo, NodeId src) {
  std::vector<int> dist(static_cast<std::size_t>(topo.nodeCount), -1);
  std::queue<NodeId> q;
  dist[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const NodeId v : topo.neighbors(u)) {
      if (dist[static_cast<std::size_t>(v)] < 0) {
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

int graphDiameter(const Topology& topo) {
  int diameter = 0;
  for (NodeId s = 0; s < topo.nodeCount; ++s) {
    const auto dist = bfsDistances(topo, s);
    for (const int d : dist) {
      if (d < 0) return -1;
      diameter = std::max(diameter, d);
    }
  }
  return diameter;
}

int shortestFirstHops(const Topology& topo, NodeId src, NodeId dst) {
  const auto distFromDst = bfsDistances(topo, dst);
  const int d = distFromDst[static_cast<std::size_t>(src)];
  if (d < 0) return 0;
  int count = 0;
  for (const NodeId v : topo.neighbors(src)) {
    if (distFromDst[static_cast<std::size_t>(v)] == d - 1) ++count;
  }
  return count;
}

}  // namespace rcsim
