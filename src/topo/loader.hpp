#pragma once

// Topology file loader: a deterministic text format for
// Topology-Zoo/Rocketfuel-style undirected edge lists, plus a small
// embedded library of named real-world graphs (Abilene, NSFNET) so every
// experiment can run the paper's fail/reconverge scenario on a real
// backbone instead of a synthetic mesh. See docs/topologies.md.
//
// Format ("rcsim-topo-v1"):
//
//   # comment and blank lines are ignored
//   topology <name>          optional, at most once, before any edge
//   nodes <N>                required, exactly once, before any edge
//   node <id> <label>        optional display label for one node
//   <a> <b>                  one undirected edge per line, 0-based ids
//
// The parser rejects (std::invalid_argument, with the offending line
// number): a missing/duplicate nodes header, non-integer or out-of-range
// ids, negative ids, self-loops, duplicate edges (in either orientation),
// node counts that overflow NodeId, and trailing junk on any line.
//
// dumpTopology emits the canonical rendering — sorted labels, sorted
// canonical edges — so load -> dump -> load is byte-identical (the CI
// round-trip smoke and test_loader.cpp pin this).

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace rcsim {

/// A parsed topology document: the graph plus its display metadata.
struct TopologyDoc {
  Topology topo;
  std::string name;                     ///< "topology" header; may be empty
  std::vector<std::string> nodeLabels;  ///< size nodeCount; entries may be empty
};

/// Parse rcsim-topo-v1 text. Throws std::invalid_argument with a line
/// number on any malformed or inconsistent input.
[[nodiscard]] TopologyDoc parseTopology(const std::string& text);

/// Read and parse a topology file. Throws std::invalid_argument when the
/// file cannot be read or fails to parse (the path is in the message).
[[nodiscard]] TopologyDoc loadTopologyFile(const std::string& path);

/// Canonical rcsim-topo-v1 rendering of `doc`: parse(dump(doc)) produces
/// an identical document and dump is a fixed point (byte-identical round
/// trips).
[[nodiscard]] std::string dumpTopology(const TopologyDoc& doc);

/// Look up an embedded named graph ("abilene", "nsfnet"). Throws
/// std::invalid_argument for unknown names, listing the known ones.
[[nodiscard]] TopologyDoc namedTopology(const std::string& name);

/// Names of the embedded graphs, in listing order.
[[nodiscard]] std::vector<std::string> namedTopologyNames();

}  // namespace rcsim
