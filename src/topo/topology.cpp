#include "topo/topology.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "sim/random.hpp"

namespace rcsim {

namespace {

/// Pack a canonical (a < b) edge into one hashable key.
constexpr std::uint64_t edgeKey(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

}  // namespace

void Topology::normalize() {
  for (auto& [a, b] : edges) {
    if (a > b) std::swap(a, b);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  buildIndex();
}

void Topology::buildIndex() const {
  if (nodeCount < 0) throw std::invalid_argument("topology: negative node count");
  const auto n = static_cast<std::size_t>(nodeCount);
  offsets_.clear();
  nbrs_.clear();
  std::vector<std::int32_t> degree(n, 0);
  const std::pair<NodeId, NodeId>* prev = nullptr;
  for (const auto& e : edges) {
    const auto [a, b] = e;
    if (a < 0 || b >= nodeCount) {
      throw std::invalid_argument("topology: edge (" + std::to_string(a) + ", " +
                                  std::to_string(b) + ") out of range for " +
                                  std::to_string(nodeCount) + " nodes");
    }
    if (a == b) {
      throw std::invalid_argument("topology: self-loop at node " + std::to_string(a));
    }
    if (a > b) {
      throw std::invalid_argument("topology: edge (" + std::to_string(a) + ", " +
                                  std::to_string(b) +
                                  ") is not canonical (a < b); call normalize()");
    }
    if (prev != nullptr && !(*prev < e)) {
      throw std::invalid_argument("topology: edges are not sorted and unique near (" +
                                  std::to_string(a) + ", " + std::to_string(b) +
                                  "); call normalize()");
    }
    prev = &e;
    ++degree[static_cast<std::size_t>(a)];
    ++degree[static_cast<std::size_t>(b)];
  }
  offsets_.resize(n + 1);
  offsets_[0] = 0;
  for (std::size_t i = 0; i < n; ++i) offsets_[i + 1] = offsets_[i] + degree[i];
  nbrs_.resize(2 * edges.size());
  std::vector<std::int32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [a, b] : edges) {
    nbrs_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(a)]++)] = b;
    nbrs_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(b)]++)] = a;
  }
  // Neighbor runs come out sorted except for the second endpoints, which
  // arrive in edge order; sort each run so hasEdge can binary-search.
  for (std::size_t i = 0; i < n; ++i) {
    std::sort(nbrs_.begin() + offsets_[i], nbrs_.begin() + offsets_[i + 1]);
  }
}

std::span<const NodeId> Topology::neighbors(NodeId n) const {
  ensureIndex();
  if (n < 0 || n >= nodeCount) {
    throw std::invalid_argument("topology: node " + std::to_string(n) + " out of range");
  }
  const auto lo = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(n)]);
  const auto hi = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(n) + 1]);
  return {nbrs_.data() + lo, hi - lo};
}

std::vector<std::vector<NodeId>> Topology::adjacency() const {
  ensureIndex();
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(nodeCount));
  for (NodeId n = 0; n < nodeCount; ++n) {
    const auto nb = neighbors(n);
    adj[static_cast<std::size_t>(n)].assign(nb.begin(), nb.end());
  }
  return adj;
}

int Topology::degreeOf(NodeId n) const {
  return static_cast<int>(neighbors(n).size());
}

bool Topology::hasEdge(NodeId a, NodeId b) const {
  ensureIndex();
  if (a < 0 || a >= nodeCount || b < 0 || b >= nodeCount) return false;
  const auto nb = neighbors(a);
  return std::binary_search(nb.begin(), nb.end(), b);
}

bool Topology::isConnected() const {
  if (nodeCount == 0) return true;
  ensureIndex();
  std::vector<char> seen(static_cast<std::size_t>(nodeCount), 0);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = 1;
  int visited = 1;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const NodeId v : neighbors(u)) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        ++visited;
        q.push(v);
      }
    }
  }
  return visited == nodeCount;
}

namespace {

/// Parity predicates that let a link family contribute exactly +1 to every
/// interior node's degree (each node gets either the outgoing or the
/// incoming instance of the offset, never both — see DESIGN.md §4).
enum class Pred {
  All,         ///< every node emits the offset (+2 interior degree)
  DiagParity,  ///< (r + c) even
  RowEven,     ///< r even
  ColMod4,     ///< c mod 4 in {0, 1}
  RowMod4,     ///< r mod 4 in {0, 1}
};

struct LinkRule {
  int dr;
  int dc;
  Pred pred;
};

bool predHolds(Pred p, int r, int c) {
  switch (p) {
    case Pred::All: return true;
    case Pred::DiagParity: return (r + c) % 2 == 0;
    case Pred::RowEven: return r % 2 == 0;
    case Pred::ColMod4: return c % 4 < 2;
    case Pred::RowMod4: return r % 4 < 2;
  }
  return false;
}

/// Ordered construction stages. For target degree d we take the rules listed
/// for that degree; each `All` rule adds 2 to the interior degree and each
/// parity rule adds exactly 1.
std::vector<LinkRule> rulesForDegree(int degree) {
  switch (degree) {
    case 3:
      return {{0, 1, Pred::All}, {1, 0, Pred::DiagParity}};
    case 4:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}};
    case 5:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::RowEven}};
    case 6:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}};
    case 7:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::RowEven}};
    case 8:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All}};
    case 9:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All},
              {0, 2, Pred::ColMod4}};
    case 10:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All},
              {0, 2, Pred::All}};
    case 11:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All},
              {0, 2, Pred::All}, {2, 0, Pred::RowMod4}};
    case 12:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All},
              {0, 2, Pred::All}, {2, 0, Pred::All}};
    case 13:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All},
              {0, 2, Pred::All}, {2, 0, Pred::All}, {1, 2, Pred::ColMod4}};
    case 14:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All},
              {0, 2, Pred::All}, {2, 0, Pred::All}, {1, 2, Pred::All}};
    case 15:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All},
              {0, 2, Pred::All}, {2, 0, Pred::All}, {1, 2, Pred::All}, {2, 1, Pred::RowMod4}};
    case 16:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All},
              {0, 2, Pred::All}, {2, 0, Pred::All}, {1, 2, Pred::All}, {2, 1, Pred::All}};
    default:
      throw std::invalid_argument("mesh degree must be in [3, 16], got " +
                                  std::to_string(degree));
  }
}

}  // namespace

namespace {

/// One draw of the random-graph family for a concrete seed (the retry loop
/// in makeRandomTopology feeds derived seeds through here).
Topology drawRandomTopology(const RandomGraphSpec& spec, std::uint64_t seed) {
  if (spec.nodes < 2) throw std::invalid_argument("random graph needs >= 2 nodes");
  if (!(spec.avgDegree >= 0.0) || spec.avgDegree > static_cast<double>(spec.nodes)) {
    // !(x >= 0) also catches NaN, which would otherwise be cast to an
    // integer edge target (undefined behavior).
    throw std::invalid_argument("random graph average degree must be in [0, nodes]");
  }
  const auto maxEdges =
      static_cast<std::size_t>(spec.nodes) * static_cast<std::size_t>(spec.nodes - 1) / 2;
  auto target = static_cast<std::size_t>(spec.avgDegree * spec.nodes / 2.0 + 0.5);
  // The tree skeleton needs its n-1 edges; a pure G(n, m) draw may be as
  // sparse as requested (that is the point of turning the tree off).
  if (spec.spanningTree) {
    target = std::max<std::size_t>(target, static_cast<std::size_t>(spec.nodes - 1));
  }
  if (target > maxEdges) {
    throw std::invalid_argument("average degree too high for node count");
  }

  Rng rng{seed};
  Topology topo;
  topo.nodeCount = spec.nodes;

  std::unordered_set<std::uint64_t> present;
  present.reserve(target * 2);
  topo.edges.reserve(target);
  auto addEdge = [&](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    if (present.insert(edgeKey(a, b)).second) topo.edges.emplace_back(a, b);
  };
  if (spec.spanningTree) {
    // Random spanning tree: attach each node (in a random order) to a
    // uniformly chosen, already-attached node. Guarantees connectivity.
    std::vector<NodeId> order(static_cast<std::size_t>(spec.nodes));
    for (NodeId i = 0; i < spec.nodes; ++i) order[static_cast<std::size_t>(i)] = i;
    for (std::size_t i = order.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(i)));
      std::swap(order[i], order[j]);
    }
    for (std::size_t i = 1; i < order.size(); ++i) {
      const auto j =
          static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(i) - 1));
      addEdge(order[i], order[j]);
    }
  }

  if (target * 2 <= maxEdges) {
    // Sparse regime: rejection-sample uniform pairs. The accepted edge set
    // (and therefore the canonical sorted output) is bit-identical, per
    // seed, to the historical std::set-based generator.
    while (topo.edges.size() < target) {
      const auto a = static_cast<NodeId>(rng.uniformInt(0, spec.nodes - 1));
      const auto b = static_cast<NodeId>(rng.uniformInt(0, spec.nodes - 1));
      if (a == b) continue;
      addEdge(a, b);
    }
  } else {
    // Dense regime (more than half of the complete graph): rejection
    // sampling degenerates toward a coupon-collector near-hang as target
    // approaches maxEdges. Enumerate the complement of the spanning tree
    // once and draw the remaining edges by partial Fisher-Yates instead —
    // O(nodes^2) total, independent of density.
    std::vector<std::pair<NodeId, NodeId>> pool;
    pool.reserve(maxEdges - topo.edges.size());
    for (NodeId a = 0; a < spec.nodes; ++a) {
      for (NodeId b = a + 1; b < spec.nodes; ++b) {
        if (present.find(edgeKey(a, b)) == present.end()) pool.emplace_back(a, b);
      }
    }
    for (std::size_t k = 0; topo.edges.size() < target; ++k) {
      const auto j = k + static_cast<std::size_t>(rng.uniformInt(
                             0, static_cast<std::int64_t>(pool.size() - k) - 1));
      std::swap(pool[k], pool[j]);
      topo.edges.push_back(pool[k]);
    }
  }
  topo.normalize();
  return topo;
}

/// Connected components in ascending order of their smallest node id.
std::vector<std::vector<NodeId>> components(const Topology& topo) {
  std::vector<std::vector<NodeId>> comps;
  std::vector<char> seen(static_cast<std::size_t>(topo.nodeCount), 0);
  for (NodeId start = 0; start < topo.nodeCount; ++start) {
    if (seen[static_cast<std::size_t>(start)]) continue;
    std::vector<NodeId> comp{start};
    seen[static_cast<std::size_t>(start)] = 1;
    for (std::size_t i = 0; i < comp.size(); ++i) {
      for (const NodeId v : topo.neighbors(comp[i])) {
        if (!seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = 1;
          comp.push_back(v);
        }
      }
    }
    comps.push_back(std::move(comp));
  }
  return comps;
}

}  // namespace

Topology makeRandomTopology(const RandomGraphSpec& spec) {
  Topology topo = drawRandomTopology(spec, spec.seed);
  if (!spec.ensureConnected || topo.isConnected()) return topo;

  // Retry: a handful of derived sub-seeds (odd golden-ratio increments so
  // distinct attempts never collide), each a fresh independent draw.
  constexpr int kRetries = 8;
  for (int k = 1; k <= kRetries; ++k) {
    topo = drawRandomTopology(spec, spec.seed + 0x9E3779B97F4A7C15ULL * static_cast<unsigned>(k));
    if (topo.isConnected()) return topo;
  }

  // Repair: still split (sparse draws essentially always are) — chain the
  // components together by their smallest node ids. Deterministic, keeps
  // every drawn edge, and adds exactly components-1 bridges.
  const auto comps = components(topo);
  for (std::size_t c = 1; c < comps.size(); ++c) {
    topo.edges.emplace_back(std::min(comps[c - 1][0], comps[c][0]),
                            std::max(comps[c - 1][0], comps[c][0]));
  }
  topo.normalize();
  return topo;
}

Topology makeRegularMesh(const MeshSpec& spec) {
  if (spec.rows < 3 || spec.cols < 3) {
    throw std::invalid_argument("mesh requires rows, cols >= 3");
  }
  const auto nodes = static_cast<std::int64_t>(spec.rows) * spec.cols;
  if (nodes > std::numeric_limits<NodeId>::max()) {
    throw std::invalid_argument("mesh " + std::to_string(spec.rows) + "x" +
                                std::to_string(spec.cols) + " has " + std::to_string(nodes) +
                                " nodes, which overflows the 32-bit node id space");
  }
  const auto rules = rulesForDegree(spec.degree);
  Topology topo;
  topo.nodeCount = static_cast<int>(nodes);
  // Every rule is emitted with (r2, c2) in-range and r2 >= r, so a < b in
  // row-major numbering except for same-row negative-dc rules — normalize()
  // below canonicalizes those and dedupes overlapping parity rules.
  topo.edges.reserve(static_cast<std::size_t>(nodes) *
                     static_cast<std::size_t>(spec.degree + 1) / 2);
  for (int r = 0; r < spec.rows; ++r) {
    for (int c = 0; c < spec.cols; ++c) {
      for (const auto& rule : rules) {
        if (!predHolds(rule.pred, r, c)) continue;
        const int r2 = r + rule.dr;
        const int c2 = c + rule.dc;
        if (r2 < 0 || r2 >= spec.rows || c2 < 0 || c2 >= spec.cols) continue;
        NodeId a = gridId(r, c, spec.cols);
        NodeId b = gridId(r2, c2, spec.cols);
        if (a > b) std::swap(a, b);
        topo.edges.emplace_back(a, b);
      }
    }
  }
  topo.normalize();
  return topo;
}

}  // namespace rcsim
