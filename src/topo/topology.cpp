#include "topo/topology.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <set>
#include <stdexcept>
#include <string>

#include "sim/random.hpp"

namespace rcsim {

std::vector<std::vector<NodeId>> Topology::adjacency() const {
  std::vector<std::vector<NodeId>> adj(static_cast<std::size_t>(nodeCount));
  for (const auto& [a, b] : edges) {
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  }
  return adj;
}

int Topology::degreeOf(NodeId n) const {
  int d = 0;
  for (const auto& [a, b] : edges) {
    if (a == n || b == n) ++d;
  }
  return d;
}

bool Topology::hasEdge(NodeId a, NodeId b) const {
  if (a > b) std::swap(a, b);
  return std::binary_search(edges.begin(), edges.end(), std::make_pair(a, b));
}

bool Topology::isConnected() const {
  if (nodeCount == 0) return true;
  const auto adj = adjacency();
  std::vector<char> seen(static_cast<std::size_t>(nodeCount), 0);
  std::queue<NodeId> q;
  q.push(0);
  seen[0] = 1;
  int visited = 1;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (const NodeId v : adj[static_cast<std::size_t>(u)]) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        ++visited;
        q.push(v);
      }
    }
  }
  return visited == nodeCount;
}

namespace {

/// Parity predicates that let a link family contribute exactly +1 to every
/// interior node's degree (each node gets either the outgoing or the
/// incoming instance of the offset, never both — see DESIGN.md §4).
enum class Pred {
  All,         ///< every node emits the offset (+2 interior degree)
  DiagParity,  ///< (r + c) even
  RowEven,     ///< r even
  ColMod4,     ///< c mod 4 in {0, 1}
  RowMod4,     ///< r mod 4 in {0, 1}
};

struct LinkRule {
  int dr;
  int dc;
  Pred pred;
};

bool predHolds(Pred p, int r, int c) {
  switch (p) {
    case Pred::All: return true;
    case Pred::DiagParity: return (r + c) % 2 == 0;
    case Pred::RowEven: return r % 2 == 0;
    case Pred::ColMod4: return c % 4 < 2;
    case Pred::RowMod4: return r % 4 < 2;
  }
  return false;
}

/// Ordered construction stages. For target degree d we take the rules listed
/// for that degree; each `All` rule adds 2 to the interior degree and each
/// parity rule adds exactly 1.
std::vector<LinkRule> rulesForDegree(int degree) {
  switch (degree) {
    case 3:
      return {{0, 1, Pred::All}, {1, 0, Pred::DiagParity}};
    case 4:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}};
    case 5:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::RowEven}};
    case 6:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}};
    case 7:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::RowEven}};
    case 8:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All}};
    case 9:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All},
              {0, 2, Pred::ColMod4}};
    case 10:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All},
              {0, 2, Pred::All}};
    case 11:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All},
              {0, 2, Pred::All}, {2, 0, Pred::RowMod4}};
    case 12:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All},
              {0, 2, Pred::All}, {2, 0, Pred::All}};
    case 13:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All},
              {0, 2, Pred::All}, {2, 0, Pred::All}, {1, 2, Pred::ColMod4}};
    case 14:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All},
              {0, 2, Pred::All}, {2, 0, Pred::All}, {1, 2, Pred::All}};
    case 15:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All},
              {0, 2, Pred::All}, {2, 0, Pred::All}, {1, 2, Pred::All}, {2, 1, Pred::RowMod4}};
    case 16:
      return {{0, 1, Pred::All}, {1, 0, Pred::All}, {1, 1, Pred::All}, {1, -1, Pred::All},
              {0, 2, Pred::All}, {2, 0, Pred::All}, {1, 2, Pred::All}, {2, 1, Pred::All}};
    default:
      throw std::invalid_argument("mesh degree must be in [3, 16], got " +
                                  std::to_string(degree));
  }
}

}  // namespace

Topology makeRandomTopology(const RandomGraphSpec& spec) {
  if (spec.nodes < 2) throw std::invalid_argument("random graph needs >= 2 nodes");
  const auto maxEdges =
      static_cast<std::size_t>(spec.nodes) * static_cast<std::size_t>(spec.nodes - 1) / 2;
  auto target = static_cast<std::size_t>(spec.avgDegree * spec.nodes / 2.0 + 0.5);
  target = std::max<std::size_t>(target, static_cast<std::size_t>(spec.nodes - 1));
  if (target > maxEdges) {
    throw std::invalid_argument("average degree too high for node count");
  }

  Rng rng{spec.seed};
  Topology topo;
  topo.nodeCount = spec.nodes;

  // Random spanning tree: attach each node (in a random order) to a
  // uniformly chosen, already-attached node. Guarantees connectivity.
  std::vector<NodeId> order(static_cast<std::size_t>(spec.nodes));
  for (NodeId i = 0; i < spec.nodes; ++i) order[static_cast<std::size_t>(i)] = i;
  for (std::size_t i = order.size() - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(i)));
    std::swap(order[i], order[j]);
  }
  std::set<std::pair<NodeId, NodeId>> edges;
  for (std::size_t i = 1; i < order.size(); ++i) {
    const auto j = static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(i) - 1));
    NodeId a = order[i];
    NodeId b = order[j];
    if (a > b) std::swap(a, b);
    edges.emplace(a, b);
  }
  // Fill to the target with uniform random extra edges.
  while (edges.size() < target) {
    NodeId a = static_cast<NodeId>(rng.uniformInt(0, spec.nodes - 1));
    NodeId b = static_cast<NodeId>(rng.uniformInt(0, spec.nodes - 1));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    edges.emplace(a, b);
  }
  topo.edges.assign(edges.begin(), edges.end());
  return topo;
}

Topology makeRegularMesh(const MeshSpec& spec) {
  if (spec.rows < 3 || spec.cols < 3) {
    throw std::invalid_argument("mesh requires rows, cols >= 3");
  }
  const auto rules = rulesForDegree(spec.degree);
  Topology topo;
  topo.nodeCount = spec.rows * spec.cols;
  for (int r = 0; r < spec.rows; ++r) {
    for (int c = 0; c < spec.cols; ++c) {
      for (const auto& rule : rules) {
        if (!predHolds(rule.pred, r, c)) continue;
        const int r2 = r + rule.dr;
        const int c2 = c + rule.dc;
        if (r2 < 0 || r2 >= spec.rows || c2 < 0 || c2 >= spec.cols) continue;
        NodeId a = gridId(r, c, spec.cols);
        NodeId b = gridId(r2, c2, spec.cols);
        if (a > b) std::swap(a, b);
        topo.edges.emplace_back(a, b);
      }
    }
  }
  std::sort(topo.edges.begin(), topo.edges.end());
  topo.edges.erase(std::unique(topo.edges.begin(), topo.edges.end()), topo.edges.end());
  return topo;
}

}  // namespace rcsim
