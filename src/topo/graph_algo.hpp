#pragma once

#include <vector>

#include "topo/topology.hpp"

namespace rcsim {

/// Unit-cost BFS distances from `src` to every node; -1 when unreachable.
[[nodiscard]] std::vector<int> bfsDistances(const Topology& topo, NodeId src);

/// Largest finite pairwise distance; -1 if the graph is disconnected.
[[nodiscard]] int graphDiameter(const Topology& topo);

/// Number of edge-disjoint shortest-path "first hops": how many neighbors of
/// `src` lie on some shortest path to `dst`. This is the alternate-path
/// supply the paper's §4.2 reasons about.
[[nodiscard]] int shortestFirstHops(const Topology& topo, NodeId src, NodeId dst);

}  // namespace rcsim
