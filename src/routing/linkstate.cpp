#include "routing/linkstate.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "net/network.hpp"
#include "net/node.hpp"

namespace rcsim {

LinkState::LinkState(Node& node, LinkStateConfig cfg) : RoutingProtocol{node}, cfg_{cfg} {
  oracle_ = cfg_.spfOracle || std::getenv("RCSIM_SPF_ORACLE") != nullptr;
}

LinkState::~LinkState() {
  node_.scheduler().cancel(spfTimer_);
  node_.scheduler().cancel(refreshTimer_);
}

void LinkState::start() {
  const auto n = node_.network().nodeCount();
  db_.assign(n, {});
  dist_.assign(n, -1);
  parent_.assign(n, kInvalidNode);
  firstHop_.assign(n, kInvalidNode);
  affectedEpoch_.assign(n, 0);
  settledEpoch_.assign(n, 0);
  buckets_.assign(n + 2, {});
  aliveNeighbors_ = node_.neighbors();
  std::sort(aliveNeighbors_.begin(), aliveNeighbors_.end());
  originateOwnLsa();
  const double phase = node_.rng().uniform(0.0, cfg_.refreshInterval.toSeconds());
  refreshTimer_ = node_.scheduler().scheduleAfter(Time::seconds(phase), EventKind::Protocol,
                                                  [this] { refreshTick(); });
}

void LinkState::refreshTick() {
  originateOwnLsa();
  const double jitter = cfg_.refreshJitter.toSeconds();
  const double next = cfg_.refreshInterval.toSeconds() + node_.rng().uniform(-jitter, jitter);
  refreshTimer_ = node_.scheduler().scheduleAfter(Time::seconds(next), EventKind::Protocol,
                                                  [this] { refreshTick(); });
}

bool LinkState::aliveContains(NodeId n) const {
  return std::binary_search(aliveNeighbors_.begin(), aliveNeighbors_.end(), n);
}

bool LinkState::listsNeighbor(NodeId origin, NodeId nbr) const {
  if (static_cast<std::size_t>(origin) >= db_.size()) return false;
  const auto& nbrs = db_[static_cast<std::size_t>(origin)].neighbors;
  return std::binary_search(nbrs.begin(), nbrs.end(), nbr);
}

bool LinkState::usableEdge(NodeId u, NodeId v) const {
  if (!listsNeighbor(u, v) || !listsNeighbor(v, u)) return false;
  // Self-adjacency must also be alive: the LSDB can briefly trail the local
  // interface state only in the outward direction, never for self.
  if (u == node_.id() && !aliveContains(v)) return false;
  if (v == node_.id() && !aliveContains(u)) return false;
  return true;
}

void LinkState::applyDb(NodeId origin, const std::vector<NodeId>& neighbors) {
  auto& entry = db_[static_cast<std::size_t>(origin)];
  // Merge-walk both sorted lists; a one-sided edge is unusable, so only
  // changes whose *reverse* direction is present in the LSDB alter the
  // usable graph. This also dedups the LSA pair a link event floods: the
  // second origin's change is recorded against the already-updated first.
  const auto& old = entry.neighbors;
  std::size_t i = 0, j = 0;
  while (i < old.size() || j < neighbors.size()) {
    if (j == neighbors.size() || (i < old.size() && old[i] < neighbors[j])) {
      if (listsNeighbor(old[i], origin)) {
        if (removedEdges_.size() >= kMaxRemovedEdges) {
          deltaOverflow_ = true;
        } else {
          removedEdges_.emplace_back(origin, old[i]);
        }
      }
      ++i;
    } else if (i == old.size() || neighbors[j] < old[i]) {
      if (listsNeighbor(neighbors[j], origin)) deltaAdds_ = true;
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  entry.neighbors = neighbors;
}

void LinkState::originateOwnLsa() {
  auto lsa = std::make_shared<Lsa>();
  lsa->origin = node_.id();
  lsa->seq = ++ownSeq_;
  lsa->neighbors = aliveNeighbors_;  // already sorted
  db_[static_cast<std::size_t>(node_.id())].seq = lsa->seq;
  applyDb(node_.id(), lsa->neighbors);
  flood(lsa, kInvalidNode);
  scheduleSpf();
}

void LinkState::flood(const std::shared_ptr<const Lsa>& lsa, NodeId except) {
  for (const NodeId n : aliveNeighbors_) {
    if (n == except) continue;
    ++lsasSent_;
    node_.sendControl(n, lsa);
  }
}

void LinkState::onMessage(NodeId from, std::shared_ptr<const ControlPayload> msg) {
  auto lsa = std::dynamic_pointer_cast<const Lsa>(msg);
  if (!lsa) return;
  if (lsa->origin == node_.id()) return;  // our own LSA echoed back
  if (static_cast<std::size_t>(lsa->origin) >= db_.size()) return;
  auto& entry = db_[static_cast<std::size_t>(lsa->origin)];
  if (entry.seq >= lsa->seq) return;  // stale or duplicate
  entry.seq = lsa->seq;
  applyDb(lsa->origin, lsa->neighbors);
  flood(lsa, from);
  scheduleSpf();
}

void LinkState::onLinkDown(NodeId neighbor) {
  const auto it = std::lower_bound(aliveNeighbors_.begin(), aliveNeighbors_.end(), neighbor);
  if (it == aliveNeighbors_.end() || *it != neighbor) return;
  aliveNeighbors_.erase(it);
  originateOwnLsa();
}

void LinkState::onLinkUp(NodeId neighbor) {
  const auto it = std::lower_bound(aliveNeighbors_.begin(), aliveNeighbors_.end(), neighbor);
  if (it != aliveNeighbors_.end() && *it == neighbor) return;
  aliveNeighbors_.insert(it, neighbor);
  originateOwnLsa();
  // Database sync on adjacency formation: send our whole DB to the neighbor.
  for (NodeId origin = 0; origin < static_cast<NodeId>(db_.size()); ++origin) {
    const auto& entry = db_[static_cast<std::size_t>(origin)];
    if (entry.seq == 0) continue;
    auto lsa = std::make_shared<Lsa>();
    lsa->origin = origin;
    lsa->seq = entry.seq;
    lsa->neighbors = entry.neighbors;
    ++lsasSent_;
    node_.sendControl(neighbor, std::move(lsa));
  }
}

void LinkState::scheduleSpf() {
  if (spfPending_) return;
  spfPending_ = true;
  spfTimer_ = node_.scheduler().scheduleAfter(cfg_.spfDelay, EventKind::Protocol, [this] {
    spfPending_ = false;
    runSpf();
  });
}

void LinkState::clearDelta() {
  removedEdges_.clear();
  deltaAdds_ = false;
  deltaOverflow_ = false;
}

void LinkState::runSpf() {
  if (haveSpf_ && removedEdges_.empty() && !deltaAdds_ && !deltaOverflow_) {
    // Seq-only refreshes: the usable graph did not change, so neither can
    // the shortest-path tree.
    ++spfSkips_;
    if (oracle_) verifySpf();
    return;
  }
  ++spfRuns_;
  if (haveSpf_ && !deltaAdds_ && !deltaOverflow_ && incrementalSpf()) {
    ++spfIncrementals_;
    clearDelta();
    if (oracle_) verifySpf();
    return;
  }
  fullSpf();
  ++spfFulls_;
  clearDelta();
}

void LinkState::fullSpf() {
  const auto n = node_.network().nodeCount();
  const NodeId self = node_.id();
  std::fill(dist_.begin(), dist_.end(), -1);
  std::fill(parent_.begin(), parent_.end(), kInvalidNode);
  std::fill(firstHop_.begin(), firstHop_.end(), kInvalidNode);
  // Unit link costs: BFS from self over bidirectionally-confirmed edges.
  // First discovery (sorted LSA neighbor lists, FIFO queue) selects the
  // lexicographically-smallest shortest path — the tie-break incrementalSpf
  // reproduces.
  std::vector<NodeId> queue;
  queue.reserve(n);
  dist_[static_cast<std::size_t>(self)] = 0;
  queue.push_back(self);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (const NodeId v : db_[static_cast<std::size_t>(u)].neighbors) {
      if (static_cast<std::size_t>(v) >= n) continue;
      if (dist_[static_cast<std::size_t>(v)] >= 0) continue;
      if (u == self && !aliveContains(v)) continue;
      if (!listsNeighbor(v, u)) continue;  // one-sided edge (u lists v by iteration)
      dist_[static_cast<std::size_t>(v)] = dist_[static_cast<std::size_t>(u)] + 1;
      parent_[static_cast<std::size_t>(v)] = u;
      firstHop_[static_cast<std::size_t>(v)] =
          u == self ? v : firstHop_[static_cast<std::size_t>(u)];
      queue.push_back(v);
    }
  }
  for (NodeId d = 0; d < static_cast<NodeId>(n); ++d) {
    if (d == self) continue;
    node_.setRoute(d, firstHop_[static_cast<std::size_t>(d)]);
  }
  haveSpf_ = true;
}

bool LinkState::lexPathLess(NodeId a, NodeId b) const {
  chainA_.clear();
  chainB_.clear();
  for (NodeId v = a; v != kInvalidNode; v = parent_[static_cast<std::size_t>(v)])
    chainA_.push_back(v);
  for (NodeId v = b; v != kInvalidNode; v = parent_[static_cast<std::size_t>(v)])
    chainB_.push_back(v);
  assert(chainA_.size() == chainB_.size() && "lex comparison requires equal depth");
  // Both chains run node → … → self; compare source-outward.
  for (std::size_t k = chainA_.size(); k-- > 0;) {
    if (chainA_[k] != chainB_[k]) return chainA_[k] < chainB_[k];
  }
  return false;
}

bool LinkState::incrementalSpf() {
  const auto n = node_.network().nodeCount();
  const NodeId self = node_.id();

  // 1. Roots: children of removed tree edges. A removed edge that is not a
  // tree edge cannot change any distance (deletions only lengthen paths and
  // the tree is intact) nor any parent (the chosen parent is still present
  // and still lex-minimal), so an empty root set means the result is
  // provably unchanged.
  std::vector<NodeId> roots;
  for (const auto& [a, b] : removedEdges_) {
    if (static_cast<std::size_t>(a) < n && parent_[static_cast<std::size_t>(a)] == b)
      roots.push_back(a);
    if (static_cast<std::size_t>(b) < n && parent_[static_cast<std::size_t>(b)] == a)
      roots.push_back(b);
  }
  if (roots.empty()) return true;

  // 2. Mark the detached subtrees (CSR child lists over parent_).
  std::vector<int> childOff(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (parent_[v] != kInvalidNode) ++childOff[static_cast<std::size_t>(parent_[v]) + 1];
  }
  for (std::size_t v = 0; v < n; ++v) childOff[v + 1] += childOff[v];
  std::vector<NodeId> childOf(static_cast<std::size_t>(childOff[n]));
  {
    std::vector<int> cursor(childOff.begin(), childOff.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      if (parent_[v] != kInvalidNode) {
        childOf[static_cast<std::size_t>(cursor[static_cast<std::size_t>(parent_[v])]++)] =
            static_cast<NodeId>(v);
      }
    }
  }
  ++epoch_;
  std::vector<NodeId> affected;
  for (const NodeId r : roots) {
    if (affectedEpoch_[static_cast<std::size_t>(r)] != epoch_) {
      affectedEpoch_[static_cast<std::size_t>(r)] = epoch_;
      affected.push_back(r);
    }
  }
  for (std::size_t head = 0; head < affected.size(); ++head) {
    const auto u = static_cast<std::size_t>(affected[head]);
    for (int k = childOff[u]; k < childOff[u + 1]; ++k) {
      const NodeId c = childOf[static_cast<std::size_t>(k)];
      if (affectedEpoch_[static_cast<std::size_t>(c)] != epoch_) {
        affectedEpoch_[static_cast<std::size_t>(c)] = epoch_;
        affected.push_back(c);
      }
    }
  }
  if (affected.size() * 2 > n) return false;  // repair would cost more than a full pass

  // 3. Seed tentative distances from the unaffected boundary. Unaffected
  // distances/parents are provably unchanged, so every shortest path into
  // the affected region crosses exactly one boundary edge, captured here.
  const int unreached = static_cast<int>(n) + 1;
  auto isAffected = [&](NodeId v) {
    return affectedEpoch_[static_cast<std::size_t>(v)] == epoch_;
  };
  auto isSettled = [&](NodeId v) {
    return settledEpoch_[static_cast<std::size_t>(v)] == epoch_;
  };
  for (const NodeId v : affected) {
    int best = unreached;
    for (const NodeId u : db_[static_cast<std::size_t>(v)].neighbors) {
      if (static_cast<std::size_t>(u) >= n || isAffected(u)) continue;
      if (dist_[static_cast<std::size_t>(u)] < 0) continue;
      if (!usableEdge(u, v)) continue;
      best = std::min(best, dist_[static_cast<std::size_t>(u)] + 1);
    }
    dist_[static_cast<std::size_t>(v)] = best;  // old value is no longer needed
    if (best < unreached) buckets_[static_cast<std::size_t>(best)].push_back(v);
  }

  // 4. Settle in increasing distance (bucket queue). On settlement pick the
  // parent with the lex-smallest path among *all* finalized predecessors at
  // depth d-1 — exactly full-BFS first-discovery order.
  for (int d = 0; d <= static_cast<int>(n); ++d) {
    auto& bucket = buckets_[static_cast<std::size_t>(d)];
    for (std::size_t idx = 0; idx < bucket.size(); ++idx) {
      const NodeId v = bucket[idx];
      if (isSettled(v) || dist_[static_cast<std::size_t>(v)] != d) continue;  // stale entry
      settledEpoch_[static_cast<std::size_t>(v)] = epoch_;
      NodeId bestParent = kInvalidNode;
      for (const NodeId u : db_[static_cast<std::size_t>(v)].neighbors) {
        if (static_cast<std::size_t>(u) >= n) continue;
        if (isAffected(u) && !isSettled(u)) continue;  // not finalized yet
        if (dist_[static_cast<std::size_t>(u)] != d - 1) continue;
        if (!usableEdge(u, v)) continue;
        if (bestParent == kInvalidNode || lexPathLess(u, bestParent)) bestParent = u;
      }
      assert(bestParent != kInvalidNode && "settled node must have a finalized predecessor");
      parent_[static_cast<std::size_t>(v)] = bestParent;
      firstHop_[static_cast<std::size_t>(v)] =
          bestParent == self ? v : firstHop_[static_cast<std::size_t>(bestParent)];
      for (const NodeId w : db_[static_cast<std::size_t>(v)].neighbors) {
        if (static_cast<std::size_t>(w) >= n) continue;
        if (!isAffected(w) || isSettled(w)) continue;
        if (!usableEdge(v, w)) continue;
        if (d + 1 < dist_[static_cast<std::size_t>(w)]) {
          dist_[static_cast<std::size_t>(w)] = d + 1;
          buckets_[static_cast<std::size_t>(d) + 1].push_back(w);
        }
      }
    }
    bucket.clear();
  }

  // 5. Install only the affected destinations, ascending — unaffected
  // entries are untouched, so the RouteChange event stream matches a full
  // recomputation bit for bit.
  std::sort(affected.begin(), affected.end());
  for (const NodeId v : affected) {
    if (!isSettled(v)) {
      dist_[static_cast<std::size_t>(v)] = -1;
      parent_[static_cast<std::size_t>(v)] = kInvalidNode;
      firstHop_[static_cast<std::size_t>(v)] = kInvalidNode;
    }
    node_.setRoute(v, firstHop_[static_cast<std::size_t>(v)]);
  }
  return true;
}

void LinkState::verifySpf() const {
  const auto n = node_.network().nodeCount();
  const NodeId self = node_.id();
  std::vector<int> dist(n, -1);
  std::vector<NodeId> parent(n, kInvalidNode);
  std::vector<NodeId> firstHop(n, kInvalidNode);
  std::vector<NodeId> queue;
  queue.reserve(n);
  dist[static_cast<std::size_t>(self)] = 0;
  queue.push_back(self);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId u = queue[head];
    for (const NodeId v : db_[static_cast<std::size_t>(u)].neighbors) {
      if (static_cast<std::size_t>(v) >= n) continue;
      if (dist[static_cast<std::size_t>(v)] >= 0) continue;
      if (u == self && !aliveContains(v)) continue;
      if (!listsNeighbor(v, u)) continue;
      dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
      parent[static_cast<std::size_t>(v)] = u;
      firstHop[static_cast<std::size_t>(v)] = u == self ? v : firstHop[static_cast<std::size_t>(u)];
      queue.push_back(v);
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (dist[v] == dist_[v] && parent[v] == parent_[v] && firstHop[v] == firstHop_[v]) continue;
    throw std::logic_error(
        "LS incremental SPF diverged from full BFS at node " + std::to_string(node_.id()) +
        " dst " + std::to_string(v) + ": dist " + std::to_string(dist_[v]) + " vs " +
        std::to_string(dist[v]) + ", parent " + std::to_string(parent_[v]) + " vs " +
        std::to_string(parent[v]) + ", firstHop " + std::to_string(firstHop_[v]) + " vs " +
        std::to_string(firstHop[v]));
  }
}

}  // namespace rcsim
