#include "routing/linkstate.hpp"

#include <algorithm>
#include <queue>

#include "net/network.hpp"
#include "net/node.hpp"

namespace rcsim {

LinkState::LinkState(Node& node, LinkStateConfig cfg) : RoutingProtocol{node}, cfg_{cfg} {}

LinkState::~LinkState() {
  node_.scheduler().cancel(spfTimer_);
  node_.scheduler().cancel(refreshTimer_);
}

void LinkState::start() {
  for (const NodeId n : node_.neighbors()) aliveNeighbors_.insert(n);
  originateOwnLsa();
  const double phase = node_.rng().uniform(0.0, cfg_.refreshInterval.toSeconds());
  refreshTimer_ = node_.scheduler().scheduleAfter(Time::seconds(phase), [this] { refreshTick(); });
}

void LinkState::refreshTick() {
  originateOwnLsa();
  const double jitter = cfg_.refreshJitter.toSeconds();
  const double next = cfg_.refreshInterval.toSeconds() + node_.rng().uniform(-jitter, jitter);
  refreshTimer_ = node_.scheduler().scheduleAfter(Time::seconds(next), [this] { refreshTick(); });
}

void LinkState::originateOwnLsa() {
  auto lsa = std::make_shared<Lsa>();
  lsa->origin = node_.id();
  lsa->seq = ++ownSeq_;
  lsa->neighbors.assign(aliveNeighbors_.begin(), aliveNeighbors_.end());
  auto& mine = db_[node_.id()];
  mine.seq = lsa->seq;
  mine.neighbors = lsa->neighbors;
  flood(lsa, kInvalidNode);
  scheduleSpf();
}

void LinkState::flood(const std::shared_ptr<const Lsa>& lsa, NodeId except) {
  for (const NodeId n : aliveNeighbors_) {
    if (n == except) continue;
    ++lsasSent_;
    node_.sendControl(n, lsa);
  }
}

void LinkState::onMessage(NodeId from, std::shared_ptr<const ControlPayload> msg) {
  auto lsa = std::dynamic_pointer_cast<const Lsa>(msg);
  if (!lsa) return;
  if (lsa->origin == node_.id()) return;  // our own LSA echoed back
  auto& entry = db_[lsa->origin];
  if (entry.seq >= lsa->seq) return;  // stale or duplicate
  entry.seq = lsa->seq;
  entry.neighbors = lsa->neighbors;
  flood(lsa, from);
  scheduleSpf();
}

void LinkState::onLinkDown(NodeId neighbor) {
  if (aliveNeighbors_.erase(neighbor) == 0) return;
  originateOwnLsa();
}

void LinkState::onLinkUp(NodeId neighbor) {
  if (!aliveNeighbors_.insert(neighbor).second) return;
  originateOwnLsa();
  // Database sync on adjacency formation: send our whole DB to the neighbor.
  for (const auto& [origin, entry] : db_) {
    auto lsa = std::make_shared<Lsa>();
    lsa->origin = origin;
    lsa->seq = entry.seq;
    lsa->neighbors = entry.neighbors;
    ++lsasSent_;
    node_.sendControl(neighbor, std::move(lsa));
  }
}

void LinkState::scheduleSpf() {
  if (spfPending_) return;
  spfPending_ = true;
  spfTimer_ = node_.scheduler().scheduleAfter(cfg_.spfDelay, [this] {
    spfPending_ = false;
    runSpf();
  });
}

void LinkState::runSpf() {
  ++spfRuns_;
  // Unit link costs: BFS from self over bidirectionally-confirmed edges.
  const auto n = node_.network().nodeCount();
  auto confirmed = [&](NodeId u, NodeId v) {
    const auto iu = db_.find(u);
    const auto iv = db_.find(v);
    if (iu == db_.end() || iv == db_.end()) return false;
    const bool uv = std::find(iu->second.neighbors.begin(), iu->second.neighbors.end(), v) !=
                    iu->second.neighbors.end();
    const bool vu = std::find(iv->second.neighbors.begin(), iv->second.neighbors.end(), u) !=
                    iv->second.neighbors.end();
    return uv && vu;
  };

  std::vector<NodeId> firstHop(n, kInvalidNode);
  std::vector<int> dist(n, -1);
  std::queue<NodeId> q;
  const NodeId self = node_.id();
  dist[static_cast<std::size_t>(self)] = 0;
  q.push(self);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    const auto it = db_.find(u);
    if (it == db_.end()) continue;
    // Deterministic neighbor order: LSA neighbor lists are sorted by origin.
    for (const NodeId v : it->second.neighbors) {
      if (static_cast<std::size_t>(v) >= n) continue;
      if (dist[static_cast<std::size_t>(v)] >= 0) continue;
      if (u == self && aliveNeighbors_.count(v) == 0) continue;
      if (!confirmed(u, v)) continue;
      dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
      firstHop[static_cast<std::size_t>(v)] = u == self ? v : firstHop[static_cast<std::size_t>(u)];
      q.push(v);
    }
  }
  for (NodeId d = 0; d < static_cast<NodeId>(n); ++d) {
    if (d == self) continue;
    node_.setRoute(d, firstHop[static_cast<std::size_t>(d)]);
  }
}

}  // namespace rcsim
