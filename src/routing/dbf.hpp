#pragma once

#include <unordered_map>
#include <vector>

#include "routing/dv_common.hpp"

namespace rcsim {

/// Distributed Bellman-Ford (paper §3): identical to our RIP except that the
/// router caches the latest distance vector learned from *each* neighbor.
/// When the current next hop fails it can immediately switch to the best
/// alternate in the cache — a zero-time path switch-over (paper §4.1) — at
/// the price of possibly choosing an invalid path and "counting to the
/// next-best path" instead of counting to infinity (paper §6).
class Dbf final : public DvProtocolBase {
 public:
  Dbf(Node& node, DvConfig cfg);

  [[nodiscard]] std::string name() const override { return "DBF"; }

  [[nodiscard]] int metricFor(NodeId dst) const override;
  [[nodiscard]] NodeId nextHopFor(NodeId dst) const override;

  /// Distance to dst as most recently advertised by `neighbor` (infinity if
  /// none) — exposed for tests.
  [[nodiscard]] int cachedMetric(NodeId neighbor, NodeId dst) const;

 protected:
  void processUpdate(NodeId from, const DvUpdate& update) override;
  void neighborDown(NodeId neighbor) override;
  void neighborUp(NodeId neighbor) override;
  [[nodiscard]] std::vector<NodeId> knownDestinations() const override;
  void start() override;

 private:
  /// Recompute the best route for dst from the per-neighbor cache.
  void recompute(NodeId dst);

  std::unordered_map<NodeId, std::vector<std::uint8_t>> cache_;  ///< neighbor -> advertised metric per dst
  std::vector<int> bestMetric_;
  std::vector<NodeId> bestHop_;
  std::vector<char> known_;
};

}  // namespace rcsim
