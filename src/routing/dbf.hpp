#pragma once

#include <cstdint>
#include <vector>

#include "net/dense.hpp"
#include "routing/dv_common.hpp"

namespace rcsim {

/// Distributed Bellman-Ford (paper §3): identical to our RIP except that the
/// router caches the latest distance vector learned from *each* neighbor.
/// When the current next hop fails it can immediately switch to the best
/// alternate in the cache — a zero-time path switch-over (paper §4.1) — at
/// the price of possibly choosing an invalid path and "counting to the
/// next-best path" instead of counting to infinity (paper §6).
///
/// State is SoA over dense NodeIds (docs/routing-state.md): per-neighbor
/// advertised-metric rows indexed by neighbor slot, flat uint16 best
/// metrics, and a known-destination bitset. The best next hop is not stored
/// separately — after every recompute it equals the FIB's primary entry,
/// which recompute reads back as the tie-break incumbent.
class Dbf final : public DvProtocolBase {
 public:
  Dbf(Node& node, DvConfig cfg);

  [[nodiscard]] std::string name() const override { return "DBF"; }

  [[nodiscard]] int metricFor(NodeId dst) const override;
  [[nodiscard]] NodeId nextHopFor(NodeId dst) const override;

  /// Distance to dst as most recently advertised by `neighbor` (infinity if
  /// none) — exposed for tests.
  [[nodiscard]] int cachedMetric(NodeId neighbor, NodeId dst) const;

 protected:
  void processUpdate(NodeId from, const DvUpdate& update) override;
  void neighborDown(NodeId neighbor) override;
  void neighborUp(NodeId neighbor) override;
  void holdDownExpired(NodeId dst) override;
  [[nodiscard]] std::vector<NodeId> knownDestinations() const override;
  void start() override;

 private:
  /// Recompute the best route for dst from the per-neighbor cache.
  void recompute(NodeId dst);

  /// Advertised metric per dst, indexed by neighbor slot. A row is empty
  /// until the first update arrives from that neighbor and is released when
  /// the neighbor goes down (only history while alive matters).
  std::vector<std::vector<std::uint8_t>> cacheBySlot_;
  std::vector<std::uint16_t> bestMetric_;
  NodeBitset known_;
};

}  // namespace rcsim
