#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/routing_protocol.hpp"
#include "routing/messages.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace rcsim {

struct LinkStateConfig {
  /// Hold-down between a topology-database change and the SPF run,
  /// modelling router SPF scheduling.
  Time spfDelay = Time::milliseconds(10);
  /// Periodic LSA refresh (repairs any lost floods). Real OSPF refreshes at
  /// 30 min; we keep minutes-scale so a refresh still lands inside a run.
  Time refreshInterval = Time::seconds(300.0);
  Time refreshJitter = Time::seconds(30.0);
  /// Run the full-SPF oracle after every skipped/incremental SPF and throw
  /// on any divergence (also enabled by the RCSIM_SPF_ORACLE env var).
  bool spfOracle = false;
};

/// Flooding link-state protocol with BFS shortest-path-first computation —
/// the paper's "future work" comparison point (§6), implemented as an
/// extension so the packet-delivery study can include an SPF datapoint.
///
/// The LSDB is a dense origin-indexed array (seq 0 = never heard), and SPF
/// is *incremental*: applying an LSA records the confirmed-edge delta it
/// caused, and the SPF pass then (a) skips outright when the usable graph
/// did not change (seq-only refreshes), (b) repairs just the detached
/// subtree for deletion-only deltas, or (c) falls back to a full BFS for
/// additions or large deltas. Incremental repair reproduces full-BFS output
/// *exactly* — including the first-discovery tie-break, which equals the
/// lexicographically-smallest shortest path — so route installs and hence
/// trace digests are bit-identical (docs/routing-state.md).
class LinkState final : public RoutingProtocol {
 public:
  LinkState(Node& node, LinkStateConfig cfg);
  ~LinkState() override;

  void start() override;
  void onLinkDown(NodeId neighbor) override;
  void onLinkUp(NodeId neighbor) override;
  void onMessage(NodeId from, std::shared_ptr<const ControlPayload> msg) override;
  [[nodiscard]] std::string name() const override { return "LS"; }

  [[nodiscard]] std::uint64_t lsasSent() const { return lsasSent_; }
  /// SPF passes that actually recomputed something (incremental or full).
  [[nodiscard]] std::uint64_t spfRuns() const { return spfRuns_; }
  /// SPF passes skipped because the usable graph was unchanged.
  [[nodiscard]] std::uint64_t spfSkips() const { return spfSkips_; }
  [[nodiscard]] std::uint64_t spfIncrementals() const { return spfIncrementals_; }
  [[nodiscard]] std::uint64_t spfFulls() const { return spfFulls_; }

 private:
  struct DbEntry {
    std::uint32_t seq = 0;  ///< 0 = origin never heard from
    std::vector<NodeId> neighbors;  ///< sorted ascending (LSAs are built sorted)
  };

  /// Deltas beyond this fall back to a full SPF.
  static constexpr std::size_t kMaxRemovedEdges = 64;

  void originateOwnLsa();
  void flood(const std::shared_ptr<const Lsa>& lsa, NodeId except);
  void scheduleSpf();
  void runSpf();
  void refreshTick();

  /// Store `neighbors` as origin's LSA content, recording the usable-edge
  /// delta versus the previous content.
  void applyDb(NodeId origin, const std::vector<NodeId>& neighbors);
  [[nodiscard]] bool listsNeighbor(NodeId origin, NodeId nbr) const;
  [[nodiscard]] bool aliveContains(NodeId n) const;
  /// Edge (u,v) exists in both directions in the LSDB and passes the
  /// self-adjacency liveness guard.
  [[nodiscard]] bool usableEdge(NodeId u, NodeId v) const;

  /// Full BFS into dist_/parent_/firstHop_, installing every route.
  void fullSpf();
  /// Deletion-only repair; false = delta too large, caller runs fullSpf().
  bool incrementalSpf();
  /// Lex-smallest-path comparison of two equal-depth nodes via their
  /// (current) parent chains.
  [[nodiscard]] bool lexPathLess(NodeId a, NodeId b) const;
  /// Full-BFS oracle: recompute into scratch and throw std::logic_error on
  /// any element-wise mismatch with dist_/parent_/firstHop_.
  void verifySpf() const;
  void clearDelta();

  LinkStateConfig cfg_;
  bool oracle_ = false;
  std::vector<DbEntry> db_;            ///< dense, indexed by origin
  std::vector<NodeId> aliveNeighbors_;  ///< sorted ascending
  std::uint32_t ownSeq_ = 0;
  bool spfPending_ = false;
  EventId spfTimer_{};
  EventId refreshTimer_{};
  std::uint64_t lsasSent_ = 0;
  std::uint64_t spfRuns_ = 0;
  std::uint64_t spfSkips_ = 0;
  std::uint64_t spfIncrementals_ = 0;
  std::uint64_t spfFulls_ = 0;

  // Last-SPF shortest-path tree (valid once haveSpf_).
  bool haveSpf_ = false;
  std::vector<int> dist_;       ///< hops from self, -1 = unreachable
  std::vector<NodeId> parent_;  ///< BFS-tree (lex-smallest-path) predecessor
  std::vector<NodeId> firstHop_;

  // Usable-edge delta accumulated since the last SPF pass.
  std::vector<std::pair<NodeId, NodeId>> removedEdges_;
  bool deltaAdds_ = false;
  bool deltaOverflow_ = false;

  // Reused incremental-SPF scratch (epoch-stamped so no O(n) clears).
  int epoch_ = 0;
  std::vector<int> affectedEpoch_;
  std::vector<int> settledEpoch_;
  std::vector<std::vector<NodeId>> buckets_;
  mutable std::vector<NodeId> chainA_;
  mutable std::vector<NodeId> chainB_;
};

}  // namespace rcsim
