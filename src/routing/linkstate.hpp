#pragma once

#include <map>
#include <set>
#include <vector>

#include "net/routing_protocol.hpp"
#include "routing/messages.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace rcsim {

struct LinkStateConfig {
  /// Hold-down between a topology-database change and the SPF run,
  /// modelling router SPF scheduling.
  Time spfDelay = Time::milliseconds(10);
  /// Periodic LSA refresh (repairs any lost floods). Real OSPF refreshes at
  /// 30 min; we keep minutes-scale so a refresh still lands inside a run.
  Time refreshInterval = Time::seconds(300.0);
  Time refreshJitter = Time::seconds(30.0);
};

/// Flooding link-state protocol with BFS shortest-path-first computation —
/// the paper's "future work" comparison point (§6), implemented as an
/// extension so the packet-delivery study can include an SPF datapoint.
class LinkState final : public RoutingProtocol {
 public:
  LinkState(Node& node, LinkStateConfig cfg);
  ~LinkState() override;

  void start() override;
  void onLinkDown(NodeId neighbor) override;
  void onLinkUp(NodeId neighbor) override;
  void onMessage(NodeId from, std::shared_ptr<const ControlPayload> msg) override;
  [[nodiscard]] std::string name() const override { return "LS"; }

  [[nodiscard]] std::uint64_t lsasSent() const { return lsasSent_; }
  [[nodiscard]] std::uint64_t spfRuns() const { return spfRuns_; }

 private:
  struct DbEntry {
    std::uint32_t seq = 0;
    std::vector<NodeId> neighbors;
  };

  void originateOwnLsa();
  void flood(const std::shared_ptr<const Lsa>& lsa, NodeId except);
  void scheduleSpf();
  void runSpf();
  void refreshTick();

  LinkStateConfig cfg_;
  std::map<NodeId, DbEntry> db_;
  std::set<NodeId> aliveNeighbors_;
  std::uint32_t ownSeq_ = 0;
  bool spfPending_ = false;
  EventId spfTimer_{};
  EventId refreshTimer_{};
  std::uint64_t lsasSent_ = 0;
  std::uint64_t spfRuns_ = 0;
};

}  // namespace rcsim
