#pragma once

#include <map>
#include <memory>
#include <vector>

#include "net/dense.hpp"
#include "net/reliable.hpp"
#include "net/routing_protocol.hpp"
#include "routing/messages.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace rcsim {

/// BGP parameters (paper §3). The paper's "BGP" uses an average MRAI of
/// ~30 s; its specially parameterized "BGP3" uses ~3 s. Both apply the MRAI
/// per *neighbor* (the common vendor implementation the paper simulates);
/// `perDestMrai` switches to the per-(neighbor, destination) variant the
/// paper conjectures would behave differently (ablation A1 in DESIGN.md).
struct BgpConfig {
  double mraiMinSec = 22.5;  ///< RFC 4271 jitter: U[0.75, 1.0] x 30 s
  double mraiMaxSec = 30.0;
  bool perDestMrai = false;
  /// Withdrawals bypass the MRAI timer (paper §4.3); turning this off is
  /// part of ablation A3.
  bool withdrawalsExemptFromMrai = true;
  ReliableSession::Config transport{};

  /// Route flap damping (RFC 2439 model, receiver side, per (peer, dst)).
  /// The paper's §1 cites Mao et al. / Bush et al.: damping interacts
  /// badly with path exploration after a single failure — a well-connected
  /// network's extra alternate paths mean extra transient announcements,
  /// which damping can misread as flapping. Off by default (as in the
  /// paper's simulations); bench/ablation_flap_damping turns it on.
  /// Consistency assertions (the paper's ref [21], Pei et al. INFOCOM'02):
  /// before using an alternate path learned from neighbor A that claims to
  /// pass through another direct neighbor B, cross-check it against B's own
  /// latest advertisement; a mismatch marks A's path stale and it is
  /// skipped while any consistent candidate exists. Substantially shortens
  /// path exploration after failures.
  bool consistencyAssertions = false;

  bool flapDampingEnabled = false;
  double rfdPenaltyPerFlap = 1000.0;
  double rfdSuppressThreshold = 2000.0;
  double rfdReuseThreshold = 750.0;
  double rfdHalfLifeSec = 15.0;  ///< scaled down from RFC's 15 min to sim scale
};

/// Path-vector protocol in the image of BGP-4 restricted to shortest-path
/// policy, one router per AS (paper §3 footnote). Keeps a full Adj-RIB-In
/// per neighbor, runs over the reliable transport, sends updates only on
/// change, detects loops on the receiver side (a path containing the local
/// node is treated as a withdrawal) and paces updates with a per-neighbor
/// MRAI timer from which withdrawals are exempt.
///
/// Peer state (including the Adj-RIB-In) lives in one id-sorted vector —
/// iteration order is ascending id, as with the node-keyed maps it replaces
/// (docs/routing-state.md) — and the pending-advertisement sets are bitsets.
/// Only the rarely-populated per-destination MRAI timers and flap-damping
/// records stay in sparse maps.
class Bgp final : public RoutingProtocol {
 public:
  Bgp(Node& node, BgpConfig cfg);
  ~Bgp() override;

  void start() override;
  void onLinkDown(NodeId neighbor) override;
  void onLinkUp(NodeId neighbor) override;
  void onMessage(NodeId from, std::shared_ptr<const ControlPayload> msg) override;
  [[nodiscard]] std::string name() const override { return "BGP"; }
  [[nodiscard]] TransportCounters transportCounters() const override;

  /// Introspection for tests and forensics.
  [[nodiscard]] const std::vector<NodeId>& bestPath(NodeId dst) const {
    return bestPath_[static_cast<std::size_t>(dst)];
  }
  [[nodiscard]] NodeId bestVia(NodeId dst) const {
    return bestVia_[static_cast<std::size_t>(dst)];
  }
  [[nodiscard]] const std::vector<NodeId>* ribInPath(NodeId neighbor, NodeId dst) const;
  [[nodiscard]] std::uint64_t updatesSent() const { return updatesSent_; }
  [[nodiscard]] std::uint64_t withdrawalsSent() const { return withdrawalsSent_; }
  /// Is the route from `neighbor` for `dst` currently damped (suppressed)?
  [[nodiscard]] bool isSuppressed(NodeId neighbor, NodeId dst) const;
  [[nodiscard]] std::uint64_t suppressions() const { return suppressions_; }
  [[nodiscard]] const BgpConfig& config() const { return cfg_; }

 private:
  struct Peer {
    NodeId id = kInvalidNode;
    std::unique_ptr<ReliableSession> session;
    bool up = true;
    // Per-neighbor MRAI state.
    bool mraiRunning = false;
    bool flushScheduled = false;
    EventId mraiTimer{};
    NodeBitset pending;  ///< Destinations awaiting (re-)advertisement.
    // Per-(neighbor, destination) MRAI state (ablation mode).
    std::map<NodeId, EventId> destTimers;
    NodeBitset destPending;
    /// Adj-RIB-In: per destination, the path this peer advertised
    /// ([peer, ..., dst]); empty = none/withdrawn.
    std::vector<std::vector<NodeId>> ribIn;
    /// Adj-RIB-Out: last path advertised to this peer (empty = withdrawn /
    /// never advertised); used to suppress duplicate updates.
    std::vector<std::vector<NodeId>> ribOut;
    /// Route-flap-damping state per destination (allocated lazily).
    struct DampState {
      double penalty = 0.0;
      Time lastDecay;
      bool suppressed = false;
      EventId reuseTimer{};
    };
    std::map<NodeId, DampState> damp;
  };

  [[nodiscard]] Peer* findPeer(NodeId peerId);
  [[nodiscard]] const Peer* findPeer(NodeId peerId) const;
  [[nodiscard]] Peer& peerAt(NodeId peerId);

  void processUpdate(NodeId from, const BgpUpdate& update);
  void runDecision(NodeId dst);
  void scheduleAdvertAll(NodeId dst);
  void scheduleAdvert(NodeId peerId, NodeId dst);
  void sendWithdrawalAll(NodeId dst);
  /// Emit the current state (advert or withdrawal) of `dst` toward a peer,
  /// suppressing no-ops against the Adj-RIB-Out. Returns true if a message
  /// actually went out.
  bool emitRoute(NodeId peerId, NodeId dst);
  /// Returns true if at least one message went out.
  bool flushPeer(NodeId peerId);
  /// Forget what this peer was told and re-advertise the full table —
  /// session resynchronization after a transport-level reset.
  void resyncPeer(NodeId peerId);
  void armMrai(NodeId peerId);
  void armDestMrai(NodeId peerId, NodeId dst);
  [[nodiscard]] double mraiDelay();
  /// Record one flap from `peerId` about `dst`; may suppress the route.
  void recordFlap(NodeId peerId, NodeId dst);
  /// Does `path` (from peer `from`, toward `dst`) agree with every other
  /// direct neighbor's own advertisement where it crosses one?
  [[nodiscard]] bool pathConsistent(NodeId from, NodeId dst, const std::vector<NodeId>& path) const;
  void decayPenalty(Peer::DampState& st);

  BgpConfig cfg_;
  std::vector<Peer> peers_;  ///< sorted by id: deterministic ascending iteration
  std::vector<std::vector<NodeId>> bestPath_;  ///< empty = unreachable
  std::vector<NodeId> bestVia_;
  /// Per-destination immutable payload caches shared across peers: an
  /// update's content never varies by receiver (no per-peer rewriting in
  /// path-vector single-route updates), only *whether* it is sent does
  /// (Adj-RIB-Out duplicate suppression). The advert cache is invalidated
  /// when the best path changes; a withdrawal's content is constant.
  std::vector<std::shared_ptr<const BgpUpdate>> advertCache_;
  std::vector<std::shared_ptr<const BgpUpdate>> withdrawCache_;
  std::vector<NodeId> pendingScratch_;  ///< reused drain buffer for flushPeer
  std::uint64_t updatesSent_ = 0;
  std::uint64_t withdrawalsSent_ = 0;
  std::uint64_t suppressions_ = 0;
};

}  // namespace rcsim
