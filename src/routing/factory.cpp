#include "routing/factory.hpp"

#include <stdexcept>

#include "routing/dbf.hpp"
#include "routing/rip.hpp"

namespace rcsim {

const char* toString(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::Rip: return "RIP";
    case ProtocolKind::Dbf: return "DBF";
    case ProtocolKind::Bgp: return "BGP";
    case ProtocolKind::Bgp3: return "BGP3";
    case ProtocolKind::LinkState: return "LS";
    case ProtocolKind::Dual: return "DUAL";
  }
  return "?";
}

ProtocolKind protocolKindFromString(const std::string& name) {
  if (name == "RIP" || name == "rip") return ProtocolKind::Rip;
  if (name == "DBF" || name == "dbf") return ProtocolKind::Dbf;
  if (name == "BGP" || name == "bgp") return ProtocolKind::Bgp;
  if (name == "BGP3" || name == "bgp3") return ProtocolKind::Bgp3;
  if (name == "LS" || name == "ls") return ProtocolKind::LinkState;
  if (name == "DUAL" || name == "dual") return ProtocolKind::Dual;
  throw std::invalid_argument("unknown protocol: " + name);
}

std::unique_ptr<RoutingProtocol> makeProtocol(ProtocolKind kind, Node& node,
                                              const ProtocolConfig& cfg) {
  switch (kind) {
    case ProtocolKind::Rip:
      return std::make_unique<Rip>(node, cfg.dv);
    case ProtocolKind::Dbf:
      return std::make_unique<Dbf>(node, cfg.dv);
    case ProtocolKind::Bgp:
      return std::make_unique<Bgp>(node, cfg.bgp);
    case ProtocolKind::Bgp3: {
      // The paper's specially parameterized BGP: MRAI scaled from ~30 s down
      // to ~3 s so its triggered-update damping is comparable to RIP/DBF.
      BgpConfig b = cfg.bgp;
      const double scale = 0.1;
      b.mraiMinSec = cfg.bgp.mraiMinSec * scale;
      b.mraiMaxSec = cfg.bgp.mraiMaxSec * scale;
      return std::make_unique<Bgp>(node, b);
    }
    case ProtocolKind::LinkState:
      return std::make_unique<LinkState>(node, cfg.ls);
    case ProtocolKind::Dual:
      return std::make_unique<Dual>(node, cfg.dual);
  }
  throw std::logic_error("unreachable protocol kind");
}

}  // namespace rcsim
