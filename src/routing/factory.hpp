#pragma once

#include <memory>
#include <string>

#include "net/routing_protocol.hpp"
#include "routing/bgp.hpp"
#include "routing/dual.hpp"
#include "routing/dv_common.hpp"
#include "routing/linkstate.hpp"

namespace rcsim {

/// The protocols of the study. Rip/Dbf/Bgp/Bgp3 are the paper's four
/// configurations; LinkState and Dual are extensions (the paper's §6
/// future work and its §2 loop-free counterpoint, respectively).
enum class ProtocolKind { Rip, Dbf, Bgp, Bgp3, LinkState, Dual };

[[nodiscard]] const char* toString(ProtocolKind kind);
[[nodiscard]] ProtocolKind protocolKindFromString(const std::string& name);

/// Per-protocol tunables bundled for the scenario layer. The factory applies
/// the kind-specific defaults (e.g. BGP3's 3 s MRAI) on top.
struct ProtocolConfig {
  DvConfig dv;
  BgpConfig bgp;
  LinkStateConfig ls;
  DualConfig dual;
};

/// Instantiate a routing protocol for `node`. Call after all links are
/// attached and Network::finalize().
[[nodiscard]] std::unique_ptr<RoutingProtocol> makeProtocol(ProtocolKind kind, Node& node,
                                                            const ProtocolConfig& cfg);

}  // namespace rcsim
