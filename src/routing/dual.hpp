#pragma once

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "net/routing_protocol.hpp"
#include "routing/messages.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace rcsim {

/// DUAL messages: routine distance updates plus the diffusing-computation
/// query/reply pair.
enum class DualMsgKind : std::uint8_t { Update, Query, Reply };

struct DualMessage final : ControlPayload {
  struct Entry {
    NodeId dst = kInvalidNode;
    std::uint16_t dist = 0;  ///< kDualInfinity = unreachable
  };
  DualMsgKind msgKind = DualMsgKind::Update;
  std::vector<Entry> entries;

  [[nodiscard]] std::uint32_t sizeBytes() const override {
    return 8 + 8 * static_cast<std::uint32_t>(entries.size());
  }
  [[nodiscard]] std::string describe() const override;
};

struct DualConfig {
  /// Stuck-in-active guard: a diffusing computation that cannot collect all
  /// replies is force-completed after this long (EIGRP uses 3 min; scaled
  /// to the simulation's timescale).
  Time siaTimeout = Time::seconds(10.0);
  /// Unbounded distances are clamped here (no counting to infinity in DUAL;
  /// this is only a wire encoding ceiling).
  int maxDistance = 512;
};

/// DUAL — the Diffusing Update Algorithm (Garcia-Luna-Aceves 1989/93), the
/// paper's §2 counterpoint: it *guarantees* loop-freedom by (a) only ever
/// switching to a feasible successor (reported distance < our feasible
/// distance) and (b) otherwise freezing the route and running a diffusing
/// computation (query/reply) before using a longer path. The paper argues
/// this trades packet delivery for loop prevention: while a destination is
/// Active its route is withdrawn and packets are dropped. This
/// implementation follows that characterization (see DESIGN.md).
///
/// Simplifications vs full EIGRP: one metric unit per hop; a node that is
/// already Active answers a new query for the same destination immediately
/// with its (frozen, infinite) distance instead of layering diffusions; an
/// SIA timer force-completes wedged computations.
class Dual final : public RoutingProtocol {
 public:
  Dual(Node& node, DualConfig cfg);
  ~Dual() override;

  void start() override;
  void onLinkDown(NodeId neighbor) override;
  void onLinkUp(NodeId neighbor) override;
  void onMessage(NodeId from, std::shared_ptr<const ControlPayload> msg) override;
  [[nodiscard]] std::string name() const override { return "DUAL"; }

  /// Introspection for tests.
  [[nodiscard]] int distance(NodeId dst) const;
  [[nodiscard]] bool isActive(NodeId dst) const {
    return table_[static_cast<std::size_t>(dst)].active;
  }
  [[nodiscard]] std::uint64_t diffusingComputations() const { return diffusions_; }

 private:
  struct Route {
    int feasibleDistance = 0;    ///< lowest distance ever achieved (FC anchor)
    int distance = 0;            ///< current distance (maxDistance = unreachable)
    NodeId successor = kInvalidNode;
    bool active = false;
    std::set<NodeId> outstanding;  ///< neighbors whose REPLY we await
    std::set<NodeId> pendingRepliesTo;  ///< queriers we answer when Passive again
    EventId siaTimer{};
  };

  void initTables();
  /// Neighbor's reported distance for dst (maxDistance if none).
  [[nodiscard]] int reported(NodeId neighbor, NodeId dst) const;
  /// Local computation: try to stay Passive via a feasible successor;
  /// otherwise start (or continue) a diffusing computation.
  void recompute(NodeId dst);
  void goActive(NodeId dst);
  void completeActive(NodeId dst);
  void installRoute(NodeId dst, int dist, NodeId successor);
  void sendToAll(DualMsgKind kind, NodeId dst, int dist, NodeId except = kInvalidNode);
  /// Queue an entry for `neighbor`; entries of one event are batched into a
  /// single message per (neighbor, kind) via a zero-delay flush (keeps a
  /// link-down's burst of per-destination queries from overflowing queues).
  void sendTo(NodeId neighbor, DualMsgKind kind, NodeId dst, int dist);
  void flushOutbox();
  void handleEntry(NodeId from, DualMsgKind kind, NodeId dst, int dist);

  DualConfig cfg_;
  std::vector<Route> table_;
  /// Per-(neighbor, message-kind) outgoing entry batches.
  std::map<std::pair<NodeId, DualMsgKind>, std::vector<DualMessage::Entry>> outbox_;
  bool flushScheduled_ = false;
  std::map<NodeId, std::vector<std::uint16_t>> reported_;  ///< per-neighbor distances
  std::set<NodeId> alive_;
  std::uint64_t diffusions_ = 0;
};

}  // namespace rcsim
