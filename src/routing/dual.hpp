#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/dense.hpp"
#include "net/routing_protocol.hpp"
#include "routing/messages.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace rcsim {

/// DUAL messages: routine distance updates plus the diffusing-computation
/// query/reply pair.
enum class DualMsgKind : std::uint8_t { Update, Query, Reply };

struct DualMessage final : ControlPayload {
  struct Entry {
    NodeId dst = kInvalidNode;
    std::uint16_t dist = 0;  ///< kDualInfinity = unreachable
  };
  DualMsgKind msgKind = DualMsgKind::Update;
  std::vector<Entry> entries;

  [[nodiscard]] std::uint32_t sizeBytes() const override {
    return 8 + 8 * static_cast<std::uint32_t>(entries.size());
  }
  [[nodiscard]] std::string describe() const override;
};

struct DualConfig {
  /// Stuck-in-active guard: a diffusing computation that cannot collect all
  /// replies is force-completed after this long (EIGRP uses 3 min; scaled
  /// to the simulation's timescale).
  Time siaTimeout = Time::seconds(10.0);
  /// Unbounded distances are clamped here (no counting to infinity in DUAL;
  /// this is only a wire encoding ceiling).
  int maxDistance = 512;
};

/// DUAL — the Diffusing Update Algorithm (Garcia-Luna-Aceves 1989/93), the
/// paper's §2 counterpoint: it *guarantees* loop-freedom by (a) only ever
/// switching to a feasible successor (reported distance < our feasible
/// distance) and (b) otherwise freezing the route and running a diffusing
/// computation (query/reply) before using a longer path. The paper argues
/// this trades packet delivery for loop prevention: while a destination is
/// Active its route is withdrawn and packets are dropped. This
/// implementation follows that characterization (see DESIGN.md).
///
/// Simplifications vs full EIGRP: one metric unit per hop; a node that is
/// already Active answers a new query for the same destination immediately
/// with its (frozen, infinite) distance instead of layering diffusions; an
/// SIA timer force-completes wedged computations.
///
/// State is SoA over dense NodeIds (docs/routing-state.md): flat uint16
/// distance/feasible-distance arrays, an Active bitset, slot-indexed
/// per-neighbor reported-distance rows and outbox batches. The successor is
/// the FIB's primary entry; only the (few) Active destinations carry the
/// heavyweight diffusion bookkeeping, in a sparse map.
class Dual final : public RoutingProtocol {
 public:
  Dual(Node& node, DualConfig cfg);
  ~Dual() override;

  void start() override;
  void onLinkDown(NodeId neighbor) override;
  void onLinkUp(NodeId neighbor) override;
  void onMessage(NodeId from, std::shared_ptr<const ControlPayload> msg) override;
  [[nodiscard]] std::string name() const override { return "DUAL"; }

  /// Introspection for tests.
  [[nodiscard]] int distance(NodeId dst) const;
  [[nodiscard]] bool isActive(NodeId dst) const { return active_.test(dst); }
  [[nodiscard]] std::uint64_t diffusingComputations() const { return diffusions_; }

 private:
  /// Diffusion bookkeeping, carried only while a destination is Active (or
  /// briefly while queriers drain on completion).
  struct ActiveState {
    std::vector<NodeId> outstanding;       ///< sorted; neighbors whose REPLY we await
    std::vector<NodeId> pendingRepliesTo;  ///< sorted; queriers we answer when Passive
    EventId siaTimer{};
  };

  void initTables();
  /// Neighbor's reported distance for dst (maxDistance if none).
  [[nodiscard]] int reported(NodeId neighbor, NodeId dst) const;
  [[nodiscard]] int reportedBySlot(int slot, NodeId dst) const;
  /// Local computation: try to stay Passive via a feasible successor;
  /// otherwise start (or continue) a diffusing computation.
  void recompute(NodeId dst);
  void goActive(NodeId dst);
  void completeActive(NodeId dst);
  void installRoute(NodeId dst, int dist, NodeId successor, const NodeId* alts = nullptr,
                    int altCount = 0);
  void sendToAll(DualMsgKind kind, NodeId dst, int dist, NodeId except = kInvalidNode);
  /// Queue an entry for `neighbor`; entries of one event are batched into a
  /// single message per (neighbor, kind) via a zero-delay flush (keeps a
  /// link-down's burst of per-destination queries from overflowing queues).
  void sendTo(NodeId neighbor, DualMsgKind kind, NodeId dst, int dist);
  void flushOutbox();
  void handleEntry(NodeId from, DualMsgKind kind, NodeId dst, int dist);

  DualConfig cfg_;
  std::vector<std::uint16_t> distance_;  ///< maxDistance = unreachable
  std::vector<std::uint16_t> feasible_;  ///< lowest distance ever achieved (FC anchor)
  NodeBitset active_;
  std::map<NodeId, ActiveState> activeState_;  ///< keyed by Active destination
  /// Outgoing entry batches, indexed by neighbor-slot * 3 + kind; flushed in
  /// (neighbor id, kind) ascending order like the map they replace.
  std::vector<std::vector<DualMessage::Entry>> outboxBySlot_;
  bool flushScheduled_ = false;
  /// Reported distance per dst, indexed by neighbor slot; a row is empty
  /// until the neighbor first reports and is released when it goes down.
  std::vector<std::vector<std::uint16_t>> reportedBySlot_;
  std::vector<NodeId> alive_;    ///< sorted ascending
  std::vector<int> aliveSlots_;  ///< parallel: Node::neighborSlot of alive_[k]
  std::uint64_t diffusions_ = 0;
};

}  // namespace rcsim
