#include "routing/dbf.hpp"

#include <algorithm>

#include "net/network.hpp"
#include "net/node.hpp"

namespace rcsim {

Dbf::Dbf(Node& node, DvConfig cfg) : DvProtocolBase{node, cfg} {}

void Dbf::start() {
  const auto n = node_.network().nodeCount();
  cacheBySlot_.assign(node_.neighbors().size(), {});
  bestMetric_.assign(n, static_cast<std::uint16_t>(config().infinityMetric));
  known_.assign(n);
  bestMetric_[static_cast<std::size_t>(node_.id())] = 0;
  known_.set(node_.id());
  DvProtocolBase::start();
}

int Dbf::metricFor(NodeId dst) const { return bestMetric_[static_cast<std::size_t>(dst)]; }

NodeId Dbf::nextHopFor(NodeId dst) const {
  // The FIB primary *is* the best hop: recompute() keeps them identical, so
  // no separate bestHop_ array is carried (saves a NodeId per destination).
  const auto i = static_cast<std::size_t>(dst);
  return bestMetric_[i] >= config().infinityMetric ? kInvalidNode : node_.fib().nextHop(dst);
}

int Dbf::cachedMetric(NodeId neighbor, NodeId dst) const {
  const int slot = node_.neighborSlot(neighbor);
  if (slot < 0) return config().infinityMetric;
  const auto& row = cacheBySlot_[static_cast<std::size_t>(slot)];
  if (row.empty()) return config().infinityMetric;
  return row[static_cast<std::size_t>(dst)];
}

std::vector<NodeId> Dbf::knownDestinations() const {
  std::vector<NodeId> dsts;
  dsts.reserve(known_.count());
  known_.forEachSet([&dsts](NodeId d) { dsts.push_back(d); });
  return dsts;
}

void Dbf::recompute(NodeId dst) {
  if (dst == node_.id()) return;
  const auto i = static_cast<std::size_t>(dst);
  const int inf = config().infinityMetric;
  int best = inf;
  NodeId via = kInvalidNode;
  const NodeId current = node_.fib().nextHop(dst);
  // Tie-break: keep the incumbent next hop if it stays optimal, otherwise
  // lowest neighbor id — fully deterministic.
  auto beats = [&](int cand, NodeId n) {
    if (cand != best) return cand < best;
    if (via == current) return false;
    return n == current || n < via;
  };
  const auto& alive = aliveNeighbors();
  const auto& slots = aliveNeighborSlots();
  for (std::size_t k = 0; k < alive.size(); ++k) {
    const auto& row = cacheBySlot_[static_cast<std::size_t>(slots[k])];
    if (row.empty()) continue;
    const int cand = std::min<int>(row[i] + 1, inf);
    if (cand < inf && beats(cand, alive[k])) {
      best = cand;
      via = alive[k];
    }
  }
  if (best >= inf) via = kInvalidNode;

  // Hold-down (no-op unless dv.holddown is configured): a destination whose
  // best route hit infinity may not be resurrected from the cache until the
  // window lapses — the cached rows are exactly the stale news hold-down
  // exists to distrust. Note the instant switch-over path (finite -> finite
  // via an alternate) never passes through infinity and stays untouched.
  if (best < inf && bestMetric_[i] >= inf && inHoldDown(dst)) {
    best = inf;
    via = kInvalidNode;
  }
  if (best >= inf && bestMetric_[i] < inf) startHoldDown(dst);

  if (node_.fib().ecmpEnabled()) {
    // Refresh the full equal-cost entry set on every recompute (alternates
    // can change even when the primary stays put). Primary first, then the
    // lowest-id tied neighbors.
    NodeId hops[Fib::kMaxNextHops];
    int count = 0;
    if (via != kInvalidNode) {
      hops[count++] = via;
      for (std::size_t k = 0; k < alive.size() && count < Fib::kMaxNextHops; ++k) {
        const auto& row = cacheBySlot_[static_cast<std::size_t>(slots[k])];
        if (row.empty() || alive[k] == via) continue;
        if (std::min<int>(row[i] + 1, inf) != best) continue;
        // Keep alternates sorted ascending by id (alive_ is attachment
        // order, not sorted).
        int pos = count;
        while (pos > 1 && alive[k] < hops[pos - 1]) --pos;
        for (int m = count; m > pos; --m) hops[m] = hops[m - 1];
        hops[pos] = alive[k];
        ++count;
      }
    }
    node_.setRoutes(dst, hops, count);
    if (best == bestMetric_[i] && via == current) return;
    const bool metricChanged = best != bestMetric_[i];
    bestMetric_[i] = static_cast<std::uint16_t>(best);
    if (metricChanged) markChanged(dst);
    return;
  }

  if (best == bestMetric_[i] && via == current) return;
  const bool metricChanged = best != bestMetric_[i];
  bestMetric_[i] = static_cast<std::uint16_t>(best);
  node_.setRoute(dst, via);
  // Advertise on metric change (next-hop-only changes are invisible to
  // neighbors except through poison reverse, which periodic updates fix).
  if (metricChanged) markChanged(dst);
}

void Dbf::processUpdate(NodeId from, const DvUpdate& update) {
  const int slot = node_.neighborSlot(from);
  auto& row = cacheBySlot_[static_cast<std::size_t>(slot)];
  if (row.empty()) {
    row.assign(node_.network().nodeCount(), static_cast<std::uint8_t>(config().infinityMetric));
  }
  for (const auto& entry : update.entries) {
    const NodeId d = entry.dst;
    if (d == node_.id()) continue;
    known_.set(d);
    row[static_cast<std::size_t>(d)] =
        static_cast<std::uint8_t>(std::min<int>(entry.metric, config().infinityMetric));
    recompute(d);
  }
}

void Dbf::neighborDown(NodeId neighbor) {
  // The advertised row only matters while the neighbor is alive; release it
  // so recompute() skips the neighbor — instant switch-over.
  const int slot = node_.neighborSlot(neighbor);
  auto& row = cacheBySlot_[static_cast<std::size_t>(slot)];
  row.clear();
  row.shrink_to_fit();
  for (NodeId d = 0; d < static_cast<NodeId>(bestMetric_.size()); ++d) recompute(d);
}

void Dbf::neighborUp(NodeId /*neighbor*/) {}

void Dbf::holdDownExpired(NodeId dst) {
  // Whatever the cache accumulated during the window becomes eligible now.
  recompute(dst);
}

}  // namespace rcsim
