#include "routing/dbf.hpp"

#include <algorithm>

#include "net/network.hpp"
#include "net/node.hpp"

namespace rcsim {

Dbf::Dbf(Node& node, DvConfig cfg) : DvProtocolBase{node, cfg} {}

void Dbf::start() {
  const auto n = node_.network().nodeCount();
  bestMetric_.assign(n, config().infinityMetric);
  bestHop_.assign(n, kInvalidNode);
  known_.assign(n, 0);
  const auto self = static_cast<std::size_t>(node_.id());
  bestMetric_[self] = 0;
  bestHop_[self] = node_.id();
  known_[self] = 1;
  DvProtocolBase::start();
}

int Dbf::metricFor(NodeId dst) const { return bestMetric_[static_cast<std::size_t>(dst)]; }

NodeId Dbf::nextHopFor(NodeId dst) const {
  const auto i = static_cast<std::size_t>(dst);
  return bestMetric_[i] >= config().infinityMetric ? kInvalidNode : bestHop_[i];
}

int Dbf::cachedMetric(NodeId neighbor, NodeId dst) const {
  const auto it = cache_.find(neighbor);
  if (it == cache_.end()) return config().infinityMetric;
  return it->second[static_cast<std::size_t>(dst)];
}

std::vector<NodeId> Dbf::knownDestinations() const {
  std::vector<NodeId> dsts;
  for (NodeId d = 0; d < static_cast<NodeId>(known_.size()); ++d) {
    if (known_[static_cast<std::size_t>(d)]) dsts.push_back(d);
  }
  return dsts;
}

void Dbf::recompute(NodeId dst) {
  if (dst == node_.id()) return;
  const auto i = static_cast<std::size_t>(dst);
  const int inf = config().infinityMetric;
  int best = inf;
  NodeId via = kInvalidNode;
  const NodeId current = bestHop_[i];
  // Tie-break: keep the incumbent next hop if it stays optimal, otherwise
  // lowest neighbor id — fully deterministic.
  auto beats = [&](int cand, NodeId n) {
    if (cand != best) return cand < best;
    if (via == current) return false;
    return n == current || n < via;
  };
  for (const NodeId n : aliveNeighbors()) {
    const auto it = cache_.find(n);
    if (it == cache_.end()) continue;
    const int cand = std::min<int>(it->second[i] + 1, inf);
    if (cand < inf && beats(cand, n)) {
      best = cand;
      via = n;
    }
  }
  if (best >= inf) via = kInvalidNode;
  if (best == bestMetric_[i] && via == bestHop_[i]) return;
  const bool metricChanged = best != bestMetric_[i];
  bestMetric_[i] = best;
  bestHop_[i] = via;
  node_.setRoute(dst, via);
  // Advertise on metric change (next-hop-only changes are invisible to
  // neighbors except through poison reverse, which periodic updates fix).
  if (metricChanged) markChanged(dst);
}

void Dbf::processUpdate(NodeId from, const DvUpdate& update) {
  auto it = cache_.find(from);
  if (it == cache_.end()) {
    it = cache_.emplace(from, std::vector<std::uint8_t>(node_.network().nodeCount(),
                                                        static_cast<std::uint8_t>(
                                                            config().infinityMetric)))
             .first;
  }
  for (const auto& entry : update.entries) {
    const NodeId d = entry.dst;
    if (d == node_.id()) continue;
    known_[static_cast<std::size_t>(d)] = 1;
    it->second[static_cast<std::size_t>(d)] =
        static_cast<std::uint8_t>(std::min<int>(entry.metric, config().infinityMetric));
    recompute(d);
  }
}

void Dbf::neighborDown(NodeId neighbor) {
  // The cache entry survives only as history; the neighbor is out of
  // aliveNeighbors() so recompute() skips it — instant switch-over.
  cache_.erase(neighbor);
  for (NodeId d = 0; d < static_cast<NodeId>(bestMetric_.size()); ++d) recompute(d);
}

void Dbf::neighborUp(NodeId /*neighbor*/) {}

}  // namespace rcsim
