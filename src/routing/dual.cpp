#include "routing/dual.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <utility>

#include "net/network.hpp"
#include "net/node.hpp"

namespace rcsim {

std::string DualMessage::describe() const {
  std::ostringstream os;
  switch (msgKind) {
    case DualMsgKind::Update: os << "dual-update"; break;
    case DualMsgKind::Query: os << "dual-query"; break;
    case DualMsgKind::Reply: os << "dual-reply"; break;
  }
  for (const auto& e : entries) os << " " << e.dst << ":" << e.dist;
  return os.str();
}

namespace {

/// Erase `id` from a sorted vector; returns true when it was present.
bool sortedErase(std::vector<NodeId>& v, NodeId id) {
  const auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it == v.end() || *it != id) return false;
  v.erase(it);
  return true;
}

void sortedInsert(std::vector<NodeId>& v, NodeId id) {
  const auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it != v.end() && *it == id) return;
  v.insert(it, id);
}

}  // namespace

Dual::Dual(Node& node, DualConfig cfg) : RoutingProtocol{node}, cfg_{cfg} {}

Dual::~Dual() {
  for (auto& [dst, st] : activeState_) node_.scheduler().cancel(st.siaTimer);
}

void Dual::start() {
  initTables();
  const auto degree = node_.neighbors().size();
  outboxBySlot_.assign(degree * 3, {});
  reportedBySlot_.assign(degree, {});
  // Sorted, with the parallel slot array, so recompute() walks neighbors in
  // ascending id order (as the std::set did) without per-neighbor lookups.
  node_.neighborIndex().forEachSorted([this](NodeId id, int slot) {
    alive_.push_back(id);
    aliveSlots_.push_back(slot);
  });
  sendToAll(DualMsgKind::Update, node_.id(), 0);
}

void Dual::initTables() {
  const auto n = node_.network().nodeCount();
  distance_.assign(n, static_cast<std::uint16_t>(cfg_.maxDistance));
  feasible_.assign(n, static_cast<std::uint16_t>(cfg_.maxDistance));
  active_.assign(n);
  distance_[static_cast<std::size_t>(node_.id())] = 0;
  feasible_[static_cast<std::size_t>(node_.id())] = 0;
}

int Dual::distance(NodeId dst) const { return distance_[static_cast<std::size_t>(dst)]; }

int Dual::reportedBySlot(int slot, NodeId dst) const {
  const auto& row = reportedBySlot_[static_cast<std::size_t>(slot)];
  if (row.empty()) return cfg_.maxDistance;
  return row[static_cast<std::size_t>(dst)];
}

int Dual::reported(NodeId neighbor, NodeId dst) const {
  const int slot = node_.neighborSlot(neighbor);
  if (slot < 0) return cfg_.maxDistance;
  return reportedBySlot(slot, dst);
}

void Dual::installRoute(NodeId dst, int dist, NodeId successor, const NodeId* alts, int altCount) {
  const auto i = static_cast<std::size_t>(dst);
  const bool changed = dist != distance_[i];
  distance_[i] = static_cast<std::uint16_t>(dist);
  // The successor is not stored separately: the FIB's primary entry is the
  // single source of truth (docs/routing-state.md).
  if (node_.fib().ecmpEnabled()) {
    NodeId hops[Fib::kMaxNextHops];
    int count = 0;
    if (dist < cfg_.maxDistance) {
      hops[count++] = successor;
      for (int k = 0; k < altCount && count < Fib::kMaxNextHops; ++k) hops[count++] = alts[k];
    }
    node_.setRoutes(dst, hops, count);
  } else {
    node_.setRoute(dst, dist >= cfg_.maxDistance ? kInvalidNode : successor);
  }
  if (changed) sendToAll(DualMsgKind::Update, dst, dist);
}

void Dual::recompute(NodeId dst) {
  if (dst == node_.id()) return;
  if (active_.test(dst)) return;  // frozen until the diffusing computation completes
  const auto i = static_cast<std::size_t>(dst);

  // Best distance over all live neighbors, and best over *feasible* ones
  // (reported distance strictly below our feasible distance — the loop-
  // freedom invariant).
  const NodeId incumbent = node_.fib().nextHop(dst);
  const int fd = feasible_[i];
  int bestAny = cfg_.maxDistance;
  int bestFeasible = cfg_.maxDistance;
  NodeId feasibleVia = kInvalidNode;
  for (std::size_t k = 0; k < alive_.size(); ++k) {
    const NodeId n = alive_[k];
    const int rd = reportedBySlot(aliveSlots_[k], dst);
    const int cand = std::min(rd + 1, cfg_.maxDistance);
    bestAny = std::min(bestAny, cand);
    if (rd < fd) {
      // Deterministic tie-break: incumbent first, then lowest id.
      const bool beats = cand < bestFeasible ||
                         (cand == bestFeasible &&
                          (feasibleVia != incumbent && (n == incumbent || n < feasibleVia)));
      if (beats) {
        bestFeasible = cand;
        feasibleVia = n;
      }
    }
  }

  if (feasibleVia != kInvalidNode) {
    feasible_[i] = static_cast<std::uint16_t>(std::min<int>(feasible_[i], bestFeasible));
    if (node_.fib().ecmpEnabled()) {
      // Equal-cost feasible successors, ascending (alive_ is sorted).
      NodeId alts[Fib::kMaxNextHops - 1];
      int altCount = 0;
      for (std::size_t k = 0; k < alive_.size() && altCount + 1 < Fib::kMaxNextHops; ++k) {
        const NodeId n = alive_[k];
        if (n == feasibleVia) continue;
        const int rd = reportedBySlot(aliveSlots_[k], dst);
        if (rd < fd && std::min(rd + 1, cfg_.maxDistance) == bestFeasible) alts[altCount++] = n;
      }
      installRoute(dst, bestFeasible, feasibleVia, alts, altCount);
    } else {
      installRoute(dst, bestFeasible, feasibleVia);
    }
    return;
  }
  if (bestAny >= cfg_.maxDistance) {
    // Nothing anywhere: settle on unreachable, no diffusion needed. Keep FD
    // at max so any future finite report is immediately feasible.
    feasible_[i] = static_cast<std::uint16_t>(cfg_.maxDistance);
    installRoute(dst, cfg_.maxDistance, kInvalidNode);
    return;
  }
  // A longer path exists but is not provably loop-free: diffuse.
  goActive(dst);
}

void Dual::goActive(NodeId dst) {
  if (active_.test(dst)) return;
  active_.set(dst);
  ++diffusions_;
  // The paper's reading of DUAL (§2): "the routing table is frozen and the
  // affected destinations are unreachable until the diffusion process
  // completes" — withdraw the route for the duration.
  installRoute(dst, cfg_.maxDistance, kInvalidNode);
  auto& st = activeState_[dst];
  st.outstanding = alive_;  // already sorted
  sendToAll(DualMsgKind::Query, dst, cfg_.maxDistance);
  node_.scheduler().cancel(st.siaTimer);
  st.siaTimer = node_.scheduler().scheduleAfter(cfg_.siaTimeout, EventKind::Protocol, [this, dst] {
    if (!active_.test(dst)) return;
    auto& route = activeState_[dst];
    // Stuck-in-active: give up on the laggards, and distrust them — a
    // neighbor that never confirmed its distance must not be adopted on
    // stale information (that would reintroduce transient loops).
    for (const NodeId n : route.outstanding) {
      const int slot = node_.neighborSlot(n);
      if (slot < 0) continue;
      auto& row = reportedBySlot_[static_cast<std::size_t>(slot)];
      if (!row.empty()) {
        row[static_cast<std::size_t>(dst)] = static_cast<std::uint16_t>(cfg_.maxDistance);
      }
    }
    route.outstanding.clear();
    completeActive(dst);
  });
  if (st.outstanding.empty()) completeActive(dst);
}

void Dual::completeActive(NodeId dst) {
  const auto it = activeState_.find(dst);
  assert(it != activeState_.end());
  node_.scheduler().cancel(it->second.siaTimer);
  it->second.siaTimer = EventId{};
  active_.reset(dst);
  // Reset the feasibility anchor: after a completed diffusion every
  // currently reported distance is trusted.
  feasible_[static_cast<std::size_t>(dst)] = static_cast<std::uint16_t>(cfg_.maxDistance);
  recompute(dst);  // may re-activate; the map entry survives (iterators stable)
  const auto pending = std::exchange(it->second.pendingRepliesTo, {});
  for (const NodeId q : pending) {
    if (std::binary_search(alive_.begin(), alive_.end(), q)) {
      sendTo(q, DualMsgKind::Reply, dst, distance_[static_cast<std::size_t>(dst)]);
    }
  }
  if (!active_.test(dst)) activeState_.erase(it);
}

void Dual::sendToAll(DualMsgKind kind, NodeId dst, int dist, NodeId except) {
  for (const NodeId n : alive_) {
    if (n != except) sendTo(n, kind, dst, dist);
  }
}

void Dual::sendTo(NodeId neighbor, DualMsgKind kind, NodeId dst, int dist) {
  const int slot = node_.neighborSlot(neighbor);
  assert(slot >= 0);
  auto& batch =
      outboxBySlot_[static_cast<std::size_t>(slot) * 3 + static_cast<std::size_t>(kind)];
  // Later values for the same destination supersede earlier ones within a
  // batch (the receiver would apply them in order anyway).
  for (auto& e : batch) {
    if (e.dst == dst) {
      e.dist = static_cast<std::uint16_t>(dist);
      return;
    }
  }
  batch.push_back(DualMessage::Entry{dst, static_cast<std::uint16_t>(dist)});
  if (flushScheduled_) return;
  flushScheduled_ = true;
  scheduleGuarded(node_.scheduler(), Time::zero(), [this] { flushOutbox(); });
}

void Dual::flushOutbox() {
  flushScheduled_ = false;
  // Deterministic order: neighbors ascending by id (slots are attachment
  // order, so go through the sorted index); per neighbor, updates before
  // queries before replies (state first, then questions, then answers).
  node_.neighborIndex().forEachSorted([this](NodeId neighbor, int slot) {
    const bool isAlive = std::binary_search(alive_.begin(), alive_.end(), neighbor);
    for (std::size_t kind = 0; kind < 3; ++kind) {
      auto& batch = outboxBySlot_[static_cast<std::size_t>(slot) * 3 + kind];
      if (batch.empty()) continue;
      if (!isAlive) {
        batch.clear();  // the neighbor died after batching: drop, as before
        continue;
      }
      auto msg = std::make_shared<DualMessage>();
      msg->msgKind = static_cast<DualMsgKind>(kind);
      msg->entries = std::move(batch);
      batch.clear();
      node_.sendControl(neighbor, std::move(msg));
    }
  });
}

void Dual::onMessage(NodeId from, std::shared_ptr<const ControlPayload> msg) {
  const auto* m = dynamic_cast<const DualMessage*>(msg.get());
  if (m == nullptr || !std::binary_search(alive_.begin(), alive_.end(), from)) return;
  for (const auto& e : m->entries) handleEntry(from, m->msgKind, e.dst, e.dist);
}

void Dual::handleEntry(NodeId from, DualMsgKind kind, NodeId dst, int dist) {
  if (dst != node_.id()) {
    const int slot = node_.neighborSlot(from);
    assert(slot >= 0);
    auto& row = reportedBySlot_[static_cast<std::size_t>(slot)];
    if (row.empty()) {
      row.assign(node_.network().nodeCount(), static_cast<std::uint16_t>(cfg_.maxDistance));
    }
    row[static_cast<std::size_t>(dst)] =
        static_cast<std::uint16_t>(std::min(dist, cfg_.maxDistance));
  }

  switch (kind) {
    case DualMsgKind::Update:
      recompute(dst);
      break;
    case DualMsgKind::Query: {
      if (dst == node_.id()) {
        sendTo(from, DualMsgKind::Reply, dst, 0);
        return;
      }
      if (active_.test(dst)) {
        // Simplification (see header): answer nested queries with the
        // frozen (infinite) distance instead of stacking diffusions.
        sendTo(from, DualMsgKind::Reply, dst, distance_[static_cast<std::size_t>(dst)]);
        return;
      }
      recompute(dst);
      if (active_.test(dst)) {
        // The query tipped us into our own diffusion: defer the reply.
        sortedInsert(activeState_[dst].pendingRepliesTo, from);
      } else {
        sendTo(from, DualMsgKind::Reply, dst, distance_[static_cast<std::size_t>(dst)]);
      }
      break;
    }
    case DualMsgKind::Reply: {
      if (!active_.test(dst)) return;
      auto& st = activeState_[dst];
      if (sortedErase(st.outstanding, from) && st.outstanding.empty()) completeActive(dst);
      break;
    }
  }
}

void Dual::onLinkDown(NodeId neighbor) {
  const auto it = std::lower_bound(alive_.begin(), alive_.end(), neighbor);
  if (it == alive_.end() || *it != neighbor) return;
  aliveSlots_.erase(aliveSlots_.begin() + (it - alive_.begin()));
  alive_.erase(it);
  const int slot = node_.neighborSlot(neighbor);
  auto& row = reportedBySlot_[static_cast<std::size_t>(slot)];
  row.clear();
  row.shrink_to_fit();
  for (NodeId d = 0; d < static_cast<NodeId>(distance_.size()); ++d) {
    if (active_.test(d)) {
      auto& st = activeState_[d];
      sortedErase(st.pendingRepliesTo, neighbor);
      if (sortedErase(st.outstanding, neighbor) && st.outstanding.empty()) completeActive(d);
    } else {
      recompute(d);
    }
  }
}

void Dual::onLinkUp(NodeId neighbor) {
  const auto it = std::lower_bound(alive_.begin(), alive_.end(), neighbor);
  if (it != alive_.end() && *it == neighbor) return;
  aliveSlots_.insert(aliveSlots_.begin() + (it - alive_.begin()), node_.neighborSlot(neighbor));
  alive_.insert(it, neighbor);
  // Share the full table with the returning neighbor.
  for (NodeId d = 0; d < static_cast<NodeId>(distance_.size()); ++d) {
    const int dist = distance_[static_cast<std::size_t>(d)];
    if (dist < cfg_.maxDistance) sendTo(neighbor, DualMsgKind::Update, d, dist);
  }
}

}  // namespace rcsim
