#include "routing/dual.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "net/network.hpp"
#include "net/node.hpp"

namespace rcsim {

std::string DualMessage::describe() const {
  std::ostringstream os;
  switch (msgKind) {
    case DualMsgKind::Update: os << "dual-update"; break;
    case DualMsgKind::Query: os << "dual-query"; break;
    case DualMsgKind::Reply: os << "dual-reply"; break;
  }
  for (const auto& e : entries) os << " " << e.dst << ":" << e.dist;
  return os.str();
}

Dual::Dual(Node& node, DualConfig cfg) : RoutingProtocol{node}, cfg_{cfg} {}

Dual::~Dual() {
  for (auto& r : table_) node_.scheduler().cancel(r.siaTimer);
}

void Dual::start() {
  initTables();
  for (const NodeId n : node_.neighbors()) alive_.insert(n);
  sendToAll(DualMsgKind::Update, node_.id(), 0);
}

void Dual::initTables() {
  const auto n = node_.network().nodeCount();
  table_.assign(n, Route{});
  for (auto& r : table_) {
    r.feasibleDistance = cfg_.maxDistance;
    r.distance = cfg_.maxDistance;
  }
  auto& self = table_[static_cast<std::size_t>(node_.id())];
  self.feasibleDistance = 0;
  self.distance = 0;
  self.successor = node_.id();
}

int Dual::distance(NodeId dst) const { return table_[static_cast<std::size_t>(dst)].distance; }

int Dual::reported(NodeId neighbor, NodeId dst) const {
  const auto it = reported_.find(neighbor);
  if (it == reported_.end()) return cfg_.maxDistance;
  return it->second[static_cast<std::size_t>(dst)];
}

void Dual::installRoute(NodeId dst, int dist, NodeId successor) {
  auto& r = table_[static_cast<std::size_t>(dst)];
  const bool changed = dist != r.distance;
  r.distance = dist;
  r.successor = successor;
  node_.setRoute(dst, dist >= cfg_.maxDistance ? kInvalidNode : successor);
  if (changed) sendToAll(DualMsgKind::Update, dst, dist);
}

void Dual::recompute(NodeId dst) {
  if (dst == node_.id()) return;
  auto& r = table_[static_cast<std::size_t>(dst)];
  if (r.active) return;  // frozen until the diffusing computation completes

  // Best distance over all live neighbors, and best over *feasible* ones
  // (reported distance strictly below our feasible distance — the loop-
  // freedom invariant).
  int bestAny = cfg_.maxDistance;
  int bestFeasible = cfg_.maxDistance;
  NodeId feasibleVia = kInvalidNode;
  for (const NodeId n : alive_) {
    const int rd = reported(n, dst);
    const int cand = std::min(rd + 1, cfg_.maxDistance);
    bestAny = std::min(bestAny, cand);
    if (rd < r.feasibleDistance) {
      // Deterministic tie-break: incumbent first, then lowest id.
      const bool beats = cand < bestFeasible ||
                         (cand == bestFeasible &&
                          (feasibleVia != r.successor && (n == r.successor || n < feasibleVia)));
      if (beats) {
        bestFeasible = cand;
        feasibleVia = n;
      }
    }
  }

  if (feasibleVia != kInvalidNode) {
    r.feasibleDistance = std::min(r.feasibleDistance, bestFeasible);
    installRoute(dst, bestFeasible, feasibleVia);
    return;
  }
  if (bestAny >= cfg_.maxDistance) {
    // Nothing anywhere: settle on unreachable, no diffusion needed. Keep FD
    // at max so any future finite report is immediately feasible.
    r.feasibleDistance = cfg_.maxDistance;
    installRoute(dst, cfg_.maxDistance, kInvalidNode);
    return;
  }
  // A longer path exists but is not provably loop-free: diffuse.
  goActive(dst);
}

void Dual::goActive(NodeId dst) {
  auto& r = table_[static_cast<std::size_t>(dst)];
  if (r.active) return;
  r.active = true;
  ++diffusions_;
  // The paper's reading of DUAL (§2): "the routing table is frozen and the
  // affected destinations are unreachable until the diffusion process
  // completes" — withdraw the route for the duration.
  installRoute(dst, cfg_.maxDistance, kInvalidNode);
  r.outstanding = alive_;
  sendToAll(DualMsgKind::Query, dst, cfg_.maxDistance);
  node_.scheduler().cancel(r.siaTimer);
  r.siaTimer = node_.scheduler().scheduleAfter(cfg_.siaTimeout, [this, dst] {
    auto& route = table_[static_cast<std::size_t>(dst)];
    if (!route.active) return;
    // Stuck-in-active: give up on the laggards, and distrust them — a
    // neighbor that never confirmed its distance must not be adopted on
    // stale information (that would reintroduce transient loops).
    for (const NodeId n : route.outstanding) {
      const auto it = reported_.find(n);
      if (it != reported_.end()) {
        it->second[static_cast<std::size_t>(dst)] =
            static_cast<std::uint16_t>(cfg_.maxDistance);
      }
    }
    route.outstanding.clear();
    completeActive(dst);
  });
  if (r.outstanding.empty()) completeActive(dst);
}

void Dual::completeActive(NodeId dst) {
  auto& r = table_[static_cast<std::size_t>(dst)];
  node_.scheduler().cancel(r.siaTimer);
  r.siaTimer = EventId{};
  r.active = false;
  // Reset the feasibility anchor: after a completed diffusion every
  // currently reported distance is trusted.
  r.feasibleDistance = cfg_.maxDistance;
  recompute(dst);
  const auto pending = std::exchange(r.pendingRepliesTo, {});
  for (const NodeId q : pending) {
    if (alive_.count(q) > 0) sendTo(q, DualMsgKind::Reply, dst, r.distance);
  }
}

void Dual::sendToAll(DualMsgKind kind, NodeId dst, int dist, NodeId except) {
  for (const NodeId n : alive_) {
    if (n != except) sendTo(n, kind, dst, dist);
  }
}

void Dual::sendTo(NodeId neighbor, DualMsgKind kind, NodeId dst, int dist) {
  auto& batch = outbox_[{neighbor, kind}];
  // Later values for the same destination supersede earlier ones within a
  // batch (the receiver would apply them in order anyway).
  for (auto& e : batch) {
    if (e.dst == dst) {
      e.dist = static_cast<std::uint16_t>(dist);
      return;
    }
  }
  batch.push_back(DualMessage::Entry{dst, static_cast<std::uint16_t>(dist)});
  if (flushScheduled_) return;
  flushScheduled_ = true;
  scheduleGuarded(node_.scheduler(), Time::zero(), [this] { flushOutbox(); });
}

void Dual::flushOutbox() {
  flushScheduled_ = false;
  // Deterministic order: per neighbor, updates before queries before
  // replies (state first, then questions, then answers).
  auto box = std::exchange(outbox_, {});
  for (auto& [key, entries] : box) {
    const auto& [neighbor, kind] = key;
    if (alive_.count(neighbor) == 0) continue;
    auto msg = std::make_shared<DualMessage>();
    msg->msgKind = kind;
    msg->entries = std::move(entries);
    node_.sendControl(neighbor, std::move(msg));
  }
}

void Dual::onMessage(NodeId from, std::shared_ptr<const ControlPayload> msg) {
  const auto* m = dynamic_cast<const DualMessage*>(msg.get());
  if (m == nullptr || alive_.count(from) == 0) return;
  for (const auto& e : m->entries) handleEntry(from, m->msgKind, e.dst, e.dist);
}

void Dual::handleEntry(NodeId from, DualMsgKind kind, NodeId dst, int dist) {
  auto it = reported_.find(from);
  if (it == reported_.end()) {
    it = reported_
             .emplace(from, std::vector<std::uint16_t>(
                                node_.network().nodeCount(),
                                static_cast<std::uint16_t>(cfg_.maxDistance)))
             .first;
  }
  if (dst != node_.id()) {
    it->second[static_cast<std::size_t>(dst)] =
        static_cast<std::uint16_t>(std::min(dist, cfg_.maxDistance));
  }
  auto& r = table_[static_cast<std::size_t>(dst)];

  switch (kind) {
    case DualMsgKind::Update:
      recompute(dst);
      break;
    case DualMsgKind::Query: {
      if (dst == node_.id()) {
        sendTo(from, DualMsgKind::Reply, dst, 0);
        return;
      }
      if (r.active) {
        // Simplification (see header): answer nested queries with the
        // frozen (infinite) distance instead of stacking diffusions.
        sendTo(from, DualMsgKind::Reply, dst, r.distance);
        return;
      }
      recompute(dst);
      if (r.active) {
        // The query tipped us into our own diffusion: defer the reply.
        r.pendingRepliesTo.insert(from);
      } else {
        sendTo(from, DualMsgKind::Reply, dst, r.distance);
      }
      break;
    }
    case DualMsgKind::Reply: {
      if (!r.active) return;
      if (r.outstanding.erase(from) > 0 && r.outstanding.empty()) completeActive(dst);
      break;
    }
  }
}

void Dual::onLinkDown(NodeId neighbor) {
  if (alive_.erase(neighbor) == 0) return;
  reported_.erase(neighbor);
  for (NodeId d = 0; d < static_cast<NodeId>(table_.size()); ++d) {
    auto& r = table_[static_cast<std::size_t>(d)];
    r.pendingRepliesTo.erase(neighbor);
    if (r.active) {
      if (r.outstanding.erase(neighbor) > 0 && r.outstanding.empty()) completeActive(d);
    } else {
      recompute(d);
    }
  }
}

void Dual::onLinkUp(NodeId neighbor) {
  if (!alive_.insert(neighbor).second) return;
  // Share the full table with the returning neighbor.
  for (NodeId d = 0; d < static_cast<NodeId>(table_.size()); ++d) {
    const auto& r = table_[static_cast<std::size_t>(d)];
    if (r.distance < cfg_.maxDistance) sendTo(neighbor, DualMsgKind::Update, d, r.distance);
  }
}

}  // namespace rcsim
