#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/dense.hpp"
#include "net/routing_protocol.hpp"
#include "routing/messages.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace rcsim {

/// Loop-prevention flavor for advertisements toward a route's next hop.
enum class SplitHorizonMode {
  None,           ///< advertise everything honestly (no protection)
  SplitHorizon,   ///< omit routes whose next hop is the receiver
  PoisonReverse,  ///< advertise such routes with the infinity metric (paper §3)
};

/// Shared configuration of the distance-vector protocols (paper §3).
struct DvConfig {
  Time periodicInterval = Time::seconds(30.0);
  Time periodicJitter = Time::seconds(3.0);  ///< uniform +- around the interval
  Time timeout = Time::seconds(180.0);       ///< route/neighbor expiry
  double triggerDampMinSec = 1.0;  ///< triggered-update damping timer lower bound
  double triggerDampMaxSec = 5.0;  ///< ... upper bound ("randomly chosen between 1 and 5 s")
  /// Hold-down (docs/failure-detection.md): after a route is lost, refuse
  /// alternate-source claims of reachability for this long, so stale news
  /// of the old path cannot restart a counting episode. 0 disables (the
  /// default — RFC 2453 RIP has no hold-down).
  double holdDownSec = 0.0;
  /// Minimum spacing between triggered-update flushes, enforced on top of
  /// the random damping timer (flap storms otherwise emit one triggered
  /// update per damp expiry). 0 disables.
  double triggerMinGapSec = 0.0;
  int infinityMetric = 16;
  int maxEntriesPerMessage = 25;  ///< RFC 2453 message capacity
  SplitHorizonMode splitHorizon = SplitHorizonMode::PoisonReverse;
};

/// Machinery common to RIP and DBF: neighbor liveness, the jittered periodic
/// full-table announcement, and the RFC 2453 triggered-update engine (first
/// change sent immediately, subsequent changes batched behind a random
/// 1-5 s damping timer).
///
/// Subclasses provide route computation/state through the protected hooks.
class DvProtocolBase : public RoutingProtocol {
 public:
  DvProtocolBase(Node& node, DvConfig cfg);
  ~DvProtocolBase() override;

  void start() override;
  void onLinkDown(NodeId neighbor) override;
  void onLinkUp(NodeId neighbor) override;
  void onMessage(NodeId from, std::shared_ptr<const ControlPayload> msg) override;

  [[nodiscard]] const DvConfig& config() const { return cfg_; }
  /// Messages sent, for the paper's routing-overhead accounting.
  [[nodiscard]] std::uint64_t updatesSent() const { return updatesSent_; }

 protected:
  /// Apply an incoming update's entries to the routing state.
  virtual void processUpdate(NodeId from, const DvUpdate& update) = 0;
  /// The neighbor is gone (link down or aged out): drop state learned from it.
  virtual void neighborDown(NodeId neighbor) = 0;
  /// The neighbor (re)appeared.
  virtual void neighborUp(NodeId neighbor) = 0;
  /// Current best metric toward dst (infinityMetric when unreachable).
  [[nodiscard]] virtual int metricFor(NodeId dst) const = 0;
  /// Current next hop toward dst (kInvalidNode when unreachable).
  [[nodiscard]] virtual NodeId nextHopFor(NodeId dst) const = 0;
  /// Destinations this node would include in a full-table announcement.
  [[nodiscard]] virtual std::vector<NodeId> knownDestinations() const = 0;

  /// Record a route change; drives the triggered-update engine.
  void markChanged(NodeId dst);

  /// Hold-down service. startHoldDown is called by subclasses when a route
  /// to `dst` transitions reachable -> unreachable; while inHoldDown(dst),
  /// they must refuse to adopt reachability claims from alternate sources.
  /// No-ops (and allocates nothing) when cfg_.holdDownSec is 0.
  void startHoldDown(NodeId dst);
  [[nodiscard]] bool inHoldDown(NodeId dst) const;
  /// Fired once the hold-down for `dst` has lapsed (only when holdDownSec
  /// is active). Subclasses with cached alternates re-evaluate here.
  virtual void holdDownExpired(NodeId /*dst*/) {}

  /// True when we believe the link to this neighbor is usable.
  [[nodiscard]] bool neighborAlive(NodeId neighbor) const;
  [[nodiscard]] const std::vector<NodeId>& aliveNeighbors() const { return alive_; }
  /// Node::neighborSlot of each alive neighbor, parallel to aliveNeighbors().
  /// Lets subclasses index flat per-neighbor tables without a lookup in the
  /// recompute hot loop.
  [[nodiscard]] const std::vector<int>& aliveNeighborSlots() const { return aliveSlots_; }

  /// Send `dsts` (split-horizon-poisoned per neighbor, chunked at the
  /// message capacity) to one neighbor.
  void sendEntries(NodeId neighbor, const std::vector<NodeId>& dsts);

  /// Send `dsts` to every live neighbor. Neighbors that are the next hop of
  /// an advertised destination get per-neighbor content (split horizon /
  /// poison reverse rewrites it); all others receive the *same* immutable
  /// chunked payload, built once — identical bytes on the wire, without the
  /// per-neighbor message construction.
  void sendEntriesAll(const std::vector<NodeId>& dsts);

 private:
  /// Chunk `dsts` with honest (un-poisoned) metrics into shareable updates.
  [[nodiscard]] std::vector<std::shared_ptr<const DvUpdate>> buildSharedChunks(
      const std::vector<NodeId>& dsts) const;

  void periodicTick();
  void sendFullTables();
  void flushTriggered();
  /// Flush the pending triggered update unless the rate limit defers it.
  void maybeFlushNow();
  void armDampTimer();
  void checkNeighborAging();

  DvConfig cfg_;
  std::vector<NodeId> alive_;      ///< attachment order (insertion order preserved)
  std::vector<int> aliveSlots_;    ///< parallel: Node::neighborSlot of alive_[k]
  std::vector<Time> lastHeardBySlot_;  ///< per neighbor slot (degree-sized)
  NodeBitset changed_;                 ///< destinations awaiting a triggered update
  std::vector<NodeId> changedScratch_;     ///< reused drain buffer for flushTriggered
  std::vector<std::uint8_t> rewrittenSlots_;  ///< reused per-send scratch, degree-sized
  bool flushScheduled_ = false;
  bool dampRunning_ = false;
  EventId dampTimer_{};
  EventId periodicTimer_{};
  std::uint64_t updatesSent_ = 0;
  /// Per-destination hold-down deadlines; allocated lazily, only when
  /// holdDownSec is configured (stays empty — zero bytes — otherwise).
  std::vector<Time> holdUntil_;
  Time nextTriggerAllowed_{};  ///< triggerMinGapSec rate-limit watermark
};

}  // namespace rcsim
