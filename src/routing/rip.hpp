#pragma once

#include <cstdint>
#include <vector>

#include "net/dense.hpp"
#include "routing/dv_common.hpp"

namespace rcsim {

/// RIP (RFC 2453 model, paper §3): keeps only the single best route per
/// destination, discarding reachability information learned from other
/// neighbors. When the next hop fails, the router has *no* alternate and
/// must wait for another neighbor's (periodic or triggered) announcement —
/// the source of RIP's long path switch-over period (paper §4.1).
///
/// State is SoA over dense NodeIds (docs/routing-state.md): flat uint16
/// metrics, per-destination refresh times, and a known-destination bitset.
/// The next hop is not stored separately — adopt() installs it into the FIB,
/// whose primary entry stays the single source of truth.
class Rip final : public DvProtocolBase {
 public:
  Rip(Node& node, DvConfig cfg);

  [[nodiscard]] std::string name() const override { return "RIP"; }

  /// Introspection for tests.
  [[nodiscard]] int metricFor(NodeId dst) const override;
  [[nodiscard]] NodeId nextHopFor(NodeId dst) const override;

 protected:
  void processUpdate(NodeId from, const DvUpdate& update) override;
  void neighborDown(NodeId neighbor) override;
  void neighborUp(NodeId neighbor) override;
  [[nodiscard]] std::vector<NodeId> knownDestinations() const override;
  void start() override;

 private:
  void adopt(NodeId dst, int metric, NodeId nextHop);
  void expireStale();

  std::vector<std::uint16_t> metric_;
  std::vector<Time> lastRefresh_;
  NodeBitset known_;  ///< destination ever heard of (stays set once dead)
};

}  // namespace rcsim
