#pragma once

#include <vector>

#include "routing/dv_common.hpp"

namespace rcsim {

/// RIP (RFC 2453 model, paper §3): keeps only the single best route per
/// destination, discarding reachability information learned from other
/// neighbors. When the next hop fails, the router has *no* alternate and
/// must wait for another neighbor's (periodic or triggered) announcement —
/// the source of RIP's long path switch-over period (paper §4.1).
class Rip final : public DvProtocolBase {
 public:
  Rip(Node& node, DvConfig cfg);

  [[nodiscard]] std::string name() const override { return "RIP"; }

  /// Introspection for tests.
  [[nodiscard]] int metricFor(NodeId dst) const override;
  [[nodiscard]] NodeId nextHopFor(NodeId dst) const override;

 protected:
  void processUpdate(NodeId from, const DvUpdate& update) override;
  void neighborDown(NodeId neighbor) override;
  void neighborUp(NodeId neighbor) override;
  [[nodiscard]] std::vector<NodeId> knownDestinations() const override;
  void start() override;

 private:
  struct Route {
    int metric = 0;
    NodeId nextHop = kInvalidNode;
    Time lastRefresh;
    bool known = false;  ///< Destination ever heard of (stays true once dead).
  };

  void adopt(NodeId dst, int metric, NodeId nextHop);
  void expireStale();

  std::vector<Route> table_;
};

}  // namespace rcsim
