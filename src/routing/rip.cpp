#include "routing/rip.hpp"

#include <algorithm>

#include "net/network.hpp"
#include "net/node.hpp"

namespace rcsim {

Rip::Rip(Node& node, DvConfig cfg) : DvProtocolBase{node, cfg} {}

void Rip::start() {
  table_.assign(node_.network().nodeCount(), Route{});
  auto& self = table_[static_cast<std::size_t>(node_.id())];
  self.metric = 0;
  self.nextHop = node_.id();
  self.known = true;
  self.lastRefresh = node_.scheduler().now();
  DvProtocolBase::start();
}

int Rip::metricFor(NodeId dst) const {
  const auto& e = table_[static_cast<std::size_t>(dst)];
  return e.known ? e.metric : config().infinityMetric;
}

NodeId Rip::nextHopFor(NodeId dst) const {
  const auto& e = table_[static_cast<std::size_t>(dst)];
  if (!e.known || e.metric >= config().infinityMetric) return kInvalidNode;
  return e.nextHop;
}

std::vector<NodeId> Rip::knownDestinations() const {
  std::vector<NodeId> dsts;
  for (NodeId d = 0; d < static_cast<NodeId>(table_.size()); ++d) {
    if (table_[static_cast<std::size_t>(d)].known) dsts.push_back(d);
  }
  return dsts;
}

void Rip::adopt(NodeId dst, int metric, NodeId nextHop) {
  auto& e = table_[static_cast<std::size_t>(dst)];
  const bool metricChanged = !e.known || e.metric != metric;
  e.known = true;
  e.metric = metric;
  e.nextHop = metric >= config().infinityMetric ? kInvalidNode : nextHop;
  e.lastRefresh = node_.scheduler().now();
  node_.setRoute(dst, e.nextHop);
  if (metricChanged) markChanged(dst);
}

void Rip::processUpdate(NodeId from, const DvUpdate& update) {
  expireStale();
  for (const auto& entry : update.entries) {
    const NodeId d = entry.dst;
    if (d == node_.id()) continue;
    const int metric = std::min<int>(entry.metric + 1, config().infinityMetric);
    auto& e = table_[static_cast<std::size_t>(d)];
    if (e.known && e.nextHop == from) {
      // Updates from the current next hop are authoritative, better or worse
      // (RFC 2453 §3.9.2) — this is what erases the route on poison.
      if (metric != e.metric) {
        adopt(d, metric, from);
      } else if (metric < config().infinityMetric) {
        e.lastRefresh = node_.scheduler().now();
      }
    } else if (metric < (e.known ? e.metric : config().infinityMetric)) {
      adopt(d, metric, from);
    }
  }
}

void Rip::expireStale() {
  const Time now = node_.scheduler().now();
  for (NodeId d = 0; d < static_cast<NodeId>(table_.size()); ++d) {
    auto& e = table_[static_cast<std::size_t>(d)];
    if (d == node_.id() || !e.known || e.metric >= config().infinityMetric) continue;
    if (now - e.lastRefresh > config().timeout) adopt(d, config().infinityMetric, kInvalidNode);
  }
}

void Rip::neighborDown(NodeId neighbor) {
  // All routes through the dead neighbor become unreachable at once; RIP has
  // nothing cached to fall back on (paper §4.1).
  for (NodeId d = 0; d < static_cast<NodeId>(table_.size()); ++d) {
    auto& e = table_[static_cast<std::size_t>(d)];
    if (e.known && e.metric < config().infinityMetric && e.nextHop == neighbor) {
      adopt(d, config().infinityMetric, kInvalidNode);
    }
  }
}

void Rip::neighborUp(NodeId /*neighbor*/) {}

}  // namespace rcsim
