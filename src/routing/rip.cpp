#include "routing/rip.hpp"

#include <algorithm>

#include "net/network.hpp"
#include "net/node.hpp"

namespace rcsim {

Rip::Rip(Node& node, DvConfig cfg) : DvProtocolBase{node, cfg} {}

void Rip::start() {
  const auto n = node_.network().nodeCount();
  metric_.assign(n, 0);
  lastRefresh_.assign(n, node_.scheduler().now());
  known_.assign(n);
  metric_[static_cast<std::size_t>(node_.id())] = 0;
  known_.set(node_.id());
  DvProtocolBase::start();
}

int Rip::metricFor(NodeId dst) const {
  return known_.test(dst) ? metric_[static_cast<std::size_t>(dst)] : config().infinityMetric;
}

NodeId Rip::nextHopFor(NodeId dst) const {
  if (dst == node_.id()) return node_.id();
  if (!known_.test(dst) || metric_[static_cast<std::size_t>(dst)] >= config().infinityMetric) {
    return kInvalidNode;
  }
  // adopt() keeps the FIB primary in lockstep with the table, so the hop is
  // not duplicated here (docs/routing-state.md).
  return node_.fib().nextHop(dst);
}

std::vector<NodeId> Rip::knownDestinations() const {
  std::vector<NodeId> dsts;
  dsts.reserve(known_.count());
  known_.forEachSet([&dsts](NodeId d) { dsts.push_back(d); });
  return dsts;
}

void Rip::adopt(NodeId dst, int metric, NodeId nextHop) {
  const auto i = static_cast<std::size_t>(dst);
  const bool known = known_.test(dst);
  const bool metricChanged = !known || metric_[i] != metric;
  // A reachable route hitting infinity starts the hold-down window (no-op
  // unless dv.holddown is configured).
  if (known && metric_[i] < config().infinityMetric && metric >= config().infinityMetric) {
    startHoldDown(dst);
  }
  known_.set(dst);
  metric_[i] = static_cast<std::uint16_t>(metric);
  lastRefresh_[i] = node_.scheduler().now();
  node_.setRoute(dst, metric >= config().infinityMetric ? kInvalidNode : nextHop);
  if (metricChanged) markChanged(dst);
}

void Rip::processUpdate(NodeId from, const DvUpdate& update) {
  expireStale();
  for (const auto& entry : update.entries) {
    const NodeId d = entry.dst;
    if (d == node_.id()) continue;
    const auto i = static_cast<std::size_t>(d);
    const int metric = std::min<int>(entry.metric + 1, config().infinityMetric);
    const bool known = known_.test(d);
    if (known && node_.fib().nextHop(d) == from) {
      // Updates from the current next hop are authoritative, better or worse
      // (RFC 2453 §3.9.2) — this is what erases the route on poison.
      if (metric != metric_[i]) {
        adopt(d, metric, from);
      } else if (metric < config().infinityMetric) {
        lastRefresh_[i] = node_.scheduler().now();
      }
    } else if (metric < (known ? metric_[i] : config().infinityMetric)) {
      // Hold-down: after losing the route, distrust alternate sources for a
      // while — their "better" news is usually our own stale reachability
      // echoing back. Updates from the installed next hop (above) are
      // exempt, and RIP re-adopts automatically once the window lapses.
      if (!inHoldDown(d)) adopt(d, metric, from);
    }
  }
}

void Rip::expireStale() {
  const Time now = node_.scheduler().now();
  for (NodeId d = 0; d < static_cast<NodeId>(metric_.size()); ++d) {
    const auto i = static_cast<std::size_t>(d);
    if (d == node_.id() || !known_.test(d) || metric_[i] >= config().infinityMetric) continue;
    if (now - lastRefresh_[i] > config().timeout) adopt(d, config().infinityMetric, kInvalidNode);
  }
}

void Rip::neighborDown(NodeId neighbor) {
  // All routes through the dead neighbor become unreachable at once; RIP has
  // nothing cached to fall back on (paper §4.1).
  for (NodeId d = 0; d < static_cast<NodeId>(metric_.size()); ++d) {
    const auto i = static_cast<std::size_t>(d);
    if (known_.test(d) && metric_[i] < config().infinityMetric &&
        node_.fib().nextHop(d) == neighbor) {
      adopt(d, config().infinityMetric, kInvalidNode);
    }
  }
}

void Rip::neighborUp(NodeId /*neighbor*/) {}

}  // namespace rcsim
