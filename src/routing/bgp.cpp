#include "routing/bgp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "net/network.hpp"
#include "net/node.hpp"

namespace rcsim {

Bgp::Bgp(Node& node, BgpConfig cfg) : RoutingProtocol{node}, cfg_{cfg} {}

Bgp::~Bgp() {
  auto& sched = node_.scheduler();
  for (auto& peer : peers_) {
    sched.cancel(peer.mraiTimer);
    for (auto& [dst, timer] : peer.destTimers) sched.cancel(timer);
    for (auto& [dst, st] : peer.damp) sched.cancel(st.reuseTimer);
  }
}

Bgp::Peer* Bgp::findPeer(NodeId peerId) {
  const auto it = std::lower_bound(peers_.begin(), peers_.end(), peerId,
                                   [](const Peer& p, NodeId id) { return p.id < id; });
  return (it != peers_.end() && it->id == peerId) ? &*it : nullptr;
}

const Bgp::Peer* Bgp::findPeer(NodeId peerId) const {
  const auto it = std::lower_bound(peers_.begin(), peers_.end(), peerId,
                                   [](const Peer& p, NodeId id) { return p.id < id; });
  return (it != peers_.end() && it->id == peerId) ? &*it : nullptr;
}

Bgp::Peer& Bgp::peerAt(NodeId peerId) {
  Peer* p = findPeer(peerId);
  assert(p != nullptr);
  return *p;
}

void Bgp::start() {
  const auto n = node_.network().nodeCount();
  bestPath_.assign(n, {});
  bestVia_.assign(n, kInvalidNode);
  advertCache_.assign(n, nullptr);
  withdrawCache_.assign(n, nullptr);
  const auto self = static_cast<std::size_t>(node_.id());
  bestPath_[self] = {node_.id()};
  bestVia_[self] = node_.id();

  peers_.reserve(node_.neighbors().size());
  // Build in ascending id order so the vector is sorted (iteration order of
  // the node-keyed map this replaces).
  node_.neighborIndex().forEachSorted([this, n](NodeId nb, int /*slot*/) {
    Peer peer;
    peer.id = nb;
    peer.session = std::make_unique<ReliableSession>(
        node_, nb,
        [this, nb](std::shared_ptr<const ControlPayload> msg) {
          if (const auto* u = dynamic_cast<const BgpUpdate*>(msg.get())) processUpdate(nb, *u);
        },
        cfg_.transport);
    // Transport gave up (max retries): both sides must resync, like a BGP
    // session bounce. Our side re-advertises; the peer reacts to the RST.
    peer.session->setOnReset([this, nb] { resyncPeer(nb); });
    peer.pending.assign(n);
    peer.destPending.assign(n);
    peer.ribIn.assign(n, {});
    peer.ribOut.assign(n, {});
    peers_.push_back(std::move(peer));
  });
  // Session establishment: announce everything we know (just ourselves).
  scheduleAdvertAll(node_.id());
}

const std::vector<NodeId>* Bgp::ribInPath(NodeId neighbor, NodeId dst) const {
  const Peer* peer = findPeer(neighbor);
  if (peer == nullptr) return nullptr;
  const auto& p = peer->ribIn[static_cast<std::size_t>(dst)];
  return p.empty() ? nullptr : &p;
}

void Bgp::onMessage(NodeId from, std::shared_ptr<const ControlPayload> msg) {
  Peer* peer = findPeer(from);
  if (peer == nullptr || !peer->up) return;
  if (dynamic_cast<const TransportReset*>(msg.get()) != nullptr) {
    // Peer's transport gave up and tore the session down; mirror the reset
    // and re-advertise so both ends rebuild from a clean slate.
    peer->session->reset();
    resyncPeer(from);
    return;
  }
  if (auto seg = std::dynamic_pointer_cast<const TransportSegment>(msg)) {
    peer->session->onSegment(seg);
  }
}

RoutingProtocol::TransportCounters Bgp::transportCounters() const {
  TransportCounters tc;
  for (const auto& peer : peers_) {
    if (!peer.session) continue;
    tc.retransmissions += peer.session->retransmissions();
    tc.sessionResets += peer.session->sessionResets();
  }
  return tc;
}

void Bgp::resyncPeer(NodeId peerId) {
  auto& peer = peerAt(peerId);
  for (auto& out : peer.ribOut) out.clear();
  for (NodeId d = 0; d < static_cast<NodeId>(bestPath_.size()); ++d) {
    if (!bestPath_[static_cast<std::size_t>(d)].empty()) scheduleAdvert(peerId, d);
  }
}

void Bgp::processUpdate(NodeId from, const BgpUpdate& update) {
  auto& rib = peerAt(from).ribIn;
  for (const auto& route : update.advertised) {
    const NodeId d = route.dst;
    if (d == node_.id()) continue;
    const bool loops = std::find(route.path.begin(), route.path.end(), node_.id()) !=
                       route.path.end();
    // Receiver-side loop detection: a path through ourselves is unusable and
    // treated exactly like a withdrawal (paper §3).
    auto& slot = rib[static_cast<std::size_t>(d)];
    std::vector<NodeId> next = loops ? std::vector<NodeId>{} : route.path;
    const bool changed = slot != next;
    slot = std::move(next);
    if (changed && cfg_.flapDampingEnabled) recordFlap(from, d);
    runDecision(d);
  }
  for (const NodeId d : update.withdrawn) {
    if (d == node_.id()) continue;
    auto& slot = rib[static_cast<std::size_t>(d)];
    const bool changed = !slot.empty();
    slot.clear();
    if (changed && cfg_.flapDampingEnabled) recordFlap(from, d);
    runDecision(d);
  }
}

void Bgp::decayPenalty(Peer::DampState& st) {
  const Time now = node_.scheduler().now();
  const double dt = (now - st.lastDecay).toSeconds();
  if (dt > 0.0) st.penalty *= std::pow(0.5, dt / cfg_.rfdHalfLifeSec);
  st.lastDecay = now;
}

void Bgp::recordFlap(NodeId peerId, NodeId dst) {
  auto& peer = peerAt(peerId);
  auto& st = peer.damp[dst];
  decayPenalty(st);
  st.penalty += cfg_.rfdPenaltyPerFlap;
  if (st.suppressed || st.penalty <= cfg_.rfdSuppressThreshold) return;
  // Suppress: the route is unusable until the penalty halves its way below
  // the reuse threshold.
  st.suppressed = true;
  ++suppressions_;
  const double waitSec =
      cfg_.rfdHalfLifeSec * std::log2(st.penalty / cfg_.rfdReuseThreshold);
  node_.scheduler().cancel(st.reuseTimer);
  st.reuseTimer = node_.scheduler().scheduleAfter(Time::seconds(waitSec), EventKind::Protocol,
                                                  [this, peerId, dst] {
        auto& p = peerAt(peerId);
        auto& s2 = p.damp[dst];
        decayPenalty(s2);
        s2.suppressed = false;
        s2.reuseTimer = EventId{};
        runDecision(dst);  // the parked route may now win
      });
  runDecision(dst);  // drop the suppressed route from consideration now
}

bool Bgp::isSuppressed(NodeId neighbor, NodeId dst) const {
  const Peer* peer = findPeer(neighbor);
  if (peer == nullptr) return false;
  const auto dit = peer->damp.find(dst);
  return dit != peer->damp.end() && dit->second.suppressed;
}

bool Bgp::pathConsistent(NodeId from, NodeId dst, const std::vector<NodeId>& path) const {
  // path = [from, ..., dst]. Wherever it claims to traverse one of our own
  // direct neighbors m, compare the claimed tail with what m itself last
  // advertised us for dst. A conflicting (or withdrawn) view from m means
  // `from`'s information is stale — the assertion fails.
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {  // skip path[0]==from and the dst itself
    const NodeId m = path[i];
    if (m == from) continue;
    const Peer* peer = findPeer(m);
    if (peer == nullptr || !peer->up) continue;
    const auto& own = peer->ribIn[static_cast<std::size_t>(dst)];
    const std::vector<NodeId> tail(path.begin() + static_cast<std::ptrdiff_t>(i), path.end());
    if (own != tail) return false;
  }
  return true;
}

void Bgp::runDecision(NodeId dst) {
  const auto i = static_cast<std::size_t>(dst);
  const std::vector<NodeId>* best = nullptr;
  NodeId via = kInvalidNode;
  const NodeId incumbent = bestVia_[i];
  for (auto& peer : peers_) {
    const NodeId nb = peer.id;
    if (!peer.up) continue;
    if (cfg_.flapDampingEnabled && isSuppressed(nb, dst)) continue;
    const auto& p = peer.ribIn[i];
    if (p.empty()) continue;
    // Strict assertions (as in Pei et al.): a path contradicting a crossing
    // neighbor's own advertisement is infeasible, not merely dispreferred —
    // that is what prevents exploring stale alternates one MRAI at a time.
    if (cfg_.consistencyAssertions && !pathConsistent(nb, dst, p)) continue;
    bool beats = false;
    if (best == nullptr || p.size() < best->size()) {
      beats = true;
    } else if (p.size() == best->size() && via != incumbent) {
      beats = nb == incumbent || nb < via;
    }
    if (beats) {
      best = &p;
      via = nb;
    }
  }

  const std::vector<NodeId> newPath = best ? *best : std::vector<NodeId>{};
  if (newPath == bestPath_[i] && via == bestVia_[i]) return;
  const bool wasReachable = !bestPath_[i].empty();
  if (newPath != bestPath_[i]) advertCache_[i] = nullptr;  // content changed
  bestPath_[i] = newPath;
  bestVia_[i] = via;
  node_.setRoute(dst, via);
  node_.network().trace().emit(node_.scheduler().now(), obs::TraceKind::BgpBest, node_.id(),
                               kInvalidNode, dst, via,
                               static_cast<std::int64_t>(bestPath_[i].size()));
  if (newPath.empty()) {
    if (wasReachable) sendWithdrawalAll(dst);
  } else {
    scheduleAdvertAll(dst);
  }
}

void Bgp::scheduleAdvertAll(NodeId dst) {
  for (auto& peer : peers_) {
    if (peer.up) scheduleAdvert(peer.id, dst);
  }
}

void Bgp::scheduleAdvert(NodeId peerId, NodeId dst) {
  auto& peer = peerAt(peerId);
  if (cfg_.perDestMrai) {
    const auto it = peer.destTimers.find(dst);
    if (it == peer.destTimers.end()) {
      if (emitRoute(peerId, dst)) armDestMrai(peerId, dst);
    } else {
      peer.destPending.set(dst);
    }
    return;
  }
  peer.pending.set(dst);
  // Flush via a zero-delay event: one incoming update / link event may
  // change routes for many destinations, and the paper's model sends all
  // the resulting updates *before* the MRAI turns on ("after a router has
  // processed all the changed path and sent out corresponding updates, it
  // turns on the MRAI timer", §4.3). The MRAI is armed only when an update
  // really goes on the wire (duplicate suppression may swallow the change).
  if (peer.mraiRunning || peer.flushScheduled) return;
  peer.flushScheduled = true;
  scheduleGuarded(node_.scheduler(), Time::zero(), [this, peerId] {
    auto& p = peerAt(peerId);
    p.flushScheduled = false;
    if (p.mraiRunning || !p.up) return;
    if (flushPeer(peerId)) armMrai(peerId);
  });
}

void Bgp::sendWithdrawalAll(NodeId dst) {
  for (auto& peer : peers_) {
    if (!peer.up) continue;
    if (!cfg_.withdrawalsExemptFromMrai) {
      // Ablation mode: unreachability waits in line like any other change.
      scheduleAdvert(peer.id, dst);
      continue;
    }
    // A withdrawal supersedes any queued advertisement for this dst.
    peer.pending.reset(dst);
    peer.destPending.reset(dst);
    emitRoute(peer.id, dst);
  }
}

bool Bgp::emitRoute(NodeId peerId, NodeId dst) {
  auto& peer = peerAt(peerId);
  if (!peer.up) return false;
  const auto i = static_cast<std::size_t>(dst);
  auto& out = peer.ribOut[i];
  if (bestPath_[i].empty()) {
    if (out.empty()) return false;  // peer never heard of it / already withdrawn
    out.clear();
    // One immutable withdrawal payload per destination, shared by every
    // peer that needs it — its content never changes.
    auto& cached = withdrawCache_[i];
    if (cached == nullptr) {
      auto update = std::make_shared<BgpUpdate>();
      update->withdrawn.push_back(dst);
      cached = std::move(update);
    }
    ++withdrawalsSent_;
    node_.network().trace().emit(node_.scheduler().now(), obs::TraceKind::BgpWithdraw, node_.id(),
                                 peerId, dst);
    peer.session->send(cached);
    return true;
  }
  // Advertised path = [self] + best path; the self-originated route is just
  // [self] (bestPath_ stores {self} for the local node, not a transit path).
  std::vector<NodeId> path;
  path.reserve(bestPath_[i].size() + 1);
  path.push_back(node_.id());
  if (dst != node_.id()) {
    path.insert(path.end(), bestPath_[i].begin(), bestPath_[i].end());
  }
  if (out == path) return false;  // duplicate suppression against Adj-RIB-Out
  // The advert payload is a pure function of bestPath_[dst], so every peer
  // receiving this round of updates shares one immutable copy (invalidated
  // in runDecision when the best path changes).
  auto& cached = advertCache_[i];
  if (cached == nullptr) {
    auto update = std::make_shared<BgpUpdate>();
    update->advertised.push_back(BgpRoute{dst, path});
    cached = std::move(update);
  }
  ++updatesSent_;
  node_.network().trace().emit(node_.scheduler().now(), obs::TraceKind::BgpAdvert, node_.id(),
                               peerId, dst, static_cast<std::int64_t>(path.size()));
  out = std::move(path);
  peer.session->send(cached);
  return true;
}

bool Bgp::flushPeer(NodeId peerId) {
  auto& peer = peerAt(peerId);
  // Drain ascending — the iteration order of the std::set this bitset
  // replaces — into a scratch so reentrant marks land in the next round.
  peer.pending.drainSorted(pendingScratch_);
  bool sent = false;
  for (const NodeId dst : pendingScratch_) sent = emitRoute(peerId, dst) || sent;
  return sent;
}

double Bgp::mraiDelay() { return node_.rng().uniform(cfg_.mraiMinSec, cfg_.mraiMaxSec); }

void Bgp::armMrai(NodeId peerId) {
  auto& peer = peerAt(peerId);
  peer.mraiRunning = true;
  // Draw the delay unconditionally: the RNG stream must not depend on
  // whether tracing is enabled, or traced runs would diverge.
  const Time delay = Time::seconds(mraiDelay());
  node_.network().trace().emit(node_.scheduler().now(), obs::TraceKind::MraiArm, node_.id(),
                               peerId, delay.ns(), 0, -1);
  peer.mraiTimer = node_.scheduler().scheduleAfter(delay, EventKind::Protocol, [this, peerId] {
    auto& p = peerAt(peerId);
    p.mraiRunning = false;
    p.mraiTimer = EventId{};
    node_.network().trace().emit(node_.scheduler().now(), obs::TraceKind::MraiFire, node_.id(),
                                 peerId, static_cast<std::int64_t>(p.pending.count()), 0, -1);
    if (!p.pending.empty() && p.up && flushPeer(peerId)) armMrai(peerId);
  });
}

void Bgp::armDestMrai(NodeId peerId, NodeId dst) {
  auto& peer = peerAt(peerId);
  const Time delay = Time::seconds(mraiDelay());
  node_.network().trace().emit(node_.scheduler().now(), obs::TraceKind::MraiArm, node_.id(),
                               peerId, delay.ns(), 0, dst);
  peer.destTimers[dst] = node_.scheduler().scheduleAfter(delay, EventKind::Protocol,
                                                         [this, peerId, dst] {
    auto& p = peerAt(peerId);
    p.destTimers.erase(dst);
    const bool pending = p.destPending.reset(dst);
    node_.network().trace().emit(node_.scheduler().now(), obs::TraceKind::MraiFire, node_.id(),
                                 peerId, pending ? 1 : 0, 0, dst);
    if (pending && p.up) {
      emitRoute(peerId, dst);
      armDestMrai(peerId, dst);
    }
  });
}

void Bgp::onLinkDown(NodeId neighbor) {
  Peer* found = findPeer(neighbor);
  if (found == nullptr || !found->up) return;
  auto& peer = *found;
  peer.up = false;
  peer.session->reset();
  node_.scheduler().cancel(peer.mraiTimer);
  peer.mraiTimer = EventId{};
  peer.mraiRunning = false;
  peer.pending.clear();
  for (auto& [dst, timer] : peer.destTimers) node_.scheduler().cancel(timer);
  peer.destTimers.clear();
  peer.destPending.clear();
  // The session is gone: what we advertised is forgotten on both sides,
  // and so is the damping history (RFC 2439 resets state with the session).
  for (auto& out : peer.ribOut) out.clear();
  for (auto& [dst, st] : peer.damp) node_.scheduler().cancel(st.reuseTimer);
  peer.damp.clear();
  // Drop everything learned from this neighbor and re-decide.
  auto& rib = peer.ribIn;
  for (NodeId d = 0; d < static_cast<NodeId>(rib.size()); ++d) {
    if (!rib[static_cast<std::size_t>(d)].empty()) {
      rib[static_cast<std::size_t>(d)].clear();
      runDecision(d);
    }
  }
}

void Bgp::onLinkUp(NodeId neighbor) {
  Peer* found = findPeer(neighbor);
  if (found == nullptr || found->up) return;
  auto& peer = *found;
  peer.session->reset();
  peer.up = true;
  // Session re-establishment: advertise the full table to this peer.
  for (NodeId d = 0; d < static_cast<NodeId>(bestPath_.size()); ++d) {
    if (!bestPath_[static_cast<std::size_t>(d)].empty()) scheduleAdvert(neighbor, d);
  }
}

}  // namespace rcsim
