#include "routing/dv_common.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "net/network.hpp"
#include "net/node.hpp"

namespace rcsim {

// The wire format must be able to carry any configurable infinity.
static_assert(std::numeric_limits<decltype(DvEntry::metric)>::max() >= 255,
              "DvEntry::metric too narrow for RIP-style metrics");

DvProtocolBase::DvProtocolBase(Node& node, DvConfig cfg) : RoutingProtocol{node}, cfg_{cfg} {
  assert(cfg_.infinityMetric > 0 &&
         cfg_.infinityMetric <= int{std::numeric_limits<decltype(DvEntry::metric)>::max()} &&
         "infinityMetric must fit the DvEntry wire metric");
  // Release builds: clamp rather than silently truncate on the wire.
  cfg_.infinityMetric = std::min<int>(
      cfg_.infinityMetric, int{std::numeric_limits<decltype(DvEntry::metric)>::max()});
}

DvProtocolBase::~DvProtocolBase() {
  node_.scheduler().cancel(dampTimer_);
  node_.scheduler().cancel(periodicTimer_);
}

void DvProtocolBase::start() {
  auto& sched = node_.scheduler();
  const auto degree = node_.neighbors().size();
  lastHeardBySlot_.assign(degree, sched.now());
  rewrittenSlots_.assign(degree, 0);
  changed_.assign(node_.network().nodeCount());
  for (std::size_t slot = 0; slot < degree; ++slot) {
    const NodeId n = node_.neighbors()[slot];
    alive_.push_back(n);
    aliveSlots_.push_back(static_cast<int>(slot));
    neighborUp(n);
  }
  // Seed propagation right away (stands in for the RIP boot-time request/
  // response exchange), then announce the full table periodically with a
  // random phase so nodes do not synchronize.
  scheduleGuarded(sched, Time::seconds(node_.rng().uniform(0.0, 0.1)),
                  [this] { sendFullTables(); });
  const double phase = node_.rng().uniform(0.0, cfg_.periodicInterval.toSeconds());
  periodicTimer_ = sched.scheduleAfter(Time::seconds(phase), EventKind::Protocol,
                                       [this] { periodicTick(); });
}

void DvProtocolBase::periodicTick() {
  checkNeighborAging();
  // knownDestinations() allocates, so only count them when a sink listens.
  auto& tr = node_.network().trace();
  if (tr.wants(obs::TraceKind::DvPeriodic)) {
    tr.emit(node_.scheduler().now(), obs::TraceKind::DvPeriodic, node_.id(), kInvalidNode,
            static_cast<std::int64_t>(knownDestinations().size()));
  }
  sendFullTables();
  const double jitter = cfg_.periodicJitter.toSeconds();
  const double next = cfg_.periodicInterval.toSeconds() + node_.rng().uniform(-jitter, jitter);
  periodicTimer_ = node_.scheduler().scheduleAfter(Time::seconds(next), EventKind::Protocol,
                                                   [this] { periodicTick(); });
}

void DvProtocolBase::checkNeighborAging() {
  const Time now = node_.scheduler().now();
  std::vector<NodeId> expired;
  for (std::size_t k = 0; k < alive_.size(); ++k) {
    if (now - lastHeardBySlot_[static_cast<std::size_t>(aliveSlots_[k])] > cfg_.timeout) {
      expired.push_back(alive_[k]);
    }
  }
  for (const NodeId n : expired) onLinkDown(n);
}

void DvProtocolBase::sendFullTables() { sendEntriesAll(knownDestinations()); }

void DvProtocolBase::sendEntries(NodeId neighbor, const std::vector<NodeId>& dsts) {
  if (dsts.empty()) return;
  auto update = std::make_shared<DvUpdate>();
  update->entries.reserve(std::min<std::size_t>(dsts.size(),
                                                static_cast<std::size_t>(cfg_.maxEntriesPerMessage)));
  auto flush = [&] {
    if (update->entries.empty()) return;
    ++updatesSent_;
    node_.sendControl(neighbor, update);
    update = std::make_shared<DvUpdate>();
  };
  for (const NodeId d : dsts) {
    int metric = metricFor(d);
    if (nextHopFor(d) == neighbor) {
      switch (cfg_.splitHorizon) {
        case SplitHorizonMode::None: break;
        case SplitHorizonMode::SplitHorizon: continue;  // simply omit
        case SplitHorizonMode::PoisonReverse: metric = cfg_.infinityMetric; break;
      }
    }
    metric = std::clamp(metric, 0, cfg_.infinityMetric);
    update->entries.push_back(DvEntry{d, static_cast<std::uint16_t>(metric)});
    if (static_cast<int>(update->entries.size()) >= cfg_.maxEntriesPerMessage) flush();
  }
  flush();
}

std::vector<std::shared_ptr<const DvUpdate>> DvProtocolBase::buildSharedChunks(
    const std::vector<NodeId>& dsts) const {
  std::vector<std::shared_ptr<const DvUpdate>> chunks;
  auto update = std::make_shared<DvUpdate>();
  update->entries.reserve(std::min<std::size_t>(dsts.size(),
                                                static_cast<std::size_t>(cfg_.maxEntriesPerMessage)));
  for (const NodeId d : dsts) {
    const int metric = std::clamp(metricFor(d), 0, cfg_.infinityMetric);
    update->entries.push_back(DvEntry{d, static_cast<std::uint16_t>(metric)});
    if (static_cast<int>(update->entries.size()) >= cfg_.maxEntriesPerMessage) {
      chunks.push_back(std::move(update));
      update = std::make_shared<DvUpdate>();
    }
  }
  if (!update->entries.empty()) chunks.push_back(std::move(update));
  return chunks;
}

void DvProtocolBase::sendEntriesAll(const std::vector<NodeId>& dsts) {
  if (dsts.empty() || alive_.empty()) return;
  // Only a neighbor that is the next hop of some advertised destination sees
  // content altered by split horizon / poison reverse; every other neighbor
  // receives byte-identical chunks, so build those once and share them.
  // Tracked as a degree-sized slot mask: membership flips cost one byte
  // write instead of a std::set insert per destination.
  std::fill(rewrittenSlots_.begin(), rewrittenSlots_.end(), 0);
  if (cfg_.splitHorizon != SplitHorizonMode::None) {
    for (const NodeId d : dsts) {
      const NodeId nh = nextHopFor(d);
      if (nh == kInvalidNode) continue;
      const int slot = node_.neighborSlot(nh);
      if (slot >= 0) rewrittenSlots_[static_cast<std::size_t>(slot)] = 1;
    }
  }
  std::vector<std::shared_ptr<const DvUpdate>> shared;
  bool built = false;
  for (std::size_t k = 0; k < alive_.size(); ++k) {
    const NodeId n = alive_[k];
    if (rewrittenSlots_[static_cast<std::size_t>(aliveSlots_[k])] != 0) {
      sendEntries(n, dsts);
      continue;
    }
    if (!built) {
      shared = buildSharedChunks(dsts);
      built = true;
    }
    for (const auto& chunk : shared) {
      ++updatesSent_;
      node_.sendControl(n, chunk);
    }
  }
}

void DvProtocolBase::markChanged(NodeId dst) {
  changed_.set(dst);
  if (dampRunning_ || flushScheduled_) return;  // batched by the damping timer / pending flush
  // Flush via a zero-delay event rather than synchronously: a single
  // incoming update (or link-down) changes many destinations, and they must
  // all ride in the *same* triggered update. Only after that first message
  // goes out does the damping timer start (RFC 2453 §3.10.1; the paper's
  // "failure information can propagate along the path in a few
  // milliseconds" depends on this batching).
  flushScheduled_ = true;
  scheduleGuarded(node_.scheduler(), Time::zero(), [this] {
    flushScheduled_ = false;
    if (dampRunning_ || changed_.empty()) return;
    maybeFlushNow();
  });
}

void DvProtocolBase::maybeFlushNow() {
  if (changed_.empty()) return;
  const Time now = node_.scheduler().now();
  if (cfg_.triggerMinGapSec > 0.0 && now < nextTriggerAllowed_) {
    // Rate limit: too soon after the previous triggered update. Park the
    // pending changes behind the damp machinery until the gap opens; any
    // changes arriving meanwhile join the same batch.
    dampRunning_ = true;
    dampTimer_ = node_.scheduler().scheduleAt(nextTriggerAllowed_, EventKind::Protocol, [this] {
      dampRunning_ = false;
      maybeFlushNow();
    });
    return;
  }
  flushTriggered();
  if (cfg_.triggerMinGapSec > 0.0) {
    nextTriggerAllowed_ = now + Time::seconds(cfg_.triggerMinGapSec);
  }
  armDampTimer();
}

void DvProtocolBase::flushTriggered() {
  if (changed_.empty()) return;
  // Drain ascending — the same order the std::set this bitset replaced
  // iterated in, so triggered-update contents stay bit-identical.
  changed_.drainSorted(changedScratch_);
  node_.network().trace().emit(node_.scheduler().now(), obs::TraceKind::DvTriggered, node_.id(),
                               kInvalidNode, static_cast<std::int64_t>(changedScratch_.size()));
  sendEntriesAll(changedScratch_);
}

void DvProtocolBase::armDampTimer() {
  dampRunning_ = true;
  const double delay = node_.rng().uniform(cfg_.triggerDampMinSec, cfg_.triggerDampMaxSec);
  dampTimer_ = node_.scheduler().scheduleAfter(Time::seconds(delay), EventKind::Protocol, [this] {
    dampRunning_ = false;
    // An update going out here re-arms the damp timer (via maybeFlushNow),
    // so consecutive triggered updates stay spaced out.
    maybeFlushNow();
  });
}

void DvProtocolBase::startHoldDown(NodeId dst) {
  if (cfg_.holdDownSec <= 0.0) return;
  if (holdUntil_.empty()) holdUntil_.assign(node_.network().nodeCount(), Time{});
  holdUntil_[static_cast<std::size_t>(dst)] =
      node_.scheduler().now() + Time::seconds(cfg_.holdDownSec);
  // Guarded: a crash destroying this protocol orphans the expiry safely.
  scheduleGuarded(node_.scheduler(), Time::seconds(cfg_.holdDownSec), [this, dst] {
    // A later loss may have pushed the deadline out; only the final expiry
    // re-evaluates.
    if (node_.scheduler().now() >= holdUntil_[static_cast<std::size_t>(dst)]) {
      holdDownExpired(dst);
    }
  });
}

bool DvProtocolBase::inHoldDown(NodeId dst) const {
  return !holdUntil_.empty() &&
         node_.scheduler().now() < holdUntil_[static_cast<std::size_t>(dst)];
}

bool DvProtocolBase::neighborAlive(NodeId neighbor) const {
  return std::find(alive_.begin(), alive_.end(), neighbor) != alive_.end();
}

void DvProtocolBase::onLinkDown(NodeId neighbor) {
  const auto it = std::find(alive_.begin(), alive_.end(), neighbor);
  if (it == alive_.end()) return;
  aliveSlots_.erase(aliveSlots_.begin() + (it - alive_.begin()));
  alive_.erase(it);
  neighborDown(neighbor);
}

void DvProtocolBase::onLinkUp(NodeId neighbor) {
  if (neighborAlive(neighbor)) return;
  const int slot = node_.neighborSlot(neighbor);
  assert(slot >= 0);
  alive_.push_back(neighbor);
  aliveSlots_.push_back(slot);
  lastHeardBySlot_[static_cast<std::size_t>(slot)] = node_.scheduler().now();
  neighborUp(neighbor);
  // Give the returning neighbor our full view immediately.
  sendEntries(neighbor, knownDestinations());
}

void DvProtocolBase::onMessage(NodeId from, std::shared_ptr<const ControlPayload> msg) {
  const auto* update = dynamic_cast<const DvUpdate*>(msg.get());
  if (update == nullptr) return;  // not ours (defensive)
  if (!neighborAlive(from)) {
    // Late packet from a neighbor we consider dead: a live message proves
    // the link works again only if the detector agrees; ignore otherwise.
    if (!node_.neighborReachable(from)) return;
    onLinkUp(from);
  }
  lastHeardBySlot_[static_cast<std::size_t>(node_.neighborSlot(from))] = node_.scheduler().now();
  processUpdate(from, *update);
}

}  // namespace rcsim
