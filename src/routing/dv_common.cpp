#include "routing/dv_common.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <set>

#include "net/network.hpp"
#include "net/node.hpp"

namespace rcsim {

// The wire format must be able to carry any configurable infinity.
static_assert(std::numeric_limits<decltype(DvEntry::metric)>::max() >= 255,
              "DvEntry::metric too narrow for RIP-style metrics");

DvProtocolBase::DvProtocolBase(Node& node, DvConfig cfg) : RoutingProtocol{node}, cfg_{cfg} {
  assert(cfg_.infinityMetric > 0 &&
         cfg_.infinityMetric <= int{std::numeric_limits<decltype(DvEntry::metric)>::max()} &&
         "infinityMetric must fit the DvEntry wire metric");
  // Release builds: clamp rather than silently truncate on the wire.
  cfg_.infinityMetric = std::min<int>(
      cfg_.infinityMetric, int{std::numeric_limits<decltype(DvEntry::metric)>::max()});
}

DvProtocolBase::~DvProtocolBase() {
  node_.scheduler().cancel(dampTimer_);
  node_.scheduler().cancel(periodicTimer_);
}

void DvProtocolBase::start() {
  auto& sched = node_.scheduler();
  for (const NodeId n : node_.neighbors()) {
    alive_.push_back(n);
    lastHeard_[n] = sched.now();
    neighborUp(n);
  }
  // Seed propagation right away (stands in for the RIP boot-time request/
  // response exchange), then announce the full table periodically with a
  // random phase so nodes do not synchronize.
  scheduleGuarded(sched, Time::seconds(node_.rng().uniform(0.0, 0.1)),
                  [this] { sendFullTables(); });
  const double phase = node_.rng().uniform(0.0, cfg_.periodicInterval.toSeconds());
  periodicTimer_ = sched.scheduleAfter(Time::seconds(phase), [this] { periodicTick(); });
}

void DvProtocolBase::periodicTick() {
  checkNeighborAging();
  // knownDestinations() allocates, so only count them when a sink listens.
  auto& tr = node_.network().trace();
  if (tr.wants(obs::TraceKind::DvPeriodic)) {
    tr.emit(node_.scheduler().now(), obs::TraceKind::DvPeriodic, node_.id(), kInvalidNode,
            static_cast<std::int64_t>(knownDestinations().size()));
  }
  sendFullTables();
  const double jitter = cfg_.periodicJitter.toSeconds();
  const double next = cfg_.periodicInterval.toSeconds() + node_.rng().uniform(-jitter, jitter);
  periodicTimer_ = node_.scheduler().scheduleAfter(Time::seconds(next), [this] { periodicTick(); });
}

void DvProtocolBase::checkNeighborAging() {
  const Time now = node_.scheduler().now();
  std::vector<NodeId> expired;
  for (const NodeId n : alive_) {
    const auto it = lastHeard_.find(n);
    if (it != lastHeard_.end() && now - it->second > cfg_.timeout) expired.push_back(n);
  }
  for (const NodeId n : expired) onLinkDown(n);
}

void DvProtocolBase::sendFullTables() { sendEntriesAll(knownDestinations()); }

void DvProtocolBase::sendEntries(NodeId neighbor, const std::vector<NodeId>& dsts) {
  if (dsts.empty()) return;
  auto update = std::make_shared<DvUpdate>();
  update->entries.reserve(std::min<std::size_t>(dsts.size(),
                                                static_cast<std::size_t>(cfg_.maxEntriesPerMessage)));
  auto flush = [&] {
    if (update->entries.empty()) return;
    ++updatesSent_;
    node_.sendControl(neighbor, update);
    update = std::make_shared<DvUpdate>();
  };
  for (const NodeId d : dsts) {
    int metric = metricFor(d);
    if (nextHopFor(d) == neighbor) {
      switch (cfg_.splitHorizon) {
        case SplitHorizonMode::None: break;
        case SplitHorizonMode::SplitHorizon: continue;  // simply omit
        case SplitHorizonMode::PoisonReverse: metric = cfg_.infinityMetric; break;
      }
    }
    metric = std::clamp(metric, 0, cfg_.infinityMetric);
    update->entries.push_back(DvEntry{d, static_cast<std::uint16_t>(metric)});
    if (static_cast<int>(update->entries.size()) >= cfg_.maxEntriesPerMessage) flush();
  }
  flush();
}

std::vector<std::shared_ptr<const DvUpdate>> DvProtocolBase::buildSharedChunks(
    const std::vector<NodeId>& dsts) const {
  std::vector<std::shared_ptr<const DvUpdate>> chunks;
  auto update = std::make_shared<DvUpdate>();
  update->entries.reserve(std::min<std::size_t>(dsts.size(),
                                                static_cast<std::size_t>(cfg_.maxEntriesPerMessage)));
  for (const NodeId d : dsts) {
    const int metric = std::clamp(metricFor(d), 0, cfg_.infinityMetric);
    update->entries.push_back(DvEntry{d, static_cast<std::uint16_t>(metric)});
    if (static_cast<int>(update->entries.size()) >= cfg_.maxEntriesPerMessage) {
      chunks.push_back(std::move(update));
      update = std::make_shared<DvUpdate>();
    }
  }
  if (!update->entries.empty()) chunks.push_back(std::move(update));
  return chunks;
}

void DvProtocolBase::sendEntriesAll(const std::vector<NodeId>& dsts) {
  if (dsts.empty() || alive_.empty()) return;
  // Only a neighbor that is the next hop of some advertised destination sees
  // content altered by split horizon / poison reverse; every other neighbor
  // receives byte-identical chunks, so build those once and share them.
  std::set<NodeId> rewritten;
  if (cfg_.splitHorizon != SplitHorizonMode::None) {
    for (const NodeId d : dsts) rewritten.insert(nextHopFor(d));
  }
  std::vector<std::shared_ptr<const DvUpdate>> shared;
  bool built = false;
  for (const NodeId n : alive_) {
    if (rewritten.count(n) != 0) {
      sendEntries(n, dsts);
      continue;
    }
    if (!built) {
      shared = buildSharedChunks(dsts);
      built = true;
    }
    for (const auto& chunk : shared) {
      ++updatesSent_;
      node_.sendControl(n, chunk);
    }
  }
}

void DvProtocolBase::markChanged(NodeId dst) {
  changed_.insert(dst);
  if (dampRunning_ || flushScheduled_) return;  // batched by the damping timer / pending flush
  // Flush via a zero-delay event rather than synchronously: a single
  // incoming update (or link-down) changes many destinations, and they must
  // all ride in the *same* triggered update. Only after that first message
  // goes out does the damping timer start (RFC 2453 §3.10.1; the paper's
  // "failure information can propagate along the path in a few
  // milliseconds" depends on this batching).
  flushScheduled_ = true;
  scheduleGuarded(node_.scheduler(), Time::zero(), [this] {
    flushScheduled_ = false;
    if (dampRunning_ || changed_.empty()) return;
    flushTriggered();
    armDampTimer();
  });
}

void DvProtocolBase::flushTriggered() {
  if (changed_.empty()) return;
  const std::vector<NodeId> dsts(changed_.begin(), changed_.end());
  changed_.clear();
  node_.network().trace().emit(node_.scheduler().now(), obs::TraceKind::DvTriggered, node_.id(),
                               kInvalidNode, static_cast<std::int64_t>(dsts.size()));
  sendEntriesAll(dsts);
}

void DvProtocolBase::armDampTimer() {
  dampRunning_ = true;
  const double delay = node_.rng().uniform(cfg_.triggerDampMinSec, cfg_.triggerDampMaxSec);
  dampTimer_ = node_.scheduler().scheduleAfter(Time::seconds(delay), [this] {
    dampRunning_ = false;
    if (!changed_.empty()) {
      flushTriggered();
      armDampTimer();  // an update went out, so space out the next one too
    }
  });
}

bool DvProtocolBase::neighborAlive(NodeId neighbor) const {
  return std::find(alive_.begin(), alive_.end(), neighbor) != alive_.end();
}

void DvProtocolBase::onLinkDown(NodeId neighbor) {
  const auto it = std::find(alive_.begin(), alive_.end(), neighbor);
  if (it == alive_.end()) return;
  alive_.erase(it);
  neighborDown(neighbor);
}

void DvProtocolBase::onLinkUp(NodeId neighbor) {
  if (neighborAlive(neighbor)) return;
  alive_.push_back(neighbor);
  lastHeard_[neighbor] = node_.scheduler().now();
  neighborUp(neighbor);
  // Give the returning neighbor our full view immediately.
  sendEntries(neighbor, knownDestinations());
}

void DvProtocolBase::onMessage(NodeId from, std::shared_ptr<const ControlPayload> msg) {
  const auto* update = dynamic_cast<const DvUpdate*>(msg.get());
  if (update == nullptr) return;  // not ours (defensive)
  if (!neighborAlive(from)) {
    // Late packet from a neighbor we consider dead: a live message proves
    // the link works again only if the detector agrees; ignore otherwise.
    if (!node_.neighborReachable(from)) return;
    onLinkUp(from);
  }
  lastHeard_[from] = node_.scheduler().now();
  processUpdate(from, *update);
}

}  // namespace rcsim
