#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "net/types.hpp"

namespace rcsim {

/// One (destination, distance) pair of a distance-vector advertisement.
/// The metric is wide enough for any configurable infinity (DvConfig checks
/// the bound at construction); RIP's default infinity of 16 is just the
/// paper's parameterization, not a storage limit.
struct DvEntry {
  NodeId dst = kInvalidNode;
  std::uint16_t metric = 0;  ///< infinityMetric == unreachable (RIP semantics).
};

/// RIP/DBF update message. RFC 2453 limits a message to 25 route entries;
/// the paper leans on this (one message can carry every affected
/// destination in the 49-node mesh, §5.2).
struct DvUpdate final : ControlPayload {
  std::vector<DvEntry> entries;

  [[nodiscard]] std::uint32_t sizeBytes() const override {
    // RIP header (4B) + 20B per RTE, on UDP.
    return 4 + 20 * static_cast<std::uint32_t>(entries.size());
  }
  [[nodiscard]] std::string describe() const override {
    std::ostringstream os;
    os << "dv-update(" << entries.size() << ")";
    for (const auto& e : entries) os << " " << e.dst << ":" << int{e.metric};
    return os.str();
  }
};

/// One path-vector route: the advertiser's full node path to `dst`,
/// beginning with the advertiser itself and ending with `dst`.
struct BgpRoute {
  NodeId dst = kInvalidNode;
  std::vector<NodeId> path;
};

/// BGP update: advertisements and/or withdrawals. In this model every node
/// is its own AS and originates one "prefix", so each advertised route has a
/// distinct path — matching the paper's note that a path-vector update can
/// only share one path among its destinations.
struct BgpUpdate final : ControlPayload {
  std::vector<BgpRoute> advertised;
  std::vector<NodeId> withdrawn;

  [[nodiscard]] std::uint32_t sizeBytes() const override {
    std::uint32_t sz = 23;  // BGP header (19) + attribute scaffolding
    for (const auto& r : advertised) {
      sz += 8 + 4 * static_cast<std::uint32_t>(r.path.size());
    }
    sz += 4 * static_cast<std::uint32_t>(withdrawn.size());
    return sz;
  }
  [[nodiscard]] std::string describe() const override {
    std::ostringstream os;
    os << "bgp-update adv=" << advertised.size() << " wd=" << withdrawn.size();
    for (const auto& r : advertised) {
      os << " " << r.dst << ":[";
      for (std::size_t i = 0; i < r.path.size(); ++i) os << (i ? " " : "") << r.path[i];
      os << "]";
    }
    for (const NodeId d : withdrawn) os << " -" << d;
    return os.str();
  }
};

/// Link-state advertisement for the SPF protocol (the paper's future-work
/// comparison point, implemented here as an extension).
struct Lsa final : ControlPayload {
  NodeId origin = kInvalidNode;
  std::uint32_t seq = 0;
  std::vector<NodeId> neighbors;  ///< Neighbors the origin currently sees up.

  [[nodiscard]] std::uint32_t sizeBytes() const override {
    return 24 + 12 * static_cast<std::uint32_t>(neighbors.size());
  }
  [[nodiscard]] std::string describe() const override {
    std::ostringstream os;
    os << "lsa origin=" << origin << " seq=" << seq << " nbrs=" << neighbors.size();
    return os.str();
  }
};

}  // namespace rcsim
