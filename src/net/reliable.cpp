#include "net/reliable.hpp"

#include <algorithm>
#include <utility>

#include "net/network.hpp"
#include "net/node.hpp"

namespace rcsim {

ReliableSession::ReliableSession(Node& node, NodeId peer, DeliverFn deliver, Config cfg)
    : node_{node}, peer_{peer}, deliver_{std::move(deliver)}, cfg_{cfg}, currentRto_{cfg.rto} {}

ReliableSession::~ReliableSession() { node_.scheduler().cancel(rtoTimer_); }

void ReliableSession::send(std::shared_ptr<const ControlPayload> msg) {
  backlog_.push_back(std::move(msg));
  trySendWindow();
}

void ReliableSession::trySendWindow() {
  while (!backlog_.empty() && nextSeq_ - sendBase_ < cfg_.window) {
    auto msg = std::move(backlog_.front());
    backlog_.pop_front();
    const std::uint32_t seq = nextSeq_++;
    inFlight_.emplace(seq, msg);
    transmit(seq, msg);
  }
  armRtoTimer();
}

void ReliableSession::transmit(std::uint32_t seq, const std::shared_ptr<const ControlPayload>& msg) {
  auto seg = std::make_shared<TransportSegment>();
  seg->seq = seq;
  seg->ackNo = recvNext_;  // piggyback the cumulative ack
  seg->isAck = false;
  seg->inner = msg;
  node_.sendControl(peer_, std::move(seg));
}

void ReliableSession::sendAck() {
  auto seg = std::make_shared<TransportSegment>();
  seg->isAck = true;
  seg->ackNo = recvNext_;
  node_.sendControl(peer_, std::move(seg));
}

void ReliableSession::onSegment(const std::shared_ptr<const TransportSegment>& seg) {
  // Sender side: process the (possibly piggybacked) cumulative ack.
  if (seg->ackNo > sendBase_) {
    while (!inFlight_.empty() && inFlight_.begin()->first < seg->ackNo) {
      inFlight_.erase(inFlight_.begin());
    }
    sendBase_ = seg->ackNo;
    // Ack progress: the path works again, rewind the backoff.
    currentRto_ = cfg_.rto;
    consecutiveRtos_ = 0;
    node_.scheduler().cancel(rtoTimer_);
    rtoTimer_ = EventId{};
    trySendWindow();
  }
  if (seg->isAck) return;

  // Receiver side: buffer, deliver in order, ack cumulatively.
  if (seg->seq >= recvNext_) outOfOrder_.emplace(seg->seq, seg->inner);
  while (!outOfOrder_.empty() && outOfOrder_.begin()->first == recvNext_) {
    auto msg = std::move(outOfOrder_.begin()->second);
    outOfOrder_.erase(outOfOrder_.begin());
    ++recvNext_;
    if (deliver_) deliver_(std::move(msg));
  }
  sendAck();
}

void ReliableSession::armRtoTimer() {
  if (inFlight_.empty() || rtoTimer_.valid()) return;
  rtoTimer_ = node_.scheduler().scheduleAfter(currentRto_, EventKind::Transport,
                                              [this] { onRtoTimer(); });
}

void ReliableSession::onRtoTimer() {
  rtoTimer_ = EventId{};
  if (inFlight_.empty()) return;
  ++consecutiveRtos_;
  if (consecutiveRtos_ > cfg_.maxRetries) {
    // Give up: the peer is unreachable past the detector's patience. Drop
    // the connection, tell the peer (best effort — the RST rides the same
    // broken path), and let the owner resynchronize.
    node_.network().trace().emit(node_.scheduler().now(), obs::TraceKind::TransportReset,
                                 node_.id(), peer_, cfg_.maxRetries);
    ++sessionResets_;
    reset();
    node_.sendControl(peer_, std::make_shared<TransportReset>());
    if (onReset_) onReset_();
    return;
  }
  node_.network().trace().emit(node_.scheduler().now(), obs::TraceKind::TransportRto, node_.id(),
                               peer_, static_cast<std::int64_t>(inFlight_.size()),
                               currentRto_.ns());
  // Go-back-N: retransmit everything outstanding, then back off.
  for (const auto& [seq, msg] : inFlight_) {
    ++retransmissions_;
    transmit(seq, msg);
  }
  currentRto_ = Time::seconds(
      std::min(currentRto_.toSeconds() * cfg_.backoffFactor, cfg_.rtoMax.toSeconds()));
  armRtoTimer();
}

void ReliableSession::reset() {
  node_.scheduler().cancel(rtoTimer_);
  rtoTimer_ = EventId{};
  nextSeq_ = sendBase_ = recvNext_ = 0;
  currentRto_ = cfg_.rto;
  consecutiveRtos_ = 0;
  backlog_.clear();
  inFlight_.clear();
  outOfOrder_.clear();
}

}  // namespace rcsim
