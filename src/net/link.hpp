#pragma once

#include <cstddef>
#include <deque>

#include "net/packet.hpp"
#include "net/types.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace rcsim {

class Network;

/// Physical characteristics of a link (paper §5: unit cost, 1 ms propagation
/// delay, 10 Mbps, 20-packet queue, 50 ms failure detection).
struct LinkConfig {
  double bandwidthBps = 10e6;
  Time propDelay = Time::milliseconds(1);
  std::size_t queueCapacity = 20;
  Time detectDelay = Time::milliseconds(50);
  int cost = 1;
};

/// Full-duplex point-to-point link with per-direction drop-tail FIFO queue
/// and serialization delay. Failure drops queued and in-flight packets and
/// notifies both endpoint routing protocols after `detectDelay`.
class Link {
 public:
  Link(Network& net, NodeId a, NodeId b, LinkConfig cfg);

  [[nodiscard]] NodeId endpointA() const { return a_; }
  [[nodiscard]] NodeId endpointB() const { return b_; }
  [[nodiscard]] NodeId peerOf(NodeId n) const { return n == a_ ? b_ : a_; }
  [[nodiscard]] bool isUp() const { return up_; }
  [[nodiscard]] const LinkConfig& config() const { return cfg_; }
  [[nodiscard]] bool connects(NodeId x, NodeId y) const {
    return (a_ == x && b_ == y) || (a_ == y && b_ == x);
  }

  /// Enqueue a packet from endpoint `from` toward the other endpoint.
  /// Drops (with accounting) if the link is down or the queue is full.
  void send(NodeId from, Packet&& p);

  /// Take the link down at the current simulation time.
  void fail();

  /// Bring the link back up at the current simulation time.
  void recover();

  /// Fault-injection impairments. A rate of zero disables the impairment
  /// and draws no randomness, so unimpaired runs stay bit-identical.
  void setLossRate(double rate) { lossRate_ = rate; }
  void setCorruptRate(double rate) { corruptRate_ = rate; }
  void setReorder(double rate, Time jitter) {
    reorderRate_ = rate;
    reorderJitter_ = jitter;
  }
  [[nodiscard]] double lossRate() const { return lossRate_; }
  [[nodiscard]] double corruptRate() const { return corruptRate_; }

  /// Control-plane-only impairments (fault kinds ctrl-loss / ctrl-delay /
  /// ctrl-dup): applied solely to PacketKind::Control, so hellos and
  /// routing updates can be attacked while data traffic flows untouched.
  void setCtrlLossRate(double rate) { ctrlLossRate_ = rate; }
  void setCtrlDelay(Time d) { ctrlDelay_ = d; }
  void setCtrlDupRate(double rate) { ctrlDupRate_ = rate; }
  [[nodiscard]] double ctrlLossRate() const { return ctrlLossRate_; }
  [[nodiscard]] Time ctrlDelay() const { return ctrlDelay_; }
  [[nodiscard]] double ctrlDupRate() const { return ctrlDupRate_; }

  /// Override the failure-detection delay, e.g. to model silent failures
  /// that routing only notices long after the data plane went dark. If a
  /// failure detection is already pending (the link is down but the nodes
  /// have not been notified yet), it is rescheduled against the new delay.
  void setDetectDelay(Time d);

 private:
  struct Direction {
    std::deque<Packet> queue;
    bool transmitting = false;
  };

  void startTransmission(int dir);
  [[nodiscard]] Time transmissionTime(const Packet& p) const;
  [[nodiscard]] int directionFrom(NodeId from) const { return from == a_ ? 0 : 1; }
  [[nodiscard]] NodeId receiverOf(int dir) const { return dir == 0 ? b_ : a_; }

  Network& net_;
  NodeId a_;
  NodeId b_;
  LinkConfig cfg_;
  Direction dirs_[2];
  bool up_ = true;
  double lossRate_ = 0.0;     ///< P(packet lost at arrival), DropReason::RandomLoss.
  double corruptRate_ = 0.0;  ///< P(packet corrupted at arrival), DropReason::Corrupted.
  double reorderRate_ = 0.0;  ///< P(extra propagation delay added).
  Time reorderJitter_ = Time::zero();  ///< Upper bound of that extra delay.
  double ctrlLossRate_ = 0.0;      ///< P(control packet lost at arrival).
  Time ctrlDelay_ = Time::zero();  ///< Fixed extra propagation for control packets.
  double ctrlDupRate_ = 0.0;       ///< P(control packet delivered twice).
  Time failedAt_{};                ///< When the current down period began.
  EventId pendingDetect_{};        ///< Down-detection event, rescheduled by
                                   ///< setDetectDelay while still pending.
  /// Bumped on every failure; in-flight delivery events check it so that
  /// packets "on the wire" at failure time are lost.
  std::uint64_t epoch_ = 0;
};

}  // namespace rcsim
