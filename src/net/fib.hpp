#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/types.hpp"

namespace rcsim {

/// Deterministic per-flow key for spreading traffic across equal-cost next
/// hops: a splitmix64 finalizer over (src, dst). Every packet of a flow maps
/// to the same key, so a flow sticks to one path for as long as the entry
/// set is stable (no intra-flow reordering from ECMP itself).
[[nodiscard]] constexpr std::uint64_t fibFlowKey(NodeId src, NodeId dst) {
  std::uint64_t x = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
                    static_cast<std::uint32_t>(dst);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Forwarding Information Base: destination node -> a small set of next-hop
/// neighbors. Stored as flat vectors indexed by destination for O(1) lookups
/// in the data-forwarding hot path.
///
/// Entry 0 is the *primary* next hop — the protocol's deterministic single
/// best choice, identical to what the FIB held before multi-next-hop
/// entries existed. Alternates (up to kMaxNextHops-1 of them) only exist
/// when ECMP is enabled at resize() time; with it off the alternate arrays
/// are never allocated and the FIB costs exactly one NodeId per destination.
///
/// Canonical walks (Network::fibWalk, PathTracer, the obs/replay shadow
/// FIB) follow primaries only; the data plane spreads flows over the full
/// entry set via fibFlowKey (see docs/routing-state.md).
class Fib {
 public:
  /// Small-N cap on next hops per destination (1 primary + 3 alternates).
  static constexpr int kMaxNextHops = 4;

  void resize(std::size_t nodeCount, bool ecmp = false) {
    nextHop_.assign(nodeCount, kInvalidNode);
    ecmp_ = ecmp;
    if (ecmp) {
      alt_.assign(nodeCount * (kMaxNextHops - 1), kInvalidNode);
      altCount_.assign(nodeCount, 0);
    } else {
      alt_.clear();
      alt_.shrink_to_fit();
      altCount_.clear();
      altCount_.shrink_to_fit();
    }
  }

  [[nodiscard]] bool ecmpEnabled() const { return ecmp_; }

  /// The primary next hop (kInvalidNode when absent / out of range).
  [[nodiscard]] NodeId nextHop(NodeId dst) const {
    const auto i = static_cast<std::size_t>(dst);
    return i < nextHop_.size() ? nextHop_[i] : kInvalidNode;
  }

  /// Copy the full entry set (primary first) into `out`; returns the count
  /// (0 when no route). `out` must hold kMaxNextHops entries.
  [[nodiscard]] int nextHops(NodeId dst, NodeId* out) const {
    const auto i = static_cast<std::size_t>(dst);
    if (i >= nextHop_.size() || nextHop_[i] == kInvalidNode) return 0;
    out[0] = nextHop_[i];
    int n = 1;
    if (ecmp_) {
      const int alts = altCount_[i];
      for (int k = 0; k < alts; ++k) out[n++] = alt_[i * (kMaxNextHops - 1) + static_cast<std::size_t>(k)];
    }
    return n;
  }

  /// Replace the entry for dst with the single next hop `nh` (kInvalidNode
  /// removes it), dropping any alternates. Returns the previous primary.
  /// Throws on out-of-range dst — the protocols only install routes for
  /// finalized node ids, so anything else is a bug, not a request.
  NodeId set(NodeId dst, NodeId nh) {
    const auto i = checkedIndex(dst);
    const NodeId old = nextHop_[i];
    nextHop_[i] = nh;
    if (ecmp_) altCount_[i] = 0;
    return old;
  }

  /// Replace the entry set for dst (`nhs[0]` becomes the primary; count 0
  /// removes the route). Alternates beyond kMaxNextHops are dropped; with
  /// ECMP disabled only the primary is kept. Returns the previous primary.
  NodeId setMulti(NodeId dst, const NodeId* nhs, int count) {
    const auto i = checkedIndex(dst);
    const NodeId old = nextHop_[i];
    nextHop_[i] = count > 0 ? nhs[0] : kInvalidNode;
    if (ecmp_) {
      const int alts = std::min(count - 1, kMaxNextHops - 1);
      altCount_[i] = static_cast<std::uint8_t>(alts < 0 ? 0 : alts);
      for (int k = 0; k < altCount_[i]; ++k) {
        alt_[i * (kMaxNextHops - 1) + static_cast<std::size_t>(k)] = nhs[k + 1];
      }
    }
    return old;
  }

  /// Data-plane choice: spread `flowKey` over the entry set. Falls back to
  /// the primary when there are no alternates; kInvalidNode when no route.
  [[nodiscard]] NodeId pick(NodeId dst, std::uint64_t flowKey) const {
    const auto i = static_cast<std::size_t>(dst);
    if (i >= nextHop_.size()) return kInvalidNode;
    const NodeId primary = nextHop_[i];
    if (!ecmp_ || primary == kInvalidNode) return primary;
    const int n = 1 + altCount_[i];
    if (n == 1) return primary;
    const auto idx = static_cast<int>(flowKey % static_cast<std::uint64_t>(n));
    if (idx == 0) return primary;
    return alt_[i * (kMaxNextHops - 1) + static_cast<std::size_t>(idx - 1)];
  }

  [[nodiscard]] std::size_t size() const { return nextHop_.size(); }

 private:
  [[nodiscard]] std::size_t checkedIndex(NodeId dst) const {
    const auto i = static_cast<std::size_t>(dst);
    if (i >= nextHop_.size()) {
      throw std::out_of_range("Fib::set: dst " + std::to_string(dst) + " outside [0, " +
                              std::to_string(nextHop_.size()) + ")");
    }
    return i;
  }

  std::vector<NodeId> nextHop_;        ///< primary per destination
  std::vector<NodeId> alt_;            ///< (kMaxNextHops-1) slots per destination, ECMP only
  std::vector<std::uint8_t> altCount_; ///< live alternates per destination, ECMP only
  bool ecmp_ = false;
};

}  // namespace rcsim
