#pragma once

#include <vector>

#include "net/types.hpp"

namespace rcsim {

/// Forwarding Information Base: destination node -> next-hop neighbor.
/// Stored as a flat vector indexed by destination for O(1) lookups in the
/// data-forwarding hot path.
class Fib {
 public:
  void resize(std::size_t nodeCount) { nextHop_.assign(nodeCount, kInvalidNode); }

  [[nodiscard]] NodeId nextHop(NodeId dst) const {
    const auto i = static_cast<std::size_t>(dst);
    return i < nextHop_.size() ? nextHop_[i] : kInvalidNode;
  }

  /// Returns the previous next hop.
  NodeId set(NodeId dst, NodeId nh) {
    auto& slot = nextHop_[static_cast<std::size_t>(dst)];
    const NodeId old = slot;
    slot = nh;
    return old;
  }

  [[nodiscard]] std::size_t size() const { return nextHop_.size(); }

 private:
  std::vector<NodeId> nextHop_;
};

}  // namespace rcsim
