#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/message.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace rcsim {

/// A simulated IP packet. Data packets carry no payload object; control
/// packets carry a routing/transport payload and are link-local (one hop).
struct Packet {
  std::uint64_t id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  int ttl = 0;
  std::uint32_t sizeBytes = 0;
  PacketKind kind = PacketKind::Data;
  Time sendTime;  ///< Origination time (for end-to-end delay).
  std::shared_ptr<const ControlPayload> payload;
  /// End-to-end flow header (used by the TCP-like traffic extension):
  /// which flow the packet belongs to, its sequence number, and whether it
  /// is a (cumulative) acknowledgement travelling back to the sender.
  std::int32_t flowId = -1;
  std::uint64_t flowSeq = 0;
  bool flowAck = false;
  /// When packet tracing is enabled, every node that receives the packet
  /// appends its id; lets the forensics tools detect loops per packet.
  std::shared_ptr<std::vector<NodeId>> trace;
};

}  // namespace rcsim
