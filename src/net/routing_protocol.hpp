#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "net/message.hpp"
#include "net/types.hpp"
#include "sim/scheduler.hpp"

namespace rcsim {

class Node;

/// Interface every routing protocol implements. The Node owns its protocol
/// instance and feeds it link events and incoming control payloads; the
/// protocol installs routes through Node::setRoute.
class RoutingProtocol {
 public:
  explicit RoutingProtocol(Node& node) : node_{node} {}
  virtual ~RoutingProtocol() = default;

  RoutingProtocol(const RoutingProtocol&) = delete;
  RoutingProtocol& operator=(const RoutingProtocol&) = delete;

  /// Called once at simulation start, after the whole network is wired.
  virtual void start() = 0;

  /// Link to `neighbor` reported down by the failure detector.
  virtual void onLinkDown(NodeId neighbor) = 0;

  /// Link to `neighbor` reported back up.
  virtual void onLinkUp(NodeId neighbor) = 0;

  /// A control payload arrived from a directly connected neighbor.
  virtual void onMessage(NodeId from, std::shared_ptr<const ControlPayload> msg) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Reliable-transport health, for protocols that run sessions (BGP).
  /// Others return zeros.
  struct TransportCounters {
    std::uint64_t retransmissions = 0;
    std::uint64_t sessionResets = 0;
  };
  [[nodiscard]] virtual TransportCounters transportCounters() const { return {}; }

 protected:
  /// Schedule `f` so it silently expires if this protocol is destroyed
  /// first (fault injection can crash a node mid-run). Scheduling order is
  /// identical to a plain scheduleAfter, so default runs are unchanged.
  /// The Scheduler is passed in because Node is incomplete here.
  template <typename F>
  EventId scheduleGuarded(Scheduler& sched, Time delay, F&& f) {
    return sched.scheduleAfter(
        delay, EventKind::Protocol,
        [guard = std::weak_ptr<void>(aliveToken_), fn = std::forward<F>(f)]() mutable {
          if (guard.expired()) return;
          fn();
        });
  }

  Node& node_;

 private:
  /// Liveness token for scheduleGuarded; destroyed with the protocol.
  std::shared_ptr<void> aliveToken_ = std::make_shared<int>(0);
};

}  // namespace rcsim
