#pragma once

#include <memory>
#include <string>

#include "net/message.hpp"
#include "net/types.hpp"

namespace rcsim {

class Node;

/// Interface every routing protocol implements. The Node owns its protocol
/// instance and feeds it link events and incoming control payloads; the
/// protocol installs routes through Node::setRoute.
class RoutingProtocol {
 public:
  explicit RoutingProtocol(Node& node) : node_{node} {}
  virtual ~RoutingProtocol() = default;

  RoutingProtocol(const RoutingProtocol&) = delete;
  RoutingProtocol& operator=(const RoutingProtocol&) = delete;

  /// Called once at simulation start, after the whole network is wired.
  virtual void start() = 0;

  /// Link to `neighbor` reported down by the failure detector.
  virtual void onLinkDown(NodeId neighbor) = 0;

  /// Link to `neighbor` reported back up.
  virtual void onLinkUp(NodeId neighbor) = 0;

  /// A control payload arrived from a directly connected neighbor.
  virtual void onMessage(NodeId from, std::shared_ptr<const ControlPayload> msg) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

 protected:
  Node& node_;
};

}  // namespace rcsim
