#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/dense.hpp"
#include "net/fib.hpp"
#include "net/packet.hpp"
#include "net/routing_protocol.hpp"
#include "net/types.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace rcsim {

class Network;
class Link;
class Scheduler;

/// A router (or degree-1 host stub). Forwards data packets hop-by-hop
/// according to its FIB, decrementing TTL, and hands control packets to its
/// routing protocol — exactly the hop-by-hop model of the paper's §4.
class Node {
 public:
  Node(Network& net, NodeId id, Rng rng);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] Network& network() { return net_; }
  [[nodiscard]] Scheduler& scheduler();
  [[nodiscard]] Rng& rng() { return rng_; }

  void setProtocol(std::unique_ptr<RoutingProtocol> proto) { proto_ = std::move(proto); }
  [[nodiscard]] RoutingProtocol* protocol() { return proto_.get(); }

  /// Called by Network when a link is attached.
  void attachLink(Link& link);

  [[nodiscard]] const std::vector<NodeId>& neighbors() const { return neighborIds_; }
  [[nodiscard]] Link* linkTo(NodeId neighbor) const;
  /// True when the link to `neighbor` exists and is currently up.
  [[nodiscard]] bool neighborReachable(NodeId neighbor) const;

  /// Slot of `neighbor` in neighbors() order (-1 when not attached). Lets
  /// protocols keep per-neighbor tables in flat degree-sized arrays.
  [[nodiscard]] int neighborSlot(NodeId neighbor) const { return nbrIndex_.slotOf(neighbor); }
  /// The sorted (id -> slot) index over this node's neighbors.
  [[nodiscard]] const NeighborIndex& neighborIndex() const { return nbrIndex_; }

  /// Install/replace the route toward `dst`; kInvalidNode removes it.
  /// Fires the network's route-change hook when the next hop changes.
  void setRoute(NodeId dst, NodeId nextHop);

  /// Install a multi-next-hop entry set toward `dst` (nextHops[0] is the
  /// primary; count 0 removes the route). The route-change hook fires only
  /// when the *primary* changes — alternates are a data-plane refinement
  /// invisible to the RouteChange event stream (docs/routing-state.md).
  void setRoutes(NodeId dst, const NodeId* nextHops, int count);

  /// Remove every installed route (fault injection: a crashed node loses
  /// its FIB). Fires the route-change hook per removed entry.
  void clearRoutes();
  [[nodiscard]] const Fib& fib() const { return fib_; }
  void resizeFib(std::size_t nodeCount, bool ecmp = false) { fib_.resize(nodeCount, ecmp); }

  /// Application-layer origination (TTL already set, not decremented here).
  void originate(Packet&& p);

  /// Register an application sink: every data packet delivered to this
  /// node is offered to each handler (after the network-wide onDeliver
  /// hook). Used by the end-to-end transport in traffic/.
  void addDeliveryHandler(std::function<void(const Packet&)> handler) {
    deliveryHandlers_.push_back(std::move(handler));
  }

  /// A packet arrived over the link from `from`.
  void receive(Packet&& p, NodeId from);

  /// Send a routing/transport payload to a directly connected neighbor.
  /// `extraBytes` accounts for IP/UDP framing around the payload.
  void sendControl(NodeId neighbor, std::shared_ptr<const ControlPayload> payload,
                   std::uint32_t extraBytes = 28);

  /// Failure-detector callbacks (invoked by Link after the detection delay).
  void handleLinkDown(NodeId neighbor);
  void handleLinkUp(NodeId neighbor);

 private:
  void route(Packet&& p);
  void deliverLocally(const Packet& p);

  Network& net_;
  NodeId id_;
  Rng rng_;
  Fib fib_;
  std::unique_ptr<RoutingProtocol> proto_;
  std::vector<NodeId> neighborIds_;  ///< attachment order; index = slot
  std::vector<Link*> linkBySlot_;    ///< parallel to neighborIds_
  NeighborIndex nbrIndex_;
  std::vector<std::function<void(const Packet&)>> deliveryHandlers_;
};

}  // namespace rcsim
