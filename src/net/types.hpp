#pragma once

#include <cstdint>

namespace rcsim {

/// Dense node identifier; nodes are numbered 0..N-1 by the Network.
using NodeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;

/// Why a packet left the network without being delivered.
///
/// The paper's Figure 3 counts `NoRoute` ("drops due to no reachability",
/// i.e. the router is inside its path switch-over period) and Figure 4
/// counts `TtlExpired` (always loop-caused in these topologies, §5.2).
enum class DropReason {
  NoRoute,        ///< FIB has no next hop for the destination.
  TtlExpired,     ///< TTL decremented to zero (transient forwarding loop).
  QueueOverflow,  ///< Drop-tail queue at the outgoing link was full.
  LinkDown,       ///< Forwarded into a link already known to be down.
  InFlightCut,    ///< Was on the wire / in the queue when the link failed.
  RandomLoss,     ///< Lost to a configured link loss rate (fault injection).
  Corrupted,      ///< Corrupted in transit past the CRC (fault injection).
};

[[nodiscard]] constexpr const char* toString(DropReason r) {
  switch (r) {
    case DropReason::NoRoute: return "no-route";
    case DropReason::TtlExpired: return "ttl-expired";
    case DropReason::QueueOverflow: return "queue-overflow";
    case DropReason::LinkDown: return "link-down";
    case DropReason::InFlightCut: return "in-flight-cut";
    case DropReason::RandomLoss: return "random-loss";
    case DropReason::Corrupted: return "corrupted";
  }
  return "?";
}

enum class PacketKind { Data, Control };

}  // namespace rcsim
