#include "net/node.hpp"

#include <cassert>
#include <utility>

#include "net/detector.hpp"
#include "net/link.hpp"
#include "net/network.hpp"

namespace rcsim {

Node::Node(Network& net, NodeId id, Rng rng) : net_{net}, id_{id}, rng_{rng} {}

Scheduler& Node::scheduler() { return net_.scheduler(); }

void Node::attachLink(Link& link) {
  const NodeId peer = link.peerOf(id_);
  assert(nbrIndex_.slotOf(peer) < 0);
  nbrIndex_.add(peer, static_cast<int>(neighborIds_.size()));
  neighborIds_.push_back(peer);
  linkBySlot_.push_back(&link);
}

Link* Node::linkTo(NodeId neighbor) const {
  const int slot = nbrIndex_.slotOf(neighbor);
  return slot < 0 ? nullptr : linkBySlot_[static_cast<std::size_t>(slot)];
}

bool Node::neighborReachable(NodeId neighbor) const {
  const Link* l = linkTo(neighbor);
  return l != nullptr && l->isUp();
}

void Node::setRoute(NodeId dst, NodeId nextHop) {
  const NodeId old = fib_.set(dst, nextHop);
  if (old == nextHop) return;
  net_.notifyRouteChange(scheduler().now(), id_, dst, old, nextHop);
}

void Node::setRoutes(NodeId dst, const NodeId* nextHops, int count) {
  const NodeId primary = count > 0 ? nextHops[0] : kInvalidNode;
  const NodeId old = fib_.setMulti(dst, nextHops, count);
  if (old == primary) return;
  net_.notifyRouteChange(scheduler().now(), id_, dst, old, primary);
}

void Node::clearRoutes() {
  for (NodeId dst = 0; dst < static_cast<NodeId>(fib_.size()); ++dst) {
    setRoute(dst, kInvalidNode);
  }
}

void Node::originate(Packet&& p) {
  if (p.trace) p.trace->push_back(id_);
  net_.notifyOriginate(scheduler().now(), id_, p);
  if (p.dst == id_) {
    deliverLocally(p);
    return;
  }
  route(std::move(p));
}

void Node::deliverLocally(const Packet& p) {
  net_.notifyDeliver(scheduler().now(), id_, p);
  for (const auto& handler : deliveryHandlers_) handler(p);
}

void Node::receive(Packet&& p, NodeId from) {
  if (p.trace) p.trace->push_back(id_);
  if (p.kind == PacketKind::Control) {
    assert(p.payload);
    // With hello detection active, every control packet from a neighbor is
    // proof of life; pure hellos stop here, real updates fall through.
    if (HelloDetector* det = net_.detector();
        det != nullptr && det->onControl(*this, from, *p.payload)) {
      return;
    }
    if (proto_) proto_->onMessage(from, std::move(p.payload));
    return;
  }
  if (p.dst == id_) {
    deliverLocally(p);
    return;
  }
  // Transit: decrement TTL, then forward if still alive (RFC 791 behaviour;
  // the paper's loop-caused losses show up here as TtlExpired).
  if (--p.ttl <= 0) {
    net_.notifyDrop(scheduler().now(), id_, p, DropReason::TtlExpired);
    return;
  }
  route(std::move(p));
}

void Node::route(Packet&& p) {
  // With ECMP the flow's deterministic key picks one member of the entry
  // set; without it (the default) this is exactly the primary lookup.
  const NodeId nh = fib_.ecmpEnabled() ? fib_.pick(p.dst, fibFlowKey(p.src, p.dst))
                                       : fib_.nextHop(p.dst);
  if (nh == kInvalidNode) {
    net_.notifyDrop(scheduler().now(), id_, p, DropReason::NoRoute);
    return;
  }
  Link* l = linkTo(nh);
  assert(l != nullptr);
  net_.notifyForward(scheduler().now(), id_, p, nh);
  l->send(id_, std::move(p));
}

void Node::sendControl(NodeId neighbor, std::shared_ptr<const ControlPayload> payload,
                       std::uint32_t extraBytes) {
  Link* l = linkTo(neighbor);
  assert(l != nullptr);
  Packet p;
  p.id = net_.nextPacketId();
  p.src = id_;
  p.dst = neighbor;
  p.ttl = 1;
  p.kind = PacketKind::Control;
  p.sizeBytes = payload->sizeBytes() + extraBytes;
  p.sendTime = scheduler().now();
  p.payload = std::move(payload);
  net_.notifyControlSend(scheduler().now(), id_, neighbor, *p.payload);
  l->send(id_, std::move(p));
}

void Node::handleLinkDown(NodeId neighbor) {
  if (proto_) proto_->onLinkDown(neighbor);
}

void Node::handleLinkUp(NodeId neighbor) {
  if (proto_) proto_->onLinkUp(neighbor);
}

}  // namespace rcsim
