#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <utility>

namespace rcsim {

Network::Network(Scheduler& sched, Rng rng) : sched_{sched}, rng_{rng} {}

NodeId Network::addNode() {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(*this, id, rng_.fork()));
  return id;
}

Link& Network::addLink(NodeId a, NodeId b, const LinkConfig& cfg) {
  assert(findLink(a, b) == nullptr);
  links_.push_back(std::make_unique<Link>(*this, a, b, cfg));
  Link& l = *links_.back();
  node(a).attachLink(l);
  node(b).attachLink(l);
  return l;
}

Link* Network::findLink(NodeId a, NodeId b) const {
  for (const auto& l : links_) {
    if (l->connects(a, b)) return l.get();
  }
  return nullptr;
}

void Network::finalize(bool ecmp) {
  for (auto& n : nodes_) n->resizeFib(nodes_.size(), ecmp);
}

void Network::startProtocols() {
  for (auto& n : nodes_) {
    if (n->protocol() != nullptr) n->protocol()->start();
  }
}

std::vector<NodeId> Network::shortestPathLive(NodeId src, NodeId dst) const {
  const auto n = nodes_.size();
  std::vector<NodeId> prev(n, kInvalidNode);
  std::vector<char> seen(n, 0);
  std::queue<NodeId> q;
  q.push(src);
  seen[static_cast<std::size_t>(src)] = 1;
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    if (u == dst) break;
    for (const NodeId v : node(u).neighbors()) {
      if (seen[static_cast<std::size_t>(v)]) continue;
      const Link* l = node(u).linkTo(v);
      if (l == nullptr || !l->isUp()) continue;
      seen[static_cast<std::size_t>(v)] = 1;
      prev[static_cast<std::size_t>(v)] = u;
      q.push(v);
    }
  }
  if (!seen[static_cast<std::size_t>(dst)]) return {};
  std::vector<NodeId> path;
  for (NodeId cur = dst; cur != kInvalidNode; cur = prev[static_cast<std::size_t>(cur)]) {
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

int Network::shortestDistLive(NodeId src, NodeId dst) const {
  const auto p = shortestPathLive(src, dst);
  return p.empty() ? -1 : static_cast<int>(p.size()) - 1;
}

std::vector<NodeId> Network::fibWalk(NodeId src, NodeId dst, bool* loop, bool* blackhole) const {
  if (loop) *loop = false;
  if (blackhole) *blackhole = false;
  std::vector<NodeId> path;
  std::vector<char> visited(nodes_.size(), 0);
  NodeId cur = src;
  while (true) {
    path.push_back(cur);
    if (cur == dst) return path;
    if (visited[static_cast<std::size_t>(cur)]) {
      if (loop) *loop = true;
      return path;
    }
    visited[static_cast<std::size_t>(cur)] = 1;
    // Canonical walk: primaries only, even under ECMP — PathTracer and the
    // obs/replay shadow FIB (rebuilt from RouteChange events, which carry
    // primaries) must agree on this walk (docs/routing-state.md).
    const NodeId nh = node(cur).fib().nextHop(dst);
    if (nh == kInvalidNode) {
      if (blackhole) *blackhole = true;
      return path;
    }
    cur = nh;
  }
}

}  // namespace rcsim
