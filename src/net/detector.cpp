#include "net/detector.hpp"

#include <cassert>

#include "net/link.hpp"
#include "net/network.hpp"
#include "net/node.hpp"

namespace rcsim {

HelloDetector::HelloDetector(Network& net, HelloConfig cfg)
    : net_{net}, cfg_{cfg}, hello_{std::make_shared<const HelloPayload>()} {
  assert(cfg_.interval > Time::zero());
  assert(cfg_.dead > cfg_.interval);
  assert(cfg_.jitter >= 0.0 && cfg_.jitter < 1.0);
}

void HelloDetector::start() {
  const Time now = net_.scheduler().now();
  adjByNode_.resize(net_.nodeCount());
  for (NodeId n = 0; n < static_cast<NodeId>(net_.nodeCount()); ++n) {
    Node& node = net_.node(n);
    auto& adjs = adjByNode_[static_cast<std::size_t>(n)];
    adjs.assign(node.neighbors().size(), Adj{});
    // Adjacencies start Up with a full dead interval of grace, matching the
    // protocols' assumption that every neighbor is alive at t=0.
    for (int slot = 0; slot < static_cast<int>(adjs.size()); ++slot) {
      adjs[static_cast<std::size_t>(slot)].lastHeard = now;
      armDeadCheck(n, slot, now + cfg_.dead);
    }
    // Random initial phase so the fleet's hellos do not fire in lockstep.
    const Time phase = Time::seconds(node.rng().uniform(0.0, cfg_.interval.toSeconds()));
    net_.scheduler().scheduleAfter(phase, EventKind::Detector, [this, n] { sendHellos(n); });
  }
}

void HelloDetector::sendHellos(NodeId n) {
  Node& node = net_.node(n);
  // A crashed node (protocol detached by the fault injector) stays silent;
  // the chain keeps ticking so hellos resume the moment it restarts.
  if (node.protocol() != nullptr) {
    auto& tracer = net_.trace();
    for (const NodeId nbr : node.neighbors()) {
      if (tracer.wants(obs::TraceKind::HelloSend)) {
        tracer.emit(net_.scheduler().now(), obs::TraceKind::HelloSend, n, nbr,
                    static_cast<std::int64_t>(hello_->sizeBytes()));
      }
      ++hellosSent_;
      node.sendControl(nbr, hello_);
    }
  }
  const double spread =
      cfg_.jitter > 0.0 ? node.rng().uniform(1.0 - cfg_.jitter, 1.0 + cfg_.jitter) : 1.0;
  net_.scheduler().scheduleAfter(Time::seconds(cfg_.interval.toSeconds() * spread),
                                 EventKind::Detector, [this, n] { sendHellos(n); });
}

void HelloDetector::armDeadCheck(NodeId n, int slot, Time at) {
  auto& adj = adjByNode_[static_cast<std::size_t>(n)][static_cast<std::size_t>(slot)];
  if (adj.checkArmed) return;
  adj.checkArmed = true;
  net_.scheduler().scheduleAt(at, EventKind::Detector, [this, n, slot] { deadCheck(n, slot); });
}

void HelloDetector::deadCheck(NodeId n, int slot) {
  auto& adj = adjByNode_[static_cast<std::size_t>(n)][static_cast<std::size_t>(slot)];
  adj.checkArmed = false;
  if (adj.state == AdjState::Down) return;  // revived markHeard restarts the chain
  const Time now = net_.scheduler().now();
  const Time suspectAt = adj.lastHeard + Time::seconds(cfg_.dead.toSeconds() / 2.0);
  const Time downAt = adj.lastHeard + cfg_.dead;
  if (now >= downAt) {
    adj.state = AdjState::Down;
    Node& node = net_.node(n);
    const NodeId nbr = node.neighbors()[static_cast<std::size_t>(slot)];
    const Link* l = node.linkTo(nbr);
    const bool falsePositive = l != nullptr && l->isUp();
    ++adjDowns_;
    if (falsePositive) ++falsePositives_;
    net_.trace().emit(now, obs::TraceKind::AdjDown, n, nbr, falsePositive ? 1 : 0);
    node.handleLinkDown(nbr);
    return;  // chain parks until the next hello revives the adjacency
  }
  if (now >= suspectAt) {
    if (adj.state == AdjState::Up) adj.state = AdjState::Suspect;
    armDeadCheck(n, slot, downAt);
  } else {
    adj.state = AdjState::Up;
    armDeadCheck(n, slot, suspectAt);
  }
}

void HelloDetector::markHeard(Node& at, NodeId from) {
  const int slot = at.neighborSlot(from);
  assert(slot >= 0);
  auto& adj = adjByNode_[static_cast<std::size_t>(at.id())][static_cast<std::size_t>(slot)];
  const Time now = net_.scheduler().now();
  adj.lastHeard = now;
  if (adj.state == AdjState::Down) {
    adj.state = AdjState::Up;
    ++adjUps_;
    net_.trace().emit(now, obs::TraceKind::AdjUp, at.id(), from);
    at.handleLinkUp(from);
    armDeadCheck(at.id(), slot, now + cfg_.dead);
  } else {
    adj.state = AdjState::Up;
  }
}

bool HelloDetector::onControl(Node& at, NodeId from, const ControlPayload& payload) {
  markHeard(at, from);
  return dynamic_cast<const HelloPayload*>(&payload) != nullptr;
}

HelloDetector::AdjState HelloDetector::state(NodeId node, NodeId neighbor) const {
  const int slot = net_.node(node).neighborSlot(neighbor);
  assert(slot >= 0);
  return adjByNode_[static_cast<std::size_t>(node)][static_cast<std::size_t>(slot)].state;
}

}  // namespace rcsim
