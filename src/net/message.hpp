#pragma once

#include <cstdint>
#include <string>

namespace rcsim {

/// Base class for routing-protocol and transport control payloads.
///
/// Control payloads are immutable once sent (shared between the sender's
/// retransmission buffers and in-flight packets), hence they are carried as
/// shared_ptr<const ControlPayload>.
class ControlPayload {
 public:
  virtual ~ControlPayload() = default;

  /// Wire size in bytes, used for link serialization delay.
  [[nodiscard]] virtual std::uint32_t sizeBytes() const = 0;

  /// Human-readable one-liner for trace logs.
  [[nodiscard]] virtual std::string describe() const = 0;
};

}  // namespace rcsim
