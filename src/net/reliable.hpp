#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/message.hpp"
#include "net/types.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace rcsim {

class Node;

/// Wire format of the reliable transport: either a data segment wrapping a
/// protocol payload, or a pure cumulative ACK.
struct TransportSegment final : ControlPayload {
  std::uint32_t seq = 0;     ///< Sequence number of this segment (data only).
  std::uint32_t ackNo = 0;   ///< Cumulative ack: all segments < ackNo received.
  bool isAck = false;        ///< Pure ACK carries no inner payload.
  std::shared_ptr<const ControlPayload> inner;

  [[nodiscard]] std::uint32_t sizeBytes() const override {
    return 20 + (inner ? inner->sizeBytes() : 0);
  }
  [[nodiscard]] std::string describe() const override {
    if (isAck) return "ack:" + std::to_string(ackNo);
    return "seg:" + std::to_string(seq) + " [" + (inner ? inner->describe() : "") + "]";
  }
};

/// Sent to the peer when this side gives up after max retries, so both
/// ends resynchronize sequence numbers (the analogue of a TCP RST). If it
/// is lost, the peer's own failure detection / give-up path covers it.
struct TransportReset final : ControlPayload {
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 20; }
  [[nodiscard]] std::string describe() const override { return "rst"; }
};

/// One endpoint of a reliable, in-order message stream between two adjacent
/// nodes — the stand-in for the TCP session BGP runs over (DESIGN.md §4).
/// Sliding window, cumulative ACKs, exponentially backed-off RTO
/// retransmission (capped at rtoMax, reset on ack progress), exactly-once
/// in-order delivery to the application. After maxRetries consecutive RTOs
/// with no progress the session gives up: state is dropped, a
/// TransportReset is sent to the peer, and the owner's onReset callback
/// fires so it can rebuild (BGP re-advertises the full table).
class ReliableSession {
 public:
  using DeliverFn = std::function<void(std::shared_ptr<const ControlPayload>)>;

  struct Config {
    std::uint32_t window = 32;
    Time rto = Time::milliseconds(1000);
    double backoffFactor = 2.0;        ///< RTO multiplier per consecutive timeout.
    Time rtoMax = Time::seconds(60.0);  ///< Backoff ceiling.
    int maxRetries = 8;                ///< Consecutive RTOs before giving up.
  };

  ReliableSession(Node& node, NodeId peer, DeliverFn deliver, Config cfg);
  ~ReliableSession();

  ReliableSession(const ReliableSession&) = delete;
  ReliableSession& operator=(const ReliableSession&) = delete;

  /// Queue an application message for reliable in-order delivery.
  void send(std::shared_ptr<const ControlPayload> msg);

  /// Feed an incoming TransportSegment from the peer.
  void onSegment(const std::shared_ptr<const TransportSegment>& seg);

  /// Drop all connection state (both sides must reset on session failure;
  /// BGP does this when the link goes down). Also rewinds the RTO backoff.
  void reset();

  /// Invoked after the max-retry give-up path has reset the session; the
  /// owning protocol should resynchronize (e.g. re-advertise its table).
  void setOnReset(std::function<void()> cb) { onReset_ = std::move(cb); }

  [[nodiscard]] NodeId peer() const { return peer_; }
  [[nodiscard]] std::size_t unackedCount() const { return inFlight_.size(); }
  [[nodiscard]] std::size_t backlogCount() const { return backlog_.size(); }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  /// Give-up resets only (max retries exceeded) — deliberate teardowns via
  /// reset() (link-down handling) are not transport failures.
  [[nodiscard]] std::uint64_t sessionResets() const { return sessionResets_; }
  [[nodiscard]] Time currentRto() const { return currentRto_; }

 private:
  void trySendWindow();
  void transmit(std::uint32_t seq, const std::shared_ptr<const ControlPayload>& msg);
  void sendAck();
  void armRtoTimer();
  void onRtoTimer();

  Node& node_;
  NodeId peer_;
  DeliverFn deliver_;
  Config cfg_;

  // Sender state.
  std::uint32_t nextSeq_ = 0;                 ///< Next sequence number to assign.
  std::uint32_t sendBase_ = 0;                ///< Lowest unacked sequence number.
  std::deque<std::shared_ptr<const ControlPayload>> backlog_;  ///< Not yet in window.
  std::map<std::uint32_t, std::shared_ptr<const ControlPayload>> inFlight_;
  EventId rtoTimer_{};
  Time currentRto_;          ///< Next timeout; doubles per consecutive RTO.
  int consecutiveRtos_ = 0;  ///< RTOs since the last ack progress.
  std::uint64_t retransmissions_ = 0;
  std::uint64_t sessionResets_ = 0;
  std::function<void()> onReset_;

  // Receiver state.
  std::uint32_t recvNext_ = 0;  ///< Next in-order sequence number expected.
  std::map<std::uint32_t, std::shared_ptr<const ControlPayload>> outOfOrder_;
};

}  // namespace rcsim
