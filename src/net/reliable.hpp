#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/message.hpp"
#include "net/types.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace rcsim {

class Node;

/// Wire format of the reliable transport: either a data segment wrapping a
/// protocol payload, or a pure cumulative ACK.
struct TransportSegment final : ControlPayload {
  std::uint32_t seq = 0;     ///< Sequence number of this segment (data only).
  std::uint32_t ackNo = 0;   ///< Cumulative ack: all segments < ackNo received.
  bool isAck = false;        ///< Pure ACK carries no inner payload.
  std::shared_ptr<const ControlPayload> inner;

  [[nodiscard]] std::uint32_t sizeBytes() const override {
    return 20 + (inner ? inner->sizeBytes() : 0);
  }
  [[nodiscard]] std::string describe() const override {
    if (isAck) return "ack:" + std::to_string(ackNo);
    return "seg:" + std::to_string(seq) + " [" + (inner ? inner->describe() : "") + "]";
  }
};

/// One endpoint of a reliable, in-order message stream between two adjacent
/// nodes — the stand-in for the TCP session BGP runs over (DESIGN.md §4).
/// Sliding window, cumulative ACKs, fixed RTO
/// retransmission, exactly-once in-order delivery to the application.
class ReliableSession {
 public:
  using DeliverFn = std::function<void(std::shared_ptr<const ControlPayload>)>;

  struct Config {
    std::uint32_t window = 32;
    Time rto = Time::milliseconds(1000);
  };

  ReliableSession(Node& node, NodeId peer, DeliverFn deliver, Config cfg);
  ~ReliableSession();

  ReliableSession(const ReliableSession&) = delete;
  ReliableSession& operator=(const ReliableSession&) = delete;

  /// Queue an application message for reliable in-order delivery.
  void send(std::shared_ptr<const ControlPayload> msg);

  /// Feed an incoming TransportSegment from the peer.
  void onSegment(const std::shared_ptr<const TransportSegment>& seg);

  /// Drop all connection state (both sides must reset on session failure;
  /// BGP does this when the link goes down).
  void reset();

  [[nodiscard]] NodeId peer() const { return peer_; }
  [[nodiscard]] std::size_t unackedCount() const { return inFlight_.size(); }
  [[nodiscard]] std::size_t backlogCount() const { return backlog_.size(); }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  void trySendWindow();
  void transmit(std::uint32_t seq, const std::shared_ptr<const ControlPayload>& msg);
  void sendAck();
  void armRtoTimer();
  void onRtoTimer();

  Node& node_;
  NodeId peer_;
  DeliverFn deliver_;
  Config cfg_;

  // Sender state.
  std::uint32_t nextSeq_ = 0;                 ///< Next sequence number to assign.
  std::uint32_t sendBase_ = 0;                ///< Lowest unacked sequence number.
  std::deque<std::shared_ptr<const ControlPayload>> backlog_;  ///< Not yet in window.
  std::map<std::uint32_t, std::shared_ptr<const ControlPayload>> inFlight_;
  EventId rtoTimer_{};
  std::uint64_t retransmissions_ = 0;

  // Receiver state.
  std::uint32_t recvNext_ = 0;  ///< Next in-order sequence number expected.
  std::map<std::uint32_t, std::shared_ptr<const ControlPayload>> outOfOrder_;
};

}  // namespace rcsim
