#include "net/link.hpp"

#include <cassert>
#include <utility>

#include "net/network.hpp"

namespace rcsim {

Link::Link(Network& net, NodeId a, NodeId b, LinkConfig cfg)
    : net_{net}, a_{a}, b_{b}, cfg_{cfg} {
  assert(a != b);
  assert(cfg.bandwidthBps > 0.0);
}

Time Link::transmissionTime(const Packet& p) const {
  return Time::seconds(static_cast<double>(p.sizeBytes) * 8.0 / cfg_.bandwidthBps);
}

void Link::send(NodeId from, Packet&& p) {
  auto& sched = net_.scheduler();
  if (!up_) {
    if (net_.hooks().onDrop) net_.hooks().onDrop(sched.now(), from, p, DropReason::LinkDown);
    return;
  }
  const int dir = directionFrom(from);
  auto& d = dirs_[dir];
  if (d.queue.size() >= cfg_.queueCapacity) {
    if (net_.hooks().onDrop) net_.hooks().onDrop(sched.now(), from, p, DropReason::QueueOverflow);
    return;
  }
  d.queue.push_back(std::move(p));
  if (!d.transmitting) startTransmission(dir);
}

void Link::startTransmission(int dir) {
  auto& d = dirs_[dir];
  assert(!d.queue.empty());
  d.transmitting = true;
  Packet p = std::move(d.queue.front());
  d.queue.pop_front();

  auto& sched = net_.scheduler();
  const Time txDone = transmissionTime(p);
  const std::uint64_t epoch = epoch_;
  // Serialization completes first; then the bits propagate. If the link
  // fails in between, the packet is lost (epoch check).
  sched.scheduleAfter(txDone, [this, dir, epoch, p = std::move(p)]() mutable {
    auto& d2 = dirs_[dir];
    d2.transmitting = false;
    if (up_ && epoch == epoch_) {
      const NodeId to = receiverOf(dir);
      const NodeId from = peerOf(to);
      net_.scheduler().scheduleAfter(cfg_.propDelay, [this, to, from, epoch,
                                                      p2 = std::move(p)]() mutable {
        if (up_ && epoch == epoch_) {
          net_.node(to).receive(std::move(p2), from);
        } else if (net_.hooks().onDrop) {
          net_.hooks().onDrop(net_.scheduler().now(), from, p2, DropReason::InFlightCut);
        }
      });
    } else if (net_.hooks().onDrop) {
      net_.hooks().onDrop(net_.scheduler().now(), receiverOf(dir) == b_ ? a_ : b_, p,
                          DropReason::InFlightCut);
    }
    // Restart the transmitter regardless of what happened to this packet:
    // the link may have failed and recovered while we were serializing, in
    // which case fresh packets may already be waiting in the queue.
    if (up_ && !d2.queue.empty()) startTransmission(dir);
  });
}

void Link::fail() {
  if (!up_) return;
  up_ = false;
  ++epoch_;
  auto& sched = net_.scheduler();
  net_.trace().emit(sched.now(), TraceCategory::Failure,
                    "link (" + std::to_string(a_) + "," + std::to_string(b_) + ") failed");
  // Everything sitting in the queues is lost.
  for (int dir = 0; dir < 2; ++dir) {
    auto& d = dirs_[dir];
    const NodeId from = dir == 0 ? a_ : b_;
    for (auto& p : d.queue) {
      if (net_.hooks().onDrop) net_.hooks().onDrop(sched.now(), from, p, DropReason::InFlightCut);
    }
    d.queue.clear();
  }
  // Both attached nodes detect the failure after the detection delay
  // (paper §5: "detected by the two nodes attached to it within 50 ms").
  sched.scheduleAfter(cfg_.detectDelay, [this] {
    if (up_) return;  // recovered before detection fired
    net_.node(a_).handleLinkDown(b_);
    net_.node(b_).handleLinkDown(a_);
  });
}

void Link::recover() {
  if (up_) return;
  up_ = true;
  auto& sched = net_.scheduler();
  net_.trace().emit(sched.now(), TraceCategory::Failure,
                    "link (" + std::to_string(a_) + "," + std::to_string(b_) + ") recovered");
  sched.scheduleAfter(cfg_.detectDelay, [this] {
    if (!up_) return;
    net_.node(a_).handleLinkUp(b_);
    net_.node(b_).handleLinkUp(a_);
  });
}

}  // namespace rcsim
