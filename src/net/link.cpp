#include "net/link.hpp"

#include <cassert>
#include <utility>

#include "net/network.hpp"

namespace rcsim {

Link::Link(Network& net, NodeId a, NodeId b, LinkConfig cfg)
    : net_{net}, a_{a}, b_{b}, cfg_{cfg} {
  assert(a != b);
  assert(cfg.bandwidthBps > 0.0);
}

Time Link::transmissionTime(const Packet& p) const {
  return Time::seconds(static_cast<double>(p.sizeBytes) * 8.0 / cfg_.bandwidthBps);
}

void Link::send(NodeId from, Packet&& p) {
  auto& sched = net_.scheduler();
  if (!up_) {
    net_.notifyDrop(sched.now(), from, p, DropReason::LinkDown);
    return;
  }
  const int dir = directionFrom(from);
  auto& d = dirs_[dir];
  if (d.queue.size() >= cfg_.queueCapacity) {
    net_.notifyDrop(sched.now(), from, p, DropReason::QueueOverflow);
    return;
  }
  d.queue.push_back(std::move(p));
  if (!d.transmitting) startTransmission(dir);
}

void Link::startTransmission(int dir) {
  auto& d = dirs_[dir];
  assert(!d.queue.empty());
  d.transmitting = true;
  Packet p = std::move(d.queue.front());
  d.queue.pop_front();

  auto& sched = net_.scheduler();
  const Time txDone = transmissionTime(p);
  const std::uint64_t epoch = epoch_;
  net_.notifyLinkTransmit(sched.now(), dir == 0 ? a_ : b_, receiverOf(dir), up_);
  // Serialization completes first; then the bits propagate. If the link
  // fails in between, the packet is lost (epoch check).
  sched.scheduleAfter(txDone, EventKind::LinkDelivery, [this, dir, epoch, p = std::move(p)]() mutable {
    auto& d2 = dirs_[dir];
    d2.transmitting = false;
    if (up_ && epoch == epoch_) {
      const NodeId to = receiverOf(dir);
      const NodeId from = peerOf(to);
      // Reordering impairment: some packets pick up extra propagation
      // delay, letting later packets overtake them. Rate 0 draws nothing.
      Time prop = cfg_.propDelay;
      if (reorderRate_ > 0.0 && net_.rng().uniform01() < reorderRate_) {
        prop = prop + Time::seconds(net_.rng().uniform(0.0, reorderJitter_.toSeconds()));
      }
      // Control-plane delay impairment: fixed extra propagation for control
      // packets only (hellos, routing updates). No randomness involved.
      if (p.kind == PacketKind::Control && ctrlDelay_ > Time::zero()) {
        prop = prop + ctrlDelay_;
      }
      net_.scheduler().scheduleAfter(prop, EventKind::LinkDelivery,
                                     [this, to, from, epoch, p2 = std::move(p)]() mutable {
        if (up_ && epoch == epoch_) {
          const bool ctrl = p2.kind == PacketKind::Control;
          // Loss/corruption are decided at arrival, after the wire survived
          // the trip. Corrupted frames fail the checksum and are dropped —
          // same fate as random loss, but accounted separately. Control
          // packets additionally face the control-plane-only loss draw.
          if (ctrl && ctrlLossRate_ > 0.0 && net_.rng().uniform01() < ctrlLossRate_) {
            net_.notifyDrop(net_.scheduler().now(), from, p2, DropReason::RandomLoss);
          } else if (lossRate_ > 0.0 && net_.rng().uniform01() < lossRate_) {
            net_.notifyDrop(net_.scheduler().now(), from, p2, DropReason::RandomLoss);
          } else if (corruptRate_ > 0.0 && net_.rng().uniform01() < corruptRate_) {
            net_.notifyDrop(net_.scheduler().now(), from, p2, DropReason::Corrupted);
          } else {
            // Duplication impairment: the receiver sees the same control
            // packet twice back to back (e.g. a misbehaving relay). Dup
            // state in protocols and the detector must stay idempotent.
            if (ctrl && ctrlDupRate_ > 0.0 && net_.rng().uniform01() < ctrlDupRate_) {
              Packet copy = p2;
              net_.node(to).receive(std::move(copy), from);
            }
            net_.node(to).receive(std::move(p2), from);
          }
        } else {
          net_.notifyDrop(net_.scheduler().now(), from, p2, DropReason::InFlightCut);
        }
      });
    } else {
      net_.notifyDrop(net_.scheduler().now(), receiverOf(dir) == b_ ? a_ : b_, p,
                      DropReason::InFlightCut);
    }
    // Restart the transmitter regardless of what happened to this packet:
    // the link may have failed and recovered while we were serializing, in
    // which case fresh packets may already be waiting in the queue.
    if (up_ && !d2.queue.empty()) startTransmission(dir);
  });
}

void Link::fail() {
  if (!up_) return;
  up_ = false;
  ++epoch_;
  auto& sched = net_.scheduler();
  net_.notifyLinkStateChange(sched.now(), a_, b_, /*up=*/false);
  // Everything sitting in the queues is lost.
  for (int dir = 0; dir < 2; ++dir) {
    auto& d = dirs_[dir];
    const NodeId from = dir == 0 ? a_ : b_;
    for (auto& p : d.queue) {
      net_.notifyDrop(sched.now(), from, p, DropReason::InFlightCut);
    }
    d.queue.clear();
  }
  // Both attached nodes detect the failure after the detection delay
  // (paper §5: "detected by the two nodes attached to it within 50 ms") —
  // unless a hello detector is installed, in which case the only signal the
  // nodes get is the hellos that stop arriving.
  if (net_.detector() != nullptr) return;
  failedAt_ = sched.now();
  pendingDetect_ = sched.scheduleAfter(cfg_.detectDelay, EventKind::Detector, [this] {
    pendingDetect_ = EventId{};
    if (up_) return;  // recovered before detection fired
    net_.node(a_).handleLinkDown(b_);
    net_.node(b_).handleLinkDown(a_);
  });
}

void Link::recover() {
  if (up_) return;
  up_ = true;
  auto& sched = net_.scheduler();
  net_.notifyLinkStateChange(sched.now(), a_, b_, /*up=*/true);
  if (net_.detector() != nullptr) return;
  sched.scheduleAfter(cfg_.detectDelay, EventKind::Detector, [this] {
    if (!up_) return;
    net_.node(a_).handleLinkUp(b_);
    net_.node(b_).handleLinkUp(a_);
  });
}

void Link::setDetectDelay(Time d) {
  cfg_.detectDelay = d;
  // A pending down-detection (link already failed, nodes not yet notified)
  // must follow the new delay: cancel and re-time it against the original
  // failure instant, clamping to "now" when the new deadline already passed.
  if (up_ || !pendingDetect_.valid()) return;
  auto& sched = net_.scheduler();
  sched.cancel(pendingDetect_);
  pendingDetect_ = sched.scheduleAt(failedAt_ + d, EventKind::Detector, [this] {
    pendingDetect_ = EventId{};
    if (up_) return;
    net_.node(a_).handleLinkDown(b_);
    net_.node(b_).handleLinkDown(a_);
  });
}

}  // namespace rcsim
