#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/types.hpp"

namespace rcsim {

/// Dense per-node storage for the routing-state layer (docs/routing-state.md).
/// Node ids are dense [0, nodeCount), so node-keyed protocol state lives in
/// flat arrays instead of node-keyed std::map/set/unordered_map. Everything
/// here iterates in ascending NodeId order — the same order the ordered
/// containers it replaces used — so message emission stays bit-identical.

/// Flat NodeId -> T map. A thin typed wrapper over std::vector that keeps
/// call sites free of static_cast<std::size_t> noise.
template <typename T>
class DenseNodeMap {
 public:
  DenseNodeMap() = default;

  void assign(std::size_t nodeCount, const T& value) { v_.assign(nodeCount, value); }

  [[nodiscard]] T& operator[](NodeId id) { return v_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const T& operator[](NodeId id) const { return v_[static_cast<std::size_t>(id)]; }

  [[nodiscard]] std::size_t size() const { return v_.size(); }
  [[nodiscard]] bool empty() const { return v_.empty(); }

  [[nodiscard]] auto begin() { return v_.begin(); }
  [[nodiscard]] auto end() { return v_.end(); }
  [[nodiscard]] auto begin() const { return v_.begin(); }
  [[nodiscard]] auto end() const { return v_.end(); }

 private:
  std::vector<T> v_;
};

/// A set of NodeIds as a bitset, with O(1) membership updates and ascending
/// iteration/drain — the drop-in replacement for the std::set<NodeId>
/// "changed destinations" / "pending advertisements" batches. ~N/8 bytes
/// instead of a red-black tree node per member.
class NodeBitset {
 public:
  NodeBitset() = default;

  /// Size for `nodeCount` ids and clear every bit.
  void assign(std::size_t nodeCount) {
    words_.assign((nodeCount + 63) / 64, 0);
    count_ = 0;
  }

  /// Returns true when the id was newly inserted.
  bool set(NodeId id) {
    std::uint64_t& w = words_[word(id)];
    const std::uint64_t m = mask(id);
    if ((w & m) != 0) return false;
    w |= m;
    ++count_;
    return true;
  }

  /// Returns true when the id was present.
  bool reset(NodeId id) {
    std::uint64_t& w = words_[word(id)];
    const std::uint64_t m = mask(id);
    if ((w & m) == 0) return false;
    w &= ~m;
    --count_;
    return true;
  }

  [[nodiscard]] bool test(NodeId id) const { return (words_[word(id)] & mask(id)) != 0; }
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  void clear() {
    if (count_ == 0) return;
    std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
  }

  /// Visit members in ascending id order.
  template <typename F>
  void forEachSet(F&& f) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        w &= w - 1;
        f(static_cast<NodeId>(wi * 64 + static_cast<std::size_t>(bit)));
      }
    }
  }

  /// Move the members (ascending) into `out` and clear the set.
  void drainSorted(std::vector<NodeId>& out) {
    out.clear();
    out.reserve(count_);
    forEachSet([&out](NodeId id) { out.push_back(id); });
    clear();
  }

 private:
  [[nodiscard]] static std::size_t word(NodeId id) { return static_cast<std::size_t>(id) / 64; }
  [[nodiscard]] static std::uint64_t mask(NodeId id) {
    return std::uint64_t{1} << (static_cast<std::size_t>(id) % 64);
  }

  std::vector<std::uint64_t> words_;
  std::size_t count_ = 0;
};

/// Sorted (neighbor id -> slot) index over a node's neighbor list. Slots are
/// positions in the attachment-ordered neighbor vector, so per-neighbor
/// protocol tables can be flat arrays indexed by slot (degree-sized, not
/// nodeCount-sized) while lookups stay O(log degree) without hashing.
class NeighborIndex {
 public:
  void add(NodeId id, int slot) {
    const auto it = std::lower_bound(sorted_.begin(), sorted_.end(),
                                     std::pair<NodeId, int>{id, 0},
                                     [](const auto& a, const auto& b) { return a.first < b.first; });
    sorted_.insert(it, {id, slot});
  }

  /// -1 when the id is not a neighbor.
  [[nodiscard]] int slotOf(NodeId id) const {
    const auto it = std::lower_bound(sorted_.begin(), sorted_.end(),
                                     std::pair<NodeId, int>{id, 0},
                                     [](const auto& a, const auto& b) { return a.first < b.first; });
    return (it != sorted_.end() && it->first == id) ? it->second : -1;
  }

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

  /// Visit (id, slot) pairs in ascending id order.
  template <typename F>
  void forEachSorted(F&& f) const {
    for (const auto& [id, slot] : sorted_) f(id, slot);
  }

 private:
  std::vector<std::pair<NodeId, int>> sorted_;
};

}  // namespace rcsim
