#pragma once

// Hello-based failure detection (docs/failure-detection.md). Instead of the
// oracle detection Link::fail performs after a fixed detectDelay, each node
// periodically sends tiny hello packets to every neighbor and declares an
// adjacency dead when nothing has been heard for a dead interval — the
// OSPF/EIGRP hello protocol reduced to its timing essentials. Hellos are
// real control packets: they ride the same queues, suffer the same loss and
// control-plane impairments (ctrl-loss/ctrl-delay fault kinds), and so the
// detector can both miss real failures for a while and declare false
// positives on lossy links — exactly the behavior the paper's detection-
// delay discussion abstracts away.
//
// Off by default. When disabled no detector object exists at all: no
// timers, no RNG draws, no per-packet checks beyond one null pointer test,
// so every golden digest of the oracle-detection configuration holds.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "net/types.hpp"
#include "sim/time.hpp"

namespace rcsim {

class Network;
class Node;

/// Timer knobs, exposed as hello.* scenario options (core/options.cpp).
struct HelloConfig {
  bool enabled = false;
  Time interval = Time::seconds(1.0);  ///< hello.interval: nominal send period
  Time dead = Time::seconds(3.5);      ///< hello.dead: silence before AdjDown
  double jitter = 0.2;                 ///< hello.jitter: +-fraction on each period
};

/// The on-the-wire hello. 16 bytes models an OSPF hello stripped of the
/// neighbor list (the detector keeps that state locally).
class HelloPayload final : public ControlPayload {
 public:
  [[nodiscard]] std::uint32_t sizeBytes() const override { return 16; }
  [[nodiscard]] std::string describe() const override { return "hello"; }
};

/// Per-adjacency hello/dead state machine for every node of one network.
/// Owned by Scenario, borrowed by Network so Node::receive can feed it.
class HelloDetector {
 public:
  enum class AdjState : std::uint8_t {
    Up,       ///< heard from the neighbor within dead/2
    Suspect,  ///< silent for dead/2..dead — no external effect yet
    Down,     ///< silent for >= dead; the node was told handleLinkDown
  };

  HelloDetector(Network& net, HelloConfig cfg);

  /// Arm every node's hello sender (random initial phase) and dead-interval
  /// chains. Call once, after Network::finalize and protocol start.
  void start();

  /// Every control packet arriving at `at` from neighbor `from` counts as
  /// proof of life (updates are implicit hellos, as in RIP/EIGRP). Returns
  /// true when the payload was a pure hello the protocol must not see.
  bool onControl(Node& at, NodeId from, const ControlPayload& payload);

  [[nodiscard]] AdjState state(NodeId node, NodeId neighbor) const;

  [[nodiscard]] std::uint64_t hellosSent() const { return hellosSent_; }
  [[nodiscard]] std::uint64_t adjDowns() const { return adjDowns_; }
  [[nodiscard]] std::uint64_t adjUps() const { return adjUps_; }
  /// AdjDown transitions declared while the physical link was still up.
  [[nodiscard]] std::uint64_t falsePositives() const { return falsePositives_; }

  [[nodiscard]] const HelloConfig& config() const { return cfg_; }

 private:
  struct Adj {
    Time lastHeard{};
    AdjState state = AdjState::Up;
    bool checkArmed = false;  ///< a dead-check chain event is pending
  };

  void sendHellos(NodeId n);
  void armDeadCheck(NodeId n, int slot, Time at);
  void deadCheck(NodeId n, int slot);
  void markHeard(Node& at, NodeId from);

  Network& net_;
  HelloConfig cfg_;
  std::shared_ptr<const HelloPayload> hello_;
  std::vector<std::vector<Adj>> adjByNode_;  ///< [node][neighbor slot]

  std::uint64_t hellosSent_ = 0;
  std::uint64_t adjDowns_ = 0;
  std::uint64_t adjUps_ = 0;
  std::uint64_t falsePositives_ = 0;
};

}  // namespace rcsim
