#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/types.hpp"
#include "obs/trace.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace rcsim {

class HelloDetector;

/// Observation points used by the stats layer. All hooks are optional.
struct NetworkHooks {
  std::function<void(Time, NodeId where, const Packet&, DropReason)> onDrop;
  std::function<void(Time, NodeId, const Packet&)> onDeliver;
  std::function<void(Time, NodeId, const Packet&, NodeId nextHop)> onForward;
  std::function<void(Time, NodeId node, NodeId dst, NodeId oldNh, NodeId newNh)> onRouteChange;
  /// Every routing/transport payload handed to a link (sent or not —
  /// fires before any queue/down-link drop). Feeds routing-load accounting.
  std::function<void(Time, NodeId from, NodeId to, const ControlPayload&)> onControlSend;
};

/// Secondary, non-owning observation channel, used by the runtime invariant
/// checker. StatsCollector stays the sole NetworkHooks user; every call site
/// funnels through Network::notify* so hooks and observer see one stream.
/// Extra callbacks (onOriginate, onLinkTransmit, onLinkStateChange) cover
/// events the stats layer never needed but invariants do.
class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void onDrop(Time, NodeId /*where*/, const Packet&, DropReason) {}
  virtual void onDeliver(Time, NodeId, const Packet&) {}
  virtual void onForward(Time, NodeId, const Packet&, NodeId /*nextHop*/) {}
  virtual void onOriginate(Time, NodeId, const Packet&) {}
  virtual void onRouteChange(Time, NodeId /*node*/, NodeId /*dst*/, NodeId /*oldNh*/,
                             NodeId /*newNh*/) {}
  virtual void onControlSend(Time, NodeId /*from*/, NodeId /*to*/, const ControlPayload&) {}
  /// A packet was accepted for serialization on the wire (never fires for
  /// queue/down-link drops).
  virtual void onLinkTransmit(Time, NodeId /*from*/, NodeId /*to*/, bool /*linkUp*/) {}
  virtual void onLinkStateChange(Time, NodeId /*a*/, NodeId /*b*/, bool /*up*/) {}
};

/// Owns every node and link of one simulated network and wires them to a
/// scheduler. Also provides the topology queries (live shortest paths, FIB
/// walks) the convergence metrics are built on.
class Network {
 public:
  Network(Scheduler& sched, Rng rng);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] Scheduler& scheduler() { return sched_; }
  [[nodiscard]] obs::Tracer& trace() { return trace_; }
  [[nodiscard]] const obs::Tracer& trace() const { return trace_; }
  [[nodiscard]] NetworkHooks& hooks() { return hooks_; }

  /// The network-owned RNG, forked per node at creation; fault injection
  /// draws impairment outcomes from it (single-threaded, deterministic).
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Attach/detach the secondary observer (invariant checker). Not owned.
  void setObserver(NetworkObserver* obs) { observer_ = obs; }
  [[nodiscard]] NetworkObserver* observer() const { return observer_; }

  /// Attach the hello-based failure detector (owned by Scenario). While one
  /// is installed, links stop scheduling their oracle handleLinkDown/Up
  /// notifications — missed/resumed hellos are the only detection signal.
  void setDetector(HelloDetector* det) { detector_ = det; }
  [[nodiscard]] HelloDetector* detector() const { return detector_; }

  // Event fan-out: each call site notifies the stats hooks, the observer
  // and the typed tracer with identical arguments, so no two layers can
  // disagree. Trace payload construction is guarded by wants(), keeping
  // the disabled path to a null-check.
  void notifyDrop(Time t, NodeId where, const Packet& p, DropReason r) {
    if (hooks_.onDrop) hooks_.onDrop(t, where, p, r);
    if (observer_) observer_->onDrop(t, where, p, r);
    if (trace_.wants(obs::TraceKind::Drop)) {
      trace_.emit(t, obs::TraceKind::Drop, where, kInvalidNode, static_cast<std::int64_t>(p.id),
                  static_cast<std::int64_t>(r), p.kind == PacketKind::Data ? 1 : 0);
    }
  }
  void notifyDeliver(Time t, NodeId node, const Packet& p) {
    if (hooks_.onDeliver) hooks_.onDeliver(t, node, p);
    if (observer_) observer_->onDeliver(t, node, p);
    if (trace_.wants(obs::TraceKind::Deliver)) {
      trace_.emit(t, obs::TraceKind::Deliver, node, p.src, static_cast<std::int64_t>(p.id),
                  p.sendTime.ns(),
                  p.trace ? static_cast<std::int64_t>(p.trace->size()) : 0);
    }
  }
  void notifyForward(Time t, NodeId node, const Packet& p, NodeId nh) {
    if (hooks_.onForward) hooks_.onForward(t, node, p, nh);
    if (observer_) observer_->onForward(t, node, p, nh);
    if (trace_.wants(obs::TraceKind::Forward)) {
      trace_.emit(t, obs::TraceKind::Forward, node, nh, static_cast<std::int64_t>(p.id), p.ttl,
                  p.dst);
    }
  }
  void notifyOriginate(Time t, NodeId node, const Packet& p) {
    if (observer_) observer_->onOriginate(t, node, p);
    if (trace_.wants(obs::TraceKind::Originate)) {
      trace_.emit(t, obs::TraceKind::Originate, node, p.dst, static_cast<std::int64_t>(p.id));
    }
  }
  void notifyRouteChange(Time t, NodeId node, NodeId dst, NodeId oldNh, NodeId newNh) {
    if (hooks_.onRouteChange) hooks_.onRouteChange(t, node, dst, oldNh, newNh);
    if (observer_) observer_->onRouteChange(t, node, dst, oldNh, newNh);
    if (trace_.wants(obs::TraceKind::RouteChange)) {
      trace_.emit(t, obs::TraceKind::RouteChange, node, kInvalidNode, dst, oldNh, newNh);
    }
  }
  void notifyControlSend(Time t, NodeId from, NodeId to, const ControlPayload& payload) {
    if (hooks_.onControlSend) hooks_.onControlSend(t, from, to, payload);
    if (observer_) observer_->onControlSend(t, from, to, payload);
    if (trace_.wants(obs::TraceKind::ControlSend)) {
      trace_.emit(t, obs::TraceKind::ControlSend, from, to,
                  static_cast<std::int64_t>(payload.sizeBytes()));
    }
  }
  void notifyLinkTransmit(Time t, NodeId from, NodeId to, bool linkUp) {
    if (observer_) observer_->onLinkTransmit(t, from, to, linkUp);
  }
  void notifyLinkStateChange(Time t, NodeId a, NodeId b, bool up) {
    if (observer_) observer_->onLinkStateChange(t, a, b, up);
    trace_.emit(t, up ? obs::TraceKind::LinkUp : obs::TraceKind::LinkDown, a, b);
  }

  /// Create a node; ids are dense and assigned in creation order.
  NodeId addNode();
  Link& addLink(NodeId a, NodeId b, const LinkConfig& cfg);

  [[nodiscard]] Node& node(NodeId id) { return *nodes_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const Node& node(NodeId id) const { return *nodes_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] std::size_t nodeCount() const { return nodes_.size(); }
  [[nodiscard]] const std::vector<std::unique_ptr<Link>>& links() const { return links_; }
  [[nodiscard]] Link* findLink(NodeId a, NodeId b) const;

  /// Size every FIB to the final node count. Call after all addNode calls
  /// and before starting protocols. `ecmp` enables multi-next-hop FIB
  /// entries (protocols install equal-cost alternates, the data plane
  /// spreads flows over them); off by default so single-path behavior —
  /// and every golden digest — is untouched.
  void finalize(bool ecmp = false);

  /// Start every node's routing protocol.
  void startProtocols();

  std::uint64_t nextPacketId() { return nextPacketId_++; }

  /// Shortest path over currently-up links (BFS, unit costs), inclusive of
  /// both endpoints. Empty when unreachable.
  [[nodiscard]] std::vector<NodeId> shortestPathLive(NodeId src, NodeId dst) const;

  /// Hop distance over currently-up links; -1 when unreachable.
  [[nodiscard]] int shortestDistLive(NodeId src, NodeId dst) const;

  /// Walk FIBs from src toward dst. Returns the node sequence; sets *loop
  /// if a node repeats and *blackhole if some node had no route.
  [[nodiscard]] std::vector<NodeId> fibWalk(NodeId src, NodeId dst, bool* loop = nullptr,
                                            bool* blackhole = nullptr) const;

 private:
  Scheduler& sched_;
  Rng rng_;
  obs::Tracer trace_;
  NetworkHooks hooks_;
  NetworkObserver* observer_ = nullptr;
  HelloDetector* detector_ = nullptr;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::uint64_t nextPacketId_ = 1;
};

}  // namespace rcsim
