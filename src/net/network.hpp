#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/types.hpp"
#include "sim/logging.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace rcsim {

/// Observation points used by the stats layer. All hooks are optional.
struct NetworkHooks {
  std::function<void(Time, NodeId where, const Packet&, DropReason)> onDrop;
  std::function<void(Time, NodeId, const Packet&)> onDeliver;
  std::function<void(Time, NodeId, const Packet&, NodeId nextHop)> onForward;
  std::function<void(Time, NodeId node, NodeId dst, NodeId oldNh, NodeId newNh)> onRouteChange;
  /// Every routing/transport payload handed to a link (sent or not —
  /// fires before any queue/down-link drop). Feeds routing-load accounting.
  std::function<void(Time, NodeId from, NodeId to, const ControlPayload&)> onControlSend;
};

/// Owns every node and link of one simulated network and wires them to a
/// scheduler. Also provides the topology queries (live shortest paths, FIB
/// walks) the convergence metrics are built on.
class Network {
 public:
  Network(Scheduler& sched, Rng rng);
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] Scheduler& scheduler() { return sched_; }
  [[nodiscard]] TraceLog& trace() { return trace_; }
  [[nodiscard]] NetworkHooks& hooks() { return hooks_; }

  /// Create a node; ids are dense and assigned in creation order.
  NodeId addNode();
  Link& addLink(NodeId a, NodeId b, const LinkConfig& cfg);

  [[nodiscard]] Node& node(NodeId id) { return *nodes_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] const Node& node(NodeId id) const { return *nodes_[static_cast<std::size_t>(id)]; }
  [[nodiscard]] std::size_t nodeCount() const { return nodes_.size(); }
  [[nodiscard]] const std::vector<std::unique_ptr<Link>>& links() const { return links_; }
  [[nodiscard]] Link* findLink(NodeId a, NodeId b) const;

  /// Size every FIB to the final node count. Call after all addNode calls
  /// and before starting protocols.
  void finalize();

  /// Start every node's routing protocol.
  void startProtocols();

  std::uint64_t nextPacketId() { return nextPacketId_++; }

  /// Shortest path over currently-up links (BFS, unit costs), inclusive of
  /// both endpoints. Empty when unreachable.
  [[nodiscard]] std::vector<NodeId> shortestPathLive(NodeId src, NodeId dst) const;

  /// Hop distance over currently-up links; -1 when unreachable.
  [[nodiscard]] int shortestDistLive(NodeId src, NodeId dst) const;

  /// Walk FIBs from src toward dst. Returns the node sequence; sets *loop
  /// if a node repeats and *blackhole if some node had no route.
  [[nodiscard]] std::vector<NodeId> fibWalk(NodeId src, NodeId dst, bool* loop = nullptr,
                                            bool* blackhole = nullptr) const;

 private:
  Scheduler& sched_;
  Rng rng_;
  TraceLog trace_;
  NetworkHooks hooks_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::uint64_t nextPacketId_ = 1;
};

}  // namespace rcsim
