// rcsim — command-line driver for the simulator.
//
// Run one configuration over N seeds and print a summary, CSV rows, or a
// per-second series. Every ScenarioConfig field is reachable through
// key=value flags (see core/options.hpp for the full list).
//
//   rcsim [key=value ...] [--runs=N] [--threads=K] [--format=table|csv|series]
//
// Examples:
//   rcsim protocol=RIP degree=3 --runs=100
//   rcsim protocol=BGP3 degree=5 failures=3 fail-spacing=5 --format=csv
//   rcsim protocol=DBF topology=random random.avg-degree=4 --format=series
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>

#include "core/cli.hpp"
#include "core/options.hpp"
#include "core/runner.hpp"

namespace {

using rcsim::cli::parsePositiveInt;  // strict: "--runs=abc" throws, no silent atoi 0

void printUsage() {
  std::printf(
      "usage: rcsim [key=value ...] [--runs=N] [--threads=K]\n"
      "             [--format=table|csv|series]\n"
      "scenario keys: protocol topology degree rows cols random.nodes\n"
      "  random.avg-degree seed flows traffic rate bytes ttl window\n"
      "  traffic-start traffic-stop failures fail-at fail-spacing\n"
      "  repair-after no-failure end-at bandwidth prop-delay-ms queue\n"
      "  detect-ms dv.* bgp.* ls.*  (see src/core/options.hpp)\n");
}

void printTable(const rcsim::Aggregate& a, int runs) {
  std::printf("runs                      : %d\n", runs);
  std::printf("packets sent (mean)       : %.1f\n", a.sent);
  std::printf("packets delivered (mean)  : %.1f\n", a.delivered);
  std::printf("drops no-route (mean)     : %.2f\n", a.dropsNoRoute);
  std::printf("drops ttl-expired (mean)  : %.2f\n", a.dropsTtl);
  std::printf("drops other (mean)        : %.2f\n", a.dropsOther);
  std::printf("fwd-path convergence (s)  : %.3f\n", a.forwardingConvergenceSec);
  std::printf("routing convergence (s)   : %.3f\n", a.routingConvergenceSec);
  std::printf("transient paths (mean)    : %.2f\n", a.transientPaths);
  std::printf("runs with a loop          : %.0f%%\n", 100.0 * a.loopFraction);
}

void printCsv(const std::vector<rcsim::RunResult>& results) {
  std::printf(
      "seed,sent,delivered,drop_no_route,drop_ttl,drop_other,fwd_conv_s,"
      "rt_conv_s,transient_paths,saw_loop,control_msgs,tcp_goodput\n");
  for (const auto& r : results) {
    std::printf("%llu,%llu,%llu,%llu,%llu,%llu,%.4f,%.4f,%d,%d,%llu,%llu\n",
                static_cast<unsigned long long>(r.seed),
                static_cast<unsigned long long>(r.sent),
                static_cast<unsigned long long>(r.data.delivered),
                static_cast<unsigned long long>(r.dataAfterFailure.dropNoRoute),
                static_cast<unsigned long long>(r.dataAfterFailure.dropTtl),
                static_cast<unsigned long long>(r.dataAfterFailure.dropQueue +
                                                r.dataAfterFailure.dropLinkDown +
                                                r.dataAfterFailure.dropInFlightCut),
                r.forwardingConvergenceSec, r.routingConvergenceSec, r.transientPaths,
                r.sawLoop ? 1 : 0, static_cast<unsigned long long>(r.controlMessages),
                static_cast<unsigned long long>(r.tcpGoodputPackets));
  }
}

void printSeries(const rcsim::Aggregate& a) {
  std::printf("rel_sec,throughput_pps,mean_delay_s\n");
  for (int rel = -20; rel <= 120; ++rel) {
    const int sec = a.failSec + rel;
    if (sec < 0 || static_cast<std::size_t>(sec) >= a.throughput.size()) continue;
    std::printf("%d,%.2f,%.5f\n", rel, a.throughput[static_cast<std::size_t>(sec)],
                a.meanDelay[static_cast<std::size_t>(sec)]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rcsim;

  ScenarioConfig cfg;
  int runs = defaultRunCount(10);
  int threads = 0;
  std::string format = "table";

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "-h" || arg == "--help") {
        printUsage();
        return 0;
      }
      if (arg.rfind("--runs=", 0) == 0) {
        runs = parsePositiveInt(arg.substr(7), "--runs");
      } else if (arg.rfind("--threads=", 0) == 0) {
        threads = parsePositiveInt(arg.substr(10), "--threads");
      } else if (arg.rfind("--format=", 0) == 0) {
        format = arg.substr(9);
      } else {
        applyOptionString(cfg, arg);
      }
    }
    if (runs < 1 || (format != "table" && format != "csv" && format != "series")) {
      printUsage();
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    printUsage();
    return 2;
  }

  // Config echo goes to stderr so `rcsim ... > data.txt` captures only the
  // table (same convention as rcsim_bench's banners).
  if (format == "table") {
    std::fprintf(stderr, "# rcsim");
    for (const auto& opt : describeOptions(cfg)) std::fprintf(stderr, " %s", opt.c_str());
    std::fprintf(stderr, "\n");
  }

  const auto results = runMany(cfg, runs, cfg.seed, threads);
  const auto agg = Aggregate::over(results);
  if (format == "table") {
    printTable(agg, runs);
  } else if (format == "csv") {
    printCsv(results);
  } else {
    printSeries(agg);
  }
  return 0;
}
