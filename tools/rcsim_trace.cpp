// rcsim-trace — structured trace capture, replay and forensics, in the
// spirit of the paper's §2 methodology ("studying the forwarding and
// routing trace files, thus we can identify the causes of routing loops in
// each circumstance").
//
// Modes:
//   rcsim-trace [key=value ...] [--from=SEC] [--to=SEC] [--kinds=...]
//       Live mode: run one scenario and print a human-readable event log.
//   rcsim-trace [key=value ...] --record=FILE
//       Run one scenario with full-fidelity typed tracing into an
//       rcsim-trace-v1 JSONL file (CRC-framed, torn-tail safe).
//   rcsim-trace --replay=FILE [--from=SEC] [--to=SEC]
//       Reconstruct the transient-path sequence, loop / black-hole windows
//       and MRAI timeline from a recorded trace — no simulation.
//   rcsim-trace [key=value ...] --selftest
//       Run a scenario with tracing on, replay the captured stream, and
//       verify the reconstruction agrees with the live PathTracer exactly.
//       Exit 0 on agreement, 1 on divergence.
//
// Live-mode events (tab-separated): time  kind  detail
//   rt    <node> dst=<d> <old> -> <new>        FIB change
//   fwd   <node> -> <next>  pkt=<id> ttl=<n>   data-plane forwarding
//   drop  <node> pkt=<id> reason=<r>           any packet drop
//   del   <node> pkt=<id> delay=<s> hops=<n>   delivery at the receiver
//   fail  link up/down from the failure detector
//   path  sender->receiver forwarding path snapshots (loops flagged)
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <set>
#include <string>

#include "core/cli.hpp"
#include "core/options.hpp"
#include "core/scenario.hpp"
#include "obs/replay.hpp"
#include "obs/trace_io.hpp"

namespace {

using namespace rcsim;

JsonValue traceMeta(Scenario& sc, const ScenarioConfig& cfg) {
  JsonValue meta = JsonValue::makeObject();
  meta.object["src"] = JsonValue::makeNumber(sc.sender());
  meta.object["dst"] = JsonValue::makeNumber(sc.receiver());
  meta.object["nodes"] = JsonValue::makeNumber(static_cast<double>(sc.network().nodeCount()));
  meta.object["seed"] = JsonValue::makeNumber(static_cast<double>(cfg.seed));
  return meta;
}

void printPathEvent(Time t, const std::vector<NodeId>& path, bool loop, bool blackhole) {
  std::printf("%12.6f\tpath\t%s", t.toSeconds(), loop ? "LOOP " : (blackhole ? "BLACKHOLE " : ""));
  for (std::size_t i = 0; i < path.size(); ++i) std::printf("%s%d", i ? "->" : "", path[i]);
  std::printf("\n");
}

void printWindows(const char* label, const std::vector<obs::ReplayWindow>& ws) {
  for (const auto& w : ws) {
    if (w.openAtEnd) {
      std::printf("window\t%s\t%.6f -> (open at end of trace)\n", label, w.begin.toSeconds());
    } else {
      std::printf("window\t%s\t%.6f -> %.6f (%.6f s)\n", label, w.begin.toSeconds(),
                  w.end.toSeconds(), w.seconds());
    }
  }
}

int runReplay(const std::string& path, double fromSec, double toSec) {
  const obs::TraceFile file = obs::readTraceFile(path);
  if (file.corrupt > 0) {
    std::fprintf(stderr, "warning: skipped %zu corrupt line(s)\n", file.corrupt);
  }
  const obs::ReplayResult r = obs::replayTrace(file);
  const Time from = Time::seconds(fromSec);
  const Time to = Time::seconds(toSec);

  std::printf("trace\t%s\tevents=%zu corrupt=%zu digest=%s\n", path.c_str(), file.events.size(),
              file.corrupt, obs::traceDigest(file.events).c_str());
  for (int k = 0; k < obs::kTraceKindCount; ++k) {
    if (r.kindCounts[static_cast<std::size_t>(k)] == 0) continue;
    std::printf("count\t%s\t%llu\n", toString(static_cast<obs::TraceKind>(k)),
                static_cast<unsigned long long>(r.kindCounts[static_cast<std::size_t>(k)]));
  }
  for (const auto& e : r.pathEvents) {
    if (e.t >= from && e.t <= to) printPathEvent(e.t, e.path, e.loop, e.blackhole);
  }
  printWindows("loop", r.loopWindows);
  printWindows("blackhole", r.blackholeWindows);
  for (const auto& ev : r.mraiTimeline) {
    if (ev.t < from || ev.t > to) continue;
    switch (ev.kind) {
      case obs::TraceKind::MraiArm: {
        const std::string dst = ev.z >= 0 ? " dst=" + std::to_string(ev.z) : "";
        std::printf("%12.6f\tmrai\tnode=%d peer=%d armed for %.3f s%s\n", ev.t.toSeconds(), ev.a,
                    ev.b, static_cast<double>(ev.x) * 1e-9, dst.c_str());
        break;
      }
      case obs::TraceKind::MraiFire:
        std::printf("%12.6f\tmrai\tnode=%d peer=%d fired, pending=%lld\n", ev.t.toSeconds(), ev.a,
                    ev.b, static_cast<long long>(ev.x));
        break;
      case obs::TraceKind::BgpAdvert:
        std::printf("%12.6f\tbgp\tnode=%d -> peer=%d advert dst=%lld pathlen=%lld\n",
                    ev.t.toSeconds(), ev.a, ev.b, static_cast<long long>(ev.x),
                    static_cast<long long>(ev.y));
        break;
      case obs::TraceKind::BgpWithdraw:
        std::printf("%12.6f\tbgp\tnode=%d -> peer=%d withdraw dst=%lld\n", ev.t.toSeconds(), ev.a,
                    ev.b, static_cast<long long>(ev.x));
        break;
      default: break;
    }
  }
  return 0;
}

int runSelftest(const ScenarioConfig& cfg) {
  Scenario sc{cfg};
  obs::MemoryTraceSink sink;
  // Chain behind the scenario's online ConvergenceAnalyzer (when enabled)
  // so the selftest also proves the analyzer forwards the stream verbatim.
  sc.attachTraceSink(&sink);
  sc.run();

  obs::ReplayOptions opt;
  opt.src = sc.sender();
  opt.dst = sc.receiver();
  opt.nodeCount = sc.network().nodeCount();
  const obs::ReplayResult r = obs::replayTrace(sink.events(), opt);

  const auto* tracer = sc.stats().tracer();
  if (tracer == nullptr) {
    std::fprintf(stderr, "selftest: scenario has no path tracer\n");
    return 1;
  }
  const auto& live = tracer->events();
  if (live.size() != r.pathEvents.size()) {
    std::fprintf(stderr, "selftest: FAIL — live %zu path events, replay %zu\n", live.size(),
                 r.pathEvents.size());
    return 1;
  }
  for (std::size_t i = 0; i < live.size(); ++i) {
    const auto& a = live[i];
    const auto& b = r.pathEvents[i];
    if (a.t != b.t || a.path != b.path || a.loop != b.loop || a.blackhole != b.blackhole) {
      std::fprintf(stderr, "selftest: FAIL — path event %zu diverges at t=%.9f\n", i,
                   a.t.toSeconds());
      return 1;
    }
  }
  // Third implementation of the same reconstruction: the streaming
  // ConvergenceAnalyzer that watched the run live must agree with the
  // offline replay element-wise (the fuzzer enforces this on random
  // scenarios; the selftest pins it on the canonical ones).
  if (const auto* anatomy = sc.convergenceAnalyzer()) {
    const auto& online = anatomy->report();
    if (online.pathEvents != r.pathEvents || online.loopWindows != r.loopWindows ||
        online.blackholeWindows != r.blackholeWindows || online.kindCounts != r.kindCounts ||
        online.delivered != r.delivered || online.dropped != r.dropped) {
      std::fprintf(stderr, "selftest: FAIL — online analyzer diverges from offline replay\n");
      return 1;
    }
  }
  std::printf("selftest: OK — %zu path events, %zu trace events, digest=%s\n", live.size(),
              sink.events().size(), obs::traceDigest(sink.events()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rcsim;

  ScenarioConfig cfg;
  double fromSec = 395.0;
  double toSec = 460.0;
  std::set<std::string> kinds{"rt", "fwd", "drop", "del", "fail", "path"};
  std::string recordPath;
  std::string replayPath;
  bool selftest = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "-h" || arg == "--help") {
        std::printf("usage: rcsim-trace [key=value ...] [--from=SEC] [--to=SEC]"
                    " [--kinds=rt,fwd,drop,del,fail,path]\n"
                    "       rcsim-trace [key=value ...] --record=FILE\n"
                    "       rcsim-trace --replay=FILE [--from=SEC] [--to=SEC]\n"
                    "       rcsim-trace [key=value ...] --selftest\n");
        return 0;
      }
      if (arg.rfind("--from=", 0) == 0) {
        fromSec = cli::parseFiniteDouble(arg.substr(7), "--from");
      } else if (arg.rfind("--to=", 0) == 0) {
        toSec = cli::parseFiniteDouble(arg.substr(5), "--to");
      } else if (arg.rfind("--record=", 0) == 0) {
        recordPath = arg.substr(9);
        if (recordPath.empty()) throw std::runtime_error("--record needs a file path");
      } else if (arg.rfind("--replay=", 0) == 0) {
        replayPath = arg.substr(9);
        if (replayPath.empty()) throw std::runtime_error("--replay needs a file path");
      } else if (arg == "--selftest") {
        selftest = true;
      } else if (arg.rfind("--kinds=", 0) == 0) {
        kinds.clear();
        std::string list = arg.substr(8);
        std::size_t pos = 0;
        while (pos != std::string::npos) {
          const auto comma = list.find(',', pos);
          kinds.insert(list.substr(pos, comma == std::string::npos ? comma : comma - pos));
          pos = comma == std::string::npos ? comma : comma + 1;
        }
      } else {
        applyOptionString(cfg, arg);
      }
    }

    if (!replayPath.empty()) return runReplay(replayPath, fromSec, toSec);
    if (selftest) return runSelftest(cfg);

    if (!recordPath.empty()) {
      Scenario sc{cfg};
      obs::FileTraceSink sink{recordPath, traceMeta(sc, cfg)};
      // Chained behind the online analyzer (when enabled): the recorded
      // stream is verbatim either way, and rcsim-inspect --episodes on the
      // file reproduces the analyzer's numbers from the same events.
      sc.attachTraceSink(&sink);
      sc.run();
      sc.attachTraceSink(nullptr);
      sink.close();
      std::printf("recorded %llu events to %s\n",
                  static_cast<unsigned long long>(sink.eventsWritten()), recordPath.c_str());
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  Scenario sc{cfg};
  const Time from = Time::seconds(fromSec);
  const Time to = Time::seconds(toSec);
  auto inWindow = [&](Time t) { return t >= from && t <= to; };
  auto want = [&](const char* k) { return kinds.count(k) > 0; };

  // The StatsCollector owns the network hooks; wrap them so both the stats
  // and the trace output see every event.
  auto& hooks = sc.network().hooks();
  const auto prevRoute = hooks.onRouteChange;
  hooks.onRouteChange = [&, prevRoute](Time t, NodeId n, NodeId d, NodeId o, NodeId nw) {
    if (prevRoute) prevRoute(t, n, d, o, nw);
    if (want("rt") && inWindow(t)) {
      std::printf("%12.6f\trt\tnode=%d dst=%d %d -> %d\n", t.toSeconds(), n, d, o, nw);
    }
  };
  const auto prevForward = hooks.onForward;
  hooks.onForward = [&, prevForward](Time t, NodeId n, const Packet& p, NodeId nh) {
    if (prevForward) prevForward(t, n, p, nh);
    if (want("fwd") && inWindow(t) && p.kind == PacketKind::Data) {
      std::printf("%12.6f\tfwd\t%d -> %d  pkt=%llu ttl=%d\n", t.toSeconds(), n, nh,
                  static_cast<unsigned long long>(p.id), p.ttl);
    }
  };
  const auto prevDrop = hooks.onDrop;
  hooks.onDrop = [&, prevDrop](Time t, NodeId n, const Packet& p, DropReason r) {
    if (prevDrop) prevDrop(t, n, p, r);
    if (want("drop") && inWindow(t) && p.kind == PacketKind::Data) {
      std::printf("%12.6f\tdrop\tnode=%d pkt=%llu reason=%s\n", t.toSeconds(), n,
                  static_cast<unsigned long long>(p.id), toString(r));
    }
  };
  const auto prevDeliver = hooks.onDeliver;
  hooks.onDeliver = [&, prevDeliver](Time t, NodeId n, const Packet& p) {
    if (prevDeliver) prevDeliver(t, n, p);
    if (want("del") && inWindow(t) && p.kind == PacketKind::Data) {
      std::printf("%12.6f\tdel\tnode=%d pkt=%llu delay=%.6f hops=%zu\n", t.toSeconds(), n,
                  static_cast<unsigned long long>(p.id), (t - p.sendTime).toSeconds(),
                  p.trace ? p.trace->size() - 1 : 0);
    }
  };
  // Link up/down transitions arrive through the typed tracer's Failure
  // channel now (there are no string traces left to subscribe to).
  class FailPrinter final : public obs::TraceSink {
   public:
    FailPrinter(Time from, Time to) : from_{from}, to_{to} {}
    void onTraceEvent(const obs::TraceEvent& ev) override {
      if (ev.t < from_ || ev.t > to_) return;
      std::printf("%12.6f\tfail\tlink (%d,%d) %s\n", ev.t.toSeconds(), ev.a, ev.b,
                  ev.kind == obs::TraceKind::LinkUp ? "recovered" : "failed");
    }

   private:
    Time from_, to_;
  };
  FailPrinter failPrinter{from, to};
  if (want("fail")) {
    sc.network().trace().setSink(&failPrinter);
    sc.network().trace().setCategoryMask(1u << static_cast<unsigned>(obs::TraceCategory::Failure));
  }

  sc.run();

  if (want("path")) {
    for (const auto& e : sc.stats().tracer()->events()) {
      if (!inWindow(e.t)) continue;
      printPathEvent(e.t, e.path, e.loop, e.blackhole);
    }
  }
  return 0;
}
