// rcsim-trace — dump the routing & forwarding trace of one simulation run,
// in the spirit of the paper's §2 methodology ("studying the forwarding and
// routing trace files, thus we can identify the causes of routing loops in
// each circumstance").
//
//   rcsim-trace [key=value ...] [--from=SEC] [--to=SEC] [--kinds=rt,fwd,drop,fail]
//
// Events (tab-separated): time  kind  detail
//   rt    <node> dst=<d> <old> -> <new>        FIB change
//   fwd   <node> -> <next>  pkt=<id> ttl=<n>   data-plane forwarding
//   drop  <node> pkt=<id> reason=<r>           any packet drop
//   del   <node> pkt=<id> delay=<s> hops=<n>   delivery at the receiver
//   fail  link events from the failure detector
//   path  sender->receiver forwarding path snapshots (loops flagged)
#include <cstdio>
#include <cstring>
#include <exception>
#include <set>
#include <string>

#include "core/options.hpp"
#include "core/scenario.hpp"

int main(int argc, char** argv) {
  using namespace rcsim;

  ScenarioConfig cfg;
  double fromSec = 395.0;
  double toSec = 460.0;
  std::set<std::string> kinds{"rt", "fwd", "drop", "del", "fail", "path"};

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "-h" || arg == "--help") {
        std::printf("usage: rcsim-trace [key=value ...] [--from=SEC] [--to=SEC]"
                    " [--kinds=rt,fwd,drop,del,fail,path]\n");
        return 0;
      }
      if (arg.rfind("--from=", 0) == 0) {
        fromSec = std::atof(arg.c_str() + 7);
      } else if (arg.rfind("--to=", 0) == 0) {
        toSec = std::atof(arg.c_str() + 5);
      } else if (arg.rfind("--kinds=", 0) == 0) {
        kinds.clear();
        std::string list = arg.substr(8);
        std::size_t pos = 0;
        while (pos != std::string::npos) {
          const auto comma = list.find(',', pos);
          kinds.insert(list.substr(pos, comma == std::string::npos ? comma : comma - pos));
          pos = comma == std::string::npos ? comma : comma + 1;
        }
      } else {
        applyOptionString(cfg, arg);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  Scenario sc{cfg};
  const Time from = Time::seconds(fromSec);
  const Time to = Time::seconds(toSec);
  auto inWindow = [&](Time t) { return t >= from && t <= to; };
  auto want = [&](const char* k) { return kinds.count(k) > 0; };

  // The StatsCollector owns the network hooks; wrap them so both the stats
  // and the trace output see every event.
  auto& hooks = sc.network().hooks();
  const auto prevRoute = hooks.onRouteChange;
  hooks.onRouteChange = [&, prevRoute](Time t, NodeId n, NodeId d, NodeId o, NodeId nw) {
    if (prevRoute) prevRoute(t, n, d, o, nw);
    if (want("rt") && inWindow(t)) {
      std::printf("%12.6f\trt\tnode=%d dst=%d %d -> %d\n", t.toSeconds(), n, d, o, nw);
    }
  };
  const auto prevForward = hooks.onForward;
  hooks.onForward = [&, prevForward](Time t, NodeId n, const Packet& p, NodeId nh) {
    if (prevForward) prevForward(t, n, p, nh);
    if (want("fwd") && inWindow(t) && p.kind == PacketKind::Data) {
      std::printf("%12.6f\tfwd\t%d -> %d  pkt=%llu ttl=%d\n", t.toSeconds(), n, nh,
                  static_cast<unsigned long long>(p.id), p.ttl);
    }
  };
  const auto prevDrop = hooks.onDrop;
  hooks.onDrop = [&, prevDrop](Time t, NodeId n, const Packet& p, DropReason r) {
    if (prevDrop) prevDrop(t, n, p, r);
    if (want("drop") && inWindow(t) && p.kind == PacketKind::Data) {
      std::printf("%12.6f\tdrop\tnode=%d pkt=%llu reason=%s\n", t.toSeconds(), n,
                  static_cast<unsigned long long>(p.id), toString(r));
    }
  };
  const auto prevDeliver = hooks.onDeliver;
  hooks.onDeliver = [&, prevDeliver](Time t, NodeId n, const Packet& p) {
    if (prevDeliver) prevDeliver(t, n, p);
    if (want("del") && inWindow(t) && p.kind == PacketKind::Data) {
      std::printf("%12.6f\tdel\tnode=%d pkt=%llu delay=%.6f hops=%zu\n", t.toSeconds(), n,
                  static_cast<unsigned long long>(p.id), (t - p.sendTime).toSeconds(),
                  p.trace ? p.trace->size() - 1 : 0);
    }
  };
  if (want("fail")) {
    sc.network().trace().setSink([&](Time t, TraceCategory cat, const std::string& msg) {
      if (cat == TraceCategory::Failure && inWindow(t)) {
        std::printf("%12.6f\tfail\t%s\n", t.toSeconds(), msg.c_str());
      }
    });
  }

  sc.run();

  if (want("path")) {
    for (const auto& e : sc.stats().tracer()->events()) {
      if (!inWindow(e.t)) continue;
      std::printf("%12.6f\tpath\t%s", e.t.toSeconds(),
                  e.loop ? "LOOP " : (e.blackhole ? "BLACKHOLE " : ""));
      for (std::size_t i = 0; i < e.path.size(); ++i) {
        std::printf("%s%d", i ? "->" : "", e.path[i]);
      }
      std::printf("\n");
    }
  }
  return 0;
}
