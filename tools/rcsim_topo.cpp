// rcsim-topo — inspect the topology families (the paper's Figure 2).
//
// Prints, for a chosen mesh degree (or a random graph), the construction's
// link rules as an ASCII adjacency picture plus the degree histogram,
// diameter and alternate-path supply — the quantities §4.4 reasons about.
//
//   rcsim-topo [degree]          one regular mesh in detail
//   rcsim-topo --sweep           summary table for degrees 3..16
//   rcsim-topo --random N AVG S  a random graph's summary
//   rcsim-topo --named NAME      a graph from the embedded library
//   rcsim-topo --file PATH       a graph loaded from an rcsim-topo-v1 file
//   rcsim-topo ... --dump        emit canonical rcsim-topo-v1 text instead
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <string>

#include "topo/graph_algo.hpp"
#include "topo/loader.hpp"
#include "topo/topology.hpp"

namespace {

using namespace rcsim;

void usage(std::FILE* to) {
  std::string names;
  for (const auto& n : namedTopologyNames()) {
    if (!names.empty()) names += ", ";
    names += n;
  }
  std::fprintf(to,
               "usage: rcsim-topo [degree]          one regular mesh in detail (default 5)\n"
               "       rcsim-topo --sweep           summary table for degrees 3..16\n"
               "       rcsim-topo --random N AVG S  random graph: N nodes, average degree\n"
               "                                    AVG, seed S\n"
               "       rcsim-topo --named NAME      embedded real-world graph (%s)\n"
               "       rcsim-topo --file PATH       graph from an rcsim-topo-v1 file\n"
               "       rcsim-topo ... --dump        print canonical rcsim-topo-v1 text\n"
               "                                    instead of the summary\n"
               "       rcsim-topo -h | --help       this message\n",
               names.c_str());
}

/// Strict numeric parsing — "--bogus" and "4x" are usage errors, not the
/// silent zeros atoi would hand the mesh builder.
long parseLong(const char* text, const char* what, long lo, long hi) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || v < lo || v > hi) {
    std::fprintf(stderr, "rcsim-topo: %s got '%s', expected an integer in [%ld, %ld]\n\n", what,
                 text, lo, hi);
    usage(stderr);
    std::exit(2);
  }
  return v;
}

double parseDouble(const char* text, const char* what, double lo, double hi) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0' || v < lo || v > hi) {
    std::fprintf(stderr, "rcsim-topo: %s got '%s', expected a number in [%g, %g]\n\n", what, text,
                 lo, hi);
    usage(stderr);
    std::exit(2);
  }
  return v;
}

void summarize(const Topology& topo, const char* label) {
  std::map<int, int> histogram;
  for (NodeId n = 0; n < topo.nodeCount; ++n) ++histogram[topo.degreeOf(n)];
  std::printf("%-12s nodes=%d edges=%zu diameter=%d connected=%s degrees{", label,
              topo.nodeCount, topo.edges.size(), graphDiameter(topo),
              topo.isConnected() ? "yes" : "NO");
  bool first = true;
  for (const auto& [deg, count] : histogram) {
    std::printf("%s%d:%d", first ? "" : " ", deg, count);
    first = false;
  }
  std::printf("}\n");
}

void drawMesh(const MeshSpec& spec) {
  const auto topo = makeRegularMesh(spec);
  std::printf("regular mesh %dx%d, target interior degree %d "
              "(paper Figure 2 analogue)\n\n",
              spec.rows, spec.cols, spec.degree);
  // Node grid with horizontal/vertical links drawn; diagonals and skip
  // links listed because ASCII art only goes so far.
  for (int r = 0; r < spec.rows; ++r) {
    for (int c = 0; c < spec.cols; ++c) {
      std::printf("%2d", gridId(r, c, spec.cols));
      if (c + 1 < spec.cols) {
        std::printf(topo.hasEdge(gridId(r, c, spec.cols), gridId(r, c + 1, spec.cols)) ? "--"
                                                                                       : "  ");
      }
    }
    std::printf("\n");
    if (r + 1 < spec.rows) {
      for (int c = 0; c < spec.cols; ++c) {
        std::printf(topo.hasEdge(gridId(r, c, spec.cols), gridId(r + 1, c, spec.cols)) ? " |"
                                                                                       : "  ");
        if (c + 1 < spec.cols) std::printf("  ");
      }
      std::printf("\n");
    }
  }
  int other = 0;
  for (const auto& [a, b] : topo.edges) {
    const int dr = b / spec.cols - a / spec.cols;
    const int dc = b % spec.cols - a % spec.cols;
    if ((dr == 0 && dc == 1) || (dr == 1 && dc == 0)) continue;
    ++other;
  }
  std::printf("\n(+%d diagonal/skip links not drawn)\n\n", other);
  summarize(topo, ("degree-" + std::to_string(spec.degree)).c_str());

  // §4.4's key quantity: alternate shortest first hops corner-to-corner.
  const NodeId a = gridId(0, 0, spec.cols);
  const NodeId b = gridId(spec.rows - 1, spec.cols - 1, spec.cols);
  std::printf("shortest first-hop choices %d -> %d: %d\n", a, b, shortestFirstHops(topo, a, b));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && (std::strcmp(argv[1], "-h") == 0 || std::strcmp(argv[1], "--help") == 0)) {
    usage(stdout);
    return 0;
  }
  if (argc > 1 && std::strcmp(argv[1], "--sweep") == 0) {
    if (argc > 2) {
      std::fprintf(stderr, "rcsim-topo: --sweep takes no further arguments\n\n");
      usage(stderr);
      return 2;
    }
    std::printf("the regular mesh family (7x7):\n");
    for (int degree = 3; degree <= 16; ++degree) {
      summarize(makeRegularMesh(MeshSpec{7, 7, degree}),
                ("degree-" + std::to_string(degree)).c_str());
    }
    return 0;
  }
  if (argc > 1 && (std::strcmp(argv[1], "--named") == 0 || std::strcmp(argv[1], "--file") == 0)) {
    const bool fromFile = std::strcmp(argv[1], "--file") == 0;
    const bool dump = argc == 4 && std::strcmp(argv[3], "--dump") == 0;
    if (argc < 3 || (argc == 4 && !dump) || argc > 4) {
      std::fprintf(stderr, "rcsim-topo: %s takes a %s plus an optional --dump\n\n", argv[1],
                   fromFile ? "path" : "graph name");
      usage(stderr);
      return 2;
    }
    try {
      const TopologyDoc doc = fromFile ? loadTopologyFile(argv[2]) : namedTopology(argv[2]);
      if (dump) {
        std::fputs(dumpTopology(doc).c_str(), stdout);
      } else {
        summarize(doc.topo, doc.name.empty() ? argv[2] : doc.name.c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "rcsim-topo: %s\n", e.what());
      return 1;
    }
    return 0;
  }
  if (argc > 1 && std::strcmp(argv[1], "--random") == 0) {
    if (argc > 5) {
      std::fprintf(stderr, "rcsim-topo: --random takes at most N AVG S\n\n");
      usage(stderr);
      return 2;
    }
    RandomGraphSpec spec;
    if (argc > 2) spec.nodes = static_cast<int>(parseLong(argv[2], "--random N", 2, 100000));
    if (argc > 3) spec.avgDegree = parseDouble(argv[3], "--random AVG", 1.0, 1000.0);
    if (argc > 4) {
      spec.seed = static_cast<std::uint64_t>(parseLong(argv[4], "--random S", 0, 1000000000L));
    }
    summarize(makeRandomTopology(spec), "random");
    return 0;
  }
  if (argc > 2) {
    std::fprintf(stderr, "rcsim-topo: too many arguments\n\n");
    usage(stderr);
    return 2;
  }
  MeshSpec spec;
  spec.degree = argc > 1 ? static_cast<int>(parseLong(argv[1], "degree", 3, 16)) : 5;
  drawMesh(spec);
  return 0;
}
