// rcsim-topo — inspect the topology families (the paper's Figure 2).
//
// Prints, for a chosen mesh degree (or a random graph), the construction's
// link rules as an ASCII adjacency picture plus the degree histogram,
// diameter and alternate-path supply — the quantities §4.4 reasons about.
//
//   rcsim-topo [degree]          one regular mesh in detail
//   rcsim-topo --sweep           summary table for degrees 3..16
//   rcsim-topo --random N AVG S  a random graph's summary
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "topo/graph_algo.hpp"
#include "topo/topology.hpp"

namespace {

using namespace rcsim;

void summarize(const Topology& topo, const char* label) {
  std::map<int, int> histogram;
  for (NodeId n = 0; n < topo.nodeCount; ++n) ++histogram[topo.degreeOf(n)];
  std::printf("%-12s nodes=%d edges=%zu diameter=%d connected=%s degrees{", label,
              topo.nodeCount, topo.edges.size(), graphDiameter(topo),
              topo.isConnected() ? "yes" : "NO");
  bool first = true;
  for (const auto& [deg, count] : histogram) {
    std::printf("%s%d:%d", first ? "" : " ", deg, count);
    first = false;
  }
  std::printf("}\n");
}

void drawMesh(const MeshSpec& spec) {
  const auto topo = makeRegularMesh(spec);
  std::printf("regular mesh %dx%d, target interior degree %d "
              "(paper Figure 2 analogue)\n\n",
              spec.rows, spec.cols, spec.degree);
  // Node grid with horizontal/vertical links drawn; diagonals and skip
  // links listed because ASCII art only goes so far.
  for (int r = 0; r < spec.rows; ++r) {
    for (int c = 0; c < spec.cols; ++c) {
      std::printf("%2d", gridId(r, c, spec.cols));
      if (c + 1 < spec.cols) {
        std::printf(topo.hasEdge(gridId(r, c, spec.cols), gridId(r, c + 1, spec.cols)) ? "--"
                                                                                       : "  ");
      }
    }
    std::printf("\n");
    if (r + 1 < spec.rows) {
      for (int c = 0; c < spec.cols; ++c) {
        std::printf(topo.hasEdge(gridId(r, c, spec.cols), gridId(r + 1, c, spec.cols)) ? " |"
                                                                                       : "  ");
        if (c + 1 < spec.cols) std::printf("  ");
      }
      std::printf("\n");
    }
  }
  int other = 0;
  for (const auto& [a, b] : topo.edges) {
    const int dr = b / spec.cols - a / spec.cols;
    const int dc = b % spec.cols - a % spec.cols;
    if ((dr == 0 && dc == 1) || (dr == 1 && dc == 0)) continue;
    ++other;
  }
  std::printf("\n(+%d diagonal/skip links not drawn)\n\n", other);
  summarize(topo, ("degree-" + std::to_string(spec.degree)).c_str());

  // §4.4's key quantity: alternate shortest first hops corner-to-corner.
  const NodeId a = gridId(0, 0, spec.cols);
  const NodeId b = gridId(spec.rows - 1, spec.cols - 1, spec.cols);
  std::printf("shortest first-hop choices %d -> %d: %d\n", a, b, shortestFirstHops(topo, a, b));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--sweep") == 0) {
    std::printf("the regular mesh family (7x7):\n");
    for (int degree = 3; degree <= 16; ++degree) {
      summarize(makeRegularMesh(MeshSpec{7, 7, degree}),
                ("degree-" + std::to_string(degree)).c_str());
    }
    return 0;
  }
  if (argc > 1 && std::strcmp(argv[1], "--random") == 0) {
    RandomGraphSpec spec;
    if (argc > 2) spec.nodes = std::atoi(argv[2]);
    if (argc > 3) spec.avgDegree = std::atof(argv[3]);
    if (argc > 4) spec.seed = std::strtoull(argv[4], nullptr, 10);
    summarize(makeRandomTopology(spec), "random");
    return 0;
  }
  MeshSpec spec;
  spec.degree = argc > 1 ? std::atoi(argv[1]) : 5;
  drawMesh(spec);
  return 0;
}
