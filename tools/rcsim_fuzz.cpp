// rcsim_fuzz: coverage-guided scenario fuzzing for the convergence
// simulator. Generates random-but-valid scenarios (topology x protocol x
// traffic x multi-event fault plan), runs each in-process under the
// runtime invariant checker and a wall-clock watchdog, keeps a corpus of
// coverage-novel scenarios to mutate, and delta-minimizes every finding
// into a small replayable .scenario reproducer.
//
// Fully deterministic: the same --seed and --budget produce the same
// corpus digest and the same findings, byte for byte.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/harness.hpp"

namespace {

/// Exit-code precedence (strongest wins): 2 usage > 130 interrupted >
/// 4 findings banked > 0 clean. See usage() for the contract.
constexpr int kExitUsage = 2;
constexpr int kExitInterrupted = 130;
constexpr int kExitFindings = 4;

volatile std::sig_atomic_t g_signal = 0;

extern "C" void onSignal(int sig) { g_signal = sig; }

void installSignalHandlers() {
  struct sigaction sa {};
  sa.sa_handler = onSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: rcsim_fuzz [options]\n"
               "       rcsim_fuzz --replay=FILE [--replay=FILE ...]\n"
               "\n"
               "Coverage-guided scenario fuzzing (docs/fuzzing.md).\n"
               "\n"
               "campaign options:\n"
               "  --seed=N          campaign seed (default 1); same seed + budget =>\n"
               "                    identical corpus digest and findings\n"
               "  --budget=N        scenario executions to spend (default 100)\n"
               "  --watchdog=SEC    wall-clock budget per execution (default 5)\n"
               "  --bank=DIR        write minimized reproducers to DIR/*.scenario\n"
               "  --max-findings=N  stop collecting new finding keys after N (default 16)\n"
               "  --no-minimize     bank raw findings without delta-minimization\n"
               "  --hello           force hello-based failure detection on in every\n"
               "                    generated scenario (focuses the detector paths)\n"
               "  --quiet           suppress per-execution progress lines\n"
               "\n"
               "replay mode:\n"
               "  --replay=FILE     replay a banked .scenario file and check the\n"
               "                    recorded '# expect:' outcome still holds\n"
               "\n"
               "exit codes (strongest wins):\n"
               "  2    usage error (nothing was run)\n"
               "  130  interrupted (SIGINT/SIGTERM): in-flight scenario finished,\n"
               "       findings so far are already banked\n"
               "  4    the campaign found (or a replay mismatched) at least one\n"
               "       finding\n"
               "  0    clean: budget exhausted / all replays matched\n");
}

int replayFiles(const std::vector<std::string>& files, double watchdogSec) {
  int mismatches = 0;
  for (const auto& path : files) {
    rcsim::fuzz::ScenarioDoc doc;
    try {
      doc = rcsim::fuzz::loadScenarioFile(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "rcsim_fuzz: %s\n", e.what());
      return kExitUsage;
    }
    const auto outcome = doc.expect == rcsim::fuzz::RunStatus::Nondeterministic
                             ? rcsim::fuzz::checkDeterminism(doc.config, watchdogSec)
                             : rcsim::fuzz::runScenarioOnce(doc.config, watchdogSec);
    const bool statusOk = outcome.status == doc.expect;
    const bool detailOk =
        doc.expectDetail.empty() || outcome.detail.find(doc.expectDetail) != std::string::npos;
    if (statusOk && detailOk) {
      std::printf("%s: ok (%s)\n", path.c_str(), toString(outcome.status));
    } else {
      ++mismatches;
      std::printf("%s: MISMATCH expected %s%s%s, got %s\n", path.c_str(),
                  toString(doc.expect), doc.expectDetail.empty() ? "" : " ",
                  doc.expectDetail.c_str(), toString(outcome.status));
      if (!outcome.detail.empty()) std::printf("  %s\n", outcome.detail.c_str());
    }
    if (g_signal != 0) return kExitInterrupted;
  }
  return mismatches > 0 ? kExitFindings : 0;
}

}  // namespace

int main(int argc, char** argv) {
  installSignalHandlers();

  rcsim::fuzz::FuzzOptions opts;
  bool quiet = false;
  std::vector<std::string> replays;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) { return arg.substr(std::strlen(prefix)); };
    try {
      if (arg == "-h" || arg == "--help") {
        usage(stdout);
        return 0;
      } else if (arg.rfind("--seed=", 0) == 0) {
        opts.seed = rcsim::cli::parseSeed(value("--seed="), "--seed");
      } else if (arg.rfind("--budget=", 0) == 0) {
        opts.budget = rcsim::cli::parsePositiveInt(value("--budget="), "--budget");
      } else if (arg.rfind("--watchdog=", 0) == 0) {
        opts.wallLimitSec = rcsim::cli::parsePositiveSeconds(value("--watchdog="), "--watchdog");
      } else if (arg.rfind("--bank=", 0) == 0) {
        opts.bankDir = value("--bank=");
        if (opts.bankDir.empty()) throw std::invalid_argument("--bank needs a directory");
      } else if (arg.rfind("--max-findings=", 0) == 0) {
        opts.maxFindings =
            rcsim::cli::parsePositiveInt(value("--max-findings="), "--max-findings");
      } else if (arg == "--no-minimize") {
        opts.minimize = false;
      } else if (arg == "--hello") {
        opts.forceHello = true;
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg.rfind("--replay=", 0) == 0) {
        replays.push_back(value("--replay="));
        if (replays.back().empty()) throw std::invalid_argument("--replay needs a file");
      } else {
        std::fprintf(stderr, "rcsim_fuzz: unknown argument '%s'\n\n", arg.c_str());
        usage(stderr);
        return kExitUsage;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "rcsim_fuzz: %s\n", e.what());
      return kExitUsage;
    }
  }

  if (!replays.empty()) return replayFiles(replays, opts.wallLimitSec);

  opts.shouldStop = [] { return g_signal != 0; };
  rcsim::fuzz::FuzzReport report;
  try {
    report = rcsim::fuzz::runFuzzCampaign(opts, quiet ? nullptr : &std::cout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rcsim_fuzz: %s\n", e.what());
    return kExitUsage;
  }

  std::printf("executions:      %d\n", report.executions);
  std::printf("corpus entries:  %d\n", report.corpusEntries);
  std::printf("coverage:        %zu features\n", report.coverageFeatures);
  std::printf("corpus digest:   %s\n", report.corpusDigest.c_str());
  std::printf("findings:        %zu\n", report.findings.size());
  for (const auto& f : report.findings) {
    std::printf("  [%s] exec=%d digest=%s%s%s\n", f.key.c_str(), f.foundAtExecution,
                f.digest.c_str(), f.bankedPath.empty() ? "" : " -> ",
                f.bankedPath.c_str());
  }

  if (report.interrupted) return kExitInterrupted;
  return report.findings.empty() ? 0 : kExitFindings;
}
