// rcsim-inspect — convergence-anatomy queries over recorded traces,
// experiment artifacts and live scenarios. Where rcsim-trace answers
// "what happened, event by event", rcsim-inspect answers the paper's
// question: how did each disruption decompose into detection latency,
// protocol convergence, transient loops, black-holes and per-cause loss.
//
// Modes:
//   rcsim-inspect --trace=FILE --episodes [--json]
//       Per-episode phase breakdown + whole-run anatomy summary from a
//       recorded rcsim-trace-v1 file. --json prints the summary as the
//       exact JSON object the artifact's per-cell `convergence` block
//       carries (same serializer), so the two are diffable verbatim.
//   rcsim-inspect --trace=FILE --timeline [--from=SEC] [--to=SEC]
//       Human-readable fault timeline: triggers, adjacency transitions,
//       loop / black-hole windows.
//   rcsim-inspect --trace=FILE --flows
//       Per-flow data-plane summary (sent / delivered / drops by cause /
//       delay) keyed by the Originate events in the trace.
//   rcsim-inspect [key=value ...] --histo=KIND
//       Run one scenario and print the scheduler's per-event-kind timing
//       counters and scheduling-delay histograms (KIND = all | generic |
//       link | protocol | transport | traffic | fault | detector).
#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <exception>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/cli.hpp"
#include "core/json_lite.hpp"
#include "core/options.hpp"
#include "core/scenario.hpp"
#include "exp/journal.hpp"
#include "obs/anatomy.hpp"
#include "obs/trace_io.hpp"
#include "sim/scheduler.hpp"

namespace {

using namespace rcsim;

/// DropReason enumerator count (net/types.hpp declares 7, Corrupted last).
inline constexpr int kDropReasonCount = static_cast<int>(DropReason::Corrupted) + 1;

void printUsage() {
  std::printf(
      "usage: rcsim-inspect --trace=FILE --episodes [--json]\n"
      "       rcsim-inspect --trace=FILE --timeline [--from=SEC] [--to=SEC]\n"
      "       rcsim-inspect --trace=FILE --flows\n"
      "       rcsim-inspect --artifact=FILE --episodes\n"
      "       rcsim-inspect [key=value ...] --histo=KIND\n"
      "  KIND = all | generic | link | protocol | transport | traffic | fault | detector\n");
}

double secOrNeg(Time t, Time start) {
  return t == Time::infinity() ? -1.0 : (t - start).toSeconds();
}

void printSummary(const obs::AnatomySummary& s) {
  std::printf("summary\tepisodes=%" PRIu64 " triggers=%" PRIu64 " detected=%" PRIu64
              " detection_total=%.6f converged=%" PRIu64 " convergence_total=%.6f fib_churn=%" PRIu64
              "\n",
              s.episodes, s.triggers, s.detectedEpisodes, s.detectionSecTotal, s.convergedEpisodes,
              s.convergenceSecTotal, s.fibChurn);
  std::printf("summary\tloops=%" PRIu64 "/%.6f blackholes=%" PRIu64 "/%.6f\n", s.loopWindows,
              s.loopSeconds, s.blackholeWindows, s.blackholeSeconds);
  std::printf("summary\tdrops loop=%" PRIu64 " blackhole=%" PRIu64 " ttl=%" PRIu64
              " queue=%" PRIu64 " other=%" PRIu64 " delivered=%" PRIu64 "\n",
              s.dropsLoop, s.dropsBlackhole, s.dropsTtl, s.dropsQueue, s.dropsOther, s.delivered);
  std::printf("summary\tcontrol msgs=%" PRIu64 " bytes=%" PRIu64 " hello msgs=%" PRIu64
              " bytes=%" PRIu64 " dv trig=%" PRIu64 " periodic=%" PRIu64 " mrai armed=%" PRIu64
              " fired=%" PRIu64 "\n",
              s.controlMessages, s.controlBytes, s.helloMessages, s.helloBytes, s.dvTriggered,
              s.dvPeriodic, s.mraiArmed, s.mraiFired);
}

int runEpisodes(const std::string& path, bool json) {
  const obs::TraceFile file = obs::readTraceFile(path);
  if (file.corrupt > 0) {
    std::fprintf(stderr, "warning: skipped %zu corrupt line(s)\n", file.corrupt);
  }
  const obs::ReplayOptions opt = obs::replayOptionsFromMeta(file.meta);
  const obs::AnatomyReport report = obs::analyzeTrace(file.events, opt);
  const obs::AnatomySummary summary = report.summary();

  if (json) {
    std::printf("%s\n", dumpJson(exp::anatomySummaryToJson(summary)).c_str());
    return 0;
  }

  std::printf("trace\t%s\tevents=%zu corrupt=%zu digest=%s\n", path.c_str(), file.events.size(),
              file.corrupt, obs::traceDigest(file.events).c_str());
  for (std::size_t i = 0; i < report.episodes.size(); ++i) {
    const auto& ep = report.episodes[i];
    std::printf("episode\t%zu\tt=%.6f trigger=%s x%d detect=%.6f converge=%.6f routes=%" PRIu64
                " loops=%d/%.6f%s blackholes=%d/%.6f%s drops loop=%" PRIu64 " blackhole=%" PRIu64
                " ttl=%" PRIu64 " queue=%" PRIu64 " other=%" PRIu64 " delivered=%" PRIu64
                " control=%" PRIu64 "/%" PRIu64 " mrai=%" PRIu64 " dv-trig=%" PRIu64 "\n",
                i + 1, ep.start.toSeconds(), toString(ep.trigger), ep.triggerCount,
                ep.detectionSec(), ep.convergenceSec(), ep.routeChanges, ep.loopWindows,
                ep.loopSeconds, ep.loopOpenAtEnd ? "+open" : "", ep.blackholeWindows,
                ep.blackholeSeconds, ep.blackholeOpenAtEnd ? "+open" : "", ep.dropsLoop,
                ep.dropsBlackhole, ep.dropsTtl, ep.dropsQueue, ep.dropsOther, ep.delivered,
                ep.controlMessages, ep.controlBytes, ep.mraiDeferred, ep.dvTriggered);
  }
  printSummary(summary);

  // Top control-plane talkers (messages, then bytes as tie-break) so a
  // chatty node stands out without dumping every row of a large topology.
  if (!report.perNodeControlMessages.empty()) {
    std::vector<std::size_t> nodes(report.perNodeControlMessages.size());
    for (std::size_t n = 0; n < nodes.size(); ++n) nodes[n] = n;
    std::stable_sort(nodes.begin(), nodes.end(), [&](std::size_t l, std::size_t r) {
      if (report.perNodeControlMessages[l] != report.perNodeControlMessages[r]) {
        return report.perNodeControlMessages[l] > report.perNodeControlMessages[r];
      }
      return report.perNodeControlBytes[l] > report.perNodeControlBytes[r];
    });
    const std::size_t top = std::min<std::size_t>(5, nodes.size());
    for (std::size_t i = 0; i < top; ++i) {
      const std::size_t n = nodes[i];
      if (report.perNodeControlMessages[n] == 0) break;
      std::printf("talker\tnode=%zu msgs=%" PRIu64 " bytes=%" PRIu64 "\n", n,
                  report.perNodeControlMessages[n], report.perNodeControlBytes[n]);
    }
  }
  return 0;
}

int runTimeline(const std::string& path, double fromSec, double toSec) {
  const obs::TraceFile file = obs::readTraceFile(path);
  if (file.corrupt > 0) {
    std::fprintf(stderr, "warning: skipped %zu corrupt line(s)\n", file.corrupt);
  }
  const Time from = Time::seconds(fromSec);
  const Time to = Time::seconds(toSec);

  std::printf("trace\t%s\tevents=%zu corrupt=%zu digest=%s\n", path.c_str(), file.events.size(),
              file.corrupt, obs::traceDigest(file.events).c_str());
  for (const auto& ev : file.events) {
    if (ev.t < from || ev.t > to) continue;
    switch (ev.kind) {
      case obs::TraceKind::LinkDown:
        std::printf("%12.6f\ttrigger\tlink (%d,%d) failed\n", ev.t.toSeconds(), ev.a, ev.b);
        break;
      case obs::TraceKind::LinkUp:
        std::printf("%12.6f\ttrigger\tlink (%d,%d) recovered\n", ev.t.toSeconds(), ev.a, ev.b);
        break;
      case obs::TraceKind::FaultApply:
        std::printf("%12.6f\ttrigger\tfault apply target=(%d,%d) kind=%lld\n", ev.t.toSeconds(),
                    ev.a, ev.b, static_cast<long long>(ev.x));
        break;
      case obs::TraceKind::AdjDown:
        std::printf("%12.6f\tdetect\tnode=%d lost neighbor=%d%s\n", ev.t.toSeconds(), ev.a, ev.b,
                    ev.x != 0 ? " (false positive)" : "");
        break;
      case obs::TraceKind::AdjUp:
        std::printf("%12.6f\tdetect\tnode=%d regained neighbor=%d\n", ev.t.toSeconds(), ev.a,
                    ev.b);
        break;
      default: break;
    }
  }

  const obs::AnatomyReport report =
      obs::analyzeTrace(file.events, obs::replayOptionsFromMeta(file.meta));
  for (std::size_t i = 0; i < report.episodes.size(); ++i) {
    const auto& ep = report.episodes[i];
    if (ep.start < from || ep.start > to) continue;
    std::printf("%12.6f\tepisode\t#%zu %s x%d detect+%.6f first-route+%.6f last-route+%.6f\n",
                ep.start.toSeconds(), i + 1, toString(ep.trigger), ep.triggerCount,
                ep.detectionSec(), secOrNeg(ep.firstRouteChangeAt, ep.start),
                secOrNeg(ep.lastRouteChangeAt, ep.start));
  }
  auto windows = [&](const char* label, const std::vector<obs::ReplayWindow>& ws) {
    for (const auto& w : ws) {
      if (w.begin > to || (!w.openAtEnd && w.end < from)) continue;
      if (w.openAtEnd) {
        std::printf("window\t%s\t%.6f -> (open at end of trace)\n", label, w.begin.toSeconds());
      } else {
        std::printf("window\t%s\t%.6f -> %.6f (%.6f s)\n", label, w.begin.toSeconds(),
                    w.end.toSeconds(), w.seconds());
      }
    }
  };
  windows("loop", report.loopWindows);
  windows("blackhole", report.blackholeWindows);
  return 0;
}

int runFlows(const std::string& path) {
  const obs::TraceFile file = obs::readTraceFile(path);
  if (file.corrupt > 0) {
    std::fprintf(stderr, "warning: skipped %zu corrupt line(s)\n", file.corrupt);
  }
  struct FlowStats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::array<std::uint64_t, kDropReasonCount> drops{};
    double delaySum = 0.0;
    double delayMax = 0.0;
    std::uint64_t hops = 0;
  };
  // Originate carries (src, dst, pktid); Deliver/Drop carry only the pktid,
  // so the flow key is recovered through this map. Control packets never
  // emit Originate, which keeps the report data-plane only.
  std::map<std::pair<NodeId, NodeId>, FlowStats> flows;
  std::map<std::int64_t, std::pair<NodeId, NodeId>> pktFlow;
  for (const auto& ev : file.events) {
    switch (ev.kind) {
      case obs::TraceKind::Originate: {
        const auto key = std::make_pair(ev.a, ev.b);
        pktFlow[ev.x] = key;
        ++flows[key].sent;
        break;
      }
      case obs::TraceKind::Deliver: {
        const auto it = pktFlow.find(ev.x);
        if (it == pktFlow.end()) break;
        FlowStats& fs = flows[it->second];
        ++fs.delivered;
        const double delay = (ev.t - Time::nanoseconds(ev.y)).toSeconds();
        fs.delaySum += delay;
        fs.delayMax = std::max(fs.delayMax, delay);
        fs.hops += static_cast<std::uint64_t>(ev.z);
        pktFlow.erase(it);
        break;
      }
      case obs::TraceKind::Drop: {
        if (ev.z != 1) break;  // control drops have no flow
        const auto it = pktFlow.find(ev.x);
        if (it == pktFlow.end()) break;
        FlowStats& fs = flows[it->second];
        if (ev.y >= 0 && ev.y < kDropReasonCount) ++fs.drops[static_cast<std::size_t>(ev.y)];
        pktFlow.erase(it);
        break;
      }
      default: break;
    }
  }
  std::printf("trace\t%s\tflows=%zu\n", path.c_str(), flows.size());
  for (const auto& [key, fs] : flows) {
    std::printf("flow\t%d->%d\tsent=%" PRIu64 " delivered=%" PRIu64, key.first, key.second,
                fs.sent, fs.delivered);
    for (int r = 0; r < kDropReasonCount; ++r) {
      if (fs.drops[static_cast<std::size_t>(r)] == 0) continue;
      std::printf(" drop[%s]=%" PRIu64, toString(static_cast<DropReason>(r)),
                  fs.drops[static_cast<std::size_t>(r)]);
    }
    if (fs.delivered > 0) {
      std::printf(" mean_delay=%.6f max_delay=%.6f mean_hops=%.2f",
                  fs.delaySum / static_cast<double>(fs.delivered), fs.delayMax,
                  static_cast<double>(fs.hops) / static_cast<double>(fs.delivered));
    }
    std::printf("\n");
  }
  return 0;
}

int runArtifact(const std::string& path) {
  std::string text;
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
      return 2;
    }
    char buf[65536];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  const JsonValue doc = parseJson(text);
  std::printf("artifact\t%s\texperiment=%s cells=%zu\n", path.c_str(),
              doc.stringAt("experiment").c_str(), doc.at("cells").array.size());
  for (const auto& cell : doc.at("cells").array) {
    if (!cell.has("convergence")) {
      std::printf("cell\t%s\t(no convergence block)\n", cell.stringAt("id").c_str());
      continue;
    }
    const obs::AnatomySummary s = exp::anatomySummaryFromJson(cell.at("convergence"));
    std::printf("cell\t%s\tdigest=%s\n", cell.stringAt("id").c_str(),
                cell.stringAt("convergence_digest").c_str());
    printSummary(s);
  }
  return 0;
}

int runHisto(const ScenarioConfig& cfg, const std::string& kindArg) {
  int wanted = -1;  // -1 = all
  if (kindArg != "all") {
    for (int k = 0; k < kEventKindCount; ++k) {
      if (kindArg == toString(static_cast<EventKind>(k))) wanted = k;
    }
    if (wanted < 0) {
      std::fprintf(stderr, "error: unknown event kind '%s'\n", kindArg.c_str());
      return 2;
    }
  }

  Scenario sc{cfg};
  sc.run();
  const auto& sched = sc.network().scheduler();
  for (int k = 0; k < kEventKindCount; ++k) {
    if (wanted >= 0 && k != wanted) continue;
    const auto kind = static_cast<EventKind>(k);
    const auto& ks = sched.kindStats(kind);
    if (wanted < 0 && ks.scheduled == 0) continue;
    std::printf("histo\t%s\tscheduled=%" PRIu64 " executed=%" PRIu64 "\n", toString(kind),
                ks.scheduled, ks.executed);
    for (int b = 0; b < Scheduler::kDelayBuckets; ++b) {
      const std::uint64_t count = ks.delayHisto[static_cast<std::size_t>(b)];
      if (count == 0) continue;
      // Bucket 0 is a zero scheduling delay; bucket b >= 1 covers
      // [2^(b-1), 2^b) nanoseconds of sim time (Scheduler::delayBucket).
      if (b == 0) {
        std::printf("hbin\t%s\t0ns\t%" PRIu64 "\n", toString(kind), count);
      } else {
        std::printf("hbin\t%s\t[2^%d,2^%d)ns\t%" PRIu64 "\n", toString(kind), b - 1, b, count);
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rcsim;

  ScenarioConfig cfg;
  std::string tracePath;
  std::string artifactPath;
  std::string histoKind;
  double fromSec = 0.0;
  double toSec = 1e18;
  bool episodes = false;
  bool timeline = false;
  bool flows = false;
  bool json = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "-h" || arg == "--help") {
        printUsage();
        return 0;
      }
      if (arg.rfind("--trace=", 0) == 0) {
        tracePath = arg.substr(8);
        if (tracePath.empty()) throw std::runtime_error("--trace needs a file path");
      } else if (arg.rfind("--artifact=", 0) == 0) {
        artifactPath = arg.substr(11);
        if (artifactPath.empty()) throw std::runtime_error("--artifact needs a file path");
      } else if (arg.rfind("--histo=", 0) == 0) {
        histoKind = arg.substr(8);
        if (histoKind.empty()) throw std::runtime_error("--histo needs an event kind");
      } else if (arg.rfind("--from=", 0) == 0) {
        fromSec = cli::parseFiniteDouble(arg.substr(7), "--from");
      } else if (arg.rfind("--to=", 0) == 0) {
        toSec = cli::parseFiniteDouble(arg.substr(5), "--to");
      } else if (arg == "--episodes") {
        episodes = true;
      } else if (arg == "--timeline") {
        timeline = true;
      } else if (arg == "--flows") {
        flows = true;
      } else if (arg == "--json") {
        json = true;
      } else {
        applyOptionString(cfg, arg);
      }
    }

    if (!histoKind.empty()) return runHisto(cfg, histoKind);
    if (!artifactPath.empty()) return runArtifact(artifactPath);
    if (!tracePath.empty()) {
      if (timeline) return runTimeline(tracePath, fromSec, toSec);
      if (flows) return runFlows(tracePath);
      if (episodes) return runEpisodes(tracePath, json);
      throw std::runtime_error("--trace needs one of --episodes, --timeline, --flows");
    }
    printUsage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
