// Extension E3 — regular vs random topologies. The paper chose regular
// meshes to remove per-run randomness (§5); this bench checks the findings
// survive on connected random graphs with the same node count and matched
// average degree.
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Extension E3: regular mesh vs random graph", 20);
  const auto protocols = kPaperProtocols;
  const std::vector<int> degrees{4, 6, 8};

  for (const bool randomTopo : {false, true}) {
    report::header(std::string{"Extension E3, "} + (randomTopo ? "random graphs" : "regular meshes"),
                   "49 nodes; drops due to no route during convergence");
    std::vector<std::vector<double>> drops(protocols.size());
    std::vector<std::vector<double>> ttl(protocols.size());
    for (std::size_t p = 0; p < protocols.size(); ++p) {
      for (const int d : degrees) {
        ScenarioConfig cfg = baseConfig();
        cfg.protocol = protocols[p];
        if (randomTopo) {
          cfg.topology = TopologyKind::Random;
          cfg.random.nodes = 49;
          cfg.random.avgDegree = d;
        } else {
          cfg.mesh.degree = d;
        }
        const auto a = Aggregate::over(runMany(cfg, runs));
        drops[p].push_back(a.dropsNoRoute);
        ttl[p].push_back(a.dropsTtl);
      }
    }
    report::degreeSweep("no-route drops", degrees, names(protocols), drops);
    report::degreeSweep("TTL expirations", degrees, names(protocols), ttl);
  }

  std::printf("\nReading: the ordering (RIP >> DBF/BGP3, BGP worst for loops) holds on\n"
              "random graphs; random graphs are noisier because a single failure can hit\n"
              "a bridge-like edge that a regular mesh never has.\n");
  return 0;
}
