// The one bench binary: every registered experiment (figures, ablations,
// extensions, appendix) behind --list / --only / --all. All selected
// experiments are submitted to a single SweepExecutor up front, so their
// (cell, seed) replicas share one work queue and one persistent thread
// pool — no fork/join barrier between cells or between experiments.
//
// Console tables are byte-compatible with the historical one-binary-per-
// figure benches (banners and progress go to stderr now, tables stay on
// stdout); each experiment additionally writes a JSON artifact under
// --out (default results/).

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/cli.hpp"
#include "core/runner.hpp"
#include "exp/artifact.hpp"
#include "exp/executor.hpp"
#include "exp/journal.hpp"
#include "exp/registry.hpp"

namespace {

using rcsim::exp::ExperimentResult;
using rcsim::exp::ExperimentSpec;

/// Exit code for an interrupted-but-drained run: the conventional
/// 128 + SIGINT. See usage() for the full precedence.
constexpr int kExitInterrupted = 130;

/// Set from the SIGINT/SIGTERM handler; everything else (cancelling the
/// executor, flushing, exiting) happens on normal threads — a handler may
/// only touch a sig_atomic_t.
volatile std::sig_atomic_t g_signal = 0;

extern "C" void onSignal(int sig) { g_signal = sig; }

void installSignalHandlers() {
  struct sigaction sa {};
  sa.sa_handler = onSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: rcsim_bench [--list] [--all | --only=NAME ...] [options]\n"
               "\n"
               "Each experiment's tables include a convergence-anatomy section\n"
               "(episodes, detection/convergence latency, loop/black-hole windows,\n"
               "per-cause drops) when any cell recorded a convergence episode.\n"
               "\n"
               "selection:\n"
               "  --list            list registered experiments and exit\n"
               "  --all             run every registered experiment\n"
               "  --only=NAME       run one experiment (repeatable)\n"
               "\n"
               "options:\n"
               "  --runs=N          replicas per cell (else env RCSIM_RUNS, else the\n"
               "                    experiment default; see --list)\n"
               "  --paper-runs      use each experiment's checked-in-results replica count\n"
               "  --threads=K       worker threads (else env RCSIM_THREADS, else cores)\n"
               "  --out=DIR         artifact directory (default: results)\n"
               "  --txt             write each experiment's tables to DIR/NAME.txt\n"
               "                    instead of stdout\n"
               "  --no-json         skip the JSON artifacts\n"
               "  --check-invariants\n"
               "                    run every replica under the runtime invariant\n"
               "                    checker (violations fail the cell)\n"
               "  --watchdog=SEC    wall-clock budget per replica; an overrunning\n"
               "                    replica fails its cell instead of hanging the sweep\n"
               "                    (else env RCSIM_REPLICA_WATCHDOG_SEC)\n"
               "  --journal=DIR     durable run journal: append one CRC-guarded JSONL\n"
               "                    record per completed (cell, seed) replica to\n"
               "                    DIR/journal.jsonl (fsynced, survives SIGKILL/crash)\n"
               "  --resume=DIR      fold completed replicas from DIR/journal.jsonl\n"
               "                    instead of re-running them; failed/quarantined\n"
               "                    replicas re-run. Implies --journal=DIR unless\n"
               "                    --journal is given separately\n"
               "  --retries=N       retry a failed replica N more times (exponential\n"
               "                    backoff) before quarantining it (default 1; 0\n"
               "                    disables retry)\n"
               "  --progress=SEC    print a heartbeat line to stderr every SEC seconds\n"
               "                    with completed/total replicas plus live convergence\n"
               "                    episode and drop-attribution counters across all\n"
               "                    selected experiments; a final line prints at sweep\n"
               "                    end regardless of SEC (default 0 = no heartbeat)\n"
               "  -h, --help        this message\n"
               "\n"
               "exit status (highest precedence first):\n"
               "  2    usage error (nothing was run)\n"
               "  130  interrupted (SIGINT/SIGTERM): in-flight replicas drained,\n"
               "       journal flushed; overrides 3 even when cells already failed\n"
               "  3    at least one cell failed — replica exceptions, watchdog\n"
               "       timeouts and invariant violations all land here\n"
               "  0    ok\n");
}

/// Strict flag parsing lives in core/cli.hpp now (shared with rcsim,
/// rcsim-trace and rcsim_fuzz); these thin wrappers keep rcsim_bench's
/// historical print-and-exit-2 behavior.
int parsePositiveInt(const std::string& value, const char* flag) {
  try {
    return rcsim::cli::parsePositiveInt(value, flag);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rcsim_bench: %s\n", e.what());
    std::exit(2);
  }
}

int parseNonNegativeInt(const std::string& value, const char* flag) {
  try {
    return rcsim::cli::parseNonNegativeInt(value, flag);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rcsim_bench: %s\n", e.what());
    std::exit(2);
  }
}

/// Redirect stdout to a file for one experiment's tables; restores the
/// original stdout on destruction (so stderr progress and the next
/// experiment's redirect are unaffected).
class StdoutToFile {
 public:
  explicit StdoutToFile(const std::string& path) {
    std::fflush(stdout);
    saved_ = dup(fileno(stdout));
    if (saved_ < 0 || std::freopen(path.c_str(), "w", stdout) == nullptr) {
      std::fprintf(stderr, "rcsim_bench: cannot write %s\n", path.c_str());
      std::exit(1);
    }
  }
  ~StdoutToFile() {
    std::fflush(stdout);
    dup2(saved_, fileno(stdout));
    close(saved_);
    clearerr(stdout);
  }
  StdoutToFile(const StdoutToFile&) = delete;
  StdoutToFile& operator=(const StdoutToFile&) = delete;

 private:
  int saved_ = -1;
};

/// Cross-protocol convergence-anatomy table: one row per healthy cell,
/// summed over that cell's replicas — the artifact's `convergence` block
/// rendered human-readable next to the experiment's own tables. Silent
/// when no cell recorded an episode (e.g. fault-free sweeps).
void renderConvergenceTable(const ExperimentResult& result,
                            const std::vector<rcsim::exp::CellSpec>& cells) {
  bool any = false;
  for (const auto& cell : result.cells) {
    if (!cell.failed() && cell.convergence.episodes > 0) any = true;
  }
  if (!any) return;
  std::printf("\nConvergence anatomy (summed over %d run(s) per cell)\n", result.runs);
  std::printf("%-24s %8s %9s %10s %7s %11s %11s %20s %10s\n", "cell", "episodes", "detect_s",
              "converge_s", "churn", "loop n/s", "bhole n/s", "drops l/bh/ttl/q", "ctrl msgs");
  for (std::size_t i = 0; i < result.cells.size() && i < cells.size(); ++i) {
    const auto& cr = result.cells[i];
    if (cr.failed() || cr.convergence.episodes == 0) continue;
    const auto& s = cr.convergence;
    // Mean per detected/converged episode; "-" when nothing was detected.
    char detect[32];
    char converge[32];
    if (s.detectedEpisodes > 0) {
      std::snprintf(detect, sizeof detect, "%.3f",
                    s.detectionSecTotal / static_cast<double>(s.detectedEpisodes));
    } else {
      std::snprintf(detect, sizeof detect, "-");
    }
    if (s.convergedEpisodes > 0) {
      std::snprintf(converge, sizeof converge, "%.3f",
                    s.convergenceSecTotal / static_cast<double>(s.convergedEpisodes));
    } else {
      std::snprintf(converge, sizeof converge, "-");
    }
    char windows[32];
    char bhWindows[32];
    std::snprintf(windows, sizeof windows, "%llu/%.3f",
                  static_cast<unsigned long long>(s.loopWindows), s.loopSeconds);
    std::snprintf(bhWindows, sizeof bhWindows, "%llu/%.3f",
                  static_cast<unsigned long long>(s.blackholeWindows), s.blackholeSeconds);
    char drops[64];
    std::snprintf(drops, sizeof drops, "%llu/%llu/%llu/%llu",
                  static_cast<unsigned long long>(s.dropsLoop),
                  static_cast<unsigned long long>(s.dropsBlackhole),
                  static_cast<unsigned long long>(s.dropsTtl),
                  static_cast<unsigned long long>(s.dropsQueue));
    std::printf("%-24s %8llu %9s %10s %7llu %11s %11s %20s %10llu\n", cells[i].id.c_str(),
                static_cast<unsigned long long>(s.episodes), detect, converge,
                static_cast<unsigned long long>(s.fibChurn), windows, bhWindows, drops,
                static_cast<unsigned long long>(s.controlMessages));
  }
}

}  // namespace

int main(int argc, char** argv) {
  rcsim::exp::registerBuiltinExperiments();

  bool list = false;
  bool all = false;
  bool paperRuns = false;
  bool toTxt = false;
  bool json = true;
  int runsFlag = 0;
  int threads = 0;
  int retries = 1;
  int progressSec = 0;
  double watchdogSec = 0.0;
  std::string outDir = "results";
  std::string journalDir;
  std::string resumeDir;
  std::vector<std::string> only;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) { return arg.substr(std::strlen(prefix)); };
    if (arg == "-h" || arg == "--help") {
      usage(stdout);
      return 0;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg.rfind("--only=", 0) == 0) {
      only.push_back(value("--only="));
    } else if (arg.rfind("--runs=", 0) == 0) {
      runsFlag = parsePositiveInt(value("--runs="), "--runs");
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = parsePositiveInt(value("--threads="), "--threads");
    } else if (arg == "--paper-runs") {
      paperRuns = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      outDir = value("--out=");
    } else if (arg == "--txt") {
      toTxt = true;
    } else if (arg == "--no-json") {
      json = false;
    } else if (arg == "--check-invariants") {
      // Scenario reads the env var at construction, so this covers every
      // replica including custom cell runners.
      setenv("RCSIM_CHECK_INVARIANTS", "1", 1);
    } else if (arg.rfind("--watchdog=", 0) == 0) {
      const std::string v = value("--watchdog=");
      // parseWallLimitSeconds also rejects "nan"/"inf", which strtod
      // parses and a plain <= 0 guard lets through.
      watchdogSec = rcsim::exp::parseWallLimitSeconds(v.c_str());
      if (watchdogSec <= 0.0) {
        std::fprintf(stderr, "rcsim_bench: --watchdog got '%s', expected finite seconds > 0\n",
                     v.c_str());
        return 2;
      }
    } else if (arg.rfind("--journal=", 0) == 0) {
      journalDir = value("--journal=");
      if (journalDir.empty()) {
        std::fprintf(stderr, "rcsim_bench: --journal needs a directory\n");
        return 2;
      }
    } else if (arg.rfind("--resume=", 0) == 0) {
      resumeDir = value("--resume=");
      if (resumeDir.empty()) {
        std::fprintf(stderr, "rcsim_bench: --resume needs a directory\n");
        return 2;
      }
    } else if (arg.rfind("--retries=", 0) == 0) {
      retries = parseNonNegativeInt(value("--retries="), "--retries");
    } else if (arg.rfind("--progress=", 0) == 0) {
      progressSec = parseNonNegativeInt(value("--progress="), "--progress");
    } else {
      std::fprintf(stderr, "rcsim_bench: unknown argument '%s'\n\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  const auto& registry = rcsim::exp::allExperiments();

  if (list) {
    for (const auto& spec : registry) {
      std::printf("%-22s %3zu cells, %3d runs (paper %3d)  %s\n", spec.name.c_str(),
                  spec.cells.size(), spec.defaultRuns, spec.paperRuns, spec.description.c_str());
    }
    return 0;
  }

  std::vector<const ExperimentSpec*> selected;
  if (all) {
    for (const auto& spec : registry) selected.push_back(&spec);
  }
  for (const auto& name : only) {
    const ExperimentSpec* spec = rcsim::exp::findExperiment(name);
    if (spec == nullptr) {
      std::fprintf(stderr, "rcsim_bench: no experiment named '%s' (try --list)\n", name.c_str());
      return 2;
    }
    selected.push_back(spec);
  }
  if (selected.empty()) {
    std::fprintf(stderr, "rcsim_bench: nothing selected — use --all, --only=NAME or --list\n\n");
    usage(stderr);
    return 2;
  }

  if (toTxt || json) std::filesystem::create_directories(outDir);

  // Durability wiring: --resume loads the journal index up front (and
  // keeps journaling into the same directory unless --journal points
  // elsewhere), so a killed run can be continued any number of times.
  if (!resumeDir.empty() && journalDir.empty()) journalDir = resumeDir;
  rcsim::exp::JournalIndex resumeIndex;
  bool haveResume = false;
  if (!resumeDir.empty()) {
    rcsim::exp::JournalReadStats stats;
    resumeIndex = rcsim::exp::JournalIndex::load(resumeDir, &stats);
    haveResume = true;
    std::fprintf(stderr,
                 "rcsim_bench: resume: %zu completed replica(s) from %zu journal record(s)"
                 " (%zu corrupt line(s) skipped) in %s\n",
                 resumeIndex.size(), stats.records, stats.corrupt, resumeDir.c_str());
  }
  std::unique_ptr<rcsim::exp::JournalWriter> journal;
  if (!journalDir.empty()) {
    try {
      journal = std::make_unique<rcsim::exp::JournalWriter>(journalDir);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "rcsim_bench: cannot open journal: %s\n", e.what());
      return 2;
    }
  }
  rcsim::exp::JobOptions jobOptions;
  jobOptions.retry.maxAttempts = retries + 1;
  jobOptions.journal = journal.get();
  jobOptions.resume = haveResume ? &resumeIndex : nullptr;

  installSignalHandlers();

  rcsim::exp::SweepExecutor executor{threads};
  if (watchdogSec > 0.0) executor.setReplicaWallLimit(watchdogSec);

  // SIGINT/SIGTERM drain: the handler only sets a flag; this watcher
  // turns it into a graceful executor cancel (stop claiming replicas,
  // finish in-flight ones, journal them) from a normal thread.
  std::atomic<bool> watcherStop{false};
  std::thread watcher{[&watcherStop, &executor] {
    while (!watcherStop.load(std::memory_order_relaxed)) {
      if (g_signal != 0) {
        executor.requestCancel();
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }};

  // Submit everything first: later experiments' replicas backfill the pool
  // while earlier ones drain, so the sweep never serializes on one
  // experiment's slowest cell.
  struct Pending {
    const ExperimentSpec* spec;
    int runs;
    std::shared_ptr<rcsim::exp::SweepExecutor::Job> job;
  };
  std::vector<Pending> pending;
  pending.reserve(selected.size());
  for (const ExperimentSpec* spec : selected) {
    const int fallback = paperRuns ? spec->paperRuns : spec->defaultRuns;
    const int runs = runsFlag > 0 ? runsFlag : rcsim::defaultRunCount(fallback);
    pending.push_back({spec, runs, executor.submit(*spec, runs, jobOptions)});
  }

  // Heartbeat: a polling thread summing SweepExecutor::progress() over
  // every submitted job — lock-free snapshots, so it never perturbs the
  // pool. Stderr only, same as the banners.
  std::atomic<bool> heartbeatStop{false};
  std::thread heartbeat;
  if (progressSec > 0) {
    heartbeat = std::thread{[&heartbeatStop, &pending, progressSec] {
      // One line: replica progress plus the live convergence-anatomy
      // counters the executor accumulates as replicas complete. The format
      // is pinned by scripts/exit_codes_test.sh.
      const auto beat = [&pending] {
        rcsim::exp::JobProgress sum;
        for (const auto& p : pending) {
          const auto prog = rcsim::exp::SweepExecutor::progress(p.job);
          sum.completed += prog.completed;
          sum.total += prog.total;
          sum.episodes += prog.episodes;
          sum.dropsLoop += prog.dropsLoop;
          sum.dropsBlackhole += prog.dropsBlackhole;
          sum.dropsTtl += prog.dropsTtl;
          sum.dropsQueue += prog.dropsQueue;
        }
        std::fprintf(stderr,
                     "rcsim_bench: progress %zu/%zu replica(s) (%.0f%%) | episodes %llu | "
                     "drops loop=%llu bh=%llu ttl=%llu queue=%llu\n",
                     sum.completed, sum.total,
                     sum.total > 0
                         ? 100.0 * static_cast<double>(sum.completed) /
                               static_cast<double>(sum.total)
                         : 0.0,
                     static_cast<unsigned long long>(sum.episodes),
                     static_cast<unsigned long long>(sum.dropsLoop),
                     static_cast<unsigned long long>(sum.dropsBlackhole),
                     static_cast<unsigned long long>(sum.dropsTtl),
                     static_cast<unsigned long long>(sum.dropsQueue));
      };
      const auto period = std::chrono::seconds(progressSec);
      auto next = std::chrono::steady_clock::now() + period;
      while (!heartbeatStop.load(std::memory_order_relaxed)) {
        if (std::chrono::steady_clock::now() < next) {
          std::this_thread::sleep_for(std::chrono::milliseconds(25));
          continue;
        }
        next += period;
        beat();
      }
      // Final beat at sweep end, so a run shorter than SEC still reports
      // its totals (and the pinned format is always observable).
      beat();
    }};
  }

  int failedCells = 0;
  bool interrupted = false;
  for (auto& p : pending) {
    // The historical bench banner, byte for byte — but on stderr, so
    // piping tables to a file stays clean.
    std::fprintf(stderr, "%s — %d run(s) per data point (set RCSIM_RUNS to change; paper used 100)\n",
                 p.spec->title.c_str(), p.runs);
    const ExperimentResult result = executor.finish(p.job);
    if (executor.cancelRequested()) {
      // Drain the remaining jobs (their in-flight replicas finish and
      // journal) but render nothing partial.
      interrupted = true;
      for (auto& rest : pending) (void)executor.finish(rest.job);
      break;
    }
    if (toTxt) {
      StdoutToFile redirect{outDir + "/" + p.spec->name + ".txt"};
      p.spec->render(*p.spec, result);
      renderConvergenceTable(result, p.spec->cells);
    } else {
      p.spec->render(*p.spec, result);
      renderConvergenceTable(result, p.spec->cells);
      std::fflush(stdout);
    }
    if (json) {
      rcsim::exp::writeArtifact(*p.spec, result, outDir + "/" + p.spec->name + ".json");
    }
    std::fprintf(stderr, "# %s: %zu cells x %d runs in %.1f s on %d threads\n",
                 p.spec->name.c_str(), p.spec->cells.size(), result.runs, result.wallSeconds,
                 result.threads);
    // Per-experiment failure report: which cells died, on which seed,
    // and why — the healthy cells above rendered normally.
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
      if (!result.cells[i].retries.empty()) {
        std::fprintf(stderr, "# RETRIED %s cell '%s': %zu replica(s) succeeded after retry\n",
                     p.spec->name.c_str(), p.spec->cells[i].id.c_str(),
                     result.cells[i].retries.size());
      }
      if (!result.cells[i].failed()) continue;
      ++failedCells;
      const auto& failures = result.cells[i].failures;
      std::fprintf(stderr, "# FAILED %s cell '%s': %zu replica(s) quarantined\n",
                   p.spec->name.c_str(), p.spec->cells[i].id.c_str(), failures.size());
      for (const auto& f : failures) {
        std::fprintf(stderr, "#   seed %llu (%zu attempt(s)): %s\n",
                     static_cast<unsigned long long>(f.seed), f.attempts.size(),
                     f.error.c_str());
      }
    }
  }
  watcherStop.store(true, std::memory_order_relaxed);
  watcher.join();
  heartbeatStop.store(true, std::memory_order_relaxed);
  if (heartbeat.joinable()) heartbeat.join();

  // Exit-code precedence (documented in usage()): interrupt beats failed
  // cells — a drained run is incomplete, and 3 would falsely suggest the
  // whole sweep ran and some cells were bad.
  if (interrupted) {
    std::fprintf(stderr, "rcsim_bench: interrupted — in-flight replicas drained%s\n",
                 journal ? ", journal flushed" : "");
    if (journal) {
      std::fprintf(stderr, "rcsim_bench: continue with --resume=%s\n", journalDir.c_str());
    }
    return kExitInterrupted;
  }
  if (failedCells > 0) {
    std::fprintf(stderr, "rcsim_bench: %d cell(s) failed — see reports above\n", failedCells);
    return 3;
  }
  return 0;
}
