// Extension E6 — availability under continuous churn. Instead of the
// paper's single surgical failure, every link flaps with exponential
// up/down times (MTBF 120 s, MTTR 10 s) for 400 s of traffic. The metric
// is the long-run delivery ratio — Baran's original question ("reliable
// packet delivery in the face of severe component failures") answered per
// protocol and per connectivity level.
#include "bench_common.hpp"
#include "core/churn.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Extension E6: delivery ratio under link churn", 10);
  const std::vector<int> degrees{3, 4, 6, 8};
  const std::vector<ProtocolKind> kinds{ProtocolKind::Rip, ProtocolKind::Dbf,
                                        ProtocolKind::Bgp3, ProtocolKind::LinkState,
                                        ProtocolKind::Dual};

  std::vector<std::string> labels = names(kinds);
  std::vector<std::vector<double>> ratio(kinds.size());
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    for (const int d : degrees) {
      double delivered = 0;
      double sent = 0;
      for (int run = 0; run < runs; ++run) {
        ScenarioConfig cfg = baseConfig();
        cfg.protocol = kinds[k];
        cfg.mesh.degree = d;
        cfg.seed = static_cast<std::uint64_t>(run) + 1;
        cfg.injectFailure = false;  // churn replaces the single failure
        cfg.trafficStop = Time::seconds(790.0);
        Scenario sc{cfg};
        ChurnInjector::Config churnCfg;
        churnCfg.start = cfg.trafficStart;
        churnCfg.stop = cfg.trafficStop;
        ChurnInjector churn{sc.network(), Rng{cfg.seed * 7919 + 13}, churnCfg};
        churn.install();
        sc.run();
        delivered += static_cast<double>(sc.stats().data().delivered);
        sent += static_cast<double>(sc.packetsSent());
      }
      ratio[k].push_back(100.0 * delivered / sent);
    }
  }

  report::header("Extension E6", "delivery ratio (%) with every link flapping "
                                 "(MTBF 120 s, MTTR 10 s)");
  report::degreeSweep("percent", degrees, labels, ratio);

  std::printf("\nReading: Baran's redundancy thesis in one table — every protocol climbs\n"
              "toward ~100%% as degree grows, but the event-driven protocols (LS's\n"
              "flood+SPF and DUAL's feasible-successor switch) get there at much lower\n"
              "connectivity than RIP, which re-pays its 30 s black-hole tax on every\n"
              "flap. The timer-paced protocols (DBF's 1-5 s damping, BGP3's 3 s MRAI)\n"
              "sit in between: each flap costs them a damping interval.\n");
  return 0;
}
