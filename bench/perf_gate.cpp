// Performance regression gate for the sim-core hot path (docs/benchmarking.md).
//
// Measures the scheduler's event throughput and the four paper protocols'
// full-scenario wall time with a self-contained harness (no google-benchmark
// runtime, so numbers are comparable across library builds), emits them as
// BENCH_simcore.json, and — given a baseline — fails with a per-metric diff
// when anything regresses beyond the tolerance.
//
//   perf_gate --json BENCH_simcore.json            # refresh the baseline
//   perf_gate --baseline BENCH_simcore.json        # gate: compare, exit 1 on regression
//   perf_gate --smoke --benchmark_min_time=0.01    # ctest smoke run (fast, no gate)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/json_lite.hpp"
#include "reference_scheduler.hpp"
#include "sim/scheduler.hpp"
#include "topo/graph_algo.hpp"
#include "topo/topology.hpp"

namespace {

using namespace rcsim;

constexpr int kScheduleRunEvents = 65536;
constexpr int kSelfReschedEvents = 65536;

double nowSec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// Repeat `body` (which processes `items` items per call) until `minTimeSec`
/// has elapsed, in `reps` independent repetitions; return the best observed
/// items/sec (max over repetitions minimizes scheduler-noise pessimism).
double measureItemsPerSec(int items, double minTimeSec, int reps,
                          const std::function<void()>& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    int iters = 0;
    const double start = nowSec();
    double elapsed = 0.0;
    do {
      body();
      ++iters;
      elapsed = nowSec() - start;
    } while (elapsed < minTimeSec);
    const double rate = static_cast<double>(items) * iters / elapsed;
    if (rate > best) best = rate;
  }
  return best;
}

template <typename Sched>
double benchScheduleRun() {
  Sched sched;
  int fired = 0;
  for (int i = 0; i < kScheduleRunEvents; ++i) {
    sched.scheduleAt(Time::microseconds(i % 997), [&fired] { ++fired; });
  }
  sched.run();
  return static_cast<double>(fired);
}

double benchSelfResched() {
  Scheduler sched;
  int remaining = kSelfReschedEvents;
  std::function<void()> tick = [&] {
    if (--remaining > 0) sched.scheduleAfter(Time::microseconds(1), tick);
  };
  sched.scheduleAfter(Time::microseconds(1), tick);
  sched.run();
  return static_cast<double>(remaining);
}

/// Best-of-`reps` wall milliseconds of one full scenario run.
double benchScenarioMs(ProtocolKind kind, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    ScenarioConfig cfg;
    cfg.protocol = kind;
    cfg.mesh.degree = 4;
    cfg.seed = 11;
    const double start = nowSec();
    const RunResult result = runScenario(cfg);
    const double ms = (nowSec() - start) * 1e3;
    if (result.sent == 0) std::fprintf(stderr, "warning: %s scenario sent 0 packets\n",
                                       toString(kind));
    if (ms < best) best = ms;
  }
  return best;
}

/// The online convergence-anatomy profiler must be cheap enough to stay on
/// by default: its events/sec cost on a full scenario is gated absolutely
/// at this bound, independent of the baseline file.
constexpr double kMaxAnatomyOverheadPct = 3.0;

/// Best observed events/sec of the full DBF scenario with the anatomy
/// profiler on or off. The two variants execute the identical event
/// sequence (the golden digests pin that), so the rate ratio isolates the
/// analyzer's per-event cost.
struct AnatomyBench {
  double onEventsPerSec = 0.0;
  double offEventsPerSec = 0.0;
};

// The on/off reps are interleaved pairwise so machine drift (thermal,
// load, allocator state — this runs right after the 100x100 converge) hits
// both sides equally; like pooled_speedup_vs_seed, the *ratio* is the
// load-immune number the gate holds to its absolute budget.
AnatomyBench benchAnatomy(int reps) {
  AnatomyBench b;
  for (int r = 0; r < reps; ++r) {
    for (const bool anatomy : {true, false}) {
      ScenarioConfig cfg;
      cfg.protocol = ProtocolKind::Dbf;
      cfg.mesh.degree = 4;
      cfg.seed = 11;
      cfg.anatomy = anatomy;
      const double start = nowSec();
      const RunResult result = runScenario(cfg);
      const double sec = nowSec() - start;
      if (sec <= 0.0) continue;
      double& best = anatomy ? b.onEventsPerSec : b.offEventsPerSec;
      best = std::max(best, static_cast<double>(result.eventsExecuted) / sec);
    }
  }
  return b;
}

/// Peak resident set size in MiB (VmHWM); 0 when /proc is unavailable.
double peakRssMb() {
#ifdef __linux__
  std::ifstream status{"/proc/self/status"};
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      long kb = 0;
      std::sscanf(line.c_str(), "VmHWM: %ld kB", &kb);
      return static_cast<double>(kb) / 1024.0;
    }
  }
#endif
  return 0.0;
}

/// Best-of-`reps` wall milliseconds of `body`.
double benchMs(int reps, const std::function<void()>& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double start = nowSec();
    body();
    const double ms = (nowSec() - start) * 1e3;
    if (ms < best) best = ms;
  }
  return best;
}

struct Metrics {
  double scheduleRunEventsPerSec = 0.0;
  double seedScheduleRunEventsPerSec = 0.0;
  double selfReschedEventsPerSec = 0.0;
  std::vector<std::pair<std::string, double>> scenarioMs;  // stable order
  std::vector<std::pair<std::string, double>> topologyMs;  // stable order
  double anatomyOnEventsPerSec = 0.0;
  double anatomyOffEventsPerSec = 0.0;
  double rssMb = 0.0;

  [[nodiscard]] double anatomyOverheadPct() const {
    if (anatomyOffEventsPerSec <= 0.0 || anatomyOnEventsPerSec <= 0.0) return 0.0;
    return (1.0 - anatomyOnEventsPerSec / anatomyOffEventsPerSec) * 100.0;
  }
};

/// The Internet-scale topology rows (docs/topologies.md). The converge row
/// runs the pinned-digest 100x100 scenario once — it is the one metric too
/// expensive to repeat, and the smoke run skips it entirely.
void collectTopology(Metrics& m, int reps, bool includeConverge) {
  m.topologyMs.emplace_back("mesh100x100_build", benchMs(reps, [] {
    const Topology topo = makeRegularMesh(MeshSpec{100, 100, 4});
    if (!topo.isConnected()) std::fprintf(stderr, "warning: 100x100 mesh disconnected?\n");
  }));
  m.topologyMs.emplace_back("dense_random_build", benchMs(reps, [] {
    RandomGraphSpec spec;
    spec.nodes = 200;
    spec.avgDegree = 150.0;
    spec.seed = 7;
    const Topology topo = makeRandomTopology(spec);
    if (topo.edges.size() != 15000u) std::fprintf(stderr, "warning: dense build edge count\n");
  }));
  m.topologyMs.emplace_back("abilene_sweep", benchMs(reps, [] {
    for (const ProtocolKind kind :
         {ProtocolKind::Rip, ProtocolKind::Dbf, ProtocolKind::Bgp, ProtocolKind::Bgp3}) {
      ScenarioConfig cfg;
      cfg.protocol = kind;
      cfg.topology = TopologyKind::Named;
      cfg.seed = 11;
      const RunResult result = runScenario(cfg);
      if (result.sent == 0) {
        std::fprintf(stderr, "warning: abilene %s scenario sent 0 packets\n", toString(kind));
      }
    }
  }));
  if (includeConverge) {
    m.topologyMs.emplace_back("mesh100x100_converge", benchMs(1, [] {
      const RunResult result = runScenario(largeMeshConfig());
      if (result.data.delivered == 0) {
        std::fprintf(stderr, "warning: 100x100 converge scenario delivered 0 packets\n");
      }
    }));
  }
}

Metrics collect(double minTimeSec, int reps, bool includeConverge) {
  Metrics m;
  // The pooled engine and the frozen pre-rewrite engine
  // (bench/reference_scheduler.hpp) run the identical workload back to back
  // in each repetition, so their ratio is measured under the same load and
  // flags — cross-process comparisons on shared machines are noise.
  for (int r = 0; r < reps; ++r) {
    m.scheduleRunEventsPerSec =
        std::max(m.scheduleRunEventsPerSec,
                 measureItemsPerSec(kScheduleRunEvents, minTimeSec, 1,
                                    [] { benchScheduleRun<Scheduler>(); }));
    m.seedScheduleRunEventsPerSec =
        std::max(m.seedScheduleRunEventsPerSec,
                 measureItemsPerSec(kScheduleRunEvents, minTimeSec, 1,
                                    [] { benchScheduleRun<bench::ReferenceScheduler>(); }));
  }
  m.selfReschedEventsPerSec =
      measureItemsPerSec(kSelfReschedEvents, minTimeSec, reps, [] { benchSelfResched(); });
  for (const ProtocolKind kind :
       {ProtocolKind::Rip, ProtocolKind::Dbf, ProtocolKind::Bgp, ProtocolKind::Bgp3}) {
    m.scenarioMs.emplace_back(toString(kind), benchScenarioMs(kind, reps));
  }
  collectTopology(m, reps, includeConverge);
  // Interleave-free back-to-back measurement under the same load, like the
  // pooled-vs-seed scheduler pair above; extra reps because a 3% bound
  // needs less noise than a 15% one.
  const AnatomyBench anat = benchAnatomy(reps * 2);
  m.anatomyOnEventsPerSec = anat.onEventsPerSec;
  m.anatomyOffEventsPerSec = anat.offEventsPerSec;
  m.rssMb = peakRssMb();
  return m;
}

std::string toJson(const Metrics& m) {
  std::ostringstream os;
  char buf[64];
  auto num = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return std::string{buf};
  };
  os << "{\n";
  os << "  \"schema\": \"rcsim-bench-simcore-v1\",\n";
  os << "  \"scheduler\": {\n";
  os << "    \"schedule_run_events_per_sec\": " << num(m.scheduleRunEventsPerSec) << ",\n";
  os << "    \"self_resched_events_per_sec\": " << num(m.selfReschedEventsPerSec) << ",\n";
  os << "    \"seed_schedule_run_events_per_sec\": " << num(m.seedScheduleRunEventsPerSec)
     << ",\n";
  os << "    \"pooled_speedup_vs_seed\": "
     << num(m.seedScheduleRunEventsPerSec > 0.0
                ? m.scheduleRunEventsPerSec / m.seedScheduleRunEventsPerSec
                : 0.0)
     << "\n";
  os << "  },\n";
  os << "  \"scenario_ms\": {\n";
  for (std::size_t i = 0; i < m.scenarioMs.size(); ++i) {
    os << "    \"" << m.scenarioMs[i].first << "\": " << num(m.scenarioMs[i].second)
       << (i + 1 < m.scenarioMs.size() ? "," : "") << "\n";
  }
  os << "  },\n";
  os << "  \"topology_ms\": {\n";
  for (std::size_t i = 0; i < m.topologyMs.size(); ++i) {
    os << "    \"" << m.topologyMs[i].first << "\": " << num(m.topologyMs[i].second)
       << (i + 1 < m.topologyMs.size() ? "," : "") << "\n";
  }
  os << "  },\n";
  os << "  \"anatomy_overhead\": {\n";
  os << "    \"events_per_sec_on\": " << num(m.anatomyOnEventsPerSec) << ",\n";
  os << "    \"events_per_sec_off\": " << num(m.anatomyOffEventsPerSec) << ",\n";
  os << "    \"overhead_pct\": " << num(m.anatomyOverheadPct()) << "\n";
  os << "  },\n";
  os << "  \"rss_mb\": " << num(m.rssMb) << "\n";
  os << "}\n";
  return os.str();
}

/// One gate check. `higherIsBetter` picks the regression direction.
bool checkMetric(const char* name, double baseline, double current, double tolerancePct,
                 bool higherIsBetter, int& failures) {
  if (baseline <= 0.0) return true;  // metric absent from the baseline: nothing to gate
  const double ratio = current / baseline;
  const double tol = tolerancePct / 100.0;
  const bool regressed = higherIsBetter ? ratio < 1.0 - tol : ratio > 1.0 + tol;
  std::printf("  %-34s baseline %12.2f  current %12.2f  (%+6.1f%%)%s\n", name, baseline,
              current, (ratio - 1.0) * 100.0, regressed ? "  << REGRESSION" : "");
  if (regressed) ++failures;
  return !regressed;
}

int compareAgainstBaseline(const Metrics& m, const std::string& path, double tolerancePct,
                           double rssTolerancePct) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "perf_gate: cannot read baseline %s\n", path.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  JsonValue base;
  try {
    base = parseJson(ss.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_gate: malformed baseline %s: %s\n", path.c_str(), e.what());
    return 2;
  }

  std::printf("perf gate vs %s (tolerance %.0f%%):\n", path.c_str(), tolerancePct);
  int failures = 0;
  const JsonValue& sched = base.at("scheduler");
  checkMetric("scheduler.schedule_run (ev/s)", sched.numberAt("schedule_run_events_per_sec"),
              m.scheduleRunEventsPerSec, tolerancePct, /*higherIsBetter=*/true, failures);
  checkMetric("scheduler.self_resched (ev/s)", sched.numberAt("self_resched_events_per_sec"),
              m.selfReschedEventsPerSec, tolerancePct, /*higherIsBetter=*/true, failures);
  if (sched.has("pooled_speedup_vs_seed") && m.seedScheduleRunEventsPerSec > 0.0) {
    // The in-process ratio is load-independent, so it gates the pooled
    // engine's advantage itself, not just absolute machine speed.
    checkMetric("scheduler.pooled_speedup_vs_seed",
                sched.numberAt("pooled_speedup_vs_seed"),
                m.scheduleRunEventsPerSec / m.seedScheduleRunEventsPerSec, tolerancePct,
                /*higherIsBetter=*/true, failures);
  }
  const JsonValue& scen = base.at("scenario_ms");
  for (const auto& [name, ms] : m.scenarioMs) {
    if (!scen.has(name)) continue;
    checkMetric(("scenario." + name + " (ms)").c_str(), scen.numberAt(name), ms, tolerancePct,
                /*higherIsBetter=*/false, failures);
  }
  if (base.has("topology_ms")) {
    const JsonValue& topo = base.at("topology_ms");
    for (const auto& [name, ms] : m.topologyMs) {
      if (!topo.has(name)) continue;
      checkMetric(("topology." + name + " (ms)").c_str(), topo.numberAt(name), ms, tolerancePct,
                  /*higherIsBetter=*/false, failures);
    }
  }
  if (m.anatomyOffEventsPerSec > 0.0 && m.anatomyOnEventsPerSec > 0.0) {
    // The profiler's cost gates against an absolute budget, not the
    // baseline: it must never eat more than kMaxAnatomyOverheadPct of the
    // event rate, or on-by-default anatomy stops being free.
    const double pct = m.anatomyOverheadPct();
    const bool over = pct > kMaxAnatomyOverheadPct;
    std::printf("  %-34s budget   %9.2f%%  current   %+9.2f%%%s\n", "anatomy_overhead_pct",
                kMaxAnatomyOverheadPct, pct, over ? "  << REGRESSION" : "");
    if (over) ++failures;
  }
  if (base.has("rss_mb") && m.rssMb > 0.0) {
    // Peak RSS gates under its own (usually tighter) tolerance: memory is
    // far less noisy than wall time, so a 10% budget is realistic where a
    // 15% timing budget is not.
    checkMetric("rss_mb (peak, MiB)", base.numberAt("rss_mb"), m.rssMb, rssTolerancePct,
                /*higherIsBetter=*/false, failures);
  }
  if (failures > 0) {
    std::printf("perf gate: %d metric(s) regressed beyond %.0f%% — failing.\n", failures,
                tolerancePct);
    std::printf("If intentional, refresh with scripts/run_bench_gate.sh --update-baseline\n");
    return 1;
  }
  std::printf("perf gate: all metrics within tolerance.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string jsonOut;
  std::string baseline;
  double tolerancePct = 15.0;
  double rssTolerancePct = -1.0;  // default: follow --tolerance
  double minTimeSec = 0.5;
  int reps = 3;
  bool smoke = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perf_gate: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    auto number = [&](double min) -> double {
      const std::string v = value();
      char* end = nullptr;
      const double parsed = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || parsed < min) {
        std::fprintf(stderr, "perf_gate: %s wants a number >= %g, got \"%s\"\n", arg.c_str(), min,
                     v.c_str());
        std::exit(2);
      }
      return parsed;
    };
    if (arg == "--json") {
      jsonOut = value();
    } else if (arg == "--baseline") {
      baseline = value();
    } else if (arg == "--tolerance") {
      tolerancePct = number(0.0);
    } else if (arg == "--rss-tolerance") {
      rssTolerancePct = number(0.0);
    } else if (arg == "--reps") {
      reps = static_cast<int>(number(1.0));
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--benchmark_min_time=", 0) == 0) {
      minTimeSec = std::atof(arg.c_str() + std::strlen("--benchmark_min_time="));
    } else {
      std::fprintf(stderr,
                   "usage: perf_gate [--json PATH] [--baseline PATH] [--tolerance PCT]\n"
                   "                 [--rss-tolerance PCT] [--reps N] [--smoke]\n"
                   "                 [--benchmark_min_time=SEC]\n");
      return 2;
    }
  }
  if (smoke) {
    reps = 1;
    if (minTimeSec > 0.01) minTimeSec = 0.01;
  }

  const Metrics m = collect(minTimeSec, reps, /*includeConverge=*/!smoke);
  const std::string json = toJson(m);
  std::printf("%s", json.c_str());

  if (!jsonOut.empty()) {
    std::ofstream out{jsonOut};
    if (!out) {
      std::fprintf(stderr, "perf_gate: cannot write %s\n", jsonOut.c_str());
      return 2;
    }
    out << json;
  }
  // Self-check: what we emitted must parse back (keeps the smoke run honest).
  try {
    const JsonValue v = parseJson(json);
    if (v.at("scheduler").numberAt("schedule_run_events_per_sec") <= 0.0) {
      std::fprintf(stderr, "perf_gate: zero scheduler throughput?\n");
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_gate: emitted JSON does not parse: %s\n", e.what());
    return 2;
  }

  if (!baseline.empty()) {
    return compareAgainstBaseline(m, baseline, tolerancePct,
                                  rssTolerancePct >= 0.0 ? rssTolerancePct : tolerancePct);
  }
  return 0;
}
