// Ablation A1 — MRAI granularity: per-neighbor (what vendors implement and
// the paper simulates) versus per-(neighbor, destination) (what the paper
// conjectures would shorten the inconsistency window: "the results could
// have been different had the MRAI timer been implemented on a per
// (neighbor, destination) basis", §5.2).
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Ablation A1: per-neighbor vs per-destination MRAI");
  const std::vector<int> degrees{3, 4, 5, 6};

  struct Variant {
    const char* name;
    ProtocolKind kind;
    bool perDest;
  };
  const std::vector<Variant> variants{
      {"BGP/nbr", ProtocolKind::Bgp, false},
      {"BGP/dst", ProtocolKind::Bgp, true},
      {"BGP3/nbr", ProtocolKind::Bgp3, false},
      {"BGP3/dst", ProtocolKind::Bgp3, true},
  };

  std::vector<std::string> labels;
  std::vector<std::vector<double>> drops(variants.size());
  std::vector<std::vector<double>> ttl(variants.size());
  std::vector<std::vector<double>> conv(variants.size());
  for (std::size_t v = 0; v < variants.size(); ++v) {
    labels.emplace_back(variants[v].name);
    for (const int d : degrees) {
      ScenarioConfig cfg = baseConfig();
      cfg.protocol = variants[v].kind;
      cfg.mesh.degree = d;
      cfg.protoCfg.bgp.perDestMrai = variants[v].perDest;
      const auto a = Aggregate::over(runMany(cfg, runs));
      drops[v].push_back(a.dropsNoRoute);
      ttl[v].push_back(a.dropsTtl);
      conv[v].push_back(a.routingConvergenceSec);
    }
  }

  report::header("Ablation A1", "packet drops due to no route");
  report::degreeSweep("packets", degrees, labels, drops);
  report::header("Ablation A1", "TTL expirations");
  report::degreeSweep("packets", degrees, labels, ttl);
  report::header("Ablation A1", "network routing convergence time");
  report::degreeSweep("seconds", degrees, labels, conv);
  return 0;
}
