// Ablation A5 — the distance-vector infinity. The paper's conclusion calls
// for "a re-examination of the counting-into-infinity issue" in
// well-connected networks: a redundant mesh makes DBF count only to the
// next-best path, so a small infinity mostly costs *reachability* (long
// backup paths read as unreachable) while a large infinity mostly costs
// *counting time* when a destination truly disappears.
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Ablation A5: DV infinity metric");
  const std::vector<int> degrees{3, 4, 6};
  const std::vector<int> infinities{8, 16, 32};

  for (const ProtocolKind kind : {ProtocolKind::Rip, ProtocolKind::Dbf}) {
    std::vector<std::string> labels;
    std::vector<std::vector<double>> drops;
    std::vector<std::vector<double>> conv;
    for (const int inf : infinities) {
      labels.push_back(std::string{toString(kind)} + "/inf" + std::to_string(inf));
      std::vector<double> dRow;
      std::vector<double> cRow;
      for (const int d : degrees) {
        ScenarioConfig cfg = baseConfig();
        cfg.protocol = kind;
        cfg.mesh.degree = d;
        cfg.protoCfg.dv.infinityMetric = inf;
        const auto a = Aggregate::over(runMany(cfg, runs));
        dRow.push_back(a.dropsNoRoute);
        cRow.push_back(a.routingConvergenceSec);
      }
      drops.push_back(std::move(dRow));
      conv.push_back(std::move(cRow));
    }
    report::header(std::string{"Ablation A5, "} + toString(kind),
                   "packet drops due to no route / routing convergence time");
    report::degreeSweep("packets", degrees, labels, drops);
    report::degreeSweep("seconds", degrees, labels, conv);
  }
  return 0;
}
