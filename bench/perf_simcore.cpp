// Microbenchmarks of the simulator substrate (google-benchmark): event
// scheduling throughput, link pipeline cost, full-scenario run times. These
// are performance regressions guards for the engine, not paper figures.
#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "topo/topology.hpp"

namespace {

using namespace rcsim;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler sched;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      sched.scheduleAt(Time::microseconds(i % 997), [&fired] { ++fired; });
    }
    sched.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1024)->Arg(65536);

void BM_SchedulerSelfRescheduling(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler sched;
    int remaining = static_cast<int>(state.range(0));
    std::function<void()> tick = [&] {
      if (--remaining > 0) sched.scheduleAfter(Time::microseconds(1), tick);
    };
    sched.scheduleAfter(Time::microseconds(1), tick);
    sched.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SchedulerSelfRescheduling)->Arg(65536);

void BM_RngUniform(benchmark::State& state) {
  Rng rng{123};
  double acc = 0;
  for (auto _ : state) acc += rng.uniform01();
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngUniform);

void BM_MeshGeneration(benchmark::State& state) {
  for (auto _ : state) {
    const auto topo = makeRegularMesh(MeshSpec{7, 7, static_cast<int>(state.range(0))});
    benchmark::DoNotOptimize(topo.edges.size());
  }
}
BENCHMARK(BM_MeshGeneration)->Arg(4)->Arg(16);

void BM_FullScenario(benchmark::State& state) {
  const auto kind = static_cast<ProtocolKind>(state.range(0));
  for (auto _ : state) {
    ScenarioConfig cfg;
    cfg.protocol = kind;
    cfg.mesh.degree = static_cast<int>(state.range(1));
    cfg.seed = 11;
    const RunResult r = runScenario(cfg);
    benchmark::DoNotOptimize(r.data.delivered);
  }
}
BENCHMARK(BM_FullScenario)
    ->Args({static_cast<long>(ProtocolKind::Rip), 4})
    ->Args({static_cast<long>(ProtocolKind::Dbf), 4})
    ->Args({static_cast<long>(ProtocolKind::Bgp), 4})
    ->Args({static_cast<long>(ProtocolKind::Bgp3), 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
