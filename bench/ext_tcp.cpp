// Extension E1 (paper §6 future work) — end-to-end TCP performance during
// routing convergence: a fixed-window reliable transfer (cumulative ACKs,
// RTO, fast retransmit) whose data AND acks ride the routed data plane.
//
// Reports goodput (new in-order packets/s at the receiver) around the
// failure, plus total retransmissions — the protocol's convergence behavior
// now hits the flow twice (forward path and ACK path).
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Extension E1: TCP goodput through convergence");
  const auto protocols = kPaperProtocols;

  for (const int degree : {3, 6}) {
    std::vector<Aggregate> aggs;
    std::vector<double> retrans;
    std::vector<double> goodput;
    for (const auto kind : protocols) {
      ScenarioConfig cfg = baseConfig();
      cfg.protocol = kind;
      cfg.mesh.degree = degree;
      cfg.traffic = TrafficKind::Tcp;
      cfg.tcpWindow = 8;
      const auto results = runMany(cfg, runs);
      double rt = 0;
      double gp = 0;
      for (const auto& r : results) {
        rt += static_cast<double>(r.tcpRetransmissions);
        gp += static_cast<double>(r.tcpGoodputPackets);
      }
      retrans.push_back(rt / runs);
      goodput.push_back(gp / runs);
      aggs.push_back(Aggregate::over(results));
    }

    report::header("Extension E1, degree " + std::to_string(degree),
                   "TCP-like flow through one link failure");
    std::printf("%-6s %16s %16s %16s %16s\n", "proto", "goodput-pkts", "retransmissions",
                "rt-conv(s)", "fwd-conv(s)");
    for (std::size_t p = 0; p < protocols.size(); ++p) {
      std::printf("%-6s %16.1f %16.1f %16.2f %16.2f\n", toString(protocols[p]), goodput[p],
                  retrans[p], aggs[p].routingConvergenceSec, aggs[p].forwardingConvergenceSec);
    }
  }

  std::printf("\nReading: protocols that black-hole (RIP) stall the window for the whole\n"
              "switch-over; protocols with alternate paths keep the ACK clock ticking, so\n"
              "goodput barely dips and retransmissions stay near zero in dense meshes.\n");
  return 0;
}
