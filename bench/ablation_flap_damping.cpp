// Ablation A4 — route flap damping during convergence. The paper's §1
// warns (citing Bush/Griffin/Mao and Mao et al.) that richer connectivity
// means more alternate paths explored after one failure, which RFD can
// misread as flapping: routes get suppressed and convergence *worsens* as
// the network gets better connected. This bench reproduces that effect.
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Ablation A4: route flap damping");
  const std::vector<int> degrees{3, 4, 5, 6, 8};

  struct Variant {
    const char* name;
    bool rfd;
    double penalty;
  };
  // "aggressive" halves the suppress threshold: one re-advertisement after
  // a withdrawal is already enough to suppress.
  const std::vector<Variant> variants{
      {"BGP3", false, 1000.0},
      {"BGP3+rfd", true, 1000.0},
      {"BGP3+rfd!", true, 1999.0},
  };

  std::vector<std::string> labels;
  std::vector<std::vector<double>> drops(variants.size());
  std::vector<std::vector<double>> conv(variants.size());
  for (std::size_t v = 0; v < variants.size(); ++v) {
    labels.emplace_back(variants[v].name);
    for (const int d : degrees) {
      ScenarioConfig cfg = baseConfig();
      cfg.protocol = ProtocolKind::Bgp3;
      cfg.mesh.degree = d;
      cfg.protoCfg.bgp.flapDampingEnabled = variants[v].rfd;
      cfg.protoCfg.bgp.rfdPenaltyPerFlap = variants[v].penalty;
      const auto a = Aggregate::over(runMany(cfg, runs));
      drops[v].push_back(a.dropsNoRoute + a.dropsTtl);
      conv[v].push_back(a.routingConvergenceSec);
    }
  }

  report::header("Ablation A4", "packet drops (no-route + TTL) during convergence");
  report::degreeSweep("packets", degrees, labels, drops);
  report::header("Ablation A4", "network routing convergence time");
  report::degreeSweep("seconds", degrees, labels, conv);
  return 0;
}
