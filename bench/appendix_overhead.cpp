// Appendix — routing load. The paper's related work (Shankar et al.,
// Zaumen & Garcia-Luna-Aceves) measures routing bandwidth consumption
// alongside delivery; this bench adds that axis: control messages and
// bytes per protocol, total and during the convergence episode.
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Appendix: routing protocol overhead");
  const std::vector<ProtocolKind> protocols{ProtocolKind::Rip, ProtocolKind::Dbf,
                                            ProtocolKind::Bgp, ProtocolKind::Bgp3,
                                            ProtocolKind::LinkState};

  for (const int degree : {4, 8}) {
    report::header("Routing overhead, degree " + std::to_string(degree),
                   "whole 800 s run incl. warm-up; convergence = after the failure");
    std::printf("%-6s %14s %14s %20s\n", "proto", "ctl-msgs", "ctl-KB", "ctl-msgs-converg.");
    for (const auto kind : protocols) {
      ScenarioConfig cfg = baseConfig();
      cfg.protocol = kind;
      cfg.mesh.degree = degree;
      const auto results = runMany(cfg, runs);
      double msgs = 0;
      double bytes = 0;
      double after = 0;
      for (const auto& r : results) {
        msgs += static_cast<double>(r.controlMessages);
        bytes += static_cast<double>(r.controlBytes);
        after += static_cast<double>(r.controlMessagesAfterFailure);
      }
      std::printf("%-6s %14.0f %14.1f %20.0f\n", toString(kind), msgs / runs,
                  bytes / runs / 1024.0, after / runs);
    }
  }

  std::printf("\nReading: RIP/DBF pay a constant periodic tax; BGP pays per change plus\n"
              "transport ACKs; LS pays per LSA refresh and per failure. The convergence\n"
              "column shows the burst each failure triggers — the paper's \"good balance\n"
              "between convergence overhead and convergence time\" trade-off.\n");
  return 0;
}
