// Extension E2 (paper §6 future work) — multiple flows and multiple
// overlapping failures. Failure k hits flow (k mod flows)'s then-current
// forwarding path 5 s after failure k-1, so convergence episodes overlap.
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Extension E2: multiple flows, overlapping failures");
  const auto protocols = kPaperProtocols;
  const std::vector<int> failureCounts{1, 2, 4};

  for (const int degree : {4, 6}) {
    report::header("Extension E2, degree " + std::to_string(degree),
                   "4 flows; drops summed over all flows during convergence");
    std::printf("%-6s", "proto");
    for (const int fc : failureCounts) std::printf("   %2d-failure(s)", fc);
    std::printf("   %12s\n", "rt-conv@4");
    for (const auto kind : protocols) {
      std::printf("%-6s", toString(kind));
      double lastConv = 0;
      for (const int fc : failureCounts) {
        ScenarioConfig cfg = baseConfig();
        cfg.protocol = kind;
        cfg.mesh.degree = degree;
        cfg.flows = 4;
        cfg.failureCount = fc;
        cfg.failureSpacing = Time::seconds(5.0);
        const auto a = Aggregate::over(runMany(cfg, runs));
        std::printf("   %12.2f", a.dropsNoRoute + a.dropsTtl);
        lastConv = a.routingConvergenceSec;
      }
      std::printf("   %12.2f\n", lastConv);
    }
  }

  std::printf("\nReading: losses grow roughly with the number of failures; the alternate-\n"
              "path protocols degrade gracefully while RIP multiplies its black-hole\n"
              "windows. Convergence time stretches as episodes overlap.\n");
  return 0;
}
