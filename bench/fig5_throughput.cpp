// Figure 5 — "Instantaneous Throughput" (packets/second at the receiver)
// for node degrees 3, 4 and 6, with time normalized so the failure lands at
// t = 50 s, exactly as the paper plots it.
//
// Expected shapes: in sparse meshes every protocol dips at the failure; RIP
// stays near zero until the ~30 s periodic update, DBF/BGP3 climb back
// around their triggered-update timers, BGP takes roughly an MRAI; at
// degree 6 the dip all but disappears for the cache-keeping protocols.
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Figure 5: instantaneous throughput");
  const auto protocols = kPaperProtocols;

  for (const int degree : {3, 4, 6}) {
    std::vector<Aggregate> aggs;
    for (const auto kind : protocols) {
      ScenarioConfig cfg = baseConfig();
      cfg.protocol = kind;
      cfg.mesh.degree = degree;
      aggs.push_back(Aggregate::over(runMany(cfg, runs)));
    }
    report::header("Figure 5, degree " + std::to_string(degree),
                   "mean delivered packets/second at the receiver");
    report::timeSeries("packets/s", names(protocols), aggs, -20, 60);
  }
  return 0;
}
