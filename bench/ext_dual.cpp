// Extension E5 — DUAL (diffusing computations) vs the paper's protocols.
// The paper's §2/§6 argument: loop-prevention schemes like DUAL "eliminate
// routing loops by paying a high cost of delaying routing updates and
// stopping packet delivery during convergence". This bench quantifies that
// trade on the paper's scenario family: DUAL never loops (zero TTL
// expirations by construction) but freezes routes whenever the alternate is
// not provably loop-free, converting would-be loop losses into black-hole
// losses.
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Extension E5: DUAL vs DV/PV family", 20);
  const auto degrees = std::vector<int>{3, 4, 5, 6, 8};
  const std::vector<ProtocolKind> kinds{ProtocolKind::Dbf, ProtocolKind::Bgp3,
                                        ProtocolKind::Dual};

  std::vector<std::string> labels = names(kinds);
  std::vector<std::vector<double>> drops(kinds.size());
  std::vector<std::vector<double>> ttl(kinds.size());
  std::vector<std::vector<double>> conv(kinds.size());
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const auto aggs = sweepDegrees(kinds[k], degrees, runs);
    for (const auto& a : aggs) {
      drops[k].push_back(a.dropsNoRoute);
      ttl[k].push_back(a.dropsTtl);
      conv[k].push_back(a.routingConvergenceSec);
    }
  }

  report::header("Extension E5", "packet drops due to no route (black-holes)");
  report::degreeSweep("packets", degrees, labels, drops);
  report::header("Extension E5", "TTL expirations (loops — must be 0 for DUAL)");
  report::degreeSweep("packets", degrees, labels, ttl);
  report::header("Extension E5", "network routing convergence time");
  report::degreeSweep("seconds", degrees, labels, conv);

  std::printf("\nReading: DUAL's freeze window is only as long as its diffusion, and a\n"
              "diffusion over millisecond links completes in milliseconds — so the\n"
              "delivery cost the paper attributes to loop-free algorithms (§2) barely\n"
              "materializes here; DUAL pairs DBF-grade switch-over with hard\n"
              "loop-freedom. The paper's critique presumes slow diffusions (realistic\n"
              "for WAN latencies and large diameters); scale the topology or delays up\n"
              "and the freeze tax returns.\n");
  return 0;
}
