// Figure 3 — "Number of Packet Drops due to no route vs. node-degree".
//
// Reproduces the paper's headline result: drops fall as connectivity rises;
// with degree >= 6 the cache-keeping protocols (DBF, BGP, BGP3) drop
// virtually nothing, while RIP improves only slightly because it must wait
// for another neighbor's periodic announcement.
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Figure 3: packet drops due to no route");
  const auto degrees = paperDegrees();
  const auto protocols = kPaperProtocols;

  std::vector<std::vector<double>> noRoute(protocols.size());
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    const auto aggs = sweepDegrees(protocols[p], degrees, runs);
    for (const auto& a : aggs) noRoute[p].push_back(a.dropsNoRoute);
  }

  report::header("Figure 3", "mean data packets dropped for lack of a route during convergence");
  report::degreeSweep("packets", degrees, names(protocols), noRoute);
  return 0;
}
