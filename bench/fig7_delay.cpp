// Figure 7 — "Instantaneous Packet Delay" for node degrees 4, 5 and 6,
// time normalized so the failure lands at t = 50 s.
//
// Expected shapes (Observation 5): packets delivered during convergence
// take sub-optimal paths and show extra delay over the steady state;
// packets that escape a transient loop show much larger delay spikes
// (the paper calls out the degree-5 oscillation).
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Figure 7: instantaneous packet delay");
  const auto protocols = kPaperProtocols;

  for (const int degree : {4, 5, 6}) {
    std::vector<Aggregate> aggs;
    for (const auto kind : protocols) {
      ScenarioConfig cfg = baseConfig();
      cfg.protocol = kind;
      cfg.mesh.degree = degree;
      aggs.push_back(Aggregate::over(runMany(cfg, runs)));
    }
    report::header("Figure 7, degree " + std::to_string(degree),
                   "mean end-to-end delay (s) of packets delivered in each second");
    report::timeSeries("delay-s", names(protocols), aggs, -20, 60, /*delaySeries=*/true);
  }
  return 0;
}
