// Figure 6 — (a) "Forwarding Path Convergence Time" and (b) "Network
// Routing Convergence Time" versus node degree.
//
// The paper's point (Observation 4): BGP3 converges far faster than BGP,
// yet at degree >= 6 the *packet drop* difference is negligible — faster
// convergence is not the same thing as better packet delivery.
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Figure 6: convergence times");
  const auto degrees = paperDegrees();
  const auto protocols = kPaperProtocols;

  std::vector<std::vector<double>> fwd(protocols.size());
  std::vector<std::vector<double>> routing(protocols.size());
  std::vector<std::vector<double>> transient(protocols.size());
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    const auto aggs = sweepDegrees(protocols[p], degrees, runs);
    for (const auto& a : aggs) {
      fwd[p].push_back(a.forwardingConvergenceSec);
      routing[p].push_back(a.routingConvergenceSec);
      transient[p].push_back(a.transientPaths);
    }
  }

  report::header("Figure 6(a)", "mean forwarding-path convergence time after failure");
  report::degreeSweep("seconds", degrees, names(protocols), fwd);
  report::header("Figure 6(b)", "mean network routing convergence time after failure");
  report::degreeSweep("seconds", degrees, names(protocols), routing);
  report::header("Figure 6 (companion)", "mean number of transient forwarding paths");
  report::degreeSweep("paths", degrees, names(protocols), transient);
  return 0;
}
