// Ablation A3 — triggered-update damping. The paper identifies fast
// propagation of failure information as a key packet-delivery factor
// (§4.3); the RFC 2453 damping timer (U[1,5] s) slows exactly that. Sweep
// the damping window for RIP/DBF, and additionally run BGP with
// withdrawals *subjected* to the MRAI (the paper notes withdrawals are
// normally exempt so unreachability propagates quickly).
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Ablation A3: update damping");
  const std::vector<int> degrees{3, 4, 5, 6};

  struct DampRange {
    double lo;
    double hi;
  };
  const std::vector<DampRange> ranges{{0.0, 0.0}, {1.0, 5.0}, {5.0, 10.0}};

  std::vector<std::string> labels;
  std::vector<std::vector<double>> drops;
  std::vector<std::vector<double>> conv;
  for (const ProtocolKind kind : {ProtocolKind::Rip, ProtocolKind::Dbf}) {
    for (const auto& range : ranges) {
      char label[32];
      std::snprintf(label, sizeof label, "%s/%g-%g", toString(kind), range.lo, range.hi);
      labels.emplace_back(label);
      std::vector<double> dRow, cRow;
      for (const int d : degrees) {
        ScenarioConfig cfg = baseConfig();
        cfg.protocol = kind;
        cfg.mesh.degree = d;
        cfg.protoCfg.dv.triggerDampMinSec = range.lo;
        cfg.protoCfg.dv.triggerDampMaxSec = range.hi;
        const auto a = Aggregate::over(runMany(cfg, runs));
        dRow.push_back(a.dropsNoRoute);
        cRow.push_back(a.routingConvergenceSec);
      }
      drops.push_back(std::move(dRow));
      conv.push_back(std::move(cRow));
    }
  }
  // BGP with and without the withdrawal exemption.
  for (const bool exempt : {true, false}) {
    labels.emplace_back(exempt ? "BGP3/wd-fast" : "BGP3/wd-mrai");
    std::vector<double> dRow, cRow;
    for (const int d : degrees) {
      ScenarioConfig cfg = baseConfig();
      cfg.protocol = ProtocolKind::Bgp3;
      cfg.mesh.degree = d;
      cfg.protoCfg.bgp.withdrawalsExemptFromMrai = exempt;
      const auto a = Aggregate::over(runMany(cfg, runs));
      dRow.push_back(a.dropsNoRoute);
      cRow.push_back(a.routingConvergenceSec);
    }
    drops.push_back(std::move(dRow));
    conv.push_back(std::move(cRow));
  }

  report::header("Ablation A3", "packet drops due to no route");
  report::degreeSweep("packets", degrees, labels, drops);
  report::header("Ablation A3", "network routing convergence time");
  report::degreeSweep("seconds", degrees, labels, conv);
  return 0;
}
