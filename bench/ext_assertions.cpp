// Extension E4 — consistency assertions (the paper's ref [21], Pei et al.,
// "Improving BGP Convergence Through Consistency Assertions"). The paper's
// §4.2 notes BGP's path information lets a node check an alternate path's
// validity "in some restricted cases" and that [21] used this to cut
// convergence time substantially. This bench measures that cut on the
// paper's own scenario family.
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Extension E4: BGP consistency assertions");
  const std::vector<int> degrees{3, 4, 5, 6};

  struct Variant {
    const char* name;
    ProtocolKind kind;
    bool assertions;
  };
  const std::vector<Variant> variants{
      {"BGP", ProtocolKind::Bgp, false},
      {"BGP+asrt", ProtocolKind::Bgp, true},
      {"BGP3", ProtocolKind::Bgp3, false},
      {"BGP3+asrt", ProtocolKind::Bgp3, true},
  };

  std::vector<std::string> labels;
  std::vector<std::vector<double>> drops(variants.size());
  std::vector<std::vector<double>> ttl(variants.size());
  std::vector<std::vector<double>> conv(variants.size());
  for (std::size_t v = 0; v < variants.size(); ++v) {
    labels.emplace_back(variants[v].name);
    for (const int d : degrees) {
      ScenarioConfig cfg = baseConfig();
      cfg.protocol = variants[v].kind;
      cfg.mesh.degree = d;
      cfg.protoCfg.bgp.consistencyAssertions = variants[v].assertions;
      const auto a = Aggregate::over(runMany(cfg, runs));
      drops[v].push_back(a.dropsNoRoute);
      ttl[v].push_back(a.dropsTtl);
      conv[v].push_back(a.routingConvergenceSec);
    }
  }

  report::header("Extension E4", "packet drops due to no route");
  report::degreeSweep("packets", degrees, labels, drops);
  report::header("Extension E4", "TTL expirations (transient loops)");
  report::degreeSweep("packets", degrees, labels, ttl);
  report::header("Extension E4", "network routing convergence time");
  report::degreeSweep("seconds", degrees, labels, conv);

  // Part 2 — Tdown: disconnect the destination entirely (fail every link of
  // the receiver's router at t=400 s). This is the slow-convergence case
  // (Labovitz et al.) where path exploration runs one MRAI per step and
  // where [21] reports the big win: assertions prune stale alternates, so
  // the withdrawal sweeps through instead of being re-explored.
  report::header("Extension E4, Tdown", "receiver disconnected; time until all routes gone");
  std::printf("%-10s", "variant");
  for (const int d : degrees) std::printf("   degree-%-5d", d);
  std::printf("(seconds)\n");
  for (const auto& variant : variants) {
    std::printf("%-10s", variant.name);
    for (const int d : degrees) {
      double convSum = 0;
      for (int run = 0; run < runs; ++run) {
        ScenarioConfig cfg = baseConfig();
        cfg.protocol = variant.kind;
        cfg.mesh.degree = d;
        cfg.seed = static_cast<std::uint64_t>(run) + 1;
        cfg.protoCfg.bgp.consistencyAssertions = variant.assertions;
        cfg.injectFailure = false;  // we inject the node-isolating cut ourselves
        cfg.trafficStop = cfg.failAt;  // measuring routing, not delivery
        cfg.endAt = Time::seconds(1600.0);  // plain BGP explores for many MRAIs
        Scenario sc{cfg};
        sc.stats().routeLog().setWatermark(cfg.failAt);
        Network& net = sc.network();
        const NodeId victim = sc.receiver();
        sc.scheduler().scheduleAt(cfg.failAt, [&net, victim] {
          for (const NodeId nb : net.node(victim).neighbors()) {
            net.findLink(victim, nb)->fail();
          }
        });
        sc.run();
        convSum += sc.stats().routeLog().convergenceSeconds();
      }
      std::printf("   %12.2f", convSum / runs);
    }
    std::printf("\n");
  }
  return 0;
}
