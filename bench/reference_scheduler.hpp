#pragma once

// Frozen copy of the pre-rewrite event scheduler (priority_queue of
// heap-allocated std::function entries + a tombstone set for cancellation),
// kept ONLY so the perf gate can measure the pooled engine's speedup
// against its predecessor in the same process, under the same load, with
// the same compiler flags. Never use this in the simulator.

#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace rcsim::bench {

/// The seed engine, verbatim apart from the namespace. See
/// src/sim/scheduler.hpp for the current pooled implementation.
class ReferenceScheduler {
 public:
  using Callback = std::function<void()>;

  struct EventId {
    std::uint64_t value = 0;
  };

  ReferenceScheduler() = default;
  ReferenceScheduler(const ReferenceScheduler&) = delete;
  ReferenceScheduler& operator=(const ReferenceScheduler&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  EventId scheduleAt(Time at, Callback cb) {
    assert(cb);
    if (at < now_) at = now_;
    Entry e;
    e.at = at;
    e.seq = nextSeq_++;
    e.id = e.seq;
    e.cb = std::move(cb);
    const EventId id{e.id};
    queue_.push(std::move(e));
    return id;
  }

  EventId scheduleAfter(Time delay, Callback cb) {
    if (delay < Time::zero()) delay = Time::zero();
    return scheduleAt(now_ + delay, std::move(cb));
  }

  void cancel(EventId id) {
    if (id.value != 0) cancelled_.insert(id.value);
  }

  void run(Time horizon = Time::infinity()) {
    stopped_ = false;
    while (!queue_.empty() && !stopped_) {
      const Entry& top = queue_.top();
      if (top.at > horizon) break;
      if (cancelled_.erase(top.id) > 0) {
        queue_.pop();
        continue;
      }
      Entry e = std::move(const_cast<Entry&>(top));
      queue_.pop();
      now_ = e.at;
      ++executed_;
      e.cb();
    }
    if (!stopped_ && horizon != Time::infinity() && now_ < horizon) now_ = horizon;
  }

  void stop() { stopped_ = true; }

  [[nodiscard]] std::uint64_t executedEvents() const { return executed_; }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq = 0;
    std::uint64_t id = 0;
    Callback cb;

    bool operator>(const Entry& rhs) const {
      if (at != rhs.at) return at > rhs.at;
      return seq > rhs.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  Time now_ = Time::zero();
  std::uint64_t nextSeq_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace rcsim::bench
