// Ablation A6 — split-horizon flavors. The paper's protocols use split
// horizon *with poison reverse*; this ablation compares no protection,
// simple split horizon (omit) and poison reverse for RIP and DBF, the
// classic textbook trade (poison reverse costs message size but kills
// two-hop loops proactively).
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Ablation A6: split-horizon flavor");
  const std::vector<int> degrees{3, 4, 5, 6};
  struct Variant {
    const char* name;
    SplitHorizonMode mode;
  };
  const std::vector<Variant> modes{{"none", SplitHorizonMode::None},
                                   {"simple", SplitHorizonMode::SplitHorizon},
                                   {"poison", SplitHorizonMode::PoisonReverse}};

  for (const ProtocolKind kind : {ProtocolKind::Rip, ProtocolKind::Dbf}) {
    std::vector<std::string> labels;
    std::vector<std::vector<double>> drops;
    std::vector<std::vector<double>> ttl;
    std::vector<std::vector<double>> conv;
    for (const auto& variant : modes) {
      labels.push_back(std::string{toString(kind)} + "/" + variant.name);
      std::vector<double> dRow, tRow, cRow;
      for (const int d : degrees) {
        ScenarioConfig cfg = baseConfig();
        cfg.protocol = kind;
        cfg.mesh.degree = d;
        cfg.protoCfg.dv.splitHorizon = variant.mode;
        const auto a = Aggregate::over(runMany(cfg, runs));
        dRow.push_back(a.dropsNoRoute);
        tRow.push_back(a.dropsTtl);
        cRow.push_back(a.routingConvergenceSec);
      }
      drops.push_back(std::move(dRow));
      ttl.push_back(std::move(tRow));
      conv.push_back(std::move(cRow));
    }
    report::header(std::string{"Ablation A6, "} + toString(kind), "");
    report::degreeSweep("no-route drops", degrees, labels, drops);
    report::degreeSweep("TTL expirations", degrees, labels, ttl);
    report::degreeSweep("routing convergence (s)", degrees, labels, conv);
  }
  return 0;
}
