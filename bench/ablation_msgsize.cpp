// Ablation A2 — DV update message capacity. The paper credits part of
// DBF's low loop count to a single RIP-format message carrying every
// affected destination (25 routes >= the 49-node mesh's needs) so neighbors
// see a consistent batch, while BGP must split updates per path. Here we
// shrink the DV message to 1 route per update and watch consistency suffer.
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Ablation A2: DV routes-per-message");
  const std::vector<int> degrees{3, 4, 5, 6};

  const std::vector<int> capacities{25, 5, 1};
  std::vector<std::string> labels;
  std::vector<std::vector<double>> drops;
  std::vector<std::vector<double>> ttl;
  std::vector<std::vector<double>> conv;
  for (const ProtocolKind kind : {ProtocolKind::Rip, ProtocolKind::Dbf}) {
    for (const int cap : capacities) {
      labels.push_back(std::string{toString(kind)} + "/" + std::to_string(cap));
      std::vector<double> dRow, tRow, cRow;
      for (const int d : degrees) {
        ScenarioConfig cfg = baseConfig();
        cfg.protocol = kind;
        cfg.mesh.degree = d;
        cfg.protoCfg.dv.maxEntriesPerMessage = cap;
        const auto a = Aggregate::over(runMany(cfg, runs));
        dRow.push_back(a.dropsNoRoute);
        tRow.push_back(a.dropsTtl);
        cRow.push_back(a.routingConvergenceSec);
      }
      drops.push_back(std::move(dRow));
      ttl.push_back(std::move(tRow));
      conv.push_back(std::move(cRow));
    }
  }

  report::header("Ablation A2", "packet drops due to no route");
  report::degreeSweep("packets", degrees, labels, drops);
  report::header("Ablation A2", "TTL expirations");
  report::degreeSweep("packets", degrees, labels, ttl);
  report::header("Ablation A2", "network routing convergence time");
  report::degreeSweep("seconds", degrees, labels, conv);
  return 0;
}
