#pragma once

// Shared plumbing for the figure-reproduction benches: the canonical
// protocol set, degree sweep, and run-count handling (env RCSIM_RUNS; the
// paper used 100 runs per data point, benches default lower to stay fast).

#include <cstdio>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/runner.hpp"

namespace rcsim::bench {

inline const std::vector<ProtocolKind> kPaperProtocols{ProtocolKind::Rip, ProtocolKind::Dbf,
                                                       ProtocolKind::Bgp, ProtocolKind::Bgp3};

inline std::vector<std::string> names(const std::vector<ProtocolKind>& kinds) {
  std::vector<std::string> out;
  out.reserve(kinds.size());
  for (const auto k : kinds) out.emplace_back(toString(k));
  return out;
}

inline std::vector<int> paperDegrees() {
  std::vector<int> d;
  for (int i = 3; i <= 16; ++i) d.push_back(i);
  return d;
}

inline ScenarioConfig baseConfig() { return ScenarioConfig{}; }

/// Degree-swept aggregate for one protocol: one Aggregate per degree.
inline std::vector<Aggregate> sweepDegrees(ProtocolKind kind, const std::vector<int>& degrees,
                                           int runs) {
  std::vector<Aggregate> out;
  out.reserve(degrees.size());
  for (const int d : degrees) {
    ScenarioConfig cfg = baseConfig();
    cfg.protocol = kind;
    cfg.mesh.degree = d;
    out.push_back(Aggregate::over(runMany(cfg, runs)));
  }
  return out;
}

inline int announceRuns(const char* figure, int fallback = 10) {
  const int runs = defaultRunCount(fallback);
  std::printf("%s — %d run(s) per data point (set RCSIM_RUNS to change; paper used 100)\n",
              figure, runs);
  return runs;
}

}  // namespace rcsim::bench
