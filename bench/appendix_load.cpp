// Appendix — load sensitivity. The paper argues (§5) that its parameter
// choices don't matter because the network is unloaded; this bench sweeps
// the CBR rate until queueing losses appear, separating convergence-caused
// drops (no-route/TTL) from congestion-caused drops (queue overflow) and
// confirming the operating point the figures use sits far from congestion.
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Appendix: load sweep", 5);
  const std::vector<double> rates{20, 200, 800, 1200, 1500};

  report::header("Load sweep", "DBF, degree 4; 10 Mb/s links, 1000 B packets, queue 20");
  std::printf("%12s %14s %14s %14s %14s\n", "rate(pkt/s)", "delivered", "no-route",
              "queue-drop", "link-util");
  for (const double rate : rates) {
    ScenarioConfig cfg = baseConfig();
    cfg.protocol = ProtocolKind::Dbf;
    cfg.mesh.degree = 4;
    cfg.packetsPerSecond = rate;
    cfg.tracePackets = false;  // keep the hot path lean at high rates
    const auto results = runMany(cfg, runs);
    double delivered = 0;
    double noRoute = 0;
    double queueDrop = 0;
    for (const auto& r : results) {
      delivered += static_cast<double>(r.data.delivered);
      noRoute += static_cast<double>(r.data.dropNoRoute);
      queueDrop += static_cast<double>(r.data.dropQueue);
    }
    // One 1000 B packet at 10 Mb/s occupies the bottleneck 0.8 ms.
    const double util = rate * 1000.0 * 8.0 / 10e6;
    std::printf("%12.0f %14.1f %14.2f %14.2f %13.0f%%\n", rate, delivered / runs,
                noRoute / runs, queueDrop / runs, 100.0 * util);
  }

  std::printf("\nReading: at the paper's 20 pkt/s (1.6%% utilization) every loss is\n"
              "convergence-caused; queue drops only appear as the bottleneck link\n"
              "saturates (>100%% utilization), validating the paper's claim that the\n"
              "exact link parameters have little impact on the comparative results.\n");
  return 0;
}
