// Headline comparison (paper §1): "with the same topology and same packet
// generation rate, BGP dropped ~5x the packets BGP3 did", plus §5.2's
// "the number of TTL expirations in BGP is about 10x that of BGP3".
//
// Prints one summary row per protocol for a fixed sparse topology where the
// differences are visible (the looping regime — degree 3 in our mesh
// family, see EXPERIMENTS.md), and a second table at degree 6 where the
// drop differences all but vanish.
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Headline table: protocol comparison at fixed degree", 20);
  const auto protocols = kPaperProtocols;

  for (const int degree : {3, 6}) {
    report::header("Protocol comparison, degree " + std::to_string(degree),
                   "means over " + std::to_string(runs) + " runs");
    std::printf("%-6s %10s %10s %10s %10s %12s %12s %12s\n", "proto", "sent", "delivered",
                "no-route", "ttl-exp", "fwd-conv(s)", "rt-conv(s)", "loop-frac");
    for (const auto kind : protocols) {
      ScenarioConfig cfg = baseConfig();
      cfg.protocol = kind;
      cfg.mesh.degree = degree;
      const auto a = Aggregate::over(runMany(cfg, runs));
      std::printf("%-6s %10.1f %10.1f %10.2f %10.2f %12.2f %12.2f %12.2f\n", toString(kind),
                  a.sent, a.delivered, a.dropsNoRoute, a.dropsTtl, a.forwardingConvergenceSec,
                  a.routingConvergenceSec, a.loopFraction);
    }
  }
  return 0;
}
