// Figure 4 — "Number of TTL Expirations During Convergence".
//
// All TTL expirations in these topologies are loop-caused (TTL=127 vastly
// exceeds any loop-free path). The paper's findings: RIP never loops here
// (it drops instead), BGP loops the most, and BGP's expirations run about
// 10x BGP3's — the MRAI timer lengthens the life of transient loops.
#include "bench_common.hpp"

int main() {
  using namespace rcsim;
  using namespace rcsim::bench;

  const int runs = announceRuns("Figure 4: TTL expirations (loop-caused drops)");
  const auto degrees = paperDegrees();
  const auto protocols = kPaperProtocols;

  std::vector<std::vector<double>> ttl(protocols.size());
  std::vector<std::vector<double>> loopFrac(protocols.size());
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    const auto aggs = sweepDegrees(protocols[p], degrees, runs);
    for (const auto& a : aggs) {
      ttl[p].push_back(a.dropsTtl);
      loopFrac[p].push_back(a.loopFraction);
    }
  }

  report::header("Figure 4", "mean data packets dropped on TTL expiry during convergence");
  report::degreeSweep("packets", degrees, names(protocols), ttl);
  report::header("Figure 4 (companion)",
                 "fraction of runs whose forwarding path transited a loop");
  report::degreeSweep("fraction", degrees, names(protocols), loopFrac);
  return 0;
}
