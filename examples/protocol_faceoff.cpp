// Protocol face-off: run RIP, DBF, BGP, BGP3 (and the link-state extension)
// on the same topology/seed and compare packet delivery through one failure.
//
// Usage: protocol_faceoff [degree] [seed]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace rcsim;

  const int degree = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  std::printf("degree-%d mesh, seed %llu, single link failure on the forwarding path\n\n",
              degree, static_cast<unsigned long long>(seed));
  std::printf("%-6s %9s %9s %9s %9s %9s %10s %10s %8s\n", "proto", "sent", "delivered",
              "no-route", "ttl-exp", "cut", "fwd-conv", "rt-conv", "wall-ms");

  for (const ProtocolKind kind : {ProtocolKind::Rip, ProtocolKind::Dbf, ProtocolKind::Bgp,
                                  ProtocolKind::Bgp3, ProtocolKind::LinkState,
                                  ProtocolKind::Dual}) {
    ScenarioConfig cfg;
    cfg.protocol = kind;
    cfg.mesh.degree = degree;
    cfg.seed = seed;

    const auto t0 = std::chrono::steady_clock::now();
    const RunResult r = runScenario(cfg);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

    std::printf("%-6s %9llu %9llu %9llu %9llu %9llu %10.2f %10.2f %8lld\n", toString(kind),
                static_cast<unsigned long long>(r.sent),
                static_cast<unsigned long long>(r.data.delivered),
                static_cast<unsigned long long>(r.dataAfterFailure.dropNoRoute),
                static_cast<unsigned long long>(r.dataAfterFailure.dropTtl),
                static_cast<unsigned long long>(r.dataAfterFailure.dropInFlightCut +
                                                r.dataAfterFailure.dropLinkDown),
                r.forwardingConvergenceSec, r.routingConvergenceSec,
                static_cast<long long>(ms));
  }
  return 0;
}
