// Link-state preview: the paper's future-work comparison, runnable today.
// Puts the link-state (flood + SPF) extension protocol side by side with
// the distance/path-vector family on the same failure scenarios, averaged
// over seeds.
//
// Usage: linkstate_preview [runs=10]
#include <cstdio>
#include <cstdlib>

#include "core/report.hpp"
#include "core/runner.hpp"

int main(int argc, char** argv) {
  using namespace rcsim;

  const int runs = argc > 1 ? std::atoi(argv[1]) : defaultRunCount(10);
  const std::vector<int> degrees{3, 4, 6, 8};
  const std::vector<ProtocolKind> kinds{ProtocolKind::Rip, ProtocolKind::Dbf, ProtocolKind::Bgp3,
                                        ProtocolKind::LinkState};

  std::vector<std::string> labels;
  std::vector<std::vector<double>> drops(kinds.size());
  std::vector<std::vector<double>> conv(kinds.size());
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    labels.emplace_back(toString(kinds[k]));
    for (const int d : degrees) {
      ScenarioConfig cfg;
      cfg.protocol = kinds[k];
      cfg.mesh.degree = d;
      const auto agg = Aggregate::over(runMany(cfg, runs));
      drops[k].push_back(agg.dropsNoRoute + agg.dropsTtl);
      conv[k].push_back(agg.routingConvergenceSec);
    }
  }

  report::header("Link-state preview",
                 "the paper's future-work datapoint: SPF vs the DV/PV family, " +
                     std::to_string(runs) + " runs per cell");
  report::degreeSweep("packets lost to no-route + TTL", degrees, labels, drops);
  report::degreeSweep("network routing convergence (s)", degrees, labels, conv);

  std::printf("\nReading: LS converges in flood+SPF time (sub-second) at every degree,\n"
              "matching the paper's conjecture that link-state protocols sidestep the\n"
              "alternate-path staleness that causes DV/PV transient loops. The price is\n"
              "full-topology state at every router and flooding overhead.\n");
  return 0;
}
