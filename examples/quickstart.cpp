// Quickstart: build the paper's degree-4 mesh, run DBF, fail a link on the
// forwarding path and print what happened to the packets.
//
// This is the smallest end-to-end use of the public API:
//   ScenarioConfig -> runScenario() -> RunResult.
#include <cstdio>

#include "core/experiment.hpp"

int main() {
  using namespace rcsim;

  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::Dbf;
  cfg.mesh.degree = 4;
  cfg.seed = 42;

  std::printf("Running %s on a %dx%d mesh (degree %d), one link failure...\n",
              toString(cfg.protocol), cfg.mesh.rows, cfg.mesh.cols, cfg.mesh.degree);

  const RunResult r = runScenario(cfg);

  std::printf("\npackets sent                : %llu\n",
              static_cast<unsigned long long>(r.sent));
  std::printf("packets delivered           : %llu\n",
              static_cast<unsigned long long>(r.data.delivered));
  std::printf("drops (no route)            : %llu\n",
              static_cast<unsigned long long>(r.data.dropNoRoute));
  std::printf("drops (TTL expired / loops) : %llu\n",
              static_cast<unsigned long long>(r.data.dropTtl));
  std::printf("drops (in-flight at cut)    : %llu\n",
              static_cast<unsigned long long>(r.data.dropInFlightCut + r.data.dropLinkDown));
  std::printf("drops (queue overflow)      : %llu\n",
              static_cast<unsigned long long>(r.data.dropQueue));
  std::printf("loop-escaped deliveries     : %llu\n",
              static_cast<unsigned long long>(r.loopEscapedDeliveries));
  std::printf("\nforwarding-path convergence : %.3f s after failure\n",
              r.forwardingConvergenceSec);
  std::printf("routing convergence         : %.3f s after failure\n", r.routingConvergenceSec);
  std::printf("transient forwarding paths  : %d\n", r.transientPaths);
  std::printf("final path is shortest      : %s\n", r.finalPathShortest ? "yes" : "no");
  return 0;
}
