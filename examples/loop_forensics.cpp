// Loop forensics: hunts for a (protocol, seed) run whose convergence forms
// a transient forwarding loop, then dissects it the way the paper's §5.2
// does from its trace files — when the loop formed, which nodes took part,
// how long it lived, and what it cost in TTL-expired packets.
//
// Usage: loop_forensics [protocol=BGP] [degree=3] [maxSeeds=40]
#include <cstdio>
#include <cstdlib>

#include "core/scenario.hpp"

int main(int argc, char** argv) {
  using namespace rcsim;

  const ProtocolKind kind = argc > 1 ? protocolKindFromString(argv[1]) : ProtocolKind::Bgp;
  const int degree = argc > 2 ? std::atoi(argv[2]) : 3;
  const int maxSeeds = argc > 3 ? std::atoi(argv[3]) : 40;

  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(maxSeeds); ++seed) {
    ScenarioConfig cfg;
    cfg.protocol = kind;
    cfg.mesh.degree = degree;
    cfg.seed = seed;
    Scenario sc{cfg};
    sc.run();

    const auto& events = sc.stats().tracer()->events();
    bool sawLoop = false;
    for (const auto& e : events) {
      if (e.t >= cfg.failAt && e.loop) sawLoop = true;
    }
    if (!sawLoop) continue;

    std::printf("%s degree %d seed %llu: transient loop(s) after the failure\n",
                toString(kind), degree, static_cast<unsigned long long>(seed));
    std::printf("failed link (%d,%d); TTL-expired packets: %llu\n\n",
                sc.failedLink()->endpointA(), sc.failedLink()->endpointB(),
                static_cast<unsigned long long>(sc.stats().dataAfterWatermark().dropTtl));
    for (std::size_t i = 0; i < events.size(); ++i) {
      const auto& e = events[i];
      if (e.t < cfg.failAt || !e.loop) continue;
      const Time endT = i + 1 < events.size() ? events[i + 1].t : sc.scheduler().now();
      std::printf("  loop from t=+%.4fs lasting %.4fs:\n    ",
                  (e.t - cfg.failAt).toSeconds(), (endT - e.t).toSeconds());
      for (std::size_t j = 0; j < e.path.size(); ++j) {
        std::printf("%s%d", j ? " -> " : "", e.path[j]);
      }
      std::printf("   (last node repeats: the cycle)\n");
    }
    std::printf("\nnote: the loop lives until the nodes exchange their next updates —\n"
                "with a large MRAI that correction is exactly what gets delayed.\n");
    return 0;
  }

  std::printf("no forwarding-path loop observed for %s at degree %d in %d seeds\n",
              toString(kind), degree, maxSeeds);
  std::printf("(loops concentrate in the sparse regime; try degree 3 and BGP)\n");
  return 0;
}
