// Failure storyboard: replays the paper's Figure 1 narrative on a real
// simulation — shows the sequence of transient forwarding paths the
// sender→receiver flow takes around one link failure, with timestamps
// relative to the failure and per-second delivery counts.
//
// Usage: failure_storyboard [protocol=DBF] [degree=4] [seed=7]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/scenario.hpp"

int main(int argc, char** argv) {
  using namespace rcsim;

  ScenarioConfig cfg;
  cfg.protocol = argc > 1 ? protocolKindFromString(argv[1]) : ProtocolKind::Dbf;
  cfg.mesh.degree = argc > 2 ? std::atoi(argv[2]) : 4;
  cfg.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  Scenario sc{cfg};
  sc.run();

  const double failSec = cfg.failAt.toSeconds();
  std::printf("protocol %s, degree %d, seed %llu\n", toString(cfg.protocol), cfg.mesh.degree,
              static_cast<unsigned long long>(cfg.seed));
  std::printf("sender %d (row 0), receiver %d (row %d)\n", sc.sender(), sc.receiver(),
              cfg.mesh.rows - 1);
  std::printf("failed link: (%d,%d) at t=+0.000s\n\n", sc.failedLink()->endpointA(),
              sc.failedLink()->endpointB());

  std::printf("forwarding path storyboard (times relative to failure):\n");
  for (const auto& e : sc.stats().tracer()->events()) {
    const double rel = e.t.toSeconds() - failSec;
    if (rel < -1.0) continue;  // skip warm-up churn
    std::printf("  t=%+9.3fs  %-10s", rel,
                e.loop ? "LOOP" : (e.blackhole ? "BLACKHOLE" : "ok"));
    for (std::size_t i = 0; i < e.path.size(); ++i) {
      std::printf("%s%d", i ? " -> " : "", e.path[i]);
    }
    std::printf("\n");
  }

  std::printf("\nper-second deliveries around the failure:\n  ");
  const int f = static_cast<int>(failSec);
  for (int s = f - 5; s <= f + 20; ++s) {
    std::printf("%s%d:%.0f", s == f - 5 ? "" : "  ", s - f,
                sc.stats().series().throughputAt(s));
  }
  std::printf("\n\ndrops during convergence: no-route=%llu ttl=%llu in-flight=%llu\n",
              static_cast<unsigned long long>(sc.stats().dataAfterWatermark().dropNoRoute),
              static_cast<unsigned long long>(sc.stats().dataAfterWatermark().dropTtl),
              static_cast<unsigned long long>(sc.stats().dataAfterWatermark().dropInFlightCut));
  return 0;
}
