#!/usr/bin/env bash
# Kill-and-resume chaos self-test: SIGKILL a journaled sweep at varying
# points, resume it from the journal each time, and prove the final
# artifact is bit-identical (modulo wall-clock fields) to an uninterrupted
# reference run. This is the end-to-end check of the durability story —
# CRC-guarded fsynced journal records, torn-tail repair, and exact
# RunResult round-trip through the resume fold.
#
#   scripts/chaos_resume_test.sh build/bench/rcsim_bench
set -u

BENCH=${1:?usage: chaos_resume_test.sh path/to/rcsim_bench}
EXPERIMENT=${EXPERIMENT:-headline_table}
RUNS=${RUNS:-5}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

run_bench() { # out_dir [extra flags...]
  local out=$1
  shift
  "$BENCH" --only="$EXPERIMENT" --runs="$RUNS" --threads=2 --out="$out" "$@"
}

echo "chaos: reference run ($EXPERIMENT, runs=$RUNS)"
if ! run_bench "$WORK/ref" >/dev/null 2>&1; then
  echo "chaos: FAIL — reference run did not exit 0"
  exit 1
fi

# SIGKILL the journaled sweep at staggered points. SIGKILL (not SIGINT):
# no handler runs, nothing drains — the journal alone must carry the
# state. Each iteration resumes from the same journal, so progress is
# monotonic; once a run survives its kill window, the sweep is complete.
J="$WORK/journal"
kills=0
completed=0
for delay in 0.15 0.3 0.45 0.6 0.8 1.0 1.3 1.7 2.2 3.0; do
  run_bench "$WORK/out" --journal="$J" --resume="$J" >/dev/null 2>&1 &
  pid=$!
  sleep "$delay"
  if kill -KILL "$pid" 2>/dev/null; then
    kills=$((kills + 1))
  fi
  # The stderr redirect silences bash's "Killed" job-control notice.
  { wait "$pid"; status=$?; } 2>/dev/null
  if [ "$status" -eq 0 ]; then
    completed=1
    break
  fi
done

if [ "$completed" -ne 1 ]; then
  # Every attempt was killed before finishing; one final uninterrupted
  # resume folds the journal's replicas and runs whatever is left.
  echo "chaos: final uninterrupted resume after $kills kill(s)"
  if ! run_bench "$WORK/out" --journal="$J" --resume="$J" >/dev/null 2>&1; then
    echo "chaos: FAIL — final resume did not exit 0"
    exit 1
  fi
fi
echo "chaos: sweep completed after $kills SIGKILL(s)"

REF_ART="$WORK/ref/$EXPERIMENT.json"
OUT_ART="$WORK/out/$EXPERIMENT.json"
test -s "$REF_ART" || { echo "chaos: FAIL — missing reference artifact"; exit 1; }
test -s "$OUT_ART" || { echo "chaos: FAIL — missing resumed artifact"; exit 1; }

# Per-cell aggregate digests: the full-precision identity of every fold.
grep -o '"aggregate_digest": "[0-9a-f]*"' "$REF_ART" > "$WORK/ref.digests"
grep -o '"aggregate_digest": "[0-9a-f]*"' "$OUT_ART" > "$WORK/out.digests"
test -s "$WORK/ref.digests" || { echo "chaos: FAIL — reference has no digests"; exit 1; }
if ! diff -u "$WORK/ref.digests" "$WORK/out.digests"; then
  echo "chaos: FAIL — aggregate digests diverge after kill/resume"
  exit 1
fi

# And the artifacts as a whole, minus the only legitimately varying
# fields (wall-clock time and thread count).
if ! diff -u <(grep -vE '"(wall_seconds|threads)":' "$REF_ART") \
             <(grep -vE '"(wall_seconds|threads)":' "$OUT_ART"); then
  echo "chaos: FAIL — resumed artifact differs from the reference"
  exit 1
fi

echo "chaos: resumed artifact is bit-identical to the uninterrupted reference"
