#!/usr/bin/env bash
# Exit-status contracts of rcsim_bench and rcsim_fuzz, as documented in
# their --help (highest precedence first): 2 usage error > 130
# interrupted > 3 failed cells (bench) / 4 findings (fuzz) > 0.
# Registered as the `bench_exit_codes` ctest; also runnable by hand:
#
#   scripts/exit_codes_test.sh build/bench/rcsim_bench [build/tools/rcsim_fuzz]
set -u

BENCH=${1:?usage: exit_codes_test.sh path/to/rcsim_bench [path/to/rcsim_fuzz]}
FUZZ=${2:-}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fails=0
expect() {
  local want=$1 got=$2 what=$3
  if [ "$got" -eq "$want" ]; then
    echo "ok   exit $got  $what"
  else
    echo "FAIL exit $got (want $want)  $what"
    fails=$((fails + 1))
  fi
}

# --- 2: usage errors (nothing runs) ------------------------------------
"$BENCH" --no-such-flag >/dev/null 2>&1
expect 2 $? "unknown flag"

"$BENCH" >/dev/null 2>&1
expect 2 $? "no experiment selected"

"$BENCH" --only=no_such_experiment >/dev/null 2>&1
expect 2 $? "unknown experiment name"

"$BENCH" --only=headline_table --watchdog=nan >/dev/null 2>&1
expect 2 $? "--watchdog=nan rejected"

"$BENCH" --only=headline_table --watchdog=inf >/dev/null 2>&1
expect 2 $? "--watchdog=inf rejected"

"$BENCH" --only=headline_table --journal= >/dev/null 2>&1
expect 2 $? "empty --journal value rejected"

"$BENCH" --only=headline_table --retries=-1 >/dev/null 2>&1
expect 2 $? "negative --retries rejected"

"$BENCH" --only=headline_table --progress=banana >/dev/null 2>&1
expect 2 $? "--progress=banana rejected"

"$BENCH" --only=headline_table --progress=-1 >/dev/null 2>&1
expect 2 $? "negative --progress rejected"

# --- 3: failed cells ---------------------------------------------------
# A microscopic watchdog budget fails every replica; with --retries=0
# each quarantines after one attempt, so this stays fast.
"$BENCH" --only=headline_table --runs=1 --threads=2 --retries=0 \
  --watchdog=0.000001 --out="$WORK/failed" >/dev/null 2>&1
expect 3 $? "watchdog timeouts fail the cell"

# --- 130: interrupted --------------------------------------------------
# SIGINT a journaled sweep mid-run: the bench must drain in-flight
# replicas, flush the journal, and exit 128+SIGINT even though no cell
# failed. Background + wait stay in this same shell.
"$BENCH" --only=headline_table --runs=50 --threads=2 \
  --journal="$WORK/J" --out="$WORK/int" >/dev/null 2>"$WORK/int.err" &
pid=$!
sleep 0.6
kill -INT "$pid" 2>/dev/null
wait "$pid"
expect 130 $? "SIGINT mid-sweep"
if ! grep -q "continue with --resume=" "$WORK/int.err"; then
  echo "FAIL interrupted run did not print the --resume hint"
  fails=$((fails + 1))
fi

# --- 0: clean run ------------------------------------------------------
"$BENCH" --only=headline_table --runs=1 --threads=2 --out="$WORK/ok" >/dev/null 2>&1
expect 0 $? "clean run"

# --progress=SEC: a final heartbeat always prints at sweep end, in the
# extended format carrying live convergence-episode and drop-attribution
# counters. The line format is contractual (pinned here).
"$BENCH" --only=headline_table --runs=1 --threads=2 --progress=1 \
  --out="$WORK/ok_progress" >/dev/null 2>"$WORK/progress.err"
expect 0 $? "clean run with --progress=1"
progress_re='rcsim_bench: progress [0-9]+/[0-9]+ replica\(s\) \([0-9]+%\) \| episodes [0-9]+ \| drops loop=[0-9]+ bh=[0-9]+ ttl=[0-9]+ queue=[0-9]+'
if ! grep -Eq "$progress_re" "$WORK/progress.err"; then
  echo "FAIL --progress heartbeat missing or not in the pinned extended format"
  fails=$((fails + 1))
fi

# ======================================================================
# rcsim_fuzz: 2 usage > 130 interrupted > 4 findings/replay mismatch > 0
# (section skipped when no fuzz binary is given).
if [ -n "$FUZZ" ]; then
  # --- 2: usage errors (nothing runs) ----------------------------------
  "$FUZZ" --no-such-flag >/dev/null 2>&1
  expect 2 $? "fuzz: unknown flag"

  "$FUZZ" --budget=0 >/dev/null 2>&1
  expect 2 $? "fuzz: --budget=0 rejected"

  "$FUZZ" --watchdog=nan >/dev/null 2>&1
  expect 2 $? "fuzz: --watchdog=nan rejected"

  "$FUZZ" --seed=banana >/dev/null 2>&1
  expect 2 $? "fuzz: --seed=banana rejected"

  "$FUZZ" --replay=/nonexistent/path.scenario >/dev/null 2>&1
  expect 2 $? "fuzz: unreadable --replay file"

  # --- 130: interrupted ------------------------------------------------
  # SIGINT an oversized campaign: the in-flight scenario finishes, the
  # summary still prints, and the exit is 128+SIGINT.
  "$FUZZ" --seed=3 --budget=100000 --quiet >/dev/null 2>&1 &
  pid=$!
  sleep 0.6
  kill -INT "$pid" 2>/dev/null
  wait "$pid"
  expect 130 $? "fuzz: SIGINT mid-campaign"

  # --- 4: findings / replay mismatch -----------------------------------
  # A microscopic watchdog makes every execution a Timeout finding;
  # --no-minimize keeps this fast.
  "$FUZZ" --seed=5 --budget=3 --watchdog=0.000001 --no-minimize --quiet \
    >/dev/null 2>&1
  expect 4 $? "fuzz: watchdog findings"

  # A banked reproducer whose '# expect:' line is doctored must mismatch.
  corpus_dir=$(dirname "$0")/../tests/fuzz_corpus
  sample=$(ls "$corpus_dir"/*.scenario 2>/dev/null | head -1)
  if [ -n "$sample" ]; then
    sed 's/^# expect: .*/# expect: timeout/' "$sample" >"$WORK/doctored.scenario"
    "$FUZZ" --replay="$WORK/doctored.scenario" >/dev/null 2>&1
    expect 4 $? "fuzz: replay expectation mismatch"

    "$FUZZ" --replay="$sample" >/dev/null 2>&1
    expect 0 $? "fuzz: replay of banked reproducer"
  else
    echo "FAIL no banked .scenario files found in $corpus_dir"
    fails=$((fails + 1))
  fi

  # --- 0: clean campaign -----------------------------------------------
  "$FUZZ" --seed=1 --budget=2 --quiet >/dev/null 2>&1
  expect 0 $? "fuzz: clean campaign"
fi

if [ "$fails" -ne 0 ]; then
  echo "exit_codes_test: $fails check(s) failed"
  exit 1
fi
echo "exit_codes_test: all checks passed"
