#!/usr/bin/env bash
# Run the sim-core performance gate against the checked-in baseline
# (BENCH_simcore.json), or refresh that baseline in one step.
#
#   scripts/run_bench_gate.sh                     # gate: exit 1 on >15% regression
#   scripts/run_bench_gate.sh --update-baseline   # re-measure and rewrite baseline
#   scripts/run_bench_gate.sh --tolerance 10      # tighter gate
#
# Extra arguments are forwarded to perf_gate (see docs/benchmarking.md).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
BASELINE=${BASELINE:-BENCH_simcore.json}
GATE="$BUILD/bench/perf_gate"

if [[ ! -x "$GATE" ]]; then
  echo "building perf_gate..."
  cmake --build "$BUILD" --target perf_gate -j
fi

if [[ "${1:-}" == "--update-baseline" ]]; then
  shift
  exec "$GATE" --json "$BASELINE" "$@"
fi

if [[ ! -f "$BASELINE" ]]; then
  echo "run_bench_gate.sh: no baseline at $BASELINE" >&2
  echo "create one with: scripts/run_bench_gate.sh --update-baseline" >&2
  exit 2
fi

# Peak RSS gets a tighter 10% budget than wall time: memory regressions
# are low-noise and compound across sweep replicas (docs/routing-state.md).
exec "$GATE" --baseline "$BASELINE" --rss-tolerance 10 "$@"
