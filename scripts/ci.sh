#!/usr/bin/env bash
# The whole tier-1 gate in one command: configure, build, unit tests, and
# a smoke run of the bench pipeline (one real experiment at 2 runs plus
# its JSON artifact). Safe to run repeatedly; reuses the build directory.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}

cmake -S . -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j "$(nproc)"
# --timeout caps each test so a hung replica fails loudly instead of
# stalling the whole gate (individual tests carry tighter properties).
ctest --test-dir "$BUILD" --output-on-failure --timeout 600

# Bench smoke: the registry lists, one experiment runs, and its artifact
# parses back (the test suite covers the schema; this covers the binary).
smoke_out=$(mktemp -d)
trap 'rm -rf "$smoke_out"' EXIT
"$BUILD/bench/rcsim_bench" --list > /dev/null
RCSIM_RUNS=2 "$BUILD/bench/rcsim_bench" --only=headline_table --out="$smoke_out" --progress=1 \
  > /dev/null
test -s "$smoke_out/headline_table.json"
# The artifact must carry the executor's sweep-profile metrics block
# (docs/observability.md): counters plus replica wall-time histogram.
grep -q '"metrics"' "$smoke_out/headline_table.json"
grep -q '"replica.wall_sec"' "$smoke_out/headline_table.json"
grep -q '"sim.events_executed"' "$smoke_out/headline_table.json"

# Observability smoke: the structured tracer's record -> replay round trip
# must agree bit-for-bit with the live PathTracer (rcsim-trace --selftest),
# and a recorded rcsim-trace-v1 file must replay cleanly.
"$BUILD/tools/rcsim-trace" protocol=RIP degree=4 seed=7 --selftest > /dev/null
"$BUILD/tools/rcsim-trace" protocol=BGP degree=4 seed=11 --selftest > /dev/null
"$BUILD/tools/rcsim-trace" protocol=RIP degree=4 seed=7 \
  --record="$smoke_out/smoke.trace.jsonl" > /dev/null
"$BUILD/tools/rcsim-trace" --replay="$smoke_out/smoke.trace.jsonl" --from=399 --to=401 \
  | grep -q 'corrupt=0'

# Inspect smoke: the convergence-anatomy query CLI must find at least one
# episode in the recorded trace, and two runs over the same file must agree
# byte-for-byte (the analyzer is deterministic, not sampled).
"$BUILD/tools/rcsim-inspect" --trace="$smoke_out/smoke.trace.jsonl" --episodes \
  > "$smoke_out/episodes1.txt"
grep -q '^episode' "$smoke_out/episodes1.txt"
"$BUILD/tools/rcsim-inspect" --trace="$smoke_out/smoke.trace.jsonl" --episodes \
  > "$smoke_out/episodes2.txt"
cmp "$smoke_out/episodes1.txt" "$smoke_out/episodes2.txt"
# Artifacts carry the convergence block (schema: exp/journal.hpp
# anatomySummaryToJson) plus its digest pinning the serial == pooled fold.
grep -q '"convergence"' "$smoke_out/headline_table.json"
grep -q '"convergence_digest"' "$smoke_out/headline_table.json"
grep -q '"detection_sec_total"' "$smoke_out/headline_table.json"

# Topology layer smoke: the canonical rcsim-topo-v1 dump must be a fixed
# point (load -> dump -> load -> dump byte-identical), and the real-topology
# experiment must sweep every protocol over the loaded backbones cleanly
# with runtime invariant checking on.
"$BUILD/tools/rcsim-topo" --named abilene --dump > "$smoke_out/abilene.topo"
"$BUILD/tools/rcsim-topo" --file "$smoke_out/abilene.topo" --dump > "$smoke_out/abilene2.topo"
cmp "$smoke_out/abilene.topo" "$smoke_out/abilene2.topo"
RCSIM_RUNS=1 RCSIM_CHECK_INVARIANTS=1 "$BUILD/bench/rcsim_bench" --only=ext_realtopo \
  --out="$smoke_out" --progress=1 > /dev/null
test -s "$smoke_out/ext_realtopo.json"
grep -q '"topology=named"' "$smoke_out/ext_realtopo.json"

# Fuzz smoke: a fixed-seed coverage-guided campaign must complete its
# budget without findings and with a stable corpus digest (the digest is
# printed for the log; determinism itself is covered by FuzzCampaign.*
# tests). Then every banked reproducer replays against its recorded
# '# expect:' outcome (docs/fuzzing.md).
"$BUILD/tools/rcsim_fuzz" --seed=1 --budget=200 --quiet
# A second campaign with hello-based failure detection forced on, so the
# detector paths (docs/failure-detection.md) get fuzz coverage every run.
"$BUILD/tools/rcsim_fuzz" --seed=2 --budget=200 --quiet --hello
for scenario in tests/fuzz_corpus/*.scenario; do
  "$BUILD/tools/rcsim_fuzz" --replay="$scenario" > /dev/null
done

# Chaos job: SIGKILL a journaled sweep at random points and prove the
# resumed artifact is bit-identical to an uninterrupted reference run
# (docs/experiments.md, "Long runs, crashes, and resume").
bash scripts/chaos_resume_test.sh "$BUILD/bench/rcsim_bench"

# Sanitizer job: a separate ASan+UBSan build runs a smoke subset of the
# suite (the memory-heavy paths: events, links, transport, faults). The
# tier-1 gate above stays plain Release so its timings and golden digests
# are undisturbed.
SAN_BUILD=${SAN_BUILD:-build-asan}
cmake -S . -B "$SAN_BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DRCSIM_SANITIZE=ON
cmake --build "$SAN_BUILD" -j "$(nproc)"
# RCSIM_SPF_ORACLE=1 makes every LinkState run cross-check the incremental
# SPF against a full-BFS oracle (src/routing/linkstate.cpp), so the
# sanitizer job also proves incremental == full element-wise under ASan.
RCSIM_SPF_ORACLE=1 ctest --test-dir "$SAN_BUILD" --output-on-failure --timeout 600 \
  -R 'Scheduler|Link|Reliable|Churn|Fault|Invariant|Executor|Sweep|Journal|LinkState|RoutingState|Spf|Detector|Damping|Anatomy|Inspect|inspect|trace_record'

# TSan job: a -fsanitize=thread build runs the concurrency-heavy suites
# (SweepExecutor's work queue, the lock-free metrics registry, journaled
# sweeps) to catch data races ASan cannot see. TSan and ASan cannot share
# a build, hence the third tree.
TSAN_BUILD=${TSAN_BUILD:-build-tsan}
cmake -S . -B "$TSAN_BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DRCSIM_SANITIZE=thread
cmake --build "$TSAN_BUILD" -j "$(nproc)"
ctest --test-dir "$TSAN_BUILD" --output-on-failure --timeout 600 \
  -R 'Executor|Sweep|Journal|Metrics|Detector|Damping|Anatomy|Inspect|inspect|trace_record'

echo "ci: all gates green"
