#!/usr/bin/env bash
# The whole tier-1 gate in one command: configure, build, unit tests, and
# a smoke run of the bench pipeline (one real experiment at 2 runs plus
# its JSON artifact). Safe to run repeatedly; reuses the build directory.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}

cmake -S . -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j "$(nproc)"
# --timeout caps each test so a hung replica fails loudly instead of
# stalling the whole gate (individual tests carry tighter properties).
ctest --test-dir "$BUILD" --output-on-failure --timeout 600

# Bench smoke: the registry lists, one experiment runs, and its artifact
# parses back (the test suite covers the schema; this covers the binary).
smoke_out=$(mktemp -d)
trap 'rm -rf "$smoke_out"' EXIT
"$BUILD/bench/rcsim_bench" --list > /dev/null
RCSIM_RUNS=2 "$BUILD/bench/rcsim_bench" --only=headline_table --out="$smoke_out" > /dev/null
test -s "$smoke_out/headline_table.json"

# Chaos job: SIGKILL a journaled sweep at random points and prove the
# resumed artifact is bit-identical to an uninterrupted reference run
# (docs/experiments.md, "Long runs, crashes, and resume").
bash scripts/chaos_resume_test.sh "$BUILD/bench/rcsim_bench"

# Sanitizer job: a separate ASan+UBSan build runs a smoke subset of the
# suite (the memory-heavy paths: events, links, transport, faults). The
# tier-1 gate above stays plain Release so its timings and golden digests
# are undisturbed.
SAN_BUILD=${SAN_BUILD:-build-asan}
cmake -S . -B "$SAN_BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DRCSIM_SANITIZE=ON
cmake --build "$SAN_BUILD" -j "$(nproc)"
ctest --test-dir "$SAN_BUILD" --output-on-failure --timeout 600 \
  -R 'Scheduler|Link|Reliable|Churn|Fault|Invariant|Executor|Sweep|Journal'

echo "ci: all gates green"
