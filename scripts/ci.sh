#!/usr/bin/env bash
# The whole tier-1 gate in one command: configure, build, unit tests, and
# a smoke run of the bench pipeline (one real experiment at 2 runs plus
# its JSON artifact). Safe to run repeatedly; reuses the build directory.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}

cmake -S . -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure

# Bench smoke: the registry lists, one experiment runs, and its artifact
# parses back (the test suite covers the schema; this covers the binary).
smoke_out=$(mktemp -d)
trap 'rm -rf "$smoke_out"' EXIT
"$BUILD/bench/rcsim_bench" --list > /dev/null
RCSIM_RUNS=2 "$BUILD/bench/rcsim_bench" --only=headline_table --out="$smoke_out" > /dev/null
test -s "$smoke_out/headline_table.json"

# Sanitizer job: a separate ASan+UBSan build runs a smoke subset of the
# suite (the memory-heavy paths: events, links, transport, faults). The
# tier-1 gate above stays plain Release so its timings and golden digests
# are undisturbed.
SAN_BUILD=${SAN_BUILD:-build-asan}
cmake -S . -B "$SAN_BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo -DRCSIM_SANITIZE=ON
cmake --build "$SAN_BUILD" -j "$(nproc)"
ctest --test-dir "$SAN_BUILD" --output-on-failure \
  -R 'Scheduler|Link|Reliable|Churn|Fault|Invariant|Executor|Sweep'

echo "ci: all gates green"
