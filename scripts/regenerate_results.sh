#!/usr/bin/env bash
# Regenerate every table in results/ (the data behind EXPERIMENTS.md) plus
# the machine-readable JSON artifact next to each one. Replica counts come
# from each experiment's paper-runs value (rcsim_bench --list shows them);
# figures use the paper's 100 runs per data point. Expect ~45 minutes on
# one core; RCSIM_THREADS scales it down on multicore machines. Banners
# and per-experiment progress go to stderr; the tables land in
# results/<name>.txt (no banner line — it moved off stdout).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
OUT=${OUT:-results}

"$BUILD/bench/rcsim_bench" --all --paper-runs --txt --out="$OUT"

echo "done; see $OUT/"
