#!/usr/bin/env bash
# Regenerate every table in results/ (the data behind EXPERIMENTS.md).
# Figures use the paper's 100 runs per data point; ablations/extensions use
# lighter replica counts. Expect ~45 minutes on one core; RCSIM_THREADS
# scales it down on multicore machines.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${BUILD:-build}
OUT=${OUT:-results}
mkdir -p "$OUT"

run() {
  local bench=$1 runs=$2
  echo "=== $bench (RCSIM_RUNS=$runs)"
  RCSIM_RUNS=$runs "$BUILD/bench/$bench" > "$OUT/$bench.txt"
}

run fig3_drops 100
run fig4_ttl 100
run fig5_throughput 100
run fig6_convergence 100
run fig7_delay 100
run headline_table 100
run ablation_mrai 30
run ablation_msgsize 30
run ablation_damping 30
run ablation_flap_damping 30
run ablation_infinity 30
run ablation_splithorizon 30
run ext_tcp 20
run ext_multifailure 15
run ext_random_topo 30
run ext_assertions 15
run ext_dual 30
run ext_churn 10
run appendix_overhead 30
run appendix_load 10

echo "done; see $OUT/"
