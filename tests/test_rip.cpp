#include "routing/rip.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;
using testutil::TestNet;

TEST(Rip, ConvergesOnLine) {
  TestNet tn{testutil::lineTopology(5), ProtocolKind::Rip};
  tn.warmUp(40_sec);
  // Every node routes toward 4 through its right-hand neighbor.
  EXPECT_EQ(tn.nextHop(0, 4), 1);
  EXPECT_EQ(tn.nextHop(1, 4), 2);
  EXPECT_EQ(tn.nextHop(3, 4), 4);
  EXPECT_EQ(tn.nextHop(4, 0), 3);
  auto& rip0 = tn.protocolAs<Rip>(0);
  EXPECT_EQ(rip0.metricFor(4), 4);
  EXPECT_EQ(rip0.metricFor(1), 1);
  EXPECT_EQ(rip0.metricFor(0), 0);
}

TEST(Rip, ConvergesToShortestPathsOnMesh) {
  const auto topo = makeRegularMesh(MeshSpec{5, 5, 4});
  TestNet tn{topo, ProtocolKind::Rip};
  tn.warmUp(60_sec);
  auto& rip = tn.protocolAs<Rip>(gridId(0, 0, 5));
  EXPECT_EQ(rip.metricFor(gridId(4, 4, 5)), 8);
  EXPECT_EQ(rip.metricFor(gridId(2, 2, 5)), 4);
}

TEST(Rip, KeepsNoAlternatePath) {
  // 0-1-4 primary, 0-2-3-4 backup. After 1-4 fails, node 1 has no route to
  // 4 until another neighbor's update arrives (paper §4.1).
  TestNet tn{testutil::twoPathTopology(), ProtocolKind::Rip};
  tn.warmUp(40_sec);
  EXPECT_EQ(tn.nextHop(0, 4), 1);
  tn.net().findLink(1, 4)->fail();
  tn.runUntil(40_sec + 200_ms);  // detection + poison wave done, no periodic yet
  EXPECT_EQ(tn.nextHop(1, 4), kInvalidNode);
  EXPECT_EQ(tn.protocolAs<Rip>(1).metricFor(4), 16);
  // Eventually the periodic update from node 0 restores reachability.
  tn.runUntil(40_sec + 40_sec);
  EXPECT_EQ(tn.nextHop(0, 4), 2);
  EXPECT_EQ(tn.nextHop(1, 4), 0);
  EXPECT_EQ(tn.protocolAs<Rip>(0).metricFor(4), 3);
}

TEST(Rip, PoisonReversePreventsTwoHopLoop) {
  // Line 0-1-2. 2 is unreachable after 1-2 fails; 0 must never offer 1 a
  // route to 2 (0's route goes through 1 and is poisoned).
  TestNet tn{testutil::lineTopology(3), ProtocolKind::Rip};
  tn.warmUp(40_sec);
  tn.net().findLink(1, 2)->fail();
  tn.runUntil(140_sec);
  EXPECT_EQ(tn.nextHop(1, 2), kInvalidNode);
  EXPECT_EQ(tn.nextHop(0, 2), kInvalidNode);
  EXPECT_EQ(tn.protocolAs<Rip>(0).metricFor(2), 16);
}

TEST(Rip, CountsToInfinityIsBounded) {
  // Ring of 6: failing one link leaves a valid long way around; metrics
  // settle to real distances rather than counting forever.
  TestNet tn{testutil::ringTopology(6), ProtocolKind::Rip};
  tn.warmUp(40_sec);
  tn.net().findLink(0, 5)->fail();
  tn.runUntil(150_sec);
  EXPECT_EQ(tn.protocolAs<Rip>(0).metricFor(5), 5);
  EXPECT_EQ(tn.nextHop(0, 5), 1);
}

TEST(Rip, UnreachableBeyondInfinityHops) {
  // A 20-node line: RIP's infinity of 16 makes the far end unreachable.
  TestNet tn{testutil::lineTopology(20), ProtocolKind::Rip};
  tn.warmUp(120_sec);
  auto& rip0 = tn.protocolAs<Rip>(0);
  EXPECT_EQ(rip0.metricFor(10), 10);
  EXPECT_EQ(rip0.metricFor(19), 16);
  EXPECT_EQ(tn.nextHop(0, 19), kInvalidNode);
  EXPECT_EQ(tn.nextHop(0, 10), 1);
}

TEST(Rip, LargerInfinityExtendsReach) {
  // Ablation A5's mechanism at unit scale: infinity=32 makes the same
  // 20-node line fully reachable end to end.
  DvConfig dv;
  dv.infinityMetric = 32;
  ProtocolConfig cfg;
  cfg.dv = dv;
  TestNet tn{testutil::lineTopology(20), ProtocolKind::Rip, cfg};
  tn.warmUp(120_sec);
  auto& rip0 = tn.protocolAs<Rip>(0);
  EXPECT_EQ(rip0.metricFor(19), 19);
  EXPECT_EQ(tn.nextHop(0, 19), 1);
}

TEST(Rip, TriggeredUpdatePropagatesFailureFast) {
  // After detection, poison should reach the whole 5-node line within a
  // couple of hops' transmission time — far sooner than any periodic cycle.
  TestNet tn{testutil::lineTopology(5), ProtocolKind::Rip};
  tn.warmUp(40_sec);
  tn.net().findLink(3, 4)->fail();
  tn.runUntil(40_sec + 500_ms);
  for (NodeId n = 0; n <= 3; ++n) {
    EXPECT_EQ(tn.nextHop(n, 4), kInvalidNode) << "node " << n;
  }
}

TEST(Rip, CutVertexFailureMakesDownstreamUnreachableForGood) {
  // Line 0-1-2: the 0-1 link is a cut edge, so after it fails node 0 must
  // end with *stable* unreachability for both 1 and 2 (no flapping back).
  TestNet tn{testutil::lineTopology(3), ProtocolKind::Rip};
  tn.warmUp(40_sec);
  ASSERT_EQ(tn.nextHop(0, 2), 1);
  tn.net().findLink(0, 1)->fail();
  tn.runUntil(150_sec);
  EXPECT_EQ(tn.nextHop(0, 2), kInvalidNode);
  EXPECT_EQ(tn.nextHop(0, 1), kInvalidNode);
  EXPECT_EQ(tn.nextHop(2, 0), kInvalidNode);
}

TEST(Rip, MessageRespectsEntryCap) {
  DvConfig dv;
  dv.maxEntriesPerMessage = 5;
  ProtocolConfig cfg;
  cfg.dv = dv;
  const auto topo = makeRegularMesh(MeshSpec{5, 5, 4});
  TestNet tn{topo, ProtocolKind::Rip, cfg};
  std::size_t maxEntries = 0;
  std::uint64_t messages = 0;
  tn.net().hooks().onControlSend = [&](Time, NodeId, NodeId, const ControlPayload& payload) {
    if (const auto* u = dynamic_cast<const DvUpdate*>(&payload)) {
      maxEntries = std::max(maxEntries, u->entries.size());
      ++messages;
    }
  };
  tn.warmUp(40_sec);
  EXPECT_GT(messages, 0u);
  EXPECT_LE(maxEntries, 5u);
  // Convergence still correct with the small cap:
  EXPECT_EQ(tn.protocolAs<Rip>(gridId(0, 0, 5)).metricFor(gridId(4, 4, 5)), 8);
}

}  // namespace
}  // namespace rcsim
