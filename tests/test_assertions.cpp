// Tests for the consistency-assertions extension (paper ref [21]).
#include <gtest/gtest.h>

#include "routing/bgp.hpp"
#include "test_util.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;
using testutil::TestNet;

ProtocolConfig withAssertions(bool on) {
  ProtocolConfig cfg;
  cfg.bgp.mraiMinSec = 2.25;
  cfg.bgp.mraiMaxSec = 3.0;
  cfg.bgp.consistencyAssertions = on;
  return cfg;
}

TEST(Assertions, SteadyStateUnchanged) {
  // With a converged network every advertised path is consistent, so the
  // assertion must not alter any routing decision.
  const auto topo = makeRegularMesh(MeshSpec{5, 5, 4});
  TestNet plain{topo, ProtocolKind::Bgp, withAssertions(false)};
  TestNet strict{topo, ProtocolKind::Bgp, withAssertions(true)};
  plain.warmUp(120_sec);
  strict.warmUp(120_sec);
  for (NodeId n = 0; n < topo.nodeCount; ++n) {
    for (NodeId d = 0; d < topo.nodeCount; ++d) {
      EXPECT_EQ(plain.nextHop(n, d), strict.nextHop(n, d)) << n << "->" << d;
    }
  }
}

TEST(Assertions, ReconvergesAfterSingleFailure) {
  TestNet tn{testutil::twoPathTopology(), ProtocolKind::Bgp, withAssertions(true)};
  tn.warmUp(60_sec);
  ASSERT_EQ(tn.nextHop(0, 4), 1);
  tn.net().findLink(1, 4)->fail();
  tn.runUntil(120_sec);
  EXPECT_EQ(tn.nextHop(0, 4), 2);
  EXPECT_EQ(tn.nextHop(1, 4), 0);
}

TEST(Assertions, PathContradictingNeighborsOwnViewIsSkipped) {
  // Ring of 4 (0-1-2-3-0). Node 0 hears from 1 the path [1, 2] for dst 2
  // and from 3 the path [3, 2]. Both 1 and... build a contradiction:
  // after 2-3 fails, 3's old path via 2 is gone; anything 0 still holds
  // from 1 claiming to cross 3 would be vetoed by 3's own view. End state
  // must be consistent and loop-free.
  TestNet tn{testutil::ringTopology(4), ProtocolKind::Bgp, withAssertions(true)};
  tn.warmUp(60_sec);
  tn.net().findLink(2, 3)->fail();
  tn.runUntil(120_sec);
  EXPECT_EQ(tn.nextHop(3, 2), 0);  // the long way round
  EXPECT_EQ(tn.nextHop(0, 2), 1);
  auto& bgp3node = tn.protocolAs<Bgp>(3);
  EXPECT_EQ(bgp3node.bestPath(2), (std::vector<NodeId>{0, 1, 2}));
}

TEST(Assertions, SpeedsUpDestinationWithdrawal) {
  // Disconnect node 4 in the two-path graph: every route to it must
  // disappear. Assertions prune the stale-cross-path exploration, so the
  // strict variant never takes *longer* and typically converges faster.
  auto tdownSeconds = [](bool assertions) {
    TestNet tn{testutil::twoPathTopology(), ProtocolKind::Bgp, withAssertions(assertions)};
    tn.warmUp(60_sec);
    tn.net().findLink(1, 4)->fail();
    tn.net().findLink(3, 4)->fail();
    Time last = Time::zero();
    tn.net().hooks().onRouteChange = [&last, &tn](Time t, NodeId, NodeId, NodeId, NodeId) {
      last = t;
    };
    tn.runUntil(400_sec);
    for (NodeId n = 0; n <= 3; ++n) EXPECT_EQ(tn.nextHop(n, 4), kInvalidNode) << n;
    return (last - 60_sec).toSeconds();
  };
  const double plain = tdownSeconds(false);
  const double strict = tdownSeconds(true);
  EXPECT_LE(strict, plain + 1e-9);
}

TEST(Assertions, OffByDefault) {
  BgpConfig cfg;
  EXPECT_FALSE(cfg.consistencyAssertions);
}

}  // namespace
}  // namespace rcsim
