#include "core/options.hpp"

#include <gtest/gtest.h>

namespace rcsim {
namespace {

TEST(Options, AppliesScenarioKeys) {
  ScenarioConfig cfg;
  applyOption(cfg, "protocol", "RIP");
  applyOption(cfg, "degree", "9");
  applyOption(cfg, "seed", "77");
  applyOption(cfg, "flows", "3");
  applyOption(cfg, "traffic", "tcp");
  applyOption(cfg, "rate", "12.5");
  applyOption(cfg, "failures", "2");
  applyOption(cfg, "fail-at", "123.5");
  applyOption(cfg, "no-failure", "0");
  EXPECT_EQ(cfg.protocol, ProtocolKind::Rip);
  EXPECT_EQ(cfg.mesh.degree, 9);
  EXPECT_EQ(cfg.seed, 77u);
  EXPECT_EQ(cfg.flows, 3);
  EXPECT_EQ(cfg.traffic, TrafficKind::Tcp);
  EXPECT_DOUBLE_EQ(cfg.packetsPerSecond, 12.5);
  EXPECT_EQ(cfg.failureCount, 2);
  EXPECT_DOUBLE_EQ(cfg.failAt.toSeconds(), 123.5);
  EXPECT_TRUE(cfg.injectFailure);
}

TEST(Options, AppliesProtocolKnobs) {
  ScenarioConfig cfg;
  applyOption(cfg, "dv.periodic", "15");
  applyOption(cfg, "dv.infinity", "32");
  applyOption(cfg, "dv.poison", "off");
  applyOption(cfg, "bgp.mrai-min", "2.25");
  applyOption(cfg, "bgp.per-dest-mrai", "1");
  applyOption(cfg, "bgp.rfd", "true");
  applyOption(cfg, "ls.spf-delay-ms", "25");
  EXPECT_DOUBLE_EQ(cfg.protoCfg.dv.periodicInterval.toSeconds(), 15.0);
  EXPECT_EQ(cfg.protoCfg.dv.infinityMetric, 32);
  EXPECT_EQ(cfg.protoCfg.dv.splitHorizon, SplitHorizonMode::None);
  EXPECT_DOUBLE_EQ(cfg.protoCfg.bgp.mraiMinSec, 2.25);
  EXPECT_TRUE(cfg.protoCfg.bgp.perDestMrai);
  EXPECT_TRUE(cfg.protoCfg.bgp.flapDampingEnabled);
  EXPECT_DOUBLE_EQ(cfg.protoCfg.ls.spfDelay.toSeconds(), 0.025);
}

TEST(Options, AppliesLinkKnobs) {
  ScenarioConfig cfg;
  applyOption(cfg, "bandwidth", "1e6");
  applyOption(cfg, "prop-delay-ms", "2.5");
  applyOption(cfg, "queue", "50");
  applyOption(cfg, "detect-ms", "100");
  EXPECT_DOUBLE_EQ(cfg.link.bandwidthBps, 1e6);
  EXPECT_DOUBLE_EQ(cfg.link.propDelay.toSeconds(), 0.0025);
  EXPECT_EQ(cfg.link.queueCapacity, 50u);
  EXPECT_DOUBLE_EQ(cfg.link.detectDelay.toSeconds(), 0.1);
}

TEST(Options, TopologySelection) {
  ScenarioConfig cfg;
  applyOption(cfg, "topology", "random");
  applyOption(cfg, "random.nodes", "64");
  applyOption(cfg, "random.avg-degree", "5.5");
  EXPECT_EQ(cfg.topology, TopologyKind::Random);
  EXPECT_EQ(cfg.random.nodes, 64);
  EXPECT_DOUBLE_EQ(cfg.random.avgDegree, 5.5);
  applyOption(cfg, "topology", "mesh");
  EXPECT_EQ(cfg.topology, TopologyKind::RegularMesh);
}

TEST(Options, FileAndNamedTopologySelection) {
  ScenarioConfig cfg;
  applyOption(cfg, "topology", "named");
  applyOption(cfg, "named.graph", "nsfnet");
  EXPECT_EQ(cfg.topology, TopologyKind::Named);
  EXPECT_EQ(cfg.named.graph, "nsfnet");
  applyOption(cfg, "topology", "file");
  applyOption(cfg, "file.path", "graphs/backbone.topo");
  EXPECT_EQ(cfg.topology, TopologyKind::File);
  EXPECT_EQ(cfg.file.path, "graphs/backbone.topo");
  EXPECT_THROW(applyOption(cfg, "topology", "zoo"), std::invalid_argument);
  EXPECT_THROW(applyOption(cfg, "file.path", ""), std::invalid_argument);
  EXPECT_THROW(applyOption(cfg, "named.graph", ""), std::invalid_argument);
}

// Artifact configs replay through describeOptions: the active topology
// kind's keys must survive the describe -> apply cycle verbatim.
TEST(Options, DescribeRoundTripsFileAndNamedTopologies) {
  ScenarioConfig named;
  applyOption(named, "topology", "named");
  applyOption(named, "named.graph", "abilene");
  ScenarioConfig rebuiltNamed;
  for (const auto& opt : describeOptions(named)) applyOptionString(rebuiltNamed, opt);
  EXPECT_EQ(rebuiltNamed.topology, TopologyKind::Named);
  EXPECT_EQ(rebuiltNamed.named.graph, "abilene");
  EXPECT_EQ(describeOptions(rebuiltNamed), describeOptions(named));

  ScenarioConfig file;
  applyOption(file, "topology", "file");
  applyOption(file, "file.path", "/tmp/x.topo");
  ScenarioConfig rebuiltFile;
  for (const auto& opt : describeOptions(file)) applyOptionString(rebuiltFile, opt);
  EXPECT_EQ(rebuiltFile.topology, TopologyKind::File);
  EXPECT_EQ(rebuiltFile.file.path, "/tmp/x.topo");
  EXPECT_EQ(describeOptions(rebuiltFile), describeOptions(file));
}

TEST(Options, InlineTopologyAndPinnedEndpoints) {
  ScenarioConfig cfg;
  applyOption(cfg, "topology", "inline");
  applyOption(cfg, "inline.nodes", "4");
  applyOption(cfg, "inline.edges", "0-1,1-2,2-3,3-0");
  applyOption(cfg, "pin.src", "0");
  applyOption(cfg, "pin.dst", "2");
  EXPECT_EQ(cfg.topology, TopologyKind::Inline);
  EXPECT_EQ(cfg.inlineTopo.nodes, 4);
  ASSERT_EQ(cfg.inlineTopo.edges.size(), 4u);
  EXPECT_EQ(cfg.inlineTopo.edges[0], (std::pair<NodeId, NodeId>{0, 1}));
  EXPECT_EQ(cfg.pinSrc, 0);
  EXPECT_EQ(cfg.pinDst, 2);

  ScenarioConfig rebuilt;
  for (const auto& opt : describeOptions(cfg)) applyOptionString(rebuilt, opt);
  EXPECT_EQ(rebuilt.inlineTopo, cfg.inlineTopo);
  EXPECT_EQ(rebuilt.pinSrc, 0);
  EXPECT_EQ(rebuilt.pinDst, 2);
  EXPECT_EQ(describeOptions(rebuilt), describeOptions(cfg));

  // pin.src/pin.dst default to -1 (unset) and then stay out of describe
  // output so existing config digests are untouched.
  ScenarioConfig plain;
  for (const auto& opt : describeOptions(plain)) {
    EXPECT_EQ(opt.find("pin."), std::string::npos) << opt;
  }
  applyOption(plain, "pin.src", "-1");
  EXPECT_EQ(plain.pinSrc, kInvalidNode);

  EXPECT_THROW(applyOption(cfg, "inline.edges", "0-"), std::invalid_argument);
  EXPECT_THROW(applyOption(cfg, "inline.edges", "0:1"), std::invalid_argument);
  EXPECT_THROW(applyOption(cfg, "inline.edges", "a-b"), std::invalid_argument);
  EXPECT_THROW(applyOption(cfg, "pin.src", "-2"), std::invalid_argument);
}

TEST(Options, AnatomyToggleRoundTrips) {
  ScenarioConfig cfg;
  EXPECT_TRUE(cfg.anatomy);  // profiler is on by default
  applyOption(cfg, "anatomy", "0");
  EXPECT_FALSE(cfg.anatomy);
  applyOption(cfg, "anatomy", "true");
  EXPECT_TRUE(cfg.anatomy);
  EXPECT_THROW(applyOption(cfg, "anatomy", "maybe"), std::invalid_argument);

  cfg.anatomy = false;
  ScenarioConfig rebuilt;
  for (const auto& opt : describeOptions(cfg)) applyOptionString(rebuilt, opt);
  EXPECT_FALSE(rebuilt.anatomy);
  EXPECT_EQ(describeOptions(rebuilt), describeOptions(cfg));
}

TEST(Options, RandomUniformModeKnobs) {
  ScenarioConfig cfg;
  applyOption(cfg, "topology", "random");
  applyOption(cfg, "random.tree", "0");
  applyOption(cfg, "random.ensure-connected", "1");
  EXPECT_FALSE(cfg.random.spanningTree);
  EXPECT_TRUE(cfg.random.ensureConnected);

  ScenarioConfig rebuilt;
  for (const auto& opt : describeOptions(cfg)) applyOptionString(rebuilt, opt);
  EXPECT_FALSE(rebuilt.random.spanningTree);
  EXPECT_TRUE(rebuilt.random.ensureConnected);
  EXPECT_EQ(describeOptions(rebuilt), describeOptions(cfg));
}

TEST(Options, OptionStringFormats) {
  ScenarioConfig cfg;
  applyOptionString(cfg, "degree=11");
  EXPECT_EQ(cfg.mesh.degree, 11);
  applyOptionString(cfg, "--degree=12");
  EXPECT_EQ(cfg.mesh.degree, 12);
}

TEST(Options, RejectsMalformedInput) {
  ScenarioConfig cfg;
  EXPECT_THROW(applyOption(cfg, "unknown-key", "1"), std::invalid_argument);
  EXPECT_THROW(applyOption(cfg, "degree", "abc"), std::invalid_argument);
  EXPECT_THROW(applyOption(cfg, "degree", "4x"), std::invalid_argument);
  EXPECT_THROW(applyOption(cfg, "rate", ""), std::invalid_argument);
  EXPECT_THROW(applyOption(cfg, "protocol", "OSPFv9"), std::invalid_argument);
  EXPECT_THROW(applyOption(cfg, "traffic", "udp"), std::invalid_argument);
  EXPECT_THROW(applyOption(cfg, "dv.poison", "maybe"), std::invalid_argument);
  EXPECT_THROW(applyOptionString(cfg, "no-equals-sign"), std::invalid_argument);
}

// describeOptions must emit every knob a spec can set, so that replaying
// an artifact's config list reproduces the scenario exactly. Twist every
// family of knobs away from its default and compare canonical renderings
// after a full describe -> apply cycle.
TEST(Options, DescribeCoversEveryKnob) {
  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::Bgp3;
  cfg.mesh.degree = 7;
  cfg.seed = 42;
  cfg.flows = 3;
  cfg.traffic = TrafficKind::Tcp;
  cfg.tcpWindow = 16;
  cfg.packetsPerSecond = 55.5;
  cfg.failureCount = 2;
  cfg.failureSpacing = Time::seconds(5.0);
  cfg.failAt = Time::seconds(123.5);
  cfg.trafficStart = Time::seconds(80.0);
  cfg.trafficStop = Time::seconds(140.0);
  cfg.endAt = Time::seconds(222.0);
  cfg.tracePackets = false;
  cfg.ecmp = true;
  cfg.link.bandwidthBps = 2e6;
  cfg.link.propDelay = Time::milliseconds(3);
  cfg.link.queueCapacity = 33;
  cfg.link.detectDelay = Time::milliseconds(500);
  cfg.protoCfg.dv.periodicInterval = Time::seconds(17.0);
  cfg.protoCfg.dv.infinityMetric = 32;
  cfg.protoCfg.dv.maxEntriesPerMessage = 5;
  cfg.protoCfg.dv.splitHorizon = SplitHorizonMode::SplitHorizon;
  cfg.protoCfg.dv.triggerDampMinSec = 2.0;
  cfg.protoCfg.dv.triggerDampMaxSec = 6.0;
  cfg.protoCfg.bgp.mraiMinSec = 2.5;
  cfg.protoCfg.bgp.perDestMrai = true;
  cfg.protoCfg.bgp.withdrawalsExemptFromMrai = false;
  cfg.protoCfg.bgp.consistencyAssertions = true;
  cfg.protoCfg.bgp.flapDampingEnabled = true;
  cfg.protoCfg.bgp.rfdPenaltyPerFlap = 1999.0;
  cfg.protoCfg.ls.spfDelay = Time::milliseconds(25);
  cfg.protoCfg.ls.spfOracle = true;
  cfg.protoCfg.dual.siaTimeout = Time::seconds(20.0);

  ScenarioConfig rebuilt;
  for (const auto& opt : describeOptions(cfg)) applyOptionString(rebuilt, opt);
  EXPECT_EQ(describeOptions(rebuilt), describeOptions(cfg));
  EXPECT_EQ(rebuilt.traffic, TrafficKind::Tcp);
  EXPECT_EQ(rebuilt.tcpWindow, 16);
  EXPECT_EQ(rebuilt.protoCfg.dv.splitHorizon, SplitHorizonMode::SplitHorizon);
  EXPECT_DOUBLE_EQ(rebuilt.protoCfg.bgp.rfdPenaltyPerFlap, 1999.0);
  EXPECT_FALSE(rebuilt.tracePackets);
  EXPECT_TRUE(rebuilt.ecmp);
  EXPECT_TRUE(rebuilt.protoCfg.ls.spfOracle);
}

// An infinite repair time must describe as "inf" and re-apply cleanly
// (casting an infinite double through Time::seconds would be UB).
TEST(Options, DescribeRoundTripsInfiniteRepair) {
  ScenarioConfig cfg;
  applyOption(cfg, "repair-after", "inf");
  EXPECT_EQ(cfg.repairAfter, Time::infinity());
  ScenarioConfig rebuilt;
  for (const auto& opt : describeOptions(cfg)) applyOptionString(rebuilt, opt);
  EXPECT_EQ(rebuilt.repairAfter, Time::infinity());
}

TEST(Options, DescribeRoundTrips) {
  ScenarioConfig cfg;
  applyOption(cfg, "protocol", "BGP3");
  applyOption(cfg, "degree", "5");
  applyOption(cfg, "flows", "2");
  const auto described = describeOptions(cfg);
  ScenarioConfig rebuilt;
  for (const auto& opt : described) applyOptionString(rebuilt, opt);
  EXPECT_EQ(rebuilt.protocol, cfg.protocol);
  EXPECT_EQ(rebuilt.mesh.degree, cfg.mesh.degree);
  EXPECT_EQ(rebuilt.flows, cfg.flows);
  EXPECT_EQ(rebuilt.failAt, cfg.failAt);
}

}  // namespace
}  // namespace rcsim
