#include "topo/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "topo/graph_algo.hpp"

namespace rcsim {
namespace {

TEST(Topology, Degree4IsPlainGrid) {
  const auto topo = makeRegularMesh(MeshSpec{7, 7, 4});
  EXPECT_EQ(topo.nodeCount, 49);
  // 7x7 grid: 6*7 horizontal + 7*6 vertical edges.
  EXPECT_EQ(topo.edges.size(), 84u);
  EXPECT_TRUE(topo.hasEdge(gridId(0, 0, 7), gridId(0, 1, 7)));
  EXPECT_TRUE(topo.hasEdge(gridId(0, 0, 7), gridId(1, 0, 7)));
  EXPECT_FALSE(topo.hasEdge(gridId(0, 0, 7), gridId(1, 1, 7)));
}

TEST(Topology, EdgesCanonicalAndUnique) {
  const auto topo = makeRegularMesh(MeshSpec{7, 7, 8});
  EXPECT_TRUE(std::is_sorted(topo.edges.begin(), topo.edges.end()));
  EXPECT_EQ(std::adjacent_find(topo.edges.begin(), topo.edges.end()), topo.edges.end());
  for (const auto& [a, b] : topo.edges) {
    EXPECT_LT(a, b);
    EXPECT_GE(a, 0);
    EXPECT_LT(b, topo.nodeCount);
  }
}

TEST(Topology, RejectsOutOfFamilyDegrees) {
  EXPECT_THROW(makeRegularMesh(MeshSpec{7, 7, 2}), std::invalid_argument);
  EXPECT_THROW(makeRegularMesh(MeshSpec{7, 7, 17}), std::invalid_argument);
  EXPECT_THROW(makeRegularMesh(MeshSpec{2, 7, 4}), std::invalid_argument);
}

TEST(Topology, AdjacencyMatchesEdges) {
  const auto topo = makeRegularMesh(MeshSpec{7, 7, 6});
  const auto adj = topo.adjacency();
  std::size_t total = 0;
  for (const auto& nbrs : adj) total += nbrs.size();
  EXPECT_EQ(total, 2 * topo.edges.size());
}

/// Property sweep over the entire degree family (paper: degrees 3..16).
class MeshFamily : public ::testing::TestWithParam<int> {};

TEST_P(MeshFamily, InteriorNodesHaveExactTargetDegree) {
  const int degree = GetParam();
  const MeshSpec spec{9, 9, degree};  // 9x9 so interior is 2 away from borders
  const auto topo = makeRegularMesh(spec);
  // All construction offsets have magnitude <= 2, so nodes at grid distance
  // >= 2 from every border see the full rule set.
  for (int r = 2; r < spec.rows - 2; ++r) {
    for (int c = 2; c < spec.cols - 2; ++c) {
      EXPECT_EQ(topo.degreeOf(gridId(r, c, spec.cols)), degree)
          << "node (" << r << "," << c << ") at degree " << degree;
    }
  }
}

TEST_P(MeshFamily, Connected) {
  const auto topo = makeRegularMesh(MeshSpec{7, 7, GetParam()});
  EXPECT_TRUE(topo.isConnected());
}

TEST_P(MeshFamily, Deterministic) {
  const auto a = makeRegularMesh(MeshSpec{7, 7, GetParam()});
  const auto b = makeRegularMesh(MeshSpec{7, 7, GetParam()});
  EXPECT_EQ(a.edges, b.edges);
}

TEST_P(MeshFamily, DegreeMonotoneInEdgeCount) {
  const int degree = GetParam();
  if (degree == 3) return;
  const auto lo = makeRegularMesh(MeshSpec{7, 7, degree - 1});
  const auto hi = makeRegularMesh(MeshSpec{7, 7, degree});
  EXPECT_GT(hi.edges.size(), lo.edges.size());
}

TEST_P(MeshFamily, DiameterShrinksOrHoldsWithDensity) {
  const int degree = GetParam();
  if (degree == 3) return;
  const auto lo = makeRegularMesh(MeshSpec{7, 7, degree - 1});
  const auto hi = makeRegularMesh(MeshSpec{7, 7, degree});
  EXPECT_LE(graphDiameter(hi), graphDiameter(lo));
}

TEST_P(MeshFamily, NoSelfLoops) {
  const auto topo = makeRegularMesh(MeshSpec{7, 7, GetParam()});
  for (const auto& [a, b] : topo.edges) EXPECT_NE(a, b);
}

INSTANTIATE_TEST_SUITE_P(Degrees, MeshFamily, ::testing::Range(3, 17));

TEST(GraphAlgo, BfsDistancesOnGrid) {
  const auto topo = makeRegularMesh(MeshSpec{7, 7, 4});
  const auto dist = bfsDistances(topo, gridId(0, 0, 7));
  EXPECT_EQ(dist[static_cast<std::size_t>(gridId(0, 0, 7))], 0);
  EXPECT_EQ(dist[static_cast<std::size_t>(gridId(0, 6, 7))], 6);
  EXPECT_EQ(dist[static_cast<std::size_t>(gridId(6, 6, 7))], 12);  // Manhattan
}

TEST(GraphAlgo, DiagonalsShortenDiameter) {
  EXPECT_EQ(graphDiameter(makeRegularMesh(MeshSpec{7, 7, 4})), 12);
  EXPECT_LE(graphDiameter(makeRegularMesh(MeshSpec{7, 7, 8})), 6);
}

TEST(GraphAlgo, ShortestFirstHopsGrowWithDegree) {
  // The supply of shortest first hops from a mid-grid node toward the
  // opposite corner grows with connectivity — the paper's §4.2 intuition.
  const NodeId src = gridId(3, 3, 7);
  const NodeId dst = gridId(6, 6, 7);
  const int d4 = shortestFirstHops(makeRegularMesh(MeshSpec{7, 7, 4}), src, dst);
  const int d8 = shortestFirstHops(makeRegularMesh(MeshSpec{7, 7, 8}), src, dst);
  EXPECT_GE(d4, 2);
  EXPECT_GE(d8, d4 - 1);
}

TEST(GraphAlgo, UnreachableIsMinusOne) {
  Topology topo;
  topo.nodeCount = 3;
  topo.edges = {{0, 1}};
  const auto dist = bfsDistances(topo, 0);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(graphDiameter(topo), -1);
  EXPECT_FALSE(topo.isConnected());
}

}  // namespace
}  // namespace rcsim
