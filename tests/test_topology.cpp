#include "topo/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "topo/graph_algo.hpp"

namespace rcsim {
namespace {

TEST(Topology, Degree4IsPlainGrid) {
  const auto topo = makeRegularMesh(MeshSpec{7, 7, 4});
  EXPECT_EQ(topo.nodeCount, 49);
  // 7x7 grid: 6*7 horizontal + 7*6 vertical edges.
  EXPECT_EQ(topo.edges.size(), 84u);
  EXPECT_TRUE(topo.hasEdge(gridId(0, 0, 7), gridId(0, 1, 7)));
  EXPECT_TRUE(topo.hasEdge(gridId(0, 0, 7), gridId(1, 0, 7)));
  EXPECT_FALSE(topo.hasEdge(gridId(0, 0, 7), gridId(1, 1, 7)));
}

TEST(Topology, EdgesCanonicalAndUnique) {
  const auto topo = makeRegularMesh(MeshSpec{7, 7, 8});
  EXPECT_TRUE(std::is_sorted(topo.edges.begin(), topo.edges.end()));
  EXPECT_EQ(std::adjacent_find(topo.edges.begin(), topo.edges.end()), topo.edges.end());
  for (const auto& [a, b] : topo.edges) {
    EXPECT_LT(a, b);
    EXPECT_GE(a, 0);
    EXPECT_LT(b, topo.nodeCount);
  }
}

TEST(Topology, RejectsOutOfFamilyDegrees) {
  EXPECT_THROW(makeRegularMesh(MeshSpec{7, 7, 2}), std::invalid_argument);
  EXPECT_THROW(makeRegularMesh(MeshSpec{7, 7, 17}), std::invalid_argument);
  EXPECT_THROW(makeRegularMesh(MeshSpec{2, 7, 4}), std::invalid_argument);
}

TEST(Topology, AdjacencyMatchesEdges) {
  const auto topo = makeRegularMesh(MeshSpec{7, 7, 6});
  const auto adj = topo.adjacency();
  std::size_t total = 0;
  for (const auto& nbrs : adj) total += nbrs.size();
  EXPECT_EQ(total, 2 * topo.edges.size());
}

/// Property sweep over the entire degree family (paper: degrees 3..16).
class MeshFamily : public ::testing::TestWithParam<int> {};

TEST_P(MeshFamily, InteriorNodesHaveExactTargetDegree) {
  const int degree = GetParam();
  const MeshSpec spec{9, 9, degree};  // 9x9 so interior is 2 away from borders
  const auto topo = makeRegularMesh(spec);
  // All construction offsets have magnitude <= 2, so nodes at grid distance
  // >= 2 from every border see the full rule set.
  for (int r = 2; r < spec.rows - 2; ++r) {
    for (int c = 2; c < spec.cols - 2; ++c) {
      EXPECT_EQ(topo.degreeOf(gridId(r, c, spec.cols)), degree)
          << "node (" << r << "," << c << ") at degree " << degree;
    }
  }
}

TEST_P(MeshFamily, Connected) {
  const auto topo = makeRegularMesh(MeshSpec{7, 7, GetParam()});
  EXPECT_TRUE(topo.isConnected());
}

TEST_P(MeshFamily, Deterministic) {
  const auto a = makeRegularMesh(MeshSpec{7, 7, GetParam()});
  const auto b = makeRegularMesh(MeshSpec{7, 7, GetParam()});
  EXPECT_EQ(a.edges, b.edges);
}

TEST_P(MeshFamily, DegreeMonotoneInEdgeCount) {
  const int degree = GetParam();
  if (degree == 3) return;
  const auto lo = makeRegularMesh(MeshSpec{7, 7, degree - 1});
  const auto hi = makeRegularMesh(MeshSpec{7, 7, degree});
  EXPECT_GT(hi.edges.size(), lo.edges.size());
}

TEST_P(MeshFamily, DiameterShrinksOrHoldsWithDensity) {
  const int degree = GetParam();
  if (degree == 3) return;
  const auto lo = makeRegularMesh(MeshSpec{7, 7, degree - 1});
  const auto hi = makeRegularMesh(MeshSpec{7, 7, degree});
  EXPECT_LE(graphDiameter(hi), graphDiameter(lo));
}

TEST_P(MeshFamily, NoSelfLoops) {
  const auto topo = makeRegularMesh(MeshSpec{7, 7, GetParam()});
  for (const auto& [a, b] : topo.edges) EXPECT_NE(a, b);
}

INSTANTIATE_TEST_SUITE_P(Degrees, MeshFamily, ::testing::Range(3, 17));

/// Internet-scale builds: the whole family at 100x100 (10,000 nodes). The
/// CSR adjacency makes degreeOf/isConnected O(1)/O(V+E), so this entire
/// sweep stays well inside the test timeout.
TEST_P(MeshFamily, HundredByHundredBuildsConnectedWithCorrectInteriorDegree) {
  const int degree = GetParam();
  const MeshSpec spec{100, 100, degree};
  const auto topo = makeRegularMesh(spec);
  EXPECT_EQ(topo.nodeCount, 10000);
  EXPECT_TRUE(topo.isConnected());
  // Construction offsets have magnitude <= 2: every node at grid distance
  // >= 2 from all borders sees the full rule set.
  for (int r = 2; r < spec.rows - 2; r += 7) {
    for (int c = 2; c < spec.cols - 2; c += 7) {
      ASSERT_EQ(topo.degreeOf(gridId(r, c, spec.cols)), degree)
          << "node (" << r << "," << c << ") at degree " << degree;
    }
  }
}

TEST(Topology, RejectsMeshesThatOverflowNodeId) {
  // 66000^2 > INT32_MAX: the node-id space itself overflows.
  EXPECT_THROW(makeRegularMesh(MeshSpec{66000, 66000, 4}), std::invalid_argument);
  EXPECT_THROW(makeRegularMesh(MeshSpec{3, 2147483647, 4}), std::invalid_argument);
}

TEST(RandomTopology, DenseGraphsBuildFastWithExactEdgeCount) {
  // avgDegree near nodes-1 used to drive the rejection sampler into
  // quadratic-and-worse retry storms; the complement-sampling path makes
  // density irrelevant. ctest enforces the suite timeout; this used to hang.
  RandomGraphSpec spec;
  spec.nodes = 200;
  spec.avgDegree = 150.0;
  spec.seed = 7;
  const auto topo = makeRandomTopology(spec);
  EXPECT_EQ(topo.nodeCount, 200);
  EXPECT_EQ(topo.edges.size(), static_cast<std::size_t>(200 * 150 / 2));
  EXPECT_TRUE(topo.isConnected());
  EXPECT_TRUE(std::is_sorted(topo.edges.begin(), topo.edges.end()));
}

TEST(RandomTopology, NearCompleteGraph) {
  RandomGraphSpec spec;
  spec.nodes = 200;
  spec.avgDegree = 199.0;  // the complete graph: every pair present
  spec.seed = 3;
  const auto topo = makeRandomTopology(spec);
  EXPECT_EQ(topo.edges.size(), static_cast<std::size_t>(200 * 199 / 2));
  for (NodeId n = 0; n < topo.nodeCount; ++n) EXPECT_EQ(topo.degreeOf(n), 199);
}

TEST(RandomTopology, DenseBuildIsDeterministicPerSeed) {
  RandomGraphSpec spec;
  spec.nodes = 120;
  spec.avgDegree = 90.0;
  spec.seed = 11;
  const auto a = makeRandomTopology(spec);
  const auto b = makeRandomTopology(spec);
  EXPECT_EQ(a.edges, b.edges);
  spec.seed = 12;
  EXPECT_NE(makeRandomTopology(spec).edges, a.edges);
}

TEST(RandomTopology, UniformModeCanDisconnectAtSparseDensity) {
  // Without the spanning-tree skeleton a sparse G(n, m) draw is usually
  // split; this pins that the uniform mode really is a pure edge sample.
  RandomGraphSpec spec;
  spec.nodes = 40;
  spec.avgDegree = 1.2;
  spec.spanningTree = false;
  int disconnected = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    spec.seed = seed;
    if (!makeRandomTopology(spec).isConnected()) ++disconnected;
  }
  EXPECT_GT(disconnected, 0);
}

TEST(RandomTopology, EnsureConnectedRepairsSparseUniformDraws) {
  RandomGraphSpec spec;
  spec.nodes = 40;
  spec.avgDegree = 1.2;
  spec.spanningTree = false;
  spec.ensureConnected = true;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    spec.seed = seed;
    const auto topo = makeRandomTopology(spec);
    EXPECT_TRUE(topo.isConnected()) << "seed " << seed;
    EXPECT_EQ(topo.nodeCount, 40);
    EXPECT_TRUE(std::is_sorted(topo.edges.begin(), topo.edges.end()));
    // Repair is deterministic: same spec, same graph.
    EXPECT_EQ(makeRandomTopology(spec).edges, topo.edges) << "seed " << seed;
  }
}

TEST(RandomTopology, EnsureConnectedRepairsEdgelessDraw) {
  // avgDegree=0 yields zero edges, so every retry fails and the bridging
  // fallback must chain all the singleton components into a path.
  RandomGraphSpec spec;
  spec.nodes = 8;
  spec.avgDegree = 0.0;
  spec.spanningTree = false;
  spec.ensureConnected = true;
  spec.seed = 5;
  const auto topo = makeRandomTopology(spec);
  EXPECT_TRUE(topo.isConnected());
  EXPECT_EQ(topo.edges.size(), 7u);
}

TEST(RandomTopology, EnsureConnectedLeavesConnectedDrawsUntouched) {
  // The historical default (tree skeleton) is connected by construction;
  // flipping ensureConnected on must not change the drawn edges.
  RandomGraphSpec spec;
  spec.nodes = 49;
  spec.avgDegree = 4.0;
  spec.seed = 1;
  const auto baseline = makeRandomTopology(spec);
  spec.ensureConnected = true;
  EXPECT_EQ(makeRandomTopology(spec).edges, baseline.edges);
}

TEST(Topology, IndexValidationCatchesMalformedEdgeLists) {
  // Hand-built topologies (as tests and tools do) must either be canonical
  // or call normalize(); the index build diagnoses the violation instead of
  // silently answering degree/hasEdge queries wrong.
  Topology reversed;
  reversed.nodeCount = 3;
  reversed.edges = {{2, 1}};
  EXPECT_THROW((void)reversed.hasEdge(1, 2), std::invalid_argument);
  reversed.normalize();
  EXPECT_TRUE(reversed.hasEdge(1, 2));

  Topology selfLoop;
  selfLoop.nodeCount = 2;
  selfLoop.edges = {{1, 1}};
  EXPECT_THROW((void)selfLoop.degreeOf(1), std::invalid_argument);

  Topology outOfRange;
  outOfRange.nodeCount = 2;
  outOfRange.edges = {{0, 5}};
  EXPECT_THROW((void)outOfRange.degreeOf(0), std::invalid_argument);
}

TEST(Topology, NormalizeSortsAndDeduplicates) {
  Topology topo;
  topo.nodeCount = 4;
  topo.edges = {{3, 0}, {1, 0}, {0, 1}, {2, 3}};
  topo.normalize();
  EXPECT_EQ(topo.edges, (std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {0, 3}, {2, 3}}));
  EXPECT_EQ(topo.degreeOf(0), 2);
  EXPECT_EQ(topo.degreeOf(3), 2);
}

TEST(GraphAlgo, BfsDistancesOnGrid) {
  const auto topo = makeRegularMesh(MeshSpec{7, 7, 4});
  const auto dist = bfsDistances(topo, gridId(0, 0, 7));
  EXPECT_EQ(dist[static_cast<std::size_t>(gridId(0, 0, 7))], 0);
  EXPECT_EQ(dist[static_cast<std::size_t>(gridId(0, 6, 7))], 6);
  EXPECT_EQ(dist[static_cast<std::size_t>(gridId(6, 6, 7))], 12);  // Manhattan
}

TEST(GraphAlgo, DiagonalsShortenDiameter) {
  EXPECT_EQ(graphDiameter(makeRegularMesh(MeshSpec{7, 7, 4})), 12);
  EXPECT_LE(graphDiameter(makeRegularMesh(MeshSpec{7, 7, 8})), 6);
}

TEST(GraphAlgo, ShortestFirstHopsGrowWithDegree) {
  // The supply of shortest first hops from a mid-grid node toward the
  // opposite corner grows with connectivity — the paper's §4.2 intuition.
  const NodeId src = gridId(3, 3, 7);
  const NodeId dst = gridId(6, 6, 7);
  const int d4 = shortestFirstHops(makeRegularMesh(MeshSpec{7, 7, 4}), src, dst);
  const int d8 = shortestFirstHops(makeRegularMesh(MeshSpec{7, 7, 8}), src, dst);
  EXPECT_GE(d4, 2);
  EXPECT_GE(d8, d4 - 1);
}

TEST(GraphAlgo, UnreachableIsMinusOne) {
  Topology topo;
  topo.nodeCount = 3;
  topo.edges = {{0, 1}};
  const auto dist = bfsDistances(topo, 0);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(graphDiameter(topo), -1);
  EXPECT_FALSE(topo.isConnected());
}

}  // namespace
}  // namespace rcsim
