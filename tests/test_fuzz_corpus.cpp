// Table-driven replay of every banked fuzz reproducer. Each
// tests/fuzz_corpus/*.scenario file records what its run must produce
// (`# expect:` — usually clean, because the bug it once triggered was
// fixed); replaying them here keeps fixed bugs fixed and known-hard
// scenarios exercised on every CI run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/harness.hpp"

namespace rcsim::fuzz {
namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> files;
  const std::filesystem::path dir{RCSIM_FUZZ_CORPUS_DIR};
  if (std::filesystem::exists(dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".scenario") files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

class FuzzCorpus : public ::testing::TestWithParam<std::string> {};

TEST_P(FuzzCorpus, ReplayMatchesBankedExpectation) {
  const ScenarioDoc doc = loadScenarioFile(GetParam());
  const RunOutcome outcome = doc.expect == RunStatus::Nondeterministic
                                 ? checkDeterminism(doc.config, 120.0)
                                 : runScenarioOnce(doc.config, 120.0);
  EXPECT_EQ(outcome.status, doc.expect)
      << "replay status drifted; detail:\n"
      << outcome.detail << "\nnote: " << doc.note;
  if (!doc.expectDetail.empty()) {
    EXPECT_NE(outcome.detail.find(doc.expectDetail), std::string::npos)
        << "outcome detail no longer mentions '" << doc.expectDetail << "':\n"
        << outcome.detail;
  }
}

std::string nameOf(const ::testing::TestParamInfo<std::string>& info) {
  std::string stem = std::filesystem::path{info.param}.stem().string();
  for (auto& c : stem) {
    if (!(std::isalnum(static_cast<unsigned char>(c)))) c = '_';
  }
  return stem;
}

INSTANTIATE_TEST_SUITE_P(Banked, FuzzCorpus, ::testing::ValuesIn(corpusFiles()), nameOf);

// The bank must never silently go empty (a bad glob or a renamed
// directory would otherwise skip every replay and stay green).
TEST(FuzzCorpusBank, HasAtLeastThreeReproducers) {
  EXPECT_GE(corpusFiles().size(), 3u) << "looked in: " << RCSIM_FUZZ_CORPUS_DIR;
}

}  // namespace
}  // namespace rcsim::fuzz
