// Tests for the future-work extensions: multiple flows, overlapping
// failures, link repair, random topologies, TCP traffic through the full
// scenario, and BGP route flap damping.
#include <gtest/gtest.h>

#include "core/runner.hpp"
#include "routing/bgp.hpp"
#include "test_util.hpp"
#include "topo/graph_algo.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;

ScenarioConfig quick(ProtocolKind kind, int degree, std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.protocol = kind;
  cfg.mesh.degree = degree;
  cfg.seed = seed;
  cfg.trafficStart = 90_sec;
  cfg.trafficStop = 160_sec;
  cfg.failAt = 100_sec;
  cfg.endAt = 220_sec;
  return cfg;
}

TEST(MultiFlow, AllFlowsCountedInTotals) {
  ScenarioConfig cfg = quick(ProtocolKind::Dbf, 6, 3);
  cfg.flows = 4;
  const RunResult r = runScenario(cfg);
  EXPECT_EQ(r.sent, 4u * 70u * 20u);  // 4 flows x 70 s x 20 pkt/s
  EXPECT_EQ(r.residual(), 0);
  EXPECT_GT(r.data.delivered, r.sent - 20);
}

TEST(MultiFlow, DistinctEndpointsPerFlow) {
  Scenario sc{quick(ProtocolKind::Dbf, 4, 9)};
  ASSERT_EQ(sc.flows().size(), 1u);
  ScenarioConfig cfg = quick(ProtocolKind::Dbf, 4, 9);
  cfg.flows = 3;
  Scenario sc3{cfg};
  ASSERT_EQ(sc3.flows().size(), 3u);
  for (const auto& f : sc3.flows()) {
    EXPECT_LT(f.sender, 7);
    EXPECT_GE(f.receiver, 42);
  }
}

TEST(MultiFailure, InjectsRequestedNumberOfCuts) {
  ScenarioConfig cfg = quick(ProtocolKind::Dbf, 6, 5);
  cfg.flows = 2;
  cfg.failureCount = 3;
  cfg.failureSpacing = 2_sec;
  Scenario sc{cfg};
  sc.run();
  EXPECT_EQ(sc.failedLinks().size(), 3u);
  for (const auto* l : sc.failedLinks()) EXPECT_FALSE(l->isUp());
  // Conservation still holds with overlapping convergence episodes.
  std::uint64_t dropped = sc.stats().data().totalDropped();
  std::uint64_t delivered = sc.stats().data().delivered;
  EXPECT_EQ(sc.packetsSent(), delivered + dropped);
}

TEST(MultiFailure, DegreeSixAbsorbsSeveralCutsUnderDbf) {
  ScenarioConfig cfg = quick(ProtocolKind::Dbf, 8, 7);
  cfg.failureCount = 3;
  cfg.failureSpacing = 3_sec;
  const RunResult r = runScenario(cfg);
  // A rich mesh keeps valid alternates through three successive cuts.
  EXPECT_LT(r.dataAfterFailure.dropNoRoute, 10u);
  EXPECT_TRUE(r.finalPathShortest);
}

TEST(Repair, LinkComesBackAndRoutingReconverges) {
  ScenarioConfig cfg = quick(ProtocolKind::Dbf, 4, 3);
  cfg.repairAfter = 20_sec;
  Scenario sc{cfg};
  sc.run();
  ASSERT_EQ(sc.failedLinks().size(), 1u);
  EXPECT_TRUE(sc.failedLinks()[0]->isUp());  // repaired
  // After repair the shortest path is the pre-failure one again.
  bool loop = false, blackhole = false;
  const auto path = sc.network().fibWalk(sc.sender(), sc.receiver(), &loop, &blackhole);
  EXPECT_FALSE(loop);
  EXPECT_FALSE(blackhole);
  EXPECT_EQ(static_cast<int>(path.size()) - 1,
            sc.network().shortestDistLive(sc.sender(), sc.receiver()));
}

TEST(RandomTopology, GeneratorIsConnectedAndSized) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const auto topo = makeRandomTopology(RandomGraphSpec{49, 4.0, seed});
    EXPECT_EQ(topo.nodeCount, 49);
    EXPECT_TRUE(topo.isConnected());
    EXPECT_EQ(topo.edges.size(), 98u);  // 49 * 4 / 2
  }
}

TEST(RandomTopology, DeterministicPerSeedDistinctAcrossSeeds) {
  const auto a = makeRandomTopology(RandomGraphSpec{30, 4.0, 7});
  const auto b = makeRandomTopology(RandomGraphSpec{30, 4.0, 7});
  const auto c = makeRandomTopology(RandomGraphSpec{30, 4.0, 8});
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_NE(a.edges, c.edges);
}

TEST(RandomTopology, RejectsInfeasibleSpecs) {
  EXPECT_THROW(makeRandomTopology(RandomGraphSpec{1, 4.0, 1}), std::invalid_argument);
  EXPECT_THROW(makeRandomTopology(RandomGraphSpec{5, 10.0, 1}), std::invalid_argument);
}

TEST(RandomTopology, ScenarioRunsEndToEnd) {
  ScenarioConfig cfg = quick(ProtocolKind::Dbf, 4, 11);
  cfg.topology = TopologyKind::Random;
  cfg.random.nodes = 30;
  cfg.random.avgDegree = 4.0;
  const RunResult r = runScenario(cfg);
  EXPECT_EQ(r.residual(), 0);
  EXPECT_GT(r.data.delivered, 0u);
  EXPECT_TRUE(r.finalPathShortest);
}

TEST(TcpScenario, RunsThroughFailureAndStaysConservative) {
  ScenarioConfig cfg = quick(ProtocolKind::Dbf, 5, 3);
  cfg.traffic = TrafficKind::Tcp;
  cfg.tcpWindow = 8;
  const RunResult r = runScenario(cfg);
  EXPECT_GT(r.tcpGoodputPackets, 1000u);
  // Goodput can never exceed unique packets offered.
  EXPECT_LE(r.tcpGoodputPackets, r.sent);
}

TEST(TcpScenario, BlackholeProtocolLosesMoreGoodput) {
  ScenarioConfig rip = quick(ProtocolKind::Rip, 4, 3);
  rip.traffic = TrafficKind::Tcp;
  ScenarioConfig dbf = rip;
  dbf.protocol = ProtocolKind::Dbf;
  std::uint64_t ripGoodput = 0;
  std::uint64_t dbfGoodput = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    rip.seed = dbf.seed = seed;
    ripGoodput += runScenario(rip).tcpGoodputPackets;
    dbfGoodput += runScenario(dbf).tcpGoodputPackets;
  }
  EXPECT_GT(dbfGoodput, ripGoodput);
}

TEST(FlapDamping, SuppressesAFlappingRouteAndReleasesIt) {
  // Line 0-1-2; flap the 1-2 link so node 0 sees repeated announce/withdraw
  // cycles for dst 2 from neighbor 1.
  ProtocolConfig cfg;
  cfg.bgp.mraiMinSec = 0.5;
  cfg.bgp.mraiMaxSec = 0.5;
  cfg.bgp.flapDampingEnabled = true;
  cfg.bgp.rfdHalfLifeSec = 5.0;
  testutil::TestNet tn{testutil::lineTopology(3), ProtocolKind::Bgp, cfg};
  tn.warmUp(30_sec);
  auto& bgp0 = tn.protocolAs<Bgp>(0);
  ASSERT_EQ(tn.nextHop(0, 2), 1);

  Link* l = tn.net().findLink(1, 2);
  Time t = 30_sec;
  for (int i = 0; i < 4; ++i) {
    tn.scheduler().scheduleAt(t, [l] { l->fail(); });
    tn.scheduler().scheduleAt(t + 2_sec, [l] { l->recover(); });
    t += 4_sec;
  }
  tn.runUntil(t + 1_sec);
  EXPECT_GT(bgp0.suppressions(), 0u);
  EXPECT_TRUE(bgp0.isSuppressed(1, 2));
  EXPECT_EQ(tn.nextHop(0, 2), kInvalidNode);  // suppressed => unusable

  // The penalty decays; the route must come back on its own.
  tn.runUntil(t + 60_sec);
  EXPECT_FALSE(bgp0.isSuppressed(1, 2));
  EXPECT_EQ(tn.nextHop(0, 2), 1);
}

TEST(FlapDamping, SingleFailureWithDampingStillConverges) {
  ScenarioConfig cfg = quick(ProtocolKind::Bgp3, 5, 3);
  cfg.protoCfg.bgp.flapDampingEnabled = true;
  const RunResult r = runScenario(cfg);
  EXPECT_TRUE(r.finalPathShortest);
  EXPECT_EQ(r.residual(), 0);
}

TEST(FlapDamping, OffByDefault) {
  BgpConfig cfg;
  EXPECT_FALSE(cfg.flapDampingEnabled);
}

}  // namespace
}  // namespace rcsim
