#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace rcsim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedWorks) {
  Rng r{0};
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 100; ++i) vals.insert(r.next());
  EXPECT_GT(vals.size(), 95u);  // not stuck on a degenerate state
}

TEST(Rng, Uniform01InRange) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform(22.5, 30.0);
    EXPECT_GE(v, 22.5);
    EXPECT_LT(v, 30.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng r{123};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBoundsInclusive) {
  Rng r{9};
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniformInt(0, 6);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 6);
    sawLo = sawLo || v == 0;
    sawHi = sawHi || v == 6;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformIntSingleton) {
  Rng r{9};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniformInt(5, 5), 5);
}

TEST(Rng, UniformIntUnbiasedish) {
  Rng r{11};
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(r.uniformInt(0, 6))];
  for (const int c : counts) EXPECT_NEAR(c, n / 7, n / 7 * 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng r{13};
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ForkedStreamsIndependentAndDeterministic) {
  Rng parent1{77};
  Rng parent2{77};
  Rng childA = parent1.fork();
  Rng childB = parent2.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(childA.next(), childB.next());
  // Fork order matters and yields distinct streams.
  Rng parent3{77};
  (void)parent3.next();
  Rng childC = parent3.fork();
  EXPECT_NE(childA.next(), childC.next());
}

}  // namespace
}  // namespace rcsim
