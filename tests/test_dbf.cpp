#include "routing/dbf.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"
#include "topo/graph_algo.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;
using testutil::TestNet;

TEST(Dbf, ConvergesOnLine) {
  TestNet tn{testutil::lineTopology(5), ProtocolKind::Dbf};
  tn.warmUp(40_sec);
  EXPECT_EQ(tn.nextHop(0, 4), 1);
  EXPECT_EQ(tn.nextHop(4, 0), 3);
  EXPECT_EQ(tn.protocolAs<Dbf>(0).metricFor(4), 4);
}

TEST(Dbf, CachesPerNeighborDistances) {
  // Node 0 in the two-path graph hears about 4 from both neighbors: via 1
  // at distance 2 and via 2 at distance... 2's own distance is 2.
  TestNet tn{testutil::twoPathTopology(), ProtocolKind::Dbf};
  tn.warmUp(40_sec);
  auto& dbf0 = tn.protocolAs<Dbf>(0);
  EXPECT_EQ(dbf0.metricFor(4), 2);
  EXPECT_EQ(dbf0.nextHopFor(4), 1);
  EXPECT_EQ(dbf0.cachedMetric(1, 4), 1);
  EXPECT_EQ(dbf0.cachedMetric(2, 4), 2);
}

TEST(Dbf, InstantSwitchoverOnFailure) {
  // The headline DBF property (paper §4.1): when the next hop dies, the
  // cached alternate takes over the moment the failure is *detected* —
  // strictly before any update message could arrive.
  TestNet tn{testutil::twoPathTopology(), ProtocolKind::Dbf};
  tn.warmUp(40_sec);
  ASSERT_EQ(tn.nextHop(0, 4), 1);
  tn.net().findLink(0, 1)->fail();
  // Detection delay is 50 ms; one microsecond later the FIB must already
  // point at the alternate.
  tn.runUntil(40_sec + 50_ms + Time::microseconds(1));
  EXPECT_EQ(tn.nextHop(0, 4), 2);
  EXPECT_EQ(tn.protocolAs<Dbf>(0).metricFor(4), 3);
}

TEST(Dbf, PoisonedCacheEntryIsNotAnAlternate) {
  // Line 0-1-2: node 1's only route to 2 is direct; node 0's advertisement
  // to 1 is poisoned (0 routes via 1), so after 1-2 fails node 1 must not
  // switch to 0.
  TestNet tn{testutil::lineTopology(3), ProtocolKind::Dbf};
  tn.warmUp(40_sec);
  auto& dbf1 = tn.protocolAs<Dbf>(1);
  EXPECT_EQ(dbf1.cachedMetric(0, 2), 16);  // poison reverse in the cache
  tn.net().findLink(1, 2)->fail();
  tn.runUntil(40_sec + 1_sec);
  EXPECT_EQ(tn.nextHop(1, 2), kInvalidNode);
}

TEST(Dbf, CountsToNextBestPathNotInfinity) {
  // Paper §6: "in a network with redundant connectivity, after a path
  // failure a distance vector routing protocol simply counts to the
  // next-best path instead of counting-into-infinity".
  TestNet tn{testutil::ringTopology(8), ProtocolKind::Dbf};
  tn.warmUp(40_sec);
  ASSERT_EQ(tn.protocolAs<Dbf>(0).metricFor(7), 1);
  tn.net().findLink(0, 7)->fail();
  tn.runUntil(140_sec);
  EXPECT_EQ(tn.protocolAs<Dbf>(0).metricFor(7), 7);
  EXPECT_EQ(tn.nextHop(0, 7), 1);
}

TEST(Dbf, SwitchoverMayPickStaleInvalidPathThenCorrects) {
  // Ring of 4: 0's alternates for dst 2 are 1 and 3, both distance 2.
  // Fail 0-1 *and* 1-2 simultaneously: 0's cache via 3 stays valid; the
  // stale entries via 1 vanish with the neighbor. End state must be the
  // valid path via 3.
  TestNet tn{testutil::ringTopology(4), ProtocolKind::Dbf};
  tn.warmUp(40_sec);
  tn.net().findLink(0, 1)->fail();
  tn.net().findLink(1, 2)->fail();
  tn.runUntil(140_sec);
  EXPECT_EQ(tn.nextHop(0, 2), 3);
  EXPECT_EQ(tn.protocolAs<Dbf>(0).metricFor(2), 2);
  EXPECT_EQ(tn.nextHop(1, 2), kInvalidNode);  // 1 is fully cut off
  EXPECT_EQ(tn.nextHop(1, 0), kInvalidNode);
}

TEST(Dbf, DeterministicTieBreakPrefersIncumbentThenLowestId) {
  // Diamond: 0-1-3, 0-2-3. Both 1 and 2 offer distance-2 routes to 3.
  Topology diamond;
  diamond.nodeCount = 4;
  diamond.edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  TestNet tn{diamond, ProtocolKind::Dbf};
  tn.warmUp(40_sec);
  const NodeId first = tn.nextHop(0, 3);
  EXPECT_TRUE(first == 1 || first == 2);
  // Stability: more periodic cycles must not flap the choice.
  tn.runUntil(140_sec);
  EXPECT_EQ(tn.nextHop(0, 3), first);
}

TEST(Dbf, RecoversWhenLinkComesBack) {
  TestNet tn{testutil::lineTopology(3), ProtocolKind::Dbf};
  tn.warmUp(40_sec);
  tn.net().findLink(1, 2)->fail();
  tn.runUntil(50_sec);
  ASSERT_EQ(tn.nextHop(0, 2), kInvalidNode);
  tn.net().findLink(1, 2)->recover();
  tn.runUntil(100_sec);
  EXPECT_EQ(tn.nextHop(0, 2), 1);
  EXPECT_EQ(tn.nextHop(1, 2), 2);
}

TEST(Dbf, MeshConvergenceMatchesBfs) {
  const auto topo = makeRegularMesh(MeshSpec{5, 5, 6});
  TestNet tn{topo, ProtocolKind::Dbf};
  tn.warmUp(60_sec);
  const auto dist = bfsDistances(topo, gridId(0, 0, 5));
  auto& dbf = tn.protocolAs<Dbf>(gridId(0, 0, 5));
  for (NodeId d = 0; d < topo.nodeCount; ++d) {
    EXPECT_EQ(dbf.metricFor(d), dist[static_cast<std::size_t>(d)]) << "dst " << d;
  }
}

}  // namespace
}  // namespace rcsim
