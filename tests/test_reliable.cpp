#include "net/reliable.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;

struct Msg final : ControlPayload {
  explicit Msg(int v) : value{v} {}
  int value;
  std::uint32_t sizeBytes() const override { return 16; }
  std::string describe() const override { return "msg:" + std::to_string(value); }
};

/// Two adjacent nodes with a ReliableSession on each side, dispatched
/// manually (the way Bgp wires them).
struct ReliableFixture : ::testing::Test {
  ReliableFixture() : net{sched, Rng{5}} {
    a = net.addNode();
    b = net.addNode();
    cfg.queueCapacity = 4;  // small queue so overflow-loss is easy to force
    link = &net.addLink(a, b, cfg);
    net.finalize();

    ReliableSession::Config scfg;
    scfg.rto = 200_ms;
    sessA = std::make_unique<ReliableSession>(
        net.node(a), b, [this](std::shared_ptr<const ControlPayload> m) { recvAtA.push_back(value(m)); },
        scfg);
    sessB = std::make_unique<ReliableSession>(
        net.node(b), a, [this](std::shared_ptr<const ControlPayload> m) { recvAtB.push_back(value(m)); },
        scfg);
    // Control dispatch: Node has no protocol here, so hand segments over
    // via a tiny adapter protocol.
    struct Adapter final : RoutingProtocol {
      ReliableSession* sess;
      Adapter(Node& n, ReliableSession* s) : RoutingProtocol{n}, sess{s} {}
      void start() override {}
      void onLinkDown(NodeId) override {}
      void onLinkUp(NodeId) override {}
      void onMessage(NodeId, std::shared_ptr<const ControlPayload> msg) override {
        if (auto seg = std::dynamic_pointer_cast<const TransportSegment>(msg)) sess->onSegment(seg);
      }
      std::string name() const override { return "adapter"; }
    };
    net.node(a).setProtocol(std::make_unique<Adapter>(net.node(a), sessA.get()));
    net.node(b).setProtocol(std::make_unique<Adapter>(net.node(b), sessB.get()));
  }

  static int value(const std::shared_ptr<const ControlPayload>& m) {
    return dynamic_cast<const Msg&>(*m).value;
  }

  /// Re-create both sessions with a custom transport config (backoff edge
  /// tests need their own RTO ladder). The adapter protocols keep raw
  /// pointers, so they are re-installed too.
  void rebuild(const ReliableSession::Config& scfg) {
    sessA = std::make_unique<ReliableSession>(
        net.node(a), b, [this](std::shared_ptr<const ControlPayload> m) { recvAtA.push_back(value(m)); },
        scfg);
    sessB = std::make_unique<ReliableSession>(
        net.node(b), a, [this](std::shared_ptr<const ControlPayload> m) { recvAtB.push_back(value(m)); },
        scfg);
    struct Adapter final : RoutingProtocol {
      ReliableSession* sess;
      Adapter(Node& n, ReliableSession* s) : RoutingProtocol{n}, sess{s} {}
      void start() override {}
      void onLinkDown(NodeId) override {}
      void onLinkUp(NodeId) override {}
      void onMessage(NodeId, std::shared_ptr<const ControlPayload> msg) override {
        if (auto seg = std::dynamic_pointer_cast<const TransportSegment>(msg)) sess->onSegment(seg);
      }
      std::string name() const override { return "adapter"; }
    };
    net.node(a).setProtocol(std::make_unique<Adapter>(net.node(a), sessA.get()));
    net.node(b).setProtocol(std::make_unique<Adapter>(net.node(b), sessB.get()));
  }

  Scheduler sched;
  Network net;
  LinkConfig cfg;
  NodeId a{}, b{};
  Link* link = nullptr;
  std::unique_ptr<ReliableSession> sessA, sessB;
  std::vector<int> recvAtA, recvAtB;
};

TEST_F(ReliableFixture, DeliversInOrder) {
  for (int i = 0; i < 10; ++i) sessA->send(std::make_shared<Msg>(i));
  sched.run();
  ASSERT_EQ(recvAtB.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(recvAtB[static_cast<std::size_t>(i)], i);
}

TEST_F(ReliableFixture, BidirectionalStreamsDoNotInterfere) {
  for (int i = 0; i < 5; ++i) {
    sessA->send(std::make_shared<Msg>(i));
    sessB->send(std::make_shared<Msg>(100 + i));
  }
  sched.run();
  EXPECT_EQ(recvAtB, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(recvAtA, (std::vector<int>{100, 101, 102, 103, 104}));
}

TEST_F(ReliableFixture, RecoversFromQueueOverflowLoss) {
  // Burst far beyond the 4-packet queue: some segments drop, the RTO
  // recovers them, and delivery stays exactly-once in-order.
  for (int i = 0; i < 30; ++i) sessA->send(std::make_shared<Msg>(i));
  sched.run();
  ASSERT_EQ(recvAtB.size(), 30u);
  for (int i = 0; i < 30; ++i) EXPECT_EQ(recvAtB[static_cast<std::size_t>(i)], i);
  EXPECT_GT(sessA->retransmissions(), 0u);
}

TEST_F(ReliableFixture, BacklogBeyondWindowDrains) {
  for (int i = 0; i < 100; ++i) sessA->send(std::make_shared<Msg>(i));
  EXPECT_GT(sessA->backlogCount(), 0u);  // window is 32
  sched.run();
  EXPECT_EQ(recvAtB.size(), 100u);
  EXPECT_EQ(sessA->backlogCount(), 0u);
  EXPECT_EQ(sessA->unackedCount(), 0u);
}

TEST_F(ReliableFixture, RetransmitsAcrossLinkOutage) {
  sessA->send(std::make_shared<Msg>(7));
  sched.scheduleAt(Time::microseconds(10), [this] { link->fail(); });
  sched.scheduleAt(1_sec, [this] { link->recover(); });
  sched.run(10_sec);
  ASSERT_EQ(recvAtB.size(), 1u);
  EXPECT_EQ(recvAtB[0], 7);
  EXPECT_GT(sessA->retransmissions(), 0u);
}

TEST_F(ReliableFixture, DuplicateSegmentsDeliveredOnce) {
  // Force duplicates: RTO fires even though the first copy arrived, because
  // we delay the ack path with an outage in the reverse direction only.
  // Simpler: send, let it deliver, then replay the same segment manually.
  auto seg = std::make_shared<TransportSegment>();
  seg->seq = 0;
  seg->isAck = false;
  seg->inner = std::make_shared<Msg>(1);
  sessB->onSegment(seg);
  sessB->onSegment(seg);
  sched.run();
  EXPECT_EQ(recvAtB, (std::vector<int>{1}));
}

TEST_F(ReliableFixture, OutOfOrderSegmentsBufferedUntilGapFills) {
  auto mk = [](std::uint32_t seq, int v) {
    auto seg = std::make_shared<TransportSegment>();
    seg->seq = seq;
    seg->inner = std::make_shared<Msg>(v);
    return seg;
  };
  sessB->onSegment(mk(2, 2));
  sessB->onSegment(mk(1, 1));
  EXPECT_TRUE(recvAtB.empty());
  sessB->onSegment(mk(0, 0));
  EXPECT_EQ(recvAtB, (std::vector<int>{0, 1, 2}));
}

TEST_F(ReliableFixture, ResetAcrossOutageRestartsCleanly) {
  // Reset pairs with a link outage (as BGP uses it): the cut removes every
  // in-flight segment, so both sides can restart the sequence space.
  for (int i = 0; i < 50; ++i) sessA->send(std::make_shared<Msg>(i));
  sched.run(10_ms);
  link->fail();
  sessA->reset();
  sessB->reset();
  link->recover();
  recvAtB.clear();
  sessA->send(std::make_shared<Msg>(999));
  sched.run(sched.now() + 2_sec);
  EXPECT_EQ(recvAtB, (std::vector<int>{999}));  // sequence space restarted
  EXPECT_EQ(sessA->unackedCount(), 0u);
}

TEST_F(ReliableFixture, BackoffClampsAtRtoMaxAndRewindsOnProgress) {
  ReliableSession::Config scfg;
  scfg.rto = 100_ms;
  scfg.backoffFactor = 2.0;
  scfg.rtoMax = 400_ms;
  scfg.maxRetries = 50;  // never give up within this test
  rebuild(scfg);

  sessA->send(std::make_shared<Msg>(1));
  sched.scheduleAt(Time::microseconds(10), [this] { link->fail(); });
  sched.run(5_sec);

  // The ladder is 100 -> 200 -> 400 -> 400 -> ... : saturated at the cap,
  // never past it, still retrying.
  EXPECT_EQ(sessA->currentRto(), 400_ms);
  // 100+200+400*k <= 5000 ms allows k = 11 clamped retries; with scheduling
  // slack, at least 8 fired and nothing beyond the exact ladder count.
  EXPECT_GE(sessA->retransmissions(), 8u);
  EXPECT_LE(sessA->retransmissions(), 13u);
  EXPECT_EQ(sessA->sessionResets(), 0u);

  // Repair the link: the pending retransmission gets through, ack progress
  // rewinds the backoff to the base RTO.
  link->recover();
  sched.run(sched.now() + 2_sec);
  EXPECT_EQ(recvAtB, (std::vector<int>{1}));
  EXPECT_EQ(sessA->currentRto(), 100_ms);
  EXPECT_EQ(sessA->unackedCount(), 0u);
}

TEST_F(ReliableFixture, GivesUpAfterMaxRetriesUnderTotalCtrlLoss) {
  // A 100% control-loss window (the ctrl-loss fault, applied directly):
  // the link is up, so nothing tears the session down from outside — only
  // the transport's own 8-retry give-up path can end the stall.
  ReliableSession::Config scfg;
  scfg.rto = 100_ms;
  scfg.backoffFactor = 2.0;
  scfg.rtoMax = 400_ms;
  scfg.maxRetries = 8;
  rebuild(scfg);

  bool resetFired = false;
  sessA->setOnReset([&resetFired] { resetFired = true; });
  link->setCtrlLossRate(1.0);
  sessA->send(std::make_shared<Msg>(42));
  sched.run(10_sec);

  // 9th consecutive RTO (past maxRetries=8) drops the connection: counters
  // reflect a transport failure, state is gone, the owner was told.
  EXPECT_EQ(sessA->sessionResets(), 1u);
  EXPECT_EQ(sessA->retransmissions(), 8u);
  EXPECT_EQ(sessA->unackedCount(), 0u);
  EXPECT_TRUE(resetFired);
  EXPECT_TRUE(recvAtB.empty());

  // The loss window ends; a fresh send restarts the sequence space and
  // delivers (the peer never saw the lost RST, but seq 0 is what it
  // expects anyway).
  link->setCtrlLossRate(0.0);
  sessA->send(std::make_shared<Msg>(43));
  sched.run(sched.now() + 2_sec);
  EXPECT_EQ(recvAtB, (std::vector<int>{43}));
  EXPECT_EQ(sessA->currentRto(), 100_ms);
}

}  // namespace
}  // namespace rcsim
