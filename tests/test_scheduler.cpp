#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rcsim {
namespace {

using namespace rcsim::literals;

TEST(Scheduler, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), Time::zero());
  EXPECT_EQ(s.pendingEvents(), 0u);
}

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.scheduleAt(3_sec, [&] { order.push_back(3); });
  s.scheduleAt(1_sec, [&] { order.push_back(1); });
  s.scheduleAt(2_sec, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3_sec);
}

TEST(Scheduler, FifoAmongEqualTimestamps) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.scheduleAt(1_sec, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, NowAdvancesDuringCallbacks) {
  Scheduler s;
  Time seen;
  s.scheduleAt(5_sec, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 5_sec);
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler s;
  Time seen;
  s.scheduleAt(2_sec, [&] { s.scheduleAfter(3_sec, [&] { seen = s.now(); }); });
  s.run();
  EXPECT_EQ(seen, 5_sec);
}

TEST(Scheduler, ZeroDelayFiresSameTimestampAfterCurrent) {
  Scheduler s;
  std::vector<int> order;
  s.scheduleAt(1_sec, [&] {
    order.push_back(1);
    s.scheduleAfter(Time::zero(), [&] { order.push_back(3); });
  });
  s.scheduleAt(1_sec, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 1_sec);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.scheduleAt(1_sec, [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelIsIdempotentAndSafeOnStaleIds) {
  Scheduler s;
  int fired = 0;
  const EventId id = s.scheduleAt(1_sec, [&] { ++fired; });
  s.run();
  s.cancel(id);     // already fired: no-op
  s.cancel(id);     // twice: still fine
  s.cancel(EventId{});  // invalid id: no-op
  EXPECT_EQ(fired, 1);
}

TEST(Scheduler, RunUntilHorizonStopsAndAdvancesClock) {
  Scheduler s;
  int fired = 0;
  s.scheduleAt(1_sec, [&] { ++fired; });
  s.scheduleAt(10_sec, [&] { ++fired; });
  s.run(5_sec);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 5_sec);
  s.run(20_sec);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 20_sec);
}

TEST(Scheduler, EventExactlyAtHorizonFires) {
  Scheduler s;
  bool fired = false;
  s.scheduleAt(5_sec, [&] { fired = true; });
  s.run(5_sec);
  EXPECT_TRUE(fired);
}

TEST(Scheduler, StopHaltsProcessing) {
  Scheduler s;
  int fired = 0;
  s.scheduleAt(1_sec, [&] {
    ++fired;
    s.stop();
  });
  s.scheduleAt(2_sec, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  Time seen = Time::infinity();
  s.scheduleAt(4_sec, [&] {
    s.scheduleAt(1_sec, [&] { seen = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(seen, 4_sec);
}

TEST(Scheduler, ExecutedEventsCounts) {
  Scheduler s;
  for (int i = 0; i < 5; ++i) s.scheduleAt(Time::seconds(i), [] {});
  s.run();
  EXPECT_EQ(s.executedEvents(), 5u);
}

TEST(Scheduler, CancelChurnKeepsBookkeepingBounded) {
  // Regression: the pre-pool scheduler accumulated one tombstone per
  // cancel() forever. A million schedule/fire/cancel cycles must leave no
  // pending state and a pool bounded by peak concurrency (two events here),
  // not by total churn.
  Scheduler s;
  constexpr int kCycles = 1'000'000;
  std::uint64_t fired = 0;
  for (int i = 0; i < kCycles; ++i) {
    const EventId keep = s.scheduleAfter(Time::microseconds(1), [&fired] { ++fired; });
    const EventId victim = s.scheduleAfter(Time::microseconds(2), [] { FAIL(); });
    s.cancel(victim);
    s.cancel(victim);  // double-cancel: must stay a no-op
    s.run();
    s.cancel(keep);  // stale handle of a fired event: must stay a no-op
    EXPECT_EQ(s.pendingEvents(), 0u);
  }
  EXPECT_EQ(fired, static_cast<std::uint64_t>(kCycles));
  EXPECT_EQ(s.executedEvents(), static_cast<std::uint64_t>(kCycles));
  // Peak concurrency was 2 events; the pool allocates whole chunks, so the
  // capacity must be a single chunk — far below the 2M handles churned.
  EXPECT_LE(s.poolCapacity(), 1024u);
}

TEST(Scheduler, CancelDuringCallbackAndSelfCancel) {
  Scheduler s;
  int fired = 0;
  EventId later{};
  const EventId self = s.scheduleAt(1_sec, [&] {
    ++fired;
    s.cancel(self);   // self-cancel while executing: no-op, no corruption
    s.cancel(later);  // cancel a pending sibling from inside a callback
  });
  later = s.scheduleAt(2_sec, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pendingEvents(), 0u);
}

TEST(Scheduler, ManyEventsStressOrdering) {
  Scheduler s;
  Time last = Time::zero();
  bool monotone = true;
  for (int i = 0; i < 20000; ++i) {
    s.scheduleAt(Time::microseconds((i * 7919) % 10007), [&] {
      if (s.now() < last) monotone = false;
      last = s.now();
    });
  }
  s.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(s.executedEvents(), 20000u);
}

}  // namespace
}  // namespace rcsim
