#include "stats/collector.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "stats/path_tracer.hpp"
#include "stats/route_log.hpp"
#include "stats/timeseries.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;

TEST(TimeSeries, BucketsBySecond) {
  TimeSeries ts;
  ts.recordDelivery(Time::milliseconds(500), 0.01, false, 3);
  ts.recordDelivery(Time::milliseconds(900), 0.03, false, 3);
  ts.recordDelivery(Time::milliseconds(1100), 0.05, true, 9);
  EXPECT_EQ(ts.throughputAt(0), 2.0);
  EXPECT_EQ(ts.throughputAt(1), 1.0);
  EXPECT_EQ(ts.throughputAt(2), 0.0);
  EXPECT_DOUBLE_EQ(ts.meanDelayAt(0), 0.02);
  EXPECT_DOUBLE_EQ(ts.meanDelayAt(1), 0.05);
  EXPECT_EQ(ts.bucket(1).loopedDelivered, 1u);
  EXPECT_EQ(ts.bucket(0).hopSum, 6u);
}

TEST(TimeSeries, OutOfRangeBucketsAreEmpty) {
  TimeSeries ts;
  EXPECT_EQ(ts.throughputAt(-1), 0.0);
  EXPECT_EQ(ts.throughputAt(1000), 0.0);
  EXPECT_EQ(ts.meanDelayAt(5), 0.0);
}

TEST(RouteChangeLog, ConvergenceSecondsFromWatermark) {
  RouteChangeLog log;
  log.resize(4);
  log.setWatermark(10_sec);
  log.record(5_sec, 0, 1, kInvalidNode, 1);   // pre-failure
  log.record(12_sec, 0, 1, 1, 2);             // post-failure
  log.record(Time::seconds(13.5), 1, 1, 0, 2);
  EXPECT_DOUBLE_EQ(log.convergenceSeconds(), 3.5);
  EXPECT_EQ(log.changesAfterWatermark(), 2u);
  EXPECT_EQ(log.totalChanges(), 3u);
  EXPECT_EQ(log.lastChangeFor(1), Time::seconds(13.5));
}

TEST(RouteChangeLog, NoChangeAfterWatermarkIsZero) {
  RouteChangeLog log;
  log.resize(2);
  log.setWatermark(10_sec);
  log.record(5_sec, 0, 1, kInvalidNode, 1);
  EXPECT_DOUBLE_EQ(log.convergenceSeconds(), 0.0);
}

TEST(RouteChangeLog, CountsRouteLosses) {
  RouteChangeLog log;
  log.resize(2);
  log.setWatermark(Time::zero());
  log.record(1_sec, 0, 1, 1, kInvalidNode);
  log.record(2_sec, 0, 1, kInvalidNode, 1);
  EXPECT_EQ(log.routeLossesAfterWatermark(), 1u);
}

struct TracerFixture : ::testing::Test {
  TracerFixture() : net{sched, Rng{1}} {
    for (int i = 0; i < 4; ++i) net.addNode();  // 0-1-2-3 line
    net.addLink(0, 1, cfg);
    net.addLink(1, 2, cfg);
    net.addLink(2, 3, cfg);
    net.finalize();
  }
  Scheduler sched;
  LinkConfig cfg;
  Network net;
};

TEST_F(TracerFixture, RecordsDistinctPathsOnly) {
  PathTracer tracer{net, 0, 3};
  net.node(0).setRoute(3, 1);
  net.node(1).setRoute(3, 2);
  net.node(2).setRoute(3, 3);
  tracer.snapshot(1_sec);
  tracer.snapshot(2_sec);  // unchanged: no new event
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_EQ(tracer.events()[0].path, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_FALSE(tracer.events()[0].loop);

  net.node(1).setRoute(3, kInvalidNode);
  tracer.snapshot(3_sec);
  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_TRUE(tracer.events()[1].blackhole);
  EXPECT_DOUBLE_EQ(tracer.convergenceSecondsAfter(Time::zero()), 3.0);
  EXPECT_EQ(tracer.transientPathsAfter(Time::seconds(2.5)), 1);
  EXPECT_TRUE(tracer.sawBlackholeAfter(Time::zero()));
  EXPECT_FALSE(tracer.sawLoopAfter(Time::zero()));
}

TEST_F(TracerFixture, DetectsLoops) {
  PathTracer tracer{net, 0, 3};
  net.node(0).setRoute(3, 1);
  net.node(1).setRoute(3, 0);
  tracer.snapshot(1_sec);
  ASSERT_EQ(tracer.events().size(), 1u);
  EXPECT_TRUE(tracer.events()[0].loop);
  EXPECT_TRUE(tracer.sawLoopAfter(Time::zero()));
}

TEST_F(TracerFixture, CollectorWiresEverythingTogether) {
  StatsCollector stats{net, StatsCollector::Config{0, 3, true}};
  stats.install();
  stats.setFailureWatermark(10_sec);

  net.node(0).setRoute(3, 1);
  net.node(1).setRoute(3, 2);
  net.node(2).setRoute(3, 3);

  // A delivered data packet.
  Packet p;
  p.id = 1;
  p.src = 0;
  p.dst = 3;
  p.ttl = 64;
  p.sizeBytes = 1000;
  p.kind = PacketKind::Data;
  p.sendTime = Time::zero();
  p.trace = std::make_shared<std::vector<NodeId>>();
  net.node(0).originate(std::move(p));
  sched.run();

  EXPECT_EQ(stats.data().delivered, 1u);
  EXPECT_EQ(stats.data().forwarded, 3u);
  EXPECT_EQ(stats.loopEscapedDeliveries(), 0u);
  EXPECT_EQ(stats.routeLog().totalChanges(), 3u);
  ASSERT_NE(stats.tracer(), nullptr);
  EXPECT_FALSE(stats.tracer()->events().empty());
  // Delivered in bucket 0 with ~hops*(tx+prop) delay.
  EXPECT_EQ(stats.series().throughputAt(0), 1.0);
  EXPECT_GT(stats.series().meanDelayAt(0), 0.0);
}

TEST_F(TracerFixture, CollectorSeparatesDataFromControl) {
  StatsCollector stats{net, StatsCollector::Config{0, 3, false}};
  stats.install();
  struct Dummy final : ControlPayload {
    std::uint32_t sizeBytes() const override { return 8; }
    std::string describe() const override { return "dummy"; }
  };
  // Control toward a down link: counted as a control drop, not data.
  net.findLink(0, 1)->fail();
  net.node(0).sendControl(1, std::make_shared<Dummy>());
  sched.run();
  EXPECT_EQ(stats.control().dropLinkDown, 1u);
  EXPECT_EQ(stats.data().totalDropped(), 0u);
}

TEST_F(TracerFixture, WatermarkSplitsDropCounters) {
  StatsCollector stats{net, StatsCollector::Config{0, 3, false}};
  stats.install();
  stats.setFailureWatermark(5_sec);
  net.node(0).setRoute(3, 1);
  net.node(1).setRoute(3, 2);
  net.node(2).setRoute(3, 3);

  auto emit = [&](Time at) {
    sched.scheduleAt(at, [&] {
      Packet p;
      p.id = net.nextPacketId();
      p.src = 0;
      p.dst = 3;
      p.ttl = 1;  // dies at node 1
      p.sizeBytes = 100;
      p.kind = PacketKind::Data;
      p.sendTime = sched.now();
      net.node(0).originate(std::move(p));
    });
  };
  emit(1_sec);
  emit(6_sec);
  sched.run();
  EXPECT_EQ(stats.data().dropTtl, 2u);
  EXPECT_EQ(stats.dataAfterWatermark().dropTtl, 1u);
}

}  // namespace
}  // namespace rcsim
