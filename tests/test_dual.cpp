#include "routing/dual.hpp"

#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "test_util.hpp"
#include "topo/graph_algo.hpp"

namespace rcsim {
namespace {

using namespace rcsim::literals;
using testutil::TestNet;

TEST(Dual, ConvergesOnLineFast) {
  TestNet tn{testutil::lineTopology(5), ProtocolKind::Dual};
  // No periodic timers: convergence is pure message latency.
  tn.warmUp(1_sec);
  EXPECT_EQ(tn.nextHop(0, 4), 1);
  EXPECT_EQ(tn.nextHop(4, 0), 3);
  EXPECT_EQ(tn.protocolAs<Dual>(0).distance(4), 4);
}

TEST(Dual, MeshConvergesToShortestPaths) {
  const auto topo = makeRegularMesh(MeshSpec{5, 5, 6});
  TestNet tn{topo, ProtocolKind::Dual};
  tn.warmUp(2_sec);
  const auto dist = bfsDistances(topo, gridId(0, 0, 5));
  auto& dual = tn.protocolAs<Dual>(gridId(0, 0, 5));
  for (NodeId d = 0; d < topo.nodeCount; ++d) {
    EXPECT_EQ(dual.distance(d), dist[static_cast<std::size_t>(d)]) << "dst " << d;
  }
}

TEST(Dual, FeasibleSuccessorSwitchIsLocalAndInstant) {
  // Two-path graph: 0's alternate via 2 has reported distance 2 < FD... the
  // FC fails (2 >= 2), so strictly DUAL diffuses here. Build a graph where
  // the alternate IS feasible: diamond with a shortcut.
  //   0-1-3 (primary, dist 2), 0-2, 2-3, and 2's own distance to 3 is 1,
  //   which is < FD(0)=2? No: FD=2, reported=1 < 2 — feasible.
  Topology diamond;
  diamond.nodeCount = 4;
  diamond.edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  TestNet tn{diamond, ProtocolKind::Dual};
  tn.warmUp(2_sec);
  auto& dual0 = tn.protocolAs<Dual>(0);
  const NodeId primary = tn.nextHop(0, 3);
  ASSERT_TRUE(primary == 1 || primary == 2);
  tn.net().findLink(0, primary)->fail();
  tn.runUntil(2_sec + 50_ms + Time::microseconds(1));
  // The alternate reports distance 1 < FD 2: the switch for dst 3 is local
  // (never Active) and effective the instant detection fires. (Destination
  // `primary` itself legitimately diffuses — its alternate is infeasible.)
  EXPECT_EQ(tn.nextHop(0, 3), primary == 1 ? 2 : 1);
  EXPECT_FALSE(dual0.isActive(3));
  EXPECT_EQ(dual0.distance(3), 2);
}

TEST(Dual, InfeasibleAlternateTriggersDiffusion) {
  // Ring of 6: after 0-5 fails, 0's only alternate to 5 runs the long way
  // (distance 5 > FD 1): DUAL must go Active and withdraw the route first.
  TestNet tn{testutil::ringTopology(6), ProtocolKind::Dual};
  tn.warmUp(2_sec);
  auto& dual0 = tn.protocolAs<Dual>(0);
  ASSERT_EQ(dual0.distance(5), 1);
  tn.net().findLink(0, 5)->fail();
  tn.runUntil(2_sec + 60_ms);
  // Right after detection: diffusing, route frozen/unreachable.
  EXPECT_GT(dual0.diffusingComputations(), 0u);
  // Eventually: converged to the long way around, passive again.
  tn.runUntil(30_sec);
  EXPECT_FALSE(dual0.isActive(5));
  EXPECT_EQ(dual0.distance(5), 5);
  EXPECT_EQ(tn.nextHop(0, 5), 1);
}

TEST(Dual, NoTransientLoopsOnRingFailure) {
  // DUAL's selling point: throughout the whole reconvergence no FIB walk
  // between any pair may loop (it may blackhole while Active).
  TestNet tn{testutil::ringTopology(8), ProtocolKind::Dual};
  tn.warmUp(2_sec);
  bool everLooped = false;
  tn.net().hooks().onRouteChange = [&](Time, NodeId, NodeId, NodeId, NodeId) {
    for (NodeId s = 0; s < 8 && !everLooped; ++s) {
      for (NodeId d = 0; d < 8; ++d) {
        bool loop = false;
        (void)tn.net().fibWalk(s, d, &loop, nullptr);
        if (loop) {
          everLooped = true;
          break;
        }
      }
    }
  };
  tn.net().findLink(0, 7)->fail();
  tn.runUntil(60_sec);
  EXPECT_FALSE(everLooped);
  EXPECT_EQ(tn.nextHop(0, 7), 1);
}

TEST(Dual, DisconnectedDestinationSettlesUnreachable) {
  TestNet tn{testutil::lineTopology(4), ProtocolKind::Dual};
  tn.warmUp(2_sec);
  tn.net().findLink(2, 3)->fail();
  tn.runUntil(60_sec);
  for (NodeId n = 0; n <= 2; ++n) {
    EXPECT_EQ(tn.nextHop(n, 3), kInvalidNode) << n;
    EXPECT_FALSE(tn.protocolAs<Dual>(n).isActive(3)) << n;
  }
}

TEST(Dual, RecoversOnLinkUp) {
  TestNet tn{testutil::lineTopology(4), ProtocolKind::Dual};
  tn.warmUp(2_sec);
  tn.net().findLink(2, 3)->fail();
  tn.runUntil(30_sec);
  ASSERT_EQ(tn.nextHop(0, 3), kInvalidNode);
  tn.net().findLink(2, 3)->recover();
  tn.runUntil(60_sec);
  EXPECT_EQ(tn.nextHop(0, 3), 1);
  EXPECT_EQ(tn.protocolAs<Dual>(0).distance(3), 3);
}

TEST(Dual, FullScenarioConservation) {
  ScenarioConfig cfg;
  cfg.protocol = ProtocolKind::Dual;
  cfg.mesh.degree = 4;
  cfg.seed = 5;
  cfg.trafficStart = 90_sec;
  cfg.trafficStop = 150_sec;
  cfg.failAt = 100_sec;
  cfg.endAt = 200_sec;
  Scenario sc{cfg};
  sc.run();
  const auto& data = sc.stats().data();
  EXPECT_EQ(sc.packetsSent(), data.delivered + data.totalDropped());
  EXPECT_EQ(data.dropTtl, 0u);  // loop-free by construction
}

}  // namespace
}  // namespace rcsim
