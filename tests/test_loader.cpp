#include "topo/loader.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "topo/graph_algo.hpp"

namespace rcsim {
namespace {

/// EXPECT_THROW plus a substring check on the message — parse errors must
/// carry enough context (line numbers, the offending token) to fix the file.
void expectParseError(const std::string& text, const std::string& needle) {
  try {
    (void)parseTopology(text);
    FAIL() << "expected parseTopology to reject:\n" << text;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message '" << e.what() << "' lacks '" << needle << "'";
  }
}

TEST(Loader, ParsesMinimalGraph) {
  const auto doc = parseTopology("nodes 3\n0 1\n1 2\n");
  EXPECT_EQ(doc.topo.nodeCount, 3);
  EXPECT_EQ(doc.topo.edges.size(), 2u);
  EXPECT_TRUE(doc.topo.hasEdge(0, 1));
  EXPECT_TRUE(doc.topo.hasEdge(1, 2));
  EXPECT_FALSE(doc.topo.hasEdge(0, 2));
  EXPECT_TRUE(doc.name.empty());
}

TEST(Loader, CommentsBlanksAndReversedEdgesAreCanonicalized) {
  const auto doc = parseTopology(
      "# leading comment\n"
      "\n"
      "topology demo\n"
      "nodes 4\n"
      "node 2 Two\n"
      "  3 0   # edge with surrounding whitespace and trailing comment\n"
      "2 1\n");
  EXPECT_EQ(doc.name, "demo");
  EXPECT_EQ(doc.nodeLabels[2], "Two");
  // Edges come back canonical (a < b) and sorted regardless of input order.
  EXPECT_EQ(doc.topo.edges, (std::vector<std::pair<NodeId, NodeId>>{{0, 3}, {1, 2}}));
}

TEST(Loader, RejectsMalformedInput) {
  expectParseError("0 1\n", "nodes");                        // edge before header
  expectParseError("nodes 2\nnodes 2\n", "line 2");          // duplicate header
  expectParseError("nodes 0\n", "line 1");                   // empty graph
  expectParseError("nodes 2\n0 1 9\n", "line 2");            // trailing junk
  expectParseError("nodes 2\n0 x\n", "line 2");              // non-integer id
  expectParseError("nodes 3\n0 -1\n", "line 2");             // negative id
  expectParseError("nodes 3\n0 3\n", "line 2");              // out of range
  expectParseError("nodes 3\n1 1\n", "self-loop");           // self loop
  expectParseError("nodes 3\n0 1\n1 0\n", "duplicate");      // dup, reversed
  expectParseError("nodes 3\n0 1\n0 1\n", "duplicate");      // dup, same
  expectParseError("nodes 3\nnode 5 Label\n", "line 2");     // label out of range
  expectParseError("node 0 Early\nnodes 2\n0 1\n", "nodes"); // label before header
  expectParseError("nodes 3000000000\n", "line 1");          // overflows NodeId
}

TEST(Loader, DumpIsAFixedPoint) {
  // load -> dump -> load -> dump must be byte-identical: the canonical
  // rendering is its own parse's canonical rendering.
  for (const auto& name : namedTopologyNames()) {
    const TopologyDoc doc = namedTopology(name);
    const std::string once = dumpTopology(doc);
    const TopologyDoc redoc = parseTopology(once);
    EXPECT_EQ(dumpTopology(redoc), once) << name;
    EXPECT_EQ(redoc.topo.edges, doc.topo.edges) << name;
    EXPECT_EQ(redoc.name, doc.name) << name;
    EXPECT_EQ(redoc.nodeLabels, doc.nodeLabels) << name;
  }
}

TEST(Loader, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "loader_roundtrip.topo";
  const std::string dumped = dumpTopology(namedTopology("abilene"));
  {
    std::ofstream out(path, std::ios::binary);
    out << dumped;
  }
  const TopologyDoc doc = loadTopologyFile(path);
  EXPECT_EQ(dumpTopology(doc), dumped);
  std::remove(path.c_str());
}

TEST(Loader, MissingFileNamesThePath) {
  try {
    (void)loadTopologyFile("/nonexistent/rcsim.topo");
    FAIL() << "expected loadTopologyFile to throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/rcsim.topo"), std::string::npos);
  }
}

TEST(Loader, UnknownNamedGraphListsTheLibrary) {
  try {
    (void)namedTopology("arpanet");
    FAIL() << "expected namedTopology to throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("abilene"), std::string::npos);
  }
}

TEST(Loader, AbileneFacts) {
  // The 2003-era Abilene research backbone: 11 PoPs, 14 OC-192 trunks.
  const TopologyDoc doc = namedTopology("abilene");
  EXPECT_EQ(doc.topo.nodeCount, 11);
  EXPECT_EQ(doc.topo.edges.size(), 14u);
  EXPECT_TRUE(doc.topo.isConnected());
  EXPECT_EQ(graphDiameter(doc.topo), 5);
  int deg2 = 0;
  int deg3 = 0;
  for (NodeId n = 0; n < doc.topo.nodeCount; ++n) {
    if (doc.topo.degreeOf(n) == 2) ++deg2;
    if (doc.topo.degreeOf(n) == 3) ++deg3;
  }
  EXPECT_EQ(deg2, 5);
  EXPECT_EQ(deg3, 6);
  for (const auto& label : doc.nodeLabels) EXPECT_FALSE(label.empty());
}

TEST(Loader, NsfnetFacts) {
  // The NSFNET T1 backbone (14 nodes, 21 links) — denser than Abilene.
  const TopologyDoc doc = namedTopology("nsfnet");
  EXPECT_EQ(doc.topo.nodeCount, 14);
  EXPECT_EQ(doc.topo.edges.size(), 21u);
  EXPECT_TRUE(doc.topo.isConnected());
  EXPECT_EQ(graphDiameter(doc.topo), 4);
  for (const auto& label : doc.nodeLabels) EXPECT_FALSE(label.empty());
}

TEST(Loader, LibraryListsBothGraphs) {
  const auto names = namedTopologyNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "abilene");
  EXPECT_EQ(names[1], "nsfnet");
}

}  // namespace
}  // namespace rcsim
